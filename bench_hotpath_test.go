package repro

// Hot-path benchmarks for the simulation critical loop, the subject of the
// cross-layer performance overhaul (indexed certification, pooled event
// scheduler, zero-copy wire buffers). CI runs these with -json into
// BENCH_hotpath.json, alongside BENCH_protocols.json, so simulator
// throughput regressions are tracked per commit.
//
// BenchmarkHotpath* report events/s aggregated over every iteration (total
// kernel events over total wall time), which is stable against per-iteration
// jitter; the run length (3000 transactions) keeps model construction a
// small fraction of the measurement, as it is in real experiment runs
// (10000 transactions per grid point).

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

// hotpathCfg is the fault-free default configuration the ≥2x events/s
// acceptance target is measured on: the paper's 3-site replicated TPC-C at
// 500 clients, conservative termination, no fault load.
func hotpathCfg(p core.Protocol) core.Config {
	return core.Config{
		Sites: 3, CPUsPerSite: 1, Clients: 500,
		TotalTxns: 3000,
		Protocol:  p,
	}
}

// benchHotpath runs one model per iteration and reports aggregate events/s.
func benchHotpath(b *testing.B, cfg core.Config) {
	b.Helper()
	var events int64
	var tpm float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(42 + i)
		r := benchModel(b, cfg)
		requireNoDrops(r, b)
		events += r.Events
		tpm = r.TPM
	}
	b.ReportMetric(float64(events)/(b.Elapsed().Seconds()+1e-9), "events/s")
	b.ReportMetric(tpm, "tpm")
}

func BenchmarkHotpathConservative(b *testing.B) {
	benchHotpath(b, hotpathCfg(core.ProtocolConservative))
}

func BenchmarkHotpathOptimistic(b *testing.B) {
	benchHotpath(b, hotpathCfg(core.ProtocolOptimistic))
}

// BenchmarkHotpathCertifier measures certification cost per transaction at
// varying concurrent-history depths: the indexed certifier stays
// O(|ReadSet|) while the reference scan grows linearly with depth. Every
// transaction's snapshot lags `depth` behind the current sequence, so the
// scan certifier examines `depth` write-sets per certification.
func BenchmarkHotpathCertifier(b *testing.B) {
	for _, mode := range []string{"indexed", "scan"} {
		for _, depth := range []int{100, 1000, 10000} {
			b.Run(mode+"/depth-"+strconv.Itoa(depth), func(b *testing.B) {
				rng := sim.NewRNG(7)
				var c *dbsm.Certifier
				if mode == "scan" {
					c = dbsm.NewScanCertifier()
				} else {
					c = dbsm.NewCertifier()
				}
				c.MaxHistory = depth + 1
				mkSet := func(n, space int) dbsm.ItemSet {
					ids := make([]dbsm.TupleID, n)
					for i := range ids {
						ids[i] = dbsm.MakeTupleID(uint16(rng.Intn(9)+1), uint64(rng.Intn(space)))
					}
					return dbsm.NewItemSet(ids...)
				}
				// Pre-populate history to the target depth with
				// disjoint write-sets (high row space: few conflicts).
				for i := 0; c.HistoryLen() < depth; i++ {
					c.Certify(&dbsm.TxnCert{
						TID: uint64(i), WriteSet: mkSet(10, 1<<28),
						LastCommitted: c.Seq(),
					})
				}
				reads := mkSet(100, 1<<28)
				writes := mkSet(10, 1<<28)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					snapshot := uint64(0)
					if s := c.Seq(); s > uint64(depth) {
						snapshot = s - uint64(depth)
					}
					c.Certify(&dbsm.TxnCert{
						TID: uint64(depth + i), ReadSet: reads, WriteSet: writes,
						LastCommitted: snapshot,
					})
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/txn")
			})
		}
	}
}

// BenchmarkHotpathKernel measures the bare event-loop dispatch rate:
// schedule plus pop of one event, the unit everything else is built from.
func BenchmarkHotpathKernel(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(sim.Microsecond, fn)
		k.Step()
	}
	b.ReportMetric(float64(b.N)/(b.Elapsed().Seconds()+1e-9), "events/s")
}
