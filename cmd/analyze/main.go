// Command analyze runs the repository's invariant linter suite
// (simdeterminism, bufown, poolpair, statcount, hotalloc).
//
// It speaks two protocols:
//
//	analyze ./...                         # standalone, via `go list -export`
//	go vet -vettool=$(which analyze) ./...  # unitchecker, via vet .cfg files
//
// In both modes diagnostics are printed as file:line:col: message
// [analyzer] and the exit status is 2 when any diagnostic is reported,
// matching go vet conventions.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

func main() {
	if err := analysis.Validate(driver.Analyzers()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printVersion := flag.String("V", "", "print version and exit (cmd/go tool protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go tool protocol)")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *printVersion == "full":
		version()
		return
	case *printVersion != "":
		fmt.Printf("%s version devel\n", progName())
		return
	case *printFlags:
		// No analyzer-specific flags are exposed to cmd/go.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(1)
	}

	var (
		diags []driver.Diagnostic
		err   error
	)
	if strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool` with a unit config.
		diags, err = driver.RunConfig(args[0])
	} else {
		wd, werr := os.Getwd()
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		diags, err = driver.Analyze(wd, args...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: %s package...\n       go vet -vettool=%s package...\n\nAnalyzers:\n", progName(), progName())
	for _, a := range driver.Analyzers() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// version implements the -V=full handshake cmd/go uses to fingerprint
// vet tools for its build cache: the last field must be a content hash
// of the tool binary.
func version() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progName(), h.Sum(nil)[:16])
}
