// Command dbsim runs a single replicated-database experiment and prints the
// metrics the paper reports: throughput, latency, abort rates per class,
// resource usage and the safety verdict.
//
// Examples:
//
//	dbsim -sites 3 -clients 750 -txns 10000
//	dbsim -sites 3 -clients 750 -loss random -loss-rate 0.05
//	dbsim -sites 3 -clients 300 -crash-site 3 -crash-at 30s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbsim", flag.ContinueOnError)
	var (
		sites     = fs.Int("sites", 3, "replica count (1 = centralized)")
		cpus      = fs.Int("cpus", 1, "CPUs per site")
		clients   = fs.Int("clients", 500, "total emulated clients")
		txns      = fs.Int("txns", 10000, "total transactions to submit")
		seed      = fs.Int64("seed", 42, "random seed")
		lossKind  = fs.String("loss", "none", "loss model: none|random|bursty")
		lossRate  = fs.Float64("loss-rate", 0.05, "loss fraction")
		lossBurst = fs.Float64("loss-burst", 5, "mean burst length (bursty)")
		drift     = fs.Float64("drift", 0, "clock drift rate (applied to all sites)")
		schedLat  = fs.Duration("sched-latency", 0, "mean scheduling latency fault")
		crashSite = fs.Int("crash-site", 0, "site to crash (0 = none)")
		crashAt   = fs.Duration("crash-at", 30*time.Second, "crash time")
		verbose   = fs.Bool("v", false, "per-site and per-class detail")
		traceFile = fs.String("trace", "", "write a tcpdump-style packet trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fcfg := faults.Config{ClockDriftRate: *drift, SchedLatencyMean: sim.FromDuration(*schedLat)}
	switch *lossKind {
	case "none":
	case "random":
		fcfg.Loss = faults.Loss{Kind: faults.LossRandom, Rate: *lossRate}
	case "bursty":
		fcfg.Loss = faults.Loss{Kind: faults.LossBursty, Rate: *lossRate, MeanBurst: *lossBurst}
	default:
		return fmt.Errorf("unknown loss model %q", *lossKind)
	}
	if *crashSite > 0 {
		fcfg.Crashes = append(fcfg.Crashes, faults.Crash{Site: int32(*crashSite), At: sim.FromDuration(*crashAt)})
	}

	m, err := core.New(core.Config{
		Sites:       *sites,
		CPUsPerSite: *cpus,
		Clients:     *clients,
		TotalTxns:   *txns,
		Seed:        *seed,
		Faults:      fcfg,
	})
	if err != nil {
		return err
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		// The paper's SSFNet logs traffic in tcpdump's format so runs
		// can be examined with standard tools (Section 2.1).
		m.Network().SetTracer(func(r simnet.TraceRecord) {
			fmt.Fprintln(w, r.String())
		})
	}
	start := time.Now()
	r, err := m.Run()
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("config: sites=%d cpus=%d clients=%d txns=%d seed=%d\n",
		*sites, *cpus, *clients, *txns, *seed)
	fmt.Printf("simulated %v in %v (%d events)\n", r.Duration, wall.Round(time.Millisecond), r.Events)
	fmt.Printf("throughput:   %8.0f tpm\n", r.TPM)
	fmt.Printf("latency:      %8.1f ms mean, %.1f ms p95\n", r.MeanLatencyMS, r.P95LatencyMS)
	fmt.Printf("abort rate:   %8.2f %%\n", r.AbortRatePct)
	fmt.Printf("cpu usage:    %8.1f %% (protocol %.2f %%)\n", r.CPUUtilPct, r.CPURealUtilPct)
	fmt.Printf("disk usage:   %8.1f %%\n", r.DiskUtilPct)
	fmt.Printf("network:      %8.1f KB/s\n", r.NetKBps)
	if *sites > 1 {
		fmt.Printf("certification: %7.1f ms mean latency\n", r.CertLat.Mean())
		fmt.Printf("gcs: sent=%d retrans=%d nacks=%d gossips=%d viewchanges=%d blocked=%d\n",
			r.GCS.Sent, r.GCS.Retransmits, r.GCS.Nacks, r.GCS.Gossips, r.GCS.ViewChanges, r.GCS.Blocked)
		if r.SafetyErr != nil {
			fmt.Printf("SAFETY: VIOLATED: %v\n", r.SafetyErr)
		} else {
			fmt.Printf("safety: all operational sites committed identical sequences\n")
		}
	}
	if r.Inconsistencies != 0 {
		fmt.Printf("INCONSISTENCIES: %d\n", r.Inconsistencies)
	}
	if *verbose {
		fmt.Println("\nper class:")
		fmt.Printf("  %-18s %9s %9s %7s %7s %7s %8s %9s\n",
			"class", "submitted", "committed", "w/w", "cert", "user", "abort%", "lat(ms)")
		for _, c := range r.Classes {
			fmt.Printf("  %-18s %9d %9d %7d %7d %7d %8.2f %9.1f\n",
				c.Name, c.Submitted, c.Committed, c.AbortLock, c.AbortCert, c.AbortUser,
				c.AbortRatePct, c.MeanLatencyMS)
		}
		fmt.Println("\nper site:")
		for _, s := range r.Sites {
			status := "up"
			if s.Crashed {
				status = "CRASHED"
			}
			fmt.Printf("  site %d: %s committed=%d aborted=%d remote=%d cpu=%.1f%% disk=%.1f%%\n",
				s.Site, status, s.Committed, s.Aborted, s.RemoteApplied, s.CPUUtilPct, s.DiskUtilPct)
		}
	}
	return nil
}
