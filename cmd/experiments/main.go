// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 4 validation and Section 5 results).
//
// Subcommands:
//
//	fig3    CSRT validation: flood bandwidth and round-trip vs message size
//	fig4    model validation: Q-Q of transaction latency (sim vs reference)
//	fig5    throughput / latency / abort rate vs clients (Figure 5)
//	fig6    resource usage vs clients (Figure 6)
//	table1  abort rate breakdown per class (Table 1)
//	fig7    fault injection: latency distributions and CPU usage (Figure 7)
//	table2  abort rates under message loss (Table 2)
//	protocols  conservative vs optimistic delivery: certification-latency
//	           split, misprediction rate, rollbacks (extension)
//	recovery   terminal crash vs crash-and-rejoin: downtime, recovery
//	           duration, snapshot transfer, delta catch-up (extension)
//	overload   offered-load sweep past saturation: committed throughput,
//	           rejections, retries, queue/backlog peaks — graceful
//	           degradation vs collapse (extension)
//	shard      partial replication: group-count sweep at equal per-site
//	           resources — aggregate throughput, multi-group share, and a
//	           full-replication comparison row (extension)
//	clients    population sweep 10^3..10^6 under the aggregate client tier:
//	           wall clock per simulated minute and memory footprint
//	           (extension)
//	all     everything above
//
// Every grid point runs -reps independent replications (derived seeds) and
// is reported as mean ± 95% confidence interval. The (configuration ×
// client count × seed) grid fans out across -parallel workers; runs are
// deterministic and independent, so the aggregates printed on stdout are
// byte-identical whatever the worker count (progress goes to stderr).
//
// Use -fast for a reduced-scale pass (minutes instead of tens of minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profiles"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fast := fs.Bool("fast", false, "reduced scale: fewer transactions and sweep points")
	seed := fs.Int64("seed", 42, "base random seed (replication seeds derive from it)")
	txns := fs.Int("txns", 0, "transactions per run (0 = paper's 10000, or 2000 with -fast)")
	reps := fs.Int("reps", 3, "replications per grid point (mean ± 95% CI)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", true, "report per-run progress on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] fig3|fig4|fig5|fig6|table1|fig7|table2|protocols|recovery|overload|shard|clients|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	stopProfiles, perr := profiles.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", perr)
		os.Exit(1)
	}
	h := &harness{
		fast:     *fast,
		seed:     *seed,
		txns:     *txns,
		reps:     *reps,
		parallel: *parallel,
		progress: *progress,
	}
	if h.reps < 1 {
		h.reps = 1
	}
	if h.txns == 0 {
		h.txns = 10000
		if h.fast {
			h.txns = 2000
		}
	}
	var err error
	switch fs.Arg(0) {
	case "fig3":
		err = h.fig3()
	case "fig4":
		err = h.fig4()
	case "fig5":
		err = h.fig5and6(true, false)
	case "fig6":
		err = h.fig5and6(false, true)
	case "table1":
		err = h.table1()
	case "fig7":
		err = h.fig7()
	case "table2":
		err = h.table2()
	case "protocols":
		err = h.protocols()
	case "recovery":
		err = h.recovery()
	case "overload":
		err = h.overload()
	case "shard":
		err = h.shard()
	case "clients":
		err = h.clients()
	case "all":
		steps := []func() error{
			h.fig3, h.fig4,
			func() error { return h.fig5and6(true, true) },
			h.table1, h.fig7, h.table2, h.protocols, h.recovery, h.overload, h.shard, h.clients,
		}
		for _, step := range steps {
			if err = step(); err != nil {
				break
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown subcommand %q\n", fs.Arg(0))
		os.Exit(2)
	}
	stopProfiles() // flush profiles before any exit path
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
