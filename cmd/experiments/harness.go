package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gcs"
)

// harness shares configuration and cached sweep results across subcommands.
type harness struct {
	fast bool
	seed int64
	txns int

	sweep []sweepPoint // cached Figure 5/6 grid
}

// config labels one replication configuration of Figures 5 and 6.
type config struct {
	name  string
	sites int
	cpus  int
}

func (h *harness) configs() []config {
	return []config{
		{"1 CPU", 1, 1},
		{"3 CPU", 1, 3},
		{"6 CPU", 1, 6},
		{"3 Sites", 3, 1},
		{"6 Sites", 6, 1},
	}
}

func (h *harness) clientGrid() []int {
	if h.fast {
		return []int{100, 500, 1000, 1500, 2000}
	}
	return []int{100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000}
}

type sweepPoint struct {
	cfg     config
	clients int
	res     *core.Results
}

// run executes one model configuration.
func (h *harness) run(cfg core.Config) (*core.Results, error) {
	if cfg.TotalTxns == 0 {
		cfg.TotalTxns = h.txns
	}
	if cfg.Seed == 0 {
		cfg.Seed = h.seed
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// ensureSweep runs (once) the full client grid over every configuration.
func (h *harness) ensureSweep() error {
	if h.sweep != nil {
		return nil
	}
	total := len(h.configs()) * len(h.clientGrid())
	done := 0
	start := time.Now()
	for _, cfg := range h.configs() {
		for _, clients := range h.clientGrid() {
			r, err := h.run(core.Config{
				Sites:       cfg.sites,
				CPUsPerSite: cfg.cpus,
				Clients:     clients,
				Seed:        h.seed,
			})
			if err != nil {
				return fmt.Errorf("sweep %s/%d clients: %w", cfg.name, clients, err)
			}
			if r.SafetyErr != nil {
				return fmt.Errorf("sweep %s/%d clients: safety: %v", cfg.name, clients, r.SafetyErr)
			}
			h.sweep = append(h.sweep, sweepPoint{cfg: cfg, clients: clients, res: r})
			done++
			fmt.Printf("\r[sweep %d/%d] %-8s %4d clients: %s        ",
				done, total, cfg.name, clients, r.Summary())
		}
	}
	fmt.Printf("\rsweep: %d runs in %v%s\n", total, time.Since(start).Round(time.Second),
		"                                                            ")
	return nil
}

// faultRun executes the Figure 7 / Table 2 fault configurations: 3 sites
// with the constrained buffer pool the paper's prototype ran with.
func (h *harness) faultRun(clients int, loss faults.Loss, seed int64) (*core.Results, error) {
	return h.run(core.Config{
		Sites:         3,
		CPUsPerSite:   1,
		Clients:       clients,
		Seed:          seed,
		Faults:        faults.Config{Loss: loss},
		CollectTxnLog: true,
		GCSTweak:      func(c *gcs.Config) { c.BufferBytes = 96 * 1024 },
	})
}

// header prints a section banner.
func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}
