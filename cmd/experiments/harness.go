package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/gcs"
)

// harness shares configuration and cached sweep results across subcommands.
// All model executions go through the parallel experiment runner
// (internal/expr): every grid point is replicated -reps times with derived
// seeds and reported as mean ± 95% confidence interval.
type harness struct {
	fast     bool
	seed     int64
	txns     int
	reps     int
	parallel int
	progress bool

	sweep []sweepPoint // cached Figure 5/6 grid
}

// config labels one replication configuration of Figures 5 and 6.
type config struct {
	name  string
	sites int
	cpus  int
}

func (h *harness) configs() []config {
	return []config{
		{"1 CPU", 1, 1},
		{"3 CPU", 1, 3},
		{"6 CPU", 1, 6},
		{"3 Sites", 3, 1},
		{"6 Sites", 6, 1},
	}
}

func (h *harness) clientGrid() []int {
	if h.fast {
		return []int{100, 500, 1000, 1500, 2000}
	}
	return []int{100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000}
}

type sweepPoint struct {
	cfg     config
	clients int
	agg     *core.Aggregate
}

// workers reports the effective pool size.
func (h *harness) workers() int {
	if h.parallel > 0 {
		return h.parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runner builds a worker pool from the -parallel/-reps/-progress flags.
// Progress goes to stderr so stdout — the tables themselves — stays
// byte-identical whatever the worker count.
func (h *harness) runner() *expr.Runner {
	rn := &expr.Runner{Workers: h.parallel, Reps: h.reps}
	if h.progress {
		start := time.Now()
		rn.OnRun = func(done, total int, t expr.Task, rep int, r *core.Results, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n[%d/%d] %s rep %d: error: %v\n", done, total, t.Label, rep, err)
				return
			}
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d %6s] %-14s rep %d: %s        ",
				done, total, time.Since(start).Round(time.Second), t.Label, rep, r.Summary())
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return rn
}

// fill applies harness defaults to one task configuration.
func (h *harness) fill(cfg core.Config) core.Config {
	if cfg.TotalTxns == 0 {
		cfg.TotalTxns = h.txns
	}
	if cfg.Seed == 0 {
		cfg.Seed = h.seed
	}
	return cfg
}

// runAll executes a batch of tasks on the pool and checks every point's
// safety verdict.
func (h *harness) runAll(tasks []expr.Task) ([]expr.Point, error) {
	for i := range tasks {
		tasks[i].Config = h.fill(tasks[i].Config)
	}
	pts, err := h.runner().Run(tasks)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if p.Agg.SafetyErr != nil {
			return nil, fmt.Errorf("%s: safety: %v", p.Task.Label, p.Agg.SafetyErr)
		}
	}
	return pts, nil
}

// ensureSweep runs (once) the full client grid over every configuration,
// fanned across the worker pool.
func (h *harness) ensureSweep() error {
	if h.sweep != nil {
		return nil
	}
	var tasks []expr.Task
	for _, cfg := range h.configs() {
		for _, clients := range h.clientGrid() {
			tasks = append(tasks, expr.Task{
				Label: fmt.Sprintf("%s/%dc", cfg.name, clients),
				Config: core.Config{
					Sites:       cfg.sites,
					CPUsPerSite: cfg.cpus,
					Clients:     clients,
				},
			})
		}
	}
	start := time.Now()
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("sweep %w", err)
	}
	for i, p := range pts {
		// The cached grid only ever reads the merged stats and pooled
		// samples; drop the per-replication Results so the sweep cache
		// doesn't pin every raw run for the process lifetime.
		p.Agg.Runs = nil
		h.sweep = append(h.sweep, sweepPoint{
			cfg:     h.configs()[i/len(h.clientGrid())],
			clients: h.clientGrid()[i%len(h.clientGrid())],
			agg:     p.Agg,
		})
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs (%d points x %d reps) in %v on %d workers\n",
		len(tasks)*h.reps, len(tasks), h.reps,
		time.Since(start).Round(time.Second), h.workers())
	return nil
}

// faultTask builds a Figure 7 / Table 2 fault configuration: 3 sites with
// the constrained buffer pool the paper's prototype ran with.
func (h *harness) faultTask(label string, clients int, loss faults.Loss) expr.Task {
	return expr.Task{Label: label, Config: core.Config{
		Sites:         3,
		CPUsPerSite:   1,
		Clients:       clients,
		Faults:        faults.Config{Loss: loss},
		CollectTxnLog: true,
		GCSTweak:      func(c *gcs.Config) { c.BufferBytes = 96 * 1024 },
	}}
}

// header prints a section banner.
func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}
