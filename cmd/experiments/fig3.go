package main

import (
	"fmt"

	"repro/internal/csrt"
	"repro/internal/expr"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// fig3 reproduces the centralized-simulation-runtime validation (Figure 3):
// the maximum bandwidth a single process can write to a UDP socket, the
// receive bandwidth over Ethernet-100, and the round-trip time, for varying
// message sizes.
//
// The "Real" series stands in for the paper's PIII-1GHz measurements: it
// runs the same benchmark code over a network model with real-system
// behaviours enabled — IP fragmentation at the Ethernet MTU and the virtual
// memory page-boundary penalty above 4 KB — while the "CSRT" series uses the
// plain SSFNet-like model, which does not enforce the MTU for UDP traffic.
// The divergence beyond the MTU is exactly the deviation the paper reports
// and avoids by restricting protocol packet sizes.
func (h *harness) fig3() error {
	header("Figure 3 — CSRT validation (flood and round-trip benchmarks)")
	sizes := []int{64, 128, 256, 512, 1000, 1472, 2000, 3000, 4000, 4096}

	// Each message size is an independent pair of simulations: fan the
	// column out across the worker pool and print in size order.
	type row struct{ outR, inR, rttR, outC, inC, rttC float64 }
	rows := make([]row, len(sizes))
	expr.ForEach(h.parallel, len(sizes), func(i int) {
		r := &rows[i]
		r.outR, r.inR, r.rttR = floodAndRTT(sizes[i], true, h.seed)
		r.outC, r.inC, r.rttC = floodAndRTT(sizes[i], false, h.seed)
	})

	fmt.Printf("%8s | %12s %12s | %12s %12s | %12s %12s\n",
		"size(B)", "out Real", "out CSRT", "in Real", "in CSRT", "rtt Real", "rtt CSRT")
	fmt.Printf("%8s | %12s %12s | %12s %12s | %12s %12s\n",
		"", "(Mbit/s)", "(Mbit/s)", "(Mbit/s)", "(Mbit/s)", "(us)", "(us)")
	for i, size := range sizes {
		r := rows[i]
		fmt.Printf("%8d | %12.1f %12.1f | %12.1f %12.1f | %12.0f %12.0f\n",
			size, r.outR, r.outC, r.inR, r.inC, r.rttR, r.rttC)
	}
	fmt.Println("\nshape checks: output rises with size (fixed-cost amortization);")
	fmt.Println("input saturates near Ethernet-100 capacity; RTT curves diverge")
	fmt.Println("beyond the MTU where the real stack fragments (paper Fig. 3c).")
	return nil
}

// floodAndRTT runs the two micro-benchmarks between two hosts and returns
// (output Mbit/s, input Mbit/s, round-trip µs).
func floodAndRTT(size int, realSystem bool, seed int64) (outMbit, inMbit, rttUS float64) {
	costs := csrt.DefaultCostParams()
	if realSystem && size >= 4096 {
		// Crossing the 4KB virtual-memory page boundary costs extra in
		// the real system (paper Section 4.2).
		costs.SendFixed += 25 * sim.Microsecond
	}

	build := func() (*sim.Kernel, *csrt.Runtime, *csrt.Runtime, *simnet.Network) {
		k := sim.NewKernel()
		rng := sim.NewRNG(seed)
		net := simnet.NewNetwork(k, rng.Fork("net"))
		lanCfg := simnet.DefaultLANConfig("lan")
		lanCfg.FragmentOversize = realSystem
		lan := net.NewLAN(lanCfg)
		h1, _ := net.NewHost(1, lan)
		h2, _ := net.NewHost(2, lan)
		rt1 := csrt.NewRuntime(k, 1, &csrt.ModelProfiler{}, net.Port(1, 65536), costs, rng.Fork("rt1"))
		rt1.Bind(csrt.NewCPUSet(1, k, nil))
		rt2 := csrt.NewRuntime(k, 2, &csrt.ModelProfiler{}, net.Port(2, 65536), costs, rng.Fork("rt2"))
		rt2.Bind(csrt.NewCPUSet(1, k, nil))
		h1.SetDeliver(func(pkt *simnet.Packet) { rt1.Deliver(pkt.Src, pkt.Data) })
		h2.SetDeliver(func(pkt *simnet.Packet) { rt2.Deliver(pkt.Src, pkt.Data) })
		return k, rt1, rt2, net
	}

	// Flood: host 1 writes as fast as its CPU allows for 200ms.
	{
		k, rt1, rt2, _ := build()
		const window = 200 * sim.Millisecond
		payload := make([]byte, size)
		var sent int64
		var stop bool
		var pump func()
		pump = func() {
			if stop {
				return
			}
			for i := 0; i < 20; i++ {
				if rt1.Send(2, payload) == nil {
					sent++
				}
			}
			rt1.Schedule(0, pump)
		}
		var received int64
		rt2.SetReceiver(func(_ runtimeapi.NodeID, data []byte) {
			if k.Now() <= window {
				received += int64(len(data))
			}
		})
		rt1.Schedule(0, pump)
		k.ScheduleAt(window, func() { stop = true })
		_ = k.RunUntil(window + 50*sim.Millisecond)
		elapsed := window.Seconds()
		outMbit = float64(sent*int64(size)) * 8 / 1e6 / elapsed
		inMbit = float64(received) * 8 / 1e6 / elapsed
	}

	// Round-trip: 200 ping-pong exchanges.
	{
		k, rt1, rt2, _ := build()
		payload := make([]byte, size)
		const rounds = 200
		var count int
		var total sim.Time
		var lastSend sim.Time
		rt2.SetReceiver(func(src runtimeapi.NodeID, data []byte) {
			_ = rt2.Send(src, data) // echo
		})
		var ping func()
		ping = func() {
			lastSend = rt1.Now()
			_ = rt1.Send(2, payload)
		}
		rt1.SetReceiver(func(runtimeapi.NodeID, []byte) {
			total += rt1.Now() - lastSend
			count++
			if count < rounds {
				ping()
			}
		})
		rt1.Schedule(0, ping)
		_ = k.RunUntil(30 * sim.Second)
		if count > 0 {
			rttUS = (total.Seconds() / float64(count)) * 1e6
		}
	}
	return outMbit, inMbit, rttUS
}
