package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// fig7 reproduces the fault-injection results (Figure 7): empirical CDFs of
// transaction latency and certification latency for runs with 3 sites and
// 750 clients under no faults, 5% random loss, and 5% bursty loss, plus the
// CPU usage of the protocol's real jobs. The ECDFs pool the latency samples
// of all -reps replications; the three fault cases run concurrently.
func (h *harness) fig7() error {
	header("Figure 7 — performance with fault injection (3 sites, 750 clients)")
	cases := []struct {
		label string
		loss  faults.Loss
	}{
		{"No Faults", faults.Loss{}},
		{"Random Loss", faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
		{"Bursty Loss", faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}},
	}
	tasks := make([]expr.Task, 0, len(cases))
	for _, c := range cases {
		tasks = append(tasks, h.faultTask(c.label, 750, c.loss))
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("fig7 %w", err)
	}
	aggs := make([]*core.Aggregate, len(cases))
	for i, p := range pts {
		aggs[i] = p.Agg
	}

	xs := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	printECDF := func(title string, get func(*core.Aggregate) *metrics.Sample) {
		fmt.Printf("\n%s — ECDF over %d pooled reps, ratio of latencies <= x:\n", title, h.reps)
		fmt.Printf("%10s", "x (ms)")
		for _, c := range cases {
			fmt.Printf(" %14s", c.label)
		}
		fmt.Println()
		for _, x := range xs {
			fmt.Printf("%10.0f", x)
			for _, a := range aggs {
				fmt.Printf(" %14.3f", get(a).ECDF(x))
			}
			fmt.Println()
		}
	}
	printECDF("(a) transaction latency distribution", func(a *core.Aggregate) *metrics.Sample { return a.LatCommitted })
	printECDF("(b) certification latency distribution", func(a *core.Aggregate) *metrics.Sample { return a.CertLat })

	fmt.Printf("\n(c) CPU usage by protocol (real) jobs (mean±95%%CI over %d reps):\n", h.reps)
	fmt.Printf("%-14s %14s\n", "Run", "Usage (%)")
	for i, c := range cases {
		st := aggs[i].CPURealUtil
		fmt.Printf("%-14s %14s\n", c.label, fmt.Sprintf("%.2f±%.2f", st.Mean, st.CI95))
	}

	fmt.Printf("\ngroup communication detail (Section 5.3's blocking analysis, per-run means):\n")
	fmt.Printf("%-14s %14s %14s %14s %16s\n", "Run", "retrans", "nacks", "blocked", "blocked time")
	for i, c := range cases {
		a := aggs[i]
		fmt.Printf("%-14s %14s %14s %14s %16s\n", c.label,
			fmt.Sprintf("%.0f±%.0f", a.GCSRetransmits.Mean, a.GCSRetransmits.CI95),
			fmt.Sprintf("%.0f±%.0f", a.GCSNacks.Mean, a.GCSNacks.CI95),
			fmt.Sprintf("%.0f±%.0f", a.GCSBlocked.Mean, a.GCSBlocked.CI95),
			fmt.Sprintf("%.0f±%.0fms", a.GCSBlockedMS.Mean, a.GCSBlockedMS.CI95))
	}
	fmt.Println("\nshape checks: random loss produces a much longer latency tail than")
	fmt.Println("the same loss in bursts; the tail is caused by certification delays")
	fmt.Println("when stability stalls and the sequencer's buffer share exhausts;")
	fmt.Println("protocol CPU usage rises under loss (retransmissions).")
	return nil
}
