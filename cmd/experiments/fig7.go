package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// fig7 reproduces the fault-injection results (Figure 7): empirical CDFs of
// transaction latency and certification latency for runs with 3 sites and
// 750 clients under no faults, 5% random loss, and 5% bursty loss, plus the
// CPU usage of the protocol's real jobs.
func (h *harness) fig7() error {
	header("Figure 7 — performance with fault injection (3 sites, 750 clients)")
	cases := []struct {
		label string
		loss  faults.Loss
	}{
		{"No Faults", faults.Loss{}},
		{"Random Loss", faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
		{"Bursty Loss", faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}},
	}
	results := make([]*core.Results, 0, len(cases))
	for _, c := range cases {
		r, err := h.faultRun(750, c.loss, h.seed)
		if err != nil {
			return fmt.Errorf("fig7 %s: %w", c.label, err)
		}
		if r.SafetyErr != nil {
			return fmt.Errorf("fig7 %s: safety: %v", c.label, r.SafetyErr)
		}
		results = append(results, r)
	}

	xs := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	printECDF := func(title string, get func(*core.Results) *metrics.Sample) {
		fmt.Printf("\n%s — ECDF, ratio of latencies <= x:\n", title)
		fmt.Printf("%10s", "x (ms)")
		for _, c := range cases {
			fmt.Printf(" %14s", c.label)
		}
		fmt.Println()
		for _, x := range xs {
			fmt.Printf("%10.0f", x)
			for _, r := range results {
				fmt.Printf(" %14.3f", get(r).ECDF(x))
			}
			fmt.Println()
		}
	}
	printECDF("(a) transaction latency distribution", func(r *core.Results) *metrics.Sample { return r.LatCommitted })
	printECDF("(b) certification latency distribution", func(r *core.Results) *metrics.Sample { return r.CertLat })

	fmt.Printf("\n(c) CPU usage by protocol (real) jobs:\n")
	fmt.Printf("%-14s %10s\n", "Run", "Usage (%)")
	for i, c := range cases {
		fmt.Printf("%-14s %10.2f\n", c.label, results[i].CPURealUtilPct)
	}

	fmt.Printf("\ngroup communication detail (Section 5.3's blocking analysis):\n")
	fmt.Printf("%-14s %10s %10s %12s %14s\n", "Run", "retrans", "nacks", "blocked", "blocked time")
	for i, c := range cases {
		g := results[i].GCS
		fmt.Printf("%-14s %10d %10d %12d %14v\n", c.label, g.Retransmits, g.Nacks, g.Blocked, g.BlockedTime)
	}
	fmt.Println("\nshape checks: random loss produces a much longer latency tail than")
	fmt.Println("the same loss in bursts; the tail is caused by certification delays")
	fmt.Println("when stability stalls and the sequencer's buffer share exhausts;")
	fmt.Println("protocol CPU usage rises under loss (retransmissions).")
	return nil
}
