package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
)

// shard sweeps the replication-group count at equal per-site resources: G
// groups of 3 sites each, every site with one CPU and the same client share.
// Each group orders and certifies only its own warehouse stripe, so adding
// groups adds certification and ordering capacity; the cross-group commit
// round pays for the transactions that span stripes. The table reports
// aggregate committed throughput, the multi-group share, and — as the wall
// the tentpole removes — a 9-site full-replication row running the same
// offered load through one total order.
func (h *harness) shard() error {
	header("Shard — replication groups vs aggregate committed throughput")
	const perGroup = 3
	const clientsPerSite = 50

	type row struct {
		label  string
		groups int
		sites  int // per group
	}
	rows := []row{
		{"1 group x 3 sites", 1, perGroup},
		{"2 groups x 3 sites", 2, perGroup},
		{"3 groups x 3 sites", 3, perGroup},
		{"1 group x 9 sites (full repl)", 1, 3 * perGroup},
	}

	var tasks []expr.Task
	for _, rw := range rows {
		total := rw.groups * rw.sites
		for _, p := range core.Protocols() {
			tasks = append(tasks, expr.Task{
				Label: fmt.Sprintf("%s/%s", rw.label, p),
				Config: core.Config{
					Sites:       rw.sites,
					Groups:      rw.groups,
					CPUsPerSite: 1,
					Clients:     clientsPerSite * total,
					Protocol:    p,
					// Equal work per site: the transaction budget grows
					// with the site count so every row runs a comparable
					// measurement window.
					TotalTxns: h.txns * total / perGroup,
				},
			})
		}
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("shard %w", err)
	}

	fmt.Printf("\n%d reps per point, mean±95%%CI; every site has 1 CPU and %d clients.\n",
		h.reps, clientsPerSite)
	fmt.Println("multigroup is the committed share that spanned groups (cross-group commit round).")
	fmt.Printf("\n%-30s %-12s %14s %11s %10s %9s %11s %10s\n",
		"configuration", "protocol", "tpm", "committed", "p95(ms)", "abort%", "multigroup%", "net(KB/s)")
	base := map[core.Protocol]float64{}
	at3 := map[core.Protocol]float64{}
	i := 0
	for _, rw := range rows {
		for _, p := range core.Protocols() {
			a := pts[i].Agg
			i++
			fmt.Printf("%-30s %-12s %14s %11.0f %10.1f %9.2f %11.2f %10.0f\n",
				rw.label, p, a.TPM.String(), a.Committed.Mean, a.P95LatencyMS.Mean,
				a.AbortRatePct.Mean, a.MultiGroupPct.Mean, a.NetKBps.Mean)
			if rw.groups == 1 && rw.sites == perGroup {
				base[p] = a.TPM.Mean
			}
			if rw.groups == 3 {
				at3[p] = a.TPM.Mean
			}
		}
		fmt.Println()
	}

	// The partial-replication acceptance bar: three groups must deliver at
	// least twice the single-group committed throughput on the same
	// per-site hardware.
	for _, p := range core.Protocols() {
		speedup := 0.0
		if base[p] > 0 {
			speedup = at3[p] / base[p]
		}
		verdict := "SCALES"
		if speedup < 2 {
			verdict = "FLAT"
		}
		fmt.Printf("%-12s 3 groups vs 1: %.0f tpm vs %.0f tpm = %.2fx -> %s\n",
			p, at3[p], base[p], speedup, verdict)
	}
	return nil
}
