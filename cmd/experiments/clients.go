package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// clients sweeps the emulated population from 10^3 to 10^6 under the
// aggregate client tier (Config.AggregateClients): 3 sites, overload
// protection on, a fixed transaction budget per row. Unlike every other
// subcommand the rows run serially and directly — the columns of interest
// are wall clock and memory, which a shared worker pool would contaminate.
// The simulated metrics (tpm, committed) stay deterministic; the wall-clock
// and memory columns are host measurements and vary run to run.
func (h *harness) clients() error {
	header("Clients — population sweep under the aggregate client tier")
	populations := []int{1_000, 10_000, 100_000, 1_000_000}
	if h.fast {
		populations = []int{1_000, 10_000, 100_000}
	}

	fmt.Printf("\n3 sites, conservative protocol, admission control on, %d-txn budget per row.\n", h.txns)
	fmt.Println("wall/sim-min normalizes host wall clock by simulated duration; sys(MB) is")
	fmt.Println("process-cumulative (runtime.MemStats.Sys), so it carries earlier rows' peak.")
	fmt.Printf("\n%10s %12s %11s %12s %12s %14s %10s %10s\n",
		"clients", "tpm", "committed", "events", "events/s", "wall/sim-min", "heap(MB)", "sys(MB)")
	for _, pop := range populations {
		cfg := h.fill(core.Config{
			Sites:            3,
			CPUsPerSite:      1,
			Clients:          pop,
			AggregateClients: 1,
			Admission:        core.DefaultAdmissionConfig(),
		})
		m, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("clients %d: %w", pop, err)
		}
		runtime.GC()
		start := time.Now()
		r, err := m.Run()
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("clients %d: %w", pop, err)
		}
		if r.SafetyErr != nil {
			return fmt.Errorf("clients %d: safety: %v", pop, r.SafetyErr)
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		simMin := r.Duration.Seconds() / 60
		wallPerSimMin := time.Duration(0)
		if simMin > 0 {
			wallPerSimMin = time.Duration(float64(wall) / simMin)
		}
		fmt.Printf("%10d %12.0f %11d %12d %12.0f %14s %10.1f %10.1f\n",
			pop, r.TPM, r.Committed, r.Events,
			float64(r.Events)/wall.Seconds(),
			wallPerSimMin.Round(time.Millisecond),
			float64(ms.HeapInuse)/(1<<20), float64(ms.Sys)/(1<<20))
		if h.progress {
			fmt.Fprintf(os.Stderr, "clients %d: %s in %v wall\n", pop, r.Summary(), wall.Round(time.Millisecond))
		}
	}
	return nil
}
