package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
)

// classOrder is the row order of the paper's Tables 1 and 2.
var classOrder = []struct{ key, label string }{
	{"delivery", "delivery"},
	{"neworder", "neworder"},
	{"payment-long", "payment (long)"},
	{"payment-short", "payment (short)"},
	{"orderstatus-long", "orderstatus (long)"},
	{"orderstatus-short", "orderstatus (short)"},
	{"stocklevel", "stocklevel"},
}

// abortRow extracts a class abort-rate stat from an aggregate.
func abortRow(a *core.Aggregate, class string) core.Stat {
	if c := a.Class(class); c != nil {
		return c.AbortRatePct
	}
	return core.Stat{}
}

func printAbortTable(columns []string, aggs []*core.Aggregate, reps int) {
	fmt.Printf("abort rates in %%, mean±95%%CI over %d reps\n", reps)
	fmt.Printf("%-20s", "Transaction")
	for _, c := range columns {
		fmt.Printf(" %16s", c)
	}
	fmt.Println()
	pct := func(st core.Stat) string { return fmt.Sprintf("%.2f±%.2f", st.Mean, st.CI95) }
	for _, row := range classOrder {
		fmt.Printf("%-20s", row.label)
		for _, a := range aggs {
			fmt.Printf(" %16s", pct(abortRow(a, row.key)))
		}
		fmt.Println()
	}
	fmt.Printf("%-20s", "All")
	for _, a := range aggs {
		fmt.Printf(" %16s", pct(a.AbortRatePct))
	}
	fmt.Println()
}

// table1 reproduces the abort-rate breakdown (Table 1): 500 clients on a
// 1-CPU server; 1000 clients on a 3-CPU server versus 3 replicated sites;
// 1500 clients on a 6-CPU server versus 6 replicated sites. The five
// columns run concurrently on the worker pool.
func (h *harness) table1() error {
	header("Table 1 — abort rates (%)")
	type col struct {
		label   string
		clients int
		sites   int
		cpus    int
	}
	cols := []col{
		{"500c 1sx1CPU", 500, 1, 1},
		{"1000c 1sx3CPU", 1000, 1, 3},
		{"1000c 3sx1CPU", 1000, 3, 1},
		{"1500c 1sx6CPU", 1500, 1, 6},
		{"1500c 6sx1CPU", 1500, 6, 1},
	}
	tasks := make([]expr.Task, 0, len(cols))
	for _, c := range cols {
		tasks = append(tasks, expr.Task{Label: c.label, Config: core.Config{
			Sites:       c.sites,
			CPUsPerSite: c.cpus,
			Clients:     c.clients,
		}})
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("table1 %w", err)
	}
	labels := make([]string, len(cols))
	aggs := make([]*core.Aggregate, len(cols))
	for i, p := range pts {
		labels[i] = cols[i].label
		aggs[i] = p.Agg
	}
	printAbortTable(labels, aggs, h.reps)
	fmt.Println("\nshape checks: payment dominates aborts (hot Warehouse rows) and")
	fmt.Println("grows with replication; neworder stays near its 1% user-abort")
	fmt.Println("floor; read-only classes (orderstatus-short, stocklevel) are 0.")
	return nil
}

// table2 reproduces the abort rates under message loss (Table 2): 3 sites,
// 1000 clients, no losses versus 5% random and 5% bursty loss.
func (h *harness) table2() error {
	header("Table 2 — abort rates with 3 sites and 1000 clients (%)")
	cols := []struct {
		label string
		loss  faults.Loss
	}{
		{"No Losses", faults.Loss{}},
		{"Random - 5%", faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
		{"Bursty - 5%", faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}},
	}
	tasks := make([]expr.Task, 0, len(cols))
	for _, c := range cols {
		tasks = append(tasks, h.faultTask(c.label, 1000, c.loss))
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("table2 %w", err)
	}
	labels := make([]string, len(cols))
	aggs := make([]*core.Aggregate, len(cols))
	for i, p := range pts {
		labels[i] = cols[i].label
		aggs[i] = p.Agg
	}
	printAbortTable(labels, aggs, h.reps)
	fmt.Println("\nshape checks: loss extends certification latency, widening the")
	fmt.Println("conflict window: every update class aborts more, random loss")
	fmt.Println("hurting more than the same rate in bursts.")
	return nil
}
