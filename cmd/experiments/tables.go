package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
)

// classOrder is the row order of the paper's Tables 1 and 2.
var classOrder = []struct{ key, label string }{
	{"delivery", "delivery"},
	{"neworder", "neworder"},
	{"payment-long", "payment (long)"},
	{"payment-short", "payment (short)"},
	{"orderstatus-long", "orderstatus (long)"},
	{"orderstatus-short", "orderstatus (short)"},
	{"stocklevel", "stocklevel"},
}

// abortRow extracts a class abort percentage from results.
func abortRow(r *core.Results, class string) float64 {
	for _, c := range r.Classes {
		if c.Name == class {
			return c.AbortRatePct
		}
	}
	return 0
}

func printAbortTable(columns []string, results []*core.Results) {
	fmt.Printf("%-20s", "Transaction")
	for _, c := range columns {
		fmt.Printf(" %14s", c)
	}
	fmt.Println()
	for _, row := range classOrder {
		fmt.Printf("%-20s", row.label)
		for _, r := range results {
			fmt.Printf(" %14.2f", abortRow(r, row.key))
		}
		fmt.Println()
	}
	fmt.Printf("%-20s", "All")
	for _, r := range results {
		fmt.Printf(" %14.2f", r.AbortRatePct)
	}
	fmt.Println()
}

// table1 reproduces the abort-rate breakdown (Table 1): 500 clients on a
// 1-CPU server; 1000 clients on a 3-CPU server versus 3 replicated sites;
// 1500 clients on a 6-CPU server versus 6 replicated sites.
func (h *harness) table1() error {
	header("Table 1 — abort rates (%)")
	type col struct {
		label   string
		clients int
		sites   int
		cpus    int
	}
	cols := []col{
		{"500c 1sx1CPU", 500, 1, 1},
		{"1000c 1sx3CPU", 1000, 1, 3},
		{"1000c 3sx1CPU", 1000, 3, 1},
		{"1500c 1sx6CPU", 1500, 1, 6},
		{"1500c 6sx1CPU", 1500, 6, 1},
	}
	labels := make([]string, 0, len(cols))
	results := make([]*core.Results, 0, len(cols))
	for _, c := range cols {
		r, err := h.run(core.Config{
			Sites:       c.sites,
			CPUsPerSite: c.cpus,
			Clients:     c.clients,
			Seed:        h.seed,
		})
		if err != nil {
			return fmt.Errorf("table1 %s: %w", c.label, err)
		}
		if r.SafetyErr != nil {
			return fmt.Errorf("table1 %s: safety: %v", c.label, r.SafetyErr)
		}
		labels = append(labels, c.label)
		results = append(results, r)
	}
	printAbortTable(labels, results)
	fmt.Println("\nshape checks: payment dominates aborts (hot Warehouse rows) and")
	fmt.Println("grows with replication; neworder stays near its 1% user-abort")
	fmt.Println("floor; read-only classes (orderstatus-short, stocklevel) are 0.")
	return nil
}

// table2 reproduces the abort rates under message loss (Table 2): 3 sites,
// 1000 clients, no losses versus 5% random and 5% bursty loss.
func (h *harness) table2() error {
	header("Table 2 — abort rates with 3 sites and 1000 clients (%)")
	cols := []struct {
		label string
		loss  faults.Loss
	}{
		{"No Losses", faults.Loss{}},
		{"Random - 5%", faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
		{"Bursty - 5%", faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}},
	}
	labels := make([]string, 0, len(cols))
	results := make([]*core.Results, 0, len(cols))
	for _, c := range cols {
		r, err := h.faultRun(1000, c.loss, h.seed)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", c.label, err)
		}
		if r.SafetyErr != nil {
			return fmt.Errorf("table2 %s: safety: %v", c.label, r.SafetyErr)
		}
		labels = append(labels, c.label)
		results = append(results, r)
	}
	printAbortTable(labels, results)
	fmt.Println("\nshape checks: loss extends certification latency, widening the")
	fmt.Println("conflict window: every update class aborts more, random loss")
	fmt.Println("hurting more than the same rate in bursts.")
	return nil
}
