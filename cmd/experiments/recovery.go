package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/sim"
)

// recovery measures the availability side of dependability introduced by
// the site lifecycle refactor: a crashed site that stays down (the paper's
// terminal crash model) against one that rejoins by state transfer. The
// table reports committed throughput, the recovered site's outage —
// downtime, the recovery share of it, snapshot volume, delta catch-up —
// and the residual commit lag at the instant the site returned to Up.
func (h *harness) recovery() error {
	header("Crash recovery — terminal crash vs crash-and-rejoin (3 sites)")
	rows := []struct {
		label string
		f     faults.Config
	}{
		{"crash only", faults.Config{
			Crashes: []faults.Crash{{Site: 3, At: 15 * sim.Second}},
		}},
		{"crash+rejoin", faults.Config{
			Crashes:  []faults.Crash{{Site: 3, At: 15 * sim.Second}},
			Recovers: []faults.Recover{{Site: 3, At: 30 * sim.Second}},
		}},
		{"seq crash+rejoin", faults.Config{
			Crashes:  []faults.Crash{{Site: 1, At: 15 * sim.Second}},
			Recovers: []faults.Recover{{Site: 1, At: 30 * sim.Second}},
		}},
		{"loss5%+rejoin", faults.Config{
			Loss:     faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			Crashes:  []faults.Crash{{Site: 3, At: 15 * sim.Second}},
			Recovers: []faults.Recover{{Site: 3, At: 30 * sim.Second}},
		}},
	}
	var tasks []expr.Task
	for _, row := range rows {
		for _, p := range core.Protocols() {
			tasks = append(tasks, expr.Task{
				Label: fmt.Sprintf("%s/%s", row.label, p),
				Config: core.Config{
					Sites:    3,
					Clients:  300,
					Protocol: p,
					Faults:   row.f,
				},
			})
		}
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("recovery %w", err)
	}

	fmt.Printf("\n%d reps per point, mean±95%%CI; downtime and recovery are per rejoin,\n", h.reps)
	fmt.Println("transfer is snapshot volume, delta is deliveries replayed at install.")
	fmt.Printf("\n%-17s %-12s %12s %11s %13s %13s %12s %8s\n",
		"faultload", "protocol", "tpm", "committed", "downtime(ms)", "recovery(ms)", "transfer(KB)", "delta")
	i := 0
	for _, row := range rows {
		for _, p := range core.Protocols() {
			a := pts[i].Agg
			i++
			fmt.Printf("%-17s %-12s %12s %11.0f %13s %13s %12s %8.1f\n",
				row.label, p, a.TPM.String(), a.Committed.Mean,
				a.MeanDowntimeMS.String(), a.MeanRecoveryMS.String(),
				a.TransferKB.String(), a.DeltaApplied.Mean)
		}
		fmt.Println()
	}
	return nil
}
