package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/sim"
)

// overload sweeps the offered load past saturation and reports how the
// admission-control and flow-control machinery degrades: committed
// throughput must stay near its peak (graceful degradation) instead of
// collapsing, with the overflow surfacing as explicit rejections, bounded
// queue depths, and client retries. A no-admission comparison row at 2x
// shows the machinery is doing the work, not the workload being easy.
func (h *harness) overload() error {
	header("Overload — offered load vs committed throughput (3 sites)")
	factors := []float64{1, 1.5, 2, 3}
	satAt := 10 * sim.Second

	type row struct {
		label     string
		factor    float64
		admission *core.AdmissionConfig
	}
	var rows []row
	for _, f := range factors {
		rows = append(rows, row{
			label:     fmt.Sprintf("load x%.1f", f),
			factor:    f,
			admission: core.DefaultAdmissionConfig(),
		})
	}
	rows = append(rows, row{label: "load x2.0 (no admission)", factor: 2})

	var tasks []expr.Task
	for _, rw := range rows {
		for _, p := range core.Protocols() {
			fc := faults.Config{}
			if rw.factor > 1 {
				fc.Saturation = faults.Saturation{Factor: rw.factor, At: satAt}
			}
			tasks = append(tasks, expr.Task{
				Label: fmt.Sprintf("%s/%s", rw.label, p),
				Config: core.Config{
					Sites:     3,
					Clients:   300,
					Protocol:  p,
					Faults:    fc,
					Admission: rw.admission,
				},
			})
		}
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("overload %w", err)
	}

	fmt.Printf("\n%d reps per point, mean±95%%CI; rejected are explicit admission refusals,\n", h.reps)
	fmt.Println("retries are client resubmissions, backlog/queue are peak depths (bounded queues).")
	fmt.Printf("\n%-24s %-12s %12s %11s %10s %9s %10s %9s %11s\n",
		"offered load", "protocol", "tpm", "committed", "p95(ms)", "rejected", "retries", "backlog", "queue(KB)")
	peak := map[core.Protocol]float64{}
	at2x := map[core.Protocol]float64{}
	i := 0
	for _, rw := range rows {
		for _, p := range core.Protocols() {
			a := pts[i].Agg
			i++
			fmt.Printf("%-24s %-12s %12s %11.0f %10.1f %9.0f %10.0f %9.0f %11.1f\n",
				rw.label, p, a.TPM.String(), a.Committed.Mean, a.P95LatencyMS.Mean,
				a.Rejected.Mean, a.Retries.Mean, a.BacklogPeak.Mean, a.QueuePeakKB.Mean)
			if rw.admission != nil {
				if a.TPM.Mean > peak[p] {
					peak[p] = a.TPM.Mean
				}
				if rw.factor == 2 {
					at2x[p] = a.TPM.Mean
				}
			}
		}
		fmt.Println()
	}

	// The graceful-degradation acceptance bar: at 2x saturation, committed
	// throughput holds at least 80% of the sweep's peak.
	for _, p := range core.Protocols() {
		pct := 0.0
		if peak[p] > 0 {
			pct = 100 * at2x[p] / peak[p]
		}
		verdict := "GRACEFUL"
		if pct < 80 {
			verdict = "COLLAPSE"
		}
		fmt.Printf("%-12s at 2x saturation: %.0f tpm = %.0f%% of peak %.0f tpm -> %s\n",
			p, at2x[p], pct, peak[p], verdict)
	}
	return nil
}
