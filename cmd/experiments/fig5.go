package main

import "fmt"

// fig5and6 prints the performance (Figure 5: throughput, latency, abort
// rate) and resource usage (Figure 6: CPU, disk bandwidth, network) series
// over the client grid, for the five configurations of the paper: 1/3/6-CPU
// centralized servers and 3/6-site replicated databases.
func (h *harness) fig5and6(wantFig5, wantFig6 bool) error {
	if err := h.ensureSweep(); err != nil {
		return err
	}
	cfgs := h.configs()
	grid := h.clientGrid()
	cell := func(cfg config, clients int) *sweepPoint {
		for i := range h.sweep {
			p := &h.sweep[i]
			if p.cfg.name == cfg.name && p.clients == clients {
				return p
			}
		}
		return nil
	}
	printSeries := func(title, unit string, get func(*sweepPoint) float64, skipCentral bool) {
		fmt.Printf("\n%s (%s):\n%8s", title, unit, "clients")
		for _, c := range cfgs {
			fmt.Printf(" %10s", c.name)
		}
		fmt.Println()
		for _, n := range grid {
			fmt.Printf("%8d", n)
			for _, c := range cfgs {
				if skipCentral && c.sites == 1 {
					fmt.Printf(" %10s", "-")
					continue
				}
				p := cell(c, n)
				fmt.Printf(" %10.1f", get(p))
			}
			fmt.Println()
		}
	}

	if wantFig5 {
		header("Figure 5 — performance")
		printSeries("(a) Throughput", "committed tpm",
			func(p *sweepPoint) float64 { return p.res.TPM }, false)
		printSeries("(b) Latency", "ms, mean of committed",
			func(p *sweepPoint) float64 { return p.res.MeanLatencyMS }, false)
		printSeries("(c) Abort rate", "%",
			func(p *sweepPoint) float64 { return p.res.AbortRatePct }, false)
		fmt.Println("\nshape checks: 1 CPU saturates near 500 clients (~3000 tpm);")
		fmt.Println("3 sites track the 3-CPU server and 6 sites the 6-CPU server;")
		fmt.Println("abort rate explodes only for the saturated 1-CPU configuration.")
	}
	if wantFig6 {
		header("Figure 6 — resource usage")
		printSeries("(a) CPU usage", "%",
			func(p *sweepPoint) float64 { return p.res.CPUUtilPct }, false)
		printSeries("(b) Disk bandwidth usage", "%",
			func(p *sweepPoint) float64 { return p.res.DiskUtilPct }, false)
		printSeries("(c) Network traffic", "KB/s",
			func(p *sweepPoint) float64 { return p.res.NetKBps }, true)
		fmt.Println("\nshape checks: with 6 CPUs the disk, not the CPU, becomes the")
		fmt.Println("bottleneck (read one/write all); network grows linearly with")
		fmt.Println("clients and is slightly higher for 6 sites (group maintenance).")
	}
	return nil
}
