package main

import (
	"fmt"

	"repro/internal/core"
)

// fig5and6 prints the performance (Figure 5: throughput, latency, abort
// rate) and resource usage (Figure 6: CPU, disk bandwidth, network) series
// over the client grid, for the five configurations of the paper: 1/3/6-CPU
// centralized servers and 3/6-site replicated databases. Every cell is the
// mean ± 95% CI over -reps replications.
func (h *harness) fig5and6(wantFig5, wantFig6 bool) error {
	if err := h.ensureSweep(); err != nil {
		return err
	}
	cfgs := h.configs()
	grid := h.clientGrid()
	cell := func(cfg config, clients int) *sweepPoint {
		for i := range h.sweep {
			p := &h.sweep[i]
			if p.cfg.name == cfg.name && p.clients == clients {
				return p
			}
		}
		return nil
	}
	printSeries := func(title, unit string, get func(*sweepPoint) core.Stat, skipCentral bool) {
		fmt.Printf("\n%s (%s, mean±95%%CI over %d reps):\n%8s", title, unit, h.reps, "clients")
		for _, c := range cfgs {
			fmt.Printf(" %14s", c.name)
		}
		fmt.Println()
		for _, n := range grid {
			fmt.Printf("%8d", n)
			for _, c := range cfgs {
				if skipCentral && c.sites == 1 {
					fmt.Printf(" %14s", "-")
					continue
				}
				fmt.Printf(" %14s", get(cell(c, n)).String())
			}
			fmt.Println()
		}
	}

	if wantFig5 {
		header("Figure 5 — performance")
		printSeries("(a) Throughput", "committed tpm",
			func(p *sweepPoint) core.Stat { return p.agg.TPM }, false)
		printSeries("(b) Latency", "ms, mean of committed",
			func(p *sweepPoint) core.Stat { return p.agg.MeanLatencyMS }, false)
		printSeries("(c) Abort rate", "%",
			func(p *sweepPoint) core.Stat { return p.agg.AbortRatePct }, false)
		fmt.Println("\nshape checks: 1 CPU saturates near 500 clients (~3000 tpm);")
		fmt.Println("3 sites track the 3-CPU server and 6 sites the 6-CPU server;")
		fmt.Println("abort rate explodes only for the saturated 1-CPU configuration.")
	}
	if wantFig6 {
		header("Figure 6 — resource usage")
		printSeries("(a) CPU usage", "%",
			func(p *sweepPoint) core.Stat { return p.agg.CPUUtilPct }, false)
		printSeries("(b) Disk bandwidth usage", "%",
			func(p *sweepPoint) core.Stat { return p.agg.DiskUtilPct }, false)
		printSeries("(c) Network traffic", "KB/s",
			func(p *sweepPoint) core.Stat { return p.agg.NetKBps }, true)
		fmt.Println("\nshape checks: with 6 CPUs the disk, not the CPU, becomes the")
		fmt.Println("bottleneck (read one/write all); network grows linearly with")
		fmt.Println("clients and is slightly higher for 6 sites (group maintenance).")
	}
	return nil
}
