package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/gcs"
)

// protocols compares the two DBSM termination variants — conservative
// certification on final total order vs. optimistic certification on
// tentative (spontaneous) delivery — across a client sweep, fault-free and
// under loss. The headline column is the certification-latency split: the
// optimistic variant decides one ordering round earlier (cert-decide), at
// the cost of rollbacks when the orders diverge; the final outcome latency
// (cert-final) is protocol-determined and stays put.
func (h *harness) protocols() error {
	header("Protocol comparison — conservative vs optimistic delivery (3 sites)")
	clients := []int{300, 600, 900}
	if h.fast {
		clients = []int{300, 900}
	}
	losses := []struct {
		label string
		loss  faults.Loss
	}{
		{"fault-free", faults.Loss{}},
		{"loss 5%", faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
	}
	var tasks []expr.Task
	for _, lc := range losses {
		for _, c := range clients {
			for _, p := range core.Protocols() {
				tasks = append(tasks, expr.Task{
					Label: fmt.Sprintf("%s/%s/%dc", p, lc.label, c),
					Config: core.Config{
						Sites:       3,
						CPUsPerSite: 1,
						Clients:     c,
						Protocol:    p,
						Faults:      faults.Config{Loss: lc.loss},
						GCSTweak:    func(g *gcs.Config) { g.BufferBytes = 96 * 1024 },
					},
				})
			}
		}
	}
	pts, err := h.runAll(tasks)
	if err != nil {
		return fmt.Errorf("protocols %w", err)
	}

	fmt.Printf("\n%d reps per point, mean±95%%CI; cert-decide is commit request -> first verdict,\n", h.reps)
	fmt.Println("cert-final is commit request -> final outcome (identical for conservative).")
	fmt.Printf("\n%-11s %-12s %8s %12s %12s %14s %14s %10s %10s %10s\n",
		"faults", "protocol", "clients", "tpm", "lat (ms)",
		"cert-decide", "cert-final", "mispred%", "rollbacks", "recert")
	i := 0
	for _, lc := range losses {
		for _, c := range clients {
			for _, p := range core.Protocols() {
				a := pts[i].Agg
				i++
				fmt.Printf("%-11s %-12s %8d %12s %12s %14s %14s %10.2f %10.1f %10.1f\n",
					lc.label, p, c,
					a.TPM.String(), a.MeanLatencyMS.String(),
					a.MeanCertDecideMS.String(),
					fmt.Sprintf("%.1f", a.CertLat.Mean()),
					a.OptMispredictPct.Mean,
					a.Rollbacks.Mean, a.Recertified.Mean)
			}
		}
		fmt.Println()
	}
	return nil
}
