package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/metrics"
)

// fig4 reproduces the model validation Q-Q plots (Figure 4): quantiles of
// simulated transaction latency against quantiles of the reference system,
// for read-only and update transactions, with a TPC-C run of 20 clients and
// 5000 transactions. Both sides pool -reps replications, so the compared
// distributions are multi-run empirical distributions.
//
// SUBSTITUTION: the paper's reference is a real PostgreSQL run on the test
// hardware. Without that testbed, the reference here is an independent
// replication of the model (disjoint seed range): the Q-Q plot then
// validates distributional stability the same way — points near the
// diagonal mean the two latency distributions agree.
func (h *harness) fig4() error {
	header("Figure 4 — transaction latency validation (Q-Q)")
	txns := 5000
	if h.fast {
		txns = 1500
	}
	refSeed := h.seed + 1000
	if refSeed == 0 {
		refSeed = 1000 // Seed==0 means "use the base seed" and would alias the reference onto the simulation
	}
	pts, err := h.runAll([]expr.Task{
		{Label: "sim", Config: core.Config{Sites: 1, Clients: 20, TotalTxns: txns}},
		{Label: "ref", Config: core.Config{Sites: 1, Clients: 20, TotalTxns: txns, Seed: refSeed}},
	})
	if err != nil {
		return fmt.Errorf("fig4 %w", err)
	}
	simAgg, refAgg := pts[0].Agg, pts[1].Agg

	show := func(title string, a, b *metrics.Sample) {
		fmt.Printf("\n%s (n=%d vs n=%d over %d reps each), latency in ms:\n", title, a.N(), b.N(), h.reps)
		fmt.Printf("%10s %12s %12s %10s\n", "quantile", "simulation", "reference", "ratio")
		worst := 0.0
		for _, q := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			x, y := a.Quantile(q), b.Quantile(q)
			ratio := 0.0
			if y != 0 {
				ratio = x / y
			}
			if d := math.Abs(ratio - 1); d > worst && q <= 0.95 {
				worst = d
			}
			fmt.Printf("%10.2f %12.2f %12.2f %10.3f\n", q, x, y, ratio)
		}
		fmt.Printf("max deviation below p95: %.1f%% (points near the diagonal => distributions agree)\n", worst*100)
	}
	show("read-only transactions", simAgg.LatReadOnly, refAgg.LatReadOnly)
	show("update transactions", simAgg.LatUpdate, refAgg.LatUpdate)
	return nil
}
