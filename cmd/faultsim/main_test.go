package main

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

// goldenRepro is a minimized repro the explorer produced against the
// pre-PR-7 uniform-delivery bug, resurrected through the test-only
// NonUniformSequencer hook: one partition gene isolating the sequencer
// mid-run makes it commit a transaction the survivors renumber. The file is
// self-contained, so this pins the whole -replay-file path: load, rebuild
// the config (hook included), replay, classify.
const goldenRepro = "testdata/repro-conservative-s3-non-prefix--2362459762591223984.json"

func TestGoldenReproReproduces(t *testing.T) {
	r, err := explore.LoadRepro(goldenRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !r.Hooks.NonUniformSequencer {
		t.Fatalf("golden repro lost its hook: %+v", r.Hooks)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("golden repro no longer reproduces (verdict %q)", detail)
	}
	if r.Expect.Kind != "non-prefix" || r.Triage == nil || r.Triage.Kind != "non-prefix" {
		t.Fatalf("golden repro triage drifted: expect=%+v triage=%+v", r.Expect, r.Triage)
	}
}

// residualWindowRepro is the explorer's minimized reproduction of the
// residual non-uniform delivery window documented in gcs/totalorder.go: at
// n=5 an ordering announcement held by only the sequencer and one other
// member (2 < the majority of 3) lets that member deliver and commit; a
// partition isolating exactly those two sites then makes the survivors
// renumber — a non-prefix divergence at the minority member. No simultaneous
// double crash is needed; one partition gene is the whole schedule.
const residualWindowRepro = "testdata/repro-conservative-s5-non-prefix--3610918436655193305.json"

// renumberWedgeRepro is an OPEN FINDING the explorer surfaced at n=5 (see
// ROADMAP.md): when the sequencer dies, survivors renumber the flush-covered
// leftovers from their local maxAssigned — but the dying sequencer's final
// announcement batches can have been processed by a strict subset of the
// survivors before the flush freeze, so the renumbering bases disagree (56
// vs 44 in this repro) and one member's global->message map is left with
// permanent holes: it wedges (its log stays a clean prefix) and the
// end-of-run full-equality condition reports a length mismatch. The guard
// pins the finding; fixing it means deriving the renumbering base from
// flush-agreed state instead of local processing progress, at which point
// this test should flip to asserting the repro no longer reproduces.
const renumberWedgeRepro = "testdata/repro-conservative-s5-length-mismatch--513150766704571529.json"

// TestResidualWindowReproduces keeps the documented n>=5 window honest: the
// repro must keep reproducing for exactly as long as the totalorder.go
// comment documents the window as open. If a change closes it (full uniform
// delivery at every member), update the comment and flip this guard.
func TestResidualWindowReproduces(t *testing.T) {
	r, err := explore.LoadRepro(residualWindowRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if r.Hooks != (core.Hooks{}) {
		t.Fatalf("residual-window repro must not need any hook: %+v", r.Hooks)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("the documented n>=5 window no longer reproduces (verdict %q) — "+
			"if it was closed on purpose, update gcs/totalorder.go's comment and this guard", detail)
	}
	if r.Triage == nil || r.Triage.Kind != "non-prefix" {
		t.Fatalf("window repro triage drifted: %+v", r.Triage)
	}
}

// TestRenumberWedgeReproduces pins the open renumbering-divergence finding.
// When the renumbering base is fixed, this repro should stop reproducing —
// flip the guard and retire the ROADMAP item.
func TestRenumberWedgeReproduces(t *testing.T) {
	r, err := explore.LoadRepro(renumberWedgeRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("renumbering-divergence finding no longer reproduces (verdict %q) — "+
			"if the renumbering base was fixed, flip this guard and close the ROADMAP item", detail)
	}
	if r.Triage == nil || r.Triage.Kind != "length-mismatch" {
		t.Fatalf("wedge repro triage drifted: %+v", r.Triage)
	}
}

// TestRunReplayFile pins the command-level exit codes: 1 when the violation
// reproduces, 2 on a missing file.
func TestRunReplayFile(t *testing.T) {
	if got := runReplayFile(goldenRepro); got != 1 {
		t.Fatalf("runReplayFile(golden) = %d, want 1 (violation reproduces)", got)
	}
	if got := runReplayFile(filepath.Join(t.TempDir(), "missing.json")); got != 2 {
		t.Fatalf("runReplayFile(missing) = %d, want 2", got)
	}
}
