package main

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

// goldenRepro is a minimized repro the explorer produced against the
// pre-PR-7 uniform-delivery bug, resurrected through the test-only
// NonUniformSequencer hook: one partition gene isolating the sequencer
// mid-run makes it commit a transaction the survivors renumber. The file is
// self-contained, so this pins the whole -replay-file path: load, rebuild
// the config (hook included), replay, classify.
const goldenRepro = "testdata/repro-conservative-s3-non-prefix--2362459762591223984.json"

func TestGoldenReproReproduces(t *testing.T) {
	r, err := explore.LoadRepro(goldenRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !r.Hooks.NonUniformSequencer {
		t.Fatalf("golden repro lost its hook: %+v", r.Hooks)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("golden repro no longer reproduces (verdict %q)", detail)
	}
	if r.Expect.Kind != "non-prefix" || r.Triage == nil || r.Triage.Kind != "non-prefix" {
		t.Fatalf("golden repro triage drifted: expect=%+v triage=%+v", r.Expect, r.Triage)
	}
}

// residualWindowRepro is the explorer's minimized reproduction of the
// residual non-uniform delivery window documented in gcs/totalorder.go: at
// n=5 an ordering announcement held by only the sequencer and one other
// member (2 < the majority of 3) lets that member deliver and commit; a
// partition isolating exactly those two sites then makes the survivors
// renumber — a non-prefix divergence at the minority member. No simultaneous
// double crash is needed; one partition gene is the whole schedule.
const residualWindowRepro = "testdata/repro-conservative-s5-non-prefix--3610918436655193305.json"

// renumberWedgeRepro is the explorer's minimized reproduction of the FIXED
// sequencer-handover renumbering divergence (ROADMAP item 0): a member that
// installed the post-crash view late had processed the new sequencer's first
// announcements while frozen, anchored its leftover renumbering past them
// (base 56 vs the survivors' flush-agreed 44), and wedged with permanent
// holes in its global->message map — a length-mismatch verdict. The fix
// derives the renumbering base from flush-agreed state only
// (gcs/totalorder.go onInstall + rollbackUnagreed); this regression guard
// asserts the repro stays dead.
const renumberWedgeRepro = "testdata/repro-conservative-s5-length-mismatch--513150766704571529.json"

// TestResidualWindowReproduces keeps the documented n>=5 window honest: the
// repro must keep reproducing for exactly as long as the totalorder.go
// comment documents the window as open. If a change closes it (full uniform
// delivery at every member), update the comment and flip this guard.
func TestResidualWindowReproduces(t *testing.T) {
	r, err := explore.LoadRepro(residualWindowRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if r.Hooks != (core.Hooks{}) {
		t.Fatalf("residual-window repro must not need any hook: %+v", r.Hooks)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("the documented n>=5 window no longer reproduces (verdict %q) — "+
			"if it was closed on purpose, update gcs/totalorder.go's comment and this guard", detail)
	}
	if r.Triage == nil || r.Triage.Kind != "non-prefix" {
		t.Fatalf("window repro triage drifted: %+v", r.Triage)
	}
}

// TestRenumberWedgeReproduces is the regression guard for the fixed
// renumbering-divergence finding: the minimized schedule that used to wedge
// one survivor must now run to a SAFE verdict (faultsim -replay-file exits 0
// on it). The repro must not need any resurrection hook — the fix lives in
// the production path.
func TestRenumberWedgeReproduces(t *testing.T) {
	r, err := explore.LoadRepro(renumberWedgeRepro)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if r.Hooks != (core.Hooks{}) {
		t.Fatalf("wedge repro must not need any hook: %+v", r.Hooks)
	}
	reproduced, detail, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if reproduced {
		t.Fatalf("the fixed renumbering divergence reproduced again (%s) — "+
			"the flush-agreed renumbering base in gcs/totalorder.go regressed", detail)
	}
	if got := runReplayFile(renumberWedgeRepro); got != 0 {
		t.Fatalf("runReplayFile(wedge) = %d, want 0 (violation fixed)", got)
	}
}

// TestRunReplayFile pins the command-level exit codes: 1 when the violation
// reproduces, 2 on a missing file.
func TestRunReplayFile(t *testing.T) {
	if got := runReplayFile(goldenRepro); got != 1 {
		t.Fatalf("runReplayFile(golden) = %d, want 1 (violation reproduces)", got)
	}
	if got := runReplayFile(filepath.Join(t.TempDir(), "missing.json")); got != 2 {
		t.Fatalf("runReplayFile(missing) = %d, want 2", got)
	}
}
