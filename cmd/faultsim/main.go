// Command faultsim runs the Section 5.3 dependability matrix: for each fault
// type — clock drift, scheduling latency, random loss, bursty loss, crash —
// it executes replicated runs over several seeds and verifies the safety
// condition: all operational sites commit exactly the same sequence of
// transactions (compared off-line after each run), with a crashed site's log
// a prefix of the survivors'.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("faultsim", flag.ExitOnError)
	seeds := fs.Int("seeds", 3, "seeds per fault type")
	txns := fs.Int("txns", 2000, "transactions per run")
	clients := fs.Int("clients", 300, "clients per run")
	sites := fs.Int("sites", 3, "replica count")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	matrix := []struct {
		name string
		f    faults.Config
	}{
		{"clock-drift 5% (site 2)", faults.Config{ClockDriftRate: 0.05, ClockDriftSites: []int32{2}}},
		{"clock-drift 5% (all sites)", faults.Config{ClockDriftRate: 0.05}},
		{"sched-latency exp(5ms) (all)", faults.Config{SchedLatencyMean: 5 * sim.Millisecond}},
		{"random loss 5%", faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05}}},
		{"random loss 10%", faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.10}}},
		{"bursty loss 5% (burst~5)", faults.Config{Loss: faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}}},
		{"crash non-sequencer @20s", faults.Config{Crashes: []faults.Crash{{Site: 3, At: 20 * sim.Second}}}},
		{"crash sequencer @20s", faults.Config{Crashes: []faults.Crash{{Site: 1, At: 20 * sim.Second}}}},
		{"loss 5% + crash @20s", faults.Config{
			Loss:    faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			Crashes: []faults.Crash{{Site: 2, At: 20 * sim.Second}},
		}},
	}

	failures := 0
	for _, row := range matrix {
		for s := 0; s < *seeds; s++ {
			seed := int64(1000*s + 17)
			start := time.Now()
			verdict, detail := runOne(*sites, *clients, *txns, seed, row.f)
			if verdict != "SAFE" {
				failures++
			}
			fmt.Printf("%-30s seed=%-5d %-6s (%v) %s\n",
				row.name, seed, verdict, time.Since(start).Round(time.Millisecond), detail)
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d run(s) violated safety\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall runs safe: every operational site committed the same sequence")
}

func runOne(sites, clients, txns int, seed int64, f faults.Config) (string, string) {
	m, err := core.New(core.Config{
		Sites:      sites,
		Clients:    clients,
		TotalTxns:  txns,
		Seed:       seed,
		Faults:     f,
		MaxSimTime: 20 * sim.Minute,
	})
	if err != nil {
		return "ERROR", err.Error()
	}
	r, err := m.Run()
	if err != nil {
		return "ERROR", err.Error()
	}
	switch {
	case r.SafetyErr != nil:
		return "UNSAFE", r.SafetyErr.Error()
	case r.Inconsistencies != 0:
		return "UNSAFE", fmt.Sprintf("%d local/global inconsistencies", r.Inconsistencies)
	default:
		return "SAFE", fmt.Sprintf("committed=%d tpm=%.0f viewchanges=%d", r.Committed, r.TPM, r.GCS.ViewChanges)
	}
}
