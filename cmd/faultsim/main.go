// Command faultsim checks the Section 5.3 safety condition — all operational
// sites commit identical transaction sequences, and a crashed or
// partitioned-minority site's log is a prefix of the survivors' (verified by
// internal/check) — under two kinds of fault load:
//
//   - the fixed dependability matrix: the paper's fault rows (clock drift,
//     scheduling latency, random loss, bursty loss, crashes) plus network
//     partition-and-heal rows, each replicated over several seeds;
//   - randomized campaigns (-campaign N): seeded adversarial schedules from
//     internal/campaign composing every fault type, fanned out across cores
//     by the internal/expr runner, with verdicts aggregated per fault type.
//
// Every campaign schedule is reproducible from its printed seed via -replay.
// The process exits non-zero when any run violates safety.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/profiles"
	"repro/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("faultsim", flag.ExitOnError)
	seeds := fs.Int("seeds", 3, "seeds per fixed-matrix fault type")
	txns := fs.Int("txns", 2000, "transactions per run")
	clients := fs.Int("clients", 300, "clients per run")
	aggClients := fs.Int("aggregate", 0, "AggregateClients threshold: at or above it the aggregate client tier replaces individual clients (0 = always individual)")
	sites := fs.Int("sites", 3, "replica count (per group when -groups > 1)")
	groups := fs.Int("groups", 1, "replication groups (partial replication); campaign mode only")
	parallel := fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	nCampaign := fs.Int("campaign", 0, "run N randomized fault schedules instead of the fixed matrix")
	baseSeed := fs.Int64("seed", 1, "campaign base seed (schedule i uses a seed derived from it)")
	replay := fs.Int64("replay", 0, "re-run the single campaign schedule with this seed")
	replayFile := fs.String("replay-file", "", "replay a saved repro JSON file; exits non-zero when its violation reproduces")
	doExplore := fs.Bool("explore", false, "run the coverage-guided adversarial explorer instead of the fixed matrix")
	generations := fs.Int("generations", 8, "explorer generations")
	population := fs.Int("population", 16, "explorer schedules per generation")
	corpusDir := fs.String("corpus", "corpus", "explorer output directory (coverage corpus + minimized repros)")
	list := fs.Bool("list", false, "print the resolved fault matrix or campaign schedule and exit without running")
	rejoin := fs.Bool("rejoin", false, "force every campaign schedule to include a crash-and-rejoin")
	overload := fs.Bool("overload", false, "force every campaign schedule to include saturation and a slow-node gray failure")
	short := fs.Bool("short", false, "smoke mode for CI: small transaction counts, clients, and seeds")
	protoFlag := fs.String("protocol", "both", "termination variant under test: conservative, optimistic, or both")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	stopProfiles, perr := profiles.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", perr)
		os.Exit(1)
	}
	if *short {
		*txns, *clients, *seeds = 300, 60, 2
	}
	var protocols []core.Protocol
	switch *protoFlag {
	case "both":
		protocols = core.Protocols()
	case string(core.ProtocolConservative), string(core.ProtocolOptimistic):
		protocols = []core.Protocol{core.Protocol(*protoFlag)}
	default:
		fmt.Fprintf(os.Stderr, "faultsim: unknown -protocol %q\n", *protoFlag)
		os.Exit(2)
	}

	if *replayFile != "" {
		// A saved repro is self-contained (workload, schedule, seed,
		// expected verdict): replay it and fail when the violation is
		// still there, independent of every other flag.
		stopProfiles()
		os.Exit(runReplayFile(*replayFile))
	}

	if *groups > 1 && *nCampaign == 0 && *replay == 0 && !*list && !*doExplore {
		// The fixed matrix encodes single-group assumptions (rejoin rows,
		// site numbering); group mode runs randomized campaigns only.
		fmt.Fprintln(os.Stderr, "faultsim: -groups needs -campaign N (or -replay/-list)")
		os.Exit(2)
	}
	base := core.Config{
		Sites:            *sites,
		Groups:           *groups,
		Clients:          *clients,
		TotalTxns:        *txns,
		AggregateClients: *aggClients,
		MaxSimTime:       20 * sim.Minute,
		// Overload protection on: saturation and slow-node rows must
		// degrade gracefully (bounded queues, explicit rejections) rather
		// than thrash, and every other row must stay safe with the
		// admission machinery in the loop.
		Admission: core.DefaultAdmissionConfig(),
	}
	params := campaign.Params{Sites: *sites, Groups: *groups, Rejoin: *rejoin, Overload: *overload}
	if *groups > 1 {
		params.Rejoin = false // crash recovery is out of the group-mode scope
	}
	if *short {
		// Shorter runs need faults that land while traffic still flows.
		params.Horizon = 15 * sim.Second
	}

	if *list {
		// Replay debugging aid: show exactly what a seed resolves to —
		// the full schedule of a campaign, or the fixed matrix — without
		// running a single simulation.
		switch {
		case *replay != 0:
			listSchedules([]campaign.Schedule{campaign.New(*replay, params)})
		case *nCampaign > 0:
			listSchedules(campaign.Plan(*baseSeed, *nCampaign, params))
		default:
			listMatrix()
		}
		stopProfiles()
		return
	}

	failures := 0
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p

		// The reproduce hint must carry every flag that shapes the
		// schedule and the workload — in particular -short, which changes
		// the campaign horizon and therefore the schedule a seed
		// generates, and -protocol, which selects the pipeline under
		// test.
		repro := fmt.Sprintf("faultsim -sites %d -clients %d -txns %d", *sites, *clients, *txns)
		if *short {
			repro = "faultsim -short -sites " + fmt.Sprint(*sites)
		}
		if *groups > 1 {
			repro += fmt.Sprintf(" -groups %d", *groups)
		}
		if *overload {
			repro += " -overload"
		}
		repro += " -protocol " + string(p)

		switch {
		case *doExplore:
			failures += runExplore(cfg, params, *baseSeed, *generations, *population, *parallel, *corpusDir)
		case *replay != 0:
			failures += runCampaign(cfg, []campaign.Schedule{campaign.New(*replay, params)}, *parallel, repro, true)
		case *nCampaign > 0:
			failures += runCampaign(cfg, campaign.Plan(*baseSeed, *nCampaign, params), *parallel, repro, false)
		default:
			failures += runMatrix(cfg, *seeds, *parallel)
		}
	}
	stopProfiles() // flush profiles before any exit path
	if failures > 0 {
		fmt.Printf("\n%d run(s) violated safety or errored\n", failures)
		os.Exit(1)
	}
	fmt.Printf("\nall runs safe (%v): every operational site committed the same sequence\n", protocols)
}

// matrix is the fixed dependability matrix: the paper's Section 5.3 fault
// rows plus partition-and-heal rows for the network-split extension.
func matrix() []struct {
	name string
	f    faults.Config
} {
	return []struct {
		name string
		f    faults.Config
	}{
		{"clock-drift 5% (site 2)", faults.Config{ClockDriftRate: 0.05, ClockDriftSites: []int32{2}}},
		{"clock-drift 5% (all sites)", faults.Config{ClockDriftRate: 0.05}},
		{"sched-latency exp(5ms) (all)", faults.Config{SchedLatencyMean: 5 * sim.Millisecond}},
		{"random loss 5%", faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05}}},
		{"random loss 10%", faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.10}}},
		{"bursty loss 5% (burst~5)", faults.Config{Loss: faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}}},
		{"crash non-sequencer @20s", faults.Config{Crashes: []faults.Crash{{Site: 3, At: 20 * sim.Second}}}},
		{"crash sequencer @20s", faults.Config{Crashes: []faults.Crash{{Site: 1, At: 20 * sim.Second}}}},
		{"loss 5% + crash @20s", faults.Config{
			Loss:    faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			Crashes: []faults.Crash{{Site: 2, At: 20 * sim.Second}},
		}},
		{"partition site 3 @20s heal @40s", faults.Config{
			Partitions: []faults.Partition{{Sites: []int32{3}, At: 20 * sim.Second, Heal: 40 * sim.Second}},
		}},
		{"partition site 3 @20s (no heal)", faults.Config{
			Partitions: []faults.Partition{{Sites: []int32{3}, At: 20 * sim.Second}},
		}},
		{"crash non-seq @20s rejoin @35s", faults.Config{
			Crashes:  []faults.Crash{{Site: 3, At: 20 * sim.Second}},
			Recovers: []faults.Recover{{Site: 3, At: 35 * sim.Second}},
		}},
		{"crash sequencer @20s rejoin @35s", faults.Config{
			Crashes:  []faults.Crash{{Site: 1, At: 20 * sim.Second}},
			Recovers: []faults.Recover{{Site: 1, At: 35 * sim.Second}},
		}},
		{"loss 5% + crash @20s rejoin @35s", faults.Config{
			Loss:     faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			Crashes:  []faults.Crash{{Site: 2, At: 20 * sim.Second}},
			Recovers: []faults.Recover{{Site: 2, At: 35 * sim.Second}},
		}},
		{"saturation x2 @15s (sustained)", faults.Config{
			Saturation: faults.Saturation{Factor: 2, At: 15 * sim.Second},
		}},
		{"slow-node x10 non-seq @15s", faults.Config{
			SlowNodes: []faults.SlowNode{{Site: 3, Factor: 10, At: 15 * sim.Second}},
		}},
		{"slow-node x10 sequencer @15s", faults.Config{
			SlowNodes: []faults.SlowNode{{Site: 1, Factor: 10, At: 15 * sim.Second}},
		}},
		{"saturation x2 + slow-node x10", faults.Config{
			Saturation: faults.Saturation{Factor: 2, At: 15 * sim.Second},
			SlowNodes:  []faults.SlowNode{{Site: 3, Factor: 10, At: 15 * sim.Second}},
		}},
		{"duplicate 10% (all)", faults.Config{
			Duplicate: faults.Duplicate{Rate: 0.10, At: 5 * sim.Second},
		}},
		{"reorder 10% (all)", faults.Config{
			Reorder: faults.Reorder{Rate: 0.10, At: 5 * sim.Second},
		}},
	}
}

// listMatrix prints the resolved fixed matrix without running it.
func listMatrix() {
	fmt.Println("fixed dependability matrix:")
	for _, row := range matrix() {
		sched := campaign.Schedule{Faults: row.f}
		fmt.Printf("  %s\n%s", row.name, sched.Describe())
	}
}

// listSchedules prints resolved campaign schedules without running them.
func listSchedules(plan []campaign.Schedule) {
	for i, s := range plan {
		fmt.Printf("campaign[%3d] seed=%-20d %s\n%s", i, s.Seed, s.Label(), s.Describe())
	}
}

// runMatrix fans the (row × seed) grid across the pool and prints one
// verdict per run, in deterministic row order.
func runMatrix(base core.Config, seeds, parallel int) int {
	fmt.Printf("\n=== fixed matrix, protocol %s ===\n", base.Protocol)
	rows := matrix()
	var tasks []expr.Task
	for _, row := range rows {
		for s := 0; s < seeds; s++ {
			cfg := base
			cfg.Seed = int64(1000*s + 17)
			cfg.Faults = row.f
			tasks = append(tasks, expr.Task{Label: row.name, Config: cfg, Reps: 1})
		}
	}
	// The aggregate client tier must stay safe under faults too: re-run a
	// loss row and a crash row with the tier forced on (unless the whole
	// matrix already runs aggregated via -aggregate).
	if base.AggregateClients == 0 {
		for _, row := range rows {
			if row.name != "random loss 5%" && row.name != "crash non-sequencer @20s" {
				continue
			}
			for s := 0; s < seeds; s++ {
				cfg := base
				cfg.Seed = int64(1000*s + 17)
				cfg.Faults = row.f
				cfg.AggregateClients = 1
				tasks = append(tasks, expr.Task{Label: row.name + " [aggregate]", Config: cfg, Reps: 1})
			}
		}
	}
	start := time.Now()
	points, _ := (&expr.Runner{Workers: parallel}).Run(tasks)
	failures := 0
	for _, pt := range points {
		verdict, detail := verdictOf(pt)
		if verdict != "SAFE" {
			failures++
		}
		fmt.Printf("%-33s seed=%-5d %-6s %s\n", pt.Task.Label, pt.Task.Config.Seed, verdict, detail)
	}
	fmt.Printf("\n%d runs in %v\n", len(points), time.Since(start).Round(time.Millisecond))
	return failures
}

// runCampaign executes randomized schedules through the pool, prints one
// verdict line per schedule, and aggregates verdicts per fault type.
func runCampaign(base core.Config, plan []campaign.Schedule, parallel int, repro string, verbose bool) int {
	fmt.Printf("\n=== campaign, protocol %s ===\n", base.Protocol)
	start := time.Now()
	points, _ := (&expr.Runner{Workers: parallel}).Run(campaign.Tasks(plan, base))

	type tally struct{ runs, unsafe int }
	perKind := map[string]*tally{}
	for _, k := range campaign.Kinds() {
		perKind[k] = &tally{}
	}
	failures := 0
	for i, pt := range points {
		sched := plan[i]
		verdict, detail := verdictOf(pt)
		safe := verdict == "SAFE"
		if !safe {
			failures++
		}
		for _, k := range sched.Kinds {
			perKind[k].runs++
			if !safe {
				perKind[k].unsafe++
			}
		}
		fmt.Printf("campaign[%3d] seed=%-20d %-40s %-6s %s\n", i, sched.Seed, sched.Label(), verdict, detail)
		if verbose {
			fmt.Printf("  faults: %+v\n", sched.Faults)
		}
		if !safe {
			fmt.Printf("  reproduce: %s -replay %d\n", repro, sched.Seed)
		}
	}

	fmt.Printf("\nper-fault-type verdicts (%d schedules, %v):\n", len(points), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %-15s %5s %7s\n", "fault type", "runs", "unsafe")
	for _, k := range campaign.Kinds() {
		t := perKind[k]
		fmt.Printf("  %-15s %5d %7d\n", k, t.runs, t.unsafe)
	}
	return failures
}

// runExplore runs the coverage-guided adversarial explorer: generation zero
// replays the random campaign's schedules, later generations mutate the
// coverage corpus. Every violation found is delta-debugged to a locally
// minimal schedule and saved under the corpus directory as a self-contained
// repro JSON (replayable with -replay-file); the coverage corpus itself is
// saved as corpus.json.
func runExplore(base core.Config, params campaign.Params, seed int64, generations, population, parallel int, corpusDir string) int {
	fmt.Printf("\n=== explore, protocol %s ===\n", base.Protocol)
	// One corpus per protocol: the searches are independent and would
	// otherwise overwrite each other's corpus.json.
	corpusDir = filepath.Join(corpusDir, string(base.Protocol))
	start := time.Now()
	space := explore.Space{
		Sites:   params.Sites,
		Groups:  params.Groups,
		Horizon: params.Horizon,
		Rejoin:  params.Rejoin,
	}
	rep, err := explore.Run(explore.Options{
		Base:        base,
		Space:       space,
		Seed:        seed,
		Generations: generations,
		Population:  population,
		Workers:     parallel,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim: explore:", err)
		return 1
	}
	if path, err := rep.WriteCorpus(corpusDir); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim: corpus:", err)
	} else {
		fmt.Printf("explore: %d runs, %d coverage buckets, corpus (%d entries) -> %s\n",
			rep.Runs, rep.Buckets, len(rep.Corpus), path)
	}

	// Minimize and persist the first few distinct violations; each probe
	// is a full run, so the shrink budget is bounded.
	const maxRepros = 3
	for i, f := range rep.Found {
		if i >= maxRepros {
			fmt.Printf("explore: %d further violation(s) not minimized\n", len(rep.Found)-maxRepros)
			break
		}
		fmt.Printf("explore: violation at run %d (seed %d): %s\n", f.Run, f.Seed, f.Detail)
		min, stats := explore.Minimize(base, space, f.Genes, f.Seed)
		fmt.Printf("explore: minimized %d -> %d gene(s) in %d probes\n", stats.From, stats.To, stats.Probes)
		res, err := explore.Rerun(base, space, min, f.Seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsim: rerun:", err)
			res = f.Results
		}
		r := explore.NewRepro(base, space, min, f.Seed, res)
		if path, err := r.Save(corpusDir); err != nil {
			fmt.Fprintln(os.Stderr, "faultsim: repro:", err)
		} else {
			fmt.Printf("explore: repro -> %s (replay: faultsim -replay-file %s)\n", path, path)
		}
	}
	fmt.Printf("\nexplore done in %v\n", time.Since(start).Round(time.Millisecond))
	return len(rep.Found)
}

// runReplayFile replays a saved repro and reports whether its violation is
// still present: 1 (with the triage annotation) when it reproduces, 0 when
// the tree no longer exhibits it, 2 on file or config errors.
func runReplayFile(path string) int {
	r, err := explore.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		return 2
	}
	fmt.Printf("replaying %s: protocol=%s sites=%d groups=%d seed=%d expect=%s/%s\n",
		path, r.Protocol, r.Sites, r.Groups, r.Seed, r.Expect.Verdict, r.Expect.Kind)
	reproduced, detail, err := r.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		return 2
	}
	if !reproduced {
		fmt.Printf("did not reproduce: %s\n", detail)
		return 0
	}
	fmt.Printf("REPRODUCED: %s\n", detail)
	if t := r.Triage; t != nil {
		fmt.Printf("triage: kind=%s site=%d ref=%d group=%d pos=%d detail=%q\n",
			t.Kind, t.Site, t.Ref, t.Group, t.Pos, t.Detail)
	}
	return 1
}

// verdictOf classifies one completed grid point.
func verdictOf(pt expr.Point) (string, string) {
	if pt.Err != nil {
		return "ERROR", pt.Err.Error()
	}
	r := pt.Agg.Runs[0]
	switch {
	case r.SafetyErr != nil:
		return "UNSAFE", r.SafetyErr.Error()
	case r.RejoinViolations != 0:
		return "UNSAFE", fmt.Sprintf("%d rejoin prefix violations", r.RejoinViolations)
	case r.Inconsistencies != 0:
		return "UNSAFE", fmt.Sprintf("%d local/global inconsistencies", r.Inconsistencies)
	case r.CertDrops != 0:
		// Not a serializability violation, but a payload vanished: a
		// marshaling bug the campaign must fail on, not swallow.
		return "UNSAFE", fmt.Sprintf("%d certification payloads dropped on unmarshal", r.CertDrops)
	default:
		detail := fmt.Sprintf("committed=%d tpm=%.0f viewchanges=%d quorumlosses=%d",
			r.Committed, r.TPM, r.GCS.ViewChanges, r.GCS.QuorumLosses)
		if r.Protocol == core.ProtocolOptimistic {
			detail += fmt.Sprintf(" rollbacks=%d mispred=%.1f%%", r.Rollbacks, r.OptMispredictPct)
		}
		if r.Recoveries > 0 {
			detail += fmt.Sprintf(" recoveries=%d recovery=%.0fms transfer=%.0fKB delta=%d lag=%d",
				r.Recoveries, r.MeanRecoveryMS, float64(r.TransferBytes)/1024,
				r.DeltaApplied, maxRejoinLag(r))
		}
		if r.Rejected > 0 || r.Retries > 0 {
			detail += fmt.Sprintf(" rejected=%d retries=%d backlogpeak=%d queuepeak=%dKB",
				r.Rejected, r.Retries, r.BacklogPeak, r.GCS.QueuePeakBytes/1024)
		}
		if r.Groups > 1 {
			detail += fmt.Sprintf(" multigroup=%.1f%% xretries=%d xhandovers=%d",
				r.MultiGroupPct, r.XRetries, r.XHandovers)
		}
		return "SAFE", detail
	}
}

// maxRejoinLag reports the largest per-site commit lag at rejoin.
func maxRejoinLag(r *core.Results) uint64 {
	var lag uint64
	for _, s := range r.Sites {
		if s.RejoinLag > lag {
			lag = s.RejoinLag
		}
	}
	return lag
}
