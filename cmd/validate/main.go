// Command validate compares the two implementations of the runtime
// abstraction layer (Section 2.3): the same flood and round-trip benchmark
// code runs once on the native bridge — real time.Timer scheduling and
// net.UDPConn sockets over the OS loopback — and once under the centralized
// simulation runtime with the simulated network.
//
// This is the reproduction's analogue of the paper's Figure 3 "Real" column:
// it demonstrates that protocol code written against runtimeapi.Runtime is
// deployable unchanged, and lets the CSRT cost parameters be calibrated
// against real measurements on the host.
//
// Absolute numbers differ from the simulated Ethernet-100 model (the host's
// loopback is much faster than a 2001 PIII with Fast Ethernet); the point of
// the comparison is that both runtimes execute the identical benchmark code.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/csrt"
	"repro/internal/expr"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	rounds := fs.Int("rounds", 500, "round-trip iterations per size")
	flood := fs.Duration("flood", 200*time.Millisecond, "flood duration per size")
	parallel := fs.Int("parallel", 0, "workers for the simulated column (0 = GOMAXPROCS)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	sizes := []int{64, 256, 1000, 1400}

	// The simulated column is deterministic and independent per size, so it
	// fans out across the experiment engine's worker pool. The native column
	// measures real wall-clock sockets and stays serial: concurrent floods
	// would contend for the loopback and skew each other's numbers.
	type simRow struct{ rtt, out float64 }
	simRows := make([]simRow, len(sizes))
	expr.ForEach(*parallel, len(sizes), func(i int) {
		simRows[i].rtt, simRows[i].out = simBench(sizes[i], *rounds)
	})

	fmt.Printf("%8s | %14s %14s | %14s %14s\n",
		"size(B)", "rtt native(us)", "rtt csrt(us)", "out native", "out csrt")
	fmt.Printf("%8s | %14s %14s | %14s %14s\n", "", "", "", "(Mbit/s)", "(Mbit/s)")
	for i, size := range sizes {
		nrtt, nout, err := runNativePair(size, *rounds, *flood)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
		fmt.Printf("%8d | %14.0f %14.0f | %14.1f %14.1f\n", size, nrtt, simRows[i].rtt, nout, simRows[i].out)
	}
	fmt.Println("\nboth columns ran the identical benchmark code against")
	fmt.Println("runtimeapi.Runtime; only the bridge differs (Section 2.3).")
}

// runNativePair builds two native runtimes that know each other's addresses
// (two-phase setup: bind to learn ports, rebind with full peer tables) and
// runs the benchmarks over real loopback sockets.
func runNativePair(size, rounds int, floodFor time.Duration) (rttUS, outMbit float64, err error) {
	// Phase 1: bind both sockets to learn their ports.
	probeA, err := runtimeapi.NewNative(runtimeapi.NativeConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		return 0, 0, err
	}
	addrA := probeA.LocalAddr()
	probeA.Close()
	probeB, err := runtimeapi.NewNative(runtimeapi.NativeConfig{Self: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		return 0, 0, err
	}
	addrB := probeB.LocalAddr()
	probeB.Close()
	// Phase 2: rebind on the same ports with full peer tables.
	a, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
		Self: 1, Listen: addrA, Seed: 1,
		Peers: map[runtimeapi.NodeID]string{2: addrB},
	})
	if err != nil {
		return 0, 0, err
	}
	defer a.Close()
	b, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
		Self: 2, Listen: addrB, Seed: 2,
		Peers: map[runtimeapi.NodeID]string{1: addrA},
	})
	if err != nil {
		return 0, 0, err
	}
	defer b.Close()

	payload := make([]byte, size)
	b.SetReceiver(func(src runtimeapi.NodeID, data []byte) { _ = b.Send(src, data) })

	// Round-trip.
	done := make(chan struct{})
	var count int
	var total time.Duration
	var lastSend time.Time
	a.SetReceiver(func(runtimeapi.NodeID, []byte) {
		total += time.Since(lastSend)
		count++
		if count == rounds {
			close(done) // echoes of the later flood arrive with count > rounds
			return
		}
		if count > rounds {
			return
		}
		lastSend = time.Now()
		_ = a.Send(2, payload)
	})
	lastSend = time.Now()
	//lint:bufown-ok native transport copies into the socket synchronously; reuse across rounds is the benchmark
	if err := a.Send(2, payload); err != nil {
		return 0, 0, err
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		return 0, 0, fmt.Errorf("native RTT benchmark timed out after %d/%d rounds", count, rounds)
	}
	rttUS = float64(total.Microseconds()) / float64(count)

	// Flood.
	start := time.Now()
	var sent int64
	for time.Since(start) < floodFor {
		for i := 0; i < 100; i++ {
			//lint:bufown-ok native transport copies into the socket synchronously; reuse across rounds is the benchmark
			if a.Send(2, payload) == nil {
				sent++
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	outMbit = float64(sent*int64(size)) * 8 / 1e6 / elapsed
	return rttUS, outMbit, nil
}

// simBench runs the same benchmarks under the CSRT + simulated network.
func simBench(size, rounds int) (rttUS, outMbit float64) {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	net := simnet.NewNetwork(k, rng.Fork("net"))
	lan := net.NewLAN(simnet.DefaultLANConfig("lan"))
	h1, _ := net.NewHost(1, lan)
	h2, _ := net.NewHost(2, lan)
	costs := csrt.DefaultCostParams()
	rt1 := csrt.NewRuntime(k, 1, &csrt.ModelProfiler{}, net.Port(1, 65536), costs, rng.Fork("rt1"))
	rt1.Bind(csrt.NewCPUSet(1, k, nil))
	rt2 := csrt.NewRuntime(k, 2, &csrt.ModelProfiler{}, net.Port(2, 65536), costs, rng.Fork("rt2"))
	rt2.Bind(csrt.NewCPUSet(1, k, nil))
	h1.SetDeliver(func(pkt *simnet.Packet) { rt1.Deliver(pkt.Src, pkt.Data) })
	h2.SetDeliver(func(pkt *simnet.Packet) { rt2.Deliver(pkt.Src, pkt.Data) })

	payload := make([]byte, size)
	rt2.SetReceiver(func(src runtimeapi.NodeID, data []byte) { _ = rt2.Send(src, data) })
	var count int
	var total sim.Time
	var lastSend sim.Time
	rt1.SetReceiver(func(runtimeapi.NodeID, []byte) {
		total += rt1.Now() - lastSend
		count++
		if count < rounds {
			lastSend = rt1.Now()
			_ = rt1.Send(2, payload)
		}
	})
	rt1.Schedule(0, func() {
		lastSend = rt1.Now()
		_ = rt1.Send(2, payload)
	})
	_ = k.RunUntil(60 * sim.Second)
	if count > 0 {
		rttUS = total.Seconds() / float64(count) * 1e6
	}

	// Flood (CPU-limited socket writes).
	outPerMsg := costs.SendCost(size)
	outMbit = float64(size) * 8 / outPerMsg.Seconds() / 1e6
	return rttUS, outMbit
}
