package repro

// One benchmark per table and figure of the paper's evaluation, at reduced
// scale so `go test -bench=.` finishes in minutes. The full-scale
// regeneration is cmd/experiments. Custom metrics (tpm, abort %, latency
// percentiles) are attached via b.ReportMetric, so each bench prints the
// series the corresponding figure plots.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dbsm"
	"repro/internal/faults"
	"repro/internal/gcs"
	"repro/internal/sim"
)

// --- Figure 3: CSRT validation micro-benchmark -----------------------------

// BenchmarkFig3FloodSend measures the simulated socket-write path that
// Figure 3(a) calibrates: cost of injecting a 1 KB datagram.
func BenchmarkFig3FloodSend(b *testing.B) {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	net := newBenchNet(k, rng)
	rt := net.rt1
	payload := make([]byte, 1000)
	sent := 0
	rt.CPUs().SubmitReal(func() {
		for i := 0; i < b.N; i++ {
			if rt.Send(2, payload) == nil {
				sent++
			}
		}
	}, nil)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if sent != b.N {
		b.Fatalf("sent %d of %d", sent, b.N)
	}
}

// --- Figure 4: model validation run ----------------------------------------

func BenchmarkFig4Validation(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, Clients: 20, TotalTxns: 500},
		func(r *core.Results, b *testing.B) {
			b.ReportMetric(r.LatReadOnly.Quantile(0.5), "ro-p50-ms")
			b.ReportMetric(r.LatUpdate.Quantile(0.5), "upd-p50-ms")
		})
}

// --- Figure 5: throughput / latency / abort rate ----------------------------

func BenchmarkFig5Centralized1CPU(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, CPUsPerSite: 1, Clients: 500}, reportPerf)
}

func BenchmarkFig5Centralized3CPU(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, CPUsPerSite: 3, Clients: 1000}, reportPerf)
}

func BenchmarkFig5Centralized6CPU(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, CPUsPerSite: 6, Clients: 1500}, reportPerf)
}

func BenchmarkFig5Replicated3Sites(b *testing.B) {
	benchRun(b, core.Config{Sites: 3, CPUsPerSite: 1, Clients: 1000}, reportPerf)
}

func BenchmarkFig5Replicated6Sites(b *testing.B) {
	benchRun(b, core.Config{Sites: 6, CPUsPerSite: 1, Clients: 1500}, reportPerf)
}

// --- Figure 6: resource usage ----------------------------------------------

func BenchmarkFig6Usage3Sites(b *testing.B) {
	benchRun(b, core.Config{Sites: 3, CPUsPerSite: 1, Clients: 1000}, reportUsage)
}

func BenchmarkFig6Usage6CPU(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, CPUsPerSite: 6, Clients: 2000}, reportUsage)
}

// --- Table 1: abort-rate breakdown -----------------------------------------

func BenchmarkTable1Baseline500(b *testing.B) {
	benchRun(b, core.Config{Sites: 1, CPUsPerSite: 1, Clients: 500},
		func(r *core.Results, b *testing.B) {
			b.ReportMetric(classAbort(r, "payment-long"), "payment-long-%")
			b.ReportMetric(classAbort(r, "neworder"), "neworder-%")
		})
}

func BenchmarkTable1Replicated3x1000(b *testing.B) {
	benchRun(b, core.Config{Sites: 3, CPUsPerSite: 1, Clients: 1000},
		func(r *core.Results, b *testing.B) {
			b.ReportMetric(classAbort(r, "payment-long"), "payment-long-%")
			b.ReportMetric(r.AbortRatePct, "all-%")
		})
}

// --- Figure 7 / Table 2: fault loads ----------------------------------------

func faultCfg(loss faults.Loss) core.Config {
	return core.Config{
		Sites: 3, CPUsPerSite: 1, Clients: 750,
		Faults:   faults.Config{Loss: loss},
		GCSTweak: func(c *gcs.Config) { c.BufferBytes = 96 * 1024 },
	}
}

func reportFault(r *core.Results, b *testing.B) {
	b.ReportMetric(r.CertLat.Quantile(0.9), "cert-p90-ms")
	b.ReportMetric(r.CertLat.Quantile(0.99), "cert-p99-ms")
	b.ReportMetric(r.CPURealUtilPct, "proto-cpu-%")
	b.ReportMetric(r.AbortRatePct, "abort-%")
}

func BenchmarkFig7NoFaults(b *testing.B) {
	benchRun(b, faultCfg(faults.Loss{}), reportFault)
}

func BenchmarkFig7RandomLoss(b *testing.B) {
	benchRun(b, faultCfg(faults.Loss{Kind: faults.LossRandom, Rate: 0.05}), reportFault)
}

func BenchmarkFig7BurstyLoss(b *testing.B) {
	benchRun(b, faultCfg(faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}), reportFault)
}

func BenchmarkTable2RandomLoss1000(b *testing.B) {
	cfg := faultCfg(faults.Loss{Kind: faults.LossRandom, Rate: 0.05})
	cfg.Clients = 1000
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(classAbort(r, "delivery"), "delivery-%")
		b.ReportMetric(classAbort(r, "payment-long"), "payment-long-%")
		b.ReportMetric(r.AbortRatePct, "all-%")
	})
}

// --- protocol and substrate micro-benchmarks --------------------------------

func BenchmarkCertify(b *testing.B) {
	c := dbsm.NewCertifier()
	c.MaxHistory = 5000
	rng := sim.NewRNG(1)
	mkSet := func(n int) dbsm.ItemSet {
		ids := make([]dbsm.TupleID, n)
		for i := range ids {
			ids[i] = dbsm.MakeTupleID(uint16(rng.Intn(9)+1), uint64(rng.Intn(1<<20)))
		}
		return dbsm.NewItemSet(ids...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := mkSet(20)
		snapshot := uint64(0)
		if s := c.Seq(); s > 50 {
			snapshot = s - 50
		}
		c.Certify(&dbsm.TxnCert{
			TID: uint64(i), ReadSet: mkSet(100), WriteSet: ws,
			LastCommitted: snapshot,
		})
	}
}

func BenchmarkItemSetIntersect(b *testing.B) {
	rng := sim.NewRNG(2)
	mk := func(n int) dbsm.ItemSet {
		ids := make([]dbsm.TupleID, n)
		for i := range ids {
			ids[i] = dbsm.MakeTupleID(uint16(rng.Intn(9)+1), uint64(rng.Intn(1<<24)))
		}
		return dbsm.NewItemSet(ids...)
	}
	x, y := mk(100), mk(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

func BenchmarkKernelScheduleDispatch(b *testing.B) {
	k := sim.NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(sim.Microsecond, func() {})
		k.Step()
	}
}

func BenchmarkCertMarshalRoundTrip(b *testing.B) {
	rng := sim.NewRNG(3)
	ids := make([]dbsm.TupleID, 100)
	for i := range ids {
		ids[i] = dbsm.MakeTupleID(uint16(rng.Intn(9)+1), uint64(rng.Intn(1<<24)))
	}
	tc := &dbsm.TxnCert{
		TID: 1, Site: 2, LastCommitted: 10,
		ReadSet: dbsm.NewItemSet(ids...), WriteSet: dbsm.NewItemSet(ids[:20]...),
		WriteBytes: 3000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := tc.Marshal()
		if _, err := dbsm.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers -----------------------------------------------------------------

func newBenchNet(k *sim.Kernel, rng *sim.RNG) *benchNet {
	net := newSimNetPair(k, rng)
	return net
}
