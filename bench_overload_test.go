package repro

// Overload benchmarks: the replicated workload pushed past its admission
// capacity — compressed think time, sustained saturation, a gray-failed
// (never-suspected) slow site — under both termination variants. CI runs
// these with -json into BENCH_overload.json so the overload envelope is
// tracked per commit: throughput under pressure, how much the admission
// gate sheds, how hard clients retry, and the transmit-queue high-water
// mark that the flow-control bound must keep under 1 MiB.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/tpcc"
)

// reportOverload attaches the overload envelope to a benchmark: shed and
// retry volume next to throughput, and the bounded-queue gauge.
func reportOverload(r *core.Results, b *testing.B) {
	b.ReportMetric(r.TPM, "tpm")
	b.ReportMetric(r.MeanLatencyMS, "lat-ms")
	b.ReportMetric(float64(r.Rejected), "rejected")
	b.ReportMetric(float64(r.Retries), "retries")
	b.ReportMetric(float64(r.GCS.QueuePeakBytes)/1024, "queuepeak-KB")
	if r.GCS.QueuePeakBytes > 1<<20 {
		b.Fatalf("transmit queue peaked at %d bytes, past the 1 MiB bound", r.GCS.QueuePeakBytes)
	}
}

// overloadCfg drives the closed loop well past a deliberately tight
// admission cap; factor > 1 additionally compresses think time mid-run via
// the saturation fault, and slowSite (when nonzero) degrades one site 10x
// without making it suspect.
func overloadCfg(p core.Protocol, factor float64, slowSite int32) core.Config {
	cal := tpcc.DefaultCalibration()
	cal.ThinkTime = 300 * sim.Millisecond
	cfg := core.Config{
		Sites: 3, CPUsPerSite: 1, Clients: 90,
		Protocol:    p,
		Calibration: cal,
		Admission: &core.AdmissionConfig{
			MaxActivePerSite: 4,
			BacklogHigh:      96,
			BacklogLow:       32,
			Retry: tpcc.RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 20 * sim.Millisecond,
				MaxBackoff:  500 * sim.Millisecond,
			},
		},
	}
	if factor > 1 {
		cfg.Faults.Saturation = faults.Saturation{Factor: factor, At: sim.Second}
	}
	if slowSite != 0 {
		cfg.Faults.SlowNodes = []faults.SlowNode{{Site: slowSite, Factor: 10, At: 2 * sim.Second}}
	}
	return cfg
}

func BenchmarkOverloadConservative(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolConservative, 1, 0), reportOverload)
}

func BenchmarkOverloadOptimistic(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolOptimistic, 1, 0), reportOverload)
}

func BenchmarkOverloadConservativeSat2x(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolConservative, 2, 0), reportOverload)
}

func BenchmarkOverloadOptimisticSat2x(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolOptimistic, 2, 0), reportOverload)
}

func BenchmarkOverloadConservativeGraySequencer(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolConservative, 2, 1), reportOverload)
}

func BenchmarkOverloadOptimisticGraySequencer(b *testing.B) {
	benchRun(b, overloadCfg(core.ProtocolOptimistic, 2, 1), reportOverload)
}
