package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
)

// The sweep benchmarks measure the parallel experiment engine itself: the
// same reduced (configuration × clients × seed) grid runs once on a single
// worker and once on GOMAXPROCS workers. The ratio of the two times is the
// multicore speedup figure regeneration gets from internal/expr.

// sweepTasks is a reduced Figure 5 grid: the five paper configurations over
// a short client grid, replicated per point.
func sweepTasks() []expr.Task {
	var tasks []expr.Task
	for _, cfg := range []struct {
		sites, cpus int
	}{{1, 1}, {1, 3}, {3, 1}} {
		for _, clients := range []int{50, 150} {
			tasks = append(tasks, expr.Task{
				Label: fmt.Sprintf("%ds%dcpu/%dc", cfg.sites, cfg.cpus, clients),
				Config: core.Config{
					Sites:       cfg.sites,
					CPUsPerSite: cfg.cpus,
					Clients:     clients,
					TotalTxns:   300,
					Seed:        42,
				},
			})
		}
	}
	return tasks
}

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	rn := &expr.Runner{Workers: workers, Reps: 2}
	for i := 0; i < b.N; i++ {
		pts, err := rn.Run(sweepTasks())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var events int64
			for _, p := range pts {
				if p.Agg.SafetyErr != nil {
					b.Fatalf("safety: %v", p.Agg.SafetyErr)
				}
				events += p.Agg.Events
			}
			b.ReportMetric(float64(len(pts)*rn.Reps), "runs")
			b.ReportMetric(float64(events)/(b.Elapsed().Seconds()+1e-9), "events/s")
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }
