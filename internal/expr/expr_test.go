package expr

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// smallGrid is a reduced (configuration × clients) grid that runs in a few
// hundred milliseconds per point.
func smallGrid(baseSeed int64) []Task {
	var tasks []Task
	for _, sites := range []int{1, 3} {
		for _, clients := range []int{20, 40} {
			tasks = append(tasks, Task{
				Label: fmt.Sprintf("%ds/%dc", sites, clients),
				Config: core.Config{
					Sites:     sites,
					Clients:   clients,
					TotalTxns: 120,
					Seed:      baseSeed,
				},
			})
		}
	}
	return tasks
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(42, 0); got != 42 {
		t.Fatalf("rep 0 must keep the base seed, got %d", got)
	}
	seen := map[int64]bool{}
	for rep := 0; rep < 100; rep++ {
		s := DeriveSeed(42, rep)
		if seen[s] {
			t.Fatalf("duplicate derived seed %d at rep %d", s, rep)
		}
		seen[s] = true
		if s != DeriveSeed(42, rep) {
			t.Fatalf("DeriveSeed not deterministic at rep %d", rep)
		}
	}
	if DeriveSeed(42, 1) == DeriveSeed(43, 1) {
		t.Fatal("different base seeds derived the same replication seed")
	}
}

// aggKey projects the fields a figure consumes into a comparable value.
func aggKey(a *core.Aggregate) string {
	return fmt.Sprintf("%v|%v|%v|%v|%v|%v|%v|%d|%d|%v|%v",
		a.TPM, a.MeanLatencyMS, a.P95LatencyMS, a.AbortRatePct,
		a.CPUUtilPct, a.DiskUtilPct, a.NetKBps,
		a.LatCommitted.N(), a.CertLat.N(), a.Classes, a.Reps)
}

// TestRunnerWorkerCountInvariance is the tentpole invariant: a single-worker
// run produces byte-identical aggregates to a multi-worker run.
func TestRunnerWorkerCountInvariance(t *testing.T) {
	tasks := smallGrid(7)
	serial, err := (&Runner{Workers: 1, Reps: 2}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8, Reps: 2}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(tasks) || len(parallel) != len(tasks) {
		t.Fatalf("point counts: serial=%d parallel=%d want %d", len(serial), len(parallel), len(tasks))
	}
	for i := range tasks {
		sk, pk := aggKey(serial[i].Agg), aggKey(parallel[i].Agg)
		if sk != pk {
			t.Errorf("%s: aggregates diverge between worker counts:\n  1 worker: %s\n  8 workers: %s",
				tasks[i].Label, sk, pk)
		}
		if !reflect.DeepEqual(serial[i].Agg.LatCommitted.Values(), parallel[i].Agg.LatCommitted.Values()) {
			t.Errorf("%s: pooled latency samples diverge between worker counts", tasks[i].Label)
		}
	}
}

// TestRunnerWorkerCountInvarianceAggregateClients repeats the invariance
// check with the aggregate client tier: the batched arrival events draw from
// per-site forked RNG streams inside each model's own kernel, so worker
// count must still not leak into results at any pool size.
func TestRunnerWorkerCountInvarianceAggregateClients(t *testing.T) {
	var tasks []Task
	for _, clients := range []int{40, 5000} {
		tasks = append(tasks, Task{
			Label: fmt.Sprintf("agg/%dc", clients),
			Config: core.Config{
				Sites:            3,
				Clients:          clients,
				TotalTxns:        300,
				AggregateClients: 1,
				Seed:             11,
			},
		})
	}
	var points [3][]Point
	for i, workers := range []int{1, 4, 8} {
		pts, err := (&Runner{Workers: workers, Reps: 2}).Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		points[i] = pts
	}
	for ti := range tasks {
		base := aggKey(points[0][ti].Agg)
		for i, workers := range []int{1, 4, 8} {
			if k := aggKey(points[i][ti].Agg); k != base {
				t.Errorf("%s: aggregates diverge between worker counts:\n  1 worker: %s\n  %d workers: %s",
					tasks[ti].Label, base, workers, k)
			}
			if !reflect.DeepEqual(points[0][ti].Agg.LatCommitted.Values(), points[i][ti].Agg.LatCommitted.Values()) {
				t.Errorf("%s: pooled latency samples diverge between 1 and %d workers", tasks[ti].Label, workers)
			}
		}
	}
}

func TestRunnerReplicationsAggregate(t *testing.T) {
	tasks := []Task{{
		Label:  "1s/20c",
		Config: core.Config{Sites: 1, Clients: 20, TotalTxns: 120, Seed: 42},
	}}
	pts, err := (&Runner{Workers: 4, Reps: 3}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	a := pts[0].Agg
	if a.Reps != 3 || len(a.Runs) != 3 {
		t.Fatalf("want 3 replications, got Reps=%d Runs=%d", a.Reps, len(a.Runs))
	}
	if a.TPM.N != 3 {
		t.Fatalf("TPM stat over %d observations, want 3", a.TPM.N)
	}
	// Different derived seeds make real runs differ: a nonzero CI is
	// evidence the replications were independent.
	if a.TPM.CI95 == 0 && a.Runs[0].TPM == a.Runs[1].TPM && a.Runs[1].TPM == a.Runs[2].TPM {
		t.Fatal("all replications produced identical TPM; seeds not derived")
	}
	// Pooled latency sample is the concatenation of the replications'.
	want := a.Runs[0].LatCommitted.N() + a.Runs[1].LatCommitted.N() + a.Runs[2].LatCommitted.N()
	if a.LatCommitted.N() != want {
		t.Fatalf("pooled latency sample n=%d want %d", a.LatCommitted.N(), want)
	}
}

func TestRunnerProgress(t *testing.T) {
	tasks := smallGrid(3)
	var calls int
	last := -1
	rn := &Runner{Workers: 4, Reps: 2, OnRun: func(done, total int, task Task, rep int, res *core.Results, err error) {
		calls++
		if total != len(tasks)*2 {
			t.Errorf("total=%d want %d", total, len(tasks)*2)
		}
		if done <= last {
			t.Errorf("done not monotonic: %d after %d", done, last)
		}
		last = done
		if err != nil || res == nil {
			t.Errorf("unexpected run failure for %s rep %d: %v", task.Label, rep, err)
		}
	}}
	if _, err := rn.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if calls != len(tasks)*2 {
		t.Fatalf("OnRun called %d times, want %d", calls, len(tasks)*2)
	}
}

func TestRunnerError(t *testing.T) {
	tasks := []Task{
		{Label: "ok", Config: core.Config{Sites: 1, Clients: 10, TotalTxns: 50, Seed: 1}},
		{Label: "bad", Config: core.Config{Sites: 99, Clients: 10, TotalTxns: 50, Seed: 1}},
	}
	pts, err := (&Runner{Workers: 2}).Run(tasks)
	if err == nil {
		t.Fatal("want error from unsupported site count")
	}
	if pts[0].Err != nil || pts[0].Agg == nil {
		t.Fatalf("healthy point poisoned by sibling failure: %v", pts[0].Err)
	}
	if pts[1].Err == nil || pts[1].Agg != nil {
		t.Fatal("failing point reported no error")
	}
}

func TestForEach(t *testing.T) {
	const n = 37
	out := make([]int, n)
	var calls atomic.Int64
	ForEach(5, n, func(i int) {
		out[i] = i * i
		calls.Add(1)
	})
	if calls.Load() != n {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d want %d", i, v, i*i)
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}
