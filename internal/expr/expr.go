// Package expr is the parallel experiment engine: it fans a grid of
// independent core.Model runs — (configuration × client count × seed) —
// across a worker pool of GOMAXPROCS goroutines, runs R replications per
// grid point with deterministically derived seeds, and merges each point's
// replications into mean ± 95% confidence-interval aggregates.
//
// Every core.Model run is deterministic and fully independent (its own
// kernel, RNG, network, and sites), so the grid is embarrassingly parallel:
// results depend only on the task list and seeds, never on worker count or
// scheduling, and a -parallel 1 run is byte-identical to a multi-worker run.
package expr

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Task is one grid point: a model configuration replicated Reps times.
type Task struct {
	// Label names the point in progress reports and errors.
	Label string
	// Config is the model configuration; Config.Seed is the base seed from
	// which each replication's seed is derived.
	Config core.Config
	// Reps overrides the runner's replication count when positive.
	Reps int
}

// Point is one completed grid point.
type Point struct {
	Task Task
	// Agg merges the point's replications; nil when Err is set.
	Agg *core.Aggregate
	// Err is the first replication error, annotated with the task label.
	Err error
}

// Runner executes task grids on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Reps is the default replication count per task; <= 0 means 1.
	Reps int
	// OnRun, when set, observes every completed replication. Calls are
	// serialized; done counts completed replications out of total.
	OnRun func(done, total int, task Task, rep int, res *core.Results, err error)
}

// DeriveSeed maps a base seed and replication index to a decorrelated
// per-run seed via a splitmix64 round. Replication 0 keeps the base seed,
// so a single-replication run reproduces the historical single-run numbers.
func DeriveSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	z := uint64(base) + uint64(rep)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// reps resolves a task's replication count.
func (rn *Runner) reps(t Task) int {
	r := t.Reps
	if r <= 0 {
		r = rn.Reps
	}
	if r <= 0 {
		r = 1
	}
	return r
}

// workers resolves the pool size.
func (rn *Runner) workers() int {
	if rn.Workers > 0 {
		return rn.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every (task, replication) unit on the pool and aggregates
// each task's replications in replication order. It always returns one
// Point per task, in task order; the error is the first task error in that
// order (later points still carry their own results).
func (rn *Runner) Run(tasks []Task) ([]Point, error) {
	type unit struct{ task, rep int }
	var units []unit
	results := make([][]*core.Results, len(tasks))
	errs := make([][]error, len(tasks))
	for ti, t := range tasks {
		n := rn.reps(t)
		results[ti] = make([]*core.Results, n)
		errs[ti] = make([]error, n)
		for rep := 0; rep < n; rep++ {
			units = append(units, unit{task: ti, rep: rep})
		}
	}

	total := len(units)
	var mu sync.Mutex // guards done and OnRun
	done := 0
	ForEach(rn.workers(), total, func(i int) {
		u := units[i]
		t := tasks[u.task]
		cfg := t.Config
		cfg.Seed = DeriveSeed(t.Config.Seed, u.rep)
		res, err := runOne(cfg)
		results[u.task][u.rep] = res
		errs[u.task][u.rep] = err
		mu.Lock()
		done++
		if rn.OnRun != nil {
			rn.OnRun(done, total, t, u.rep, res, err)
		}
		mu.Unlock()
	})

	points := make([]Point, len(tasks))
	var firstErr error
	for ti, t := range tasks {
		points[ti].Task = t
		for rep, err := range errs[ti] {
			if err != nil {
				points[ti].Err = fmt.Errorf("%s (rep %d): %w", t.Label, rep, err)
				break
			}
		}
		if points[ti].Err == nil {
			points[ti].Agg = core.AggregateRuns(results[ti])
		} else if firstErr == nil {
			firstErr = points[ti].Err
		}
	}
	return points, firstErr
}

// runOne builds and runs one model.
func runOne(cfg core.Config) (*core.Results, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// ForEach runs fn(0..n-1) on a pool of the given size (<= 0 uses
// GOMAXPROCS), blocking until every call returns. Callers index into
// pre-sized slices, so output order stays deterministic regardless of
// scheduling.
func ForEach(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
}
