package campaign

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/xgroup"
)

// newGrouped generates one schedule for a partial-replication model of
// p.Groups groups × p.Sites sites. Timing, loss, and overload faults compose
// exactly as in the classic generator (they are site- or network-scoped, not
// group-scoped); structural faults are drawn per group against a per-group
// quorum budget, so every group keeps a strict majority and the cross-group
// commit round always has a surviving home member to hand rounds over to.
func newGrouped(seed int64, p Params) Schedule {
	g := sim.NewRNG(seed).Fork("campaign")
	s := Schedule{Seed: seed}
	f := &s.Faults
	total := p.Groups * p.Sites
	budget := (p.Sites - 1) / 2 // disabled sites tolerated per group

	// Timing faults.
	if g.Bool(0.35) {
		f.ClockDriftRate = 0.01 + 0.09*g.Float64()
		if g.Bool(0.5) {
			f.ClockDriftSites = []int32{int32(1 + g.Intn(total))}
		}
		s.Kinds = append(s.Kinds, KindDrift)
	}
	if g.Bool(0.35) {
		f.SchedLatencyMean = g.UniformDur(1*sim.Millisecond, 8*sim.Millisecond)
		s.Kinds = append(s.Kinds, KindLatency)
	}

	// At most one loss model. Loss is the fault the cross-group relays care
	// most about (relays are raw datagrams; only the coordinator's
	// retransmit timer recovers them), so it is drawn more often than in
	// the classic generator.
	switch g.Intn(10) {
	case 0, 1, 2, 3:
		f.Loss = faults.Loss{Kind: faults.LossRandom, Rate: 0.01 + 0.09*g.Float64()}
		s.Kinds = append(s.Kinds, KindLossRandom)
	case 4, 5, 6:
		f.Loss = faults.Loss{
			Kind:      faults.LossBursty,
			Rate:      0.01 + 0.07*g.Float64(),
			MeanBurst: 3 + 5*g.Float64(),
		}
		s.Kinds = append(s.Kinds, KindLossBursty)
	}

	// Datagram chaos: drawn oftener than in the classic generator for the
	// same reason loss is — the relay round (and its idempotence under
	// duplicated or reordered prepares, votes, and decides) is exactly what
	// these faults exercise.
	if g.Bool(0.3) {
		d := faults.Duplicate{
			Rate: 0.02 + 0.10*g.Float64(),
			At:   g.UniformDur(2*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			d.Until = d.At + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		f.Duplicate = d
		s.Kinds = append(s.Kinds, KindDuplicate)
	}
	if g.Bool(0.3) {
		ro := faults.Reorder{
			Rate:  0.02 + 0.10*g.Float64(),
			Delay: g.UniformDur(1*sim.Millisecond, 5*sim.Millisecond),
			At:    g.UniformDur(2*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			ro.Until = ro.At + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		f.Reorder = ro
		s.Kinds = append(s.Kinds, KindReorder)
	}

	// Structural faults, per-group budget. used[g] counts disabled sites of
	// group g; crashed marks sites taken by a crash.
	used := make([]int, p.Groups+1)
	crashed := map[int32]bool{}
	crash := func(site int32, gr int) {
		crashed[site] = true
		used[gr]++
		f.Crashes = append(f.Crashes, faults.Crash{
			Site: site, At: g.UniformDur(5*sim.Second, p.Horizon),
		})
	}

	// Coordinator crash: the lowest-numbered site of one group — the
	// group's sequencer, and the home member whose in-flight cross-group
	// rounds a survivor must take over. Onset is drawn across the horizon,
	// so it statistically lands between a round's votes and its decision.
	if budget > 0 && g.Bool(0.5) {
		gr := 1 + g.Intn(p.Groups)
		lo, _ := xgroup.GroupSites(gr, p.Sites)
		crash(int32(lo), gr)
		s.Kinds = append(s.Kinds, KindCoordCrash)
	}

	// Additional crashes scattered across groups within each group's
	// remaining budget.
	if g.Bool(0.45) {
		any := false
		for gr := 1; gr <= p.Groups; gr++ {
			if used[gr] >= budget || !g.Bool(0.5) {
				continue
			}
			lo, hi := xgroup.GroupSites(gr, p.Sites)
			cands := make([]int32, 0, hi-lo+1)
			for id := lo; id <= hi; id++ {
				if !crashed[int32(id)] {
					cands = append(cands, int32(id))
				}
			}
			if len(cands) == 0 {
				continue
			}
			crash(cands[g.Intn(len(cands))], gr)
			any = true
		}
		if any {
			s.Kinds = append(s.Kinds, KindGroupCrash)
		}
	}
	sort.Slice(f.Crashes, func(i, j int) bool { return f.Crashes[i].At < f.Crashes[j].At })

	// Group partition: isolate a minority of one group that still has
	// budget. Highest-numbered non-crashed members go to the minority side,
	// keeping the group's (replacement) sequencer in the majority.
	if g.Bool(0.4) {
		gr := 1 + g.Intn(p.Groups)
		for i := 0; i < p.Groups && used[gr] >= budget; i++ {
			gr = gr%p.Groups + 1
		}
		if m := budget - used[gr]; m > 0 {
			m = 1 + g.Intn(m)
			lo, hi := xgroup.GroupSites(gr, p.Sites)
			minority := make([]int32, 0, m)
			for id := hi; id >= lo && len(minority) < m; id-- {
				if !crashed[int32(id)] {
					minority = append(minority, int32(id))
				}
			}
			if len(minority) > 0 {
				sort.Slice(minority, func(i, j int) bool { return minority[i] < minority[j] })
				at := g.UniformDur(5*sim.Second, p.Horizon)
				pt := faults.Partition{Sites: minority, At: at}
				if g.Bool(0.75) {
					pt.Heal = at + g.UniformDur(5*sim.Second, 20*sim.Second)
				}
				f.Partitions = []faults.Partition{pt}
				used[gr] += len(minority)
				s.Kinds = append(s.Kinds, KindGroupPartition)
			}
		}
	}

	// Overload faults, identical to the classic generator but drawing the
	// slow node from the full site universe.
	if p.Overload || g.Bool(0.25) {
		sat := faults.Saturation{
			Factor: 1.5 + 1.5*g.Float64(),
			At:     g.UniformDur(5*sim.Second, p.Horizon/2),
		}
		if p.Overload {
			sat.Factor = 2
		}
		if g.Bool(0.5) {
			sat.Until = sat.At + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
		f.Saturation = sat
		s.Kinds = append(s.Kinds, KindSaturation)
	}
	if p.Overload || g.Bool(0.25) {
		sn := faults.SlowNode{
			Site:   int32(1 + g.Intn(total)),
			Factor: 10,
			At:     g.UniformDur(5*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			sn.Until = sn.At + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
		f.SlowNodes = []faults.SlowNode{sn}
		s.Kinds = append(s.Kinds, KindSlowNode)
	}

	if !f.Any() {
		f.Loss = faults.Loss{Kind: faults.LossRandom, Rate: 0.01 + 0.09*g.Float64()}
		s.Kinds = append(s.Kinds, KindLossRandom)
	}
	sortKinds(s.Kinds)
	return s
}
