// Package campaign generates randomized fault schedules for dependability
// campaigns. Where cmd/faultsim's fixed matrix replays the paper's nine
// Section 5.3 fault loads, a campaign draws hundreds of adversarial
// schedules — composing clock drift, scheduling latency, random and bursty
// message loss, site crashes, and network partitions with scheduled heal
// times — and checks every run against the internal/check safety condition.
//
// Every schedule is a pure function of its seed: the same seed regenerates
// the same faults.Config and drives the same simulation, so any campaign
// failure is reproducible from the one-line verdict it printed and becomes
// a regression test by pinning that seed.
//
// Schedules are generated quorum-safe by construction: crashed plus
// partitioned sites never reach half of the group, so a primary component
// always survives to make progress, and partition minorities are drawn from
// the highest-numbered sites so the sequencer (the lowest live member, and
// the only node guaranteed to hold every ordered message) stays on the
// majority side.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Fault-kind labels used in schedules and verdict aggregation.
const (
	KindDrift      = "clock-drift"
	KindLatency    = "sched-latency"
	KindLossRandom = "loss-random"
	KindLossBursty = "loss-bursty"
	KindCrash      = "crash"
	KindRejoin     = "crash-rejoin"
	KindPartition  = "partition"
	KindSaturation = "saturation"
	KindSlowNode   = "slow-node"
	// Datagram chaos kinds: receiver-side duplication and reordering of raw
	// datagrams, aimed at the unordered cross-group relay traffic (ordered
	// streams dedupe and resequence on their own).
	KindDuplicate = "dup"
	KindReorder   = "reorder"
	// Group-mode (partial replication) structural kinds: a crash of one
	// group's lowest member (its sequencer, and the handover anchor for
	// cross-group rounds it coordinated), additional crashes scattered
	// across groups, and a partition isolating a minority of one group.
	KindCoordCrash     = "coordinator-crash"
	KindGroupCrash     = "group-crash"
	KindGroupPartition = "group-partition"
)

// Kinds lists every fault kind a campaign can inject, in report order.
func Kinds() []string {
	return []string{KindDrift, KindLatency, KindLossRandom, KindLossBursty,
		KindDuplicate, KindReorder,
		KindCrash, KindRejoin, KindPartition, KindSaturation, KindSlowNode,
		KindCoordCrash, KindGroupCrash, KindGroupPartition}
}

// Params bounds the schedule space.
type Params struct {
	// Sites is the replica count the schedules target (default 3). It
	// bounds the crash/partition budget: injected site failures always
	// leave a strict majority operational.
	Sites int
	// Horizon is the window over which fault onsets are scheduled
	// (default 40s) — late enough that every schedule exercises some
	// fault-free traffic first, early enough that the survivors then run
	// degraded for most of the experiment.
	Horizon sim.Time
	// Rejoin forces every schedule to contain at least one
	// crash-and-rejoin (CI smoke campaigns use it so rejoin safety is
	// exercised on every push). Without it, crashes recover with
	// probability 0.6 each.
	Rejoin bool
	// Overload forces every schedule to contain both overload faults —
	// sustained saturation and a slow-node gray failure — so overload
	// campaigns stress the flow-control and admission machinery on every
	// schedule. Without it, each is drawn with probability 0.25.
	Overload bool
	// Groups targets a partial-replication model: Sites is then the
	// per-group replica count and structural faults are drawn per group —
	// the crash/partition budget is (Sites-1)/2 within each group, so every
	// group keeps a strict majority. Rejoin is ignored (crash recovery is
	// out of the group-mode scope). 0 or 1 generates classic schedules.
	Groups int
}

func (p *Params) fill() {
	if p.Sites == 0 {
		p.Sites = 3
	}
	if p.Horizon == 0 {
		p.Horizon = 40 * sim.Second
	}
}

// Schedule is one generated fault load.
type Schedule struct {
	// Seed regenerates the schedule (New(Seed, params) == this) and seeds
	// the run itself.
	Seed int64
	// Kinds lists the injected fault kinds, in report order.
	Kinds []string
	// Faults is the composed fault load.
	Faults faults.Config
}

// Has reports whether the schedule injects the given fault kind.
func (s Schedule) Has(kind string) bool {
	for _, k := range s.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Label renders a compact schedule description for verdict lines.
func (s Schedule) Label() string {
	if len(s.Kinds) == 0 {
		return "fault-free"
	}
	return strings.Join(s.Kinds, "+")
}

// Describe renders the schedule's fully resolved fault load, one fault per
// line — what `faultsim -list` prints so a campaign can be inspected (and a
// failing seed understood) without running anything.
func (s Schedule) Describe() string {
	var b strings.Builder
	f := s.Faults
	if f.ClockDriftRate != 0 {
		sites := "all sites"
		if len(f.ClockDriftSites) > 0 {
			sites = fmt.Sprintf("sites %v", f.ClockDriftSites)
		}
		fmt.Fprintf(&b, "    clock-drift rate=%.3f (%s)\n", f.ClockDriftRate, sites)
	}
	if f.SchedLatencyMean != 0 {
		fmt.Fprintf(&b, "    sched-latency exp(%v)\n", f.SchedLatencyMean)
	}
	switch f.Loss.Kind {
	case faults.LossRandom:
		fmt.Fprintf(&b, "    loss-random rate=%.3f\n", f.Loss.Rate)
	case faults.LossBursty:
		fmt.Fprintf(&b, "    loss-bursty rate=%.3f burst~%.1f\n", f.Loss.Rate, f.Loss.MeanBurst)
	}
	if f.Duplicate.Active() {
		if f.Duplicate.Until != 0 {
			fmt.Fprintf(&b, "    dup rate=%.3f at %v, until %v\n", f.Duplicate.Rate, f.Duplicate.At, f.Duplicate.Until)
		} else {
			fmt.Fprintf(&b, "    dup rate=%.3f at %v (sustained)\n", f.Duplicate.Rate, f.Duplicate.At)
		}
	}
	if f.Reorder.Active() {
		if f.Reorder.Until != 0 {
			fmt.Fprintf(&b, "    reorder rate=%.3f delay~%v at %v, until %v\n",
				f.Reorder.Rate, f.Reorder.Delay, f.Reorder.At, f.Reorder.Until)
		} else {
			fmt.Fprintf(&b, "    reorder rate=%.3f delay~%v at %v (sustained)\n",
				f.Reorder.Rate, f.Reorder.Delay, f.Reorder.At)
		}
	}
	for _, c := range f.Crashes {
		if rc := f.RecoverOf(c.Site); rc != nil {
			fmt.Fprintf(&b, "    crash site %d at %v, rejoin at %v\n", c.Site, c.At, rc.At)
		} else {
			fmt.Fprintf(&b, "    crash site %d at %v (no rejoin)\n", c.Site, c.At)
		}
	}
	for _, pt := range f.Partitions {
		if pt.Heal != 0 {
			fmt.Fprintf(&b, "    partition sites %v at %v, heal at %v\n", pt.Sites, pt.At, pt.Heal)
		} else {
			fmt.Fprintf(&b, "    partition sites %v at %v (no heal)\n", pt.Sites, pt.At)
		}
	}
	if f.Saturation.Active() {
		if f.Saturation.Until != 0 {
			fmt.Fprintf(&b, "    saturation x%.1f at %v, until %v\n",
				f.Saturation.Factor, f.Saturation.At, f.Saturation.Until)
		} else {
			fmt.Fprintf(&b, "    saturation x%.1f at %v (sustained)\n",
				f.Saturation.Factor, f.Saturation.At)
		}
	}
	for _, sn := range f.SlowNodes {
		if sn.Until != 0 {
			fmt.Fprintf(&b, "    slow-node site %d x%.0f at %v, until %v\n", sn.Site, sn.Factor, sn.At, sn.Until)
		} else {
			fmt.Fprintf(&b, "    slow-node site %d x%.0f at %v (sustained)\n", sn.Site, sn.Factor, sn.At)
		}
	}
	if b.Len() == 0 {
		return "    (fault-free)\n"
	}
	return b.String()
}

// New deterministically generates the schedule for a seed. All randomness
// flows from the seed through a dedicated RNG stream, so equal seeds yield
// equal schedules on every machine.
func New(seed int64, p Params) Schedule {
	p.fill()
	if p.Groups > 1 {
		return newGrouped(seed, p)
	}
	g := sim.NewRNG(seed).Fork("campaign")
	s := Schedule{Seed: seed}
	f := &s.Faults

	// Budget: crashed + partitioned sites must leave a strict majority of
	// the current view at every step. Because views only shrink, keeping
	// a strict majority of the *initial* membership alive is sufficient
	// for every intermediate view.
	budget := (p.Sites - 1) / 2

	// Timing faults compose freely with everything else.
	if g.Bool(0.35) {
		f.ClockDriftRate = 0.01 + 0.09*g.Float64()
		if g.Bool(0.5) {
			f.ClockDriftSites = []int32{int32(1 + g.Intn(p.Sites))}
		}
		s.Kinds = append(s.Kinds, KindDrift)
	}
	if g.Bool(0.35) {
		f.SchedLatencyMean = g.UniformDur(1*sim.Millisecond, 8*sim.Millisecond)
		s.Kinds = append(s.Kinds, KindLatency)
	}

	// At most one loss model (faults.Config carries a single Loss).
	switch g.Intn(10) {
	case 0, 1, 2:
		f.Loss = faults.Loss{Kind: faults.LossRandom, Rate: 0.01 + 0.09*g.Float64()}
		s.Kinds = append(s.Kinds, KindLossRandom)
	case 3, 4, 5:
		f.Loss = faults.Loss{
			Kind:      faults.LossBursty,
			Rate:      0.01 + 0.07*g.Float64(),
			MeanBurst: 3 + 5*g.Float64(),
		}
		s.Kinds = append(s.Kinds, KindLossBursty)
	}

	// Datagram chaos composes freely: duplication and reordering target the
	// unordered relay traffic and never consume quorum budget.
	if g.Bool(0.2) {
		d := faults.Duplicate{
			Rate: 0.02 + 0.10*g.Float64(),
			At:   g.UniformDur(2*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			d.Until = d.At + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		f.Duplicate = d
		s.Kinds = append(s.Kinds, KindDuplicate)
	}
	if g.Bool(0.2) {
		ro := faults.Reorder{
			Rate:  0.02 + 0.10*g.Float64(),
			Delay: g.UniformDur(1*sim.Millisecond, 5*sim.Millisecond),
			At:    g.UniformDur(2*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			ro.Until = ro.At + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		f.Reorder = ro
		s.Kinds = append(s.Kinds, KindReorder)
	}

	// Structural faults share the quorum budget. Partition minorities are
	// the highest-numbered sites; crashes draw from the remainder — so
	// the (replacement) sequencer always sits in the majority. Forced
	// rejoin reserves one budget slot for the crash the schedule must
	// contain.
	remaining := budget
	partBudget := remaining
	if p.Rejoin {
		partBudget = remaining - 1
	}
	if partBudget > 0 && g.Bool(0.4) {
		m := 1 + g.Intn(partBudget)
		minority := make([]int32, 0, m)
		for i := 0; i < m; i++ {
			minority = append(minority, int32(p.Sites-i))
		}
		sort.Slice(minority, func(i, j int) bool { return minority[i] < minority[j] })
		at := g.UniformDur(5*sim.Second, p.Horizon)
		pt := faults.Partition{Sites: minority, At: at}
		if g.Bool(0.75) {
			pt.Heal = at + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		f.Partitions = []faults.Partition{pt}
		remaining -= m
		s.Kinds = append(s.Kinds, KindPartition)
	}
	if remaining > 0 && (g.Bool(0.4) || p.Rejoin) {
		c := 1 + g.Intn(remaining)
		// Candidate crash targets: every site not in a partition
		// minority. Shuffle and take the first c.
		limit := p.Sites
		if len(f.Partitions) > 0 {
			limit = p.Sites - len(f.Partitions[0].Sites)
		}
		candidates := make([]int32, limit)
		for i := range candidates {
			candidates[i] = int32(i + 1)
		}
		g.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		rejoined := false
		for i := 0; i < c; i++ {
			cr := faults.Crash{
				Site: candidates[i],
				At:   g.UniformDur(5*sim.Second, p.Horizon),
			}
			f.Crashes = append(f.Crashes, cr)
			// Crash-and-rejoin: most crashed sites come back after an
			// outage, restoring the full group — the recovery side of
			// the dependability evaluation. The rejoin delay is long
			// enough that the group has certainly excluded the site
			// (failure timeout 1s) and committed past its horizon.
			if g.Bool(0.6) || (p.Rejoin && i == 0) {
				f.Recovers = append(f.Recovers, faults.Recover{
					Site: cr.Site,
					At:   cr.At + g.UniformDur(8*sim.Second, 25*sim.Second),
				})
				rejoined = true
			}
		}
		sort.Slice(f.Crashes, func(i, j int) bool { return f.Crashes[i].At < f.Crashes[j].At })
		sort.Slice(f.Recovers, func(i, j int) bool { return f.Recovers[i].At < f.Recovers[j].At })
		s.Kinds = append(s.Kinds, KindCrash)
		if rejoined {
			s.Kinds = append(s.Kinds, KindRejoin)
		}
	}

	// Overload faults compose freely with everything above: saturation is
	// global (think-time compression at every client) and a slow node
	// degrades without crashing, so neither consumes quorum budget.
	if p.Overload || g.Bool(0.25) {
		sat := faults.Saturation{
			Factor: 1.5 + 1.5*g.Float64(),
			At:     g.UniformDur(5*sim.Second, p.Horizon/2),
		}
		if p.Overload {
			sat.Factor = 2 // the issue's canonical 2x offered load
		}
		if g.Bool(0.5) {
			sat.Until = sat.At + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
		f.Saturation = sat
		s.Kinds = append(s.Kinds, KindSaturation)
	}
	if p.Overload || g.Bool(0.25) {
		sn := faults.SlowNode{
			Site:   int32(1 + g.Intn(p.Sites)),
			Factor: 10, // the issue's canonical gray failure: x10 degradation
			At:     g.UniformDur(5*sim.Second, p.Horizon/2),
		}
		if g.Bool(0.4) {
			sn.Until = sn.At + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
		f.SlowNodes = []faults.SlowNode{sn}
		s.Kinds = append(s.Kinds, KindSlowNode)
	}

	// Never emit a fault-free schedule: a campaign run must stress
	// something. Default to random loss at a mid rate.
	if !f.Any() {
		f.Loss = faults.Loss{Kind: faults.LossRandom, Rate: 0.01 + 0.09*g.Float64()}
		s.Kinds = append(s.Kinds, KindLossRandom)
	}
	sortKinds(s.Kinds)
	return s
}

// sortKinds orders kind labels by the canonical Kinds() report order.
func sortKinds(kinds []string) {
	rank := make(map[string]int, 6)
	for i, k := range Kinds() {
		rank[k] = i
	}
	sort.Slice(kinds, func(i, j int) bool { return rank[kinds[i]] < rank[kinds[j]] })
}

// Plan generates n schedules with seeds derived from a base seed via the
// same decorrelation expr uses for replications: schedule i is fully
// reproducible as New(DeriveSeed(base, i), p).
func Plan(base int64, n int, p Params) []Schedule {
	out := make([]Schedule, n)
	for i := range out {
		out[i] = New(expr.DeriveSeed(base, i), p)
	}
	return out
}

// Tasks adapts a campaign plan to the expr parallel runner: one task per
// schedule, single replication, the schedule's seed driving the run. The
// base config supplies workload shape (clients, transactions, sites); its
// Sites must match the Params the plan was generated with.
func Tasks(plan []Schedule, base core.Config) []expr.Task {
	tasks := make([]expr.Task, len(plan))
	for i, s := range plan {
		cfg := base
		cfg.Seed = s.Seed
		cfg.Faults = s.Faults
		tasks[i] = expr.Task{
			Label:  fmt.Sprintf("campaign[%d] seed=%d %s", i, s.Seed, s.Label()),
			Config: cfg,
			Reps:   1,
		}
	}
	return tasks
}
