package campaign

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/sim"
	"repro/internal/xgroup"
)

func TestScheduleIsPureFunctionOfSeed(t *testing.T) {
	p := Params{Sites: 3}
	for seed := int64(1); seed <= 50; seed++ {
		a, b := New(seed, p), New(seed, p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestPlanSeedsAreDistinctAndReproducible(t *testing.T) {
	p := Params{Sites: 3}
	plan := Plan(42, 100, p)
	seen := map[int64]bool{}
	for i, s := range plan {
		if seen[s.Seed] {
			t.Fatalf("duplicate seed %d at schedule %d", s.Seed, i)
		}
		seen[s.Seed] = true
		if !reflect.DeepEqual(s, New(s.Seed, p)) {
			t.Fatalf("schedule %d not reproducible from its seed alone", i)
		}
	}
}

// TestEveryKindAppearsAndSchedulesAreWellFormed sweeps many seeds and checks
// coverage plus the structural invariants every schedule must satisfy.
func TestEveryKindAppearsAndSchedulesAreWellFormed(t *testing.T) {
	for _, sites := range []int{3, 5} {
		p := Params{Sites: sites}
		seenKind := map[string]int{}
		healed := 0
		for _, s := range Plan(7, 400, p) {
			if len(s.Kinds) == 0 || !s.Faults.Any() {
				t.Fatalf("sites=%d seed=%d: fault-free schedule", sites, s.Seed)
			}
			for _, k := range s.Kinds {
				seenKind[k]++
			}
			budget := (sites - 1) / 2
			structural := len(s.Faults.Crashes)
			for _, pt := range s.Faults.Partitions {
				structural += len(pt.Sites)
				if 2*len(pt.Sites) >= sites {
					t.Fatalf("sites=%d seed=%d: partition isolates %d sites, not a minority", sites, s.Seed, len(pt.Sites))
				}
				for _, id := range pt.Sites {
					if id == 1 {
						t.Fatalf("sites=%d seed=%d: partition isolates the sequencer", sites, s.Seed)
					}
					if int(id) < 1 || int(id) > sites {
						t.Fatalf("sites=%d seed=%d: partition targets unknown site %d", sites, s.Seed, id)
					}
					for _, cr := range s.Faults.Crashes {
						if cr.Site == id {
							t.Fatalf("sites=%d seed=%d: site %d both crashed and partitioned", sites, s.Seed, id)
						}
					}
				}
				if pt.Heal != 0 {
					healed++
					if pt.Heal <= pt.At {
						t.Fatalf("sites=%d seed=%d: heal %v not after cut %v", sites, s.Seed, pt.Heal, pt.At)
					}
				}
			}
			for _, cr := range s.Faults.Crashes {
				if int(cr.Site) < 1 || int(cr.Site) > sites {
					t.Fatalf("sites=%d seed=%d: crash targets unknown site %d", sites, s.Seed, cr.Site)
				}
			}
			if structural > budget {
				t.Fatalf("sites=%d seed=%d: %d structural site faults exceed quorum budget %d", sites, s.Seed, structural, budget)
			}
			if s.Has(KindLossRandom) && s.Has(KindLossBursty) {
				t.Fatalf("sites=%d seed=%d: two loss models in one schedule", sites, s.Seed)
			}
		}
		groupOnly := map[string]bool{
			KindCoordCrash: true, KindGroupCrash: true, KindGroupPartition: true,
		}
		for _, k := range Kinds() {
			if groupOnly[k] {
				continue // drawn only by the group-mode generator, covered separately
			}
			if seenKind[k] == 0 {
				t.Fatalf("sites=%d: kind %s never generated over 400 schedules", sites, k)
			}
		}
		if healed == 0 {
			t.Fatalf("sites=%d: no partition-and-heal schedule over 400 schedules", sites)
		}
	}
}

// TestGroupScheduleWellFormed sweeps the group-mode generator and checks
// reproducibility, the per-group quorum budget, group-scoped structural
// faults, and coverage of the group-only fault kinds.
func TestGroupScheduleWellFormed(t *testing.T) {
	const groups, sites = 3, 3
	p := Params{Sites: sites, Groups: groups}
	budget := (sites - 1) / 2
	seenKind := map[string]int{}
	for _, s := range Plan(7, 400, p) {
		if !reflect.DeepEqual(s, New(s.Seed, p)) {
			t.Fatalf("seed=%d: group schedule not reproducible from its seed", s.Seed)
		}
		if len(s.Kinds) == 0 || !s.Faults.Any() {
			t.Fatalf("seed=%d: fault-free schedule", s.Seed)
		}
		for _, k := range s.Kinds {
			seenKind[k]++
		}
		for _, classic := range []string{KindCrash, KindRejoin, KindPartition} {
			if s.Has(classic) {
				t.Fatalf("seed=%d: classic kind %s in a group schedule", s.Seed, classic)
			}
		}
		if len(s.Faults.Recovers) != 0 {
			t.Fatalf("seed=%d: rejoin drawn in group mode", s.Seed)
		}
		disabled := make([]int, groups+1)
		crashed := map[int32]bool{}
		for _, cr := range s.Faults.Crashes {
			if int(cr.Site) < 1 || int(cr.Site) > groups*sites {
				t.Fatalf("seed=%d: crash targets unknown site %d", s.Seed, cr.Site)
			}
			if crashed[cr.Site] {
				t.Fatalf("seed=%d: site %d crashed twice", s.Seed, cr.Site)
			}
			crashed[cr.Site] = true
			disabled[xgroup.GroupOfSite(int(cr.Site), sites)]++
		}
		if s.Has(KindCoordCrash) {
			coord := false
			for _, cr := range s.Faults.Crashes {
				lo, _ := xgroup.GroupSites(xgroup.GroupOfSite(int(cr.Site), sites), sites)
				if int(cr.Site) == lo {
					coord = true
				}
			}
			if !coord {
				t.Fatalf("seed=%d: coordinator-crash kind without a lowest-member crash", s.Seed)
			}
		}
		for _, pt := range s.Faults.Partitions {
			g := 0
			for _, id := range pt.Sites {
				if crashed[id] {
					t.Fatalf("seed=%d: site %d both crashed and partitioned", s.Seed, id)
				}
				ig := xgroup.GroupOfSite(int(id), sites)
				if g == 0 {
					g = ig
				} else if ig != g {
					t.Fatalf("seed=%d: partition spans groups %d and %d", s.Seed, g, ig)
				}
				disabled[ig]++
			}
			if pt.Heal != 0 && pt.Heal <= pt.At {
				t.Fatalf("seed=%d: heal %v not after cut %v", s.Seed, pt.Heal, pt.At)
			}
		}
		for g := 1; g <= groups; g++ {
			if disabled[g] > budget {
				t.Fatalf("seed=%d: group %d loses %d sites, past budget %d", s.Seed, g, disabled[g], budget)
			}
		}
		if s.Has(KindLossRandom) && s.Has(KindLossBursty) {
			t.Fatalf("seed=%d: two loss models in one schedule", s.Seed)
		}
	}
	for _, k := range []string{KindCoordCrash, KindGroupCrash, KindGroupPartition} {
		if seenKind[k] == 0 {
			t.Fatalf("kind %s never generated over 400 schedules", k)
		}
	}
}

func TestCrashAndPartitionComposeAtFiveSites(t *testing.T) {
	both := 0
	for _, s := range Plan(9, 400, Params{Sites: 5}) {
		if s.Has(KindCrash) && s.Has(KindPartition) {
			both++
		}
	}
	if both == 0 {
		t.Fatal("crash+partition never composed at 5 sites over 400 schedules")
	}
}

func TestTasksAdaptPlanToRunner(t *testing.T) {
	plan := Plan(3, 4, Params{Sites: 3})
	base := core.Config{Sites: 3, Clients: 30, TotalTxns: 100}
	tasks := Tasks(plan, base)
	if len(tasks) != len(plan) {
		t.Fatalf("tasks = %d, want %d", len(tasks), len(plan))
	}
	for i, task := range tasks {
		if task.Config.Seed != plan[i].Seed {
			t.Fatalf("task %d seed %d != schedule seed %d", i, task.Config.Seed, plan[i].Seed)
		}
		if !reflect.DeepEqual(task.Config.Faults, plan[i].Faults) {
			t.Fatalf("task %d faults differ from schedule", i)
		}
		if task.Reps != 1 {
			t.Fatalf("task %d reps = %d, want 1", i, task.Reps)
		}
		if task.Config.Clients != 30 || task.Config.TotalTxns != 100 {
			t.Fatalf("task %d lost base workload shape", i)
		}
	}
}

// TestCampaignRunsSafelyThroughRunner is the end-to-end slice: a small
// campaign fanned out through the expr pool must complete with every run
// SAFE, and re-running one schedule from its printed seed must reproduce
// the identical commit outcome.
func TestCampaignRunsSafelyThroughRunner(t *testing.T) {
	p := Params{Sites: 3, Horizon: 15 * sim.Second}
	plan := Plan(11, 6, p)
	base := core.Config{Sites: 3, Clients: 30, TotalTxns: 150}
	points, err := (&expr.Runner{Workers: 4}).Run(Tasks(plan, base))
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points {
		r := pt.Agg.Runs[0]
		if r.SafetyErr != nil {
			t.Fatalf("schedule %d (%s, seed %d) unsafe: %v", i, plan[i].Label(), plan[i].Seed, r.SafetyErr)
		}
		if r.Inconsistencies != 0 {
			t.Fatalf("schedule %d: %d inconsistencies", i, r.Inconsistencies)
		}
	}
	// Reproduce schedule 0 from its seed: same verdict, same commits.
	again, err := (&expr.Runner{Workers: 1}).Run(Tasks(plan[:1], base))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again[0].Agg.Runs[0].Committed, points[0].Agg.Runs[0].Committed; got != want {
		t.Fatalf("replayed schedule committed %d, original %d", got, want)
	}
}
