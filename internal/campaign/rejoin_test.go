package campaign

import (
	"testing"

	"repro/internal/sim"
)

// TestRejoinSchedulesWellFormed: every generated recovery matches a crash of
// the same site and lands after it, and the crash-rejoin kind labels exactly
// the schedules that carry one.
func TestRejoinSchedulesWellFormed(t *testing.T) {
	sawRejoin := false
	for seed := int64(1); seed <= 400; seed++ {
		s := New(seed, Params{Sites: 5})
		crashAt := map[int32]sim.Time{}
		for _, c := range s.Faults.Crashes {
			crashAt[c.Site] = c.At
		}
		seen := map[int32]bool{}
		for _, rc := range s.Faults.Recovers {
			at, ok := crashAt[rc.Site]
			if !ok {
				t.Fatalf("seed %d: recovery of uncrashed site %d", seed, rc.Site)
			}
			if rc.At <= at {
				t.Fatalf("seed %d: site %d recovers at %v before crash at %v", seed, rc.Site, rc.At, at)
			}
			if seen[rc.Site] {
				t.Fatalf("seed %d: site %d recovers twice", seed, rc.Site)
			}
			seen[rc.Site] = true
		}
		if s.Has(KindRejoin) != (len(s.Faults.Recovers) > 0) {
			t.Fatalf("seed %d: kind label %v vs %d recoveries", seed, s.Kinds, len(s.Faults.Recovers))
		}
		sawRejoin = sawRejoin || s.Has(KindRejoin)
	}
	if !sawRejoin {
		t.Fatal("no schedule out of 400 contained a crash-and-rejoin")
	}
}

// TestForcedRejoin: Params.Rejoin guarantees a crash-and-rejoin in every
// schedule — the CI smoke campaign's contract.
func TestForcedRejoin(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		for _, sites := range []int{3, 5} {
			s := New(seed, Params{Sites: sites, Rejoin: true})
			if !s.Has(KindRejoin) || len(s.Faults.Recovers) == 0 {
				t.Fatalf("seed %d sites %d: forced-rejoin schedule has no rejoin: %v", seed, sites, s.Kinds)
			}
		}
	}
}
