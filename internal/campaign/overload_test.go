package campaign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/sim"
	"repro/internal/tpcc"
)

// overloadBase builds the workload the overload sweep runs: think time
// compressed far below the paper's 9s so the closed loop can actually outrun
// the deliberately tight admission cap, and enough transactions that the
// fault onsets (drawn in the schedule horizon) land mid-run. Each call
// returns a fresh calibration so parallel runs share nothing.
func overloadBase(protocol core.Protocol) core.Config {
	cal := tpcc.DefaultCalibration()
	cal.ThinkTime = 300 * sim.Millisecond
	return core.Config{
		Sites:       3,
		Clients:     90,
		TotalTxns:   2000,
		Protocol:    protocol,
		Calibration: cal,
		Admission: &core.AdmissionConfig{
			MaxActivePerSite: 4,
			BacklogHigh:      96,
			BacklogLow:       32,
			Retry: tpcc.RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 20 * sim.Millisecond,
				MaxBackoff:  500 * sim.Millisecond,
			},
		},
	}
}

// overloadTasks regenerates per-task configs so no pointer (calibration,
// admission) is shared between parallel workers.
func overloadTasks(plan []Schedule, protocol core.Protocol) []expr.Task {
	tasks := Tasks(plan, overloadBase(protocol))
	for i := range tasks {
		fresh := overloadBase(protocol)
		fresh.Seed = tasks[i].Config.Seed
		fresh.Faults = tasks[i].Config.Faults
		tasks[i].Config = fresh
	}
	return tasks
}

// TestOverloadCampaignSweep is the statistical acceptance test: a 30-schedule
// seeded sweep with every schedule carrying both overload faults — sustained
// saturation and a slow-node gray failure, composed with whatever else the
// generator draws — must finish with zero safety violations under both
// protocols, transmit queues bounded everywhere, and the admission machinery
// demonstrably firing (rejections and retries over the sweep, not inert).
func TestOverloadCampaignSweep(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	p := Params{Sites: 3, Horizon: 12 * sim.Second, Overload: true}
	plan := Plan(23, n, p)
	for _, s := range plan {
		if !s.Has(KindSaturation) || !s.Has(KindSlowNode) {
			t.Fatalf("seed %d: overload plan missing overload faults: %s", s.Seed, s.Label())
		}
		if !s.Faults.Saturation.Active() {
			t.Fatalf("seed %d: saturation kind listed but inert", s.Seed)
		}
	}

	for _, protocol := range core.Protocols() {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			points, err := (&expr.Runner{Workers: 4}).Run(overloadTasks(plan, protocol))
			if err != nil {
				t.Fatal(err)
			}
			var rejected, retries int64
			var queuePeak int64
			for i, pt := range points {
				r := pt.Agg.Runs[0]
				if r.SafetyErr != nil {
					t.Fatalf("schedule %d (%s, seed %d) unsafe: %v",
						i, plan[i].Label(), plan[i].Seed, r.SafetyErr)
				}
				if r.Inconsistencies != 0 {
					t.Fatalf("schedule %d: %d inconsistencies", i, r.Inconsistencies)
				}
				if r.GCS.QueuePeakBytes > 1<<20 {
					t.Fatalf("schedule %d (seed %d): transmit queue peaked at %d bytes, past the 1 MiB bound",
						i, plan[i].Seed, r.GCS.QueuePeakBytes)
				}
				if r.Committed == 0 {
					t.Fatalf("schedule %d (seed %d): nothing committed", i, plan[i].Seed)
				}
				rejected += r.Rejected
				retries += r.Retries
				if r.GCS.QueuePeakBytes > queuePeak {
					queuePeak = r.GCS.QueuePeakBytes
				}
			}
			if rejected == 0 {
				t.Fatal("no schedule in the sweep ever rejected a transaction — admission control inert")
			}
			if retries == 0 {
				t.Fatal("rejections occurred but no client ever retried")
			}
			t.Logf("%d schedules: rejected=%d retries=%d queuepeak=%dKB",
				len(points), rejected, retries, queuePeak/1024)
		})
	}
}

// TestOverloadCampaignReplayIdentical re-runs a slice of the overload sweep
// with a different worker count and demands byte-identical summaries: the
// retry backoff jitter, saturation onset, and slow-node degradation all draw
// from forked per-run RNG streams, so parallelism must not change a single
// reported number.
func TestOverloadCampaignReplayIdentical(t *testing.T) {
	p := Params{Sites: 3, Horizon: 12 * sim.Second, Overload: true}
	plan := Plan(29, 5, p)
	wide, err := (&expr.Runner{Workers: 4}).Run(overloadTasks(plan, core.ProtocolConservative))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (&expr.Runner{Workers: 1}).Run(overloadTasks(plan, core.ProtocolConservative))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan {
		a, b := wide[i].Agg.Runs[0], serial[i].Agg.Runs[0]
		if a.Summary() != b.Summary() {
			t.Fatalf("schedule %d (seed %d) diverged across worker counts:\n 4: %s\n 1: %s",
				i, plan[i].Seed, a.Summary(), b.Summary())
		}
		if a.Events != b.Events {
			t.Fatalf("schedule %d: events %d vs %d", i, a.Events, b.Events)
		}
	}
}

// TestOverloadScheduleShape pins the generator's overload-specific
// invariants over many seeds: forced saturation is the canonical 2x, the
// gray failure is the canonical 10x and may land on any site — including
// the sequencer, the hardest case — and every window is well-formed (Until
// after At when bounded).
func TestOverloadScheduleShape(t *testing.T) {
	p := Params{Sites: 3, Overload: true}
	for _, s := range Plan(31, 200, p) {
		sat := s.Faults.Saturation
		if sat.Factor != 2 {
			t.Fatalf("seed %d: forced saturation factor %.2f, want the canonical 2x", s.Seed, sat.Factor)
		}
		if sat.Until != 0 && sat.Until <= sat.At {
			t.Fatalf("seed %d: saturation until %v not after at %v", s.Seed, sat.Until, sat.At)
		}
		if len(s.Faults.SlowNodes) == 0 {
			t.Fatalf("seed %d: no slow node in overload schedule", s.Seed)
		}
		for _, sn := range s.Faults.SlowNodes {
			if sn.Factor != 10 {
				t.Fatalf("seed %d: slow-node factor %.1f, want the canonical 10x", s.Seed, sn.Factor)
			}
			if int(sn.Site) < 1 || int(sn.Site) > 3 {
				t.Fatalf("seed %d: slow node targets unknown site %d", s.Seed, sn.Site)
			}
			if sn.Until != 0 && sn.Until <= sn.At {
				t.Fatalf("seed %d: slow-node until %v not after at %v", s.Seed, sn.Until, sn.At)
			}
		}
	}
}
