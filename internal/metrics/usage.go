package metrics

// UsageMeter integrates busy time of a resource (CPU, disk, link) over
// simulated time so utilization can be reported exactly, not sampled.
// The paper's Figure 6 reports average usage of CPUs and disk bandwidth; we
// accumulate busy nanoseconds and divide by elapsed nanoseconds per class of
// work ("simulated" transaction processing versus "real" protocol jobs).
// The handful of work classes live in a small slice rather than a map: the
// per-job AddBusy on the simulation hot path is then a short linear scan
// whose string compares hit the pointer-equality fast path (classes are
// interned constants), with no hashing.
type UsageMeter struct {
	classes []classBusy
}

type classBusy struct {
	class string
	ns    int64
}

// NewUsageMeter returns an empty meter.
func NewUsageMeter() *UsageMeter {
	return &UsageMeter{}
}

// AddBusy accrues busy nanoseconds attributed to a class of work.
func (u *UsageMeter) AddBusy(class string, ns int64) {
	if ns < 0 {
		return
	}
	for i := range u.classes {
		if u.classes[i].class == class {
			u.classes[i].ns += ns
			return
		}
	}
	u.classes = append(u.classes, classBusy{class: class, ns: ns})
}

// Busy reports accumulated busy nanoseconds for one class.
func (u *UsageMeter) Busy(class string) int64 {
	for i := range u.classes {
		if u.classes[i].class == class {
			return u.classes[i].ns
		}
	}
	return 0
}

// TotalBusy reports accumulated busy nanoseconds over all classes.
func (u *UsageMeter) TotalBusy() int64 {
	var t int64
	for _, c := range u.classes {
		t += c.ns
	}
	return t
}

// Utilization reports total busy time as a percentage of elapsed time
// multiplied by capacity units (e.g. number of CPUs).
func (u *UsageMeter) Utilization(elapsedNS int64, units int) float64 {
	if elapsedNS <= 0 || units <= 0 {
		return 0
	}
	return 100 * float64(u.TotalBusy()) / (float64(elapsedNS) * float64(units))
}

// ClassUtilization reports busy time of one class as a percentage of elapsed
// time multiplied by capacity units.
func (u *UsageMeter) ClassUtilization(class string, elapsedNS int64, units int) float64 {
	if elapsedNS <= 0 || units <= 0 {
		return 0
	}
	return 100 * float64(u.Busy(class)) / (float64(elapsedNS) * float64(units))
}

// ByteMeter counts bytes moved on a resource (network link, disk) so that
// sustained bandwidth can be reported.
type ByteMeter struct {
	bytes int64
}

// Add accrues n bytes.
func (b *ByteMeter) Add(n int) {
	if n > 0 {
		b.bytes += int64(n)
	}
}

// Bytes reports the total.
func (b *ByteMeter) Bytes() int64 { return b.bytes }

// KBPerSec reports throughput in kilobytes per second over elapsed
// nanoseconds, as plotted in the paper's Figure 6(c).
func (b *ByteMeter) KBPerSec(elapsedNS int64) float64 {
	if elapsedNS <= 0 {
		return 0
	}
	return float64(b.bytes) / 1024 / (float64(elapsedNS) / 1e9)
}

// MBitPerSec reports throughput in megabits per second, as plotted in the
// paper's Figure 3 validation graphs.
func (b *ByteMeter) MBitPerSec(elapsedNS int64) float64 {
	if elapsedNS <= 0 {
		return 0
	}
	return float64(b.bytes) * 8 / 1e6 / (float64(elapsedNS) / 1e9)
}
