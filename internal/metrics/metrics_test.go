package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample (n-1) stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.ECDFPoints(10) != nil {
		t.Fatal("empty sample should produce no ECDF points")
	}
}

func TestSampleECDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.ECDF(c.x); got != c.want {
			t.Fatalf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSampleECDFPointsMonotone(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64((i * 37) % 100))
	}
	pts := s.ECDFPoints(20)
	if len(pts) != 20 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("ECDF points must be monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last ECDF y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestQQIdenticalSamplesOnDiagonal(t *testing.T) {
	var a, b Sample
	for i := 0; i < 500; i++ {
		v := float64(i % 53)
		a.Add(v)
		b.Add(v)
	}
	for _, p := range QQ(&a, &b, 25) {
		if math.Abs(p.X-p.Y) > 1e-9 {
			t.Fatalf("QQ point off diagonal: %+v", p)
		}
	}
}

func TestQQShiftedSamples(t *testing.T) {
	var a, b Sample
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
		b.Add(float64(i) + 10)
	}
	for _, p := range QQ(&a, &b, 10) {
		if math.Abs(p.Y-p.X-10) > 1e-9 {
			t.Fatalf("expected constant shift, got %+v", p)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5, 5, 3, 7, 2} {
		s.Add(v)
	}
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsageMeter(t *testing.T) {
	u := NewUsageMeter()
	u.AddBusy("sim", 500)
	u.AddBusy("real", 250)
	u.AddBusy("sim", 250)
	if u.Busy("sim") != 750 {
		t.Fatalf("sim busy = %d", u.Busy("sim"))
	}
	if u.TotalBusy() != 1000 {
		t.Fatalf("total busy = %d", u.TotalBusy())
	}
	if got := u.Utilization(2000, 1); got != 50 {
		t.Fatalf("utilization = %v, want 50", got)
	}
	if got := u.Utilization(1000, 2); got != 50 {
		t.Fatalf("2-unit utilization = %v, want 50", got)
	}
	if got := u.ClassUtilization("real", 1000, 1); got != 25 {
		t.Fatalf("class utilization = %v, want 25", got)
	}
	u.AddBusy("sim", -5) // ignored
	if u.Busy("sim") != 750 {
		t.Fatal("negative busy must be ignored")
	}
}

func TestByteMeter(t *testing.T) {
	var b ByteMeter
	b.Add(1024 * 10)
	if got := b.KBPerSec(1e9); got != 10 {
		t.Fatalf("KBPerSec = %v", got)
	}
	var m ByteMeter
	m.Add(1e6 / 8) // 1 Mbit
	if got := m.MBitPerSec(1e9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MBitPerSec = %v", got)
	}
	m.Add(-1)
	if m.Bytes() != 1e6/8 {
		t.Fatal("negative add must be ignored")
	}
}

func TestRateAndFormat(t *testing.T) {
	if Rate(1, 4) != 25 {
		t.Fatalf("Rate = %v", Rate(1, 4))
	}
	if Rate(1, 0) != 0 {
		t.Fatal("Rate with zero denominator must be 0")
	}
	if FormatPct(12.345) != "12.35" && FormatPct(12.345) != "12.34" {
		t.Fatalf("FormatPct = %q", FormatPct(12.345))
	}
}
