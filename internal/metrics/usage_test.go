package metrics

import (
	"fmt"
	"testing"
)

func TestUsageMeterZeroDurationWindow(t *testing.T) {
	u := NewUsageMeter()
	u.AddBusy("sim", 500)
	if got := u.Utilization(0, 4); got != 0 {
		t.Errorf("Utilization over zero elapsed = %v, want 0", got)
	}
	if got := u.Utilization(-100, 4); got != 0 {
		t.Errorf("Utilization over negative elapsed = %v, want 0", got)
	}
	if got := u.ClassUtilization("sim", 0, 4); got != 0 {
		t.Errorf("ClassUtilization over zero elapsed = %v, want 0", got)
	}
	if got := u.Utilization(1000, 0); got != 0 {
		t.Errorf("Utilization with zero units = %v, want 0", got)
	}
	if got := u.ClassUtilization("sim", 1000, -1); got != 0 {
		t.Errorf("ClassUtilization with negative units = %v, want 0", got)
	}
}

func TestUsageMeterNegativeBusyIgnored(t *testing.T) {
	u := NewUsageMeter()
	u.AddBusy("sim", -1)
	if got := u.Busy("sim"); got != 0 {
		t.Errorf("Busy after negative AddBusy = %d, want 0", got)
	}
	if got := u.TotalBusy(); got != 0 {
		t.Errorf("TotalBusy after negative AddBusy = %d, want 0", got)
	}
	// A negative charge must not even register the class.
	u.AddBusy("sim", 10)
	u.AddBusy("sim", -10)
	if got := u.Busy("sim"); got != 10 {
		t.Errorf("Busy = %d, want 10 (negative charge ignored)", got)
	}
}

func TestUsageMeterClassSliceGrowth(t *testing.T) {
	u := NewUsageMeter()
	const classes = 40
	for round := 0; round < 3; round++ {
		for i := 0; i < classes; i++ {
			u.AddBusy(fmt.Sprintf("class-%02d", i), int64(i+1))
		}
	}
	var wantTotal int64
	for i := 0; i < classes; i++ {
		want := int64(3 * (i + 1))
		wantTotal += want
		if got := u.Busy(fmt.Sprintf("class-%02d", i)); got != want {
			t.Fatalf("Busy(class-%02d) = %d, want %d", i, got, want)
		}
	}
	if got := u.TotalBusy(); got != wantTotal {
		t.Errorf("TotalBusy = %d, want %d", got, wantTotal)
	}
	if got := u.Busy("never-seen"); got != 0 {
		t.Errorf("Busy of unknown class = %d, want 0", got)
	}
}

func TestUsageMeterUtilizationArithmetic(t *testing.T) {
	u := NewUsageMeter()
	u.AddBusy("sim", 250)
	u.AddBusy("real", 250)
	// 500 busy ns over 1000 elapsed ns on one unit = 50%.
	if got := u.Utilization(1000, 1); got != 50 {
		t.Errorf("Utilization = %v, want 50", got)
	}
	// The same busy time across two units halves the utilization.
	if got := u.Utilization(1000, 2); got != 25 {
		t.Errorf("Utilization(2 units) = %v, want 25", got)
	}
	if got := u.ClassUtilization("sim", 1000, 1); got != 25 {
		t.Errorf("ClassUtilization(sim) = %v, want 25", got)
	}
}

func TestByteMeterZeroWindowAndNegativeAdd(t *testing.T) {
	var b ByteMeter
	b.Add(-5)
	if got := b.Bytes(); got != 0 {
		t.Errorf("Bytes after negative Add = %d, want 0", got)
	}
	b.Add(2048)
	if got := b.KBPerSec(0); got != 0 {
		t.Errorf("KBPerSec over zero elapsed = %v, want 0", got)
	}
	if got := b.MBitPerSec(-1); got != 0 {
		t.Errorf("MBitPerSec over negative elapsed = %v, want 0", got)
	}
	// 2048 bytes in one second = 2 KB/s.
	if got := b.KBPerSec(1e9); got != 2 {
		t.Errorf("KBPerSec = %v, want 2", got)
	}
}
