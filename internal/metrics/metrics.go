// Package metrics provides the statistics containers used to report
// experiment results in the same form as the paper: latency summaries and
// distributions (ECDF, Q-Q), throughput in transactions-per-minute, abort
// rate breakdowns per transaction class, and resource-usage time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations and answers summary queries.
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
	sum    float64
	sumSq  float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
	s.sum += v
	s.sumSq += v * v
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two observations exist.
func (s *Sample) StdDev() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	v := (s.sumSq - s.sum*s.sum/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// tCrit95 holds two-sided 95% Student-t critical values indexed by degrees
// of freedom minus one (tCrit95[0] is df=1).
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom, falling back to the normal approximation beyond the table.
func TCrit95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// (Student-t), or 0 when fewer than two observations exist.
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return TCrit95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile with linear interpolation, or 0 for an
// empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[i]*(1-frac) + s.values[i+1]*frac
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// ECDF returns the empirical CDF evaluated at x: the fraction of
// observations <= x.
func (s *Sample) ECDF(x float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.values, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.values))
}

// ECDFPoints returns up to n (x, F(x)) points spanning the sample, suitable
// for plotting the distribution as in the paper's Figure 7.
func (s *Sample) ECDFPoints(n int) []Point {
	if len(s.values) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	if n > len(s.values) {
		n = len(s.values)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(s.values) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: s.values[idx],
			Y: float64(idx+1) / float64(len(s.values)),
		})
	}
	return pts
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Point is an (x, y) pair for plotted series.
type Point struct{ X, Y float64 }

// QQ returns n quantile-quantile pairs comparing two samples, as used by the
// paper's Figure 4 model validation: X holds quantiles of a (simulation) and
// Y quantiles of b (real system). Points near the diagonal indicate the
// distributions agree.
func QQ(a, b *Sample, n int) []Point {
	if a.N() == 0 || b.N() == 0 || n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		pts = append(pts, Point{X: a.Quantile(q), Y: b.Quantile(q)})
	}
	return pts
}

// Counter is a labelled monotonically increasing count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds delta.
func (c *Counter) Addn(delta int64) { c.n += delta }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Rate computes a per-class numerator/denominator ratio as a percentage,
// returning 0 when the denominator is zero.
func Rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// FormatPct renders a percentage with two decimals, as in the paper's
// tables.
func FormatPct(p float64) string { return fmt.Sprintf("%.2f", p) }
