package replica

import "testing"

// TestWatermarkTable drives the hysteresis gauge through its transitions:
// engage at High, release only at Low, nothing in the dead band, disabled
// when High == 0, and clamping at zero depth.
func TestWatermarkTable(t *testing.T) {
	tests := []struct {
		name        string
		high, low   int
		deltas      []int
		wantToggles []bool
		wantEngaged bool
		wantDepth   int
	}{
		{
			name: "engages at high", high: 3, low: 1,
			deltas:      []int{1, 1, 1},
			wantToggles: []bool{false, false, true},
			wantEngaged: true, wantDepth: 3,
		},
		{
			name: "stays engaged inside the dead band", high: 3, low: 1,
			deltas:      []int{3, -1},
			wantToggles: []bool{true, false},
			wantEngaged: true, wantDepth: 2,
		},
		{
			name: "releases at low", high: 3, low: 1,
			deltas:      []int{3, -1, -1},
			wantToggles: []bool{true, false, true},
			wantEngaged: false, wantDepth: 1,
		},
		{
			name: "does not re-engage while engaged", high: 3, low: 1,
			deltas:      []int{3, 2, 1},
			wantToggles: []bool{true, false, false},
			wantEngaged: true, wantDepth: 6,
		},
		{
			name: "re-engages after a full drain cycle", high: 3, low: 1,
			deltas:      []int{3, -2, 2},
			wantToggles: []bool{true, true, true},
			wantEngaged: true, wantDepth: 3,
		},
		{
			name: "high zero disables", high: 0, low: 0,
			deltas:      []int{10, 10},
			wantToggles: []bool{false, false},
			wantEngaged: false, wantDepth: 20,
		},
		{
			name: "clamps at zero", high: 3, low: 1,
			deltas:      []int{-5, 3},
			wantToggles: []bool{false, true},
			wantEngaged: true, wantDepth: 3,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := Watermark{High: tc.high, Low: tc.low}
			for i, d := range tc.deltas {
				if got := w.Add(d); got != tc.wantToggles[i] {
					t.Fatalf("step %d: Add(%d) toggled %v, want %v", i, d, got, tc.wantToggles[i])
				}
			}
			if w.Engaged() != tc.wantEngaged {
				t.Fatalf("Engaged = %v, want %v", w.Engaged(), tc.wantEngaged)
			}
			if w.Depth() != tc.wantDepth {
				t.Fatalf("Depth = %d, want %d", w.Depth(), tc.wantDepth)
			}
		})
	}
}

// TestWatermarkNoOscillation pins the point of the dead band: a constant
// load hovering at either threshold toggles the signal at most once, not on
// every step. Without hysteresis (High == Low) the same load would flap
// engage/release on each +1/-1 pair.
func TestWatermarkNoOscillation(t *testing.T) {
	w := Watermark{High: 10, Low: 4}
	for i := 0; i < 10; i++ {
		w.Add(1)
	}
	if !w.Engaged() || w.Engages() != 1 {
		t.Fatalf("after ramp: engaged=%v engages=%d", w.Engaged(), w.Engages())
	}
	// Load oscillates around High: depth 10 <-> 9, above Low throughout.
	toggles := 0
	for i := 0; i < 1000; i++ {
		if w.Add(-1) {
			toggles++
		}
		if w.Add(1) {
			toggles++
		}
	}
	if toggles != 0 {
		t.Fatalf("constant load near High toggled backpressure %d times", toggles)
	}
	if w.Engages() != 1 {
		t.Fatalf("engages = %d, want 1", w.Engages())
	}
	if w.Peak() != 10 {
		t.Fatalf("peak = %d, want 10", w.Peak())
	}
}

// TestWatermarkAddAllocs pins the per-termination accounting at zero
// allocations: Add runs on every submit and every completed termination.
func TestWatermarkAddAllocs(t *testing.T) {
	w := Watermark{High: 96, Low: 32}
	if n := testing.AllocsPerRun(100, func() {
		w.Add(1)
		w.Add(-1)
	}); n != 0 {
		t.Fatalf("Add allocates %v per run, want 0", n)
	}
}
