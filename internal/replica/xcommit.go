package replica

import (
	"sort"

	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xgroup"
)

// xmgr runs the cross-group commit round of partial replication (the
// ISSUE 8 tentpole). Each replication group orders only its own group's
// transactions; a multi-group transaction is decided by a vote/decide round
// whose every state change rides the involved groups' existing total-order
// streams, so group state stays a pure function of each group's delivered
// stream and replay is byte-identical:
//
//  1. The coordinator — the transaction's home site — splits the
//     certification message into per-group parts and multicasts the full
//     prepare on its home group's ordered stream.
//  2. At prepare delivery every home member installs a reservation over the
//     home part and computes the home vote (snapshot staleness via
//     Certifier.CheckOnly plus reservation conflicts); the coordinator then
//     relays the restricted prepare (one group's part) to the members of
//     each remote involved group. Relaying only after home delivery means a
//     coordinator that dies earlier leaves no remote state behind.
//  3. A remote group's sequencer re-multicasts the relayed prepare into its
//     own stream; at delivery every member reserves its part and votes
//     (reservation conflicts only — remote parts execute at delivery, so
//     there is no snapshot to stale-check). All members relay their vote to
//     the coordinator; votes are deterministic per group, so first-per-group
//     wins and duplicates agree.
//  4. The decision (AND of one vote per involved group) is multicast on the
//     home stream and relayed to remote groups, whose sequencer injects it
//     into their streams. At decide delivery the reservation resolves:
//     commit force-installs the part (Certifier.ForceCommit — the verdict
//     was fixed at vote time, while the reservation blocked conflicting
//     commits) and abort releases it. Remote members ack the coordinator.
//
// Relay receipts never mutate certification state — they only trigger sends
// (re-multicast injection, stored-vote replies) — so group state depends
// only on stream positions, never on datagram arrival order.
//
// Fault handling: the coordinator retransmits relays on a timer until every
// involved group voted and acked. If the coordinator's site dies, the home
// group's view change promotes the lowest surviving home member — which
// holds the full prepare from the home stream — to coordinator; it re-relays
// with itself as the reply-to, participants answer stored votes (never
// recomputed) or final decisions, and the AND of the same votes reproduces
// the same decision. Reservations guarantee that between vote and decide no
// conflicting transaction commits in any involved group, which is what makes
// the per-group certified orders composable into one serializable history
// (checked off-line by internal/check's cross-group pass).
type xmgr struct {
	r        *Replica
	group    int // own 1-based group
	groups   int
	perGroup int
	retry    sim.Time

	// pending retains every cross-group transaction this site ever saw, even
	// after resolution — deliberately. Late retransmitted probes must be
	// answered with the fixed decision, and pruning a member's entry would
	// let a delayed relayed prepare be re-injected into the stream and
	// re-voted after decide (prepareDelivered treats an unknown TID as new).
	// The heavy state (prep, part) is dropped at decide; the residue is a
	// few words per multi-group transaction, so growth is linear in run
	// length — fine for the bounded simulations this repo runs, revisit with
	// an epoch-based retirement handshake if runs ever become open-ended.
	pending map[uint64]*xtxn
	// stash holds decisions that arrived by relay before this member
	// delivered the prepare on its own stream. It only gates re-injection
	// (a send), never certification state: the decision takes effect at its
	// stream delivery like everywhere else. A fixed decision implies every
	// involved group delivered the prepare on its stream, so the entry is
	// cleared when this member reaches that delivery; entries outlive the
	// run only on members that stop first, which the same bounded-run
	// argument covers.
	stash map[uint64]bool

	// frags accumulates fragments of oversized relayed prepares (one
	// assembly per TID) until the whole prepare is restored; asm is the
	// reassembly scratch. Incomplete assemblies persist like pending
	// entries do — retransmitted frames complete them eventually, and the
	// bounded-run argument above covers the residue.
	frags map[uint64]*fragAsm
	asm   []byte

	// body is the cert-marshal scratch for the single-group fast path; buf
	// is the control-message scratch (Relay and Multicast both copy the
	// payload out before returning).
	body []byte
	buf  []byte

	records []trace.XRecord

	initiated  int64
	committedX int64
	abortedX   int64
	retries    int64
	handovers  int64
	vetoes     int64
	prepFrags  int64
}

// fragAsm is one oversized prepare's reassembly state: fragments land in
// index order slots until all are present.
type fragAsm struct {
	total int
	got   int
	parts [][]byte
}

// xtxn is one multi-group transaction's state at this site.
type xtxn struct {
	tid     uint64
	home    int
	coordID runtimeapi.NodeID
	// prep is the prepare as delivered on this group's stream: full at home
	// members (the handover inheritance), restricted elsewhere. Released at
	// decide.
	prep *xgroup.Prepare
	part *dbsm.TxnCert // this group's part (nil when the group has none)

	voted bool // prepare delivered on this group's stream
	vote  bool // this group's stored vote (never recomputed)

	decided bool // decision delivered on this group's stream
	commit  bool
	seq     uint64 // group-local install sequence when committed

	// Coordinator-side state (initiating site, or a home member after
	// handover).
	coord        bool
	involved     uint32 // bitmask of involved groups (home members only)
	votesMask    uint32
	acksMask     uint32
	allCommit    bool
	coordDecided bool // decision fixed (all votes in, or adopted)
	decideSent   bool // home decide multicast accepted by flow control
	homeDecided  bool
	doneC        bool
}

// reserved reports whether this entry holds an active reservation: a
// commit-voted, undecided part that the veto predicate must protect.
func (e *xtxn) reserved() bool { return e.voted && e.vote && !e.decided }

func xbit(g int) uint32 { return 1 << uint(g) }

func newXmgr(r *Replica) *xmgr {
	x := &xmgr{
		r:        r,
		group:    r.opts.Group,
		groups:   r.opts.GroupCount,
		perGroup: r.opts.SitesPerGroup,
		retry:    r.opts.XRetryPeriod,
		pending:  make(map[uint64]*xtxn),
		stash:    make(map[uint64]bool),
		frags:    make(map[uint64]*fragAsm),
	}
	if x.retry == 0 {
		x.retry = 100 * sim.Millisecond
	}
	return x
}

func (x *xmgr) self() runtimeapi.NodeID { return x.r.rt.Self() }

// sequencing reports whether this member is its group's current sequencer
// (lowest view member): the one that injects relayed prepares and decisions
// into the group's ordered stream.
func (x *xmgr) sequencing() bool {
	v := x.r.stack.View()
	return len(v.Members) > 0 && v.Members[0] == x.self()
}

// veto is the Certifier.Veto predicate: abort any transaction conflicting
// with an active reservation. The result is an OR over reservations, so map
// iteration order cannot affect it; reservations change only at stream
// deliveries, so every group member vetoes identically at the same position.
// The work charge is fixed before the scan — reservation count times set
// size, a full count with no short-circuit — so the simulated CPU time it
// advances is independent of the randomized map order the conflict scan
// breaks out of.
func (x *xmgr) veto(t *dbsm.TxnCert) bool {
	reserved := 0
	for _, e := range x.pending {
		if e.reserved() && e.part != nil {
			reserved++
		}
	}
	if reserved > 0 && x.r.cert.Charge != nil {
		x.r.cert.Charge(reserved * (len(t.ReadSet) + len(t.WriteSet)))
	}
	hit := false
	for _, e := range x.pending {
		if !e.reserved() || e.part == nil {
			continue
		}
		p := e.part
		if t.WriteSet.Intersects(p.WriteSet) || t.WriteSet.Intersects(p.ReadSet) ||
			t.ReadSet.Intersects(p.WriteSet) {
			//lint:simdeterminism-ok boolean OR over all reservations is commutative; break only short-circuits
			hit = true
			break
		}
	}
	if hit {
		x.vetoes++
	}
	return hit
}

// conflicts reports whether a part conflicts with any other active
// reservation (the reservation half of the vote).
func (x *xmgr) conflicts(tid uint64, p *dbsm.TxnCert) bool {
	hit := false
	for _, e := range x.pending {
		if e.tid == tid || !e.reserved() || e.part == nil {
			continue
		}
		o := e.part
		if p.WriteSet.Intersects(o.WriteSet) || p.WriteSet.Intersects(o.ReadSet) ||
			p.ReadSet.Intersects(o.WriteSet) {
			//lint:simdeterminism-ok boolean OR over all reservations is commutative; break only short-circuits
			hit = true
			break
		}
	}
	return hit
}

// terminate is the group-mode termination path: route single-group
// transactions onto the group's ordered stream, open the cross-group round
// for multi-group ones.
func (x *xmgr) terminate(t *db.Txn, tc *dbsm.TxnCert) {
	r := x.r
	parts := xgroup.Split(tc, r.opts.GroupOf, x.group)
	if len(parts) == 1 {
		// Every tuple is home-owned: the classic path, tagged.
		x.body = tc.MarshalTo(x.body)
		wire := append(r.scratch[:0], xgroup.MsgTxn)
		wire = append(wire, x.body...)
		r.scratch = wire
		r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(len(wire))))
		if !r.stack.Multicast(wire) {
			r.refused++
			r.server.RejectPending(t.TID)
			return
		}
		if r.backlog.Add(1) {
			r.server.SetBackpressure(r.backlog.Engaged())
		}
		return
	}
	prep := &xgroup.Prepare{
		TID:         tc.TID,
		Coordinator: x.self(),
		HomeGroup:   x.group,
		Parts:       parts,
	}
	wire := xgroup.AppendPrepare(r.scratch[:0], xgroup.MsgPrepare, prep, 0)
	r.scratch = wire
	r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(len(wire))))
	if !r.stack.Multicast(wire) {
		r.refused++
		r.server.RejectPending(t.TID)
		return
	}
	if r.backlog.Add(1) {
		r.server.SetBackpressure(r.backlog.Engaged())
	}
	x.initiated++
	e := &xtxn{tid: tc.TID, home: x.group, coordID: x.self(), coord: true, allCommit: true}
	for i := range parts {
		e.involved |= xbit(parts[i].Group)
	}
	x.pending[tc.TID] = e
	// Remote relays wait for the home prepare delivery (home-first rule:
	// a coordinator that dies before then leaves no remote state). The
	// timer drives retransmission from there on.
	x.armTimer(e)
}

// onStream handles a prepare or decide delivered on this group's ordered
// stream — the only places cross-group state changes. Under the optimistic
// variant the whole tentative queue is rolled back first: queued verdicts
// were computed against the pre-event reservation table, and the Final
// head-match fast path must never serve them after it changes.
func (x *xmgr) onStream(payload []byte) {
	r := x.r
	var rolled []*dbsm.TxnCert
	if r.spec != nil {
		rolled = r.spec.InvalidateAll()
	}
	switch payload[0] {
	case xgroup.MsgPrepare:
		p, err := xgroup.ParsePrepare(payload[1:])
		if err != nil {
			r.drops++
		} else {
			r.delivered++
			r.chargeUnmarshal(len(payload))
			x.prepareDelivered(p)
		}
	case xgroup.MsgDecide:
		tid, commit, err := xgroup.ParseDecision(payload[1:])
		if err != nil {
			r.drops++
		} else {
			r.delivered++
			x.decideDelivered(tid, commit)
		}
	}
	r.respeculate(rolled)
}

// prepareDelivered installs the reservation and computes this group's vote.
// Runs at the same stream position with identical certifier and reservation
// state at every group member, so every member stores the same vote.
func (x *xmgr) prepareDelivered(p *xgroup.Prepare) {
	r := x.r
	e := x.pending[p.TID]
	if e != nil && e.voted {
		return // duplicate injection; the first delivery settled everything
	}
	if e == nil {
		e = &xtxn{tid: p.TID, home: p.HomeGroup}
		x.pending[p.TID] = e
	}
	e.prep = p
	e.coordID = p.Coordinator
	for i := range p.Parts {
		e.involved |= xbit(p.Parts[i].Group)
	}
	if pt := p.PartFor(x.group); pt != nil {
		e.part = &pt.Cert
	}
	vote := true
	if e.part != nil {
		vote = !x.conflicts(e.tid, e.part)
		if vote && x.group == e.home {
			// Home reads executed against the home snapshot: stale-check
			// them. Remote parts execute at delivery — nothing to check.
			vote = r.cert.CheckOnly(e.part)
		}
	}
	e.voted, e.vote = true, vote
	if e.coord {
		x.recordVote(e, x.group, vote)
		if !e.coordDecided {
			x.sendPrepRelays(e)
		}
	} else {
		x.buf = xgroup.AppendVote(x.buf[:0], xgroup.MsgVote, e.tid, x.group, vote)
		r.stack.Relay(e.coordID, x.buf)
	}
	if commit, ok := x.stash[e.tid]; ok {
		// The decision already reached this member by relay; now that the
		// prepare is on the stream the sequencer may inject it.
		delete(x.stash, e.tid)
		if x.sequencing() {
			x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, e.tid, commit)
			_ = r.stack.Multicast(x.buf)
		}
	}
}

// decideDelivered resolves the reservation at the decision's stream
// position: force-install on commit, release on abort. Prepares always
// precede their decision on every stream (home: sender FIFO; remote: the
// sequencer only injects a decision after delivering the prepare), so a
// missing entry is a protocol bug, counted as a drop rather than ignored.
func (x *xmgr) decideDelivered(tid uint64, commit bool) {
	r := x.r
	e := x.pending[tid]
	if e == nil || !e.voted {
		r.drops++
		return
	}
	if e.decided {
		return // duplicate injection
	}
	e.decided = true
	e.commit = commit
	if commit {
		x.committedX++
		var out dbsm.Outcome
		if e.part != nil {
			out = r.cert.ForceCommit(e.part)
		} else {
			empty := dbsm.TxnCert{TID: tid}
			out = r.cert.ForceCommit(&empty)
		}
		e.seq = out.Seq
		r.commitLog.Append(out.Seq, tid)
	} else {
		x.abortedX++
	}
	rec := trace.XRecord{
		TID:       tid,
		Group:     x.group,
		HomeGroup: e.home,
		Commit:    commit,
		Seq:       e.seq,
		Involved:  e.involved,
	}
	if e.part != nil {
		rec.ReadSet, rec.WriteSet = e.part.ReadSet, e.part.WriteSet
	}
	x.records = append(x.records, rec)
	if dbsm.TIDSite(tid) == r.site {
		if r.server.ResolveLocal(tid, commit, e.seq) {
			if r.backlog.Add(-1) {
				r.server.SetBackpressure(r.backlog.Engaged())
			}
		} else if commit {
			// Orphaned local transaction (prior incarnation): install the
			// part like a remote write-set or this site's storage diverges.
			x.install(e.part, e.seq)
		}
	} else if commit {
		x.install(e.part, e.seq)
	}
	if e.home != x.group {
		x.buf = xgroup.AppendAck(x.buf[:0], xgroup.MsgAck, tid, x.group)
		r.stack.Relay(e.coordID, x.buf)
	} else if e.coord {
		e.homeDecided = true
		x.checkComplete(e)
	}
	// Reservation resolved: drop the heavy state. The entry itself stays so
	// duplicate relays get decision replies and re-acks.
	e.prep = nil
	e.part = nil
}

// install writes a committed part's rows back (remote member, or orphaned
// local transaction).
func (x *xmgr) install(part *dbsm.TxnCert, seq uint64) {
	if part == nil || len(part.WriteSet) == 0 {
		x.r.server.NoteApplied(seq)
		return
	}
	x.r.server.ApplyRemote(part, seq)
}

// onRelay handles point-to-point cross-group datagrams. Strictly send-only:
// nothing here mutates certification or reservation state, so datagram
// arrival order cannot perturb the deterministic stream state.
func (x *xmgr) onRelay(src runtimeapi.NodeID, payload []byte) {
	r := x.r
	if r.stopped || len(payload) == 0 {
		return
	}
	switch payload[0] {
	case xgroup.MsgPrepare:
		p, err := xgroup.ParsePrepare(payload[1:])
		if err != nil {
			r.drops++
			return
		}
		r.chargeUnmarshal(len(payload))
		e := x.pending[p.TID]
		if e == nil {
			// Not yet on this group's stream: the sequencer injects it.
			// Multicast copies the payload before returning, so handing it
			// the relay's bytes (tag included) is safe.
			if x.sequencing() {
				_ = r.stack.Multicast(payload)
			}
			return
		}
		x.answerPrepProbe(src, e)
	case xgroup.MsgPrepFrag:
		tid, total, idx, chunk, err := xgroup.ParsePrepFrag(payload[1:])
		if err != nil {
			r.drops++
			return
		}
		if e := x.pending[tid]; e != nil {
			// The prepare already reached this member whole (an earlier
			// transmission, or the stream): retransmitted fragments are
			// probes, answered like an intact prepare probe.
			delete(x.frags, tid)
			x.answerPrepProbe(src, e)
			return
		}
		a := x.frags[tid]
		if a == nil || a.total != total {
			a = &fragAsm{total: total, parts: make([][]byte, total)}
			x.frags[tid] = a
		}
		if a.parts[idx] == nil {
			// Relay wire buffers are per-send allocations the receiver may
			// retain read-only, so the chunk can be held as-is.
			a.parts[idx] = chunk
			a.got++
		}
		if a.got < a.total {
			return
		}
		delete(x.frags, tid)
		// All fragments present: restore the MsgPrepare payload and handle
		// it exactly like an intact relayed prepare.
		whole := append(x.asm[:0], xgroup.MsgPrepare)
		for _, part := range a.parts {
			whole = append(whole, part...)
		}
		x.asm = whole
		x.onRelay(src, whole)
	case xgroup.MsgVote:
		tid, g, commit, err := xgroup.ParseVote(payload[1:])
		if err != nil {
			r.drops++
			return
		}
		e := x.pending[tid]
		if e == nil || !e.coord || e.coordDecided {
			return
		}
		x.recordVote(e, g, commit)
	case xgroup.MsgDecide:
		tid, commit, err := xgroup.ParseDecision(payload[1:])
		if err != nil {
			r.drops++
			return
		}
		e := x.pending[tid]
		if e == nil {
			// Decision outran the prepare at this member; remember it so
			// the sequencer can inject it once the prepare lands.
			x.stash[tid] = commit
			return
		}
		if e.coord && !e.coordDecided {
			// Handover: a participant answered the probe with the decision
			// the dead coordinator already fixed. Adopt it — it is the AND
			// of the same stored votes we were re-collecting.
			x.adoptDecision(e, commit)
			return
		}
		if !e.decided {
			if x.sequencing() {
				x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, tid, commit)
				_ = r.stack.Multicast(x.buf)
			}
		} else if e.home != x.group {
			x.buf = xgroup.AppendAck(x.buf[:0], xgroup.MsgAck, tid, x.group)
			r.stack.Relay(src, x.buf)
		}
	case xgroup.MsgAck:
		tid, g, err := xgroup.ParseAck(payload[1:])
		if err != nil {
			r.drops++
			return
		}
		e := x.pending[tid]
		if e == nil || !e.coord {
			return
		}
		e.acksMask |= xbit(g)
		x.checkComplete(e)
	default:
		r.drops++
	}
}

// answerPrepProbe answers a retransmitted prepare (whole or fragmented) for
// a transaction this member already holds: the fixed decision once decided
// (plus a re-ack from remote groups), the stored vote — never recomputed —
// once voted. Strictly send-only, like everything on the relay path.
func (x *xmgr) answerPrepProbe(src runtimeapi.NodeID, e *xtxn) {
	r := x.r
	if e.decided {
		x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, e.tid, e.commit)
		r.stack.Relay(src, x.buf)
		if e.home != x.group {
			x.buf = xgroup.AppendAck(x.buf[:0], xgroup.MsgAck, e.tid, x.group)
			r.stack.Relay(src, x.buf)
		}
		return
	}
	if e.voted {
		x.buf = xgroup.AppendVote(x.buf[:0], xgroup.MsgVote, e.tid, x.group, e.vote)
		r.stack.Relay(src, x.buf)
	}
}

// recordVote accumulates one group's vote at the coordinator. First vote per
// group wins; duplicates are deterministic copies of the same stored value.
func (x *xmgr) recordVote(e *xtxn, g int, commit bool) {
	if e.votesMask&xbit(g) != 0 {
		return
	}
	e.votesMask |= xbit(g)
	e.allCommit = e.allCommit && commit
	if e.votesMask == e.involved {
		x.adoptDecision(e, e.allCommit)
	}
}

// adoptDecision fixes the decision at the coordinator and broadcasts it:
// multicast on the home stream, relayed to remote groups for injection.
func (x *xmgr) adoptDecision(e *xtxn, commit bool) {
	e.coordDecided = true
	e.allCommit = commit
	x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, e.tid, commit)
	e.decideSent = x.r.stack.Multicast(x.buf)
	x.relayDecides(e)
}

// sendPrepRelays relays the restricted prepare to every member of each
// remote involved group that has not voted yet. The reply-to coordinator is
// rewritten to self so votes come back to the current coordinator.
func (x *xmgr) sendPrepRelays(e *xtxn) {
	if e.prep == nil {
		return
	}
	mtu := x.r.rt.MTU() - 1 // the gcs relay wire prepends one kind byte
	for g := 1; g <= x.groups; g++ {
		if g == e.home || e.involved&xbit(g) == 0 || e.votesMask&xbit(g) != 0 {
			continue
		}
		restricted := e.prep.Restrict(g)
		restricted.Coordinator = x.self()
		x.buf = xgroup.AppendPrepare(x.buf[:0], xgroup.MsgPrepare, &restricted, mtu)
		if frames := xgroup.FragmentPrepare(x.buf, restricted.TID, mtu); frames != nil {
			// Padding trimming alone could not fit the datagram under the
			// MTU — the item sets themselves overflow it. Ship fragments;
			// receivers reassemble before treating it as a prepare.
			x.prepFrags += int64(len(frames))
			for _, f := range frames {
				x.relayToGroup(g, f)
			}
			continue
		}
		x.relayToGroup(g, x.buf)
	}
}

// relayDecides relays the decision to every member of each remote involved
// group that has not acked yet.
func (x *xmgr) relayDecides(e *xtxn) {
	x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, e.tid, e.allCommit)
	for g := 1; g <= x.groups; g++ {
		if g == e.home || e.involved&xbit(g) == 0 || e.acksMask&xbit(g) != 0 {
			continue
		}
		x.relayToGroup(g, x.buf)
	}
}

// relayToGroup unicasts a control payload to every site of a group. Relay
// copies the payload per send, so the shared scratch is safe to reuse.
func (x *xmgr) relayToGroup(g int, payload []byte) {
	lo, hi := xgroup.GroupSites(g, x.perGroup)
	for m := lo; m <= hi; m++ {
		x.r.stack.Relay(runtimeapi.NodeID(m), payload)
	}
}

// checkComplete retires a coordinator entry once the home stream delivered
// the decision and every remote involved group acked it.
func (x *xmgr) checkComplete(e *xtxn) {
	remote := e.involved &^ xbit(e.home)
	if e.homeDecided && e.acksMask&remote == remote {
		e.doneC = true
	}
}

// armTimer schedules the coordinator's retransmit tick.
func (x *xmgr) armTimer(e *xtxn) {
	x.r.rt.Schedule(x.retry, func() { x.tick(e) })
}

// tick retransmits whatever the round is still missing: prepares to groups
// without votes, the home decide if flow control refused it, decisions to
// groups without acks.
func (x *xmgr) tick(e *xtxn) {
	r := x.r
	if r.stopped || e.doneC || !e.coord {
		return
	}
	x.retries++
	if !e.coordDecided {
		if e.voted {
			x.sendPrepRelays(e)
		}
		// Before the home prepare delivers there is nothing to retransmit:
		// the reliable stream is still carrying it.
	} else {
		if !e.decided && !e.decideSent {
			x.buf = xgroup.AppendDecision(x.buf[:0], xgroup.MsgDecide, e.tid, e.allCommit)
			e.decideSent = r.stack.Multicast(x.buf)
		}
		x.relayDecides(e)
	}
	x.armTimer(e)
}

// onViewChange promotes the lowest surviving home member to coordinator for
// every round whose coordinator the new view excludes. Home members hold the
// full prepare from the home stream, so the successor can re-relay it; the
// participants' stored votes reproduce the same decision.
func (x *xmgr) onViewChange(v gcs.View) {
	r := x.r
	if r.stopped || len(v.Members) == 0 || v.Members[0] != x.self() {
		return
	}
	// Deterministic takeover order: collect and sort before acting — map
	// iteration order must not shape the send sequence.
	var tids []uint64
	for tid, e := range x.pending {
		if e.coord || e.doneC || !e.voted || e.home != x.group {
			continue
		}
		alive := false
		for _, m := range v.Members {
			if m == e.coordID {
				alive = true
				break
			}
		}
		if alive {
			continue
		}
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		e := x.pending[tid]
		x.handovers++
		e.coord = true
		e.coordID = x.self()
		if e.decided {
			// The decision already reached the home stream: only remote
			// acks can be missing.
			e.coordDecided = true
			e.decideSent = true
			e.homeDecided = true
			e.allCommit = e.commit
			x.relayDecides(e)
			x.checkComplete(e)
		} else {
			e.allCommit = true
			x.recordVote(e, x.group, e.vote)
			if !e.coordDecided {
				x.sendPrepRelays(e)
			}
		}
		if !e.doneC {
			x.armTimer(e)
		}
	}
}

// localSectors counts the write-set rows this site stores under group
// partitioning: own-group tuples plus the replicated catalog.
func (x *xmgr) localSectors(ws dbsm.ItemSet) int {
	n := 0
	for _, id := range ws {
		g := x.r.opts.GroupOf(id)
		if g == 0 || g == x.group {
			n++
		}
	}
	if n < 1 {
		n = 1 // the commit record itself
	}
	return n
}
