// Package replica glues one site's database server to the replication
// prototypes: it is the distributed termination path of Section 3.3. Update
// transactions entering the committing stage are marshaled and atomically
// multicast through the group communication stack; upon delivery each
// replica runs the deterministic certification procedure and either installs
// the write-set (remote transactions) or resolves the local transaction.
//
// Two protocol variants share this glue. The conservative variant certifies
// on final (total-order) delivery only. The optimistic variant
// (Options.Optimistic) runs a two-stage pipeline: on tentative delivery —
// the stack's spontaneous receive order, one ordering round before the
// sequencer's assignment — it certifies speculatively and pre-writes remote
// write-sets to scratch storage; on final delivery it confirms the queued
// verdict with no further certification work when the orders agree, and
// rolls back plus re-certifies when they diverge. Commit logs are appended
// only on final delivery, so both variants decide identically at every
// replica — the optimistic one just overlaps certification and write-back
// with the ordering round.
package replica

import (
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/recovery"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xgroup"
)

// Options tune the replica glue.
type Options struct {
	// Optimistic selects the optimistic-delivery protocol variant: the
	// two-stage certify-on-tentative / commit-on-final pipeline described
	// in the package comment.
	Optimistic bool
	// ReadSetThreshold upgrades large read-sets to table locks before
	// multicasting (0 disables).
	ReadSetThreshold int
	// CertCostPerItem is the CPU cost per identifier comparison during
	// certification (real-code cost model). Defaults to 40ns.
	CertCostPerItem sim.Time
	// MarshalCostPerByte is the CPU cost per marshaled byte. Defaults to
	// 2ns.
	MarshalCostPerByte float64
	// MaxHistory bounds the certifier's retained write-sets. Pruning is
	// deterministic across replicas (a pure function of the certified
	// stream). Defaults to 50000.
	MaxHistory int
	// ScanCertifier selects the reference history-scan certification
	// procedure instead of the default inverted last-writer index. Both
	// produce the identical outcome stream (differential-tested in
	// internal/dbsm); the scan costs O(concurrent-history × read-set) per
	// transaction and is kept as a fallback and for cross-checking.
	ScanCertifier bool
	// Replicates, when set, enables partial replication (the paper's
	// Section 5.2 mitigation for the read-one/write-all disk bottleneck,
	// evaluated as ongoing work in Section 7): only tuples for which it
	// returns true are stored — and written back — at this site.
	// Certification remains global, so the safety property is untouched;
	// only the write-back fan-out shrinks.
	Replicates func(dbsm.TupleID) bool
	// Recovering starts the replica in recovery mode: final deliveries are
	// buffered (and speculation suppressed) until InstallSnapshot seeds
	// the certifier and commit log from a donor and replays the buffered
	// delta. Used for a site rejoining after a crash.
	Recovering bool
	// BacklogHigh/BacklogLow are the hysteresis watermarks over this
	// replica's in-flight termination backlog (multicast but unresolved
	// local transactions). Crossing High asserts backpressure on the
	// server's admission gate; the signal releases once the backlog
	// drains to Low. BacklogHigh == 0 disables the gauge.
	BacklogHigh int
	BacklogLow  int

	// Group mode (partial replication by replication group). GroupCount > 1
	// enables it: this stack orders only its own group's transactions,
	// stream payloads carry a one-byte xgroup tag, and multi-group
	// transactions run the cross-group commit round (see xcommit.go).
	// Group is this site's 1-based group; SitesPerGroup fixes the
	// contiguous site numbering (group g owns sites (g-1)·S+1 .. g·S);
	// GroupOf classifies a tuple's owning group (0 = replicated catalog).
	// Incompatible with Replicates and Recovering.
	Group         int
	GroupCount    int
	SitesPerGroup int
	GroupOf       func(dbsm.TupleID) int
	// XRetryPeriod is the cross-group coordinator's retransmit period.
	// Defaults to 100ms.
	XRetryPeriod sim.Time
}

func (o *Options) fill() {
	if o.CertCostPerItem == 0 {
		o.CertCostPerItem = 40 * sim.Nanosecond
	}
	if o.MarshalCostPerByte == 0 {
		o.MarshalCostPerByte = 2
	}
	if o.MaxHistory == 0 {
		o.MaxHistory = 50000
	}
}

// Stats counts replica-level termination activity.
type Stats struct {
	// Delivered is the number of totally-ordered certification messages
	// processed.
	Delivered int64
	// Drops counts delivered payloads discarded because dbsm.Unmarshal
	// rejected them. Always zero in a healthy run: the reliable multicast
	// only hands up complete messages, so a drop here means a marshaling
	// or wire-format bug, not network loss.
	Drops int64
	// Tentative counts tentative certifications, including
	// re-certifications after rollbacks (optimistic variant only).
	Tentative int64
	// Rollbacks counts tentative/final order divergences that unwound the
	// speculative state.
	Rollbacks int64
	// Recertified counts transactions re-certified after a rollback.
	Recertified int64
	// PreApplied counts remote write-sets speculatively pre-written to
	// scratch storage at tentative delivery.
	PreApplied int64
	// PreApplyWasted counts pre-writes whose transaction finally aborted:
	// disk bandwidth spent on a wrong speculation.
	PreApplyWasted int64
	// DeltaApplied counts deliveries buffered during a recovery transfer
	// and replayed at snapshot install (the delta catch-up cost).
	DeltaApplied int64
	// MulticastRefused counts terminations the stack's bounded transmit
	// queue refused; each one surfaced as an explicit client rejection.
	MulticastRefused int64
	// Backpressure counts times the termination backlog crossed the high
	// watermark and engaged the server's admission gate.
	Backpressure int64
	// BacklogPeak is the high-water mark of the in-flight termination
	// backlog.
	BacklogPeak int64
	// Cross-group commit round counters (group mode only). XInitiated
	// counts multi-group transactions this site coordinated; XCommitted
	// and XAborted count cross-group decisions applied at this site;
	// XRetries counts coordinator retransmit ticks; XHandovers counts
	// rounds inherited from a dead coordinator.
	XInitiated int64
	XCommitted int64
	XAborted   int64
	XRetries   int64
	XHandovers int64
	// XVetoes counts local certifications aborted by the cross-group veto:
	// a transaction conflicted with an active prepare reservation.
	XVetoes int64
	// XPrepFrags counts prepare relay fragments sent because the item sets
	// alone exceeded the MTU (padding trimming could not fit the frame).
	XPrepFrags int64
}

// tentTxn is the replica-side state of one tentatively-delivered message.
type tentTxn struct {
	tc         *dbsm.TxnCert
	out        dbsm.Outcome
	preApplied bool
}

// Replica wires a server into the group.
type Replica struct {
	rt     runtimeapi.Runtime
	stack  *gcs.Stack
	server *db.Server
	cert   *dbsm.Certifier
	spec   *dbsm.SpecCertifier // optimistic variant only
	site   dbsm.SiteID
	opts   Options

	// x runs the cross-group commit round in group mode (nil otherwise).
	x *xmgr

	tent map[uint64]*tentTxn // TID -> outstanding tentative state
	// done marks messages finalized before their tentative job ran. At the
	// sequencer the total order is assigned in the very job that receives
	// the data, so final delivery beats the scheduled tentative stage for
	// every message — there is no speculation window to exploit there. The
	// late tentative job must then skip the message entirely or it would
	// poison the speculative queue with entries that can never finalize.
	done map[uint64]bool

	// scratch is the reusable certification-marshal buffer: the stack's
	// Multicast copies the payload into stream chunks before returning,
	// so the buffer is free again by the next termination.
	scratch []byte
	// freeThunks recycles the one-shot job closures handed to the
	// runtime's scheduler (terminate / tentative / discard stages).
	freeThunks []*replicaThunk

	// backlog gauges in-flight terminations (multicast but unresolved);
	// refused counts terminations the bounded transmit queue turned away.
	backlog Watermark
	refused int64

	commitLog      trace.CommitLog
	delivered      int64
	drops          int64
	recertified    int64
	preApplied     int64
	preApplyWasted int64
	deltaApplied   int64
	stopped        bool

	// Recovery state: while recovering, final deliveries land in
	// recoverBuf instead of being processed; lastGlobal tracks the highest
	// total-order sequence processed (the donor-readiness condition).
	recovering bool
	recoverBuf []bufferedDelivery
	lastGlobal uint64
}

// bufferedDelivery is one final delivery held back during a recovery
// transfer.
type bufferedDelivery struct {
	global  uint64
	payload []byte
}

// New builds the replica glue and installs its hooks on the stack and the
// server. Call Start after the stack has started.
func New(rt runtimeapi.Runtime, stack *gcs.Stack, server *db.Server, opts Options) *Replica {
	opts.fill()
	cert := dbsm.NewCertifier()
	if opts.ScanCertifier {
		cert = dbsm.NewScanCertifier()
	}
	r := &Replica{
		rt:         rt,
		stack:      stack,
		server:     server,
		cert:       cert,
		site:       server.Site(),
		opts:       opts,
		recovering: opts.Recovering,
		backlog:    Watermark{High: opts.BacklogHigh, Low: opts.BacklogLow},
	}
	r.cert.Charge = func(items int) {
		rt.Charge(sim.Time(items) * opts.CertCostPerItem)
	}
	r.cert.MaxHistory = opts.MaxHistory
	if opts.Optimistic {
		r.spec = dbsm.NewSpecCertifier(r.cert)
		r.tent = make(map[uint64]*tentTxn)
		r.done = make(map[uint64]bool)
		stack.OnOptimistic(r.onOptimistic)
		stack.OnOptimisticDiscard(r.onOptDiscard)
	}
	server.SetTerminator(r.terminate)
	stack.OnDeliver(r.onDeliver)
	if opts.GroupCount > 1 {
		r.x = newXmgr(r)
		r.cert.Veto = r.x.veto
		stack.OnRelay(r.x.onRelay)
		stack.OnViewChange(r.x.onViewChange)
		server.SectorFilter = r.x.localSectors
	}
	if opts.Replicates != nil {
		server.SectorFilter = func(ws dbsm.ItemSet) int {
			n := r.replicatedCount(ws)
			if n < 1 {
				n = 1 // the commit record itself
			}
			return n
		}
	}
	return r
}

// replicatedCount reports how many of the write-set's rows this site stores.
func (r *Replica) replicatedCount(ws dbsm.ItemSet) int {
	n := 0
	for _, id := range ws {
		if r.opts.Replicates(id) {
			n++
		}
	}
	return n
}

// Start completes initialization (reserved for future periodic work).
func (r *Replica) Start() {}

// Stop ceases activity (site crash).
func (r *Replica) Stop() { r.stopped = true }

// CommitLog exposes the site's committed sequence for the off-line safety
// check.
func (r *Replica) CommitLog() *trace.CommitLog { return &r.commitLog }

// Certifier exposes the certification state (tests, introspection).
func (r *Replica) Certifier() *dbsm.Certifier { return r.cert }

// Delivered reports totally-ordered deliveries processed.
func (r *Replica) Delivered() int64 { return r.delivered }

// Drops reports delivered payloads discarded on unmarshal failure.
func (r *Replica) Drops() int64 { return r.drops }

// Stats reports the replica's termination counters.
func (r *Replica) Stats() Stats {
	s := Stats{
		Delivered:        r.delivered,
		Drops:            r.drops,
		Recertified:      r.recertified,
		PreApplied:       r.preApplied,
		PreApplyWasted:   r.preApplyWasted,
		DeltaApplied:     r.deltaApplied,
		MulticastRefused: r.refused,
		Backpressure:     r.backlog.Engages(),
		BacklogPeak:      int64(r.backlog.Peak()),
	}
	if r.spec != nil {
		s.Tentative = r.spec.Tentatives
		s.Rollbacks = r.spec.Rollbacks
	}
	if r.x != nil {
		s.XInitiated = r.x.initiated
		s.XCommitted = r.x.committedX
		s.XAborted = r.x.abortedX
		s.XRetries = r.x.retries
		s.XHandovers = r.x.handovers
		s.XVetoes = r.x.vetoes
		s.XPrepFrags = r.x.prepFrags
	}
	return s
}

// XRecords exposes this site's cross-group transaction records for the
// off-line cross-group serialization check (nil outside group mode).
func (r *Replica) XRecords() []trace.XRecord {
	if r.x == nil {
		return nil
	}
	return r.x.records
}

// Recovering reports whether the replica is still buffering deliveries for
// a pending snapshot install.
func (r *Replica) Recovering() bool { return r.recovering }

// LastGlobal reports the highest total-order sequence this replica has
// processed — a donor must have passed the joiner's catch-up sequence
// before its snapshot covers everything the joiner will never receive.
func (r *Replica) LastGlobal() uint64 { return r.lastGlobal }

// CertSeq reports the certifier's commit sequence.
func (r *Replica) CertSeq() uint64 { return r.cert.Seq() }

// ReadSectors implements recovery.Donor: the donor-side disk cost of
// serving an exported snapshot's pages.
func (r *Replica) ReadSectors(n int, done func()) {
	r.server.Storage().ReadSectors(n, done)
}

// ExportSnapshot implements recovery.Donor: a deep snapshot of this
// replica's replicated-database state. sinceApplied is the joiner's applied
// horizon at crash; when the retained certification history still reaches
// back that far, only the pages written since are shipped, otherwise the
// whole written working set (every page the retained history knows about)
// goes on the wire.
func (r *Replica) ExportSnapshot(sinceApplied uint64) *recovery.Snapshot {
	st := r.cert.ExportState()
	if r.spec != nil {
		// An optimistic donor may hold unconfirmed tentative commits in
		// the shared certifier; a rollback after export would leave the
		// joiner with phantom commits. Ship only the finalized prefix —
		// the commit log and lastGlobal already cover exactly that.
		histLen, seq := r.spec.Finalized()
		for i := histLen; i < len(st.History); i++ {
			st.History[i] = dbsm.CommitRecord{}
		}
		st.History = st.History[:histLen]
		st.Seq = seq
	}
	snap := &recovery.Snapshot{
		Donor:       r.site,
		Global:      r.lastGlobal,
		Cert:        st,
		Commits:     append([]trace.CommitEntry(nil), r.commitLog.Entries()...),
		LastApplied: r.server.LastApplied(),
	}
	full := sinceApplied < st.Pruned
	pages := make(map[dbsm.TupleID]struct{})
	for i := range st.History {
		rec := &st.History[i]
		if !full && rec.Seq <= sinceApplied {
			continue
		}
		for _, id := range rec.WriteSet {
			pages[id] = struct{}{}
		}
	}
	snap.Pages = len(pages)
	if snap.Pages == 0 {
		snap.Pages = 1 // the log anchor page
	}
	snap.Bytes = st.WireSize() + 16*int64(len(snap.Commits)) + 4096*int64(snap.Pages)
	return snap
}

// InstallSnapshot implements recovery.Joiner: restart the server, seed
// certifier, commit log, and applied horizon from the donor's state, replay
// the buffered delta, and leave recovery mode. The work runs as a real job
// so its CPU cost lands on the recovering site; done fires afterwards.
func (r *Replica) InstallSnapshot(snap *recovery.Snapshot, done func()) {
	r.rt.StartJob(0, func() {
		r.installSnapshot(snap)
		if done != nil {
			done()
		}
	})
}

func (r *Replica) installSnapshot(snap *recovery.Snapshot) {
	if r.stopped || !r.recovering {
		return
	}
	r.server.Restart()
	r.cert.ImportState(snap.Cert)
	r.commitLog.Reset(snap.Commits)
	r.server.RestoreApplied(snap.LastApplied)
	if snap.Global > r.lastGlobal {
		r.lastGlobal = snap.Global
	}
	// Delta catch-up: replay deliveries that were certified group-wide
	// while the transfer was in flight. Buffered entries at or below the
	// snapshot's horizon are already reflected in it. No tentative
	// certification ever ran for these (speculation is suppressed while
	// recovering), so the speculative queue is empty and Final certifies
	// them directly against the imported state.
	buf := r.recoverBuf
	r.recoverBuf = nil
	r.recovering = false
	prev := snap.Global
	for _, bd := range buf {
		if bd.global <= snap.Global {
			continue
		}
		if bd.global != prev+1 {
			// The stack delivers gap-free, so a hole means deliveries
			// the snapshot should have covered are missing (e.g. a
			// transfer raced a readmission). Count each as a drop —
			// CertDrops is never silent and fails the campaign verdict
			// — instead of diverging quietly.
			r.drops += int64(bd.global - prev - 1)
		}
		prev = bd.global
		r.deltaApplied++
		r.applyFinal(bd.global, bd.payload)
	}
}

// applyFinal certifies and resolves one final delivery outside the
// two-stage pipeline (recovery catch-up: no tentative state can exist).
func (r *Replica) applyFinal(global uint64, payload []byte) {
	tc, err := dbsm.Unmarshal(payload)
	if err != nil {
		r.drops++
		return
	}
	r.chargeUnmarshal(len(payload))
	r.delivered++
	if global > r.lastGlobal {
		r.lastGlobal = global
	}
	var out dbsm.Outcome
	if r.spec != nil {
		out, _ = r.spec.Final(tc)
	} else {
		out = r.cert.Certify(tc)
	}
	r.resolve(tc, out, false)
}

// replicaThunk is a pooled one-shot job: the closure handed to the runtime
// scheduler is bound once at allocation, so scheduling a pipeline stage
// allocates nothing in steady state.
type replicaThunk struct {
	r       *Replica
	stage   func(r *Replica, txn *db.Txn, payload []byte)
	txn     *db.Txn
	payload []byte
	fire    func()
}

func (th *replicaThunk) run() {
	r, stage, txn, payload := th.r, th.stage, th.txn, th.payload
	th.stage, th.txn, th.payload = nil, nil, nil
	r.freeThunks = append(r.freeThunks, th)
	if r.stopped {
		return
	}
	stage(r, txn, payload)
}

// schedule queues a pipeline stage as its own zero-delay job.
func (r *Replica) schedule(stage func(*Replica, *db.Txn, []byte), txn *db.Txn, payload []byte) {
	var th *replicaThunk
	if n := len(r.freeThunks); n > 0 {
		th = r.freeThunks[n-1]
		r.freeThunks[n-1] = nil
		r.freeThunks = r.freeThunks[:n-1]
	} else {
		th = &replicaThunk{r: r}
		th.fire = th.run
	}
	th.stage, th.txn, th.payload = stage, txn, payload
	r.rt.StartJob(0, th.fire)
}

// terminate is the server's distributed termination hook: gather the
// transaction's sets and values and atomically multicast them. The hook is
// invoked from simulated-job context; the marshaling and multicast run as a
// real job so their cost occupies the CPU.
func (r *Replica) terminate(t *db.Txn) {
	if r.stopped {
		return
	}
	r.schedule(stageTerminate, t, nil)
}

func stageTerminate(r *Replica, t *db.Txn, _ []byte) {
	tc := t.CertInfo(r.site, r.opts.ReadSetThreshold)
	if r.x != nil {
		r.x.terminate(t, tc)
		return
	}
	wire := tc.MarshalTo(r.scratch)
	r.scratch = wire
	r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(len(wire))))
	if !r.stack.Multicast(wire) {
		// The bounded transmit queue is full: refuse the termination
		// instead of queueing without bound. The server turns this into an
		// explicit rejection the client can retry.
		r.refused++
		r.server.RejectPending(t.TID)
		return
	}
	if r.backlog.Add(1) {
		r.server.SetBackpressure(r.backlog.Engaged())
	}
}

// chargeUnmarshal accounts the CPU cost of decoding a payload.
func (r *Replica) chargeUnmarshal(n int) {
	r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(n)))
}

// onOptimistic receives one tentatively-delivered message. The upcall runs
// inside the stack's receive job, where accrued CPU cost would delay the
// sequencer's ordering announcement — so the certification work is handed
// off to its own job and only the scheduling happens here.
func (r *Replica) onOptimistic(o gcs.OptDelivery) {
	if r.stopped {
		return
	}
	r.schedule(stageTentative, nil, o.Payload)
}

func stageTentative(r *Replica, _ *db.Txn, payload []byte) { r.tentative(payload) }

// tentative is stage one of the optimistic pipeline: decode, certify
// speculatively, and act on the verdict while the sequencer's round is still
// in flight.
func (r *Replica) tentative(payload []byte) {
	if r.stopped || r.recovering {
		// While recovering there is nothing to speculate against: the
		// certifier state is in transit. The final delivery is buffered
		// and certified at install, so skipping here loses nothing.
		return
	}
	if r.x != nil {
		// Group mode: prepares and decisions are final-only events — they
		// mutate the reservation table, which tentative outcomes depend
		// on, so speculating on them would be unsound. Only plain
		// transactions speculate.
		if len(payload) == 0 || payload[0] != xgroup.MsgTxn {
			return
		}
		payload = payload[1:]
	}
	tid, err := dbsm.PeekTID(payload)
	if err != nil {
		r.drops++
		return
	}
	if r.done[tid] {
		// Finalized before this job ran (sequencer-side delivery), or
		// discarded at a view change: the message is settled, nothing
		// to speculate on — and nothing to decode.
		delete(r.done, tid)
		return
	}
	tc, err := dbsm.Unmarshal(payload)
	if err != nil {
		r.drops++
		return
	}
	r.chargeUnmarshal(len(payload))
	st := &tentTxn{tc: tc}
	st.out = r.spec.Tentative(tc)
	r.tent[tc.TID] = st
	r.speculate(st)
}

// onOptDiscard learns that a tentatively-delivered message was discarded at
// a view change and will never reach final delivery: its speculative state
// must be cancelled or it would wedge the queue head and force a rollback
// on every subsequent final delivery.
func (r *Replica) onOptDiscard(o gcs.OptDelivery) {
	if r.stopped {
		return
	}
	r.schedule(stageDiscard, nil, o.Payload)
}

func stageDiscard(r *Replica, _ *db.Txn, payload []byte) { r.discard(payload) }

// discard cancels the speculation on one never-to-finalize message.
func (r *Replica) discard(payload []byte) {
	if r.stopped || r.recovering {
		return // no speculation exists while recovering
	}
	if r.x != nil {
		if len(payload) == 0 || payload[0] != xgroup.MsgTxn {
			return // prepares/decisions were never speculated on
		}
		payload = payload[1:]
	}
	//lint:statcount-ok the tentative stage saw the same bytes and counted the drop
	tid, err := dbsm.PeekTID(payload)
	if err != nil {
		return // never speculated on: the tentative stage dropped it
	}
	st := r.tent[tid]
	if st == nil {
		// The tentative job has not run yet: make it skip this message.
		r.done[tid] = true
		return
	}
	delete(r.tent, tid)
	r.respeculate(r.spec.Invalidate(tid))
}

// speculate acts on a tentative verdict: local transactions learn their
// certification decision one ordering round early, remote commits pre-write
// their rows to scratch storage so the final install is a single
// commit-record sector.
func (r *Replica) speculate(st *tentTxn) {
	if st.tc.Site == r.site {
		r.server.NoteCertDecision(st.tc.TID)
		return
	}
	if !st.out.Commit || st.preApplied {
		return
	}
	if apply := r.localWrites(st.tc); apply != nil {
		st.preApplied = true
		r.preApplied++
		r.server.PreApplyRemote(apply.WriteSet)
	}
}

// onDeliver processes one totally-ordered certification message: certify,
// then install or resolve. This runs identically — and decides identically —
// at every replica.
func (r *Replica) onDeliver(d gcs.Delivery) {
	if r.stopped {
		return
	}
	if r.recovering {
		// The snapshot is still in transit: hold the delivery for the
		// delta catch-up. The payload aliases the wire buffer, which
		// receivers may retain (zero-copy contract).
		r.recoverBuf = append(r.recoverBuf, bufferedDelivery{global: d.Global, payload: d.Payload})
		return
	}
	if d.Global > r.lastGlobal {
		r.lastGlobal = d.Global
	}
	payload := d.Payload
	if r.x != nil {
		// Group mode: dispatch on the stream tag. Prepares and decisions
		// are cross-group events; plain transactions continue below.
		if len(payload) == 0 {
			r.drops++
			return
		}
		switch payload[0] {
		case xgroup.MsgTxn:
			payload = payload[1:]
		case xgroup.MsgPrepare, xgroup.MsgDecide:
			// onStream counts delivered only after a successful parse,
			// mirroring the classic path below.
			r.x.onStream(payload)
			return
		default:
			r.drops++
			return
		}
	}
	if r.spec != nil {
		r.finalize(payload)
		return
	}
	tc, err := dbsm.Unmarshal(payload)
	if err != nil {
		r.drops++
		return
	}
	r.delivered++
	r.chargeUnmarshal(len(payload))
	out := r.cert.Certify(tc)
	r.resolve(tc, out, false)
}

// finalize is stage two of the optimistic pipeline: confirm the queued
// tentative verdict when the final order matches (the fast path decodes
// nothing and certifies nothing), or roll the speculation back and
// re-certify when it diverges. payload is the certification message bytes
// (group-mode stream tag already stripped).
func (r *Replica) finalize(payload []byte) {
	// Malformed payloads are not counted here: the tentative stage sees
	// every payload this one does (same bytes) and already counted the
	// drop — counting both stages would inflate CertDrops 2x relative to
	// the conservative protocol.
	//lint:statcount-ok tentative stage sees the same bytes and already counted
	tid, err := dbsm.PeekTID(payload)
	if err != nil {
		return
	}
	st := r.tent[tid]
	var tc *dbsm.TxnCert
	if st != nil {
		tc = st.tc
	} else {
		// The tentative stage has not seen this payload — the final
		// order was assigned in the receive job itself (sequencer), or
		// the tentative decode failed. Decode now and mark the message
		// finalized so a late tentative job skips it. On decode failure
		// done[tid] stays unset, so the late tentative job decodes the
		// same bytes, fails the same way, and counts the drop once.
		//lint:statcount-ok the late tentative job re-decodes and counts this drop
		tc, err = dbsm.Unmarshal(payload)
		if err != nil {
			return
		}
		r.chargeUnmarshal(len(payload))
		r.done[tid] = true
	}
	r.delivered++
	out, rolled := r.spec.Final(tc)
	delete(r.tent, tid)
	r.respeculate(rolled)
	if st != nil && st.preApplied && !out.Commit {
		r.preApplyWasted++
	}
	r.resolve(tc, out, st != nil && st.preApplied)
}

// respeculate re-runs the tentative stage for a rolled-back suffix, in its
// original tentative order. Scratch pre-writes survive — the written data
// does not depend on the verdict — so only the certification decisions are
// recomputed.
func (r *Replica) respeculate(rolled []*dbsm.TxnCert) {
	for _, rtc := range rolled {
		st := r.tent[rtc.TID]
		if st == nil {
			continue
		}
		st.out = r.spec.Tentative(rtc)
		r.recertified++
		r.speculate(st)
	}
}

// resolve carries a final certification outcome to the server: local
// transactions learn their fate, committed remote write-sets are installed.
func (r *Replica) resolve(tc *dbsm.TxnCert, out dbsm.Outcome, preApplied bool) {
	if out.Commit {
		r.commitLog.Append(out.Seq, tc.TID)
	}
	if tc.Site == r.site {
		if r.server.ResolveLocal(tc.TID, out.Commit, out.Seq) {
			// One in-flight termination resolved: drain the backlog gauge.
			// Orphans (below) never counted an increment — their increment
			// belonged to a previous incarnation's gauge — so only this
			// path decrements.
			if r.backlog.Add(-1) {
				r.server.SetBackpressure(r.backlog.Engaged())
			}
			return
		}
		// Orphaned local transaction: the incarnation that submitted it
		// crashed, so no pending-certification entry exists and nobody
		// will write its data back locally. If the group committed it,
		// install it like a remote write-set or this site's storage
		// silently diverges from the replicas that applied it.
		if !out.Commit {
			return
		}
		preApplied = false
	}
	if !out.Commit {
		return
	}
	apply := r.localWrites(tc)
	if apply == nil {
		// Partial replication: nothing from this transaction is stored
		// here — skip the install entirely (no locks, no disk).
		r.server.NoteApplied(out.Seq)
		return
	}
	if preApplied {
		r.server.ApplyRemotePrepared(apply, out.Seq)
		return
	}
	r.server.ApplyRemote(apply, out.Seq)
}

// localWrites narrows a write-set to the locally-stored rows under partial
// replication. It returns tc unchanged under full replication, a filtered
// copy when only some rows are stored here, and nil when none are.
func (r *Replica) localWrites(tc *dbsm.TxnCert) *dbsm.TxnCert {
	if r.opts.Replicates == nil {
		return tc
	}
	local := make(dbsm.ItemSet, 0, len(tc.WriteSet))
	for _, id := range tc.WriteSet {
		if r.opts.Replicates(id) {
			local = append(local, id)
		}
	}
	if len(local) == 0 {
		return nil
	}
	filtered := *tc
	filtered.WriteSet = local
	return &filtered
}
