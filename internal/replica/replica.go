// Package replica glues one site's database server to the replication
// prototypes: it is the distributed termination path of Section 3.3. Update
// transactions entering the committing stage are marshaled and atomically
// multicast through the group communication stack; upon delivery each
// replica runs the deterministic certification procedure and either installs
// the write-set (remote transactions) or resolves the local transaction.
package replica

import (
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tune the replica glue.
type Options struct {
	// ReadSetThreshold upgrades large read-sets to table locks before
	// multicasting (0 disables).
	ReadSetThreshold int
	// CertCostPerItem is the CPU cost per identifier comparison during
	// certification (real-code cost model). Defaults to 40ns.
	CertCostPerItem sim.Time
	// MarshalCostPerByte is the CPU cost per marshaled byte. Defaults to
	// 2ns.
	MarshalCostPerByte float64
	// MaxHistory bounds the certifier's retained write-sets. Pruning is
	// deterministic across replicas (a pure function of the certified
	// stream). Defaults to 50000.
	MaxHistory int
	// Replicates, when set, enables partial replication (the paper's
	// Section 5.2 mitigation for the read-one/write-all disk bottleneck,
	// evaluated as ongoing work in Section 7): only tuples for which it
	// returns true are stored — and written back — at this site.
	// Certification remains global, so the safety property is untouched;
	// only the write-back fan-out shrinks.
	Replicates func(dbsm.TupleID) bool
}

func (o *Options) fill() {
	if o.CertCostPerItem == 0 {
		o.CertCostPerItem = 40 * sim.Nanosecond
	}
	if o.MarshalCostPerByte == 0 {
		o.MarshalCostPerByte = 2
	}
	if o.MaxHistory == 0 {
		o.MaxHistory = 50000
	}
}

// Replica wires a server into the group.
type Replica struct {
	rt     runtimeapi.Runtime
	stack  *gcs.Stack
	server *db.Server
	cert   *dbsm.Certifier
	site   dbsm.SiteID
	opts   Options

	commitLog trace.CommitLog
	delivered int64
	stopped   bool
}

// New builds the replica glue and installs its hooks on the stack and the
// server. Call Start after the stack has started.
func New(rt runtimeapi.Runtime, stack *gcs.Stack, server *db.Server, opts Options) *Replica {
	opts.fill()
	r := &Replica{
		rt:     rt,
		stack:  stack,
		server: server,
		cert:   dbsm.NewCertifier(),
		site:   server.Site(),
		opts:   opts,
	}
	r.cert.Charge = func(items int) {
		rt.Charge(sim.Time(items) * opts.CertCostPerItem)
	}
	r.cert.MaxHistory = opts.MaxHistory
	server.SetTerminator(r.terminate)
	stack.OnDeliver(r.onDeliver)
	if opts.Replicates != nil {
		server.SectorFilter = func(ws dbsm.ItemSet) int {
			n := r.replicatedCount(ws)
			if n < 1 {
				n = 1 // the commit record itself
			}
			return n
		}
	}
	return r
}

// replicatedCount reports how many of the write-set's rows this site stores.
func (r *Replica) replicatedCount(ws dbsm.ItemSet) int {
	n := 0
	for _, id := range ws {
		if r.opts.Replicates(id) {
			n++
		}
	}
	return n
}

// Start completes initialization (reserved for future periodic work).
func (r *Replica) Start() {}

// Stop ceases activity (site crash).
func (r *Replica) Stop() { r.stopped = true }

// CommitLog exposes the site's committed sequence for the off-line safety
// check.
func (r *Replica) CommitLog() *trace.CommitLog { return &r.commitLog }

// Certifier exposes the certification state (tests, introspection).
func (r *Replica) Certifier() *dbsm.Certifier { return r.cert }

// Delivered reports totally-ordered deliveries processed.
func (r *Replica) Delivered() int64 { return r.delivered }

// terminate is the server's distributed termination hook: gather the
// transaction's sets and values and atomically multicast them. The hook is
// invoked from simulated-job context; the marshaling and multicast run as a
// real job so their cost occupies the CPU.
func (r *Replica) terminate(t *db.Txn) {
	if r.stopped {
		return
	}
	r.rt.Schedule(0, func() {
		if r.stopped {
			return
		}
		tc := t.CertInfo(r.site, r.opts.ReadSetThreshold)
		wire := tc.Marshal()
		r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(len(wire))))
		r.stack.Multicast(wire)
	})
}

// onDeliver processes one totally-ordered certification message: certify,
// then install or resolve. This runs identically — and decides identically —
// at every replica.
func (r *Replica) onDeliver(d gcs.Delivery) {
	if r.stopped {
		return
	}
	tc, err := dbsm.Unmarshal(d.Payload)
	if err != nil {
		return
	}
	r.delivered++
	r.rt.Charge(sim.Time(r.opts.MarshalCostPerByte * float64(len(d.Payload))))
	out := r.cert.Certify(tc)
	if out.Commit {
		r.commitLog.Append(out.Seq, tc.TID)
	}
	if tc.Site == r.site {
		r.server.ResolveLocal(tc.TID, out.Commit, out.Seq)
		return
	}
	if !out.Commit {
		return
	}
	if r.opts.Replicates != nil {
		// Partial replication: install only the locally-stored rows.
		// Sites storing nothing from this transaction skip the apply
		// entirely (no locks, no disk) — the mitigated write fan-out.
		local := make(dbsm.ItemSet, 0, len(tc.WriteSet))
		for _, id := range tc.WriteSet {
			if r.opts.Replicates(id) {
				local = append(local, id)
			}
		}
		if len(local) == 0 {
			r.server.NoteApplied(out.Seq)
			return
		}
		filtered := *tc
		filtered.WriteSet = local
		r.server.ApplyRemote(&filtered, out.Seq)
		return
	}
	r.server.ApplyRemote(tc, out.Seq)
}
