package replica

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/csrt"
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// testSite bundles one replica's components.
type testSite struct {
	rt     *csrt.Runtime
	server *db.Server
	stack  *gcs.Stack
	rep    *Replica
}

func buildCluster(t *testing.T, n int) (*sim.Kernel, []*testSite) {
	t.Helper()
	return buildClusterOpts(t, n, Options{})
}

func buildClusterOpts(t *testing.T, n int, opts Options) (*sim.Kernel, []*testSite) {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(5)
	net := simnet.NewNetwork(k, rng.Fork("net"))
	lan := net.NewLAN(simnet.DefaultLANConfig("lan"))
	members := make([]gcs.NodeID, n)
	for i := range members {
		members[i] = gcs.NodeID(i + 1)
	}
	net.SetGroup(1, members)
	sites := make([]*testSite, 0, n)
	for _, id := range members {
		host, err := net.NewHost(id, lan)
		if err != nil {
			t.Fatal(err)
		}
		rt := csrt.NewRuntime(k, id, &csrt.ModelProfiler{}, net.Port(id, 1400),
			csrt.DefaultCostParams(), rng.Fork(fmt.Sprintf("rt-%d", id)))
		rt.Bind(csrt.NewCPUSet(1, k, nil))
		host.SetDeliver(func(pkt *simnet.Packet) { rt.Deliver(pkt.Src, pkt.Data) })
		storage := db.NewStorage(k, db.StorageConfig{}, rng.Fork(fmt.Sprintf("disk-%d", id)))
		server := db.NewServer(k, dbsm.SiteID(id), rt.CPUs(), storage)
		stack, err := gcs.New(rt, gcs.Config{Self: id, Members: members, Group: 1, UseMulticast: true})
		if err != nil {
			t.Fatal(err)
		}
		rep := New(rt, stack, server, opts)
		stack.Start()
		rep.Start()
		sites = append(sites, &testSite{rt: rt, server: server, stack: stack, rep: rep})
	}
	return k, sites
}

func txnFor(tid uint64, item dbsm.TupleID) *db.Txn {
	ws := dbsm.NewItemSet(item)
	return &db.Txn{
		TID:       tid,
		Class:     "w",
		Ops:       []db.Op{{Kind: db.OpProcess, CPU: 2 * sim.Millisecond}},
		ReadSet:   ws.Clone(),
		WriteSet:  ws,
		CommitCPU: sim.Millisecond,
	}
}

func TestLocalCommitPropagatesToAllReplicas(t *testing.T) {
	k, sites := buildCluster(t, 3)
	var outcome db.Outcome
	txn := txnFor(dbsm.MakeTID(1, 1), dbsm.MakeTupleID(1, 5))
	txn.Done = func(_ *db.Txn, o db.Outcome) { outcome = o }
	txn.WriteBytes = 500
	sites[0].server.Submit(txn)
	if err := k.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if outcome != db.Committed {
		t.Fatalf("outcome = %v", outcome)
	}
	for i, s := range sites {
		if s.rep.Delivered() != 1 {
			t.Fatalf("site %d delivered %d", i+1, s.rep.Delivered())
		}
		if s.rep.CommitLog().Len() != 1 {
			t.Fatalf("site %d commit log %d", i+1, s.rep.CommitLog().Len())
		}
	}
	// Remote replicas applied the write-set to their disks.
	for _, s := range sites[1:] {
		if s.server.RemoteApplied() != 1 {
			t.Fatal("remote apply missing")
		}
		if s.server.Storage().Sectors() == 0 {
			t.Fatal("remote apply wrote nothing")
		}
	}
}

func TestConcurrentConflictResolvedIdentically(t *testing.T) {
	k, sites := buildCluster(t, 3)
	hot := dbsm.MakeTupleID(1, 9)
	outcomes := make([]db.Outcome, 2)
	t1 := txnFor(dbsm.MakeTID(1, 1), hot)
	t1.Done = func(_ *db.Txn, o db.Outcome) { outcomes[0] = o }
	t2 := txnFor(dbsm.MakeTID(2, 1), hot)
	t2.Done = func(_ *db.Txn, o db.Outcome) { outcomes[1] = o }
	sites[0].server.Submit(t1)
	sites[1].server.Submit(t2)
	if err := k.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	committed := 0
	for _, o := range outcomes {
		if o == db.Committed {
			committed++
		}
	}
	if committed != 1 {
		t.Fatalf("exactly one of two conflicting txns must commit; outcomes=%v", outcomes)
	}
	// All replicas agree on the single committed sequence.
	logs := map[dbsm.SiteID]*trace.CommitLog{}
	op := map[dbsm.SiteID]bool{}
	for i, s := range sites {
		logs[dbsm.SiteID(i+1)] = s.rep.CommitLog()
		op[dbsm.SiteID(i+1)] = true
	}
	if v := check.Logs(check.FromCommitLogs(logs, op)); v != nil {
		t.Fatalf("logs diverged: %v", v)
	}
}

func TestNonConflictingTxnsAllCommit(t *testing.T) {
	k, sites := buildCluster(t, 3)
	done := 0
	for i := 0; i < 9; i++ {
		txn := txnFor(dbsm.MakeTID(dbsm.SiteID(i%3+1), uint32(i)), dbsm.MakeTupleID(1, uint64(100+i)))
		txn.Done = func(_ *db.Txn, o db.Outcome) {
			if o == db.Committed {
				done++
			}
		}
		sites[i%3].server.Submit(txn)
	}
	if err := k.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if done != 9 {
		t.Fatalf("committed %d of 9 disjoint txns", done)
	}
}

func TestReplicaStopsOnCrash(t *testing.T) {
	k, sites := buildCluster(t, 3)
	sites[2].rep.Stop()
	txn := txnFor(dbsm.MakeTID(1, 1), dbsm.MakeTupleID(1, 5))
	var outcome db.Outcome
	txn.Done = func(_ *db.Txn, o db.Outcome) { outcome = o }
	sites[0].server.Submit(txn)
	if err := k.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if outcome != db.Committed {
		t.Fatalf("outcome = %v (stopped replica must not block others)", outcome)
	}
	if sites[2].rep.CommitLog().Len() != 0 {
		t.Fatal("stopped replica still logging")
	}
}

// A corrupted certification payload must be counted at every replica, not
// silently discarded: the drop counter is the only trace a marshaling or
// wire-format bug leaves.
func TestCorruptPayloadCountedNotSilent(t *testing.T) {
	for _, optimistic := range []bool{false, true} {
		k, sites := buildClusterOpts(t, 3, Options{Optimistic: optimistic})
		// Too short for the TxnCert header: every replica's unmarshal
		// rejects it on delivery.
		k.ScheduleAt(10*sim.Millisecond, func() {
			sites[0].rt.CPUs().SubmitReal(func() {
				sites[0].stack.Multicast([]byte{0xde, 0xad, 0xbe, 0xef})
			}, nil)
		})
		// A valid transaction afterwards still goes through.
		var outcome db.Outcome
		txn := txnFor(dbsm.MakeTID(1, 1), dbsm.MakeTupleID(1, 5))
		txn.Done = func(_ *db.Txn, o db.Outcome) { outcome = o }
		k.ScheduleAt(20*sim.Millisecond, func() { sites[0].server.Submit(txn) })
		if err := k.RunUntil(5 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if outcome != db.Committed {
			t.Fatalf("optimistic=%v: valid txn after garbage: %v", optimistic, outcome)
		}
		for i, s := range sites {
			if s.rep.Drops() == 0 {
				t.Fatalf("optimistic=%v: site %d dropped the corrupt payload silently", optimistic, i+1)
			}
			if s.rep.Delivered() != 1 {
				t.Fatalf("optimistic=%v: site %d delivered %d", optimistic, i+1, s.rep.Delivered())
			}
		}
	}
}

// The optimistic pipeline must behave exactly like the conservative one on a
// fault-free cluster: every delivery was tentatively certified first, no
// rollbacks occur, no payloads drop, and all sites commit the same sequence.
func TestOptimisticPipelineFaultFree(t *testing.T) {
	k, sites := buildClusterOpts(t, 3, Options{Optimistic: true})
	hot := dbsm.MakeTupleID(1, 9)
	committed := 0
	for i := 0; i < 12; i++ {
		item := dbsm.MakeTupleID(1, uint64(100+i))
		if i%4 == 0 {
			item = hot // sprinkle real conflicts in
		}
		txn := txnFor(dbsm.MakeTID(dbsm.SiteID(i%3+1), uint32(i)), item)
		txn.Done = func(_ *db.Txn, o db.Outcome) {
			if o == db.Committed {
				committed++
			}
		}
		at := sim.Time(i+1) * 20 * sim.Millisecond
		site := sites[i%3]
		k.ScheduleAt(at, func() { site.server.Submit(txn) })
	}
	if err := k.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	logs := map[dbsm.SiteID]*trace.CommitLog{}
	op := map[dbsm.SiteID]bool{}
	for i, s := range sites {
		st := s.rep.Stats()
		if st.Drops != 0 {
			t.Fatalf("site %d drops = %d", i+1, st.Drops)
		}
		if st.Rollbacks != 0 {
			t.Fatalf("site %d rollbacks = %d on a fault-free LAN", i+1, st.Rollbacks)
		}
		// Every site — the sequencer included — tentatively certifies
		// every delivery and pre-applies remote commits. The sequencer
		// used to finalize in the very job that received the data, but
		// uniform delivery holds its final stage until a majority acks
		// the ordering announcement, so its tentative stage now wins
		// the race like everyone else's.
		if st.Tentative != st.Delivered {
			t.Fatalf("site %d: %d tentative certifications for %d deliveries",
				i+1, st.Tentative, st.Delivered)
		}
		if st.PreApplied == 0 {
			t.Fatalf("site %d never pre-applied a remote write-set", i+1)
		}
		logs[dbsm.SiteID(i+1)] = s.rep.CommitLog()
		op[dbsm.SiteID(i+1)] = true
	}
	if v := check.Logs(check.FromCommitLogs(logs, op)); v != nil {
		t.Fatalf("logs diverged: %v", v)
	}
}

// Conservative and optimistic runs of the same workload must commit the
// identical sequence: the protocol variant changes when certification work
// happens, never what it decides.
func TestProtocolsDecideIdentically(t *testing.T) {
	run := func(optimistic bool) []trace.CommitEntry {
		k, sites := buildClusterOpts(t, 3, Options{Optimistic: optimistic})
		hot := dbsm.MakeTupleID(2, 7)
		for i := 0; i < 9; i++ {
			item := dbsm.MakeTupleID(1, uint64(200+i))
			if i%3 == 1 {
				item = hot
			}
			txn := txnFor(dbsm.MakeTID(dbsm.SiteID(i%3+1), uint32(i)), item)
			at := sim.Time(i+1) * 15 * sim.Millisecond
			site := sites[i%3]
			k.ScheduleAt(at, func() { site.server.Submit(txn) })
		}
		if err := k.RunUntil(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return sites[0].rep.CommitLog().Entries()
	}
	cons := run(false)
	opt := run(true)
	if len(cons) == 0 {
		t.Fatal("conservative run committed nothing")
	}
	if len(cons) != len(opt) {
		t.Fatalf("conservative committed %d, optimistic %d", len(cons), len(opt))
	}
	for i := range cons {
		if cons[i] != opt[i] {
			t.Fatalf("position %d: conservative %+v, optimistic %+v", i, cons[i], opt[i])
		}
	}
}

func TestCertifierHistoryBounded(t *testing.T) {
	k, sites := buildCluster(t, 3)
	// MaxHistory default is large; set small via options on a fresh
	// replica is awkward mid-test, so check the wired default.
	if sites[0].rep.Certifier().MaxHistory != 50000 {
		t.Fatalf("default MaxHistory = %d", sites[0].rep.Certifier().MaxHistory)
	}
	_ = k
}
