package replica

// Watermark is a high/low hysteresis gauge over an integer depth (the
// replica's in-flight termination backlog): it engages when the depth
// reaches High and releases only once the depth has drained back to Low.
// The dead band between the two levels keeps the signal from oscillating on
// a constant load sitting near either threshold — a property the overload
// unit tests pin. High == 0 disables the gauge (it never engages).
type Watermark struct {
	High int
	Low  int

	depth   int
	engaged bool
	engages int64
	peak    int
}

// Add moves the depth by delta and reports whether the engagement state
// toggled (the caller then propagates the new state as backpressure). The
// depth is clamped at zero: a stray decrement must not bank credit against
// future increments.
func (w *Watermark) Add(delta int) bool {
	w.depth += delta
	if w.depth < 0 {
		w.depth = 0
	}
	if w.depth > w.peak {
		w.peak = w.depth
	}
	switch {
	case !w.engaged && w.High > 0 && w.depth >= w.High:
		w.engaged = true
		w.engages++
		return true
	case w.engaged && w.depth <= w.Low:
		w.engaged = false
		return true
	}
	return false
}

// Depth reports the current depth.
func (w *Watermark) Depth() int { return w.depth }

// Engaged reports whether the gauge is above the hysteresis band.
func (w *Watermark) Engaged() bool { return w.engaged }

// Engages reports how many times the gauge engaged.
func (w *Watermark) Engages() int64 { return w.engages }

// Peak reports the highest depth observed.
func (w *Watermark) Peak() int { return w.peak }
