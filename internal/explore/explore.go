package explore

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/sim"
)

// Options configures one exploration.
type Options struct {
	// Base is the workload shape (protocol, sites, clients, transaction
	// count, admission); its Seed and Faults are overwritten per candidate.
	Base core.Config
	// Space bounds the schedules searched; zero values are filled from Base.
	Space Space
	// Seed drives every random choice: candidate run seeds (derived with
	// the campaign's splitmix scheme, so generation zero replays the random
	// campaign exactly) and the mutation stream.
	Seed int64
	// Generations and Population size the search; defaults 8 and 16.
	Generations int
	Population  int
	// Workers sizes the evaluation pool; the search result is identical
	// for any worker count.
	Workers int
	// StopOnFirst ends the search at the first violating schedule.
	StopOnFirst bool
	// Log, when set, receives one progress line per generation.
	Log func(format string, args ...any)
}

// Entry is one corpus member: a schedule whose run produced coverage no
// earlier run had, with the seed it ran under and the keys it contributed.
type Entry struct {
	Genes   []Gene `json:"genes"`
	Seed    int64  `json:"seed"`
	Gen     int    `json:"gen"`
	NewKeys int    `json:"newKeys"`
}

// Found is one violating schedule the search hit.
type Found struct {
	// Genes is the repaired schedule; ToFaults(Genes) with Seed reproduces
	// the violation.
	Genes []Gene
	Seed  int64
	// Run is the 1-based global run index the violation appeared at — the
	// search's cost in runs, comparable against a random campaign's.
	Run int
	// Detail is the verdict line.
	Detail  string
	Results *core.Results
}

// Report is one exploration's outcome.
type Report struct {
	Found  []*Found
	Corpus []Entry
	// Runs is the number of model runs executed (for StopOnFirst searches,
	// through the generation the hit appeared in).
	Runs int
	// Buckets is the number of distinct coverage keys seen.
	Buckets     int
	Generations int
}

// Run executes the coverage-guided search: generation zero replays the
// random campaign's schedules for the same base seed, and each later
// generation mutates and splices corpus entries — schedules that hit new
// coverage buckets — evaluating candidates on the expr worker pool. The
// corpus, the found violations, and every derived seed depend only on
// Options, never on worker scheduling.
func Run(opts Options) (*Report, error) {
	base := opts.Base
	space := opts.Space
	if space.Sites == 0 {
		space.Sites = base.Sites
	}
	if space.Groups == 0 {
		space.Groups = base.Groups
	}
	space = space.filled()
	gens := opts.Generations
	if gens <= 0 {
		gens = 8
	}
	pop := opts.Population
	if pop <= 0 {
		pop = 16
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := sim.NewRNG(opts.Seed).Fork("explore")

	// Generation zero: the random campaign's own schedules, so the search
	// starts from the same distribution it is benchmarked against.
	params := campaign.Params{Sites: space.Sites, Groups: space.Groups, Horizon: space.Horizon}
	cands := make([][]Gene, pop)
	for i := range cands {
		sched := campaign.New(expr.DeriveSeed(opts.Seed, i), params)
		cands[i] = space.repair(FromFaults(sched.Faults))
	}

	rep := &Report{}
	cover := map[string]bool{}
	runs := 0
	for gen := 0; gen < gens; gen++ {
		tasks := make([]expr.Task, len(cands))
		seeds := make([]int64, len(cands))
		for i := range cands {
			seeds[i] = expr.DeriveSeed(opts.Seed, runs+i)
			cfg := base
			cfg.Seed = seeds[i]
			cfg.Faults = space.ToFaults(cands[i])
			tasks[i] = expr.Task{
				Label:  fmt.Sprintf("explore gen %d cand %d", gen, i),
				Config: cfg,
				Reps:   1,
			}
		}
		points, _ := (&expr.Runner{Workers: opts.Workers}).Run(tasks)
		newEntries := 0
		for i, pt := range points {
			if pt.Err != nil || pt.Agg == nil || len(pt.Agg.Runs) == 0 {
				// A candidate the model rejected or that died mid-run
				// contributes nothing; repair makes this rare.
				continue
			}
			res := pt.Agg.Runs[0]
			if bad, detail := Unsafe(res); bad {
				rep.Found = append(rep.Found, &Found{
					Genes:   cands[i],
					Seed:    seeds[i],
					Run:     runs + i + 1,
					Detail:  detail,
					Results: res,
				})
			}
			fresh := 0
			for _, k := range Fingerprint(res) {
				if !cover[k] {
					cover[k] = true
					fresh++
				}
			}
			if fresh > 0 {
				rep.Corpus = append(rep.Corpus, Entry{
					Genes: cands[i], Seed: seeds[i], Gen: gen, NewKeys: fresh,
				})
				newEntries++
			}
		}
		runs += len(cands)
		rep.Generations = gen + 1
		logf("explore: gen %d: %d runs, %d coverage keys (+%d corpus), %d violations",
			gen, runs, len(cover), newEntries, len(rep.Found))
		if opts.StopOnFirst && len(rep.Found) > 0 {
			break
		}
		cands = nextGen(rng, space, rep.Corpus, cands, pop)
	}
	if len(rep.Found) > 0 {
		// Runs as a search cost: the index the first violation appeared at.
		rep.Runs = rep.Found[0].Run
		if !opts.StopOnFirst {
			rep.Runs = runs
		}
	} else {
		rep.Runs = runs
	}
	rep.Buckets = len(cover)
	return rep, nil
}

// nextGen breeds the next candidate set from the corpus: mostly single
// mutations of corpus schedules (biased toward recent entries, which carry
// the newest coverage), sometimes a splice of two, falling back to the
// previous generation while the corpus is empty.
func nextGen(rng *sim.RNG, space Space, corpus []Entry, prev [][]Gene, pop int) [][]Gene {
	pick := func() []Gene {
		if len(corpus) == 0 {
			return prev[rng.Intn(len(prev))]
		}
		if w := minInt(len(corpus), 8); rng.Bool(0.5) {
			return corpus[len(corpus)-1-rng.Intn(w)].Genes
		}
		return corpus[rng.Intn(len(corpus))].Genes
	}
	out := make([][]Gene, 0, pop)
	for len(out) < pop {
		if rng.Bool(0.2) {
			out = append(out, space.Splice(rng, pick(), pick()))
		} else {
			out = append(out, space.Mutate(rng, pick()))
		}
	}
	return out
}

// Unsafe classifies one run's verdict, mirroring the fault campaign's rule:
// a safety-checker violation, a rejoin prefix violation, a local/global
// inconsistency, or a dropped certification payload all count.
func Unsafe(r *core.Results) (bool, string) {
	switch {
	case r.SafetyErr != nil:
		return true, r.SafetyErr.Error()
	case r.RejoinViolations != 0:
		return true, fmt.Sprintf("%d rejoin prefix violations", r.RejoinViolations)
	case r.Inconsistencies != 0:
		return true, fmt.Sprintf("%d local/global inconsistencies", r.Inconsistencies)
	case r.CertDrops != 0:
		return true, fmt.Sprintf("%d certification payloads dropped on unmarshal", r.CertDrops)
	}
	return false, ""
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
