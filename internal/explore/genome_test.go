package explore

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/sim"
)

// TestRepairProducesValidConfigs fuzzes the genome layer: any gene list —
// random genes, heavy mutation, splices — must repair to a fault
// configuration the model constructor accepts, in both topologies.
func TestRepairProducesValidConfigs(t *testing.T) {
	cases := []struct {
		name  string
		space Space
		base  core.Config
	}{
		{"classic", Space{Sites: 3, Horizon: 15 * sim.Second, Rejoin: true},
			core.Config{Sites: 3, Clients: 30, TotalTxns: 50}},
		{"grouped", Space{Sites: 3, Groups: 2, Horizon: 15 * sim.Second},
			core.Config{Sites: 3, Groups: 2, Clients: 30, TotalTxns: 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := sim.NewRNG(7).Fork("fuzz")
			genes := []Gene{}
			for i := 0; i < 60; i++ {
				switch g.Intn(3) {
				case 0: // fresh random genome
					genes = genes[:0]
					for n := g.Intn(8); len(genes) <= n; {
						genes = append(genes, tc.space.randomGene(g))
					}
					genes = tc.space.repair(genes)
				case 1:
					genes = tc.space.Mutate(g, genes)
				case 2:
					other := []Gene{tc.space.randomGene(g), tc.space.randomGene(g)}
					genes = tc.space.Splice(g, genes, other)
				}
				cfg := tc.base
				cfg.Seed = int64(i + 1)
				cfg.Faults = tc.space.ToFaults(genes)
				if _, err := core.New(cfg); err != nil {
					t.Fatalf("iteration %d: repaired genome rejected: %v\ngenes: %+v", i, err, genes)
				}
			}
		})
	}
}

// TestRepairIdempotent checks repair is a normal form: repairing a repaired
// genome changes nothing, so the shrinker's single-gene removals stay exact.
func TestRepairIdempotent(t *testing.T) {
	space := Space{Sites: 3, Groups: 2, Horizon: 15 * sim.Second}
	g := sim.NewRNG(11).Fork("idem")
	for i := 0; i < 100; i++ {
		genes := make([]Gene, 0, 8)
		for n := g.Intn(8); len(genes) <= n; {
			genes = append(genes, space.randomGene(g))
		}
		once := space.repair(genes)
		twice := space.repair(once)
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("repair not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
		}
	}
}

// TestGenomeRoundTrip checks campaign schedules survive the genome encoding:
// FromFaults then ToFaults reproduces the schedule's fault configuration, so
// generation zero of the search really replays the random campaign.
func TestGenomeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params campaign.Params
		space  Space
	}{
		{"classic", campaign.Params{Sites: 3, Rejoin: true},
			Space{Sites: 3, Rejoin: true}},
		{"grouped", campaign.Params{Sites: 3, Groups: 3},
			Space{Sites: 3, Groups: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				sched := campaign.New(expr.DeriveSeed(99, i), tc.params)
				got := tc.space.ToFaults(FromFaults(sched.Faults))
				a, _ := json.Marshal(sched.Faults)
				b, _ := json.Marshal(got)
				if string(a) != string(b) {
					t.Fatalf("seed %d: round trip changed the schedule:\nwant %s\ngot  %s",
						sched.Seed, a, b)
				}
			}
		})
	}
}
