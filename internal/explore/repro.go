package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// ReproVersion is the saved-repro format version.
const ReproVersion = 1

// Expect states what a repro must reproduce.
type Expect struct {
	// Verdict is the expected classification, always "UNSAFE".
	Verdict string `json:"verdict"`
	// Kind is the expected violation kind name (empty accepts any
	// violation — rejoin and inconsistency verdicts carry no kind).
	Kind string `json:"kind,omitempty"`
}

// Repro is a self-contained, replayable violation: the full workload shape,
// the exact fault schedule, the seed, and the expected verdict, with the
// checker's first-divergence triage attached. A repro file needs nothing
// but the binary to replay: `faultsim -replay-file <path>`.
type Repro struct {
	Version     int    `json:"version"`
	Description string `json:"description,omitempty"`
	Protocol    string `json:"protocol"`
	Sites       int    `json:"sites"`
	Groups      int    `json:"groups,omitempty"`
	Clients     int    `json:"clients"`
	Txns        int    `json:"txns"`
	Seed        int64  `json:"seed"`
	// Admission enables the default admission-control configuration.
	Admission bool `json:"admission,omitempty"`
	// MaxSimTime bounds the replay, in simulated nanoseconds (default 20
	// simulated minutes, the campaign bound).
	MaxSimTime sim.Time `json:"maxSimTimeNs,omitempty"`
	// Hooks are the test-only protocol switches the violation needs (a
	// repro of a since-fixed bug keeps failing through the hook that
	// reintroduces it).
	Hooks core.Hooks `json:"hooks,omitempty"`
	// Faults is the exact (minimized) schedule.
	Faults faults.Config `json:"faults"`
	// Genes is the schedule's genome, kept for provenance and further
	// mutation; Faults is what replays.
	Genes []Gene `json:"genes,omitempty"`
	// Expect is the verdict the replay must produce.
	Expect Expect `json:"expect"`
	// Triage is the checker's first-divergence annotation from the run
	// that produced the repro.
	Triage *check.Triage `json:"triage,omitempty"`
}

// Rerun executes one schedule under the base workload and returns its
// results; repros are built from a fresh run of the exact (minimized)
// schedule so the recorded triage matches what the file reproduces.
func Rerun(base core.Config, space Space, genes []Gene, seed int64) (*core.Results, error) {
	cfg := base
	cfg.Seed = seed
	cfg.Faults = space.filled().ToFaults(genes)
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// NewRepro packages a violating schedule as a self-contained repro.
func NewRepro(base core.Config, space Space, genes []Gene, seed int64, res *core.Results) *Repro {
	space = space.filled()
	r := &Repro{
		Version:  ReproVersion,
		Protocol: string(base.Protocol),
		Sites:    space.Sites,
		Groups:   space.Groups,
		Clients:  base.Clients,
		Txns:     base.TotalTxns,
		Seed:     seed,
		Hooks:    base.Hooks,
		Faults:   space.ToFaults(genes),
		Genes:    genes,
		Expect:   Expect{Verdict: "UNSAFE"},
	}
	if r.Groups <= 1 {
		r.Groups = 0
	}
	if base.Admission != nil {
		r.Admission = true
	}
	if base.MaxSimTime != 0 && base.MaxSimTime != 20*sim.Minute {
		r.MaxSimTime = base.MaxSimTime
	}
	if res != nil {
		if t := check.TriageOf(res.SafetyErr); t != nil {
			r.Triage = t
			r.Expect.Kind = t.Kind
		}
		if _, detail := Unsafe(res); detail != "" {
			r.Description = detail
		}
	}
	return r
}

// Config rebuilds the replay configuration.
func (r *Repro) Config() core.Config {
	cfg := core.Config{
		Sites:      r.Sites,
		Groups:     r.Groups,
		Protocol:   core.Protocol(r.Protocol),
		Clients:    r.Clients,
		TotalTxns:  r.Txns,
		Seed:       r.Seed,
		Faults:     r.Faults,
		Hooks:      r.Hooks,
		MaxSimTime: r.MaxSimTime,
	}
	if cfg.MaxSimTime == 0 {
		cfg.MaxSimTime = 20 * sim.Minute
	}
	if r.Admission {
		cfg.Admission = core.DefaultAdmissionConfig()
	}
	return cfg
}

// Replay runs the repro and reports whether the expected violation
// reproduced, with the verdict detail.
func (r *Repro) Replay() (reproduced bool, detail string, err error) {
	m, err := core.New(r.Config())
	if err != nil {
		return false, "", fmt.Errorf("explore: repro config: %w", err)
	}
	res, err := m.Run()
	if err != nil {
		return false, "", fmt.Errorf("explore: repro run: %w", err)
	}
	bad, detail := Unsafe(res)
	if !bad {
		return false, "SAFE", nil
	}
	if r.Expect.Kind != "" {
		t := check.TriageOf(res.SafetyErr)
		if t == nil || t.Kind != r.Expect.Kind {
			return false, detail, nil
		}
	}
	return true, detail, nil
}

// Marshal renders the repro as stable, indented JSON (struct field order,
// no maps), so identical repros are byte-identical files.
func (r *Repro) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the repro under dir with its canonical name and returns the
// full path.
func (r *Repro) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := r.Marshal()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Name())
	return path, os.WriteFile(path, b, 0o644)
}

// Name is the repro's canonical file name: protocol, topology, seed, and
// violation kind, so a corpus directory reads as an index.
func (r *Repro) Name() string {
	kind := r.Expect.Kind
	if kind == "" {
		kind = "unsafe"
	}
	topo := fmt.Sprintf("s%d", r.Sites)
	if r.Groups > 1 {
		topo = fmt.Sprintf("g%dx%d", r.Groups, r.Sites)
	}
	return fmt.Sprintf("repro-%s-%s-%s-%d.json", r.Protocol, topo, kind, r.Seed)
}

// LoadRepro reads a repro file.
func LoadRepro(path string) (*Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("explore: %s: unsupported repro version %d", path, r.Version)
	}
	return &r, nil
}

// WriteCorpus persists the exploration's coverage corpus under dir as
// corpus.json: every schedule that contributed new coverage, with seeds and
// generations, enough to reseed a future search.
func (rep *Report) WriteCorpus(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(struct {
		Version int     `json:"version"`
		Entries []Entry `json:"entries"`
	}{Version: ReproVersion, Entries: rep.Corpus}, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "corpus.json")
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}
