package explore

import (
	"fmt"
	"os"
	"testing"
)

func TestGenFixture(t *testing.T) {
	if os.Getenv("GEN_FIXTURE") == "" {
		t.Skip("fixture generator")
	}
	f := exploreWithWorkers(t, 0).Found[0]
	min, _ := Minimize(hookBase(), hookSpace(), f.Genes, f.Seed)
	res, err := Rerun(hookBase(), hookSpace(), min, f.Seed)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepro(hookBase(), hookSpace(), min, f.Seed, res)
	path, err := r.Save("../../cmd/faultsim/testdata")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote", path)
}
