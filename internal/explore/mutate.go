package explore

import (
	"repro/internal/sim"
)

// snapDeltas are the offsets a snap mutation applies after aligning one
// gene's onset to another's: the failure-detector timeout (1s), the
// retransmit/stability period (100ms), half of it, a single NACK delay's
// order (1ms), and exact coincidence. Snapping crash times onto each other
// plus-or-minus these protocol constants is what drives schedules into the
// narrow windows (announcement sent but not yet stable, view change mid
// flush) that uniform-delivery bugs hide in.
var snapDeltas = []sim.Time{
	-sim.Second, -100 * sim.Millisecond, -50 * sim.Millisecond, -sim.Millisecond,
	0, sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond, sim.Second,
}

// randomGene draws a fresh gene of a random kind with plausible parameters;
// clamping and structural repair happen downstream.
func (s Space) randomGene(g *sim.RNG) Gene {
	s = s.filled()
	total := s.total()
	onset := g.UniformDur(sim.Second, s.Horizon)
	gene := Gene{Kind: GeneKind(g.Intn(int(numGeneKinds))), At: onset}
	switch gene.Kind {
	case GeneDrift:
		gene.Rate = 0.01 + 0.09*g.Float64()
		if g.Bool(0.5) {
			gene.Site = int32(1 + g.Intn(total))
		}
	case GeneLatency:
		gene.Dur = g.UniformDur(sim.Millisecond, 8*sim.Millisecond)
	case GeneLoss:
		gene.Rate = 0.01 + 0.09*g.Float64()
		if g.Bool(0.4) {
			gene.Bursty = true
			gene.Factor = 3 + 5*g.Float64()
		}
	case GeneCrash:
		gene.Site = int32(1 + g.Intn(total))
		if s.Rejoin && g.Bool(0.4) {
			gene.Recover = onset + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
	case GenePartition:
		m := 1 + g.Intn(maxInt(1, s.budget()))
		first := int32(1 + g.Intn(total))
		gene.Sites = []int32{first}
		for i := 1; i < m; i++ {
			gene.Sites = append(gene.Sites, first+int32(i))
		}
		if g.Bool(0.75) {
			gene.Until = onset + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
	case GeneSaturation:
		gene.Factor = 1.5 + 1.5*g.Float64()
		if g.Bool(0.5) {
			gene.Until = onset + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
	case GeneSlowNode:
		gene.Site = int32(1 + g.Intn(total))
		gene.Factor = 10
		if g.Bool(0.4) {
			gene.Until = onset + g.UniformDur(10*sim.Second, 20*sim.Second)
		}
	case GeneDuplicate, GeneReorder:
		gene.Rate = 0.02 + 0.1*g.Float64()
		gene.Dur = g.UniformDur(sim.Millisecond, 5*sim.Millisecond)
		if g.Bool(0.4) {
			gene.Until = onset + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
	}
	return gene
}

// Mutate returns a structurally repaired copy of the gene list with one
// random edit applied: add, drop, retime, retarget, rerate, or snap (align
// one gene's onset to another's plus a protocol-constant delta). The input
// is never modified.
func (s Space) Mutate(g *sim.RNG, genes []Gene) []Gene {
	s = s.filled()
	out := make([]Gene, len(genes))
	copy(out, genes)
	op := g.Intn(6)
	if len(out) == 0 {
		op = 0
	}
	switch op {
	case 0: // add
		at := g.Intn(len(out) + 1)
		out = append(out, Gene{})
		copy(out[at+1:], out[at:])
		out[at] = s.randomGene(g)
	case 1: // drop
		at := g.Intn(len(out))
		out = append(out[:at], out[at+1:]...)
	case 2: // retime
		at := g.Intn(len(out))
		gene := out[at]
		gene.At = g.UniformDur(sim.Second, s.Horizon)
		if gene.Until != 0 {
			gene.Until = gene.At + g.UniformDur(sim.Second, 20*sim.Second)
		}
		if gene.Recover != 0 {
			gene.Recover = gene.At + g.UniformDur(5*sim.Second, 20*sim.Second)
		}
		out[at] = gene
	case 3: // retarget
		at := g.Intn(len(out))
		gene := out[at]
		shift := int32(1 + g.Intn(s.total()))
		if gene.Site != 0 {
			gene.Site = wrapSite(gene.Site+shift, s.total())
		}
		if len(gene.Sites) > 0 {
			sites := make([]int32, len(gene.Sites))
			for i, sid := range gene.Sites {
				sites[i] = wrapSite(sid+shift, s.total())
			}
			gene.Sites = sites
		}
		out[at] = gene
	case 4: // rerate
		at := g.Intn(len(out))
		gene := out[at]
		scale := 0.5 + 1.5*g.Float64()
		gene.Rate *= scale
		if gene.Factor != 0 {
			gene.Factor *= scale
		}
		if gene.Dur != 0 {
			gene.Dur = sim.Time(float64(gene.Dur) * scale)
		}
		out[at] = gene
	case 5: // snap
		i := g.Intn(len(out))
		j := g.Intn(len(out))
		gene := out[i]
		delta := snapDeltas[g.Intn(len(snapDeltas))]
		gene.At = out[j].At + delta
		if gene.Recover != 0 && gene.Recover <= gene.At {
			gene.Recover = gene.At + 8*sim.Second
		}
		out[i] = gene
	}
	return s.repair(out)
}

// Splice crosses two parents at random cut points and repairs the child.
func (s Space) Splice(g *sim.RNG, a, b []Gene) []Gene {
	s = s.filled()
	ca := g.Intn(len(a) + 1)
	cb := g.Intn(len(b) + 1)
	child := make([]Gene, 0, ca+len(b)-cb)
	child = append(child, a[:ca]...)
	child = append(child, b[cb:]...)
	return s.repair(child)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
