// Package explore is the adversarial fault explorer: a coverage-guided
// search over fault schedules, a delta-debugging shrinker, and a saved-repro
// corpus. Schedules are encoded as flat gene lists so they can be mutated,
// spliced, and shrunk structurally; a deterministic repair pass maps any gene
// list onto a fault configuration the model accepts, so every mutation
// yields a runnable schedule. Coverage is a fingerprint of the protocol
// counters a run exercised (view changes, flush abandons, commit retries,
// rollbacks, credit stalls, ...), bucketed by order of magnitude; schedules
// that light up new buckets enter the corpus and seed the next generation.
package explore

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/xgroup"
)

// GeneKind enumerates the fault primitives a gene can encode.
type GeneKind uint8

// Gene kinds, one per fault primitive in faults.Config.
const (
	GeneDrift GeneKind = iota
	GeneLatency
	GeneLoss
	GeneCrash
	GenePartition
	GeneSaturation
	GeneSlowNode
	GeneDuplicate
	GeneReorder
	numGeneKinds
)

var geneKindNames = [numGeneKinds]string{
	"drift", "latency", "loss", "crash", "partition",
	"saturation", "slownode", "dup", "reorder",
}

// String names the kind as in campaign fault-kind tags.
func (k GeneKind) String() string {
	if int(k) < len(geneKindNames) {
		return geneKindNames[k]
	}
	return "unknown"
}

// Gene is one fault primitive with its full parameter set. Unused fields
// stay zero; repair clamps the used ones into model-legal ranges. The field
// meanings follow the corresponding faults type: Until is the window end
// (a partition's Heal), Dur is the latency mean or the duplicate/reorder
// delay bound, Rate is the probability or drift rate, Factor is the
// saturation/slow-node multiplier (a bursty loss's mean burst length).
type Gene struct {
	Kind    GeneKind `json:"kind"`
	Site    int32    `json:"site,omitempty"`
	Sites   []int32  `json:"sites,omitempty"`
	At      sim.Time `json:"at,omitempty"`
	Until   sim.Time `json:"until,omitempty"`
	Recover sim.Time `json:"recover,omitempty"`
	Rate    float64  `json:"rate,omitempty"`
	Factor  float64  `json:"factor,omitempty"`
	Dur     sim.Time `json:"dur,omitempty"`
	Bursty  bool     `json:"bursty,omitempty"`
}

// Space bounds the schedules the explorer searches: the topology the genes
// target and the onset horizon mutations draw times from.
type Space struct {
	// Sites is the per-group site count (total under full replication).
	Sites int
	// Groups is the replication-group count; 0 or 1 means full replication.
	Groups int
	// Horizon bounds fault onset times.
	Horizon sim.Time
	// Rejoin permits crash-recovery genes (full replication only; the
	// recovery path is incompatible with replication groups).
	Rejoin bool
}

func (s Space) filled() Space {
	if s.Sites <= 0 {
		s.Sites = 3
	}
	if s.Groups <= 0 {
		s.Groups = 1
	}
	if s.Horizon <= 0 {
		s.Horizon = 40 * sim.Second
	}
	if s.Groups > 1 {
		s.Rejoin = false
	}
	return s
}

// total is the site-universe size.
func (s Space) total() int { return s.Groups * s.Sites }

// budget is the number of disabled sites each group tolerates while keeping
// a strict majority.
func (s Space) budget() int { return (s.Sites - 1) / 2 }

func (s Space) groupOf(site int32) int {
	if s.Groups <= 1 {
		return 1
	}
	return xgroup.GroupOfSite(int(site), s.Sites)
}

func wrapSite(site int32, total int) int32 {
	m := (int(site) - 1) % total
	if m < 0 {
		m += total
	}
	return int32(m + 1)
}

func clampTime(t, lo, hi sim.Time) sim.Time {
	if t < lo {
		return lo
	}
	if t > hi {
		return hi
	}
	return t
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampGene forces one gene's parameters into model-legal, search-sensible
// ranges. Structural consistency across genes (budgets, duplicates) is
// repair's job; this is per-gene only.
func (s Space) clampGene(g Gene) Gene {
	total := s.total()
	g.At = clampTime(g.At, sim.Second, s.Horizon)
	if g.Until != 0 {
		g.Until = clampTime(g.Until, g.At+50*sim.Millisecond, g.At+30*sim.Second)
	}
	switch g.Kind {
	case GeneDrift:
		g.Rate = clampF(g.Rate, 0.005, 0.15)
		if g.Site != 0 {
			g.Site = wrapSite(g.Site, total)
		}
	case GeneLatency:
		g.Dur = clampTime(g.Dur, 200*sim.Microsecond, 10*sim.Millisecond)
	case GeneLoss:
		g.Rate = clampF(g.Rate, 0.005, 0.3)
		if g.Bursty {
			g.Factor = clampF(g.Factor, 2, 8)
		}
	case GeneCrash:
		g.Site = wrapSite(g.Site, total)
		if g.Recover != 0 {
			if !s.Rejoin {
				g.Recover = 0
			} else {
				g.Recover = clampTime(g.Recover, g.At+sim.Second, g.At+60*sim.Second)
			}
		}
	case GeneSaturation:
		g.Factor = clampF(g.Factor, 1.2, 4)
	case GeneSlowNode:
		g.Site = wrapSite(g.Site, total)
		g.Factor = clampF(g.Factor, 2, 20)
	case GeneDuplicate, GeneReorder:
		g.Rate = clampF(g.Rate, 0.005, 0.4)
		if g.Dur != 0 {
			g.Dur = clampTime(g.Dur, 500*sim.Microsecond, 10*sim.Millisecond)
		}
	}
	return g
}

// repair normalizes a gene list into one that maps to a model-legal fault
// configuration: genes are visited in order and each is clamped and then
// accepted or dropped when it would break a structural invariant (singleton
// fault already present, crash budget exhausted, partition not a strict
// single-group minority, ...). Repair is deterministic and idempotent, so a
// repaired list re-repairs to itself and the shrinker's single-gene removals
// stay meaningful.
func (s Space) repair(genes []Gene) []Gene {
	s = s.filled()
	budget := s.budget()
	out := make([]Gene, 0, len(genes))
	var seen [numGeneKinds]bool
	crashed := map[int32]bool{}
	parted := map[int32]bool{}
	slowed := map[int32]bool{}
	disabled := make([]int, s.Groups+1)
	for _, g := range genes {
		if g.Kind >= numGeneKinds {
			continue
		}
		g = s.clampGene(g)
		switch g.Kind {
		case GeneDrift, GeneLatency, GeneLoss, GeneSaturation, GeneDuplicate, GeneReorder:
			// Singletons: the underlying fault is one global knob.
			if seen[g.Kind] {
				continue
			}
			seen[g.Kind] = true
		case GeneSlowNode:
			if slowed[g.Site] {
				continue
			}
			slowed[g.Site] = true
		case GeneCrash:
			gr := s.groupOf(g.Site)
			if crashed[g.Site] || parted[g.Site] || disabled[gr] >= budget {
				continue
			}
			crashed[g.Site] = true
			disabled[gr]++
		case GenePartition:
			// One cut per schedule (the network supports one active cut;
			// non-overlap bookkeeping is not worth the search value).
			if seen[g.Kind] {
				continue
			}
			sites := normalizePartition(g.Sites, s, crashed, parted)
			gr := -1
			kept := sites[:0]
			for _, sid := range sites {
				if gr == -1 {
					gr = s.groupOf(sid)
				}
				if s.groupOf(sid) != gr {
					continue // isolate within one group only
				}
				if disabled[gr]+len(kept) >= budget {
					break
				}
				kept = append(kept, sid)
			}
			if len(kept) == 0 {
				continue
			}
			g.Sites = kept
			for _, sid := range kept {
				parted[sid] = true
			}
			disabled[gr] += len(kept)
			seen[g.Kind] = true
		}
		out = append(out, g)
	}
	return out
}

// normalizePartition wraps, dedupes, and sorts a partition's site list,
// dropping sites already taken by a crash or an earlier cut.
func normalizePartition(sites []int32, s Space, crashed, parted map[int32]bool) []int32 {
	total := s.total()
	uniq := map[int32]bool{}
	out := make([]int32, 0, len(sites))
	for _, sid := range sites {
		sid = wrapSite(sid, total)
		if uniq[sid] || crashed[sid] || parted[sid] {
			continue
		}
		uniq[sid] = true
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ToFaults maps a gene list onto the fault configuration it encodes,
// repairing it first. The result always passes the model's structural
// validation for this space's topology.
func (s Space) ToFaults(genes []Gene) faults.Config {
	s = s.filled()
	var f faults.Config
	for _, g := range s.repair(genes) {
		switch g.Kind {
		case GeneDrift:
			f.ClockDriftRate = g.Rate
			if g.Site != 0 {
				f.ClockDriftSites = []int32{g.Site}
			}
		case GeneLatency:
			f.SchedLatencyMean = g.Dur
		case GeneLoss:
			if g.Bursty {
				f.Loss = faults.Loss{Kind: faults.LossBursty, Rate: g.Rate, MeanBurst: g.Factor}
			} else {
				f.Loss = faults.Loss{Kind: faults.LossRandom, Rate: g.Rate}
			}
		case GeneCrash:
			f.Crashes = append(f.Crashes, faults.Crash{Site: g.Site, At: g.At})
			if g.Recover != 0 {
				f.Recovers = append(f.Recovers, faults.Recover{Site: g.Site, At: g.Recover})
			}
		case GenePartition:
			pt := faults.Partition{Sites: g.Sites, At: g.At, Heal: g.Until}
			f.Partitions = append(f.Partitions, pt)
		case GeneSaturation:
			f.Saturation = faults.Saturation{Factor: g.Factor, At: g.At, Until: g.Until}
		case GeneSlowNode:
			f.SlowNodes = append(f.SlowNodes, faults.SlowNode{
				Site: g.Site, Factor: g.Factor, At: g.At, Until: g.Until,
			})
		case GeneDuplicate:
			f.Duplicate = faults.Duplicate{Rate: g.Rate, Delay: g.Dur, At: g.At, Until: g.Until}
		case GeneReorder:
			f.Reorder = faults.Reorder{Rate: g.Rate, Delay: g.Dur, At: g.At, Until: g.Until}
		}
	}
	sort.Slice(f.Crashes, func(i, j int) bool { return f.Crashes[i].At < f.Crashes[j].At })
	sort.Slice(f.Recovers, func(i, j int) bool { return f.Recovers[i].At < f.Recovers[j].At })
	return f
}

// FromFaults inverts ToFaults for configurations produced by the campaign
// generators, so campaign schedules can seed generation zero.
func FromFaults(f faults.Config) []Gene {
	var out []Gene
	if f.ClockDriftRate != 0 {
		g := Gene{Kind: GeneDrift, Rate: f.ClockDriftRate}
		if len(f.ClockDriftSites) > 0 {
			g.Site = f.ClockDriftSites[0]
		}
		out = append(out, g)
	}
	if f.SchedLatencyMean != 0 {
		out = append(out, Gene{Kind: GeneLatency, Dur: f.SchedLatencyMean})
	}
	switch f.Loss.Kind {
	case faults.LossRandom:
		out = append(out, Gene{Kind: GeneLoss, Rate: f.Loss.Rate})
	case faults.LossBursty:
		out = append(out, Gene{Kind: GeneLoss, Rate: f.Loss.Rate, Bursty: true, Factor: f.Loss.MeanBurst})
	}
	for _, cr := range f.Crashes {
		g := Gene{Kind: GeneCrash, Site: cr.Site, At: cr.At}
		if rc := f.RecoverOf(cr.Site); rc != nil {
			g.Recover = rc.At
		}
		out = append(out, g)
	}
	for _, pt := range f.Partitions {
		out = append(out, Gene{
			Kind:  GenePartition,
			Sites: append([]int32(nil), pt.Sites...),
			At:    pt.At,
			Until: pt.Heal,
		})
	}
	if f.Saturation.Active() {
		out = append(out, Gene{
			Kind: GeneSaturation, Factor: f.Saturation.Factor,
			At: f.Saturation.At, Until: f.Saturation.Until,
		})
	}
	for _, sn := range f.SlowNodes {
		out = append(out, Gene{
			Kind: GeneSlowNode, Site: sn.Site, Factor: sn.Factor,
			At: sn.At, Until: sn.Until,
		})
	}
	if f.Duplicate.Active() {
		d := f.Duplicate
		out = append(out, Gene{Kind: GeneDuplicate, Rate: d.Rate, Dur: d.Delay, At: d.At, Until: d.Until})
	}
	if f.Reorder.Active() {
		r := f.Reorder
		out = append(out, Gene{Kind: GeneReorder, Rate: r.Rate, Dur: r.Delay, At: r.At, Until: r.Until})
	}
	return out
}
