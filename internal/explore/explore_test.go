package explore

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sim"
)

// The self-test workload: the PR-7 uniform-delivery fix reverted through the
// test-only NonUniformSequencer hook, under the short-campaign shape. The
// resurrected bug needs a sequencer crash landing inside the narrow window
// between the sequencer's non-uniform local delivery and the survivors
// learning the assignment — exactly the kind of timing coincidence random
// campaigning almost never draws and coverage-guided mutation homes in on.
func hookBase() core.Config {
	return core.Config{
		Sites: 3, Clients: 60, TotalTxns: 300,
		Protocol:   core.ProtocolConservative,
		MaxSimTime: 20 * sim.Minute,
		Admission:  core.DefaultAdmissionConfig(),
		Hooks:      core.Hooks{NonUniformSequencer: true},
	}
}

func hookSpace() Space { return Space{Sites: 3, Horizon: 15 * sim.Second} }

const hookSeed = 3

// explored caches one exploration per worker count, shared across tests.
var explored = struct {
	sync.Mutex
	reports map[int]*Report
}{reports: map[int]*Report{}}

func exploreWithWorkers(t *testing.T, workers int) *Report {
	t.Helper()
	explored.Lock()
	defer explored.Unlock()
	if rep := explored.reports[workers]; rep != nil {
		return rep
	}
	rep, err := Run(Options{
		Base:        hookBase(),
		Space:       hookSpace(),
		Seed:        hookSeed,
		Generations: 8,
		Population:  16,
		Workers:     workers,
		StopOnFirst: true,
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(rep.Found) == 0 {
		t.Fatalf("explorer found no violation in %d runs", rep.Runs)
	}
	explored.reports[workers] = rep
	return rep
}

// TestExplorerBeatsRandom is the mutation self-test the issue's acceptance
// criteria demand: with the uniform-delivery fix reverted behind the hook,
// the coverage-guided explorer must find the violation in at most half the
// runs random campaigning needs, under the same run budget and seeds
// (generation zero IS the random campaign's schedule sequence).
func TestExplorerBeatsRandom(t *testing.T) {
	const budget = 100
	// Random baseline: the campaign's schedules in plan order, exactly the
	// runs the explorer's generation zero replays.
	params := campaign.Params{Sites: 3, Horizon: 15 * sim.Second}
	baselineFirst := budget + 1 // not found within the budget
	for i, task := range campaign.Tasks(campaign.Plan(hookSeed, budget, params), hookBase()) {
		m, err := core.New(task.Config)
		if err != nil {
			t.Fatalf("baseline run %d: %v", i, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("baseline run %d: %v", i, err)
		}
		if bad, _ := Unsafe(res); bad {
			baselineFirst = i + 1
			break
		}
	}

	rep := exploreWithWorkers(t, 0)
	got := rep.Found[0].Run
	t.Logf("baseline first violation: run %d (of %d budget); explorer: run %d",
		baselineFirst, budget, got)
	if 2*got > baselineFirst {
		t.Fatalf("explorer needed %d runs, more than half the random campaign's %d",
			got, baselineFirst)
	}
}

// TestExploreDeterministicAcrossWorkers pins the search result — the found
// schedule, its seed, the run index, and the minimized repro's exact bytes —
// across worker-pool sizes 1, 4, and 8.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	var repro []byte
	var run int
	for _, workers := range []int{1, 4, 8} {
		rep := exploreWithWorkers(t, workers)
		f := rep.Found[0]
		min, _ := Minimize(hookBase(), hookSpace(), f.Genes, f.Seed)
		res, err := Rerun(hookBase(), hookSpace(), min, f.Seed)
		if err != nil {
			t.Fatalf("workers=%d: rerun: %v", workers, err)
		}
		b, err := NewRepro(hookBase(), hookSpace(), min, f.Seed, res).Marshal()
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		if repro == nil {
			repro, run = b, f.Run
			continue
		}
		if f.Run != run {
			t.Errorf("workers=%d: violation at run %d, workers=1 found it at run %d", workers, f.Run, run)
		}
		if !bytes.Equal(b, repro) {
			t.Errorf("workers=%d: repro bytes differ from workers=1:\n%s\n--- vs ---\n%s", workers, b, repro)
		}
	}
}

// TestMinimizeProperties is the shrinker property test: the minimized
// schedule still violates, is small, and is locally minimal — removing any
// single remaining fault makes the violation disappear.
func TestMinimizeProperties(t *testing.T) {
	base, space := hookBase(), hookSpace()
	f := exploreWithWorkers(t, 0).Found[0]
	min, stats := Minimize(base, space, f.Genes, f.Seed)
	t.Logf("minimized %d -> %d genes in %d probes", stats.From, stats.To, stats.Probes)

	violates := func(genes []Gene) bool {
		cfg := base
		cfg.Seed = f.Seed
		cfg.Faults = space.ToFaults(genes)
		m, err := core.New(cfg)
		if err != nil {
			return false
		}
		res, err := m.Run()
		if err != nil {
			return false
		}
		bad, _ := Unsafe(res)
		return bad
	}

	if !violates(min) {
		t.Fatalf("minimized schedule no longer violates: %+v", min)
	}
	if len(min) > 4 {
		t.Fatalf("minimized schedule keeps %d faults, want <= 4: %+v", len(min), min)
	}
	for i := range min {
		cand := append(append([]Gene{}, min[:i]...), min[i+1:]...)
		if violates(space.repair(cand)) {
			t.Fatalf("not locally minimal: still violates without gene %d (%+v)", i, min[i])
		}
	}
}

// TestReproReplayRoundTrip saves the minimized repro to disk, loads it back,
// and replays it: the violation must reproduce with its recorded kind, and
// the reload must be byte-stable.
func TestReproReplayRoundTrip(t *testing.T) {
	base, space := hookBase(), hookSpace()
	f := exploreWithWorkers(t, 0).Found[0]
	min, _ := Minimize(base, space, f.Genes, f.Seed)
	res, err := Rerun(base, space, min, f.Seed)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	r := NewRepro(base, space, min, f.Seed, res)

	dir := t.TempDir()
	path, err := r.Save(dir)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	a, _ := r.Marshal()
	b, _ := loaded.Marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("repro not byte-stable across save/load:\n%s\n--- vs ---\n%s", a, b)
	}
	reproduced, detail, err := loaded.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reproduced {
		t.Fatalf("saved repro did not reproduce (verdict %q)", detail)
	}
}
