package explore

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
)

// Fingerprint reduces one run to the set of coverage keys it hit: every
// protocol counter the results expose (view changes, flush abandons, commit
// retries and handovers, rollbacks, vetoes, credit stalls, quorum losses,
// recoveries, uniform-delivery stalls, ...) paired with the counter's
// order-of-magnitude bucket. Two runs with the same fingerprint exercised
// the protocol the same way at the same intensity; a schedule whose run
// lights up a key no earlier run produced is interesting and enters the
// corpus. Keys are sorted, so fingerprints are deterministic.
func Fingerprint(res *core.Results) []string {
	feats := res.Features()
	keys := make([]string, 0, len(feats))
	for name, v := range feats {
		if v <= 0 {
			continue
		}
		keys = append(keys, fmt.Sprintf("%s/%d", name, bucket(v)))
	}
	sort.Strings(keys)
	return keys
}

// bucket maps a counter value to its log2 magnitude (1, 2, 4, 8, ... share
// increasingly wide buckets), the classic feature-map compression: exact
// counts over-split coverage, presence alone under-splits it.
func bucket(v int64) int { return bits.Len64(uint64(v)) }
