package explore

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// MinStats reports a minimization's cost and outcome.
type MinStats struct {
	// Probes is the number of model runs the shrinker spent.
	Probes int
	// From and To are the gene counts before and after.
	From, To int
}

// maxShrinkProbes bounds the field-shrinking phase; structural removal is
// bounded by ddmin itself.
const maxShrinkProbes = 200

// Minimize shrinks a violating schedule to a locally minimal repro: first
// delta-debugging removal of gene chunks, then per-gene parameter shrinking
// (drop recoveries, halve rates, narrow windows, snap onsets to a coarse
// grid), then a final pass that re-verifies single-gene removals until none
// passes — so removing any single fault from the result makes the violation
// disappear. Runs are serial and every probe uses the same seed, so the
// result is a pure function of the inputs.
func Minimize(base core.Config, space Space, genes []Gene, seed int64) ([]Gene, MinStats) {
	space = space.filled()
	stats := MinStats{From: len(genes)}
	probes := 0
	violates := func(cand []Gene) bool {
		probes++
		cfg := base
		cfg.Seed = seed
		cfg.Faults = space.ToFaults(cand)
		m, err := core.New(cfg)
		if err != nil {
			return false
		}
		res, err := m.Run()
		if err != nil {
			return false
		}
		bad, _ := Unsafe(res)
		return bad
	}

	cur := space.repair(genes)

	// Phase 1: ddmin-style chunk removal, halving the chunk size until
	// single-gene removals stop helping.
	for chunk := maxInt(1, len(cur)/2); chunk >= 1; {
		removed := false
		for i := 0; i+chunk <= len(cur); i++ {
			cand := make([]Gene, 0, len(cur)-chunk)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+chunk:]...)
			cand = space.repair(cand)
			if violates(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur) {
			chunk = maxInt(1, len(cur))
		}
	}

	// Phase 2: per-gene parameter shrinking. Each candidate simplification
	// is kept only if the violation survives it.
	phase1 := probes
	try := func(i int, edit func(*Gene)) bool {
		if probes-phase1 >= maxShrinkProbes {
			return false
		}
		cand := make([]Gene, len(cur))
		copy(cand, cur)
		edit(&cand[i])
		cand = space.repair(cand)
		if violates(cand) {
			cur = cand
			return true
		}
		return false
	}
	for i := 0; i < len(cur); i++ {
		g := cur[i]
		if g.Recover != 0 {
			try(i, func(x *Gene) { x.Recover = 0 })
		}
		if g.Until != 0 {
			// Narrow the window toward the onset.
			try(i, func(x *Gene) { x.Until = x.At + (x.Until-x.At)/2 })
		}
		for g.Rate > 0.02 && try(i, func(x *Gene) { x.Rate /= 2 }) {
			g = cur[i]
		}
		if len(g.Sites) > 1 {
			try(i, func(x *Gene) { x.Sites = x.Sites[:len(x.Sites)-1] })
		}
		// Snap the onset to a coarse grid: seconds first, then the 100ms
		// protocol period.
		for _, grid := range []sim.Time{sim.Second, 100 * sim.Millisecond} {
			try(i, func(x *Gene) { x.At = x.At / grid * grid })
		}
	}

	// Phase 3: local-minimality fixpoint. Field shrinking can re-enable a
	// removal, so retry single-gene drops until none violates.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]Gene, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			cand = space.repair(cand)
			if violates(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}

	stats.Probes = probes
	stats.To = len(cur)
	return cur, stats
}
