// Package recovery owns the site lifecycle and the database-level join
// protocol that turns a crash from a terminal event into a measurable
// outage. The lifecycle is an explicit state machine — Up → Crashed →
// Recovering → Up — with per-transition bookkeeping (downtime, recovery
// duration, transfer volume, post-rejoin commit lag), and the Manager drives
// a recovering site's rejoin end to end:
//
//  1. the site's fresh gcs stack requests admission (gcs join handshake);
//  2. once the group admits it and announces the catch-up sequence, the
//     Manager waits for a donor replica to reach that sequence;
//  3. the donor exports a snapshot — certifier state, commit log, and the
//     storage pages written since the joiner's crash horizon — which is
//     shipped at the configured bulk rate and written to the joiner's disk;
//  4. the replica installs it and replays the deliveries it buffered while
//     the transfer was in flight (the delta catch-up), completing the
//     transition back to Up.
//
// Safety across rejoin is checked at install time: the dead incarnation's
// commit log must be a prefix of the snapshot's, verified with the same
// internal/check comparator the off-line verdicts use.
package recovery

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/dbsm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// State is a site's lifecycle state.
type State int

// Lifecycle states.
const (
	// StateUp: the site participates fully in the protocol.
	StateUp State = iota
	// StateCrashed: the site is down and silent; its clients block.
	StateCrashed
	// StateRecovering: the site restarted and is rejoining — requesting
	// admission, transferring a snapshot, replaying the delta.
	StateRecovering
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateCrashed:
		return "crashed"
	case StateRecovering:
		return "recovering"
	default:
		return "unknown"
	}
}

// Lifecycle is one site's state machine with the availability bookkeeping
// the dependability evaluation reports.
type Lifecycle struct {
	site  dbsm.SiteID
	state State

	crashedAt sim.Time
	recoverAt sim.Time

	downtime     sim.Time // total time not Up (closed intervals only)
	recoveryTime sim.Time // the Recovering share of the downtime
	crashes      int
	recoveries   int

	transferBytes int64
	rejoinLag     uint64

	// Crash horizon, captured for the snapshot sizing and the rejoin
	// safety check.
	lastAppliedAtCrash uint64
	commitsAtCrash     []trace.CommitEntry
}

// NewLifecycle starts a site Up.
func NewLifecycle(site dbsm.SiteID) *Lifecycle {
	return &Lifecycle{site: site}
}

// State reports the current lifecycle state.
func (l *Lifecycle) State() State { return l.state }

// Crashes and Recoveries report transition counts.
func (l *Lifecycle) Crashes() int { return l.crashes }

// Recoveries reports completed rejoins.
func (l *Lifecycle) Recoveries() int { return l.recoveries }

// TransferBytes reports total snapshot bytes shipped to this site.
func (l *Lifecycle) TransferBytes() int64 { return l.transferBytes }

// RejoinLag reports the commit-sequence gap to the donor at the instant the
// last rejoin completed.
func (l *Lifecycle) RejoinLag() uint64 { return l.rejoinLag }

// LastAppliedAtCrash reports the applied horizon captured at the last crash.
func (l *Lifecycle) LastAppliedAtCrash() uint64 { return l.lastAppliedAtCrash }

// CommitsAtCrash reports the commit log captured at the last crash.
func (l *Lifecycle) CommitsAtCrash() []trace.CommitEntry { return l.commitsAtCrash }

// Downtime reports accumulated not-Up time; for a site still down, now
// closes the open interval.
func (l *Lifecycle) Downtime(now sim.Time) sim.Time {
	d := l.downtime
	if l.state != StateUp {
		d += now - l.crashedAt
	}
	return d
}

// RecoveryTime reports accumulated Recovering time; for a site still
// recovering, now closes the open interval.
func (l *Lifecycle) RecoveryTime(now sim.Time) sim.Time {
	d := l.recoveryTime
	if l.state == StateRecovering {
		d += now - l.recoverAt
	}
	return d
}

// Crash transitions Up → Crashed, capturing the crash horizon: the applied
// sequence (which bounds the pages a later snapshot must ship) and the
// commit log (against which the rejoin prefix condition is checked).
func (l *Lifecycle) Crash(now sim.Time, lastApplied uint64, commits []trace.CommitEntry) error {
	if l.state != StateUp {
		return fmt.Errorf("recovery: site %d crash in state %v", l.site, l.state)
	}
	l.state = StateCrashed
	l.crashedAt = now
	l.crashes++
	l.lastAppliedAtCrash = lastApplied
	l.commitsAtCrash = append([]trace.CommitEntry(nil), commits...)
	return nil
}

// BeginRecovery transitions Crashed → Recovering.
func (l *Lifecycle) BeginRecovery(now sim.Time) error {
	if l.state != StateCrashed {
		return fmt.Errorf("recovery: site %d recover in state %v", l.site, l.state)
	}
	l.state = StateRecovering
	l.recoverAt = now
	return nil
}

// Complete transitions Recovering → Up, closing the downtime interval and
// recording the transfer volume and the residual commit lag.
func (l *Lifecycle) Complete(now sim.Time, transferBytes int64, lag uint64) error {
	if l.state != StateRecovering {
		return fmt.Errorf("recovery: site %d complete in state %v", l.site, l.state)
	}
	l.state = StateUp
	l.downtime += now - l.crashedAt
	l.recoveryTime += now - l.recoverAt
	l.recoveries++
	l.transferBytes += transferBytes
	l.rejoinLag = lag
	return nil
}

// Snapshot is the state a donor exports for a joiner: everything below the
// catch-up sequence that the joiner can no longer obtain from the group's
// message streams.
type Snapshot struct {
	// Donor is the exporting site.
	Donor dbsm.SiteID
	// Global is the donor's last processed total-order sequence at export:
	// at least the joiner's catch-up sequence. Buffered deliveries at or
	// below it are covered by the snapshot and dropped at install.
	Global uint64
	// Cert is the certifier state (sequence, pruning boundary, retained
	// write-sets; the last-writer index is rebuilt from them at install).
	Cert *dbsm.CertState
	// Commits is the donor's commit log — the joiner's log restarts from
	// it, which is what makes the post-rejoin stream provably convergent.
	Commits []trace.CommitEntry
	// LastApplied seeds the joiner's applied-sequence horizon.
	LastApplied uint64
	// Pages is the count of storage pages shipped (written at the joiner).
	Pages int
	// Bytes is the modeled wire size of the whole snapshot.
	Bytes int64
}

// Donor is a live replica that can export snapshots.
type Donor interface {
	// LastGlobal reports the highest total-order sequence processed.
	LastGlobal() uint64
	// ExportSnapshot exports current state; sinceApplied is the joiner's
	// applied horizon at crash, bounding the page set when the certifier
	// history still covers it.
	ExportSnapshot(sinceApplied uint64) *Snapshot
	// ReadSectors models reading the exported pages off the donor's disk;
	// done fires when the last one is served.
	ReadSectors(n int, done func())
	// CertSeq reports the current commit sequence (for the lag metric).
	CertSeq() uint64
}

// Joiner is the recovering replica being caught up.
type Joiner interface {
	// InstallSnapshot installs the snapshot, replays buffered deliveries
	// above it, and leaves recovering mode; done fires afterwards.
	InstallSnapshot(s *Snapshot, done func())
	// CertSeq reports the commit sequence after installation.
	CertSeq() uint64
}

// ManagerConfig wires a Manager to one recovering site.
type ManagerConfig struct {
	K    *sim.Kernel
	Site dbsm.SiteID
	Life *Lifecycle
	// PickDonor returns a currently operational donor, or nil if none is
	// available right now (re-polled; the quorum rule guarantees one
	// eventually under generated fault loads).
	PickDonor func() Donor
	Joiner    Joiner
	// WriteSectors models the joiner-side disk install of the shipped
	// pages.
	WriteSectors func(n int, done func())
	// RateBps is the bulk-transfer bandwidth (default 6 MB/s — the
	// protocol stack's rate-control default, about half of Ethernet-100,
	// leaving headroom for the group's live traffic).
	RateBps float64
	// PollPeriod paces donor-readiness checks (default 25ms).
	PollPeriod sim.Time
	// OnComplete observes the finished rejoin.
	OnComplete func(transferBytes int64, lag uint64)
	// OnViolation observes a rejoin safety violation (the dead
	// incarnation's log was not a prefix of the snapshot's).
	OnViolation func(v *check.Violation)
}

func (c *ManagerConfig) fill() {
	if c.RateBps == 0 {
		c.RateBps = 6_000_000
	}
	if c.PollPeriod == 0 {
		c.PollPeriod = 25 * sim.Millisecond
	}
}

// Manager drives one site's rejoin after the gcs layer admits it.
type Manager struct {
	cfg     ManagerConfig
	joinSeq uint64
	started bool
	done    bool
}

// NewManager builds a rejoin driver.
func NewManager(cfg ManagerConfig) *Manager {
	cfg.fill()
	return &Manager{cfg: cfg}
}

// Done reports whether the rejoin has completed.
func (m *Manager) Done() bool { return m.done }

// OnJoined is the gcs stack's join upcall: the group admitted this site and
// announced the catch-up sequence. From here the Manager polls for a donor
// that has processed past it, then runs the transfer. The upcall can fire
// again with a higher sequence if the stack was readmitted while still
// unsynced; the donor-readiness poll always uses the latest value.
func (m *Manager) OnJoined(joinSeq uint64) {
	if m.done {
		return
	}
	if joinSeq > m.joinSeq {
		m.joinSeq = joinSeq
	}
	if m.started {
		return
	}
	m.started = true
	m.pollDonor()
}

// pollDonor waits until some operational replica has processed every
// delivery the snapshot must cover.
func (m *Manager) pollDonor() {
	if m.done {
		return
	}
	donor := m.cfg.PickDonor()
	if donor == nil || donor.LastGlobal() < m.joinSeq {
		m.cfg.K.Schedule(m.cfg.PollPeriod, func() { m.pollDonor() })
		return
	}
	m.transfer(donor)
}

// transfer exports the snapshot, reads its pages off the donor's disk,
// ships them at the bulk rate, writes them to the joiner's disk, and
// installs.
func (m *Manager) transfer(donor Donor) {
	snap := donor.ExportSnapshot(m.cfg.Life.LastAppliedAtCrash())
	// Rejoin safety: the dead incarnation's commits must be a prefix of
	// the donor's log, or the group diverged while this site was down.
	if old := m.cfg.Life.CommitsAtCrash(); len(old) > 0 {
		logs := []check.SiteLog{
			{Site: m.cfg.Site, Operational: false, Recovered: true, Entries: old},
			{Site: snap.Donor, Operational: true, Entries: snap.Commits},
		}
		if v := check.Logs(logs); v != nil && m.cfg.OnViolation != nil {
			m.cfg.OnViolation(v)
		}
	}
	wire := sim.FromSeconds(float64(snap.Bytes) / m.cfg.RateBps)
	donor.ReadSectors(snap.Pages, func() {
		m.cfg.K.Schedule(wire, func() {
			m.cfg.WriteSectors(snap.Pages, func() {
				m.cfg.Joiner.InstallSnapshot(snap, func() { m.complete(donor, snap) })
			})
		})
	})
}

// complete closes the lifecycle transition and reports the rejoin metrics.
func (m *Manager) complete(donor Donor, snap *Snapshot) {
	m.done = true
	var lag uint64
	if ds, js := donor.CertSeq(), m.cfg.Joiner.CertSeq(); ds > js {
		lag = ds - js
	}
	now := m.cfg.K.Now()
	_ = m.cfg.Life.Complete(now, snap.Bytes, lag)
	if m.cfg.OnComplete != nil {
		m.cfg.OnComplete(snap.Bytes, lag)
	}
}
