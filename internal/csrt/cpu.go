package csrt

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Work classes for CPU usage accounting, matching the paper's breakdown of
// simulated transaction-processing jobs versus real protocol jobs
// (Figures 6a and 7c).
const (
	ClassSim  = "sim"  // simulated jobs: transaction processing
	ClassReal = "real" // real jobs: protocol code under test
)

// Job is one unit of CPU demand.
//
// A simulated job carries a known duration Dur. A real job carries a
// function Fn whose cost is unknown beforehand: Fn is executed when the job
// is dispatched, the profiler measures its cost, and the CPU stays busy for
// exactly that long (Section 2.2, Figure 1a). Done, if set, fires when the
// CPU completes the job.
type Job struct {
	// Dur is the duration of a simulated job. Ignored when Fn is set.
	Dur sim.Time
	// Fn is the body of a real job. Its measured cost becomes the busy
	// period.
	Fn func()
	// Done fires when the CPU finishes the job.
	Done func()
	// Class labels the job for usage accounting; defaults to ClassSim
	// (ClassReal when Fn is set).
	Class string

	remaining sim.Time // for preempted simulated jobs
	pooled    bool     // created by SubmitSim*/SubmitReal: recycled on completion
}

func (j *Job) class() string {
	if j.Class != "" {
		return j.Class
	}
	if j.Fn != nil {
		return ClassReal
	}
	return ClassSim
}

// runReal is installed by the Runtime: it executes a real job body under the
// profiler and returns the measured cost.
type runReal func(fn func()) sim.Time

// CPU is one simulated processor: a busy flag plus queues of pending jobs
// (Section 2.2). Real jobs take priority over simulated jobs and preempt a
// running simulated job; the preempted job resumes afterwards with its
// remaining duration.
type CPU struct {
	id       int
	k        *sim.Kernel
	usage    *metrics.UsageMeter
	exec     runReal
	realQ    []*Job
	simQ     []*Job
	busy     bool
	cur      *Job
	curStart sim.Time
	curEnd   sim.Time
	curEvt   sim.EventID
	stopped  bool

	// onComplete is the single completion closure, bound once: completion
	// always applies to the running job, so dispatch schedules this
	// instead of allocating a fresh closure per job.
	onComplete func()
	free       []*Job // recycled pooled jobs
}

// NewCPU returns an idle CPU attached to the kernel. exec may be nil when
// the CPU will only ever run simulated jobs (e.g. a non-replicated server).
func NewCPU(id int, k *sim.Kernel, exec runReal) *CPU {
	c := &CPU{id: id, k: k, usage: metrics.NewUsageMeter(), exec: exec}
	c.onComplete = func() { c.complete(c.cur) }
	return c
}

// newJob takes a pooled Job (or allocates one) for the Submit* helpers.
func (c *CPU) newJob() *Job {
	if n := len(c.free); n > 0 {
		j := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return j
	}
	return &Job{pooled: true}
}

// Usage exposes the busy-time accounting for this CPU.
func (c *CPU) Usage() *metrics.UsageMeter { return c.usage }

// Busy reports whether the CPU is currently occupied.
func (c *CPU) Busy() bool { return c.busy }

// QueueLen reports the number of queued (not running) jobs.
func (c *CPU) QueueLen() int { return len(c.realQ) + len(c.simQ) }

// Stop makes the CPU drop all work, modeling a crashed host. Pending and
// future jobs are discarded and Done callbacks never fire.
func (c *CPU) Stop() {
	c.stopped = true
	c.realQ = nil
	c.simQ = nil
	if c.busy && c.curEvt != 0 {
		c.k.Cancel(c.curEvt)
	}
	c.busy = false
	c.cur = nil
}

// Restart brings a stopped CPU back with empty queues — the jobs dropped at
// crash time stay dropped; only new submissions execute.
func (c *CPU) Restart() { c.stopped = false }

// Submit enqueues a job for execution, dispatching immediately if possible.
func (c *CPU) Submit(j *Job) {
	if c.stopped {
		return
	}
	if j.Fn != nil {
		c.realQ = append(c.realQ, j)
		if c.busy && c.cur != nil && c.cur.Fn == nil {
			c.preemptCurrent()
		}
	} else {
		j.remaining = j.Dur
		c.simQ = append(c.simQ, j)
	}
	if !c.busy {
		c.dispatch()
	}
}

// preemptCurrent suspends the running simulated job so the CPU can be
// reassigned to a real job (paper Section 3.1: "As real jobs have a higher
// priority, simulated transaction executing can be preempted").
func (c *CPU) preemptCurrent() {
	j := c.cur
	now := c.k.Now()
	c.usage.AddBusy(j.class(), int64(now-c.curStart))
	j.remaining = c.curEnd - now
	c.k.Cancel(c.curEvt)
	// Resume at the front of the simulated queue (shift in place).
	c.simQ = append(c.simQ, nil)
	copy(c.simQ[1:], c.simQ)
	c.simQ[0] = j
	c.busy = false
	c.cur = nil
	c.curEvt = 0
}

// dispatch starts the next pending job, real jobs first.
func (c *CPU) dispatch() {
	if c.busy || c.stopped {
		return
	}
	var j *Job
	switch {
	case len(c.realQ) > 0:
		j = c.realQ[0]
		copy(c.realQ, c.realQ[1:])
		c.realQ = c.realQ[:len(c.realQ)-1]
	case len(c.simQ) > 0:
		j = c.simQ[0]
		copy(c.simQ, c.simQ[1:])
		c.simQ = c.simQ[:len(c.simQ)-1]
	default:
		return
	}
	c.busy = true
	c.cur = j

	var dur sim.Time
	if j.Fn != nil {
		if c.exec == nil {
			panic(fmt.Sprintf("csrt: CPU %d received a real job but has no executor", c.id))
		}
		// Execute the real code now; the measured cost becomes the
		// busy period (Figure 1a: δ2 = ∆1).
		dur = c.exec(j.Fn)
	} else {
		dur = j.remaining
	}
	if dur < 0 {
		dur = 0
	}
	c.curStart = c.k.Now()
	c.curEnd = c.curStart + dur
	c.curEvt = c.k.SchedulePri(dur, sim.PriorityHigh, c.onComplete)
}

func (c *CPU) complete(j *Job) {
	c.usage.AddBusy(j.class(), int64(c.k.Now()-c.curStart))
	c.busy = false
	c.cur = nil
	c.curEvt = 0
	done := j.Done
	if j.pooled {
		*j = Job{pooled: true}
		c.free = append(c.free, j)
	}
	if done != nil && !c.stopped {
		done()
	}
	c.dispatch()
}

// CPUSet is the collection of processors of one site. Simulated jobs are
// spread round-robin across all CPUs (taking any idle CPU first, as the
// paper's scheduler does); real protocol jobs all execute on CPU 0,
// preserving the single-threaded semantics of the protocol stack.
type CPUSet struct {
	cpus []*CPU
	next int
	// simFactor scales simulated-job durations (gray-failure degradation:
	// transaction processing crawls while the protocol's real jobs — and
	// with them heartbeats — stay timely, so the site is never suspected).
	simFactor float64
}

// NewCPUSet creates n CPUs attached to the kernel.
func NewCPUSet(n int, k *sim.Kernel, exec runReal) *CPUSet {
	if n < 1 {
		n = 1
	}
	s := &CPUSet{cpus: make([]*CPU, n)}
	for i := range s.cpus {
		var e runReal
		if i == 0 {
			e = exec
		}
		s.cpus[i] = NewCPU(i, k, e)
	}
	return s
}

// N reports the number of CPUs.
func (s *CPUSet) N() int { return len(s.cpus) }

// CPU returns processor i.
func (s *CPUSet) CPU(i int) *CPU { return s.cpus[i] }

// SubmitSim schedules a simulated job of the given duration on the next
// available CPU.
func (s *CPUSet) SubmitSim(dur sim.Time, done func()) {
	s.SubmitSimClass(ClassSim, dur, done)
}

// SubmitSimClass is SubmitSim with an explicit accounting class.
func (s *CPUSet) SubmitSimClass(class string, dur sim.Time, done func()) {
	if s.simFactor > 1 {
		dur = sim.Time(float64(dur) * s.simFactor)
	}
	cpu := s.pick()
	j := cpu.newJob()
	j.Dur, j.Done, j.Class = dur, done, class
	cpu.Submit(j)
}

// SetSimSlowdown scales every subsequent simulated job's duration by factor
// (gray failure: a degraded site processes transactions factor times slower
// while real protocol jobs run at full speed). factor <= 1 restores normal
// speed.
func (s *CPUSet) SetSimSlowdown(factor float64) { s.simFactor = factor }

// SubmitReal schedules a real job on CPU 0.
func (s *CPUSet) SubmitReal(fn func(), done func()) {
	cpu := s.cpus[0]
	j := cpu.newJob()
	j.Fn, j.Done = fn, done
	cpu.Submit(j)
}

// pick chooses an idle CPU if one exists, else round-robins.
func (s *CPUSet) pick() *CPU {
	for i := 0; i < len(s.cpus); i++ {
		idx := (s.next + i) % len(s.cpus)
		if !s.cpus[idx].Busy() && s.cpus[idx].QueueLen() == 0 {
			s.next = (idx + 1) % len(s.cpus)
			return s.cpus[idx]
		}
	}
	cpu := s.cpus[s.next]
	s.next = (s.next + 1) % len(s.cpus)
	return cpu
}

// Stop stops every CPU (crash).
func (s *CPUSet) Stop() {
	for _, c := range s.cpus {
		c.Stop()
	}
}

// Restart restarts every CPU (crash recovery).
func (s *CPUSet) Restart() {
	for _, c := range s.cpus {
		c.Restart()
	}
}

// BusyNS sums busy nanoseconds over all CPUs for one class ("" for all).
func (s *CPUSet) BusyNS(class string) int64 {
	var t int64
	for _, c := range s.cpus {
		if class == "" {
			t += c.usage.TotalBusy()
		} else {
			t += c.usage.Busy(class)
		}
	}
	return t
}

// Utilization reports aggregate CPU utilization over elapsed time.
func (s *CPUSet) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(s.BusyNS("")) / (float64(elapsed) * float64(len(s.cpus)))
}

// ClassUtilization reports per-class utilization over elapsed time.
func (s *CPUSet) ClassUtilization(class string, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(s.BusyNS(class)) / (float64(elapsed) * float64(len(s.cpus)))
}
