// Package csrt implements the centralized simulation runtime (CSRT) of the
// paper's Section 2: real protocol code executes under control of the
// discrete-event kernel, its CPU cost is measured by a profiling timer and
// folded back into the simulated time line, and simulated CPUs arbitrate
// between simulated jobs (transaction processing) and real jobs (protocol
// work), with real jobs taking priority.
package csrt

import (
	"time"

	"repro/internal/sim"
)

// Profiler measures the CPU cost of one real job. The paper profiles real
// code with virtualized hardware cycle counters; this reproduction provides
// two implementations:
//
//   - ModelProfiler: a deterministic cost model in which real code declares
//     its own CPU consumption via Charge. Default, fully reproducible.
//   - WallProfiler: measures actual wall-clock execution of the Go code via
//     the monotonic clock, scalable to emulate other CPU speeds, like the
//     paper's perfctr-based timer. Non-deterministic across runs.
//
// Pause/Resume implement the paper's clock-stopping rule: when real code
// re-enters the simulation runtime (to schedule an event, read the clock, or
// send a message) the profiling timer is stopped so runtime overhead never
// pollutes the measured cost (Section 2.2, Figure 1b).
type Profiler interface {
	// Begin starts measuring a new job.
	Begin()
	// Charge adds explicit model cost to the running job.
	Charge(c sim.Time)
	// Pause stops the timer upon re-entering the runtime from real code.
	Pause()
	// Resume restarts the timer upon returning to real code.
	Resume()
	// Elapsed reports the cost accumulated by the running job so far.
	Elapsed() sim.Time
	// End finishes the job and returns its total cost.
	End() sim.Time
}

// ModelProfiler is the deterministic Profiler: cost accrues only via Charge.
// The zero value is ready to use.
type ModelProfiler struct {
	acc sim.Time
}

var _ Profiler = (*ModelProfiler)(nil)

// Begin implements Profiler.
func (p *ModelProfiler) Begin() { p.acc = 0 }

// Charge implements Profiler.
func (p *ModelProfiler) Charge(c sim.Time) {
	if c > 0 {
		p.acc += c
	}
}

// Pause implements Profiler (no-op: model cost is immune to runtime
// overhead by construction).
func (p *ModelProfiler) Pause() {}

// Resume implements Profiler.
func (p *ModelProfiler) Resume() {}

// Elapsed implements Profiler.
func (p *ModelProfiler) Elapsed() sim.Time { return p.acc }

// End implements Profiler.
func (p *ModelProfiler) End() sim.Time {
	c := p.acc
	p.acc = 0
	return c
}

// WallProfiler measures real execution with the Go monotonic clock. Scale
// multiplies measured durations, emulating a simulated processor slower
// (scale > 1) or faster (scale < 1) than the host, like the paper's scaled
// cycle counts.
type WallProfiler struct {
	// Scale multiplies measured durations; 0 means 1.0.
	Scale float64

	started time.Time
	running bool
	acc     time.Duration
}

var _ Profiler = (*WallProfiler)(nil)

func (p *WallProfiler) scale() float64 {
	if p.Scale == 0 {
		return 1
	}
	return p.Scale
}

// Begin implements Profiler.
func (p *WallProfiler) Begin() {
	p.acc = 0
	//lint:simdeterminism-ok WallProfiler measures real host CPU, not simulation time
	p.started = time.Now()
	p.running = true
}

// Charge implements Profiler (no-op: the wall clock already measures the
// real execution).
func (p *WallProfiler) Charge(sim.Time) {}

// Pause implements Profiler.
func (p *WallProfiler) Pause() {
	if p.running {
		//lint:simdeterminism-ok WallProfiler measures real host CPU, not simulation time
		p.acc += time.Since(p.started)
		p.running = false
	}
}

// Resume implements Profiler.
func (p *WallProfiler) Resume() {
	if !p.running {
		//lint:simdeterminism-ok WallProfiler measures real host CPU, not simulation time
		p.started = time.Now()
		p.running = true
	}
}

// Elapsed implements Profiler.
func (p *WallProfiler) Elapsed() sim.Time {
	d := p.acc
	if p.running {
		//lint:simdeterminism-ok WallProfiler measures real host CPU, not simulation time
		d += time.Since(p.started)
	}
	return sim.Time(float64(d) * p.scale())
}

// End implements Profiler.
func (p *WallProfiler) End() sim.Time {
	p.Pause()
	d := p.acc
	p.acc = 0
	return sim.Time(float64(d) * p.scale())
}
