package csrt

import (
	"testing"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

func TestCPUSetRoutesRealJobsToCPU0(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 3)
	set := rt.CPUs()
	for i := 0; i < 5; i++ {
		set.SubmitReal(func() { rt.Charge(sim.Millisecond) }, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := set.CPU(0).Usage().Busy(ClassReal); got != int64(5*sim.Millisecond) {
		t.Fatalf("cpu0 real busy = %d", got)
	}
	for i := 1; i < 3; i++ {
		if set.CPU(i).Usage().Busy(ClassReal) != 0 {
			t.Fatalf("cpu%d ran real work", i)
		}
	}
}

func TestCPUMultiplePreemptions(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	cpu := rt.CPUs().CPU(0)
	var simDone sim.Time
	cpu.Submit(&Job{Dur: 10 * sim.Millisecond, Done: func() { simDone = k.Now() }})
	// Two real jobs preempt at 2ms and 5ms, each costing 1ms.
	for _, at := range []sim.Time{2 * sim.Millisecond, 5 * sim.Millisecond} {
		k.ScheduleAt(at, func() {
			cpu.Submit(&Job{Fn: func() { rt.Charge(sim.Millisecond) }})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 10ms of work + 2ms of preemption = 12ms.
	if simDone != 12*sim.Millisecond {
		t.Fatalf("sim job done at %v, want 12ms", simDone)
	}
	if got := cpu.Usage().Busy(ClassSim); got != int64(10*sim.Millisecond) {
		t.Fatalf("sim busy = %d, want 10ms", got)
	}
}

func TestCPUSetUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel()
	set := NewCPUSet(2, k, nil)
	set.SubmitSim(10*sim.Millisecond, nil)
	set.SubmitSim(10*sim.Millisecond, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both CPUs busy 10ms of a 10ms window: 100%.
	if u := set.Utilization(10 * sim.Millisecond); u != 100 {
		t.Fatalf("utilization = %v", u)
	}
	if u := set.Utilization(20 * sim.Millisecond); u != 50 {
		t.Fatalf("utilization = %v", u)
	}
	if set.Utilization(0) != 0 {
		t.Fatal("zero-window utilization must be 0")
	}
	if set.N() != 2 {
		t.Fatal("N wrong")
	}
}

func TestRuntimeMulticastChargesOnce(t *testing.T) {
	k := sim.NewKernel()
	port := &fakePort{}
	cost := CostParams{SendFixed: 100 * sim.Microsecond}
	rt := NewRuntime(k, 1, &ModelProfiler{}, port, cost, sim.NewRNG(1))
	rt.Bind(NewCPUSet(1, k, nil))
	rt.CPUs().SubmitReal(func() {
		if err := rt.Multicast(1, make([]byte, 10)); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(port.sends) != 1 || !port.sends[0].multi {
		t.Fatalf("sends = %+v", port.sends)
	}
	// One multicast = one send cost, regardless of group size.
	if got := rt.CPUs().BusyNS(ClassReal); got != int64(100*sim.Microsecond) {
		t.Fatalf("busy = %d, want one send cost", got)
	}
}

func TestRuntimeDeliverPreservesFIFO(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	var got []byte
	rt.SetReceiver(func(_ runtimeapi.NodeID, data []byte) {
		got = append(got, data[0])
		rt.Charge(5 * sim.Millisecond) // slow handler: later deliveries queue
	})
	for i := byte(0); i < 5; i++ {
		payload := []byte{i}
		k.ScheduleAt(sim.Time(i)*sim.Millisecond, func() { rt.Deliver(2, payload) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
}

func TestCostParams(t *testing.T) {
	c := CostParams{SendFixed: sim.Microsecond, SendPerByte: 2, RecvFixed: 3 * sim.Microsecond, RecvPerByte: 1}
	if c.SendCost(100) != sim.Microsecond+200*sim.Nanosecond {
		t.Fatalf("send cost = %v", c.SendCost(100))
	}
	if c.RecvCost(100) != 3*sim.Microsecond+100*sim.Nanosecond {
		t.Fatalf("recv cost = %v", c.RecvCost(100))
	}
	d := DefaultCostParams()
	if d.SendFixed <= 0 || d.RecvFixed <= 0 {
		t.Fatal("defaults empty")
	}
}
