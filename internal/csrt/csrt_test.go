package csrt

import (
	"testing"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// fakePort records injected packets with their delays.
type fakePort struct {
	mtu   int
	sends []portSend
}

type portSend struct {
	dst   runtimeapi.NodeID
	group runtimeapi.Group
	multi bool
	size  int
	delay sim.Time
}

func (p *fakePort) Send(dst runtimeapi.NodeID, data []byte, delay sim.Time) error {
	p.sends = append(p.sends, portSend{dst: dst, size: len(data), delay: delay})
	return nil
}

func (p *fakePort) Multicast(g runtimeapi.Group, data []byte, delay sim.Time) error {
	p.sends = append(p.sends, portSend{group: g, multi: true, size: len(data), delay: delay})
	return nil
}

func (p *fakePort) MTU() int {
	if p.mtu == 0 {
		return 1400
	}
	return p.mtu
}

func newTestRuntime(k *sim.Kernel, ncpu int) (*Runtime, *fakePort) {
	port := &fakePort{}
	rt := NewRuntime(k, 1, &ModelProfiler{}, port, CostParams{}, sim.NewRNG(1))
	rt.Bind(NewCPUSet(ncpu, k, nil))
	return rt, port
}

func TestCPUSimJobsRunSequentially(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(0, k, nil)
	var ends []sim.Time
	cpu.Submit(&Job{Dur: 10 * sim.Millisecond, Done: func() { ends = append(ends, k.Now()) }})
	cpu.Submit(&Job{Dur: 5 * sim.Millisecond, Done: func() { ends = append(ends, k.Now()) }})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 || ends[0] != 10*sim.Millisecond || ends[1] != 15*sim.Millisecond {
		t.Fatalf("ends = %v, want [10ms 15ms]", ends)
	}
	if got := cpu.Usage().Busy(ClassSim); got != int64(15*sim.Millisecond) {
		t.Fatalf("busy = %d, want 15ms", got)
	}
}

func TestCPURealJobPreemptsSimJob(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	cpu := rt.CPUs().CPU(0)

	var simDone, realDone sim.Time
	cpu.Submit(&Job{Dur: 10 * sim.Millisecond, Done: func() { simDone = k.Now() }})
	// At t=4ms a real job costing 2ms arrives: it should preempt the
	// simulated job, which then resumes and finishes at 10+2 = 12ms.
	k.Schedule(4*sim.Millisecond, func() {
		cpu.Submit(&Job{
			Fn:   func() { rt.Charge(2 * sim.Millisecond) },
			Done: func() { realDone = k.Now() },
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if realDone != 6*sim.Millisecond {
		t.Fatalf("real job done at %v, want 6ms", realDone)
	}
	if simDone != 12*sim.Millisecond {
		t.Fatalf("sim job done at %v, want 12ms", simDone)
	}
	if got := cpu.Usage().Busy(ClassReal); got != int64(2*sim.Millisecond) {
		t.Fatalf("real busy = %d, want 2ms", got)
	}
	if got := cpu.Usage().Busy(ClassSim); got != int64(10*sim.Millisecond) {
		t.Fatalf("sim busy = %d, want 10ms", got)
	}
}

func TestCPUStopDropsWork(t *testing.T) {
	k := sim.NewKernel()
	cpu := NewCPU(0, k, nil)
	ran := false
	cpu.Submit(&Job{Dur: 10 * sim.Millisecond, Done: func() { ran = true }})
	k.Schedule(sim.Millisecond, cpu.Stop)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("job completed after Stop")
	}
	cpu.Submit(&Job{Dur: sim.Millisecond, Done: func() { ran = true }})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("job accepted after Stop")
	}
}

func TestCPUSetSpreadsSimJobsAcrossCPUs(t *testing.T) {
	k := sim.NewKernel()
	set := NewCPUSet(3, k, nil)
	done := 0
	for i := 0; i < 3; i++ {
		set.SubmitSim(10*sim.Millisecond, func() { done++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// All three should finish at 10ms (parallel), not serialized.
	if k.Now() != 10*sim.Millisecond {
		t.Fatalf("finished at %v, want 10ms (parallel execution)", k.Now())
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
}

func TestRuntimeRealJobCostOccupiesCPU(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	var first, second sim.Time
	rt.CPUs().SubmitReal(func() { rt.Charge(3 * sim.Millisecond) }, func() { first = k.Now() })
	rt.CPUs().SubmitReal(func() { rt.Charge(1 * sim.Millisecond) }, func() { second = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 3*sim.Millisecond || second != 4*sim.Millisecond {
		t.Fatalf("completions at %v, %v; want 3ms, 4ms", first, second)
	}
}

func TestRuntimeNowAdvancesWithinRealJob(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	var before, after sim.Time
	rt.CPUs().SubmitReal(func() {
		before = rt.Now()
		rt.Charge(5 * sim.Millisecond)
		after = rt.Now()
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("before = %v, want 0", before)
	}
	if after != 5*sim.Millisecond {
		t.Fatalf("after = %v, want 5ms", after)
	}
}

// The paper's Figure 1(b): an event scheduled with delay δq from real code
// that has consumed ∆1 so far is enqueued at ∆1+δq, but the job itself only
// executes once the CPU frees from the current real job (∆1+∆2).
func TestRuntimeScheduleFromRealCodeOffsetsByElapsed(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	var fired sim.Time
	rt.CPUs().SubmitReal(func() {
		rt.Charge(10 * sim.Millisecond) // ∆1
		rt.Schedule(2*sim.Millisecond, func() { fired = k.Now() })
		rt.Charge(5 * sim.Millisecond) // ∆2, after scheduling
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Enqueued at ∆1+δq = 12ms; CPU busy with the enclosing job until
	// ∆1+∆2 = 15ms, so the callback runs at 15ms.
	if fired != 15*sim.Millisecond {
		t.Fatalf("timer fired at %v, want 15ms (after ∆1+∆2)", fired)
	}
}

// When the enclosing job ends before the scheduled instant, the callback
// runs exactly at ∆1+δq.
func TestRuntimeScheduleFiresAtOffsetWhenCPUIdle(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	var fired sim.Time
	rt.CPUs().SubmitReal(func() {
		rt.Charge(10 * sim.Millisecond) // ∆1
		rt.Schedule(4*sim.Millisecond, func() { fired = k.Now() })
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 14*sim.Millisecond {
		t.Fatalf("timer fired at %v, want 14ms (∆1 + δq)", fired)
	}
}

func TestRuntimeScheduleDelayShorterThanElapsedNotInPast(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	fired := sim.Time(-1)
	rt.CPUs().SubmitReal(func() {
		rt.Charge(10 * sim.Millisecond)
		// δq < ∆1: would land in the past without the correction.
		rt.Schedule(sim.Millisecond, func() { fired = k.Now() })
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 11*sim.Millisecond {
		t.Fatalf("timer fired at %v, want 11ms", fired)
	}
}

func TestRuntimeSendDelayIncludesElapsedAndOverhead(t *testing.T) {
	k := sim.NewKernel()
	port := &fakePort{}
	cost := CostParams{SendFixed: 100 * sim.Microsecond, SendPerByte: 10}
	rt := NewRuntime(k, 1, &ModelProfiler{}, port, cost, sim.NewRNG(1))
	rt.Bind(NewCPUSet(1, k, nil))
	rt.CPUs().SubmitReal(func() {
		rt.Charge(1 * sim.Millisecond)
		if err := rt.Send(2, make([]byte, 100)); err != nil {
			t.Errorf("Send: %v", err)
		}
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(port.sends) != 1 {
		t.Fatalf("sends = %d", len(port.sends))
	}
	// delay = 1ms charge + 100us fixed + 100B*10ns = 1.101ms
	want := 1*sim.Millisecond + 100*sim.Microsecond + 1000*sim.Nanosecond
	if port.sends[0].delay != want {
		t.Fatalf("delay = %v, want %v", port.sends[0].delay, want)
	}
	// CPU stays busy for the same total.
	if got := rt.CPUs().BusyNS(ClassReal); got != int64(want) {
		t.Fatalf("busy = %d, want %d", got, int64(want))
	}
}

func TestRuntimeSendRejectsOversizeAndDown(t *testing.T) {
	k := sim.NewKernel()
	rt, port := newTestRuntime(k, 1)
	port.mtu = 64
	if err := rt.Send(2, make([]byte, 65)); err != runtimeapi.ErrTooBig {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	rt.Crash()
	if err := rt.Send(2, make([]byte, 10)); err != runtimeapi.ErrDown {
		t.Fatalf("err = %v, want ErrDown", err)
	}
}

func TestRuntimeDeliverRunsReceiverWithRecvCost(t *testing.T) {
	k := sim.NewKernel()
	port := &fakePort{}
	cost := CostParams{RecvFixed: 50 * sim.Microsecond, RecvPerByte: 10}
	rt := NewRuntime(k, 1, &ModelProfiler{}, port, cost, sim.NewRNG(1))
	rt.Bind(NewCPUSet(1, k, nil))
	var gotSrc runtimeapi.NodeID
	var gotLen int
	rt.SetReceiver(func(src runtimeapi.NodeID, data []byte) {
		gotSrc, gotLen = src, len(data)
		rt.Charge(200 * sim.Microsecond)
	})
	k.Schedule(sim.Millisecond, func() { rt.Deliver(7, make([]byte, 100)) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotSrc != 7 || gotLen != 100 {
		t.Fatalf("receiver got src=%d len=%d", gotSrc, gotLen)
	}
	// busy = recv cost (50us + 1us) + handler 200us
	want := int64(50*sim.Microsecond + 1*sim.Microsecond + 200*sim.Microsecond)
	if got := rt.CPUs().BusyNS(ClassReal); got != want {
		t.Fatalf("busy = %d, want %d", got, want)
	}
}

func TestRuntimeCrashDropsDeliveriesAndTimers(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	fired := false
	received := false
	rt.SetReceiver(func(runtimeapi.NodeID, []byte) { received = true })
	rt.Schedule(10*sim.Millisecond, func() { fired = true })
	k.Schedule(5*sim.Millisecond, rt.Crash)
	k.Schedule(6*sim.Millisecond, func() { rt.Deliver(2, []byte{1}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired || received {
		t.Fatalf("fired=%v received=%v after crash, want false", fired, received)
	}
}

func TestRuntimeTimerCancel(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	fired := false
	tm := rt.Schedule(10*sim.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRuntimeClockDrift(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	rt.SetClockDrift(1.0) // local clock runs at half speed
	var fired sim.Time
	rt.Schedule(10*sim.Millisecond, func() { fired = k.Now() })
	var busy sim.Time
	rt.CPUs().SubmitReal(func() { rt.Charge(4 * sim.Millisecond) }, func() { busy = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Delays are scaled up: 10ms -> 20ms.
	if fired != 20*sim.Millisecond {
		t.Fatalf("drifted timer at %v, want 20ms", fired)
	}
	// Measured durations scaled down: 4ms -> 2ms.
	if busy != 2*sim.Millisecond {
		t.Fatalf("drifted job completed at %v, want 2ms", busy)
	}
}

func TestRuntimeSchedulingLatencyFault(t *testing.T) {
	k := sim.NewKernel()
	rt, _ := newTestRuntime(k, 1)
	rt.SetSchedulingLatency(func(*sim.RNG) sim.Time { return 7 * sim.Millisecond }, sim.NewRNG(1))
	var fired sim.Time
	rt.Schedule(3*sim.Millisecond, func() { fired = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10*sim.Millisecond {
		t.Fatalf("delayed timer at %v, want 10ms", fired)
	}
	// Zero-delay events (process not suspended) are not delayed.
	var immediate sim.Time = -1
	rt.Schedule(0, func() { immediate = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if immediate != 10*sim.Millisecond {
		t.Fatalf("immediate event at %v, want 10ms (no added latency)", immediate)
	}
}

func TestWallProfilerMeasuresAndScales(t *testing.T) {
	p := &WallProfiler{Scale: 2}
	p.Begin()
	// Burn a little CPU.
	x := 0
	for i := 0; i < 100000; i++ {
		x += i
	}
	_ = x
	c := p.End()
	if c <= 0 {
		t.Fatal("wall profiler measured nothing")
	}
	p2 := &WallProfiler{}
	p2.Begin()
	p2.Pause()
	for i := 0; i < 100000; i++ {
		x += i
	}
	p2.Resume()
	paused := p2.End()
	// Hard to assert tight bounds; just check pause kept it small relative
	// to continuous measurement of the same loop run 100x longer.
	if paused < 0 {
		t.Fatal("negative measurement")
	}
}

func TestModelProfilerIgnoresNegativeCharge(t *testing.T) {
	p := &ModelProfiler{}
	p.Begin()
	p.Charge(-5)
	p.Charge(3)
	if p.End() != 3 {
		t.Fatal("negative charges must be ignored")
	}
}
