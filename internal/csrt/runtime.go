package csrt

import (
	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// Port is the network attachment point the Runtime injects packets into.
// It is implemented by the simulated network (internal/simnet adapter).
// delay offsets the injection from the current kernel time, carrying the
// paper's δ′q = ∆1 + δq correction: effects of real code appear only after
// the CPU time the code has consumed so far.
type Port interface {
	Send(dst runtimeapi.NodeID, data []byte, delay sim.Time) error
	Multicast(g runtimeapi.Group, data []byte, delay sim.Time) error
	MTU() int
}

// CostParams are the four configuration parameters of the centralized
// simulation runtime (Section 4.1): fixed and per-byte CPU overhead for
// sending and receiving a message. Per-byte values are nanoseconds per byte.
type CostParams struct {
	SendFixed   sim.Time
	SendPerByte float64
	RecvFixed   sim.Time
	RecvPerByte float64
}

// SendCost computes the CPU cost of sending an n-byte message.
func (c CostParams) SendCost(n int) sim.Time {
	return c.SendFixed + sim.Time(c.SendPerByte*float64(n))
}

// RecvCost computes the CPU cost of receiving an n-byte message.
func (c CostParams) RecvCost(n int) sim.Time {
	return c.RecvFixed + sim.Time(c.RecvPerByte*float64(n))
}

// DefaultCostParams is the calibration obtained by the paper's network
// flooding benchmark on the PIII-1GHz/Ethernet-100 test system. The values
// reproduce Figure 3(a): a single sender writing 4 KB datagrams achieves
// ~550 Mbit/s of socket output.
func DefaultCostParams() CostParams {
	return CostParams{
		SendFixed:   10 * sim.Microsecond,
		SendPerByte: 12,
		RecvFixed:   8 * sim.Microsecond,
		RecvPerByte: 10,
	}
}

// Runtime is the simulation-side implementation of runtimeapi.Runtime: the
// bridge that lets real protocol code run under the discrete-event kernel
// (Section 2.3). One Runtime exists per simulated node.
type Runtime struct {
	k    *sim.Kernel
	node runtimeapi.NodeID
	cpus *CPUSet
	prof Profiler
	port Port
	cost CostParams
	rng  *sim.RNG
	recv runtimeapi.Receiver

	inJob    bool
	jobStart sim.Time
	extra    sim.Time // send/recv stack overhead accrued by the current job

	down bool

	// Fault injection (Section 5.3).
	driftRate float64                 // clock drift rate r
	schedLat  func(*sim.RNG) sim.Time // extra latency for future events
	latRNG    *sim.RNG

	freeDlv []*delivery // recycled reception thunks
	freeJob []*oneShot  // recycled fire-and-forget job thunks
}

// oneShot is a pooled fire-and-forget scheduled job (StartJob): no Timer
// handle exists, so the struct can be recycled the moment it fires.
type oneShot struct {
	r    *Runtime
	fn   func()
	fire func()
}

func (o *oneShot) run() {
	r, fn := o.r, o.fn
	o.fn = nil
	r.freeJob = append(r.freeJob, o)
	if r.down {
		return
	}
	r.cpus.SubmitReal(fn, nil)
}

// delivery is one pooled pending reception job: its closure is bound once at
// allocation, so handing a datagram to the CPU allocates nothing in steady
// state.
type delivery struct {
	r    *Runtime
	src  runtimeapi.NodeID
	data []byte
	fire func()
}

func (d *delivery) run() {
	r, src, data := d.r, d.src, d.data
	d.data = nil
	r.freeDlv = append(r.freeDlv, d)
	r.extra += r.cost.RecvCost(len(data))
	if r.recv != nil {
		r.recv(src, data)
	}
}

var _ runtimeapi.Runtime = (*Runtime)(nil)

// NewRuntime creates the runtime for one node. cpus must have been created
// with NewCPUSetFor(r) or have its executor wired via Bind.
func NewRuntime(k *sim.Kernel, node runtimeapi.NodeID, prof Profiler, port Port, cost CostParams, rng *sim.RNG) *Runtime {
	return &Runtime{k: k, node: node, prof: prof, port: port, cost: cost, rng: rng}
}

// Bind attaches the CPU set that executes this node's jobs and installs this
// runtime as its real-job executor. It must be called exactly once before
// the simulation starts.
func (r *Runtime) Bind(cpus *CPUSet) {
	r.cpus = cpus
	for _, c := range cpus.cpus {
		if c.exec == nil && c.id == 0 {
			c.exec = r.execReal
		}
	}
	cpus.cpus[0].exec = r.execReal
}

// CPUs returns the bound CPU set.
func (r *Runtime) CPUs() *CPUSet { return r.cpus }

// SetClockDrift installs the clock-drift fault: scheduled delays are scaled
// up by (1+rate) and measured durations scaled down by 1/(1+rate).
func (r *Runtime) SetClockDrift(rate float64) { r.driftRate = rate }

// SetSchedulingLatency installs the scheduling-latency fault: gen produces a
// random extra delay added to every event scheduled in the future.
func (r *Runtime) SetSchedulingLatency(gen func(*sim.RNG) sim.Time, rng *sim.RNG) {
	r.schedLat = gen
	r.latRNG = rng
}

// Crash stops the node at the current instant: all queued and future work is
// dropped and the node neither sends nor receives from now on.
func (r *Runtime) Crash() {
	r.down = true
	if r.cpus != nil {
		r.cpus.Stop()
	}
}

// Down reports whether the node has crashed.
func (r *Runtime) Down() bool { return r.down }

// Restart brings a crashed node back up: the CPUs resume dispatching and the
// node sends and receives again. Work dropped at crash time stays dropped —
// timers armed by the dead incarnation that fire after the restart run their
// callbacks, which must fence themselves (protocol stacks do, via their
// stopped flag). The receiver installed by the previous incarnation remains
// until the new protocol stack replaces it with SetReceiver.
func (r *Runtime) Restart() {
	if !r.down {
		return
	}
	r.down = false
	if r.cpus != nil {
		r.cpus.Restart()
	}
}

func (r *Runtime) driftFactor() float64 { return 1 + r.driftRate }

// scaleMeasured converts a profiler-measured duration into the simulated
// time line, applying clock drift.
func (r *Runtime) scaleMeasured(d sim.Time) sim.Time {
	if r.driftRate == 0 {
		return d
	}
	return sim.Time(float64(d) / r.driftFactor())
}

// execReal runs a real job body under the profiler and returns the total
// busy duration to charge to the CPU: measured code cost plus the stack
// overhead accrued by sends/receives during the job.
func (r *Runtime) execReal(fn func()) sim.Time {
	r.inJob = true
	r.jobStart = r.k.Now()
	r.extra = 0
	r.prof.Begin()
	fn()
	total := r.scaleMeasured(r.prof.End()) + r.extra
	r.inJob = false
	r.extra = 0
	return total
}

// elapsedInJob reports the simulated CPU time consumed by the current job so
// far: the δ used to offset effects of real code (Figure 1b).
func (r *Runtime) elapsedInJob() sim.Time {
	if !r.inJob {
		return 0
	}
	return r.scaleMeasured(r.prof.Elapsed()) + r.extra
}

// Self implements runtimeapi.Runtime.
func (r *Runtime) Self() runtimeapi.NodeID { return r.node }

// Now implements runtimeapi.Runtime: within a real job it reports kernel
// time plus the job's elapsed cost, so real code observes time advancing as
// it computes.
func (r *Runtime) Now() sim.Time {
	return r.k.Now() + r.elapsedInJob()
}

// Rand implements runtimeapi.Runtime.
func (r *Runtime) Rand() *sim.RNG { return r.rng }

// Charge implements runtimeapi.Runtime: real code declares model cost.
// Charges outside a job context (setup code) are discarded — there is no
// CPU occupancy to account them to.
func (r *Runtime) Charge(cost sim.Time) {
	if r.inJob {
		r.prof.Charge(cost)
	}
}

// MTU implements runtimeapi.Runtime.
func (r *Runtime) MTU() int { return r.port.MTU() }

// SetReceiver implements runtimeapi.Runtime.
func (r *Runtime) SetReceiver(recv runtimeapi.Receiver) { r.recv = recv }

type simTimer struct {
	evt       sim.EventID
	k         *sim.Kernel
	cancelled bool
	fired     bool
}

func (t *simTimer) Cancel() bool {
	if t.cancelled || t.fired {
		return false
	}
	t.cancelled = true
	t.k.Cancel(t.evt)
	return true
}

// Schedule implements runtimeapi.Runtime. The callback executes as a real
// job on the node's CPU. When called from within real code, the event is
// offset by the job's elapsed cost so it cannot land in the simulation past
// and never includes runtime overhead in the measurement (Section 2.2).
func (r *Runtime) Schedule(d sim.Time, fn func()) runtimeapi.Timer {
	r.prof.Pause()
	defer r.prof.Resume()
	if d < 0 {
		d = 0
	}
	if r.driftRate != 0 {
		d = sim.Time(float64(d) * r.driftFactor())
	}
	if d > 0 && r.schedLat != nil {
		d += r.schedLat(r.latRNG)
	}
	delay := r.elapsedInJob() + d
	t := &simTimer{k: r.k}
	t.evt = r.k.Schedule(delay, func() {
		t.fired = true
		if t.cancelled || r.down {
			return
		}
		r.cpus.SubmitReal(fn, nil)
	})
	return t
}

// StartJob implements runtimeapi.Runtime: Schedule without a cancellation
// handle. The scheduled thunk is pooled, so hot one-shot jobs allocate
// nothing here (the kernel event is pooled too). Drift and scheduling-latency
// faults apply exactly as in Schedule.
func (r *Runtime) StartJob(d sim.Time, fn func()) {
	r.prof.Pause()
	defer r.prof.Resume()
	if d < 0 {
		d = 0
	}
	if r.driftRate != 0 {
		d = sim.Time(float64(d) * r.driftFactor())
	}
	if d > 0 && r.schedLat != nil {
		d += r.schedLat(r.latRNG)
	}
	var o *oneShot
	if n := len(r.freeJob); n > 0 {
		o = r.freeJob[n-1]
		r.freeJob[n-1] = nil
		r.freeJob = r.freeJob[:n-1]
	} else {
		o = &oneShot{r: r}
		o.fire = o.run
	}
	o.fn = fn
	r.k.Schedule(r.elapsedInJob()+d, o.fire)
}

// Send implements runtimeapi.Runtime: charges the configured send overhead
// to the CPU and injects the datagram at now + elapsed job cost.
func (r *Runtime) Send(dst runtimeapi.NodeID, data []byte) error {
	if r.down {
		return runtimeapi.ErrDown
	}
	if len(data) > r.port.MTU() {
		return runtimeapi.ErrTooBig
	}
	r.prof.Pause()
	defer r.prof.Resume()
	r.extra += r.cost.SendCost(len(data))
	return r.port.Send(dst, data, r.elapsedInJob())
}

// Multicast implements runtimeapi.Runtime. A LAN multicast is one wire
// transmission, so the send overhead is charged once.
func (r *Runtime) Multicast(g runtimeapi.Group, data []byte) error {
	if r.down {
		return runtimeapi.ErrDown
	}
	if len(data) > r.port.MTU() {
		return runtimeapi.ErrTooBig
	}
	r.prof.Pause()
	defer r.prof.Resume()
	r.extra += r.cost.SendCost(len(data))
	return r.port.Multicast(g, data, r.elapsedInJob())
}

// Deliver is called by the network adapter when a datagram arrives for this
// node. Reception is a real job: the CPU is charged the receive overhead and
// then the protocol's receiver upcall runs under the profiler.
func (r *Runtime) Deliver(src runtimeapi.NodeID, data []byte) {
	if r.down {
		return
	}
	var d *delivery
	if n := len(r.freeDlv); n > 0 {
		d = r.freeDlv[n-1]
		r.freeDlv[n-1] = nil
		r.freeDlv = r.freeDlv[:n-1]
	} else {
		d = &delivery{r: r}
		d.fire = d.run
	}
	d.src, d.data = src, data
	r.cpus.SubmitReal(d.fire, nil)
}

// Start schedules fn as the node's initialization job at time zero offsets;
// protocol stacks use it to begin operation from within a profiled context.
func (r *Runtime) Start(fn func()) {
	r.Schedule(0, fn)
}
