package trace

import (
	"testing"

	"repro/internal/db"
	"repro/internal/sim"
)

func TestTxnLogRecords(t *testing.T) {
	var l TxnLog
	l.Add(Record{TID: 1, Class: "neworder", Site: 2, Submit: sim.Second, End: 2 * sim.Second, Outcome: db.Committed})
	l.Add(Record{TID: 2, Class: "payment-long", Site: 2, Submit: sim.Second, End: 3 * sim.Second, Outcome: db.AbortLock})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	recs := l.Records()
	if recs[0].Latency() != sim.Second {
		t.Fatalf("latency = %v", recs[0].Latency())
	}
	if recs[1].Outcome != db.AbortLock {
		t.Fatal("outcome lost")
	}
}
