package trace

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

func log(entries ...[2]uint64) *CommitLog {
	l := &CommitLog{}
	for _, e := range entries {
		l.Append(e[0], e[1])
	}
	return l
}

func TestCheckConsistencyIdenticalLogs(t *testing.T) {
	logs := map[dbsm.SiteID]*CommitLog{
		1: log([2]uint64{1, 10}, [2]uint64{2, 20}),
		2: log([2]uint64{1, 10}, [2]uint64{2, 20}),
		3: log([2]uint64{1, 10}, [2]uint64{2, 20}),
	}
	op := map[dbsm.SiteID]bool{1: true, 2: true, 3: true}
	if err := CheckConsistency(logs, op); err != nil {
		t.Fatalf("identical logs flagged: %v", err)
	}
}

func TestCheckConsistencyDetectsDivergence(t *testing.T) {
	logs := map[dbsm.SiteID]*CommitLog{
		1: log([2]uint64{1, 10}, [2]uint64{2, 20}),
		2: log([2]uint64{1, 10}, [2]uint64{2, 99}),
	}
	op := map[dbsm.SiteID]bool{1: true, 2: true}
	err := CheckConsistency(logs, op)
	if err == nil {
		t.Fatal("divergent logs not flagged")
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckConsistencyDetectsLengthMismatch(t *testing.T) {
	logs := map[dbsm.SiteID]*CommitLog{
		1: log([2]uint64{1, 10}, [2]uint64{2, 20}),
		2: log([2]uint64{1, 10}),
	}
	op := map[dbsm.SiteID]bool{1: true, 2: true}
	if CheckConsistency(logs, op) == nil {
		t.Fatal("length mismatch between operational sites not flagged")
	}
}

func TestCheckConsistencyCrashedPrefixAllowed(t *testing.T) {
	logs := map[dbsm.SiteID]*CommitLog{
		1: log([2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
		2: log([2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
		3: log([2]uint64{1, 10}), // crashed early
	}
	op := map[dbsm.SiteID]bool{1: true, 2: true, 3: false}
	if err := CheckConsistency(logs, op); err != nil {
		t.Fatalf("crashed prefix flagged: %v", err)
	}
	// But a crashed site with a *different* prefix is a violation.
	logs[3] = log([2]uint64{1, 99})
	if CheckConsistency(logs, op) == nil {
		t.Fatal("crashed site with divergent prefix not flagged")
	}
	// And a crashed site that committed beyond the survivors is too.
	logs[3] = log([2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}, [2]uint64{4, 40})
	if CheckConsistency(logs, op) == nil {
		t.Fatal("crashed site beyond survivors not flagged")
	}
}

func TestCheckConsistencyNoOperationalSites(t *testing.T) {
	logs := map[dbsm.SiteID]*CommitLog{1: log([2]uint64{1, 1})}
	if err := CheckConsistency(logs, map[dbsm.SiteID]bool{1: false}); err != nil {
		t.Fatalf("no-operational case should pass vacuously: %v", err)
	}
}

func TestTxnLogRecords(t *testing.T) {
	var l TxnLog
	l.Add(Record{TID: 1, Class: "neworder", Site: 2, Submit: sim.Second, End: 2 * sim.Second, Outcome: db.Committed})
	l.Add(Record{TID: 2, Class: "payment-long", Site: 2, Submit: sim.Second, End: 3 * sim.Second, Outcome: db.AbortLock})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	recs := l.Records()
	if recs[0].Latency() != sim.Second {
		t.Fatalf("latency = %v", recs[0].Latency())
	}
	if recs[1].Outcome != db.AbortLock {
		t.Fatal("outcome lost")
	}
}
