// Package trace records per-transaction logs and implements the paper's
// off-line safety check (Section 5.3): after a run, all operational sites
// must have committed exactly the same sequence of transactions.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

// Record is one transaction's log entry: submission and termination times,
// outcome, and identifier (Section 3.2).
type Record struct {
	TID     uint64
	Class   string
	Site    dbsm.SiteID
	Client  int
	Submit  sim.Time
	End     sim.Time
	Outcome db.Outcome
}

// Latency reports the transaction's response time.
func (r Record) Latency() sim.Time { return r.End - r.Submit }

// TxnLog accumulates transaction records for one run.
type TxnLog struct {
	records []Record
}

// Add appends a record.
func (l *TxnLog) Add(r Record) { l.records = append(l.records, r) }

// Records returns the accumulated records.
func (l *TxnLog) Records() []Record { return l.records }

// Len reports the record count.
func (l *TxnLog) Len() int { return len(l.records) }

// CommitEntry is one committed transaction in a site's certified order.
type CommitEntry struct {
	Seq uint64
	TID uint64
}

// CommitLog is the sequence of transactions a site committed, in
// certification order. Comparing these logs off-line is the paper's safety
// condition.
type CommitLog struct {
	entries []CommitEntry
}

// Append records a commit decision.
func (l *CommitLog) Append(seq, tid uint64) {
	l.entries = append(l.entries, CommitEntry{Seq: seq, TID: tid})
}

// Entries returns the committed sequence.
func (l *CommitLog) Entries() []CommitEntry { return l.entries }

// Len reports the number of commits.
func (l *CommitLog) Len() int { return len(l.entries) }

// CheckConsistency verifies the safety property over per-site commit logs:
// every operational site's log must be identical, and a crashed site's log
// must be a prefix of the common one. It returns nil when safe.
func CheckConsistency(logs map[dbsm.SiteID]*CommitLog, operational map[dbsm.SiteID]bool) error {
	sites := make([]dbsm.SiteID, 0, len(logs))
	for s := range logs {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var ref *CommitLog
	var refSite dbsm.SiteID
	for _, s := range sites {
		if operational[s] {
			ref = logs[s]
			refSite = s
			break
		}
	}
	if ref == nil {
		return nil // no operational site to compare against
	}
	for _, s := range sites {
		l := logs[s]
		if operational[s] {
			if len(l.entries) != len(ref.entries) {
				return fmt.Errorf("trace: site %d committed %d transactions, site %d committed %d",
					s, len(l.entries), refSite, len(ref.entries))
			}
		} else if len(l.entries) > len(ref.entries) {
			return fmt.Errorf("trace: crashed site %d committed %d transactions, beyond operational site %d's %d",
				s, len(l.entries), refSite, len(ref.entries))
		}
		for i := range l.entries {
			if l.entries[i] != ref.entries[i] {
				return fmt.Errorf("trace: divergence at position %d: site %d committed (seq=%d tid=%x), site %d committed (seq=%d tid=%x)",
					i, s, l.entries[i].Seq, l.entries[i].TID, refSite, ref.entries[i].Seq, ref.entries[i].TID)
			}
		}
	}
	return nil
}
