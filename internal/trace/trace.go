// Package trace records per-transaction logs and per-site commit logs. The
// off-line safety check over commit logs (Section 5.3) lives in
// internal/check, which consumes the CommitLog sequences recorded here.
package trace

import (
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

// Record is one transaction's log entry: submission and termination times,
// outcome, and identifier (Section 3.2).
type Record struct {
	TID     uint64
	Class   string
	Site    dbsm.SiteID
	Client  int
	Submit  sim.Time
	End     sim.Time
	Outcome db.Outcome
}

// Latency reports the transaction's response time.
func (r Record) Latency() sim.Time { return r.End - r.Submit }

// TxnLog accumulates transaction records for one run.
type TxnLog struct {
	records []Record
}

// Add appends a record.
func (l *TxnLog) Add(r Record) { l.records = append(l.records, r) }

// Records returns the accumulated records.
func (l *TxnLog) Records() []Record { return l.records }

// Len reports the record count.
func (l *TxnLog) Len() int { return len(l.records) }

// XRecord is one site's record of a cross-group (multi-group) transaction's
// resolution under partial replication: the group that recorded it, the
// decision, the install position in that group's certified order, and the
// group-local read/write sets. The off-line cross-group serialization check
// (internal/check) consumes one canonical record stream per group.
type XRecord struct {
	TID       uint64
	Group     int
	HomeGroup int
	Commit    bool
	// Seq is the group-local commit sequence assigned at install (0 when
	// aborted, or when the group's part wrote nothing).
	Seq uint64
	// Involved is the bitmask of involved groups (bit 1<<g for group g).
	// Only home-group records carry it; remote groups see a restricted
	// prepare.
	Involved uint32
	ReadSet  dbsm.ItemSet
	WriteSet dbsm.ItemSet
}

// CommitEntry is one committed transaction in a site's certified order.
type CommitEntry struct {
	Seq uint64
	TID uint64
}

// CommitLog is the sequence of transactions a site committed, in
// certification order. Comparing these logs off-line is the paper's safety
// condition.
type CommitLog struct {
	entries []CommitEntry
}

// Append records a commit decision.
func (l *CommitLog) Append(seq, tid uint64) {
	l.entries = append(l.entries, CommitEntry{Seq: seq, TID: tid})
}

// Reset replaces the log with a snapshot-transferred sequence — a recovered
// site restarts its log from the donor's, so the post-rejoin stream extends
// a prefix shared with every survivor.
func (l *CommitLog) Reset(entries []CommitEntry) {
	l.entries = append(l.entries[:0], entries...)
}

// Entries returns the committed sequence.
func (l *CommitLog) Entries() []CommitEntry { return l.entries }

// Len reports the number of commits.
func (l *CommitLog) Len() int { return len(l.entries) }
