package gcs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// optCluster wires OnOptimistic alongside the regular delivery.
func newOptCluster(t *testing.T, n int, seed int64) (*cluster, map[NodeID][]OptDelivery) {
	t.Helper()
	c := newCluster(t, n, seed, nil)
	opts := make(map[NodeID][]OptDelivery)
	for id, st := range c.stacks {
		nodeID := id
		st.OnOptimistic(func(d OptDelivery) {
			opts[nodeID] = append(opts[nodeID], d)
		})
	}
	return c, opts
}

func TestOptimisticDeliveryPrecedesFinal(t *testing.T) {
	c, opts := newOptCluster(t, 3, 61)
	for i := 0; i < 20; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte{byte(i)})
	}
	c.run(3 * sim.Second)
	c.checkAgreement(nodes(3), 20)
	for _, id := range nodes(3) {
		if len(opts[id]) != 20 {
			t.Fatalf("node %d optimistic deliveries = %d, want 20", id, len(opts[id]))
		}
		if c.stacks[id].Stats().Optimistic != 20 {
			t.Fatalf("node %d optimistic stat = %d", id, c.stacks[id].Stats().Optimistic)
		}
		// Every finally-delivered message was delivered optimistically
		// with identical payload.
		seen := map[string]bool{}
		for _, o := range opts[id] {
			seen[fmt.Sprintf("%d-%x", o.Sender, o.Payload)] = true
		}
		for _, d := range c.delivered[id] {
			if !seen[fmt.Sprintf("%d-%x", d.Sender, d.Payload)] {
				t.Fatalf("node %d: final delivery without optimistic: %+v", id, d)
			}
		}
	}
}

// Regression for the optimistic upcall wiring: in a fault-free run the
// upcall fires exactly once per final delivery, and the tentative sequence
// is identical — element by element — to the final total order.
func TestOptimisticOrderEqualsFinalOrderFaultFree(t *testing.T) {
	c, opts := newOptCluster(t, 3, 64)
	for i := 0; i < 25; i++ {
		c.castAt(sim.Time(i+1)*15*sim.Millisecond, NodeID(i%3+1), []byte{byte(i), byte(i >> 4)})
	}
	c.run(3 * sim.Second)
	c.checkAgreement(nodes(3), 25)
	for _, id := range nodes(3) {
		finals := c.delivered[id]
		tents := opts[id]
		if len(tents) != len(finals) {
			t.Fatalf("node %d: %d tentative vs %d final deliveries", id, len(tents), len(finals))
		}
		for i := range finals {
			if tents[i].Sender != finals[i].Sender || !bytes.Equal(tents[i].Payload, finals[i].Payload) {
				t.Fatalf("node %d position %d: tentative (%d,%x) != final (%d,%x)",
					id, i, tents[i].Sender, tents[i].Payload, finals[i].Sender, finals[i].Payload)
			}
		}
		if m := c.stacks[id].Stats().Mispredicted; m != 0 {
			t.Fatalf("node %d: %d mispredictions in a fault-free run", id, m)
		}
	}
}

// On an idle LAN with paced senders, arrival order matches total order: no
// mispredictions.
func TestOptimisticNoMispredictionsWhenPaced(t *testing.T) {
	c, _ := newOptCluster(t, 3, 62)
	for i := 0; i < 30; i++ {
		c.castAt(sim.Time(i+1)*20*sim.Millisecond, NodeID(i%3+1), []byte{byte(i)})
	}
	c.run(3 * sim.Second)
	c.checkAgreement(nodes(3), 30)
	for _, id := range nodes(3) {
		if m := c.stacks[id].Stats().Mispredicted; m != 0 {
			t.Fatalf("node %d mispredictions = %d on an idle LAN", id, m)
		}
	}
}

// Under loss, retransmitted messages arrive out of order: mispredictions
// must be detected, while the final order stays consistent.
func TestOptimisticMispredictionsUnderLoss(t *testing.T) {
	c, _ := newOptCluster(t, 3, 63)
	for _, id := range nodes(3) {
		c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.15})
	}
	total := 0
	for r := 0; r < 40; r++ {
		for _, id := range nodes(3) {
			c.castAt(sim.Time(r+1)*5*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			total++
		}
	}
	c.run(30 * sim.Second)
	c.checkAgreement(nodes(3), total)
	mis := int64(0)
	for _, id := range nodes(3) {
		mis += c.stacks[id].Stats().Mispredicted
	}
	if mis == 0 {
		t.Fatal("expected mispredictions under 15% loss")
	}
}
