package gcs

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestPrimaryComponentMajorityContinuesMinorityWedges is the split-brain
// regression: under a network partition the majority side must install a new
// view and keep delivering, while the minority member wedges on quorum loss
// and its delivery sequence stays a prefix of the majority's.
func TestPrimaryComponentMajorityContinuesMinorityWedges(t *testing.T) {
	c := newCluster(t, 3, 11, func(cfg *Config) { cfg.PrimaryComponent = true })

	// Pre-partition traffic, delivered everywhere.
	c.castAt(100*sim.Millisecond, 2, []byte("pre-1"))
	c.castAt(200*sim.Millisecond, 3, []byte("pre-2"))

	c.k.ScheduleAt(2*sim.Second, func() { c.net.Partition([]simnet.NodeID{3}) })

	// Post-partition traffic from the majority side; node 3 must never
	// deliver it.
	for i := 0; i < 5; i++ {
		c.castAt(4*sim.Second+sim.Time(i)*100*sim.Millisecond, 1, []byte(fmt.Sprintf("post-%d", i)))
	}
	// Heal after the failure detector has fired on both sides; the wedged
	// minority must stay silent rather than rejoin with a stale view.
	c.k.ScheduleAt(8*sim.Second, func() { c.net.Heal() })
	c.run(12 * sim.Second)

	for _, id := range []NodeID{1, 2} {
		if got := c.stacks[id].View().Members; len(got) != 2 {
			t.Fatalf("majority member %d view = %v, want {1 2}", id, got)
		}
		if c.stacks[id].Stopped() {
			t.Fatalf("majority member %d wedged", id)
		}
	}
	if !c.stacks[3].Stopped() {
		t.Fatal("minority member did not wedge on quorum loss")
	}
	if c.stacks[3].Stats().QuorumLosses != 1 {
		t.Fatalf("minority quorum losses = %d, want 1", c.stacks[3].Stats().QuorumLosses)
	}

	maj, min := c.delivered[1], c.delivered[3]
	if len(c.delivered[2]) != len(maj) {
		t.Fatalf("majority members delivered %d vs %d messages", len(maj), len(c.delivered[2]))
	}
	if len(maj) != 7 {
		t.Fatalf("majority delivered %d messages, want 7", len(maj))
	}
	if len(min) >= len(maj) {
		t.Fatalf("minority delivered %d messages, not a strict prefix of the majority's %d", len(min), len(maj))
	}
	for i := range min {
		if string(min[i].Payload) != string(maj[i].Payload) || min[i].Global != maj[i].Global {
			t.Fatalf("minority delivery %d = (%d, %q), majority = (%d, %q)",
				i, min[i].Global, min[i].Payload, maj[i].Global, maj[i].Payload)
		}
	}
}

// TestPrimaryComponentOffKeepsCrashBehaviour: without the rule, a lone
// survivor of successive suspicions still installs a singleton view (the
// paper's original crash-only behaviour).
func TestPrimaryComponentOffKeepsCrashBehaviour(t *testing.T) {
	c := newCluster(t, 2, 12, nil)
	c.k.ScheduleAt(sim.Second, func() {
		c.stacks[2].Stop()
		c.net.Host(2).SetDown(true)
	})
	c.run(5 * sim.Second)
	if c.stacks[1].Stopped() {
		t.Fatal("survivor wedged without PrimaryComponent")
	}
	if got := c.stacks[1].View().Members; len(got) != 1 || got[0] != 1 {
		t.Fatalf("survivor view = %v, want {1}", got)
	}
}
