package gcs

import "sort"

// totalOrder implements the fixed sequencer protocol (Section 3.4): the
// first member of the current view issues global sequence numbers for
// application messages; all members buffer and deliver messages according to
// those numbers. Sequencing assignments travel through the reliable
// multicast layer as messages of the sequencer's own stream — which is why
// the sequencer multicasts far more messages than other members and is the
// first to exhaust its buffer share when stability stalls (Section 5.3).
type totalOrder struct {
	s *Stack

	nextGlobal  uint64 // sequencer only: next number to assign
	maxAssigned uint64
	nextDeliver uint64            // all members: delivered up to here
	order       map[uint64]msgKey // global -> message
	assigned    map[msgKey]bool
	pending     map[msgKey]pendingMsg

	// annOf records the provenance of every undelivered remote assignment:
	// which announcer's stream carried it and in which chunk. A view change
	// that drops the announcer uses it to roll back assignments carried by
	// chunks beyond the flush-agreed target — chunks a strict subset of the
	// survivors may have processed mid-freeze — so every survivor renumbers
	// from the same flush-agreed base (see rollbackUnagreed and onInstall).
	annOf map[uint64]annMeta

	// renumberedTo is the highest global produced by install-time
	// renumbering: those assignments are flush-agreed (every survivor made
	// them identically from flush-covered state) but carry no annOf
	// provenance, so the next sequencer handover anchors its renumbering
	// base here when the dying sequencer assigned nothing beyond it.
	renumberedTo uint64

	// deferred holds messages the sequencer declined to assign because the
	// assigned-but-undelivered span hit AssignWindow; they are assigned in
	// arrival order as delivery catches up.
	deferred []msgKey

	// Optimistic delivery bookkeeping: arrival positions, compared with
	// the final order to count mispredictions.
	optSeq     uint64
	optIndex   map[msgKey]uint64
	lastOptFin uint64

	// Uniform delivery at the sequencer: a sequencer that delivered a
	// self-assigned global and then crashed before any survivor received
	// the announcement would leave a committed suffix the survivors
	// renumber differently (a non-prefix divergence). So self-assigned
	// globals deliver only once their announcement batch is held by a
	// majority of the view — the sequencer plus enough ack cursors at or
	// past the batch's last stream chunk. Non-sequencer members stay
	// prompt: a delivery there implies the announcement already reached
	// two members (itself and the sequencer), the majority for n<=3; for
	// n>=5 that is NOT a majority, and the window is real: the adversarial
	// explorer (internal/explore) reproduces it at n=5 with a single
	// partition isolating the sequencer plus one prompt deliverer — the
	// pair delivers and commits on an announcement only they hold, and the
	// majority side renumbers (cmd/faultsim/testdata's s5-non-prefix
	// repro, guarded by TestResidualWindowReproduces; no simultaneous
	// double crash is needed). The window stays open by design: closing it
	// means every member gating delivery on majority acks, serializing an
	// extra round trip into the common path. internal/campaign keeps the
	// sequencer out of partition minorities precisely because this
	// divergence is accepted; the explorer's genome deliberately does not,
	// which is how it cornered the window.
	announceSafe      uint64 // self-assigned globals <= this are majority-held
	selfAssignedFloor uint64 // globals <= this predate this sequencer stint
	unacked           []announceBatch

	batch          []seqAssign
	batchScheduled bool
	// scratch is the reusable marshal buffer for assignment batches: cast
	// copies the payload into stream chunks before returning, so the
	// buffer is free again by the next flush. assignScratch is the
	// matching decode buffer for incoming batches, consumed synchronously
	// by onAssigns. flushFn is the batch-flush job bound once.
	scratch       []byte
	assignScratch []seqAssign
	flushFn       func()
}

type msgKey struct {
	sender NodeID
	msgID  uint64 // sequence number of the message's first chunk
}

type pendingMsg struct {
	data    []byte
	lastSeq uint64 // sequence number of the message's last chunk
}

// annMeta is one assignment's provenance: the member that announced it and
// the last stream chunk of the announcement batch that carried it.
type annMeta struct {
	announcer NodeID
	chunkSeq  uint64
}

// announceBatch tracks one multicast assignment batch awaiting majority
// acknowledgement: delivery of self-assigned globals up to maxGlobal is held
// until the sequencer's stream is acked through lastSeq by a majority.
type announceBatch struct {
	lastSeq   uint64 // last stream chunk of the batch's cast
	maxGlobal uint64 // highest global the batch announces
}

func newTotalOrder(s *Stack) *totalOrder {
	to := &totalOrder{
		s:        s,
		order:    make(map[uint64]msgKey),
		assigned: make(map[msgKey]bool),
		pending:  make(map[msgKey]pendingMsg),
		optIndex: make(map[msgKey]uint64),
		annOf:    make(map[uint64]annMeta),
	}
	to.flushFn = to.flushBatch
	return to
}

// onAppData receives a complete (reassembled) application message from the
// reliable layer, in per-sender FIFO order.
//
// While a view change is in flight (the reliable layer is frozen) the
// sequencer must NOT assign: the flush targets were snapshotted from the
// members' acks, so a chunk that arrives after the ack — say from the very
// member being excluded — can lie beyond them. Assigning it would broadcast
// an order for a body the other survivors repaired past and can never
// obtain (the exclusion drops it), wedging their delivery forever.
// Deferred messages are assigned at install, after the beyond-target purge.
func (to *totalOrder) onAppData(sender NodeID, msgID, lastSeq uint64, data []byte) {
	key := msgKey{sender: sender, msgID: msgID}
	to.pending[key] = pendingMsg{data: data, lastSeq: lastSeq}
	if to.s.onOpt != nil {
		// Optimistic total order: tentatively deliver in spontaneous
		// (arrival) order, before the sequencer's assignment.
		to.optSeq++
		to.optIndex[key] = to.optSeq
		to.s.stats.Optimistic++
		to.s.onOpt(OptDelivery{Sender: sender, MsgID: msgID, Payload: data})
	}
	if to.s.IsSequencer() && !to.assigned[key] && !to.s.rm.frozen {
		if to.assignWindowFull() {
			// Assign-window throttle: delivery has fallen AssignWindow
			// behind assignment, so issuing more numbers would only grow
			// every member's order buffers. Defer until delivery catches
			// up (drainDeferred, below).
			to.deferred = append(to.deferred, key)
			to.s.stats.AssignDeferred++
		} else {
			to.assign(key)
		}
	}
	to.tryDeliver()
}

// assignWindowFull reports whether the sequencer's assigned-but-undelivered
// span has reached the configured window (negative AssignWindow disables the
// throttle).
func (to *totalOrder) assignWindowFull() bool {
	w := to.s.cfg.AssignWindow
	return w > 0 && to.nextGlobal >= to.nextDeliver+uint64(w)
}

// drainDeferred assigns deferred messages while the window has room. Runs
// after every delivery advance; a member that lost the sequencer role drops
// its backlog (the new sequencer orders those messages on arrival or at
// install).
func (to *totalOrder) drainDeferred() {
	if len(to.deferred) == 0 {
		return
	}
	if !to.s.IsSequencer() {
		to.deferred = to.deferred[:0]
		return
	}
	if to.s.rm.frozen {
		return
	}
	n := 0
	for i := 0; i < len(to.deferred); i++ {
		key := to.deferred[i]
		if to.assigned[key] {
			continue // ordered at install while we weren't looking
		}
		if _, ok := to.pending[key]; !ok {
			continue // purged with an excluded sender
		}
		if !to.s.view.Contains(key.sender) {
			continue
		}
		if to.assignWindowFull() {
			n += copy(to.deferred[n:], to.deferred[i:])
			break
		}
		to.assign(key)
	}
	to.deferred = to.deferred[:n]
}

// assign issues the next global sequence number and batches the
// announcement.
func (to *totalOrder) assign(key msgKey) {
	to.s.rt.Charge(to.s.cfg.Costs.PerAssign)
	g := to.nextGlobal + 1
	to.nextGlobal = g
	if g > to.maxAssigned {
		to.maxAssigned = g
	}
	to.order[g] = key
	to.assigned[key] = true
	to.batch = append(to.batch, seqAssign{Sender: key.sender, Seq: key.msgID, Global: g})
	if !to.batchScheduled {
		to.batchScheduled = true
		to.s.rt.StartJob(0, to.flushFn)
	}
}

// flushBatch multicasts accumulated assignments as one message of the
// sequencer's stream.
func (to *totalOrder) flushBatch() {
	to.batchScheduled = false
	if len(to.batch) == 0 || to.s.stopped {
		return
	}
	maxGlobal := to.batch[len(to.batch)-1].Global
	payload := marshalAssigns(to.scratch, to.batch)
	to.scratch = payload
	to.batch = to.batch[:0]
	to.s.rm.cast(payloadSeq, payload)
	// cast advanced sendSeq past every chunk of this announcement; the
	// batch's globals stay undeliverable here until a majority acks them.
	to.unacked = append(to.unacked, announceBatch{lastSeq: to.s.rm.sendSeq, maxGlobal: maxGlobal})
	to.advanceAnnounceSafe() // a single-member majority is already held
}

// advanceAnnounceSafe pops announcement batches that reached a majority and
// releases the self-assigned globals they cover. Driven by assign-acks, by
// gossip horizon advances (the fallback ack channel), and by flushBatch
// itself (a one-member view needs no remote ack).
func (to *totalOrder) advanceAnnounceSafe() {
	if len(to.unacked) == 0 {
		return
	}
	if !to.s.IsSequencer() {
		// Lost the role in a view change; the install path re-anchored the
		// floor and the new sequencer re-announces anything unordered.
		to.unacked = to.unacked[:0]
		return
	}
	advanced := false
	for len(to.unacked) > 0 {
		b := to.unacked[0]
		if !to.majorityHolds(b.lastSeq) {
			break
		}
		if b.maxGlobal > to.announceSafe {
			to.announceSafe = b.maxGlobal
		}
		to.unacked = to.unacked[1:]
		advanced = true
	}
	if advanced {
		to.tryDeliver()
	}
}

// majorityHolds reports whether a majority of the current view (counting
// self) has acknowledged the sequencer's stream through lastSeq.
func (to *totalOrder) majorityHolds(lastSeq uint64) bool {
	need := len(to.s.view.Members)/2 + 1
	have := 1 // self: own chunks are held at send time
	for _, p := range to.s.view.Members {
		if p == to.s.cfg.Self {
			continue
		}
		if to.s.rm.credits.ackedSeq(p) >= lastSeq {
			have++
			if have >= need {
				return true
			}
		}
	}
	return have >= need
}

// onAssigns records ordering announcements from the sequencer. announcer and
// chunkSeq identify the stream chunk that carried the batch: each recorded
// assignment remembers them so a view change that drops the announcer can
// roll back the assignments its survivors did not flush-agree on.
func (to *totalOrder) onAssigns(announcer NodeID, chunkSeq uint64, assigns []seqAssign) {
	for _, a := range assigns {
		key := msgKey{sender: a.Sender, msgID: a.Seq}
		if a.Global <= to.nextDeliver || to.assigned[key] {
			// Already delivered (the sequencer delivers before its own
			// announcement makes the loopback trip, and its assignment
			// marker is dropped at delivery), or already recorded:
			// re-adding would leak order/assigned entries forever.
			if a.Global <= to.nextDeliver && !to.assigned[key] {
				// The global was passed over without a local delivery —
				// a recovery catch-up cursor skipped it (the snapshot
				// covers it). The body can never deliver here; drop it
				// or the pending map would pin it for the whole run.
				delete(to.pending, key)
				delete(to.optIndex, key)
			}
			continue
		}
		to.order[a.Global] = key
		to.assigned[key] = true
		to.annOf[a.Global] = annMeta{announcer: announcer, chunkSeq: chunkSeq}
		if a.Global > to.maxAssigned {
			to.maxAssigned = a.Global
		}
	}
	to.tryDeliver()
}

// rollbackUnagreed undoes assignments announced by a member leaving the view
// in stream chunks beyond its flush-agreed target. The flush targets are
// snapshotted from the members' acks, but the reliable layer keeps handing up
// announcement chunks while frozen — so a strict subset of the survivors can
// have processed the dying sequencer's final batches and raised maxAssigned
// past the others'. Every chunk at or below the target is held (and processed)
// by every survivor before install; every chunk beyond it is rolled back
// identically everywhere, so the renumbering base in onInstall agrees.
//
// The rolled-back assignments are provably undelivered: a beyond-target chunk
// can only have arrived after this member's flush ack, i.e. while the layer
// was frozen, and tryDeliver never runs frozen. They also form a suffix of
// the assigned globals — announcements travel FIFO on the announcer's stream
// with monotonically increasing globals — so removal leaves no holes.
func (to *totalOrder) rollbackUnagreed(announcer NodeID, target uint64) {
	var rollback []uint64
	for g, meta := range to.annOf {
		if meta.announcer == announcer && meta.chunkSeq > target {
			rollback = append(rollback, g)
		}
	}
	if len(rollback) == 0 {
		return
	}
	// The collected order is whatever the map range produced, but the
	// deletions commute: each global removes its own order/assigned/annOf
	// entries and nothing reads them in between.
	for _, g := range rollback {
		key := to.order[g]
		delete(to.order, g)
		delete(to.assigned, key)
		delete(to.annOf, g)
	}
	// Recompute the assignment high-water mark from what survived: delivery
	// is contiguous, so everything delivered is <= nextDeliver and the rest
	// is keyed in order.
	max := to.nextDeliver
	for g := range to.order {
		if g > max {
			//lint:simdeterminism-ok max fold over map keys is commutative
			max = g
		}
	}
	to.maxAssigned = max
}

// tryDeliver hands messages to the application in global sequence order,
// whenever both the order assignment and the message body are present. It
// pauses while a view change is in flight: a delivery made mid-flush could
// cover a message the installed view discards (view synchrony would break —
// this member would have delivered something the others never can).
// Installation resumes delivery.
func (to *totalOrder) tryDeliver() {
	if to.s.rm.frozen {
		return
	}
	for {
		key, ok := to.order[to.nextDeliver+1]
		if !ok {
			break
		}
		pm, have := to.pending[key]
		if !have {
			break
		}
		g := to.nextDeliver + 1
		if to.s.IsSequencer() && g > to.selfAssignedFloor && g > to.announceSafe &&
			!to.s.cfg.NonUniformSequencer {
			// Uniform delivery: wait for a majority to hold the
			// announcement. The NonUniformSequencer escape is a test-only
			// hook resurrecting the pre-fix behaviour for saved repros.
			to.s.stats.UniformStalls++
			break
		}
		to.nextDeliver++
		delete(to.pending, key)
		delete(to.order, to.nextDeliver)
		delete(to.annOf, to.nextDeliver)
		// The reliable layer never hands the same message up twice (its
		// FIFO cursor filters duplicates), so the assignment marker has
		// served its purpose: dropping it keeps the map sized to
		// in-flight messages instead of the whole run.
		delete(to.assigned, key)
		if to.s.onOpt != nil {
			if idx, ok := to.optIndex[key]; ok {
				if idx < to.lastOptFin {
					to.s.stats.Mispredicted++
				} else {
					to.lastOptFin = idx
				}
				delete(to.optIndex, key)
			}
		}
		to.s.deliver(Delivery{Global: to.nextDeliver, Sender: key.sender, Payload: pm.data})
	}
	to.drainDeferred()
}

// purgeSender drops unassigned pending messages of a sender beyond its flush
// target: other members may not have them, so they can never be ordered. The
// optimistic consumer is told so it can cancel speculative state. Used for
// members excluded from the view and for fresh incarnations readmitted by a
// recovery join (whose old-stream tail dies with the old incarnation).
func (to *totalOrder) purgeSender(sender NodeID, upto uint64) {
	for key, pm := range to.pending {
		if key.sender != sender || to.assigned[key] || pm.lastSeq <= upto {
			continue
		}
		delete(to.pending, key)
		delete(to.optIndex, key)
		if to.s.onOptDiscard != nil {
			to.s.onOptDiscard(OptDelivery{Sender: key.sender, MsgID: key.msgID, Payload: pm.data})
		}
	}
}

// skipTo advances the delivery cursor to a recovery catch-up sequence: every
// global at or below seq is covered by the database snapshot the joiner
// transfers, so its local copy (if any arrived) is dropped, not delivered.
func (to *totalOrder) skipTo(seq uint64) {
	for g := to.nextDeliver + 1; g <= seq; g++ {
		key, ok := to.order[g]
		if !ok {
			continue
		}
		delete(to.order, g)
		delete(to.assigned, key)
		delete(to.pending, key)
		delete(to.optIndex, key)
		delete(to.annOf, g)
	}
	if seq > to.nextDeliver {
		to.nextDeliver = seq
	}
	if seq > to.maxAssigned {
		to.maxAssigned = seq
	}
	to.tryDeliver()
}

// releaseAll drops ordering state and buffered message bodies at halt.
func (to *totalOrder) releaseAll() {
	to.order = nil
	to.assigned = nil
	to.pending = nil
	to.optIndex = nil
	to.annOf = nil
	to.batch = nil
	to.deferred = nil
	to.unacked = nil
}

// onInstall re-establishes total order across a view change. When the old
// sequencer left the view, all members deterministically order the leftover
// messages — those fully covered by the flush targets but never assigned —
// and the new sequencer takes over numbering. Messages from excluded members
// beyond the flush target are discarded identically everywhere.
//
// The renumbering base is flush-agreed state, not local processing progress:
// local maxAssigned can run ahead of the other survivors' in two ways, both
// from chunks processed while frozen. First, the dying sequencer's final
// announcement batches can land at a strict subset of the survivors after
// the flush snapshot — rollbackUnagreed removes those before install.
// Second, a member that installs late can have processed the NEW sequencer's
// first post-install announcements, which are numbered relative to a
// renumbering this member has not performed yet; anchoring its own
// renumbering past them would put the same leftovers at different globals
// than everyone else (the explorer's length-mismatch repro). So the base is
// computed from agreed state only: the delivery floor, the previous
// install's renumbering floor, and the old sequencer's flush-covered
// assignments — never from announcements by other members.
//
// A joined-but-unsynced member (admitted by a recovery view change, catch-up
// sequence not yet learned) must not take part in the renumbering: it missed
// the old view's assignments, so its maxAssigned disagrees with the
// survivors'. Its copy of the leftovers stays pending; they are covered by
// the snapshot its donor exports (the donor delivers them before reaching
// the joiner's catch-up sequence), and the skipTo at sync discards them.
func (to *totalOrder) onInstall(oldSequencer NodeID, oldSequencerGone bool, targets map[NodeID]uint64) {
	if !to.s.joinSynced {
		return
	}
	if oldSequencerGone {
		// Flush-agreed renumbering base: every survivor holds exactly the
		// same flush-covered chunks of the old sequencer's stream (the
		// install waited for repair to the targets, and rollbackUnagreed
		// dropped everything beyond them), so the maximum over its
		// recorded assignments — floored by delivery progress and by the
		// previous handover's renumbering — is identical everywhere.
		base := to.nextDeliver
		if to.renumberedTo > base {
			base = to.renumberedTo
		}
		for g, meta := range to.annOf {
			if meta.announcer == oldSequencer && g > base {
				//lint:simdeterminism-ok max fold over map keys is commutative
				base = g
			}
		}
		var leftovers []msgKey
		for key, pm := range to.pending {
			if to.assigned[key] {
				continue
			}
			// Beyond-target messages of excluded or readmitted members
			// were already purged by the installer (purgeSender); what
			// remains from old-view members and is fully covered by a
			// flush target is a leftover to renumber. Surviving members'
			// messages beyond the target stay pending; the new sequencer
			// assigns them below or on arrival.
			if t, hadTarget := targets[key.sender]; hadTarget && pm.lastSeq <= t {
				leftovers = append(leftovers, key)
			}
		}
		sortKeys(leftovers)
		for _, key := range leftovers {
			base++
			to.order[base] = key
			to.assigned[key] = true
			if base > to.maxAssigned {
				to.maxAssigned = base
			}
		}
		to.renumberedTo = base
		if to.nextGlobal < to.maxAssigned {
			to.nextGlobal = to.maxAssigned
		}
		// Everything renumbered here (and everything the old sequencer
		// announced) is flush-guaranteed at every survivor, so the new
		// sequencer's uniformity gate restarts above it. Old unacked
		// batches are void — their announcer is gone.
		to.selfAssignedFloor = to.maxAssigned
		to.announceSafe = to.maxAssigned
		to.unacked = to.unacked[:0]
	}
	if to.s.IsSequencer() {
		// Assign everything still unassigned from in-view senders, in
		// deterministic order: the messages deferred while assignment was
		// frozen mid-change, plus — after a sequencer replacement — the
		// pending messages nobody ordered.
		var rest []msgKey
		for key := range to.pending {
			if !to.assigned[key] && to.s.view.Contains(key.sender) {
				rest = append(rest, key)
			}
		}
		sortKeys(rest)
		for _, key := range rest {
			to.assign(key)
		}
	}
	to.tryDeliver()
}

// sortKeys orders message keys by (sender, msgID).
func sortKeys(keys []msgKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sender != keys[j].sender {
			return keys[i].sender < keys[j].sender
		}
		return keys[i].msgID < keys[j].msgID
	})
}
