package gcs

import "sort"

// totalOrder implements the fixed sequencer protocol (Section 3.4): the
// first member of the current view issues global sequence numbers for
// application messages; all members buffer and deliver messages according to
// those numbers. Sequencing assignments travel through the reliable
// multicast layer as messages of the sequencer's own stream — which is why
// the sequencer multicasts far more messages than other members and is the
// first to exhaust its buffer share when stability stalls (Section 5.3).
type totalOrder struct {
	s *Stack

	nextGlobal  uint64 // sequencer only: next number to assign
	maxAssigned uint64
	nextDeliver uint64            // all members: delivered up to here
	order       map[uint64]msgKey // global -> message
	assigned    map[msgKey]bool
	pending     map[msgKey]pendingMsg

	// Optimistic delivery bookkeeping: arrival positions, compared with
	// the final order to count mispredictions.
	optSeq     uint64
	optIndex   map[msgKey]uint64
	lastOptFin uint64

	batch          []seqAssign
	batchScheduled bool
	// scratch is the reusable marshal buffer for assignment batches: cast
	// copies the payload into stream chunks before returning, so the
	// buffer is free again by the next flush. assignScratch is the
	// matching decode buffer for incoming batches, consumed synchronously
	// by onAssigns. flushFn is the batch-flush job bound once.
	scratch       []byte
	assignScratch []seqAssign
	flushFn       func()
}

type msgKey struct {
	sender NodeID
	msgID  uint64 // sequence number of the message's first chunk
}

type pendingMsg struct {
	data    []byte
	lastSeq uint64 // sequence number of the message's last chunk
}

func newTotalOrder(s *Stack) *totalOrder {
	to := &totalOrder{
		s:        s,
		order:    make(map[uint64]msgKey),
		assigned: make(map[msgKey]bool),
		pending:  make(map[msgKey]pendingMsg),
		optIndex: make(map[msgKey]uint64),
	}
	to.flushFn = to.flushBatch
	return to
}

// onAppData receives a complete (reassembled) application message from the
// reliable layer, in per-sender FIFO order.
func (to *totalOrder) onAppData(sender NodeID, msgID, lastSeq uint64, data []byte) {
	key := msgKey{sender: sender, msgID: msgID}
	to.pending[key] = pendingMsg{data: data, lastSeq: lastSeq}
	if to.s.onOpt != nil {
		// Optimistic total order: tentatively deliver in spontaneous
		// (arrival) order, before the sequencer's assignment.
		to.optSeq++
		to.optIndex[key] = to.optSeq
		to.s.stats.Optimistic++
		to.s.onOpt(OptDelivery{Sender: sender, MsgID: msgID, Payload: data})
	}
	if to.s.IsSequencer() && !to.assigned[key] {
		to.assign(key)
	}
	to.tryDeliver()
}

// assign issues the next global sequence number and batches the
// announcement.
func (to *totalOrder) assign(key msgKey) {
	to.s.rt.Charge(to.s.cfg.Costs.PerAssign)
	g := to.nextGlobal + 1
	to.nextGlobal = g
	if g > to.maxAssigned {
		to.maxAssigned = g
	}
	to.order[g] = key
	to.assigned[key] = true
	to.batch = append(to.batch, seqAssign{Sender: key.sender, Seq: key.msgID, Global: g})
	if !to.batchScheduled {
		to.batchScheduled = true
		to.s.rt.StartJob(0, to.flushFn)
	}
}

// flushBatch multicasts accumulated assignments as one message of the
// sequencer's stream.
func (to *totalOrder) flushBatch() {
	to.batchScheduled = false
	if len(to.batch) == 0 || to.s.stopped {
		return
	}
	payload := marshalAssigns(to.scratch, to.batch)
	to.scratch = payload
	to.batch = to.batch[:0]
	to.s.rm.cast(payloadSeq, payload)
}

// onAssigns records ordering announcements from the sequencer.
func (to *totalOrder) onAssigns(assigns []seqAssign) {
	for _, a := range assigns {
		key := msgKey{sender: a.Sender, msgID: a.Seq}
		if a.Global <= to.nextDeliver || to.assigned[key] {
			// Already delivered (the sequencer delivers before its own
			// announcement makes the loopback trip, and its assignment
			// marker is dropped at delivery), or already recorded:
			// re-adding would leak order/assigned entries forever.
			continue
		}
		to.order[a.Global] = key
		to.assigned[key] = true
		if a.Global > to.maxAssigned {
			to.maxAssigned = a.Global
		}
	}
	to.tryDeliver()
}

// tryDeliver hands messages to the application in global sequence order,
// whenever both the order assignment and the message body are present.
func (to *totalOrder) tryDeliver() {
	for {
		key, ok := to.order[to.nextDeliver+1]
		if !ok {
			return
		}
		pm, have := to.pending[key]
		if !have {
			return
		}
		to.nextDeliver++
		delete(to.pending, key)
		delete(to.order, to.nextDeliver)
		// The reliable layer never hands the same message up twice (its
		// FIFO cursor filters duplicates), so the assignment marker has
		// served its purpose: dropping it keeps the map sized to
		// in-flight messages instead of the whole run.
		delete(to.assigned, key)
		if to.s.onOpt != nil {
			if idx, ok := to.optIndex[key]; ok {
				if idx < to.lastOptFin {
					to.s.stats.Mispredicted++
				} else {
					to.lastOptFin = idx
				}
				delete(to.optIndex, key)
			}
		}
		to.s.deliver(Delivery{Global: to.nextDeliver, Sender: key.sender, Payload: pm.data})
	}
}

// onInstall re-establishes total order across a view change. When the old
// sequencer left the view, all members deterministically order the leftover
// messages — those fully covered by the flush targets but never assigned —
// and the new sequencer takes over numbering. Messages from excluded members
// beyond the flush target are discarded identically everywhere.
func (to *totalOrder) onInstall(oldSequencerGone bool, targets map[NodeID]uint64) {
	if !oldSequencerGone {
		return
	}
	var leftovers []msgKey
	for key, pm := range to.pending {
		if to.assigned[key] {
			continue
		}
		t, hadTarget := targets[key.sender]
		inView := to.s.view.Contains(key.sender)
		switch {
		case hadTarget && pm.lastSeq <= t:
			leftovers = append(leftovers, key)
		case !inView:
			// From an excluded member, beyond the flush target:
			// other members may not have it. Drop, along with its
			// optimistic-delivery bookkeeping — it will never
			// finalize — and tell the optimistic consumer so it can
			// cancel any speculative state.
			delete(to.pending, key)
			delete(to.optIndex, key)
			if to.s.onOptDiscard != nil {
				to.s.onOptDiscard(OptDelivery{Sender: key.sender, MsgID: key.msgID, Payload: pm.data})
			}
		}
		// Messages from surviving members beyond the target stay
		// pending; the new sequencer assigns them below or on arrival.
	}
	sort.Slice(leftovers, func(i, j int) bool {
		if leftovers[i].sender != leftovers[j].sender {
			return leftovers[i].sender < leftovers[j].sender
		}
		return leftovers[i].msgID < leftovers[j].msgID
	})
	for _, key := range leftovers {
		to.maxAssigned++
		to.order[to.maxAssigned] = key
		to.assigned[key] = true
	}
	to.nextGlobal = to.maxAssigned
	if to.s.IsSequencer() {
		// Take over numbering: assign surviving members' pending
		// messages that nobody ordered, in deterministic order.
		var rest []msgKey
		for key := range to.pending {
			if !to.assigned[key] && to.s.view.Contains(key.sender) {
				rest = append(rest, key)
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].sender != rest[j].sender {
				return rest[i].sender < rest[j].sender
			}
			return rest[i].msgID < rest[j].msgID
		})
		for _, key := range rest {
			to.assign(key)
		}
	}
	to.tryDeliver()
}
