package gcs

// creditGate is the sender-side credit state of the bounded-queue flow
// control: each destination holds an acknowledgement cursor — the highest
// sequence number of my stream it is known (via stability gossip horizons)
// to have received contiguously — and a chunk may only be transmitted while
// every live destination's cursor is within CreditsPerDest of it. A slow or
// gray-failed receiver therefore throttles the sender once it lags a full
// credit window, instead of letting unstable traffic pile up in its receive
// buffers without bound. Healthy receivers ack far faster than a window's
// worth of traffic accumulates, so the gate binds only under genuine
// receiver distress.
type creditGate struct {
	// limit is the per-destination credit window in chunks; 0 disables the
	// gate (unlimited credit).
	limit uint64
	// acked maps destination to the contiguous prefix of my stream it has
	// acknowledged. Monotone: merges never move backwards.
	acked map[NodeID]uint64
}

func newCreditGate(limit uint64) *creditGate {
	return &creditGate{limit: limit, acked: make(map[NodeID]uint64)}
}

// ack merges a destination's acknowledgement cursor and reports whether it
// advanced (an advance may unblock the drain loop).
//
//hot:path
func (cg *creditGate) ack(dst NodeID, seq uint64) bool {
	if seq <= cg.acked[dst] {
		return false
	}
	cg.acked[dst] = seq
	return true
}

// allows reports whether seq is within dst's credit window.
//
//hot:path
func (cg *creditGate) allows(dst NodeID, seq uint64) bool {
	if cg.limit == 0 {
		return true
	}
	a := cg.acked[dst]
	return seq <= a+cg.limit
}

// ackedSeq reports dst's acknowledgement cursor (tests and introspection).
func (cg *creditGate) ackedSeq(dst NodeID) uint64 { return cg.acked[dst] }

// forget drops a departed destination's cursor so a fresh incarnation of the
// same node starts from zero credit state.
func (cg *creditGate) forget(dst NodeID) { delete(cg.acked, dst) }

// reset clears every cursor (own-stream restart: the new stream's sequence
// numbers restart at 1, so old acks would be wildly over-generous).
func (cg *creditGate) reset() {
	for dst := range cg.acked {
		delete(cg.acked, dst)
	}
}

// creditOK reports whether every live destination has credit for seq. Self
// and excluded peers never gate: self-delivery is immediate and an excluded
// member will never ack again.
//
//hot:path
func (rm *relMcast) creditOK(seq uint64) bool {
	if rm.credits.limit == 0 {
		return true
	}
	for _, p := range rm.s.view.Members {
		if p == rm.s.cfg.Self {
			continue
		}
		if ps := rm.peers[p]; ps != nil && ps.excluded {
			continue
		}
		if !rm.credits.allows(p, seq) {
			return false
		}
	}
	return true
}

// noteCreditStall counts the start of a credit-blocked episode (once per
// episode, like the Blocked counter).
func (rm *relMcast) noteCreditStall() {
	if !rm.creditBlocked {
		rm.creditBlocked = true
		rm.s.stats.CreditStalls++
	}
}

// creditAck feeds an acknowledgement learned from src's gossip into the gate
// and reports whether it advanced.
func (rm *relMcast) creditAck(src NodeID, seq uint64) bool {
	return rm.credits.ack(src, seq)
}
