package gcs

// This file holds the mitigation knobs for the sequencer bottleneck the
// paper identifies in Section 5.3: "The problem is mitigated by increasing
// available buffer space or by allocating a dedicated sequencer process. In
// the future, it should be solved by avoiding the centralized sequencer."
//
// Increasing buffer space is Config.BufferBytes. A dedicated sequencer is a
// group member that orders messages but originates no application traffic;
// its buffer share then carries only ordering messages. The core model
// builds such a member when core.Config.DedicatedSequencer is set; at this
// layer it is simply a member that never calls Multicast, so no protocol
// change is needed — but the stack exposes accounting that makes the
// mitigation measurable.

// SequencerLoad reports how much of this member's unstable buffer is
// consumed right now and by how many messages, enabling the buffer-share
// analysis of Section 5.3.
func (s *Stack) SequencerLoad() (bytes, share int, msgs int) {
	return s.rm.sendBufBytes, s.rm.share(), len(s.rm.sendBuf)
}

// BlockedNow reports whether the local sender is currently blocked by flow
// control (buffer share, window, or rate).
func (s *Stack) BlockedNow() bool { return s.rm.blocked }

// FlowState exposes the sender-side flow control state for diagnosis: queued
// chunks awaiting transmission, unstable transmitted chunks, and the local
// stability horizon of this member's own stream.
func (s *Stack) FlowState() (queued, unstable int, stableSelf, sendSeq uint64) {
	return len(s.rm.outQ), len(s.rm.sendBuf), s.rm.stableSelf, s.rm.sendSeq
}

// StabilityState exposes the gossip round state for diagnosis.
func (s *Stack) StabilityState() (round uint64, voters uint32, mSelf, sSelf uint64) {
	return s.stab.round, s.stab.w, s.stab.m[s.cfg.Self], s.stab.stable[s.cfg.Self]
}
