package gcs

import "testing"

// TestDataMarshalAllocFree pins the wire encoder's budget: marshaling a data
// chunk into a warm buffer allocates nothing. (The cast path still allocates
// one exact-size buffer per chunk by design — the buffer is retained in the
// send window and handed zero-copy to the network — so the encoder itself
// must stay allocation-free.)
func TestDataMarshalAllocFree(t *testing.T) {
	payload := make([]byte, 512)
	m := &dataMsg{Sender: 3, Seq: 99, Frag: fragFull, Payload: payloadApp, Data: payload}
	buf := make([]byte, 0, dataHeader+len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.marshal(kindData, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("dataMsg.marshal into warm buffer: %v allocs/op, want 0", allocs)
	}
	got, err := parseData(buf)
	if err != nil || got.Seq != 99 || len(got.Data) != len(payload) {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

// TestParseDataPooledAllocFree pins the receive-side decode: parsing into a
// pooled struct allocates nothing.
func TestParseDataPooledAllocFree(t *testing.T) {
	m := &dataMsg{Sender: 3, Seq: 99, Frag: fragFull, Payload: payloadApp, Data: make([]byte, 256)}
	wire := m.marshal(kindData, nil)
	var into dataMsg
	allocs := testing.AllocsPerRun(100, func() {
		if err := parseDataInto(&into, wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("parseDataInto: %v allocs/op, want 0", allocs)
	}
}

// TestAssignsMarshalAllocFree pins the sequencer's batch path: marshaling
// and parsing assignment batches through warm scratch buffers allocates
// nothing — this runs once per ordering batch on the sequencer hot path.
func TestAssignsMarshalAllocFree(t *testing.T) {
	batch := []seqAssign{{Sender: 1, Seq: 5, Global: 10}, {Sender: 2, Seq: 6, Global: 11}}
	wire := marshalAssigns(nil, batch)
	var scratch []seqAssign
	scratch, _ = parseAssignsInto(scratch, wire)
	allocs := testing.AllocsPerRun(100, func() {
		wire = marshalAssigns(wire, batch)
		var err error
		scratch, err = parseAssignsInto(scratch, wire)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("assigns marshal+parse with warm scratch: %v allocs/op, want 0", allocs)
	}
}
