package gcs

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestTotalOrderMapsDrainAfterDelivery pins the ordering layer's memory
// behaviour: once every message is delivered, the order / assigned / pending
// maps are empty at every member — including the sequencer, whose
// self-heard assignment announcements arrive after it has already delivered
// the messages (a path that once re-inserted, and leaked, both an order and
// an assigned entry per sequenced message).
func TestTotalOrderMapsDrainAfterDelivery(t *testing.T) {
	c := newCluster(t, 3, 31, nil)
	const msgs = 50
	for i := 0; i < msgs; i++ {
		c.castAt(sim.Time(i+1)*5*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("m%d", i)))
	}
	c.run(5 * sim.Second)
	c.checkAgreement([]NodeID{1, 2, 3}, msgs)
	for id, st := range c.stacks {
		to := st.to
		if len(to.order) != 0 || len(to.assigned) != 0 || len(to.pending) != 0 {
			t.Fatalf("node %d leaks ordering state after full delivery: order=%d assigned=%d pending=%d",
				id, len(to.order), len(to.assigned), len(to.pending))
		}
	}
}
