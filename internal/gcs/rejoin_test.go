package gcs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// crashNode kills a node at a simulated instant: runtime, host, stack.
func (c *cluster) crashNode(at sim.Time, id NodeID) {
	c.k.ScheduleAt(at, func() {
		c.stacks[id].Stop()
		c.rts[id].Crash()
		c.net.Host(id).SetDown(true)
	})
}

// rejoinNode restarts a crashed node at a simulated instant with a fresh
// joining stack (the old incarnation's state is gone, as after a real
// crash). Deliveries of the new incarnation are collected separately and the
// learned catch-up sequence recorded.
func (c *cluster) rejoinNode(at sim.Time, id NodeID, n int, joinSeq *uint64) {
	c.k.ScheduleAt(at, func() {
		c.rts[id].Restart()
		c.net.Host(id).SetDown(false)
		c.delivered[id] = nil // fresh incarnation, fresh delivery log
		members := nodes(n)
		cfg := Config{Self: id, Members: members, Group: 1, UseMulticast: true,
			Joining: true, FailTimeout: 500 * sim.Millisecond}
		st, err := New(c.rts[id], cfg)
		if err != nil {
			c.t.Fatal(err)
		}
		st.OnDeliver(func(d Delivery) {
			c.delivered[id] = append(c.delivered[id], d)
		})
		st.OnViewChange(func(v View) {
			c.views[id] = append(c.views[id], v)
		})
		st.OnJoined(func(seq uint64) { *joinSeq = seq })
		c.stacks[id] = st
		st.Start()
	})
}

// checkSuffixAgreement verifies the joiner delivered exactly the survivors'
// suffix above joinSeq, in the identical order.
func checkSuffixAgreement(t *testing.T, survivor, joiner []Delivery, joinSeq uint64) {
	t.Helper()
	var suffix []Delivery
	for _, d := range survivor {
		if d.Global > joinSeq {
			suffix = append(suffix, d)
		}
	}
	if len(joiner) != len(suffix) {
		t.Fatalf("joiner delivered %d messages above joinSeq=%d, survivors delivered %d",
			len(joiner), joinSeq, len(suffix))
	}
	for i := range suffix {
		if joiner[i].Global != suffix[i].Global || joiner[i].Sender != suffix[i].Sender ||
			!bytes.Equal(joiner[i].Payload, suffix[i].Payload) {
			t.Fatalf("joiner suffix diverged at %d: %+v vs %+v", i, joiner[i], suffix[i])
		}
	}
}

func TestRejoinNonSequencerCatchesUp(t *testing.T) {
	c := newCluster(t, 3, 21, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	// Pre-crash traffic.
	for i := 0; i < 10; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("pre%d", i)))
	}
	c.crashNode(300*sim.Millisecond, 3)
	// Mid-outage traffic the joiner must NOT see (covered by its snapshot).
	for i := 0; i < 10; i++ {
		c.castAt(3*sim.Second+sim.Time(i+1)*10*sim.Millisecond, NodeID(i%2+1), []byte(fmt.Sprintf("mid%d", i)))
	}
	var joinSeq uint64
	preDeliveries := len(c.delivered[3])
	c.rejoinNode(5*sim.Second, 3, 3, &joinSeq)
	// Post-rejoin traffic everyone must deliver.
	for i := 0; i < 10; i++ {
		c.castAt(8*sim.Second+sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("post%d", i)))
	}
	c.run(15 * sim.Second)

	if joinSeq == 0 {
		t.Fatal("joiner never learned its catch-up sequence")
	}
	st := c.stacks[3]
	if !st.Joined() {
		t.Fatal("joiner stack never finished joining")
	}
	if st.Stats().Joins != 1 {
		t.Fatalf("Joins = %d, want 1", st.Stats().Joins)
	}
	for _, id := range nodes(3) {
		v := c.stacks[id].View()
		if len(v.Members) != 3 || !v.Contains(3) {
			t.Fatalf("node %d view %+v does not include the rejoined member", id, v)
		}
		if v.Sequencer() == 3 {
			t.Fatal("the joiner must not become sequencer of the join view")
		}
	}
	// Survivors agree on the full stream.
	c.checkAgreement([]NodeID{1, 2}, 30)
	_ = preDeliveries
	checkSuffixAgreement(t, c.delivered[1], c.delivered[3], joinSeq)
	// The joiner's own post-rejoin casts made it into the total order.
	found := false
	for _, d := range c.delivered[1] {
		if d.Sender == 3 && d.Global > joinSeq {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no post-rejoin message from the joiner was delivered group-wide")
	}
}

func TestRejoinSequencerComesBackAsFollower(t *testing.T) {
	c := newCluster(t, 3, 22, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	for i := 0; i < 8; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("pre%d", i)))
	}
	// Crash the sequencer (node 1); node 2 takes over.
	c.crashNode(300*sim.Millisecond, 1)
	for i := 0; i < 8; i++ {
		c.castAt(3*sim.Second+sim.Time(i+1)*10*sim.Millisecond, NodeID(i%2+2), []byte(fmt.Sprintf("mid%d", i)))
	}
	var joinSeq uint64
	c.rejoinNode(5*sim.Second, 1, 3, &joinSeq)
	for i := 0; i < 8; i++ {
		c.castAt(8*sim.Second+sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("post%d", i)))
	}
	c.run(15 * sim.Second)

	if joinSeq == 0 {
		t.Fatal("joiner never learned its catch-up sequence")
	}
	for _, id := range nodes(3) {
		v := c.stacks[id].View()
		if !v.Contains(1) || len(v.Members) != 3 {
			t.Fatalf("node %d view %+v", id, v)
		}
		// The old sequencer must NOT regain the role just by rejoining:
		// survivors keep their order, so node 2 still sequences.
		if v.Sequencer() != 2 {
			t.Fatalf("node %d sequencer = %d, want 2", id, v.Sequencer())
		}
	}
	c.checkAgreement([]NodeID{2, 3}, 24)
	checkSuffixAgreement(t, c.delivered[2], c.delivered[1], joinSeq)
}

func TestRejoinUnderLoss(t *testing.T) {
	c := newCluster(t, 3, 23, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	for _, id := range nodes(3) {
		c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.08})
	}
	count := 0
	for r := 0; r < 20; r++ {
		for _, id := range nodes(3) {
			c.castAt(sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			count++
		}
	}
	c.crashNode(400*sim.Millisecond, 3)
	var joinSeq uint64
	c.rejoinNode(5*sim.Second, 3, 3, &joinSeq)
	for r := 0; r < 10; r++ {
		for _, id := range nodes(3) {
			c.castAt(9*sim.Second+sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("p%d-%d", id, r)))
		}
	}
	c.run(25 * sim.Second)

	if joinSeq == 0 {
		t.Fatal("joiner never synced under loss")
	}
	c.checkAgreement([]NodeID{1, 2}, -1)
	checkSuffixAgreement(t, c.delivered[1], c.delivered[3], joinSeq)
}

// TestRejoinUnderHeavyLossManySeeds hammers the admission handshake with
// 25% receiver loss across seeds: lost decides and join syncs force the
// retry paths, including the readmission of a live joiner whose pre-install
// join requests a survivor mistook for a fresh restart. Whatever path a
// seed takes, every delivery the joiner makes above its final catch-up
// sequence must be exactly the survivors' suffix.
func TestRejoinUnderHeavyLossManySeeds(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		c := newCluster(t, 3, seed, func(cfg *Config) {
			// 20 consecutive heartbeat losses (~1e-12 at 25%) would be
			// needed for a false suspicion: only the real crash trips
			// the detector, while the admission traffic still suffers
			// heavy loss.
			cfg.FailTimeout = 2 * sim.Second
		})
		for _, id := range nodes(3) {
			c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.25})
		}
		for r := 0; r < 20; r++ {
			for _, id := range nodes(3) {
				c.castAt(sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			}
		}
		c.crashNode(400*sim.Millisecond, 3)
		var joinSeq uint64
		c.rejoinNode(4*sim.Second, 3, 3, &joinSeq)
		for r := 0; r < 10; r++ {
			for _, id := range nodes(3) {
				c.castAt(10*sim.Second+sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("p%d-%d", id, r)))
			}
		}
		c.run(40 * sim.Second)

		st := c.stacks[3]
		if !st.Joined() {
			t.Fatalf("seed %d: joiner never finished joining", seed)
		}
		c.checkAgreement([]NodeID{1, 2}, -1)
		final := st.JoinSeq()
		// Deliveries above the final catch-up sequence must match the
		// survivors' suffix exactly; any delivered below it must agree
		// with the survivors' entry at the same global (they were
		// delivered under an earlier, superseded sync).
		byGlobal := map[uint64]Delivery{}
		for _, d := range c.delivered[1] {
			byGlobal[d.Global] = d
		}
		joinerAbove := map[uint64]bool{}
		for _, d := range c.delivered[3] {
			ref, ok := byGlobal[d.Global]
			if !ok || ref.Sender != d.Sender || !bytes.Equal(ref.Payload, d.Payload) {
				t.Fatalf("seed %d: joiner delivery %+v disagrees with survivors", seed, d)
			}
			if d.Global > final {
				joinerAbove[d.Global] = true
			}
		}
		for _, d := range c.delivered[1] {
			if d.Global > final && !joinerAbove[d.Global] {
				t.Fatalf("seed %d: joiner missed delivery %d above its catch-up sequence %d",
					seed, d.Global, final)
			}
		}
	}
}

// TestCrashReleasesBuffers is the leak regression for halted stacks: a
// crashed (or excluded, or wedged) member's receive- and send-side buffers
// must be released at halt time, not await a stability GC round that a dead
// stack never runs.
func TestCrashReleasesBuffers(t *testing.T) {
	c := newCluster(t, 3, 24, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
		// Slow stability so buffers are guaranteed nonempty at crash time.
		cfg.StabilityPeriod = 10 * sim.Second
	})
	for i := 0; i < 20; i++ {
		c.castAt(sim.Time(i+1)*2*sim.Millisecond, NodeID(i%3+1), make([]byte, 600))
	}
	// Let traffic flow, then verify buffers are actually populated.
	c.run(200 * sim.Millisecond)
	if c.stacks[3].BufferedMessages() == 0 {
		t.Fatal("test premise broken: no buffered messages before crash")
	}
	c.stacks[3].Stop()
	if got := c.stacks[3].BufferedMessages(); got != 0 {
		t.Fatalf("halted stack still buffers %d messages", got)
	}
	if got := c.stacks[3].BufferedBytes(); got != 0 {
		t.Fatalf("halted stack still pins %d payload bytes", got)
	}
	// Survivors keep working.
	c.rts[3].Crash()
	c.net.Host(3).SetDown(true)
	c.castAt(3*sim.Second, 1, []byte("after"))
	c.run(10 * sim.Second)
	c.checkAgreement([]NodeID{1, 2}, -1)
}
