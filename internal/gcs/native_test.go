package gcs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// TestStackRunsOnNativeRuntime is the deployability proof of the paper's
// abstraction layer (Section 2.3): the identical protocol stack that the
// simulations exercise runs here over the native bridge — real timers and
// real UDP sockets on the loopback — and three members still agree on one
// total order.
func TestStackRunsOnNativeRuntime(t *testing.T) {
	const n = 3
	// Phase 1: bind to learn ports.
	addrs := make(map[runtimeapi.NodeID]string, n)
	for i := 1; i <= n; i++ {
		probe, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
			Self: runtimeapi.NodeID(i), Listen: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[runtimeapi.NodeID(i)] = probe.LocalAddr()
		probe.Close()
	}
	members := []NodeID{1, 2, 3}

	// Phase 2: real runtimes with full peer tables.
	var mu sync.Mutex
	delivered := make(map[NodeID][]Delivery)
	natives := make(map[NodeID]*runtimeapi.Native, n)
	stacks := make(map[NodeID]*Stack, n)
	for _, id := range members {
		nat, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
			Self:   id,
			Listen: addrs[id],
			Seed:   int64(id),
			Peers:  addrs,
			Groups: map[runtimeapi.Group][]runtimeapi.NodeID{1: {1, 2, 3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer nat.Close()
		st, err := New(nat, Config{
			Self:         id,
			Members:      members,
			Group:        1,
			UseMulticast: true, // iterated unicast on the native bridge
			// Tighten timers: this is a real-time test.
			NackDelay:       5 * sim.Millisecond,
			RetransPeriod:   20 * sim.Millisecond,
			StabilityPeriod: 25 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		self := id
		st.OnDeliver(func(d Delivery) {
			mu.Lock()
			delivered[self] = append(delivered[self], d)
			mu.Unlock()
		})
		natives[id] = nat
		stacks[id] = st
		st.Start()
	}

	// Each member multicasts 10 payloads, injected through the runtime's
	// dispatch context (the stack is single-threaded).
	const perMember = 10
	for _, id := range members {
		nat, st := natives[id], stacks[id]
		sender := id
		for i := 0; i < perMember; i++ {
			payload := []byte(fmt.Sprintf("%d-%d", sender, i))
			nat.Schedule(sim.Time(i+1)*5*sim.Millisecond, func() {
				st.Multicast(payload)
			})
		}
	}

	// Wait for full agreement (deadline-bounded).
	want := n * perMember
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(delivered[1]) >= want && len(delivered[2]) >= want && len(delivered[3]) >= want
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	ref := delivered[1]
	if len(ref) != want {
		t.Fatalf("member 1 delivered %d of %d", len(ref), want)
	}
	for _, id := range members[1:] {
		got := delivered[id]
		if len(got) != want {
			t.Fatalf("member %d delivered %d of %d", id, len(got), want)
		}
		for i := range ref {
			if got[i].Global != ref[i].Global || got[i].Sender != ref[i].Sender ||
				!bytes.Equal(got[i].Payload, ref[i].Payload) {
				t.Fatalf("total order diverged at %d: %+v vs %+v", i, got[i], ref[i])
			}
		}
	}
}
