package gcs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/csrt"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// cluster wires N protocol stacks over the centralized simulation runtime
// and a simulated LAN — the same composition the full model uses.
type cluster struct {
	t         *testing.T
	k         *sim.Kernel
	net       *simnet.Network
	rts       map[NodeID]*csrt.Runtime
	stacks    map[NodeID]*Stack
	delivered map[NodeID][]Delivery
	views     map[NodeID][]View
}

func newCluster(t *testing.T, n int, seed int64, tweak func(*Config)) *cluster {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(seed)
	net := simnet.NewNetwork(k, rng.Fork("net"))
	lan := net.NewLAN(simnet.DefaultLANConfig("lan0"))
	members := make([]NodeID, n)
	for i := 0; i < n; i++ {
		members[i] = NodeID(i + 1)
	}
	net.SetGroup(1, members)
	c := &cluster{
		t:         t,
		k:         k,
		net:       net,
		rts:       make(map[NodeID]*csrt.Runtime),
		stacks:    make(map[NodeID]*Stack),
		delivered: make(map[NodeID][]Delivery),
		views:     make(map[NodeID][]View),
	}
	for _, id := range members {
		host, err := net.NewHost(id, lan)
		if err != nil {
			t.Fatal(err)
		}
		port := net.Port(id, 1400)
		rt := csrt.NewRuntime(k, id, &csrt.ModelProfiler{}, port, csrt.DefaultCostParams(), rng.Fork(fmt.Sprintf("rt-%d", id)))
		rt.Bind(csrt.NewCPUSet(1, k, nil))
		host.SetDeliver(func(pkt *simnet.Packet) { rt.Deliver(pkt.Src, pkt.Data) })
		cfg := Config{Self: id, Members: members, Group: 1, UseMulticast: true}
		if tweak != nil {
			tweak(&cfg)
		}
		st, err := New(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodeID := id
		st.OnDeliver(func(d Delivery) {
			c.delivered[nodeID] = append(c.delivered[nodeID], d)
		})
		st.OnViewChange(func(v View) {
			c.views[nodeID] = append(c.views[nodeID], v)
		})
		c.rts[id] = rt
		c.stacks[id] = st
		st.Start()
	}
	return c
}

// castAt schedules an application multicast from a node at a simulated time.
func (c *cluster) castAt(at sim.Time, id NodeID, payload []byte) {
	c.k.ScheduleAt(at, func() {
		c.rts[id].CPUs().SubmitReal(func() { c.stacks[id].Multicast(payload) }, nil)
	})
}

func (c *cluster) run(until sim.Time) {
	c.t.Helper()
	if err := c.k.RunUntil(until); err != nil {
		c.t.Fatal(err)
	}
}

// checkAgreement verifies every listed node delivered the identical
// sequence.
func (c *cluster) checkAgreement(nodes []NodeID, wantCount int) {
	c.t.Helper()
	ref := c.delivered[nodes[0]]
	if wantCount >= 0 && len(ref) != wantCount {
		c.t.Fatalf("node %d delivered %d messages, want %d", nodes[0], len(ref), wantCount)
	}
	for _, id := range nodes[1:] {
		got := c.delivered[id]
		if len(got) != len(ref) {
			c.t.Fatalf("node %d delivered %d, node %d delivered %d", id, len(got), nodes[0], len(ref))
		}
		for i := range ref {
			if got[i].Global != ref[i].Global || got[i].Sender != ref[i].Sender || !bytes.Equal(got[i].Payload, ref[i].Payload) {
				c.t.Fatalf("node %d delivery %d = %+v, node %d = %+v", id, i, got[i], nodes[0], ref[i])
			}
		}
	}
}

func nodes(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(i + 1)
	}
	return out
}

func TestTotalOrderBasic(t *testing.T) {
	c := newCluster(t, 3, 1, nil)
	for i := 0; i < 10; i++ {
		sender := NodeID(i%3 + 1)
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, sender, []byte(fmt.Sprintf("m%d", i)))
	}
	c.run(2 * sim.Second)
	c.checkAgreement(nodes(3), 10)
	// Global sequence numbers must be 1..10 in order.
	for i, d := range c.delivered[1] {
		if d.Global != uint64(i+1) {
			t.Fatalf("delivery %d has global %d", i, d.Global)
		}
	}
}

func TestSelfDelivery(t *testing.T) {
	c := newCluster(t, 3, 2, nil)
	c.castAt(10*sim.Millisecond, 2, []byte("hello"))
	c.run(1 * sim.Second)
	for _, id := range nodes(3) {
		if len(c.delivered[id]) != 1 || c.delivered[id][0].Sender != 2 {
			t.Fatalf("node %d deliveries: %+v", id, c.delivered[id])
		}
	}
}

func TestFIFOPerSenderPreserved(t *testing.T) {
	c := newCluster(t, 3, 3, nil)
	// Node 1 casts 20 messages back-to-back.
	for i := 0; i < 20; i++ {
		c.castAt(sim.Time(i+1)*sim.Millisecond, 1, []byte{byte(i)})
	}
	c.run(2 * sim.Second)
	c.checkAgreement(nodes(3), 20)
	for i, d := range c.delivered[2] {
		if d.Payload[0] != byte(i) {
			t.Fatalf("FIFO violated: position %d has payload %d", i, d.Payload[0])
		}
	}
}

func TestFragmentationLargeMessage(t *testing.T) {
	c := newCluster(t, 3, 4, nil)
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	c.castAt(10*sim.Millisecond, 1, big)
	c.run(1 * sim.Second)
	c.checkAgreement(nodes(3), 1)
	if !bytes.Equal(c.delivered[3][0].Payload, big) {
		t.Fatal("fragmented payload corrupted")
	}
}

func TestConcurrentSendersAgree(t *testing.T) {
	c := newCluster(t, 3, 5, nil)
	// All three cast at the same instant, repeatedly.
	count := 0
	for r := 0; r < 15; r++ {
		for _, id := range nodes(3) {
			c.castAt(sim.Time(r+1)*5*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			count++
		}
	}
	c.run(3 * sim.Second)
	c.checkAgreement(nodes(3), count)
}

func TestLossRecoveryRandom(t *testing.T) {
	c := newCluster(t, 3, 6, nil)
	for _, id := range nodes(3) {
		c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.10})
	}
	count := 0
	for r := 0; r < 30; r++ {
		for _, id := range nodes(3) {
			c.castAt(sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			count++
		}
	}
	c.run(20 * sim.Second)
	c.checkAgreement(nodes(3), count)
	if c.stacks[1].Stats().Retransmits == 0 && c.stacks[2].Stats().Retransmits == 0 && c.stacks[3].Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestLossRecoveryBursty(t *testing.T) {
	c := newCluster(t, 3, 7, nil)
	for _, id := range nodes(3) {
		c.net.Host(id).SetLoss(&simnet.BurstyLoss{Rate: 0.10, MeanBurst: 50 * sim.Millisecond})
	}
	count := 0
	for r := 0; r < 30; r++ {
		for _, id := range nodes(3) {
			c.castAt(sim.Time(r+1)*10*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			count++
		}
	}
	c.run(20 * sim.Second)
	c.checkAgreement(nodes(3), count)
}

func TestStabilityGarbageCollection(t *testing.T) {
	c := newCluster(t, 3, 8, nil)
	for i := 0; i < 10; i++ {
		c.castAt(sim.Time(i+1)*5*sim.Millisecond, 1, make([]byte, 500))
	}
	c.run(3 * sim.Second)
	c.checkAgreement(nodes(3), 10)
	for _, id := range nodes(3) {
		rm := c.stacks[id].rm
		if rm.sendBufBytes != 0 || len(rm.sendBuf) != 0 {
			t.Fatalf("node %d send buffer not GC'd: %d bytes, %d msgs",
				id, rm.sendBufBytes, len(rm.sendBuf))
		}
		st := c.stacks[id].stab
		if st.stableSeq(1) == 0 {
			t.Fatalf("node %d learned no stability for sender 1", id)
		}
	}
}

func TestBufferShareBlocksThenDrains(t *testing.T) {
	// Tiny buffer pool: casts must block on the share and recover as
	// stability advances.
	c := newCluster(t, 3, 9, func(cfg *Config) {
		cfg.BufferBytes = 9 * 1024 // 3 KiB per member
		cfg.StabilityPeriod = 5 * sim.Millisecond
	})
	for i := 0; i < 20; i++ {
		c.castAt(10*sim.Millisecond, 1, make([]byte, 1000)) // all at once
	}
	c.run(10 * sim.Second)
	c.checkAgreement(nodes(3), 20)
	if c.stacks[1].Stats().Blocked == 0 {
		t.Fatal("expected flow-control blocking with a tiny buffer pool")
	}
	if c.stacks[1].Stats().BlockedTime <= 0 {
		t.Fatal("expected nonzero blocked time")
	}
}

func TestCrashNonSequencerInstallsNewView(t *testing.T) {
	c := newCluster(t, 3, 10, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	for i := 0; i < 5; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, 1, []byte(fmt.Sprintf("pre%d", i)))
	}
	// Crash node 3 (not the sequencer, which is node 1) at 200ms.
	c.k.ScheduleAt(200*sim.Millisecond, func() {
		c.rts[3].Crash()
		c.net.Host(3).SetDown(true)
	})
	// Traffic after the crash.
	for i := 0; i < 5; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond+2*sim.Second, 2, []byte(fmt.Sprintf("post%d", i)))
	}
	c.run(10 * sim.Second)
	for _, id := range []NodeID{1, 2} {
		v := c.stacks[id].View()
		if v.ID == 0 || len(v.Members) != 2 || v.Contains(3) {
			t.Fatalf("node %d view = %+v, want {1,2}", id, v)
		}
		if len(c.views[id]) == 0 {
			t.Fatalf("node %d never saw a view change callback", id)
		}
	}
	c.checkAgreement([]NodeID{1, 2}, 10)
}

func TestCrashSequencerReplacedAndOrderContinues(t *testing.T) {
	c := newCluster(t, 3, 11, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	for i := 0; i < 5; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, 2, []byte(fmt.Sprintf("pre%d", i)))
	}
	// Crash node 1: the sequencer.
	c.k.ScheduleAt(200*sim.Millisecond, func() {
		c.rts[1].Crash()
		c.net.Host(1).SetDown(true)
	})
	for i := 0; i < 5; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond+2*sim.Second, 3, []byte(fmt.Sprintf("post%d", i)))
	}
	c.run(10 * sim.Second)
	for _, id := range []NodeID{2, 3} {
		v := c.stacks[id].View()
		if v.Sequencer() != 2 {
			t.Fatalf("node %d sequencer = %d, want 2", id, v.Sequencer())
		}
	}
	c.checkAgreement([]NodeID{2, 3}, 10)
	// Globals must be gap-free.
	for i, d := range c.delivered[2] {
		if d.Global != uint64(i+1) {
			t.Fatalf("global sequence has gaps: position %d = %d", i, d.Global)
		}
	}
}

func TestCrashDuringHeavyTrafficAgreement(t *testing.T) {
	c := newCluster(t, 5, 12, func(cfg *Config) {
		cfg.FailTimeout = 400 * sim.Millisecond
	})
	for r := 0; r < 40; r++ {
		for _, id := range nodes(5) {
			c.castAt(sim.Time(r+1)*5*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
		}
	}
	c.k.ScheduleAt(100*sim.Millisecond, func() {
		c.rts[4].Crash()
		c.net.Host(4).SetDown(true)
	})
	c.run(15 * sim.Second)
	// Survivors must agree on a common sequence (count depends on how
	// many of node 4's casts made it out).
	c.checkAgreement([]NodeID{1, 2, 3, 5}, -1)
	if len(c.delivered[1]) < 4*40 {
		t.Fatalf("only %d messages delivered; survivors' traffic lost", len(c.delivered[1]))
	}
}

func TestUnicastFallbackMode(t *testing.T) {
	c := newCluster(t, 3, 13, func(cfg *Config) {
		cfg.UseMulticast = false
	})
	for i := 0; i < 6; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte{byte(i)})
	}
	c.run(2 * sim.Second)
	c.checkAgreement(nodes(3), 6)
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Delivery {
		c := newCluster(t, 3, 42, nil)
		for _, id := range nodes(3) {
			c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.05})
		}
		for r := 0; r < 20; r++ {
			for _, id := range nodes(3) {
				c.castAt(sim.Time(r+1)*7*sim.Millisecond, id, []byte(fmt.Sprintf("%d-%d", id, r)))
			}
		}
		c.run(10 * sim.Second)
		return c.delivered[2]
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Global != b[i].Global || a[i].Sender != b[i].Sender || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	net := simnet.NewNetwork(k, rng)
	lan := net.NewLAN(simnet.DefaultLANConfig("l"))
	if _, err := net.NewHost(1, lan); err != nil {
		t.Fatal(err)
	}
	rt := csrt.NewRuntime(k, 1, &csrt.ModelProfiler{}, net.Port(1, 1400), csrt.CostParams{}, rng)
	rt.Bind(csrt.NewCPUSet(1, k, nil))
	if _, err := New(rt, Config{Self: 1, Members: nil}); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New(rt, Config{Self: 9, Members: []runtimeapi.NodeID{1, 2}}); err == nil {
		t.Fatal("self not in member list accepted")
	}
	if _, err := New(rt, Config{Self: 1, Members: []runtimeapi.NodeID{1}, MaxPacket: 10}); err == nil {
		t.Fatal("absurd MaxPacket accepted")
	}
}
