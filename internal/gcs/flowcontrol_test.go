package gcs

import (
	"testing"

	"repro/internal/sim"
)

// TestCreditGateTable drives the credit-window state machine through its
// transitions: exhaustion blocks, acknowledgements replenish monotonically,
// a zero limit disables the gate, and forget/reset clear cursor state.
func TestCreditGateTable(t *testing.T) {
	tests := []struct {
		name  string
		limit uint64
		setup func(cg *creditGate)
		dst   NodeID
		seq   uint64
		want  bool
	}{
		{name: "fresh gate allows within limit", limit: 4, dst: 2, seq: 4, want: true},
		{name: "fresh gate blocks beyond limit", limit: 4, dst: 2, seq: 5, want: false},
		{name: "ack advances the window", limit: 4, dst: 2, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 6) }, want: true},
		{name: "window edge is inclusive", limit: 4, dst: 2, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 5) }, want: false},
		{name: "stale ack does not regress", limit: 4, dst: 2, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 6); cg.ack(2, 3) }, want: true},
		{name: "zero limit is unlimited", limit: 0, dst: 2, seq: 1 << 40, want: true},
		{name: "forget drops the cursor", limit: 4, dst: 2, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 6); cg.forget(2) }, want: false},
		{name: "reset drops every cursor", limit: 4, dst: 3, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 6); cg.ack(3, 8); cg.reset() }, want: false},
		{name: "cursors are per destination", limit: 4, dst: 3, seq: 10,
			setup: func(cg *creditGate) { cg.ack(2, 100) }, want: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cg := newCreditGate(tc.limit)
			if tc.setup != nil {
				tc.setup(cg)
			}
			if got := cg.allows(tc.dst, tc.seq); got != tc.want {
				t.Fatalf("allows(%d, %d) = %v, want %v", tc.dst, tc.seq, got, tc.want)
			}
		})
	}
}

// TestCreditGateMonotone pins the merge semantics ack relies on: the return
// value reports exactly the advances, and the cursor never moves backwards
// however acknowledgements are reordered in flight.
func TestCreditGateMonotone(t *testing.T) {
	cg := newCreditGate(8)
	steps := []struct {
		seq  uint64
		want bool
	}{{5, true}, {5, false}, {3, false}, {9, true}, {1, false}, {9, false}, {10, true}}
	for i, s := range steps {
		if got := cg.ack(7, s.seq); got != s.want {
			t.Fatalf("step %d: ack(7, %d) = %v, want %v", i, s.seq, got, s.want)
		}
	}
	if got := cg.ackedSeq(7); got != 10 {
		t.Fatalf("ackedSeq = %d, want 10", got)
	}
}

// TestCreditGateReplenishDeterministic verifies the drain-side property the
// cluster tests rely on: every acknowledgement advance unblocks exactly the
// same span of sequence numbers, run after run.
func TestCreditGateReplenishDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		cg := newCreditGate(2)
		var unblocked []uint64
		next := uint64(1)
		for ackTo := uint64(0); ackTo <= 10; ackTo += 2 {
			cg.ack(2, ackTo)
			for cg.allows(2, next) {
				unblocked = append(unblocked, next)
				next++
			}
		}
		if len(unblocked) != 12 || unblocked[0] != 1 || unblocked[11] != 12 {
			t.Fatalf("run %d: unblocked %v, want exactly 1..12", run, unblocked)
		}
	}
}

// TestCreditGateHotPathAllocs pins the per-chunk gate operations at zero
// allocations on a warm map: they run once per transmitted chunk and once
// per gossip horizon merge.
func TestCreditGateHotPathAllocs(t *testing.T) {
	cg := newCreditGate(192)
	cg.ack(2, 1)
	cg.ack(3, 1)
	seq := uint64(2)
	if n := testing.AllocsPerRun(100, func() {
		cg.ack(2, seq)
		cg.ack(3, seq)
		seq++
	}); n != 0 {
		t.Fatalf("ack allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		cg.allows(2, seq)
		cg.allows(3, seq+200)
	}); n != 0 {
		t.Fatalf("allows allocates %v per run, want 0", n)
	}
}

// TestCreditOKAllocs pins the full per-chunk admission check — a walk over
// the live view consulting every destination's cursor — at zero allocations
// against a real three-member stack.
func TestCreditOKAllocs(t *testing.T) {
	c := newCluster(t, 3, 11, nil)
	c.castAt(10*sim.Millisecond, 1, []byte("warm"))
	c.run(2 * sim.Second)
	rm := c.stacks[1].rm
	if n := testing.AllocsPerRun(100, func() {
		rm.creditOK(rm.sendSeq + 1)
	}); n != 0 {
		t.Fatalf("creditOK allocates %v per run, want 0", n)
	}
}

// TestCreditWindowThrottlesSender shrinks the credit window to two chunks
// and pushes a forty-message burst through it: the sender must stall
// (CreditStalls > 0) yet replenishment from stability gossip must drain the
// whole burst — total order intact, no deadlock.
func TestCreditWindowThrottlesSender(t *testing.T) {
	c := newCluster(t, 3, 21, func(cfg *Config) {
		cfg.CreditsPerDest = 2
		cfg.MaxQueuedBytes = -1 // isolate the credit gate from the queue bound
	})
	for i := 0; i < 40; i++ {
		c.castAt(sim.Second, 2, []byte{byte(i)})
	}
	c.run(30 * sim.Second)
	c.checkAgreement(nodes(3), 40)
	if st := c.stacks[2].Stats(); st.CreditStalls == 0 {
		t.Fatal("a 2-chunk credit window absorbed a 40-message burst without a single stall")
	}
}

// TestCreditDisabledNoStalls is the control for the throttle test: with the
// gate disabled the identical burst records no credit stalls.
func TestCreditDisabledNoStalls(t *testing.T) {
	c := newCluster(t, 3, 21, func(cfg *Config) {
		cfg.CreditsPerDest = -1
		cfg.MaxQueuedBytes = -1
	})
	for i := 0; i < 40; i++ {
		c.castAt(sim.Second, 2, []byte{byte(i)})
	}
	c.run(30 * sim.Second)
	c.checkAgreement(nodes(3), 40)
	if st := c.stacks[2].Stats(); st.CreditStalls != 0 {
		t.Fatalf("disabled credit gate recorded %d stalls", st.CreditStalls)
	}
}

// burstOutcome submits a burst of large payloads at one instant and reports
// how many Multicast accepted and refused, plus the sender's final stats.
func burstOutcome(t *testing.T, tweak func(*Config), msgs, size int) (accepted, refused int, st Stats, c *cluster) {
	t.Helper()
	c = newCluster(t, 3, 31, tweak)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	c.k.ScheduleAt(sim.Second, func() {
		c.rts[1].CPUs().SubmitReal(func() {
			for i := 0; i < msgs; i++ {
				if c.stacks[1].Multicast(payload) {
					accepted++
				} else {
					refused++
				}
			}
		}, nil)
	})
	c.run(60 * sim.Second)
	st = c.stacks[1].Stats()
	return accepted, refused, st, c
}

// TestTransmitQueueBound is the regression test for the unbounded transmit
// queue: before the bound existed, a burst arriving faster than flow control
// drains simply piled up in the unsent queue without limit. The first half
// reproduces that baseline (bound disabled: every message accepted, queue
// peak past a mebibyte); the second half pins the fix (queue peak bounded,
// overflow refused and counted, everything accepted still delivered
// everywhere in total order).
func TestTransmitQueueBound(t *testing.T) {
	const (
		msgs = 300
		size = 8 << 10
	)

	// Baseline: bound disabled — the queue grows without limit.
	accepted, refused, st, _ := burstOutcome(t, func(cfg *Config) {
		cfg.MaxQueuedBytes = -1
	}, msgs, size)
	if refused != 0 || accepted != msgs {
		t.Fatalf("unbounded queue refused %d of %d messages", refused, msgs)
	}
	if st.FlowRejected != 0 {
		t.Fatalf("unbounded queue counted %d FlowRejected", st.FlowRejected)
	}
	if st.QueuePeakBytes <= 1<<20 {
		t.Fatalf("baseline queue peak %d bytes never exceeded the 1 MiB the bound would impose — burst too small to regress", st.QueuePeakBytes)
	}

	// Fix: default bound — refusals surface, the peak stays bounded, and
	// every accepted message still reaches every member.
	accepted, refused, st, c := burstOutcome(t, nil, msgs, size)
	if refused == 0 {
		t.Fatal("bounded queue accepted the whole burst; expected refusals")
	}
	if accepted+refused != msgs {
		t.Fatalf("accepted %d + refused %d != %d", accepted, refused, msgs)
	}
	if st.FlowRejected != int64(refused) {
		t.Fatalf("FlowRejected = %d, Multicast refused %d", st.FlowRejected, refused)
	}
	// The bound checks payload bytes against the queue before appending;
	// chunk wire headers may push the recorded peak slightly past the limit.
	if lim := int64(1<<20 + size); st.QueuePeakBytes > lim {
		t.Fatalf("queue peak %d bytes exceeds bound %d", st.QueuePeakBytes, lim)
	}
	c.checkAgreement(nodes(3), accepted)
}
