package gcs

import (
	"testing"

	"repro/internal/sim"
)

// TestUniformDeliveryGatesSequencer pins uniform delivery at the sequencer:
// a self-assigned global must not reach the application while no other
// member holds the ordering announcement. The sequencer multicasts into a
// blackout (both peers' hosts down), so its announcement reaches nobody —
// delivery at the sequencer must stall, and resume only after the peers heal
// and repair the stream (at which point their acks complete a majority).
func TestUniformDeliveryGatesSequencer(t *testing.T) {
	c := newCluster(t, 3, 41, func(cfg *Config) {
		// Far beyond the blackout window: the view must not change, or a
		// two-member (even single-member) majority would release delivery.
		cfg.FailTimeout = 30 * sim.Second
	})
	c.k.ScheduleAt(sim.Second, func() {
		c.net.Host(2).SetDown(true)
		c.net.Host(3).SetDown(true)
	})
	c.castAt(sim.Second+100*sim.Millisecond, 1, []byte("uniform"))
	c.run(2 * sim.Second)
	if got := c.stacks[1].Stats().Delivered; got != 0 {
		t.Fatalf("sequencer delivered %d messages while no member held its announcement", got)
	}
	c.net.Host(2).SetDown(false)
	c.net.Host(3).SetDown(false)
	c.run(12 * sim.Second)
	c.checkAgreement(nodes(3), 1)
	if got := c.stacks[1].Stats().Delivered; got != 1 {
		t.Fatalf("sequencer delivered %d messages after the majority healed, want 1", got)
	}
}

// TestUniformDeliveryCrashLeavesNoSuffix pins the exact divergence the gate
// exists to prevent: the sequencer orders a message nobody else received and
// crashes. Before uniform delivery it would have delivered the message
// first, leaving a committed suffix the survivors — who renumber without the
// lost announcement — could never reproduce (a non-prefix log divergence).
// Now its delivered log must stay a prefix of the survivors': here, empty.
func TestUniformDeliveryCrashLeavesNoSuffix(t *testing.T) {
	c := newCluster(t, 3, 43, func(cfg *Config) {
		cfg.FailTimeout = 500 * sim.Millisecond
	})
	c.k.ScheduleAt(sim.Second, func() {
		c.net.Host(2).SetDown(true)
		c.net.Host(3).SetDown(true)
	})
	c.castAt(sim.Second+100*sim.Millisecond, 1, []byte("doomed"))
	c.crashNode(1500*sim.Millisecond, 1)
	c.k.ScheduleAt(2*sim.Second, func() {
		c.net.Host(2).SetDown(false)
		c.net.Host(3).SetDown(false)
	})
	c.run(15 * sim.Second)
	if got := c.stacks[1].Stats().Delivered; got != 0 {
		t.Fatalf("crashed sequencer delivered %d messages no survivor can reconstruct", got)
	}
	// Survivors agree with each other and never see the lost message.
	c.checkAgreement([]NodeID{2, 3}, 0)
	if len(c.views[2]) == 0 {
		t.Fatal("survivors never installed a view excluding the crashed sequencer")
	}
}

// TestAssignAcksReplaceGossipLatency pins the fast ack path: under ordinary
// fault-free traffic, receivers acknowledge ordering announcements directly
// (AssignAcks > 0) instead of leaving the sequencer to wait out a stability
// gossip period, and the sequencer itself never acks its own stream.
func TestAssignAcksReplaceGossipLatency(t *testing.T) {
	c := newCluster(t, 3, 47, nil)
	for i := 0; i < 10; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte("m"))
	}
	c.run(5 * sim.Second)
	c.checkAgreement(nodes(3), 10)
	if got := c.stacks[2].Stats().AssignAcks; got == 0 {
		t.Fatal("receiver never acked an ordering announcement")
	}
	if got := c.stacks[1].Stats().AssignAcks; got != 0 {
		t.Fatalf("sequencer sent %d acks for its own announcements", got)
	}
}
