package gcs

import "repro/internal/runtimeapi"

// stability implements the scalable stability detection protocol of
// Section 3.4: asynchronous rounds gossiping (i) a vector S of sequence
// numbers of known stable messages, (ii) a set W of processes that have
// voted in the current round, and (iii) a vector M of sequence numbers of
// messages already received by all voters. When W includes all operational
// processes, S is updated from M. Because each member contributes its
// contiguous received prefix, a round can only garbage collect contiguous
// sequences of messages received by all participants — the property behind
// the paper's observed blocking under independent random loss.
type stability struct {
	s      *Stack
	round  uint64
	w      uint32
	m      map[NodeID]uint64 // min contiguous among voters
	stable map[NodeID]uint64 // S
	timer  runtimeapi.Timer

	// vecScratch backs the three wire vectors of a gossip tick. Only the
	// pre-marshal staging is reused: the marshaled wire buffer itself is
	// owned by the network after transmit (zero-copy handoff) and is
	// allocated per message.
	vecScratch []uint64
	// gossipScratch is the reusable decode target for incoming gossip;
	// onGossip consumes it synchronously.
	gossipScratch gossipMsg
}

func newStability(s *Stack) *stability {
	st := &stability{
		s:      s,
		stable: make(map[NodeID]uint64),
	}
	st.beginRound(1)
	return st
}

// startTimer begins periodic gossip.
func (st *stability) startTimer() { st.scheduleTick() }

func (st *stability) scheduleTick() {
	st.timer = st.s.rt.Schedule(st.s.cfg.StabilityPeriod, func() {
		st.tick()
		if !st.s.stopped {
			st.scheduleTick()
		}
	})
}

// beginRound resets round state with only the local vote. The M map is
// reused across rounds (keys left over from departed members are harmless:
// every reader iterates the current view).
func (st *stability) beginRound(r uint64) {
	st.round = r
	st.w = 1 << uint(st.s.rank)
	if st.m == nil {
		st.m = make(map[NodeID]uint64, len(st.s.view.Members))
	}
	for _, p := range st.s.view.Members {
		st.m[p] = st.s.rm.contiguous(p)
	}
}

// fullMask is the voter bitmask covering all current view members.
func (st *stability) fullMask() uint32 {
	return (1 << uint(len(st.s.view.Members))) - 1
}

// tick gossips the current round state to the group.
func (st *stability) tick() {
	if st.s.stopped {
		return
	}
	members := st.s.view.Members
	n := len(members)
	if cap(st.vecScratch) < 3*n {
		st.vecScratch = make([]uint64, 3*n)
	}
	vs := st.vecScratch[:3*n]
	g := gossipMsg{
		ViewID: st.s.view.ID,
		Round:  st.round,
		W:      st.w,
		M:      vs[:n],
		S:      vs[n : 2*n],
		H:      vs[2*n:],
	}
	for i, p := range members {
		g.M[i] = st.m[p]
		g.S[i] = st.stable[p]
		g.H[i] = st.s.rm.contiguous(p)
	}
	st.s.stats.Gossips++
	st.s.transmit(g.marshal(make([]byte, 0, 19+24*n)))
	st.s.memb.sentSomething()
}

// onGossip merges a peer's round state.
func (st *stability) onGossip(src NodeID, g *gossipMsg) {
	if g.ViewID != st.s.view.ID || len(g.M) != len(st.s.view.Members) {
		return
	}
	st.s.rt.Charge(st.s.cfg.Costs.PerGossip)
	// Credit replenishment: g.H[my rank] is src's contiguous prefix of my
	// own stream — its acknowledgement cursor for the sender-side credit
	// gate. An advance may release chunks blocked on src's credit.
	creditAdvanced := false
	if src != st.s.cfg.Self && len(g.H) == len(st.s.view.Members) &&
		st.s.rank >= 0 && st.s.rank < len(g.H) {
		creditAdvanced = st.s.rm.creditAck(src, g.H[st.s.rank])
	}
	// Stability knowledge is monotone: always merge S.
	advanced := false
	for i, p := range st.s.view.Members {
		if g.S[i] > st.stable[p] {
			st.stable[p] = g.S[i]
			advanced = true
		}
	}
	// Learn stream horizons: another member has received further into p's
	// stream than we have — a tail loss no data packet would reveal.
	if len(g.H) == len(st.s.view.Members) {
		for i, p := range st.s.view.Members {
			if p == st.s.cfg.Self {
				continue
			}
			if g.H[i] > st.s.rm.contiguous(p) {
				st.s.rm.learnHorizon(p, g.H[i])
			}
		}
	}
	switch {
	case g.Round > st.round:
		// Join the newer round: adopt its state plus my vote, taking
		// elementwise minima against my contiguous received prefixes.
		st.round = g.Round
		st.w = g.W | 1<<uint(st.s.rank)
		for i, p := range st.s.view.Members {
			v := g.M[i]
			if lc := st.s.rm.contiguous(p); lc < v {
				v = lc
			}
			st.m[p] = v
		}
	case g.Round == st.round:
		st.w |= g.W
		for i, p := range st.s.view.Members {
			v := g.M[i]
			if cur, ok := st.m[p]; ok && cur < v {
				v = cur
			}
			st.m[p] = v
		}
	}
	if st.w == st.fullMask() {
		// Round complete: everything in M is stable.
		for _, p := range st.s.view.Members {
			if st.m[p] > st.stable[p] {
				st.stable[p] = st.m[p]
				advanced = true
			}
		}
		st.beginRound(st.round + 1)
	}
	if advanced {
		st.gcAdvance()
	}
	if creditAdvanced {
		// The horizon is also the uniform-delivery ack fallback: a lost
		// assign-ack delays the sequencer's delivery by at most one gossip
		// period.
		st.s.to.advanceAnnounceSafe()
		st.s.rm.drain()
	}
}

// gcAdvance releases buffers for newly stable prefixes.
func (st *stability) gcAdvance() {
	for _, p := range st.s.view.Members {
		st.s.rm.gcStable(p, st.stable[p])
	}
}

// resetForView restarts rounds over the new membership. Stable knowledge for
// surviving members carries over.
func (st *stability) resetForView() {
	st.beginRound(1)
}

// resetPeer pins a member's stable horizon — to zero at survivors admitting
// a fresh incarnation (its new stream restarts at 1; carrying the dead
// incarnation's stability over would garbage-collect the new chunks before
// delivery), or to the flush target at the joiner itself (everything below
// is covered by its snapshot and must never be NACKed or buffered).
func (st *stability) resetPeer(p NodeID, upto uint64) {
	st.stable[p] = upto
	if st.m != nil {
		st.m[p] = upto
	}
}

// stableSeq reports the known-stable prefix of p's stream (for tests and
// introspection).
func (st *stability) stableSeq(p NodeID) uint64 { return st.stable[p] }
