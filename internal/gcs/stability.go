package gcs

import "repro/internal/runtimeapi"

// stability implements the scalable stability detection protocol of
// Section 3.4: asynchronous rounds gossiping (i) a vector S of sequence
// numbers of known stable messages, (ii) a set W of processes that have
// voted in the current round, and (iii) a vector M of sequence numbers of
// messages already received by all voters. When W includes all operational
// processes, S is updated from M. Because each member contributes its
// contiguous received prefix, a round can only garbage collect contiguous
// sequences of messages received by all participants — the property behind
// the paper's observed blocking under independent random loss.
type stability struct {
	s      *Stack
	round  uint64
	w      uint32
	m      map[NodeID]uint64 // min contiguous among voters
	stable map[NodeID]uint64 // S
	timer  runtimeapi.Timer
}

func newStability(s *Stack) *stability {
	st := &stability{
		s:      s,
		stable: make(map[NodeID]uint64),
	}
	st.beginRound(1)
	return st
}

// startTimer begins periodic gossip.
func (st *stability) startTimer() { st.scheduleTick() }

func (st *stability) scheduleTick() {
	st.timer = st.s.rt.Schedule(st.s.cfg.StabilityPeriod, func() {
		st.tick()
		if !st.s.stopped {
			st.scheduleTick()
		}
	})
}

// beginRound resets round state with only the local vote.
func (st *stability) beginRound(r uint64) {
	st.round = r
	st.w = 1 << uint(st.s.rank)
	st.m = st.localContig()
}

// localContig snapshots this member's contiguous received prefix per sender.
func (st *stability) localContig() map[NodeID]uint64 {
	m := make(map[NodeID]uint64, len(st.s.view.Members))
	for _, p := range st.s.view.Members {
		m[p] = st.s.rm.contiguous(p)
	}
	return m
}

// fullMask is the voter bitmask covering all current view members.
func (st *stability) fullMask() uint32 {
	return (1 << uint(len(st.s.view.Members))) - 1
}

// tick gossips the current round state to the group.
func (st *stability) tick() {
	if st.s.stopped {
		return
	}
	g := gossipMsg{
		ViewID: st.s.view.ID,
		Round:  st.round,
		W:      st.w,
		M:      st.vector(st.m),
		S:      st.vector(st.stable),
		H:      st.vector(st.localContig()),
	}
	st.s.stats.Gossips++
	st.s.transmit(g.marshal(make([]byte, 0, 19+24*len(st.s.view.Members))))
	st.s.memb.sentSomething()
}

// vector orders a per-member map by current view member order for the wire.
func (st *stability) vector(m map[NodeID]uint64) []uint64 {
	v := make([]uint64, len(st.s.view.Members))
	for i, p := range st.s.view.Members {
		v[i] = m[p]
	}
	return v
}

// onGossip merges a peer's round state.
func (st *stability) onGossip(g *gossipMsg) {
	if g.ViewID != st.s.view.ID || len(g.M) != len(st.s.view.Members) {
		return
	}
	st.s.rt.Charge(st.s.cfg.Costs.PerGossip)
	// Stability knowledge is monotone: always merge S.
	advanced := false
	for i, p := range st.s.view.Members {
		if g.S[i] > st.stable[p] {
			st.stable[p] = g.S[i]
			advanced = true
		}
	}
	// Learn stream horizons: another member has received further into p's
	// stream than we have — a tail loss no data packet would reveal.
	if len(g.H) == len(st.s.view.Members) {
		for i, p := range st.s.view.Members {
			if p == st.s.cfg.Self {
				continue
			}
			if g.H[i] > st.s.rm.contiguous(p) {
				st.s.rm.learnHorizon(p, g.H[i])
			}
		}
	}
	switch {
	case g.Round > st.round:
		// Join the newer round: adopt its state plus my vote.
		st.round = g.Round
		st.w = g.W | 1<<uint(st.s.rank)
		st.m = st.minMerge(g.M, st.localContig())
	case g.Round == st.round:
		st.w |= g.W
		st.m = st.minMerge(g.M, st.m)
	}
	if st.w == st.fullMask() {
		// Round complete: everything in M is stable.
		for _, p := range st.s.view.Members {
			if st.m[p] > st.stable[p] {
				st.stable[p] = st.m[p]
				advanced = true
			}
		}
		st.beginRound(st.round + 1)
	}
	if advanced {
		st.gcAdvance()
	}
}

// minMerge combines a wire vector with a local map, taking elementwise
// minima (messages received by *all* voters).
func (st *stability) minMerge(wire []uint64, local map[NodeID]uint64) map[NodeID]uint64 {
	out := make(map[NodeID]uint64, len(st.s.view.Members))
	for i, p := range st.s.view.Members {
		v := wire[i]
		if lv, ok := local[p]; ok && lv < v {
			v = lv
		}
		out[p] = v
	}
	return out
}

// gcAdvance releases buffers for newly stable prefixes.
func (st *stability) gcAdvance() {
	for _, p := range st.s.view.Members {
		st.s.rm.gcStable(p, st.stable[p])
	}
}

// resetForView restarts rounds over the new membership. Stable knowledge for
// surviving members carries over.
func (st *stability) resetForView() {
	st.beginRound(1)
}

// stableSeq reports the known-stable prefix of p's stream (for tests and
// introspection).
func (st *stability) stableSeq(p NodeID) uint64 { return st.stable[p] }
