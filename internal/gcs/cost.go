package gcs

import "repro/internal/sim"

// CostModel declares the CPU consumption of the protocol's real code under
// the deterministic profiler (see csrt.ModelProfiler). Under a wall-clock
// profiler these charges are ignored and actual execution time is measured
// instead. Values are calibrated so that protocol CPU usage lands in the
// band the paper reports (Figure 7c: ~1.2% of one CPU at 3 sites and 750
// clients, rising to ~1.9% under 5% message loss).
type CostModel struct {
	// PerMessage is the fixed cost of handling one protocol message
	// (demultiplex, header decode, bookkeeping).
	PerMessage sim.Time
	// PerByte is the marshaling/copy cost per payload byte, in
	// nanoseconds per byte.
	PerByte float64
	// PerGossip is the cost of merging one stability gossip round state.
	PerGossip sim.Time
	// PerAssign is the sequencer's cost of assigning one global sequence
	// number.
	PerAssign sim.Time
	// PerNack is the receiver's cost of scanning for gaps and building a
	// repair request.
	PerNack sim.Time
	// PerRetrans is the sender's cost of serving one retransmission:
	// locating the buffered message and rebuilding the packet. This is
	// the "extra work by the protocol in retransmitting messages" behind
	// the CPU increase of Figure 7(c).
	PerRetrans sim.Time
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		PerMessage: 12 * sim.Microsecond,
		PerByte:    3,
		PerGossip:  5 * sim.Microsecond,
		PerAssign:  2 * sim.Microsecond,
		PerNack:    60 * sim.Microsecond,
		PerRetrans: 150 * sim.Microsecond,
	}
}

// msgCost computes the handling cost of an n-byte message.
func (c CostModel) msgCost(n int) sim.Time {
	return c.PerMessage + sim.Time(c.PerByte*float64(n))
}
