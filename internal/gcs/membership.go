package gcs

import (
	"sort"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// Membership / view synchrony states.
const (
	membStable   = iota // normal operation
	membFlushing        // received a proposal, frozen, acked
	membDeciding        // received the decision, repairing to flush targets
)

// membership maintains views (Section 3.4): a heartbeat-based failure
// detector triggers a coordinator-driven agreement on the next view. The
// protocol imposes negligible overhead during stable operation. View changes
// flush the reliable layer so that all surviving members deliver the same
// set of messages before the new view is installed (view synchrony), and the
// sequencer is replaced if it failed.
type membership struct {
	s *Stack

	lastHeard map[NodeID]sim.Time
	lastSent  sim.Time
	suspected map[NodeID]bool
	state     int

	// Coordinator state.
	proposing   bool
	proposal    *proposeMsg
	acks        map[NodeID]*flushAckMsg
	decision    *decideMsg
	installAcks map[NodeID]bool
	retryTimer  runtimeapi.Timer

	// Member state.
	pendingDecide *decideMsg
	// flushProposer is the coordinator of the view change this member is
	// frozen for; if it dies mid-change the member abandons the change so
	// the next coordinator's proposal is not ignored.
	flushProposer NodeID

	// Join (recovery) state. pendingJoiners are restarted nodes asking for
	// admission; pendingJoinSync buffers a catch-up announcement that
	// arrived before this node finished installing its join view;
	// joinTicking guards against running two join-request tick chains.
	pendingJoiners  map[NodeID]bool
	pendingJoinSync *joinSyncMsg
	joinTicking     bool
}

func newMembership(s *Stack) *membership {
	return &membership{
		s:              s,
		lastHeard:      make(map[NodeID]sim.Time),
		suspected:      make(map[NodeID]bool),
		pendingJoiners: make(map[NodeID]bool),
	}
}

// startTimers begins failure detection and heartbeating.
func (mb *membership) startTimers() {
	now := mb.s.rt.Now()
	for _, p := range mb.s.view.Members {
		mb.lastHeard[p] = now
	}
	mb.scheduleFD()
	mb.scheduleHB()
}

func (mb *membership) scheduleFD() {
	mb.s.rt.Schedule(mb.s.cfg.FailTimeout/4, func() {
		mb.fdTick()
		if !mb.s.stopped {
			mb.scheduleFD()
		}
	})
}

func (mb *membership) scheduleHB() {
	mb.s.rt.Schedule(mb.s.cfg.HeartbeatPeriod, func() {
		mb.hbTick()
		if !mb.s.stopped {
			mb.scheduleHB()
		}
	})
}

// heard records liveness evidence for a peer.
func (mb *membership) heard(p NodeID) {
	mb.lastHeard[p] = mb.s.rt.Now()
}

// sentSomething suppresses the next heartbeat if other traffic flowed.
func (mb *membership) sentSomething() {
	mb.lastSent = mb.s.rt.Now()
}

// dataProgress is invoked by the reliable layer on every stream advance so
// a pending view installation can re-check its flush condition.
func (mb *membership) dataProgress() {
	if mb.state == membDeciding {
		mb.checkInstall()
	}
}

// hbTick emits a heartbeat when the member has been silent.
func (mb *membership) hbTick() {
	if mb.s.stopped {
		return
	}
	now := mb.s.rt.Now()
	if now-mb.lastSent >= mb.s.cfg.HeartbeatPeriod {
		hb := heartbeatMsg{ViewID: mb.s.view.ID}
		mb.s.transmit(hb.marshal(make([]byte, 0, 5)))
		mb.lastSent = now
	}
}

// fdTick suspects members that have been silent beyond the timeout.
func (mb *membership) fdTick() {
	if mb.s.stopped {
		return
	}
	now := mb.s.rt.Now()
	changed := false
	for _, p := range mb.s.view.Members {
		if p == mb.s.cfg.Self || mb.suspected[p] {
			continue
		}
		if now-mb.lastHeard[p] > mb.s.cfg.FailTimeout {
			mb.suspected[p] = true
			changed = true
		}
	}
	// The abandon check runs every tick, not only on fresh suspicions: the
	// flush proposer may have been suspected before its (retransmitted)
	// proposal even arrived, in which case no later tick would ever flag a
	// change while this member sits frozen waiting on a dead coordinator.
	abandoned := false
	if mb.state != membStable && mb.suspected[mb.flushProposer] {
		// The coordinator of the in-flight view change died mid-change:
		// no decision (or no further retransmission) will ever come from
		// it. Abandon the frozen change so the next coordinator's
		// proposal is acted on rather than dropped by the state gate.
		mb.state = membStable
		mb.pendingDecide = nil
		abandoned = true
		mb.s.stats.FlushAbandons++
	}
	if !changed && !abandoned {
		return
	}
	if mb.quorumLost() {
		// Primary-component rule: this member is on the minority side of
		// a partition. Wedge instead of installing a minority view —
		// committing anything here could diverge from the primary
		// component that keeps running on the other side.
		mb.s.stats.QuorumLosses++
		mb.s.halt()
		return
	}
	mb.maybeInitiate()
}

// quorumLost reports whether, under the primary-component rule, the
// unsuspected members no longer form a strict majority of the current view.
func (mb *membership) quorumLost() bool {
	if !mb.s.cfg.PrimaryComponent {
		return false
	}
	return 2*len(mb.alive()) <= len(mb.s.view.Members)
}

// alive lists current members not suspected, sorted.
func (mb *membership) alive() []NodeID {
	out := make([]NodeID, 0, len(mb.s.view.Members))
	for _, p := range mb.s.view.Members {
		if !mb.suspected[p] {
			out = append(out, p)
		}
	}
	return out
}

// joinerList returns the pending joiners, sorted, dropping any that made it
// into the current view in the meantime.
func (mb *membership) joinerList() []NodeID {
	out := make([]NodeID, 0, len(mb.pendingJoiners))
	for p := range mb.pendingJoiners {
		if !mb.s.view.Contains(p) || mb.suspected[p] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maybeInitiate starts a view change if this member is the lowest-ranked
// live member (the coordinator) and there is something to change: a
// suspected member to exclude or a joiner to admit.
func (mb *membership) maybeInitiate() {
	if mb.state != membStable || mb.proposing {
		return
	}
	alive := mb.alive()
	if len(alive) == 0 || alive[0] != mb.s.cfg.Self {
		return
	}
	joiners := mb.joinerList()
	if len(joiners) == 0 && len(alive) == len(mb.s.view.Members) {
		return
	}
	mb.proposing = true
	mb.proposal = &proposeMsg{
		NewViewID: mb.s.view.ID + 1,
		Proposer:  mb.s.cfg.Self,
		Members:   alive,
		Joiners:   joiners,
	}
	mb.acks = make(map[NodeID]*flushAckMsg)
	mb.installAcks = make(map[NodeID]bool)
	mb.decision = nil
	mb.broadcastProposal()
	mb.armRetry()
}

func (mb *membership) broadcastProposal() {
	wire := mb.proposal.marshal(make([]byte, 0, 64))
	for _, p := range mb.proposal.Members {
		if p == mb.s.cfg.Self {
			continue
		}
		if mb.acks[p] == nil {
			mb.s.transmitTo(p, wire)
		}
	}
	// Handle my own proposal locally.
	mb.onPropose(mb.proposal)
}

func (mb *membership) armRetry() {
	if mb.retryTimer != nil {
		return
	}
	mb.retryTimer = mb.s.rt.Schedule(mb.s.cfg.RetransPeriod, func() {
		mb.retryTimer = nil
		mb.retryTick()
	})
}

// retryTick retransmits coordinator messages until everyone progressed. A
// member that dies mid-change must not wedge it: in the flush phase the
// proposal is re-issued without newly suspected members, and in the install
// phase suspected members are given up on (the next view change excludes
// them).
func (mb *membership) retryTick() {
	if mb.s.stopped || !mb.proposing {
		return
	}
	if mb.decision == nil {
		kept := mb.proposal.Members[:0]
		for _, p := range mb.proposal.Members {
			if p == mb.s.cfg.Self || !mb.suspected[p] {
				kept = append(kept, p)
			}
		}
		mb.proposal.Members = kept
		mb.broadcastProposal()
		mb.checkFlushComplete()
		if mb.decision == nil {
			mb.armRetry()
		}
		return
	}
	allInstalled := true
	wire := mb.decision.marshal(make([]byte, 0, 128))
	for _, p := range mb.decision.Members {
		if p == mb.s.cfg.Self || mb.installAcks[p] || mb.suspected[p] {
			continue
		}
		allInstalled = false
		mb.s.transmitTo(p, wire)
	}
	for _, p := range mb.decision.Joiners {
		if mb.installAcks[p] || mb.suspected[p] {
			continue
		}
		allInstalled = false
		mb.s.transmitTo(p, wire)
	}
	if allInstalled {
		mb.proposing = false
		return
	}
	mb.armRetry()
}

// onPropose handles a view-change proposal: freeze transmissions and answer
// with the local receive state (the flush snapshot).
func (mb *membership) onPropose(m *proposeMsg) {
	if m.NewViewID <= mb.s.view.ID {
		// Stale: that view is already installed here.
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
		return
	}
	if mb.state == membDeciding {
		return // already past the flush phase for a pending view
	}
	mb.state = membFlushing
	mb.flushProposer = m.Proposer
	mb.s.rm.freeze()
	// Members absent from the proposal are the suspected ones.
	present := make(map[NodeID]bool, len(m.Members))
	for _, p := range m.Members {
		present[p] = true
	}
	for _, p := range mb.s.view.Members {
		if !present[p] {
			mb.suspected[p] = true
		}
	}
	ack := flushAckMsg{NewViewID: m.NewViewID}
	for _, p := range mb.s.view.Members {
		ack.Contig = append(ack.Contig, memberSeq{Member: p, Seq: mb.s.rm.contiguous(p)})
	}
	if m.Proposer == mb.s.cfg.Self {
		mb.onFlushAck(mb.s.cfg.Self, &ack)
	} else {
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 7+12*len(ack.Contig))))
	}
}

// onFlushAck (coordinator) collects flush snapshots.
func (mb *membership) onFlushAck(src NodeID, m *flushAckMsg) {
	if !mb.proposing || mb.proposal == nil || m.NewViewID != mb.proposal.NewViewID || mb.decision != nil {
		return
	}
	mb.acks[src] = m
	mb.checkFlushComplete()
}

// checkFlushComplete decides once every proposed member answered: compute
// per-sender flush targets — the highest contiguous sequence any survivor
// holds for each old-view stream, and who holds it — and broadcast the
// decision to survivors and joiners alike.
func (mb *membership) checkFlushComplete() {
	if !mb.proposing || mb.decision != nil {
		return
	}
	for _, p := range mb.proposal.Members {
		if mb.acks[p] == nil {
			return
		}
	}
	targets := make([]flushTarget, 0, len(mb.s.view.Members))
	for _, p := range mb.s.view.Members {
		var best uint64
		holder := mb.s.cfg.Self
		for _, q := range mb.proposal.Members {
			ack := mb.acks[q]
			for _, c := range ack.Contig {
				if c.Member == p && c.Seq > best {
					best = c.Seq
					holder = q
				}
			}
		}
		targets = append(targets, flushTarget{Member: p, Seq: best, Holder: holder})
	}
	mb.decision = &decideMsg{
		NewViewID: mb.proposal.NewViewID,
		Proposer:  mb.s.cfg.Self,
		Members:   mb.proposal.Members,
		Joiners:   mb.proposal.Joiners,
		Targets:   targets,
	}
	wire := mb.decision.marshal(make([]byte, 0, 128))
	for _, p := range mb.decision.Members {
		if p != mb.s.cfg.Self {
			mb.s.transmitTo(p, wire)
		}
	}
	for _, p := range mb.decision.Joiners {
		mb.s.transmitTo(p, wire)
	}
	mb.onDecide(mb.decision)
	mb.armRetry()
}

// onDecide moves to the repair phase: fetch everything up to the flush
// targets, then install. A node listed as a joiner skips repair entirely —
// it holds no old-view state; the flush targets instead seed its stream
// cursors and the database below them arrives by state transfer.
func (mb *membership) onDecide(m *decideMsg) {
	if m.NewViewID <= mb.s.view.ID {
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
		return
	}
	for _, j := range m.Joiners {
		if j == mb.s.cfg.Self {
			mb.installJoin(m)
			return
		}
	}
	if mb.s.joining {
		// A concurrent view change that does not admit this node (it may
		// even still list the dead predecessor as a member): nothing to
		// act on — the join request keeps retrying against the new view.
		return
	}
	if mb.state == membDeciding {
		return
	}
	if mb.state == membStable {
		mb.s.rm.freeze()
	}
	mb.state = membDeciding
	mb.flushProposer = m.Proposer
	mb.pendingDecide = m
	for _, t := range m.Targets {
		if t.Member == mb.s.cfg.Self {
			continue
		}
		mb.s.rm.requestRepairTo(t.Member, t.Seq, t.Holder)
	}
	mb.checkInstall()
}

// checkInstall installs the pending view once every old stream has been
// received up to its flush target. The new view lists the survivors in their
// old relative order followed by the joiners: a joiner can therefore never
// be the sequencer of the view that admits it (it lacks the ordering state),
// while survivor ranks — and with them the sequencer — are untouched.
func (mb *membership) checkInstall() {
	m := mb.pendingDecide
	if m == nil {
		return
	}
	for _, t := range m.Targets {
		if mb.s.rm.contiguous(t.Member) < t.Seq {
			return
		}
	}
	mb.pendingDecide = nil
	oldSequencer := mb.s.view.Sequencer()

	newMembers := make([]NodeID, 0, len(m.Members)+len(m.Joiners))
	newMembers = append(newMembers, m.Members...)
	newMembers = append(newMembers, m.Joiners...)

	targets := make(map[NodeID]uint64, len(m.Targets))
	inNew := make(map[NodeID]bool, len(newMembers))
	joiner := make(map[NodeID]bool, len(m.Joiners))
	for _, p := range newMembers {
		inNew[p] = true
	}
	for _, p := range m.Joiners {
		joiner[p] = true
	}
	for _, t := range m.Targets {
		targets[t.Member] = t.Seq
		switch {
		case joiner[t.Member]:
			// A fresh incarnation readmitted in the same change that
			// excludes its dead predecessor: the old stream's tail
			// beyond the flush target dies with it.
			mb.s.to.purgeSender(t.Member, t.Seq)
		case !inNew[t.Member]:
			mb.s.to.purgeSender(t.Member, t.Seq)
			mb.s.rm.excludePeer(t.Member, t.Seq)
		}
	}

	mb.s.view = View{ID: m.NewViewID, Members: newMembers}
	mb.s.rank = mb.s.indexOf(mb.s.cfg.Self)
	mb.s.stats.ViewChanges++
	mb.state = membStable
	mb.suspected = make(map[NodeID]bool)
	now := mb.s.rt.Now()
	for _, p := range newMembers {
		mb.lastHeard[p] = now
	}
	// Admitted joiners start over: fresh incarnation, fresh stream, no
	// stability carried over from their previous life.
	for _, j := range m.Joiners {
		mb.s.rm.resetPeer(j, 0)
		mb.s.stab.resetPeer(j, 0)
		delete(mb.pendingJoiners, j)
	}

	if mb.s.rank < 0 {
		// Excluded from the view: halt.
		mb.s.halt()
		return
	}
	mb.s.stab.resetForView()
	if !inNew[oldSequencer] {
		// The dying sequencer's final announcement batches can have been
		// processed by a strict subset of the survivors while frozen. Roll
		// back everything beyond its flush-agreed target BEFORE unfreezing
		// (unfreeze can trigger deliveries) so every survivor renumbers
		// from the same base in onInstall.
		if t, agreed := targets[oldSequencer]; agreed {
			mb.s.to.rollbackUnagreed(oldSequencer, t)
		}
	}
	// Unfreeze before the ordering layer runs: deliveries paused for the
	// view change resume only once the reliable layer accepts traffic
	// again, and the deferred assignments made in onInstall must be able
	// to drain.
	mb.s.rm.unfreeze()
	mb.s.to.onInstall(oldSequencer, !inNew[oldSequencer], targets)
	if m.Proposer != mb.s.cfg.Self {
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
	} else {
		mb.installAcks[mb.s.cfg.Self] = true
	}
	if mb.s.IsSequencer() {
		// Tell each joiner its catch-up sequence: by install time every
		// old-view message has an assignment here (install waits for the
		// full flush), so maxAssigned bounds everything the joiner can
		// never receive through the streams.
		for _, j := range m.Joiners {
			mb.sendJoinSync(j)
		}
	}
	if mb.s.onView != nil {
		mb.s.onView(mb.s.view)
	}
}

// onInstalled (coordinator) tracks completion of the view change.
func (mb *membership) onInstalled(src NodeID, m *installedMsg) {
	if !mb.proposing || mb.decision == nil || m.NewViewID != mb.decision.NewViewID {
		return
	}
	mb.installAcks[src] = true
	for _, p := range mb.decision.Members {
		if !mb.installAcks[p] && p != mb.s.cfg.Self && !mb.suspected[p] {
			return
		}
	}
	for _, p := range mb.decision.Joiners {
		if !mb.installAcks[p] && !mb.suspected[p] {
			return
		}
	}
	mb.proposing = false
}

// startJoin begins the admission loop of a recovering node: periodically
// multicast a join request until a view admits us and the sequencer's
// joinSync announces the catch-up sequence.
func (mb *membership) startJoin() {
	mb.ensureJoinTick()
}

// ensureJoinTick (re)starts the periodic join request without ever running
// two tick chains at once.
func (mb *membership) ensureJoinTick() {
	if !mb.joinTicking {
		mb.joinTick()
	}
}

func (mb *membership) joinTick() {
	s := mb.s
	if s.stopped || (!s.joining && s.joinSynced) {
		mb.joinTicking = false
		return
	}
	mb.joinTicking = true
	req := joinReqMsg{Node: s.cfg.Self}
	if !s.joining {
		// Admitted but still waiting for the catch-up sequence: the
		// nonzero installed view tells the sequencer to resend it rather
		// than start another view change.
		req.Installed = s.view.ID
	}
	s.stats.JoinRequests++
	s.transmit(req.marshal(make([]byte, 0, 9)))
	s.rt.StartJob(s.cfg.RetransPeriod, func() { mb.joinTick() })
}

// onJoinReq handles an admission request at a live member.
func (mb *membership) onJoinReq(src NodeID, m *joinReqMsg) {
	s := mb.s
	node := m.Node
	if node != src || node == s.cfg.Self {
		return
	}
	if s.view.Contains(node) {
		if m.Installed != 0 {
			// An admitted member that lost its joinSync: resend. Only
			// the sequencer knows the order, so only it answers.
			if s.IsSequencer() {
				mb.sendJoinSync(node)
			}
			return
		}
		// A fresh incarnation of a node the view still lists: its dead
		// predecessor was never excluded (it restarted faster than the
		// failure detector). Suspect the ghost so one view change both
		// excludes it and admits the new incarnation.
		if !mb.suspected[node] {
			mb.suspected[node] = true
			mb.lastHeard[node] = 0
		}
	}
	mb.pendingJoiners[node] = true
	mb.maybeInitiate()
}

// sendJoinSync announces a joiner's catch-up sequence: everything at or
// below it must come from a database snapshot; everything above arrives as
// normal deliveries. Any maxAssigned value taken at or after the join
// install is sound — later values only widen the snapshot's coverage — so
// retries simply use the current one.
func (mb *membership) sendJoinSync(dst NodeID) {
	sync := joinSyncMsg{ViewID: mb.s.view.ID, JoinSeq: mb.s.to.maxAssigned}
	mb.s.transmitTo(dst, sync.marshal(make([]byte, 0, 13)))
}

// onJoinSync handles the catch-up announcement at the joiner. It can arrive
// before the decide that admits us (the sequencer may install first); buffer
// it until our own install in that case. After install only an announcement
// for the installed view counts: a retransmission from a view we have since
// been readmitted past would understate the catch-up sequence.
func (mb *membership) onJoinSync(m *joinSyncMsg) {
	s := mb.s
	if s.joinSynced {
		return
	}
	if s.joining {
		mb.pendingJoinSync = m
		return
	}
	if m.ViewID != s.view.ID {
		return
	}
	s.joinSynced = true
	s.joinSeq = m.JoinSeq
	s.to.skipTo(m.JoinSeq)
	if s.onJoined != nil {
		s.onJoined(m.JoinSeq)
	}
}

// installJoin installs the view that admits this joining node. There is no
// repair phase: the flush targets become the stream cursors — everything at
// or below them is covered by the database snapshot this node transfers —
// and normal periodic duty (stability, failure detection, heartbeats)
// starts now.
func (mb *membership) installJoin(m *decideMsg) {
	s := mb.s
	firstInstall := s.joining
	newMembers := make([]NodeID, 0, len(m.Members)+len(m.Joiners))
	newMembers = append(newMembers, m.Members...)
	newMembers = append(newMembers, m.Joiners...)
	s.view = View{ID: m.NewViewID, Members: newMembers}
	s.rank = s.indexOf(s.cfg.Self)
	s.stats.ViewChanges++
	s.stats.Joins++
	mb.state = membStable
	mb.suspected = make(map[NodeID]bool)
	// A second admission (a member mistook our still-joining requests for
	// a fresh restart and excluded-plus-readmitted us) invalidates the
	// earlier catch-up sequence: the cursor jumps below skip message
	// ranges only a newer joinSync can account for. Re-enter the unsynced
	// state and request a fresh announcement.
	s.joinSynced = false
	for _, t := range m.Targets {
		if t.Member == s.cfg.Self {
			continue
		}
		s.rm.resetPeer(t.Member, t.Seq)
		s.stab.resetPeer(t.Member, t.Seq)
	}
	for _, j := range m.Joiners {
		if j == s.cfg.Self {
			// The group reset our stream cursor to zero; restart the
			// local numbering to match (no-op on a first admission).
			s.rm.resetSelf()
			continue
		}
		s.rm.resetPeer(j, 0)
		s.stab.resetPeer(j, 0)
	}
	now := s.rt.Now()
	for _, p := range newMembers {
		mb.lastHeard[p] = now
	}
	s.joining = false
	s.stab.resetForView()
	// A readmitted node may still be frozen from an earlier, abandoned
	// view change; its cursors were just reset, so resume normal flow.
	s.rm.unfreeze()
	if firstInstall {
		s.stab.startTimer()
		mb.scheduleFD()
		mb.scheduleHB()
	}
	ack := installedMsg{NewViewID: m.NewViewID}
	s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
	if s.onView != nil {
		s.onView(s.view)
	}
	if sync := mb.pendingJoinSync; sync != nil {
		mb.pendingJoinSync = nil
		mb.onJoinSync(sync)
	}
	mb.ensureJoinTick()
}
