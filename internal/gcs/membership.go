package gcs

import (
	"sort"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// Membership / view synchrony states.
const (
	membStable   = iota // normal operation
	membFlushing        // received a proposal, frozen, acked
	membDeciding        // received the decision, repairing to flush targets
)

// membership maintains views (Section 3.4): a heartbeat-based failure
// detector triggers a coordinator-driven agreement on the next view. The
// protocol imposes negligible overhead during stable operation. View changes
// flush the reliable layer so that all surviving members deliver the same
// set of messages before the new view is installed (view synchrony), and the
// sequencer is replaced if it failed.
type membership struct {
	s *Stack

	lastHeard map[NodeID]sim.Time
	lastSent  sim.Time
	suspected map[NodeID]bool
	state     int

	// Coordinator state.
	proposing   bool
	proposal    *proposeMsg
	acks        map[NodeID]*flushAckMsg
	decision    *decideMsg
	installAcks map[NodeID]bool
	retryTimer  runtimeapi.Timer

	// Member state.
	pendingDecide *decideMsg
}

func newMembership(s *Stack) *membership {
	return &membership{
		s:         s,
		lastHeard: make(map[NodeID]sim.Time),
		suspected: make(map[NodeID]bool),
	}
}

// startTimers begins failure detection and heartbeating.
func (mb *membership) startTimers() {
	now := mb.s.rt.Now()
	for _, p := range mb.s.view.Members {
		mb.lastHeard[p] = now
	}
	mb.scheduleFD()
	mb.scheduleHB()
}

func (mb *membership) scheduleFD() {
	mb.s.rt.Schedule(mb.s.cfg.FailTimeout/4, func() {
		mb.fdTick()
		if !mb.s.stopped {
			mb.scheduleFD()
		}
	})
}

func (mb *membership) scheduleHB() {
	mb.s.rt.Schedule(mb.s.cfg.HeartbeatPeriod, func() {
		mb.hbTick()
		if !mb.s.stopped {
			mb.scheduleHB()
		}
	})
}

// heard records liveness evidence for a peer.
func (mb *membership) heard(p NodeID) {
	mb.lastHeard[p] = mb.s.rt.Now()
}

// sentSomething suppresses the next heartbeat if other traffic flowed.
func (mb *membership) sentSomething() {
	mb.lastSent = mb.s.rt.Now()
}

// dataProgress is invoked by the reliable layer on every stream advance so
// a pending view installation can re-check its flush condition.
func (mb *membership) dataProgress() {
	if mb.state == membDeciding {
		mb.checkInstall()
	}
}

// hbTick emits a heartbeat when the member has been silent.
func (mb *membership) hbTick() {
	if mb.s.stopped {
		return
	}
	now := mb.s.rt.Now()
	if now-mb.lastSent >= mb.s.cfg.HeartbeatPeriod {
		hb := heartbeatMsg{ViewID: mb.s.view.ID}
		mb.s.transmit(hb.marshal(make([]byte, 0, 5)))
		mb.lastSent = now
	}
}

// fdTick suspects members that have been silent beyond the timeout.
func (mb *membership) fdTick() {
	if mb.s.stopped {
		return
	}
	now := mb.s.rt.Now()
	changed := false
	for _, p := range mb.s.view.Members {
		if p == mb.s.cfg.Self || mb.suspected[p] {
			continue
		}
		if now-mb.lastHeard[p] > mb.s.cfg.FailTimeout {
			mb.suspected[p] = true
			changed = true
		}
	}
	if !changed {
		return
	}
	if mb.quorumLost() {
		// Primary-component rule: this member is on the minority side of
		// a partition. Wedge instead of installing a minority view —
		// committing anything here could diverge from the primary
		// component that keeps running on the other side.
		mb.s.stats.QuorumLosses++
		mb.s.stopped = true
		return
	}
	mb.maybeInitiate()
}

// quorumLost reports whether, under the primary-component rule, the
// unsuspected members no longer form a strict majority of the current view.
func (mb *membership) quorumLost() bool {
	if !mb.s.cfg.PrimaryComponent {
		return false
	}
	return 2*len(mb.alive()) <= len(mb.s.view.Members)
}

// alive lists current members not suspected, sorted.
func (mb *membership) alive() []NodeID {
	out := make([]NodeID, 0, len(mb.s.view.Members))
	for _, p := range mb.s.view.Members {
		if !mb.suspected[p] {
			out = append(out, p)
		}
	}
	return out
}

// maybeInitiate starts a view change if this member is the lowest-ranked
// live member (the coordinator).
func (mb *membership) maybeInitiate() {
	if mb.state != membStable || mb.proposing {
		return
	}
	alive := mb.alive()
	if len(alive) == 0 || alive[0] != mb.s.cfg.Self {
		return
	}
	mb.proposing = true
	mb.proposal = &proposeMsg{
		NewViewID: mb.s.view.ID + 1,
		Proposer:  mb.s.cfg.Self,
		Members:   alive,
	}
	mb.acks = make(map[NodeID]*flushAckMsg)
	mb.installAcks = make(map[NodeID]bool)
	mb.decision = nil
	mb.broadcastProposal()
	mb.armRetry()
}

func (mb *membership) broadcastProposal() {
	wire := mb.proposal.marshal(make([]byte, 0, 64))
	for _, p := range mb.proposal.Members {
		if p == mb.s.cfg.Self {
			continue
		}
		if mb.acks[p] == nil {
			mb.s.transmitTo(p, wire)
		}
	}
	// Handle my own proposal locally.
	mb.onPropose(mb.proposal)
}

func (mb *membership) armRetry() {
	if mb.retryTimer != nil {
		return
	}
	mb.retryTimer = mb.s.rt.Schedule(mb.s.cfg.RetransPeriod, func() {
		mb.retryTimer = nil
		mb.retryTick()
	})
}

// retryTick retransmits coordinator messages until everyone progressed.
func (mb *membership) retryTick() {
	if mb.s.stopped || !mb.proposing {
		return
	}
	if mb.decision == nil {
		mb.broadcastProposal()
		mb.armRetry()
		return
	}
	allInstalled := true
	wire := mb.decision.marshal(make([]byte, 0, 128))
	for _, p := range mb.decision.Members {
		if p == mb.s.cfg.Self {
			continue
		}
		if !mb.installAcks[p] {
			allInstalled = false
			mb.s.transmitTo(p, wire)
		}
	}
	if allInstalled {
		mb.proposing = false
		return
	}
	mb.armRetry()
}

// onPropose handles a view-change proposal: freeze transmissions and answer
// with the local receive state (the flush snapshot).
func (mb *membership) onPropose(m *proposeMsg) {
	if m.NewViewID <= mb.s.view.ID {
		// Stale: that view is already installed here.
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
		return
	}
	if mb.state == membDeciding {
		return // already past the flush phase for a pending view
	}
	mb.state = membFlushing
	mb.s.rm.freeze()
	// Members absent from the proposal are the suspected ones.
	present := make(map[NodeID]bool, len(m.Members))
	for _, p := range m.Members {
		present[p] = true
	}
	for _, p := range mb.s.view.Members {
		if !present[p] {
			mb.suspected[p] = true
		}
	}
	ack := flushAckMsg{NewViewID: m.NewViewID}
	for _, p := range mb.s.view.Members {
		ack.Contig = append(ack.Contig, memberSeq{Member: p, Seq: mb.s.rm.contiguous(p)})
	}
	if m.Proposer == mb.s.cfg.Self {
		mb.onFlushAck(mb.s.cfg.Self, &ack)
	} else {
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 7+12*len(ack.Contig))))
	}
}

// onFlushAck (coordinator) collects flush snapshots; once all proposed
// members answered, compute per-sender flush targets and decide.
func (mb *membership) onFlushAck(src NodeID, m *flushAckMsg) {
	if !mb.proposing || mb.proposal == nil || m.NewViewID != mb.proposal.NewViewID || mb.decision != nil {
		return
	}
	mb.acks[src] = m
	for _, p := range mb.proposal.Members {
		if mb.acks[p] == nil {
			return
		}
	}
	// Compute targets: the highest contiguous sequence any survivor holds
	// for each old-view stream, and who holds it.
	targets := make([]flushTarget, 0, len(mb.s.view.Members))
	for _, p := range mb.s.view.Members {
		var best uint64
		holder := mb.s.cfg.Self
		for _, q := range mb.proposal.Members {
			ack := mb.acks[q]
			for _, c := range ack.Contig {
				if c.Member == p && c.Seq > best {
					best = c.Seq
					holder = q
				}
			}
		}
		targets = append(targets, flushTarget{Member: p, Seq: best, Holder: holder})
	}
	mb.decision = &decideMsg{
		NewViewID: mb.proposal.NewViewID,
		Proposer:  mb.s.cfg.Self,
		Members:   mb.proposal.Members,
		Targets:   targets,
	}
	wire := mb.decision.marshal(make([]byte, 0, 128))
	for _, p := range mb.decision.Members {
		if p != mb.s.cfg.Self {
			mb.s.transmitTo(p, wire)
		}
	}
	mb.onDecide(mb.decision)
	mb.armRetry()
}

// onDecide moves to the repair phase: fetch everything up to the flush
// targets, then install.
func (mb *membership) onDecide(m *decideMsg) {
	if m.NewViewID <= mb.s.view.ID {
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
		return
	}
	if mb.state == membDeciding {
		return
	}
	if mb.state == membStable {
		mb.s.rm.freeze()
	}
	mb.state = membDeciding
	mb.pendingDecide = m
	for _, t := range m.Targets {
		if t.Member == mb.s.cfg.Self {
			continue
		}
		mb.s.rm.requestRepairTo(t.Member, t.Seq, t.Holder)
	}
	mb.checkInstall()
}

// checkInstall installs the pending view once every old stream has been
// received up to its flush target.
func (mb *membership) checkInstall() {
	m := mb.pendingDecide
	if m == nil {
		return
	}
	for _, t := range m.Targets {
		if mb.s.rm.contiguous(t.Member) < t.Seq {
			return
		}
	}
	mb.pendingDecide = nil
	oldSequencer := mb.s.view.Sequencer()

	newMembers := make([]NodeID, len(m.Members))
	copy(newMembers, m.Members)
	sort.Slice(newMembers, func(i, j int) bool { return newMembers[i] < newMembers[j] })

	targets := make(map[NodeID]uint64, len(m.Targets))
	inNew := make(map[NodeID]bool, len(newMembers))
	for _, p := range newMembers {
		inNew[p] = true
	}
	for _, t := range m.Targets {
		targets[t.Member] = t.Seq
		if !inNew[t.Member] {
			mb.s.rm.excludePeer(t.Member, t.Seq)
		}
	}

	mb.s.view = View{ID: m.NewViewID, Members: newMembers}
	mb.s.rank = mb.s.indexOf(mb.s.cfg.Self)
	mb.s.stats.ViewChanges++
	mb.state = membStable
	mb.suspected = make(map[NodeID]bool)
	now := mb.s.rt.Now()
	for _, p := range newMembers {
		mb.lastHeard[p] = now
	}

	if mb.s.rank < 0 {
		// Excluded from the view: halt.
		mb.s.stopped = true
		return
	}
	mb.s.stab.resetForView()
	mb.s.to.onInstall(!inNew[oldSequencer], targets)
	mb.s.rm.unfreeze()
	if m.Proposer != mb.s.cfg.Self {
		ack := installedMsg{NewViewID: m.NewViewID}
		mb.s.transmitTo(m.Proposer, ack.marshal(make([]byte, 0, 5)))
	} else {
		mb.installAcks[mb.s.cfg.Self] = true
	}
	if mb.s.onView != nil {
		mb.s.onView(mb.s.view)
	}
}

// onInstalled (coordinator) tracks completion of the view change.
func (mb *membership) onInstalled(src NodeID, m *installedMsg) {
	if !mb.proposing || mb.decision == nil || m.NewViewID != mb.decision.NewViewID {
		return
	}
	mb.installAcks[src] = true
	for _, p := range mb.decision.Members {
		if !mb.installAcks[p] && p != mb.s.cfg.Self {
			return
		}
	}
	mb.proposing = false
}
