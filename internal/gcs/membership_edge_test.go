package gcs

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestConcurrentViewProposals drives two coordinators into overlapping view
// changes: node 1 (sequencer and coordinator) crashes; node 2 starts the
// exclusion change; node 2 then crashes before the change completes, so
// node 3 must abandon the in-flight change (dead coordinator) and run its
// own proposal. The survivors must converge on one view and identical
// delivery sequences.
func TestConcurrentViewProposals(t *testing.T) {
	c := newCluster(t, 4, 31, func(cfg *Config) {
		cfg.FailTimeout = 400 * sim.Millisecond
	})
	for i := 0; i < 10; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%4+1), []byte(fmt.Sprintf("pre%d", i)))
	}
	c.crashNode(200*sim.Millisecond, 1)
	// Node 2 will initiate the exclusion of 1 at ~600ms (FD timeout);
	// kill it just as the change gets going, leaving its proposal (and
	// possibly its decide) racing node 3's follow-up proposal.
	c.crashNode(650*sim.Millisecond, 2)
	for i := 0; i < 10; i++ {
		c.castAt(4*sim.Second+sim.Time(i+1)*10*sim.Millisecond, NodeID(i%2+3), []byte(fmt.Sprintf("post%d", i)))
	}
	c.run(15 * sim.Second)

	for _, id := range []NodeID{3, 4} {
		v := c.stacks[id].View()
		if len(v.Members) != 2 || v.Contains(1) || v.Contains(2) {
			t.Fatalf("node %d view %+v, want {3,4}", id, v)
		}
		if v.Sequencer() != 3 {
			t.Fatalf("node %d sequencer %d, want 3", id, v.Sequencer())
		}
	}
	c.checkAgreement([]NodeID{3, 4}, -1)
	if len(c.delivered[3]) < 10 {
		t.Fatalf("survivors delivered only %d messages", len(c.delivered[3]))
	}
}

// TestStaleDecideAfterNewerInstall replays a decide for an already-installed
// (older) view into a member that has since moved on: the member must
// acknowledge it (so a lagging coordinator stops retransmitting) without
// touching its current view or ordering state.
func TestStaleDecideAfterNewerInstall(t *testing.T) {
	c := newCluster(t, 3, 32, func(cfg *Config) {
		cfg.FailTimeout = 400 * sim.Millisecond
	})
	for i := 0; i < 6; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%3+1), []byte(fmt.Sprintf("m%d", i)))
	}
	c.crashNode(200*sim.Millisecond, 3)
	c.run(3 * sim.Second)

	st := c.stacks[1]
	v := st.View()
	if v.ID == 0 || v.Contains(3) {
		t.Fatalf("exclusion view not installed: %+v", v)
	}
	delivered := len(c.delivered[1])

	// Replay a stale decide for the already-installed view — as a lossy
	// network could after the coordinator's retransmissions — plus one
	// for the long-gone initial view.
	stale := &decideMsg{
		NewViewID: v.ID,
		Proposer:  2,
		Members:   []NodeID{1, 2},
		Targets:   []flushTarget{{Member: 3, Seq: 1, Holder: 2}},
	}
	c.k.ScheduleAt(4*sim.Second, func() {
		c.rts[1].CPUs().SubmitReal(func() {
			st.memb.onDecide(stale)
			st.memb.onDecide(&decideMsg{NewViewID: 0, Proposer: 2, Members: []NodeID{1, 2}})
		}, nil)
	})
	c.castAt(5*sim.Second, 2, []byte("after-stale"))
	c.run(8 * sim.Second)

	if got := st.View(); got.ID != v.ID || len(got.Members) != len(v.Members) {
		t.Fatalf("stale decide changed the view: %+v -> %+v", v, got)
	}
	if st.memb.state != membStable {
		t.Fatalf("stale decide left membership in state %d", st.memb.state)
	}
	if len(c.delivered[1]) != delivered+1 {
		t.Fatalf("delivery disrupted after stale decide: %d -> %d", delivered, len(c.delivered[1]))
	}
	c.checkAgreement([]NodeID{1, 2}, -1)
}

// TestRetryTickUnderSustainedLoss runs a view change under heavy receiver
// loss: proposals, flush acks, decides, and install acks all need the
// coordinator's retry loop to land. The change must still complete and the
// coordinator's retries must stop once everyone installed (proposing
// clears), rather than nagging forever.
func TestRetryTickUnderSustainedLoss(t *testing.T) {
	c := newCluster(t, 4, 33, func(cfg *Config) {
		// Long enough that 30% independent loss cannot plausibly starve a
		// live member's heartbeats (15 consecutive losses), so the only
		// suspicion is the real crash; short retransmission period so the
		// retry loop, not luck, carries the view change.
		cfg.FailTimeout = 1500 * sim.Millisecond
		cfg.RetransPeriod = 50 * sim.Millisecond
	})
	for _, id := range nodes(4) {
		c.net.Host(id).SetLoss(&simnet.RandomLoss{P: 0.30})
	}
	for i := 0; i < 12; i++ {
		c.castAt(sim.Time(i+1)*10*sim.Millisecond, NodeID(i%4+1), []byte(fmt.Sprintf("m%d", i)))
	}
	c.crashNode(300*sim.Millisecond, 4)
	c.castAt(8*sim.Second, 2, []byte("late"))
	c.run(30 * sim.Second)

	for _, id := range []NodeID{1, 2, 3} {
		v := c.stacks[id].View()
		if v.ID == 0 || v.Contains(4) || len(v.Members) != 3 {
			t.Fatalf("node %d never installed the exclusion view under loss: %+v", id, v)
		}
	}
	// The coordinator must have finished the change: no dangling
	// proposal once all survivors acked their installs.
	if c.stacks[1].memb.proposing {
		t.Fatal("coordinator still proposing long after the view installed everywhere")
	}
	c.checkAgreement([]NodeID{1, 2, 3}, -1)
	if c.stacks[1].Stats().Retransmits == 0 && c.stacks[2].Stats().Retransmits == 0 {
		t.Fatal("expected repair traffic under 30% loss")
	}
}

// TestAbandonDeadCoordinatorAlreadySuspected: a member frozen for a view
// change whose proposer it had suspected BEFORE the (retransmitted)
// proposal arrived must still abandon the change — the abandon check runs
// every failure-detector tick, not only when a fresh suspicion appears.
func TestAbandonDeadCoordinatorAlreadySuspected(t *testing.T) {
	c := newCluster(t, 3, 34, func(cfg *Config) {
		cfg.FailTimeout = 400 * sim.Millisecond
	})
	c.castAt(10*sim.Millisecond, 2, []byte("warm"))
	c.run(200 * sim.Millisecond)

	st3 := c.stacks[3]
	// Stage the race white-box: node 3 already suspects node 1, then the
	// retransmitted proposal from 1 arrives (onPropose does not consult
	// suspicions) and freezes node 3 — and node 1 is dead.
	c.k.ScheduleAt(300*sim.Millisecond, func() {
		c.rts[3].CPUs().SubmitReal(func() {
			st3.memb.suspected[1] = true
			st3.memb.onPropose(&proposeMsg{NewViewID: 1, Proposer: 1, Members: []NodeID{1, 2, 3}})
			if st3.memb.state != membFlushing {
				t.Error("premise broken: propose did not freeze the member")
			}
		}, nil)
	})
	c.crashNode(310*sim.Millisecond, 1)
	c.castAt(4*sim.Second, 2, []byte("after"))
	c.run(10 * sim.Second)

	if st3.memb.state != membStable {
		t.Fatalf("node 3 still frozen (state %d) behind a dead coordinator", st3.memb.state)
	}
	for _, id := range []NodeID{2, 3} {
		v := c.stacks[id].View()
		if v.Contains(1) || len(v.Members) != 2 {
			t.Fatalf("node %d never excluded the dead coordinator: %+v", id, v)
		}
	}
	c.checkAgreement([]NodeID{2, 3}, -1)
}

// TestJoinRequestWireRoundTrip pins the new wire formats.
func TestJoinRequestWireRoundTrip(t *testing.T) {
	req := joinReqMsg{Node: 7, Installed: 3}
	got, err := parseJoinReq(req.marshal(nil))
	if err != nil || *got != req {
		t.Fatalf("joinReq round trip: %+v, %v", got, err)
	}
	sync := joinSyncMsg{ViewID: 9, JoinSeq: 123456}
	gs, err := parseJoinSync(sync.marshal(nil))
	if err != nil || *gs != sync {
		t.Fatalf("joinSync round trip: %+v, %v", gs, err)
	}
	pr := proposeMsg{NewViewID: 4, Proposer: 2, Members: []NodeID{1, 2}, Joiners: []NodeID{3}}
	gp, err := parsePropose(pr.marshal(nil))
	if err != nil || gp.NewViewID != 4 || len(gp.Members) != 2 || len(gp.Joiners) != 1 || gp.Joiners[0] != 3 {
		t.Fatalf("propose round trip: %+v, %v", gp, err)
	}
	dec := decideMsg{
		NewViewID: 5, Proposer: 1,
		Members: []NodeID{1, 2}, Joiners: []NodeID{3},
		Targets: []flushTarget{{Member: 3, Seq: 42, Holder: 1}},
	}
	gd, err := parseDecide(dec.marshal(nil))
	if err != nil || gd.NewViewID != 5 || len(gd.Joiners) != 1 || gd.Targets[0].Seq != 42 {
		t.Fatalf("decide round trip: %+v, %v", gd, err)
	}
	// Truncations must be rejected, not mis-parsed.
	for _, wire := range [][]byte{req.marshal(nil), sync.marshal(nil), pr.marshal(nil), dec.marshal(nil)} {
		for cut := 1; cut < len(wire); cut++ {
			switch wire[0] {
			case kindJoinReq:
				if _, err := parseJoinReq(wire[:cut]); err == nil {
					t.Fatalf("truncated joinReq (%d bytes) accepted", cut)
				}
			case kindJoinSync:
				if _, err := parseJoinSync(wire[:cut]); err == nil {
					t.Fatalf("truncated joinSync (%d bytes) accepted", cut)
				}
			case kindPropose:
				if _, err := parsePropose(wire[:cut]); err == nil {
					t.Fatalf("truncated propose (%d bytes) accepted", cut)
				}
			case kindDecide:
				if _, err := parseDecide(wire[:cut]); err == nil {
					t.Fatalf("truncated decide (%d bytes) accepted", cut)
				}
			}
		}
	}
}
