package gcs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/runtimeapi"
)

// Wire message kinds.
const (
	kindData      byte = iota + 1 // sender-stream chunk (new transmission)
	kindRetrans                   // sender-stream chunk (retransmission)
	kindNack                      // receiver-initiated repair request
	kindGossip                    // stability detection round state
	kindHeartbeat                 // liveness when otherwise idle
	kindPropose                   // view change: proposal
	kindFlushAck                  // view change: member state snapshot
	kindDecide                    // view change: decision
	kindInstalled                 // view change: member finished install
	kindJoinReq                   // recovery: a restarted node asks to be admitted
	kindJoinSync                  // recovery: sequencer tells a joiner its catch-up sequence
	kindAssignAck                 // receiver acks the sequencer's stream (uniform delivery)
	kindRelay                     // point-to-point cross-group payload (no ordering)
)

// Payload kinds carried inside data chunks.
const (
	payloadApp byte = iota + 1 // application message (certification traffic)
	payloadSeq                 // sequencer ordering assignments
)

// Fragment markers.
const (
	fragFull byte = iota // complete message in one chunk
	fragFirst
	fragMid
	fragLast
)

// errTruncated reports a malformed (short) wire message.
var errTruncated = errors.New("gcs: truncated message")

// dataMsg is one chunk of a sender's reliable stream.
type dataMsg struct {
	Sender  runtimeapi.NodeID
	Seq     uint64
	Frag    byte
	Payload byte // payloadApp or payloadSeq; meaningful on first/full chunk
	Data    []byte
}

const dataHeader = 1 + 4 + 8 + 1 + 1 + 2

//hot:path
func (m *dataMsg) marshal(kind byte, buf []byte) []byte {
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Sender))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = append(buf, m.Frag, m.Payload)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Data)))
	buf = append(buf, m.Data...)
	return buf
}

// parseDataInto decodes a stream chunk into a caller-provided (typically
// pooled) struct. Data aliases b.
//
//hot:path
func parseDataInto(m *dataMsg, b []byte) error {
	if len(b) < dataHeader {
		return errTruncated
	}
	n := int(binary.BigEndian.Uint16(b[15:17]))
	if len(b) < dataHeader+n {
		return errTruncated
	}
	m.Sender = runtimeapi.NodeID(binary.BigEndian.Uint32(b[1:5]))
	m.Seq = binary.BigEndian.Uint64(b[5:13])
	m.Frag = b[13]
	m.Payload = b[14]
	m.Data = b[dataHeader : dataHeader+n]
	return nil
}

func parseData(b []byte) (*dataMsg, error) {
	m := &dataMsg{}
	if err := parseDataInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// seqRange is a [From, To] inclusive range of missing sequence numbers.
type seqRange struct{ From, To uint64 }

// nackMsg requests retransmission of ranges from a sender's stream.
type nackMsg struct {
	Target runtimeapi.NodeID // stream owner
	Ranges []seqRange
}

func (m *nackMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindNack)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Target))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Ranges)))
	for _, r := range m.Ranges {
		buf = binary.BigEndian.AppendUint64(buf, r.From)
		buf = binary.BigEndian.AppendUint64(buf, r.To)
	}
	return buf
}

func parseNack(b []byte) (*nackMsg, error) {
	if len(b) < 7 {
		return nil, errTruncated
	}
	m := &nackMsg{Target: runtimeapi.NodeID(binary.BigEndian.Uint32(b[1:5]))}
	n := int(binary.BigEndian.Uint16(b[5:7]))
	if len(b) < 7+16*n {
		return nil, errTruncated
	}
	m.Ranges = make([]seqRange, n)
	for i := 0; i < n; i++ {
		off := 7 + 16*i
		m.Ranges[i] = seqRange{
			From: binary.BigEndian.Uint64(b[off : off+8]),
			To:   binary.BigEndian.Uint64(b[off+8 : off+16]),
		}
	}
	return m, nil
}

// gossipMsg carries one stability round's state: the set W of voters (as a
// bitmask over view member positions), the vector M of per-sender contiguous
// sequence numbers received by all voters, and the vector S of known-stable
// sequence numbers (Section 3.4). H is the gossiping member's own contiguous
// receive vector: it lets receivers detect losses at the tail of a stream
// (when no later packet would reveal the gap) and trigger NACK repair.
type gossipMsg struct {
	ViewID uint32
	Round  uint64
	W      uint32
	M      []uint64
	S      []uint64
	H      []uint64
}

func (m *gossipMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindGossip)
	buf = binary.BigEndian.AppendUint32(buf, m.ViewID)
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	buf = binary.BigEndian.AppendUint32(buf, m.W)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.M)))
	for _, v := range m.M {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	for _, v := range m.S {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	for _, v := range m.H {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return buf
}

// parseGossipInto decodes a gossip round into a reusable struct, growing its
// vectors in place (the decoded state is consumed synchronously).
func parseGossipInto(m *gossipMsg, b []byte) error {
	if len(b) < 19 {
		return errTruncated
	}
	n := int(binary.BigEndian.Uint16(b[17:19]))
	if len(b) < 19+24*n {
		return errTruncated
	}
	m.ViewID = binary.BigEndian.Uint32(b[1:5])
	m.Round = binary.BigEndian.Uint64(b[5:13])
	m.W = binary.BigEndian.Uint32(b[13:17])
	m.M = growUint64(m.M, n)
	m.S = growUint64(m.S, n)
	m.H = growUint64(m.H, n)
	for i := 0; i < n; i++ {
		m.M[i] = binary.BigEndian.Uint64(b[19+8*i:])
	}
	for i := 0; i < n; i++ {
		m.S[i] = binary.BigEndian.Uint64(b[19+8*n+8*i:])
	}
	for i := 0; i < n; i++ {
		m.H[i] = binary.BigEndian.Uint64(b[19+16*n+8*i:])
	}
	return nil
}

func growUint64(v []uint64, n int) []uint64 {
	if cap(v) < n {
		return make([]uint64, n)
	}
	return v[:n]
}

func parseGossip(b []byte) (*gossipMsg, error) {
	m := &gossipMsg{}
	if err := parseGossipInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// seqAssign is one total-order assignment: global sequence number for the
// message identified by (Sender, Seq).
type seqAssign struct {
	Sender runtimeapi.NodeID
	Seq    uint64
	Global uint64
}

// marshalAssigns encodes a batch of assignments, appending to buf[:0] (the
// sequencer passes its reusable scratch; the result aliases it when it
// fits). The caller must finish using the encoding before reusing buf.
//
//hot:path
func marshalAssigns(buf []byte, assigns []seqAssign) []byte {
	if need := 2 + 20*len(assigns); cap(buf) < need {
		//lint:hotalloc-ok capacity miss grows the sequencer's scratch once, then amortised free
		buf = make([]byte, 0, need)
	}
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(assigns)))
	for _, a := range assigns {
		buf = binary.BigEndian.AppendUint32(buf, uint32(a.Sender))
		buf = binary.BigEndian.AppendUint64(buf, a.Seq)
		buf = binary.BigEndian.AppendUint64(buf, a.Global)
	}
	return buf
}

// parseAssignsInto decodes an assignment batch, appending to buf[:0] (a
// reusable scratch — the decoded batch is consumed synchronously).
//
//hot:path
func parseAssignsInto(buf []seqAssign, b []byte) ([]seqAssign, error) {
	if len(b) < 2 {
		return nil, errTruncated
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+20*n {
		return nil, errTruncated
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		off := 2 + 20*i
		buf = append(buf, seqAssign{
			Sender: runtimeapi.NodeID(binary.BigEndian.Uint32(b[off : off+4])),
			Seq:    binary.BigEndian.Uint64(b[off+4 : off+12]),
			Global: binary.BigEndian.Uint64(b[off+12 : off+20]),
		})
	}
	return buf, nil
}

func parseAssigns(b []byte) ([]seqAssign, error) {
	return parseAssignsInto(nil, b)
}

// heartbeatMsg keeps failure detectors quiet during idle periods.
type heartbeatMsg struct{ ViewID uint32 }

func (m *heartbeatMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindHeartbeat)
	return binary.BigEndian.AppendUint32(buf, m.ViewID)
}

func parseHeartbeat(b []byte) (*heartbeatMsg, error) {
	if len(b) < 5 {
		return nil, errTruncated
	}
	return &heartbeatMsg{ViewID: binary.BigEndian.Uint32(b[1:5])}, nil
}

// proposeMsg starts a view change: the coordinator proposes a new membership.
// Members are the surviving old-view members, who must flush; Joiners are
// recovering nodes admitted without flushing (they hold no old-view state and
// state-transfer the database instead).
type proposeMsg struct {
	NewViewID uint32
	Proposer  runtimeapi.NodeID
	Members   []runtimeapi.NodeID
	Joiners   []runtimeapi.NodeID
}

func (m *proposeMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindPropose)
	buf = binary.BigEndian.AppendUint32(buf, m.NewViewID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Proposer))
	buf = appendNodeList(buf, m.Members)
	buf = appendNodeList(buf, m.Joiners)
	return buf
}

func parsePropose(b []byte) (*proposeMsg, error) {
	if len(b) < 9 {
		return nil, errTruncated
	}
	m := &proposeMsg{
		NewViewID: binary.BigEndian.Uint32(b[1:5]),
		Proposer:  runtimeapi.NodeID(binary.BigEndian.Uint32(b[5:9])),
	}
	var err error
	off := 9
	if m.Members, off, err = parseNodeList(b, off); err != nil {
		return nil, err
	}
	if m.Joiners, _, err = parseNodeList(b, off); err != nil {
		return nil, err
	}
	return m, nil
}

// appendNodeList encodes [count:2][id:4]*count.
func appendNodeList(buf []byte, ids []runtimeapi.NodeID) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// parseNodeList decodes a node list at off, returning the next offset.
func parseNodeList(b []byte, off int) ([]runtimeapi.NodeID, int, error) {
	if len(b) < off+2 {
		return nil, 0, errTruncated
	}
	n := int(binary.BigEndian.Uint16(b[off : off+2]))
	off += 2
	if len(b) < off+4*n {
		return nil, 0, errTruncated
	}
	if n == 0 {
		return nil, off, nil
	}
	ids := make([]runtimeapi.NodeID, n)
	for i := range ids {
		ids[i] = runtimeapi.NodeID(binary.BigEndian.Uint32(b[off+4*i:]))
	}
	return ids, off + 4*n, nil
}

// flushAckMsg is a member's snapshot answering a proposal: per old-view
// sender, the highest contiguously received sequence number.
type flushAckMsg struct {
	NewViewID uint32
	Contig    []memberSeq
}

// memberSeq pairs a member with a sequence number.
type memberSeq struct {
	Member runtimeapi.NodeID
	Seq    uint64
}

func (m *flushAckMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindFlushAck)
	buf = binary.BigEndian.AppendUint32(buf, m.NewViewID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Contig)))
	for _, c := range m.Contig {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c.Member))
		buf = binary.BigEndian.AppendUint64(buf, c.Seq)
	}
	return buf
}

func parseFlushAck(b []byte) (*flushAckMsg, error) {
	if len(b) < 7 {
		return nil, errTruncated
	}
	m := &flushAckMsg{NewViewID: binary.BigEndian.Uint32(b[1:5])}
	n := int(binary.BigEndian.Uint16(b[5:7]))
	if len(b) < 7+12*n {
		return nil, errTruncated
	}
	m.Contig = make([]memberSeq, n)
	for i := 0; i < n; i++ {
		off := 7 + 12*i
		m.Contig[i] = memberSeq{
			Member: runtimeapi.NodeID(binary.BigEndian.Uint32(b[off : off+4])),
			Seq:    binary.BigEndian.Uint64(b[off+4 : off+12]),
		}
	}
	return m, nil
}

// decideMsg concludes a view change: the new membership (survivors plus
// joiners), plus for every old member the flush target (highest sequence
// anyone received) and the holder to NACK for repair. Joiners skip the
// repair phase: the flush targets instead become their stream cursors, so
// they start receiving exactly where the old view's traffic — covered by the
// database snapshot they transfer — ends.
type decideMsg struct {
	NewViewID uint32
	Proposer  runtimeapi.NodeID
	Members   []runtimeapi.NodeID
	Joiners   []runtimeapi.NodeID
	Targets   []flushTarget
}

type flushTarget struct {
	Member runtimeapi.NodeID
	Seq    uint64
	Holder runtimeapi.NodeID
}

func (m *decideMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindDecide)
	buf = binary.BigEndian.AppendUint32(buf, m.NewViewID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Proposer))
	buf = appendNodeList(buf, m.Members)
	buf = appendNodeList(buf, m.Joiners)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Targets)))
	for _, t := range m.Targets {
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.Member))
		buf = binary.BigEndian.AppendUint64(buf, t.Seq)
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.Holder))
	}
	return buf
}

func parseDecide(b []byte) (*decideMsg, error) {
	if len(b) < 9 {
		return nil, errTruncated
	}
	m := &decideMsg{
		NewViewID: binary.BigEndian.Uint32(b[1:5]),
		Proposer:  runtimeapi.NodeID(binary.BigEndian.Uint32(b[5:9])),
	}
	var err error
	off := 9
	if m.Members, off, err = parseNodeList(b, off); err != nil {
		return nil, err
	}
	if m.Joiners, off, err = parseNodeList(b, off); err != nil {
		return nil, err
	}
	if len(b) < off+2 {
		return nil, errTruncated
	}
	nt := int(binary.BigEndian.Uint16(b[off : off+2]))
	off += 2
	if len(b) < off+16*nt {
		return nil, errTruncated
	}
	m.Targets = make([]flushTarget, nt)
	for i := 0; i < nt; i++ {
		o := off + 16*i
		m.Targets[i] = flushTarget{
			Member: runtimeapi.NodeID(binary.BigEndian.Uint32(b[o : o+4])),
			Seq:    binary.BigEndian.Uint64(b[o+4 : o+12]),
			Holder: runtimeapi.NodeID(binary.BigEndian.Uint32(b[o+12 : o+16])),
		}
	}
	return m, nil
}

// joinReqMsg is a recovering node's request to be admitted to the group. It
// is multicast periodically until the node both installs a view containing
// it and learns its catch-up sequence. Installed is the view the joiner has
// installed so far: zero means a fresh incarnation that needs a view change
// (even if the group still lists its dead predecessor as a member); nonzero
// marks an admitted member still waiting for its joinSync, which the
// sequencer answers by resending it.
type joinReqMsg struct {
	Node      runtimeapi.NodeID
	Installed uint32
}

func (m *joinReqMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindJoinReq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Node))
	return binary.BigEndian.AppendUint32(buf, m.Installed)
}

func parseJoinReq(b []byte) (*joinReqMsg, error) {
	if len(b) < 9 {
		return nil, errTruncated
	}
	return &joinReqMsg{
		Node:      runtimeapi.NodeID(binary.BigEndian.Uint32(b[1:5])),
		Installed: binary.BigEndian.Uint32(b[5:9]),
	}, nil
}

// joinSyncMsg tells a joiner the total-order sequence it must catch up to:
// every message ordered at or below JoinSeq is covered by the database
// snapshot the joiner transfers from a donor; everything above it arrives
// through normal deliveries. Only the sequencer sends it — it is the one
// member guaranteed to have assigned (hence to know) the full old-view
// order.
type joinSyncMsg struct {
	ViewID  uint32
	JoinSeq uint64
}

func (m *joinSyncMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindJoinSync)
	buf = binary.BigEndian.AppendUint32(buf, m.ViewID)
	return binary.BigEndian.AppendUint64(buf, m.JoinSeq)
}

func parseJoinSync(b []byte) (*joinSyncMsg, error) {
	if len(b) < 13 {
		return nil, errTruncated
	}
	return &joinSyncMsg{
		ViewID:  binary.BigEndian.Uint32(b[1:5]),
		JoinSeq: binary.BigEndian.Uint64(b[5:13]),
	}, nil
}

// assignAckMsg is a receiver's positive acknowledgement of the sequencer's
// stream, sent whenever an ordering announcement is processed: Seq is the
// receiver's contiguous prefix of the sequencer's stream, which doubles as
// its credit cursor. The sequencer gates delivery of its self-assigned
// globals on a majority of these (uniform delivery); stability gossip
// horizons carry the same cursor as the slow-path fallback, so a lost ack
// costs at most one gossip period.
type assignAckMsg struct {
	ViewID uint32
	Seq    uint64
}

const assignAckLen = 1 + 4 + 8

func (m *assignAckMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindAssignAck)
	buf = binary.BigEndian.AppendUint32(buf, m.ViewID)
	return binary.BigEndian.AppendUint64(buf, m.Seq)
}

func parseAssignAck(b []byte) (*assignAckMsg, error) {
	if len(b) < assignAckLen {
		return nil, errTruncated
	}
	return &assignAckMsg{
		ViewID: binary.BigEndian.Uint32(b[1:5]),
		Seq:    binary.BigEndian.Uint64(b[5:13]),
	}, nil
}

// installedMsg acknowledges that a member finished installing a view.
type installedMsg struct{ NewViewID uint32 }

func (m *installedMsg) marshal(buf []byte) []byte {
	buf = append(buf, kindInstalled)
	return binary.BigEndian.AppendUint32(buf, m.NewViewID)
}

func parseInstalled(b []byte) (*installedMsg, error) {
	if len(b) < 5 {
		return nil, errTruncated
	}
	return &installedMsg{NewViewID: binary.BigEndian.Uint32(b[1:5])}, nil
}

func kindName(k byte) string {
	switch k {
	case kindData:
		return "data"
	case kindRetrans:
		return "retrans"
	case kindNack:
		return "nack"
	case kindGossip:
		return "gossip"
	case kindHeartbeat:
		return "heartbeat"
	case kindPropose:
		return "propose"
	case kindFlushAck:
		return "flushack"
	case kindDecide:
		return "decide"
	case kindInstalled:
		return "installed"
	case kindJoinReq:
		return "joinreq"
	case kindJoinSync:
		return "joinsync"
	case kindAssignAck:
		return "assignack"
	case kindRelay:
		return "relay"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}
