package gcs

import (
	"testing"
	"testing/quick"

	"repro/internal/csrt"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Property: no wire input, however malformed, may panic a parser. Truncated
// or garbage traffic must be dropped, not crash a replica.
func TestParsersNeverPanicOnArbitraryBytes(t *testing.T) {
	parsers := []func([]byte){
		func(b []byte) { _, _ = parseData(b) },
		func(b []byte) { _, _ = parseNack(b) },
		func(b []byte) { _, _ = parseGossip(b) },
		func(b []byte) { _, _ = parseAssigns(b) },
		func(b []byte) { _, _ = parseHeartbeat(b) },
		func(b []byte) { _, _ = parsePropose(b) },
		func(b []byte) { _, _ = parseFlushAck(b) },
		func(b []byte) { _, _ = parseDecide(b) },
		func(b []byte) { _, _ = parseInstalled(b) },
	}
	f := func(data []byte) bool {
		for _, p := range parsers {
			p(data)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stack receiving arbitrary garbage datagrams neither panics nor
// corrupts subsequent legitimate traffic.
func TestStackSurvivesGarbageTraffic(t *testing.T) {
	c := newCluster(t, 3, 21, nil)
	g := sim.NewRNG(99)
	// Interleave garbage with real casts.
	for i := 0; i < 50; i++ {
		garbage := make([]byte, g.IntRange(0, 64))
		for j := range garbage {
			garbage[j] = byte(g.Intn(256))
		}
		at := sim.Time(i+1) * 3 * sim.Millisecond
		c.k.ScheduleAt(at, func() { c.rts[2].Deliver(1, garbage) })
		c.castAt(at, NodeID(i%3+1), []byte{byte(i)})
	}
	c.run(5 * sim.Second)
	c.checkAgreement(nodes(3), 50)
	// The drops must be observable, not silent: the flooded member counted
	// its malformed datagrams.
	if c.stacks[2].Stats().ParseErrors == 0 {
		t.Fatal("garbage traffic dropped without incrementing Stats.ParseErrors")
	}
}

// Every malformed-message path of the receive switch must count the drop in
// Stats.ParseErrors — a wire-format regression has to be observable.
func TestParseErrorsCountedPerKind(t *testing.T) {
	c := newCluster(t, 3, 47, nil)
	malformed := [][]byte{
		{kindData, 1, 2},   // truncated data header
		{kindRetrans, 9},   // truncated retransmission
		{kindNack},         // truncated NACK
		{kindGossip, 0},    // truncated gossip
		{kindPropose, 3},   // truncated view proposal
		{kindFlushAck},     // truncated flush snapshot
		{kindDecide, 1},    // truncated decision
		{kindInstalled},    // truncated install ack
		{0xee, 1, 2, 3, 4}, // unknown message kind
	}
	for i, wire := range malformed {
		w := wire
		c.k.ScheduleAt(sim.Time(i+1)*sim.Millisecond, func() { c.rts[1].Deliver(2, w) })
	}
	c.run(100 * sim.Millisecond)
	if got := c.stacks[1].Stats().ParseErrors; got != int64(len(malformed)) {
		t.Fatalf("ParseErrors = %d, want %d", got, len(malformed))
	}
	// A well-formed heartbeat is not a parse error.
	if c.stacks[2].Stats().ParseErrors != 0 {
		t.Fatalf("idle member counted %d parse errors", c.stacks[2].Stats().ParseErrors)
	}
}

// The dissemination mode must not change outcomes, only traffic shape:
// unicast fallback sends n-1 copies where multicast sends one.
func TestUnicastFallbackTrafficCost(t *testing.T) {
	run := func(useMulticast bool) int64 {
		k := sim.NewKernel()
		rng := sim.NewRNG(33)
		net := simnet.NewNetwork(k, rng.Fork("net"))
		lan := net.NewLAN(simnet.DefaultLANConfig("lan"))
		members := []NodeID{1, 2, 3}
		net.SetGroup(1, members)
		stacks := map[NodeID]*Stack{}
		rts := map[NodeID]*csrt.Runtime{}
		for _, id := range members {
			host, err := net.NewHost(id, lan)
			if err != nil {
				t.Fatal(err)
			}
			rt := csrt.NewRuntime(k, id, &csrt.ModelProfiler{}, net.Port(id, 1400), csrt.CostParams{}, rng.Fork(string(rune('a'+id))))
			rt.Bind(csrt.NewCPUSet(1, k, nil))
			host.SetDeliver(func(pkt *simnet.Packet) { rt.Deliver(pkt.Src, pkt.Data) })
			st, err := New(rt, Config{Self: id, Members: members, Group: 1, UseMulticast: useMulticast})
			if err != nil {
				t.Fatal(err)
			}
			stacks[id] = st
			rts[id] = rt
			st.Start()
		}
		for i := 0; i < 10; i++ {
			at := sim.Time(i+1) * 10 * sim.Millisecond
			k.ScheduleAt(at, func() {
				rts[1].CPUs().SubmitReal(func() { stacks[1].Multicast(make([]byte, 500)) }, nil)
			})
		}
		if err := k.RunUntil(2 * sim.Second); err != nil {
			t.Fatal(err)
		}
		for _, id := range members {
			if got := stacks[id].Stats().Delivered; got != 10 {
				t.Fatalf("mode multicast=%v: member %d delivered %d", useMulticast, id, got)
			}
		}
		return net.TotalBytes()
	}
	mcast := run(true)
	ucast := run(false)
	if ucast <= mcast {
		t.Fatalf("unicast fallback should cost more wire bytes: %d vs %d", ucast, mcast)
	}
}
