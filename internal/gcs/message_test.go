package gcs

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/runtimeapi"
)

func TestDataRoundTrip(t *testing.T) {
	f := func(sender int32, seq uint64, frag, payload byte, data []byte) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		m := dataMsg{
			Sender:  runtimeapi.NodeID(sender),
			Seq:     seq,
			Frag:    frag,
			Payload: payload,
			Data:    data,
		}
		wire := m.marshal(kindData, nil)
		got, err := parseData(wire)
		if err != nil {
			return false
		}
		return got.Sender == m.Sender && got.Seq == m.Seq && got.Frag == m.Frag &&
			got.Payload == m.Payload && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNackRoundTrip(t *testing.T) {
	m := nackMsg{Target: 7, Ranges: []seqRange{{1, 5}, {9, 9}, {100, 200}}}
	got, err := parseNack(m.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != 7 || len(got.Ranges) != 3 || got.Ranges[2] != (seqRange{100, 200}) {
		t.Fatalf("got %+v", got)
	}
}

func TestGossipRoundTrip(t *testing.T) {
	m := gossipMsg{ViewID: 3, Round: 99, W: 0b101, M: []uint64{1, 2, 3}, S: []uint64{0, 1, 2}, H: []uint64{4, 5, 6}}
	got, err := parseGossip(m.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.ViewID != 3 || got.Round != 99 || got.W != 0b101 {
		t.Fatalf("header: %+v", got)
	}
	for i := range m.M {
		if got.M[i] != m.M[i] || got.S[i] != m.S[i] {
			t.Fatalf("vectors: %+v", got)
		}
	}
}

func TestAssignsRoundTrip(t *testing.T) {
	in := []seqAssign{{Sender: 1, Seq: 10, Global: 100}, {Sender: 2, Seq: 20, Global: 101}}
	got, err := parseAssigns(marshalAssigns(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("got %+v", got)
	}
}

func TestViewChangeMessagesRoundTrip(t *testing.T) {
	p := proposeMsg{NewViewID: 4, Proposer: 2, Members: []runtimeapi.NodeID{1, 2, 3}}
	gp, err := parsePropose(p.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gp.NewViewID != 4 || gp.Proposer != 2 || len(gp.Members) != 3 || gp.Members[2] != 3 {
		t.Fatalf("propose: %+v", gp)
	}

	a := flushAckMsg{NewViewID: 4, Contig: []memberSeq{{1, 10}, {2, 20}}}
	ga, err := parseFlushAck(a.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ga.NewViewID != 4 || len(ga.Contig) != 2 || ga.Contig[1] != (memberSeq{2, 20}) {
		t.Fatalf("flushack: %+v", ga)
	}

	d := decideMsg{
		NewViewID: 4, Proposer: 2,
		Members: []runtimeapi.NodeID{1, 2},
		Targets: []flushTarget{{Member: 1, Seq: 10, Holder: 2}, {Member: 3, Seq: 7, Holder: 1}},
	}
	gd, err := parseDecide(d.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gd.NewViewID != 4 || len(gd.Members) != 2 || len(gd.Targets) != 2 ||
		gd.Targets[1] != (flushTarget{Member: 3, Seq: 7, Holder: 1}) {
		t.Fatalf("decide: %+v", gd)
	}

	i := installedMsg{NewViewID: 9}
	gi, err := parseInstalled(i.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gi.NewViewID != 9 {
		t.Fatalf("installed: %+v", gi)
	}

	hb := heartbeatMsg{ViewID: 5}
	ghb, err := parseHeartbeat(hb.marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ghb.ViewID != 5 {
		t.Fatalf("heartbeat: %+v", ghb)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	msgs := [][]byte{
		(&dataMsg{Data: []byte("abc")}).marshal(kindData, nil),
		(&nackMsg{Target: 1, Ranges: []seqRange{{1, 2}}}).marshal(nil),
		(&gossipMsg{M: []uint64{1}, S: []uint64{1}, H: []uint64{1}}).marshal(nil),
		(&proposeMsg{Members: []runtimeapi.NodeID{1}}).marshal(nil),
		(&flushAckMsg{Contig: []memberSeq{{1, 1}}}).marshal(nil),
		(&decideMsg{Members: []runtimeapi.NodeID{1}, Targets: []flushTarget{{1, 1, 1}}}).marshal(nil),
	}
	parsers := []func([]byte) error{
		func(b []byte) error { _, err := parseData(b); return err },
		func(b []byte) error { _, err := parseNack(b); return err },
		func(b []byte) error { _, err := parseGossip(b); return err },
		func(b []byte) error { _, err := parsePropose(b); return err },
		func(b []byte) error { _, err := parseFlushAck(b); return err },
		func(b []byte) error { _, err := parseDecide(b); return err },
	}
	for i, wire := range msgs {
		for cut := 0; cut < len(wire); cut++ {
			if err := parsers[i](wire[:cut]); err == nil {
				t.Fatalf("parser %d accepted truncation at %d", i, cut)
			}
		}
		if err := parsers[i](wire); err != nil {
			t.Fatalf("parser %d rejected full message: %v", i, err)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k := kindData; k <= kindInstalled; k++ {
		if kindName(k) == "" {
			t.Fatalf("no name for kind %d", k)
		}
	}
	if kindName(200) != "kind(200)" {
		t.Fatal("unknown kind formatting")
	}
}
