package gcs

import (
	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// relMcast is the bottom layer (Section 3.4): reliable FIFO multicast with
// IP-multicast dissemination, window-based receiver-initiated loss repair,
// and two-phase flow control (rate-based on first transmission, buffer-share
// and window based afterwards). Messages are buffered — at the sender for
// retransmission and at receivers for relay during view changes — until the
// stability protocol declares them received by all members.
type relMcast struct {
	s *Stack

	// Sender side.
	sendSeq      uint64 // next sequence number for my stream
	sendBuf      map[uint64][]byte
	sendBufBytes int
	stableSelf   uint64 // my stream is stable up to here (GC'd)
	outQ         []outChunk
	outQBytes    int // wire bytes queued but unsent (bounded by MaxQueuedBytes)
	frozen       bool
	blockedAt    sim.Time
	blocked      bool

	// Credit-based flow control: per-destination acknowledgement cursors
	// learned from stability gossip horizons. creditBlocked marks an
	// in-progress credit-stall episode.
	credits       *creditGate
	creditBlocked bool

	// Rate-based flow control (phase one).
	tokens     float64
	lastRefill sim.Time
	rateTimer  runtimeapi.Timer

	// Receiver side.
	peers map[NodeID]*peerState

	// freeMsgs recycles dataMsg structs: a chunk's struct lives in a
	// peer's receive buffer from reception until stability GC (or
	// exclusion), then returns to the pool. The payload bytes are not
	// pooled — they alias the sender's wire buffer (zero-copy path).
	freeMsgs []*dataMsg
}

type outChunk struct {
	seq  uint64
	wire []byte
}

type peerState struct {
	id           NodeID
	recvNext     uint64 // next expected (contiguous prefix is recvNext-1)
	maxSeen      uint64
	recvBuf      map[uint64]*dataMsg // received chunks kept until stable
	stableUpto   uint64              // GC'd boundary
	nackTimer    runtimeapi.Timer
	repairTarget NodeID // where to send NACKs (sender, or holder in flush)
	excluded     bool

	// Reassembly of fragmented application messages.
	reasm        []byte
	reasmMsgID   uint64
	reasmKind    byte
	reasmActive  bool
	lastChunkSeq uint64 // of the message being reassembled
}

func newRelMcast(s *Stack) *relMcast {
	creditLimit := uint64(0) // negative CreditsPerDest: gate disabled
	if s.cfg.CreditsPerDest > 0 {
		creditLimit = uint64(s.cfg.CreditsPerDest)
	}
	rm := &relMcast{
		s:       s,
		sendBuf: make(map[uint64][]byte),
		peers:   make(map[NodeID]*peerState),
		tokens:  float64(s.cfg.MaxPacket * 2),
		credits: newCreditGate(creditLimit),
	}
	for _, m := range s.cfg.Members {
		rm.peers[m] = &peerState{id: m, recvNext: 1, repairTarget: m}
	}
	return rm
}

// newMsg takes a dataMsg from the pool (or allocates one).
//
//hot:path
func (rm *relMcast) newMsg() *dataMsg {
	if n := len(rm.freeMsgs); n > 0 {
		m := rm.freeMsgs[n-1]
		rm.freeMsgs[n-1] = nil
		rm.freeMsgs = rm.freeMsgs[:n-1]
		return m
	}
	//lint:hotalloc-ok pool miss; the struct joins the free list afterwards
	return &dataMsg{}
}

// recycleMsg returns a struct whose buffer slot has been vacated.
//
//hot:path
func (rm *relMcast) recycleMsg(m *dataMsg) {
	m.Data = nil
	rm.freeMsgs = append(rm.freeMsgs, m)
}

func (rm *relMcast) peer(id NodeID) *peerState {
	p := rm.peers[id]
	if p == nil {
		p = &peerState{id: id, recvNext: 1, repairTarget: id}
		rm.peers[id] = p
	}
	return p
}

// contiguous reports the highest sequence number such that every message of
// p's stream up to it has been received locally (own stream: sent counts as
// received).
func (rm *relMcast) contiguous(p NodeID) uint64 { return rm.peer(p).recvNext - 1 }

// share is this member's slice of the buffer pool. A view can transiently
// hold no members (every peer removed during a fault scenario), in which
// case the whole pool is ours.
func (rm *relMcast) share() int {
	n := len(rm.s.view.Members)
	if n == 0 {
		return rm.s.cfg.BufferBytes
	}
	return rm.s.cfg.BufferBytes / n
}

// cast fragments a payload into stream chunks and queues them for
// flow-controlled transmission. All chunks of one message are enqueued
// atomically so a view-change freeze cannot split a message.
func (rm *relMcast) cast(payloadKind byte, payload []byte) {
	maxChunk := rm.s.cfg.MaxPacket - dataHeader
	total := len(payload)
	rm.s.rt.Charge(rm.s.cfg.Costs.msgCost(total))
	if total == 0 {
		payload = []byte{}
	}
	n := (total + maxChunk - 1) / maxChunk
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		lo := i * maxChunk
		hi := min(lo+maxChunk, total)
		var frag byte
		switch {
		case n == 1:
			frag = fragFull
		case i == 0:
			frag = fragFirst
		case i == n-1:
			frag = fragLast
		default:
			frag = fragMid
		}
		rm.sendSeq++
		m := dataMsg{
			Sender:  rm.s.cfg.Self,
			Seq:     rm.sendSeq,
			Frag:    frag,
			Payload: payloadKind,
			Data:    payload[lo:hi],
		}
		wire := m.marshal(kindData, make([]byte, 0, dataHeader+hi-lo))
		rm.outQ = append(rm.outQ, outChunk{seq: m.Seq, wire: wire})
		rm.outQBytes += len(wire)
	}
	if int64(rm.outQBytes) > rm.s.stats.QueuePeakBytes {
		rm.s.stats.QueuePeakBytes = int64(rm.outQBytes)
	}
	rm.drain()
}

// drain transmits queued chunks while flow control allows: enough rate
// tokens (phase one), and unstable bytes within the buffer share and window
// (phase two). Blocked chunks wait for stability GC or token refill.
func (rm *relMcast) drain() {
	if rm.frozen || rm.s.stopped {
		return
	}
	rm.refillTokens()
	for len(rm.outQ) > 0 {
		c := rm.outQ[0]
		size := len(c.wire)
		unstableCount := rm.sendSeq - rm.stableSelf - uint64(len(rm.outQ))
		if rm.sendBufBytes+size > rm.share() || unstableCount >= uint64(rm.s.cfg.Window) {
			rm.noteBlocked()
			return // wait for stability to free share/window
		}
		if !rm.creditOK(c.seq) {
			rm.noteBlocked()
			rm.noteCreditStall()
			return // wait for gossip to advance the lagging destination
		}
		if rm.tokens < float64(size) {
			rm.noteBlocked()
			rm.scheduleRateTimer(size)
			return
		}
		rm.tokens -= float64(size)
		rm.outQ = rm.outQ[1:]
		rm.outQBytes -= size
		rm.sendBuf[c.seq] = c.wire
		rm.sendBufBytes += size
		rm.s.stats.Sent++
		rm.s.transmit(c.wire)
		rm.s.memb.sentSomething()
		// Self-delivery: my own stream is received locally at send time.
		m := rm.newMsg()
		if err := parseDataInto(m, c.wire); err == nil {
			rm.onData(m)
		} else {
			// Unreachable for a frame we just marshalled, but a drop
			// here must still be visible in the campaign report.
			rm.s.stats.ParseErrors++
			rm.recycleMsg(m)
		}
	}
	rm.clearBlocked()
}

func (rm *relMcast) noteBlocked() {
	if !rm.blocked {
		rm.blocked = true
		rm.blockedAt = rm.s.rt.Now()
		rm.s.stats.Blocked++
	}
}

func (rm *relMcast) clearBlocked() {
	if rm.blocked {
		rm.blocked = false
		rm.s.stats.BlockedTime += rm.s.rt.Now() - rm.blockedAt
	}
	rm.creditBlocked = false
}

func (rm *relMcast) refillTokens() {
	now := rm.s.rt.Now()
	dt := now - rm.lastRefill
	if dt <= 0 {
		return
	}
	rm.lastRefill = now
	burst := float64(max(2*rm.s.cfg.MaxPacket, int(rm.s.cfg.RateBps/50)))
	rm.tokens += float64(rm.s.cfg.RateBps) * dt.Seconds()
	if rm.tokens > burst {
		rm.tokens = burst
	}
}

func (rm *relMcast) scheduleRateTimer(need int) {
	if rm.rateTimer != nil {
		return
	}
	deficit := float64(need) - rm.tokens
	wait := sim.FromSeconds(deficit / float64(rm.s.cfg.RateBps))
	if wait < sim.Microsecond {
		wait = sim.Microsecond
	}
	rm.rateTimer = rm.s.rt.Schedule(wait, func() {
		rm.rateTimer = nil
		rm.drain()
	})
}

// freeze suspends first transmissions during a view-change flush. Repair
// traffic (NACK service) continues.
func (rm *relMcast) freeze() { rm.frozen = true }

// unfreeze resumes transmissions after a view is installed.
func (rm *relMcast) unfreeze() {
	rm.frozen = false
	rm.drain()
}

// onData handles an incoming (or self-delivered) stream chunk: duplicate
// filtering, FIFO advance, gap detection.
func (rm *relMcast) onData(m *dataMsg) {
	ps := rm.peer(m.Sender)
	if ps.excluded || m.Seq < ps.recvNext {
		rm.recycleMsg(m)
		return
	}
	if _, dup := ps.recvBuf[m.Seq]; dup {
		rm.recycleMsg(m)
		return
	}
	if ps.recvBuf == nil {
		ps.recvBuf = make(map[uint64]*dataMsg)
	}
	ps.recvBuf[m.Seq] = m
	if m.Seq > ps.maxSeen {
		ps.maxSeen = m.Seq
	}
	for {
		next, ok := ps.recvBuf[ps.recvNext]
		if !ok {
			break
		}
		rm.fifoDeliver(ps, next)
		ps.recvNext++
	}
	if ps.recvNext <= ps.maxSeen {
		rm.armNackTimer(ps)
	}
	rm.s.memb.dataProgress()
}

// armNackTimer schedules gap repair for a peer's stream.
func (rm *relMcast) armNackTimer(ps *peerState) {
	if ps.nackTimer != nil {
		return
	}
	ps.nackTimer = rm.s.rt.Schedule(rm.s.cfg.NackDelay, func() {
		ps.nackTimer = nil
		rm.repairGaps(ps)
	})
}

// repairGaps sends a NACK listing missing ranges and re-arms while gaps
// persist (receiver-initiated repair).
func (rm *relMcast) repairGaps(ps *peerState) {
	if rm.s.stopped || ps.excluded || ps.recvNext > ps.maxSeen {
		return
	}
	var ranges []seqRange
	var from uint64
	inGap := false
	for seq := ps.recvNext; seq <= ps.maxSeen && len(ranges) < 16; seq++ {
		_, have := ps.recvBuf[seq]
		if !have && !inGap {
			inGap = true
			from = seq
		}
		if have && inGap {
			inGap = false
			ranges = append(ranges, seqRange{From: from, To: seq - 1})
		}
	}
	if inGap && len(ranges) < 16 {
		ranges = append(ranges, seqRange{From: from, To: ps.maxSeen})
	}
	if len(ranges) == 0 {
		return
	}
	rm.s.rt.Charge(rm.s.cfg.Costs.PerNack)
	nack := nackMsg{Target: ps.id, Ranges: ranges}
	target := ps.repairTarget
	if target == rm.s.cfg.Self || target == 0 {
		target = ps.id
	}
	rm.s.stats.Nacks++
	rm.s.transmitTo(target, nack.marshal(make([]byte, 0, 7+16*len(ranges))))
	// Re-arm: keep nagging until the gap closes.
	ps.nackTimer = rm.s.rt.Schedule(rm.s.cfg.RetransPeriod, func() {
		ps.nackTimer = nil
		rm.repairGaps(ps)
	})
}

// learnHorizon records that p's stream extends at least to seq (learned from
// gossip) and arms repair if we're missing part of it.
func (rm *relMcast) learnHorizon(p NodeID, seq uint64) {
	ps := rm.peer(p)
	if ps.excluded {
		return
	}
	if seq > ps.maxSeen {
		ps.maxSeen = seq
	}
	if ps.recvNext <= ps.maxSeen {
		rm.armNackTimer(ps)
	}
}

// requestRepairTo raises the known horizon of p's stream to target and
// directs NACKs at holder (view-change flush repair).
func (rm *relMcast) requestRepairTo(p NodeID, target uint64, holder NodeID) {
	ps := rm.peer(p)
	if target > ps.maxSeen {
		ps.maxSeen = target
	}
	ps.repairTarget = holder
	if ps.recvNext <= ps.maxSeen {
		rm.repairGaps(ps)
	}
}

// onNack serves retransmissions from the send buffer (own stream) or the
// receive buffer (relaying another member's stream during flush).
func (rm *relMcast) onNack(src NodeID, m *nackMsg) {
	if m.Target == rm.s.cfg.Self {
		for _, r := range m.Ranges {
			for seq := r.From; seq <= r.To; seq++ {
				wire, ok := rm.sendBuf[seq]
				if !ok {
					continue
				}
				rt := make([]byte, len(wire))
				copy(rt, wire)
				rt[0] = kindRetrans
				rm.s.stats.Retransmits++
				rm.s.rt.Charge(rm.s.cfg.Costs.PerRetrans)
				rm.s.transmitTo(src, rt)
			}
		}
		return
	}
	ps := rm.peers[m.Target]
	if ps == nil {
		return
	}
	for _, r := range m.Ranges {
		for seq := r.From; seq <= r.To; seq++ {
			dm, ok := ps.recvBuf[seq]
			if !ok {
				continue
			}
			rm.s.stats.Retransmits++
			rm.s.rt.Charge(rm.s.cfg.Costs.PerRetrans)
			rm.s.transmitTo(src, dm.marshal(kindRetrans, make([]byte, 0, dataHeader+len(dm.Data))))
		}
	}
}

// fifoDeliver advances a sender's FIFO stream by one chunk, reassembling
// fragmented messages and routing complete ones upward.
func (rm *relMcast) fifoDeliver(ps *peerState, m *dataMsg) {
	switch m.Frag {
	case fragFull:
		rm.complete(ps.id, m.Seq, m.Seq, m.Payload, m.Data)
	case fragFirst:
		ps.reasmActive = true
		ps.reasmMsgID = m.Seq
		ps.reasmKind = m.Payload
		ps.reasm = append(ps.reasm[:0], m.Data...)
	case fragMid:
		if ps.reasmActive {
			ps.reasm = append(ps.reasm, m.Data...)
		}
	case fragLast:
		if ps.reasmActive {
			ps.reasm = append(ps.reasm, m.Data...)
			data := make([]byte, len(ps.reasm))
			copy(data, ps.reasm)
			ps.reasmActive = false
			rm.complete(ps.id, ps.reasmMsgID, m.Seq, ps.reasmKind, data)
		}
	}
}

// complete routes a fully reassembled message to the total order layer.
func (rm *relMcast) complete(sender NodeID, msgID, lastSeq uint64, payloadKind byte, data []byte) {
	switch payloadKind {
	case payloadApp:
		rm.s.to.onAppData(sender, msgID, lastSeq, data)
	case payloadSeq:
		assigns, err := parseAssignsInto(rm.s.to.assignScratch, data)
		if err != nil {
			rm.s.stats.ParseErrors++
			return
		}
		rm.s.to.assignScratch = assigns
		rm.s.to.onAssigns(sender, lastSeq, assigns)
		if sender != rm.s.cfg.Self {
			rm.sendAssignAck(sender, lastSeq)
		}
	}
}

// sendAssignAck tells the sequencer how far this member contiguously holds
// its stream, unblocking the sequencer's uniform-delivery gate (and its
// credit window) without waiting for the next stability gossip. upto is the
// announcement's own last chunk: the FIFO cursor has not advanced past the
// message being handed up yet, so contiguous() alone would leave the latest
// batch un-acked.
func (rm *relMcast) sendAssignAck(sequencer NodeID, upto uint64) {
	if c := rm.contiguous(sequencer); c > upto {
		upto = c
	}
	ack := assignAckMsg{ViewID: rm.s.view.ID, Seq: upto}
	rm.s.rt.Charge(rm.s.cfg.Costs.msgCost(assignAckLen))
	rm.s.stats.AssignAcks++
	rm.s.transmitTo(sequencer, ack.marshal(make([]byte, 0, assignAckLen)))
}

// gcStable discards buffered messages of p's stream up to seq, releasing
// sender buffer share when p is self. Stability only ever advances over
// contiguous prefixes received by all members, so this is safe.
func (rm *relMcast) gcStable(p NodeID, upto uint64) {
	ps := rm.peer(p)
	if upto <= ps.stableUpto {
		return
	}
	for seq := ps.stableUpto + 1; seq <= upto; seq++ {
		if m, ok := ps.recvBuf[seq]; ok {
			delete(ps.recvBuf, seq)
			rm.recycleMsg(m)
		}
	}
	ps.stableUpto = upto
	if p == rm.s.cfg.Self && upto > rm.stableSelf {
		for seq := rm.stableSelf + 1; seq <= upto; seq++ {
			if wire, ok := rm.sendBuf[seq]; ok {
				rm.sendBufBytes -= len(wire)
				delete(rm.sendBuf, seq)
			}
		}
		rm.stableSelf = upto
		rm.drain() // share freed: release any blocked chunks
	}
}

// resetPeer re-initializes a peer's stream state for a fresh incarnation
// admitted by a recovery join: buffered chunks of the dead incarnation are
// recycled and the cursors restart at upto — the flush target covering the
// old stream at survivors, or zero for the joiner's brand-new stream.
func (rm *relMcast) resetPeer(p NodeID, upto uint64) {
	ps := rm.peer(p)
	for seq, m := range ps.recvBuf {
		delete(ps.recvBuf, seq)
		rm.recycleMsg(m)
	}
	ps.recvNext = upto + 1
	ps.maxSeen = upto
	ps.stableUpto = upto
	ps.excluded = false
	ps.repairTarget = p
	if p != rm.s.cfg.Self {
		// Seed the fresh incarnation's credit cursor at my stable prefix:
		// its join targets cover at least everything stable, so this is a
		// safe lower bound of the ack its first gossip will carry —
		// without it a rejoin would stall the sender for a gossip period.
		rm.credits.ack(p, rm.stableSelf)
	}
	ps.reasmActive = false
	ps.reasm = ps.reasm[:0]
	if ps.nackTimer != nil {
		ps.nackTimer.Cancel()
		ps.nackTimer = nil
	}
}

// resetSelf restarts this node's own stream. Meaningful when a joiner is
// readmitted a second time — its first admission decide was lost, a member
// mistook its still-joining join requests for a fresh restart, and the
// group reset its cursor for us to zero — so the local numbering must
// restart too or every subsequent cast would be invisible to the group.
// Unsent queued chunks are dropped: while joining/recovering the server is
// down, so nothing application-level is in flight.
func (rm *relMcast) resetSelf() {
	rm.resetPeer(rm.s.cfg.Self, 0)
	rm.sendBuf = make(map[uint64][]byte)
	rm.sendBufBytes = 0
	rm.sendSeq = 0
	rm.stableSelf = 0
	rm.outQ = rm.outQ[:0]
	rm.outQBytes = 0
	// The new stream renumbers from 1: every old acknowledgement cursor
	// would grant far too much credit against it.
	rm.credits.reset()
}

// releaseAll frees every receive- and send-side buffer at halt: the
// remaining chunks would otherwise be pinned until a stability GC round this
// stack will never run again. Nack timers are cancelled so they cannot
// resurrect repair traffic.
func (rm *relMcast) releaseAll() {
	for _, ps := range rm.peers {
		ps.recvBuf = nil
		ps.reasm = nil
		ps.reasmActive = false
		if ps.nackTimer != nil {
			ps.nackTimer.Cancel()
			ps.nackTimer = nil
		}
	}
	rm.sendBuf = nil
	rm.sendBufBytes = 0
	rm.outQ = nil
	rm.outQBytes = 0
	rm.freeMsgs = nil
	if rm.rateTimer != nil {
		rm.rateTimer.Cancel()
		rm.rateTimer = nil
	}
}

// excludePeer truncates a crashed member's stream beyond the flush target
// and stops expecting traffic from it.
func (rm *relMcast) excludePeer(p NodeID, upto uint64) {
	ps := rm.peer(p)
	ps.excluded = true
	rm.credits.forget(p) // excluded members never gate; drop the cursor
	for seq := upto + 1; seq <= ps.maxSeen; seq++ {
		if m, ok := ps.recvBuf[seq]; ok {
			delete(ps.recvBuf, seq)
			rm.recycleMsg(m)
		}
	}
	if ps.maxSeen > upto {
		ps.maxSeen = upto
	}
	if ps.reasmActive {
		ps.reasmActive = false
		ps.reasm = ps.reasm[:0]
	}
	if ps.nackTimer != nil {
		ps.nackTimer.Cancel()
		ps.nackTimer = nil
	}
}
