package gcs

import "testing"

// TestShareEmptyView guards the buffer-share computation against a view
// with no members (every peer removed during a fault scenario): it must
// fall back to the whole pool instead of dividing by zero.
func TestShareEmptyView(t *testing.T) {
	c := newCluster(t, 2, 1, nil)
	st := c.stacks[1]
	full := st.cfg.BufferBytes
	if got := st.rm.share(); got != full/2 {
		t.Fatalf("share with 2 members = %d, want %d", got, full/2)
	}
	st.view = View{ID: st.view.ID + 1, Members: nil}
	if got := st.rm.share(); got != full {
		t.Fatalf("share with empty view = %d, want the whole pool %d", got, full)
	}
	// drain consults share(); it must not panic on the empty view.
	st.rm.drain()
}
