// Package gcs implements the group communication prototype evaluated by the
// paper (Section 3.4): an atomic multicast built as two layers — a
// view-synchronous reliable multicast and a fixed-sequencer total order
// protocol.
//
// The bottom layer disseminates messages with IP multicast where available
// (falling back to unicast), repairs losses with a window-based
// receiver-initiated NACK mechanism similar to TCP, detects message
// stability with a scalable gossip protocol (vectors S/M and voter set W),
// and performs flow control with a rate-based mechanism during first
// transmission and a window/buffer-share mechanism thereafter. Membership is
// maintained by a consensus-style coordinator protocol that installs new
// views when failures are detected; the sequencer is the first member of the
// current view and is replaced when it fails.
//
// This is "real code" in the paper's sense: it is written against
// runtimeapi.Runtime only and runs identically on the centralized simulation
// runtime and on the native bridge.
package gcs

import (
	"fmt"
	"sort"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// NodeID aliases the runtime identifier type.
type NodeID = runtimeapi.NodeID

// Config parameterizes one member's protocol stack.
type Config struct {
	// Self is this member's node ID.
	Self NodeID
	// Members is the initial view membership. It is sorted by New.
	Members []NodeID
	// Group is the multicast group carrying this stack's traffic.
	Group runtimeapi.Group
	// UseMulticast selects IP multicast dissemination (LAN). When false
	// the stack unicasts to every member (WAN fallback).
	UseMulticast bool
	// MaxPacket bounds a single wire datagram; app messages larger than
	// this are fragmented. Defaults to 1400.
	MaxPacket int
	// BufferBytes is the total buffer pool; each member may own at most
	// BufferBytes/len(Members) of unstable transmitted data (the "buffer
	// share" whose exhaustion the paper observes under loss). Defaults to
	// 96 KiB.
	BufferBytes int
	// Window caps a sender's unstable (unacknowledged-stable) messages,
	// the second-phase flow control. Defaults to 256.
	Window int
	// RateBps is the first-phase rate-based flow control in bytes/s.
	// Defaults to 6 MB/s (about half of Ethernet-100).
	RateBps int64
	// MaxQueuedBytes bounds the unsent transmit queue: a Multicast whose
	// payload would push the queued-but-unsent bytes past this limit is
	// refused (Multicast returns false, Stats.FlowRejected counts it)
	// instead of growing the queue without bound. 0 selects the default
	// (1 MiB); negative disables the bound (the pre-flow-control
	// behaviour, kept for regression baselines).
	MaxQueuedBytes int
	// CreditsPerDest is the per-destination credit window in chunks:
	// transmission stalls once any live destination lags this far behind
	// the send cursor (its acknowledgement is learned from stability
	// gossip horizons). 0 selects the default (192, inside the stability
	// Window so healthy receivers never bind); negative disables credits.
	CreditsPerDest int
	// AssignWindow caps the sequencer's assigned-but-undelivered span:
	// when nextGlobal runs this far ahead of local delivery, further
	// assignments are deferred until delivery catches up, throttling the
	// total-order pipeline instead of buffering unbounded order state at
	// every member. 0 selects the default (1024); negative disables the
	// throttle.
	AssignWindow int
	// NackDelay is how long a receiver waits on a gap before requesting
	// repair. Defaults to 2ms.
	NackDelay sim.Time
	// RetransPeriod paces NACK re-sends and view-change message
	// retransmissions. Defaults to 10ms.
	RetransPeriod sim.Time
	// StabilityPeriod paces stability gossip rounds. Defaults to 25ms.
	StabilityPeriod sim.Time
	// HeartbeatPeriod paces liveness heartbeats. Defaults to 100ms.
	HeartbeatPeriod sim.Time
	// FailTimeout is the failure detector's silence threshold. Defaults
	// to 1s.
	FailTimeout sim.Time
	// Joining starts the stack in recovery-join mode: instead of assuming
	// the configured membership is live, the node periodically requests
	// admission from the current view. The membership layer runs a view
	// change that admits it without flushing (it holds no old-view state),
	// and the sequencer then sends the catch-up sequence — the total-order
	// position below which the node must state-transfer a database
	// snapshot instead of replaying deliveries. The OnJoined upcall fires
	// when that sequence is known. Members must use the same full member
	// universe in Members as the original group.
	Joining bool
	// PrimaryComponent enforces the primary-partition membership rule: a
	// member that can no longer reach a strict majority of its current
	// view wedges (halts the stack) instead of installing a minority view,
	// so a network partition cannot produce split-brain progress. The
	// majority side keeps quorum, excludes the silent members, and
	// continues. Off by default: crash-only runs never lose quorum and
	// keep the paper's original behaviour.
	PrimaryComponent bool
	// NonUniformSequencer is a test-only hook reverting the uniform
	// sequencer delivery fix: the sequencer delivers self-assigned messages
	// without waiting for a majority to hold the assignment, resurrecting
	// the lost-announcement safety hole documented in totalorder.go. It
	// exists so the adversarial explorer's self-tests and saved repros of
	// the historical bug keep reproducing on a healthy tree. Never set it
	// in production configurations.
	NonUniformSequencer bool
	// Costs is the deterministic CPU cost model for this real code.
	Costs CostModel
}

func (c *Config) fill() {
	if c.MaxPacket == 0 {
		c.MaxPacket = 1400
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 384 * 1024
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.RateBps == 0 {
		c.RateBps = 6_000_000
	}
	if c.MaxQueuedBytes == 0 {
		c.MaxQueuedBytes = 1 << 20
	}
	if c.CreditsPerDest == 0 {
		c.CreditsPerDest = 192
	}
	if c.AssignWindow == 0 {
		c.AssignWindow = 1024
	}
	if c.NackDelay == 0 {
		c.NackDelay = 20 * sim.Millisecond
	}
	if c.RetransPeriod == 0 {
		c.RetransPeriod = 100 * sim.Millisecond
	}
	if c.StabilityPeriod == 0 {
		c.StabilityPeriod = 100 * sim.Millisecond
	}
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = 100 * sim.Millisecond
	}
	if c.FailTimeout == 0 {
		c.FailTimeout = 1 * sim.Second
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCostModel()
	}
}

// View is an installed membership.
type View struct {
	ID      uint32
	Members []NodeID
}

// Sequencer reports the fixed sequencer of this view: its first member.
func (v View) Sequencer() NodeID {
	if len(v.Members) == 0 {
		return -1
	}
	return v.Members[0]
}

// Contains reports membership of id.
func (v View) Contains(id NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Delivery is one totally-ordered application message.
type Delivery struct {
	// Global is the total-order sequence number, identical at all
	// members.
	Global uint64
	// Sender is the originating member.
	Sender NodeID
	// Payload is the application data.
	Payload []byte
}

// OptDelivery is a tentative (optimistic) delivery: the message has been
// received reliably but not yet ordered by the sequencer. On LANs the
// spontaneous arrival order usually matches the final total order, letting
// the application start processing one ordering round-trip early — the
// optimistic total order approach the paper lists as ongoing work
// (Section 7, [25]). The final Delivery always follows; OptDeliveries whose
// arrival position disagrees with the final order are counted as
// mispredictions in Stats.
type OptDelivery struct {
	// Sender is the originating member.
	Sender NodeID
	// MsgID identifies the message within the sender's stream; the final
	// Delivery for the same message carries the same sender and payload.
	MsgID uint64
	// Payload is the application data.
	Payload []byte
}

// Stats counts protocol activity for the experiment reports.
type Stats struct {
	Sent        int64 // data chunks first-transmitted
	Retransmits int64 // chunks retransmitted on NACK
	Nacks       int64 // NACKs sent
	AssignAcks  int64 // assignment acks sent (uniform sequencer delivery)
	Gossips     int64 // gossip messages sent
	GossipsRecv int64 // gossip messages received and accepted
	Delivered   int64 // app messages delivered in total order
	Optimistic  int64 // tentative deliveries (when enabled)
	// Mispredicted counts final deliveries whose optimistic (arrival)
	// position disagreed with the total order.
	Mispredicted int64
	// ParseErrors counts malformed wire messages dropped by the receive
	// path. A nonzero value under a loss-free run is a wire-format
	// regression; silent drops would make one invisible.
	ParseErrors int64
	Blocked     int64 // times a cast had to queue on flow control
	BlockedTime sim.Time
	// CreditStalls counts transmission episodes blocked on an exhausted
	// per-destination credit window (a lagging receiver throttling the
	// sender).
	CreditStalls int64
	// AssignDeferred counts sequencer assignments deferred because the
	// assigned-but-undelivered span hit AssignWindow.
	AssignDeferred int64
	// FlowRejected counts Multicasts refused because the unsent transmit
	// queue was at MaxQueuedBytes. Every refusal is reported to the
	// caller (Multicast returns false); this counter keeps refusals
	// visible in campaign reports.
	FlowRejected int64
	// QueuePeakBytes is the high-water mark of the unsent transmit queue.
	QueuePeakBytes int64
	ViewChanges    int64
	// QuorumLosses counts wedges under the primary-component rule: the
	// member found itself unable to reach a majority of its view and
	// halted rather than risk minority progress.
	QuorumLosses int64
	// JoinRequests counts admission requests sent while joining; Joins
	// counts views this stack was admitted into as a joiner (0 or 1).
	JoinRequests int64
	Joins        int64
	// RelaysSent and RelaysRecv count point-to-point relay payloads (the
	// cross-group commit round's unordered control traffic).
	RelaysSent int64
	RelaysRecv int64
	// FlushAbandons counts flush rounds abandoned because the proposer
	// itself became suspected mid-flush — a crash landing inside a view
	// change, the double-fault corner the membership layer restarts from.
	FlushAbandons int64
	// UniformStalls counts sequencer deliveries deferred by the uniformity
	// gate: the message was self-assigned but no majority held the
	// assignment yet (see totalorder.go).
	UniformStalls int64
}

// Stack is one member's group communication endpoint.
type Stack struct {
	rt  runtimeapi.Runtime
	cfg Config

	view         View
	rank         int // my index in view.Members
	onDeliver    func(Delivery)
	onOpt        func(OptDelivery)
	onOptDiscard func(OptDelivery)
	onView       func(View)
	onJoined     func(joinSeq uint64)
	onRelay      func(src NodeID, payload []byte)

	rm    *relMcast
	stab  *stability
	to    *totalOrder
	memb  *membership
	stats Stats

	started bool
	stopped bool

	// Join (recovery) state: joining is true from Start until a view
	// admitting this node installs; joinSynced becomes true when the
	// sequencer's joinSync announces the catch-up sequence.
	joining    bool
	joinSynced bool
	joinSeq    uint64
}

// New builds a stack. The member list is copied and sorted; all members must
// use identical lists.
func New(rt runtimeapi.Runtime, cfg Config) (*Stack, error) {
	cfg.fill()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("gcs: empty member list")
	}
	members := make([]NodeID, len(cfg.Members))
	copy(members, cfg.Members)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	cfg.Members = members
	found := false
	for _, m := range members {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("gcs: self %d not in member list", cfg.Self)
	}
	if cfg.MaxPacket <= dataHeader+64 {
		return nil, fmt.Errorf("gcs: MaxPacket %d too small", cfg.MaxPacket)
	}
	s := &Stack{rt: rt, cfg: cfg}
	s.view = View{ID: 0, Members: members}
	s.rank = s.indexOf(cfg.Self)
	s.joining = cfg.Joining
	s.joinSynced = !cfg.Joining
	s.rm = newRelMcast(s)
	s.stab = newStability(s)
	s.to = newTotalOrder(s)
	s.memb = newMembership(s)
	return s, nil
}

// OnDeliver installs the total-order delivery upcall. Must be set before
// Start.
func (s *Stack) OnDeliver(fn func(Delivery)) { s.onDeliver = fn }

// OnOptimistic installs the tentative-delivery upcall, enabling optimistic
// total order. Must be set before Start.
func (s *Stack) OnOptimistic(fn func(OptDelivery)) { s.onOpt = fn }

// OnOptimisticDiscard installs the upcall for tentatively-delivered messages
// the group discards during a view change (an excluded member's message
// beyond the flush target): they will never reach final delivery, so a
// consumer holding speculative state for them must cancel it. Must be set
// before Start.
func (s *Stack) OnOptimisticDiscard(fn func(OptDelivery)) { s.onOptDiscard = fn }

// OnViewChange installs the view installation upcall.
func (s *Stack) OnViewChange(fn func(View)) { s.onView = fn }

// OnRelay installs the upcall for point-to-point relay payloads (see Relay).
// The payload slice aliases the received datagram per the zero-copy contract;
// the consumer must copy anything it retains past the upcall. Must be set
// before Start.
func (s *Stack) OnRelay(fn func(src NodeID, payload []byte)) { s.onRelay = fn }

// OnJoined installs the recovery-join upcall: it fires once, when a joining
// stack has been admitted to a view and learned its catch-up sequence. Every
// delivery this stack subsequently makes has a global sequence number greater
// than joinSeq; the application must obtain the effects of messages at or
// below joinSeq by state transfer. Must be set before Start.
func (s *Stack) OnJoined(fn func(joinSeq uint64)) { s.onJoined = fn }

// Joined reports whether a joining stack has been admitted and synced (a
// stack that never joined reports true).
func (s *Stack) Joined() bool { return !s.joining && s.joinSynced }

// JoinSeq reports the catch-up sequence learned at join time.
func (s *Stack) JoinSeq() uint64 { return s.joinSeq }

// View reports the current view.
func (s *Stack) View() View { return s.view }

// Stats reports protocol counters.
func (s *Stack) Stats() Stats { return s.stats }

// IsSequencer reports whether this member currently sequences.
func (s *Stack) IsSequencer() bool { return s.view.Sequencer() == s.cfg.Self }

// Start registers the receiver and begins periodic protocol activity. It
// must be invoked from the runtime's dispatch context. A joining stack only
// runs the admission loop; normal operation begins when a view admits it.
func (s *Stack) Start() {
	if s.started {
		return
	}
	s.started = true
	s.rt.SetReceiver(s.receive)
	if s.joining {
		s.memb.startJoin()
		return
	}
	s.stab.startTimer()
	s.memb.startTimers()
}

// Stop silences the stack (used when the local node halts).
func (s *Stack) Stop() { s.halt() }

// halt is the single stop path — explicit Stop, exclusion from the view, and
// quorum-loss wedging all land here. Beyond silencing the stack it releases
// every receive- and send-side buffer immediately: a halted member never
// reaches another stability GC round, so waiting for one would leak each
// buffered message (and the wire bytes its payload aliases) for the rest of
// the run.
func (s *Stack) halt() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.rm.releaseAll()
	s.to.releaseAll()
}

// Stopped reports whether the stack has halted — by Stop, by exclusion from
// the view, or by wedging on quorum loss under the primary-component rule.
func (s *Stack) Stopped() bool { return s.stopped }

// BufferedMessages reports chunks held in receive and send buffers plus
// queued unsent chunks (leak diagnostics: must drop to zero at halt).
func (s *Stack) BufferedMessages() int {
	n := len(s.rm.sendBuf) + len(s.rm.outQ) + len(s.to.pending)
	for _, ps := range s.rm.peers {
		n += len(ps.recvBuf)
	}
	return n
}

// BufferedBytes reports the payload bytes those buffers pin.
func (s *Stack) BufferedBytes() int {
	n := s.rm.sendBufBytes
	for _, c := range s.rm.outQ {
		n += len(c.wire)
	}
	for _, ps := range s.rm.peers {
		for _, m := range ps.recvBuf {
			n += len(m.Data)
		}
	}
	for _, pm := range s.to.pending {
		n += len(pm.data)
	}
	return n
}

// Multicast submits an application payload for atomic (totally ordered)
// multicast to the group, including self-delivery. It never blocks the
// caller: when flow control forbids transmission the message is queued and
// sent when buffer share, window, or tokens free up. The queue itself is
// bounded: when MaxQueuedBytes of unsent payload are already waiting the
// message is refused and Multicast returns false — the backpressure signal
// the admission layer turns into an explicit client rejection. A stopped
// stack still swallows the payload silently (returns true): a halted
// member's messages are lost by definition, not refused.
func (s *Stack) Multicast(payload []byte) bool {
	if s.stopped {
		return true
	}
	if lim := s.cfg.MaxQueuedBytes; lim > 0 && s.rm.outQBytes+len(payload) > lim {
		s.stats.FlowRejected++
		return false
	}
	s.rm.cast(payloadApp, payload)
	return true
}

// receive is the runtime datagram upcall: the single entry point of all
// protocol traffic.
func (s *Stack) receive(src NodeID, data []byte) {
	if s.stopped || len(data) == 0 {
		return
	}
	s.rt.Charge(s.cfg.Costs.msgCost(len(data)))
	s.memb.heard(src)
	if s.joining {
		// Before admission the node holds no view state: group traffic is
		// meaningless to it (stream cursors are set from the flush targets
		// at install; anything dropped here that postdates them is
		// repaired by the reliable layer afterwards). Only the admission
		// decision and a possibly-early catch-up announcement matter.
		switch data[0] {
		case kindDecide:
			m, err := parseDecide(data)
			if err != nil {
				s.stats.ParseErrors++
				return
			}
			s.memb.onDecide(m)
		case kindJoinSync:
			m, err := parseJoinSync(data)
			if err != nil {
				s.stats.ParseErrors++
				return
			}
			s.memb.onJoinSync(m)
		}
		return
	}
	switch data[0] {
	case kindData, kindRetrans:
		m := s.rm.newMsg()
		if err := parseDataInto(m, data); err != nil {
			s.rm.recycleMsg(m)
			s.stats.ParseErrors++
			return
		}
		s.rm.onData(m)
	case kindNack:
		m, err := parseNack(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.rm.onNack(src, m)
	case kindGossip:
		if err := parseGossipInto(&s.stab.gossipScratch, data); err != nil {
			s.stats.ParseErrors++
			return
		}
		s.stats.GossipsRecv++
		s.stab.onGossip(src, &s.stab.gossipScratch)
	case kindHeartbeat:
		// heard() above is all a heartbeat is for.
	case kindPropose:
		m, err := parsePropose(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onPropose(m)
	case kindFlushAck:
		m, err := parseFlushAck(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onFlushAck(src, m)
	case kindDecide:
		m, err := parseDecide(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onDecide(m)
	case kindInstalled:
		m, err := parseInstalled(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onInstalled(src, m)
	case kindJoinReq:
		m, err := parseJoinReq(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onJoinReq(src, m)
	case kindJoinSync:
		m, err := parseJoinSync(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		s.memb.onJoinSync(m)
	case kindAssignAck:
		m, err := parseAssignAck(data)
		if err != nil {
			s.stats.ParseErrors++
			return
		}
		if m.ViewID != s.view.ID {
			return // stale view: the gossip fallback re-carries the cursor
		}
		if s.rm.creditAck(src, m.Seq) {
			s.to.advanceAnnounceSafe()
			s.rm.drain()
		}
	case kindRelay:
		if s.onRelay == nil {
			s.stats.ParseErrors++
			return
		}
		s.stats.RelaysRecv++
		s.onRelay(src, data[1:])
	default:
		// Unknown message kind: equally a wire-format regression.
		s.stats.ParseErrors++
	}
}

// transmit sends a raw wire message to the whole group (multicast or unicast
// fan-out) honouring the configured dissemination mode.
func (s *Stack) transmit(wire []byte) {
	if s.stopped {
		return
	}
	if s.cfg.UseMulticast {
		_ = s.rt.Multicast(s.cfg.Group, wire)
		return
	}
	for _, m := range s.view.Members {
		if m == s.cfg.Self {
			continue
		}
		//lint:bufown-ok exclusive branch with Multicast above; receivers share wire read-only per the zero-copy contract
		_ = s.rt.Send(m, wire)
	}
}

// Relay unicasts an application payload to one node, outside the ordered
// stream — the destination may belong to a different group. Delivery is
// best-effort datagram: no ordering and no retransmission; the cross-group
// commit round layers its own retransmit-until-resolved loop on top. The
// payload is copied into a fresh wire buffer, so the caller keeps ownership.
func (s *Stack) Relay(dst NodeID, payload []byte) {
	if s.stopped || dst == s.cfg.Self {
		return
	}
	//lint:hotalloc-ok relays are rare (multi-group commit control traffic), one wire buffer each
	wire := make([]byte, 0, 1+len(payload))
	wire = append(wire, kindRelay)
	wire = append(wire, payload...)
	s.stats.RelaysSent++
	s.memb.sentSomething()
	_ = s.rt.Send(dst, wire)
}

// transmitTo unicasts a raw wire message.
func (s *Stack) transmitTo(dst NodeID, wire []byte) {
	if s.stopped || dst == s.cfg.Self {
		return
	}
	_ = s.rt.Send(dst, wire)
}

// indexOf reports the position of id in the current view, or -1.
func (s *Stack) indexOf(id NodeID) int {
	for i, m := range s.view.Members {
		if m == id {
			return i
		}
	}
	return -1
}

// deliver hands one ordered message to the application.
func (s *Stack) deliver(d Delivery) {
	s.stats.Delivered++
	if s.onDeliver != nil {
		s.onDeliver(d)
	}
}
