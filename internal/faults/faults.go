// Package faults defines the fault loads of Section 5.3. Faults are
// injected by intercepting calls in and out of the centralized simulation
// runtime (clock drift, scheduling latency), by discarding messages at
// reception (random and bursty loss), and by stopping nodes (crash).
package faults

import (
	"repro/internal/sim"
	"repro/internal/simnet"
)

// LossKind selects a message loss model.
type LossKind int

// Loss model kinds.
const (
	LossNone LossKind = iota
	// LossRandom discards each message independently with probability
	// Rate, modeling transmission errors.
	LossRandom
	// LossBursty alternates receive/discard periods with random
	// durations, modeling congestion; the long-run loss fraction is Rate
	// and bursts average MeanBurst messages.
	LossBursty
)

// Loss configures message loss at every receiver.
type Loss struct {
	Kind      LossKind
	Rate      float64
	MeanBurst float64
}

// nominalMsgInterval converts the paper's burst lengths quoted in messages
// into period durations: at the evaluated loads each host receives roughly
// one message every 10ms.
const nominalMsgInterval = 10 * sim.Millisecond

// NewModel builds a fresh (per-host) loss model, or nil for LossNone.
func (l Loss) NewModel() simnet.LossModel {
	switch l.Kind {
	case LossRandom:
		return &simnet.RandomLoss{P: l.Rate}
	case LossBursty:
		mb := l.MeanBurst
		if mb <= 0 {
			mb = 5
		}
		return &simnet.BurstyLoss{Rate: l.Rate, MeanBurst: sim.Time(mb * float64(nominalMsgInterval))}
	default:
		return nil
	}
}

// Crash stops a site at a given instant; the node ceases all interaction.
type Crash struct {
	Site int32
	At   sim.Time
}

// Recover restarts a previously crashed site at a given instant: the node
// comes back with empty volatile state, rejoins the group through the
// recovery join handshake, state-transfers a snapshot from a donor, and
// resumes serving its clients. Each Recover must match an earlier Crash of
// the same site.
type Recover struct {
	Site int32
	At   sim.Time
}

// Partition isolates a set of sites from the rest of the group between two
// instants, modeling a network split (a failed switch uplink). The listed
// sites must form a strict minority so the remainder keeps a primary
// component: the majority side detects the silence, installs a new view,
// and continues, while the minority wedges on quorum loss. The safety
// condition extends the crash rule: a partitioned-minority site's commit
// log must be a prefix of the survivors'.
type Partition struct {
	// Sites is the isolated (minority) side, by site number.
	Sites []int32
	// At is the instant the cut appears.
	At sim.Time
	// Heal is the instant connectivity returns; zero means the partition
	// never heals.
	Heal sim.Time
}

// Saturation raises the offered load above capacity between two instants:
// every client's think time divides by Factor, so the same closed population
// submits as if it were Factor times more eager. This is the overload fault
// the admission-control and flow-control machinery must degrade gracefully
// under — bounded queues, explicit rejections, throughput near peak —
// instead of collapsing.
type Saturation struct {
	// Factor multiplies the offered load; values <= 1 are inert.
	Factor float64
	// At is the instant saturation begins.
	At sim.Time
	// Until is the instant load returns to nominal; zero means the
	// saturation lasts for the rest of the run.
	Until sim.Time
}

// Active reports whether the saturation injects anything.
func (s Saturation) Active() bool { return s.Factor > 1 }

// SlowNode degrades one site into a gray failure between two instants: its
// simulated CPU work, disk service time, and inbound link all slow by
// Factor, while the protocol's real jobs — and with them heartbeats and
// gossip — stay timely, so the failure detector never suspects it. The slow
// site lags (and throttles its senders through flow-control credits) but the
// system must keep committing with zero safety violations.
type SlowNode struct {
	// Site is the degraded site number.
	Site int32
	// Factor is the degradation multiplier (the issue's canonical gray
	// failure is x10); values <= 1 are inert.
	Factor float64
	// At is the instant degradation begins.
	At sim.Time
	// Until is the instant the site returns to full speed; zero means it
	// stays degraded for the rest of the run.
	Until sim.Time
}

// Duplicate re-delivers random datagrams at every receiver: within the
// window each inbound datagram is independently delivered a second time
// shortly after the first, as a flapping route or retransmitting middlebox
// would. Ordered streams dedupe by sequence number, so this fault really
// targets the raw-datagram relay traffic — the cross-group prepare / vote /
// decide round must be idempotent under it.
type Duplicate struct {
	// Rate is the per-datagram duplication probability; 0 disables.
	Rate float64
	// Delay bounds the lag of the duplicate copy (default 2ms).
	Delay sim.Time
	// At is the instant duplication begins.
	At sim.Time
	// Until is the instant it stops; zero means the rest of the run.
	Until sim.Time
}

// Active reports whether the fault injects anything.
func (d Duplicate) Active() bool { return d.Rate > 0 }

// NewInjector builds the receiver-side injector, or nil when inactive.
func (d Duplicate) NewInjector() *simnet.Injector {
	if !d.Active() {
		return nil
	}
	return &simnet.Injector{Rate: d.Rate, Delay: d.Delay, From: d.At, Until: d.Until}
}

// Reorder delays random datagrams at every receiver: within the window each
// inbound datagram is independently held back long enough for traffic sent
// later to overtake it. Like Duplicate this mostly exercises the unordered
// relay traffic; the ordered streams absorb it as ordinary jitter.
type Reorder struct {
	// Rate is the per-datagram reordering probability; 0 disables.
	Rate float64
	// Delay bounds the hold-back (default 2ms).
	Delay sim.Time
	// At is the instant reordering begins.
	At sim.Time
	// Until is the instant it stops; zero means the rest of the run.
	Until sim.Time
}

// Active reports whether the fault injects anything.
func (r Reorder) Active() bool { return r.Rate > 0 }

// NewInjector builds the receiver-side injector, or nil when inactive.
func (r Reorder) NewInjector() *simnet.Injector {
	if !r.Active() {
		return nil
	}
	return &simnet.Injector{Rate: r.Rate, Delay: r.Delay, From: r.At, Until: r.Until}
}

// Config is a complete fault load for one run.
type Config struct {
	// ClockDriftRate postpones scheduled events by the factor (1+rate)
	// and scales measured durations down, per drifting site.
	ClockDriftRate float64
	// ClockDriftSites lists affected sites (empty with a nonzero rate
	// means all sites drift).
	ClockDriftSites []int32
	// SchedLatencyMean adds an exponentially-distributed delay to events
	// scheduled in the future.
	SchedLatencyMean sim.Time
	// SchedLatencySites lists affected sites (empty means all).
	SchedLatencySites []int32
	// Loss applies to every receiver.
	Loss Loss
	// Crashes stop sites at fixed times.
	Crashes []Crash
	// Recovers restart crashed sites at fixed times (crash-and-rejoin).
	Recovers []Recover
	// Partitions cut the network between scheduled instants.
	Partitions []Partition
	// Saturation drives the offered load above capacity.
	Saturation Saturation
	// SlowNodes degrade sites into gray failures.
	SlowNodes []SlowNode
	// Duplicate re-delivers random datagrams at every receiver.
	Duplicate Duplicate
	// Reorder delays random datagrams past later traffic at every receiver.
	Reorder Reorder
}

// Any reports whether the configuration injects any fault.
func (c Config) Any() bool {
	return c.ClockDriftRate != 0 || c.SchedLatencyMean != 0 ||
		c.Loss.Kind != LossNone || len(c.Crashes) > 0 || len(c.Partitions) > 0 ||
		c.Saturation.Active() || len(c.SlowNodes) > 0 ||
		c.Duplicate.Active() || c.Reorder.Active()
}

// RecoverOf returns the recovery scheduled for a site, or nil.
func (c Config) RecoverOf(site int32) *Recover {
	for i := range c.Recovers {
		if c.Recovers[i].Site == site {
			return &c.Recovers[i]
		}
	}
	return nil
}

// DriftsSite reports whether a site's clock drifts under this config.
func (c Config) DriftsSite(site int32) bool {
	if c.ClockDriftRate == 0 {
		return false
	}
	return matchSite(c.ClockDriftSites, site)
}

// DelaysSite reports whether a site suffers scheduling latency.
func (c Config) DelaysSite(site int32) bool {
	if c.SchedLatencyMean == 0 {
		return false
	}
	return matchSite(c.SchedLatencySites, site)
}

func matchSite(list []int32, site int32) bool {
	if len(list) == 0 {
		return true
	}
	for _, s := range list {
		if s == site {
			return true
		}
	}
	return false
}

// SchedLatencyGen returns the delay generator for the scheduling-latency
// fault.
func (c Config) SchedLatencyGen() func(*sim.RNG) sim.Time {
	mean := c.SchedLatencyMean
	return func(g *sim.RNG) sim.Time { return g.ExpDur(mean) }
}
