package faults

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestLossModelConstruction(t *testing.T) {
	if (Loss{}).NewModel() != nil {
		t.Fatal("LossNone must build no model")
	}
	m := Loss{Kind: LossRandom, Rate: 0.1}.NewModel()
	if _, ok := m.(*simnet.RandomLoss); !ok {
		t.Fatalf("random loss built %T", m)
	}
	mb := Loss{Kind: LossBursty, Rate: 0.05, MeanBurst: 5}.NewModel()
	bl, ok := mb.(*simnet.BurstyLoss)
	if !ok {
		t.Fatalf("bursty loss built %T", mb)
	}
	if bl.MeanBurst != 50*sim.Millisecond {
		t.Fatalf("burst duration = %v, want 50ms for 5 messages", bl.MeanBurst)
	}
	// Default burst length when unset.
	mb2 := Loss{Kind: LossBursty, Rate: 0.05}.NewModel().(*simnet.BurstyLoss)
	if mb2.MeanBurst != 50*sim.Millisecond {
		t.Fatalf("default burst duration = %v", mb2.MeanBurst)
	}
}

func TestSiteMatching(t *testing.T) {
	c := Config{ClockDriftRate: 0.1, ClockDriftSites: []int32{2, 3}}
	if c.DriftsSite(1) || !c.DriftsSite(2) || !c.DriftsSite(3) {
		t.Fatal("drift site matching wrong")
	}
	// Empty list means all sites.
	all := Config{ClockDriftRate: 0.1}
	if !all.DriftsSite(1) || !all.DriftsSite(7) {
		t.Fatal("empty site list must match all")
	}
	// No drift configured: no site drifts.
	none := Config{}
	if none.DriftsSite(1) {
		t.Fatal("zero rate must not drift")
	}
	lat := Config{SchedLatencyMean: sim.Millisecond, SchedLatencySites: []int32{1}}
	if !lat.DelaysSite(1) || lat.DelaysSite(2) {
		t.Fatal("latency site matching wrong")
	}
}

func TestAny(t *testing.T) {
	if (Config{}).Any() {
		t.Fatal("empty config reports faults")
	}
	cases := []Config{
		{ClockDriftRate: 0.01},
		{SchedLatencyMean: sim.Millisecond},
		{Loss: Loss{Kind: LossRandom, Rate: 0.01}},
		{Crashes: []Crash{{Site: 1, At: sim.Second}}},
		{Partitions: []Partition{{Sites: []int32{3}, At: sim.Second, Heal: 2 * sim.Second}}},
	}
	for i, c := range cases {
		if !c.Any() {
			t.Fatalf("case %d should report faults", i)
		}
	}
}

func TestSchedLatencyGen(t *testing.T) {
	c := Config{SchedLatencyMean: 10 * sim.Millisecond}
	gen := c.SchedLatencyGen()
	g := sim.NewRNG(1)
	sum := sim.Time(0)
	const n = 10000
	for i := 0; i < n; i++ {
		d := gen(g)
		if d < 0 {
			t.Fatal("negative latency")
		}
		sum += d
	}
	mean := sum / n
	if mean < 9*sim.Millisecond || mean > 11*sim.Millisecond {
		t.Fatalf("mean latency = %v, want ~10ms", mean)
	}
}
