package check

import (
	"fmt"
	"sort"

	"repro/internal/dbsm"
	"repro/internal/trace"
)

// GroupXLog is one replication group's canonical stream of cross-group
// transaction resolutions, taken from the group's lowest-numbered operational
// site. Within a group the ordinary commit-log check already forces every
// operational site to agree on the certified order, so one stream per group
// suffices for the cross-group conditions.
type GroupXLog struct {
	Group   int
	Site    dbsm.SiteID // the canonical site the stream was taken from
	Records []trace.XRecord
}

// CrossGroup verifies the two safety conditions specific to partial
// replication and returns the first violation, or nil:
//
//  1. Atomicity — every group that resolved a cross-group transaction
//     resolved it the same way. A transaction still in flight at the end of
//     the run may be missing from some groups' streams; only conflicting
//     decisions are violations.
//  2. Serialization — the committed cross-group transactions admit a single
//     serial order consistent with every group's install order. Each group
//     orders its committed records by install sequence; an edge A→B is drawn
//     when A installed before B in some group and their group-local sets
//     conflict. A cycle means the groups interleaved conflicting
//     transactions inconsistently.
//
// Per-group one-copy serializability is checked separately by Logs; this
// checker only compares across groups.
func CrossGroup(groups []GroupXLog) *Violation {
	ordered := make([]GroupXLog, len(groups))
	copy(ordered, groups)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Group < ordered[j].Group })

	// A group recording the same transaction twice poisons both conditions.
	for _, g := range ordered {
		seen := make(map[uint64]int, len(g.Records))
		for i, r := range g.Records {
			if first, dup := seen[r.TID]; dup {
				return &Violation{
					Kind: KindDuplicate, Site: g.Site, Ref: g.Site, Group: g.Group, Pos: i,
					Detail: fmt.Sprintf("tid=%x resolved at position %d and again at position %d",
						r.TID, first, i),
				}
			}
			seen[r.TID] = i
		}
	}

	if v := xAtomicity(ordered); v != nil {
		return v
	}
	return xSerialization(ordered)
}

// xAtomicity flags a transaction decided differently by two groups.
func xAtomicity(ordered []GroupXLog) *Violation {
	type decision struct {
		group  int
		pos    int
		commit bool
	}
	first := make(map[uint64]decision)
	for _, g := range ordered {
		for i, r := range g.Records {
			d, ok := first[r.TID]
			if !ok {
				first[r.TID] = decision{group: g.Group, pos: i, commit: r.Commit}
				continue
			}
			if d.commit != r.Commit {
				verdict := func(c bool) string {
					if c {
						return "committed"
					}
					return "aborted"
				}
				return &Violation{
					Kind: KindAtomicity,
					Site: dbsm.SiteID(d.group), Ref: dbsm.SiteID(g.Group),
					Group: d.group, Pos: i,
					Detail: fmt.Sprintf("tid=%x %s in group %d but %s in group %d",
						r.TID, verdict(d.commit), d.group, verdict(r.Commit), g.Group),
				}
			}
		}
	}
	return nil
}

// xSerialization builds the cross-group conflict serialization graph over
// committed transactions and reports a cycle.
func xSerialization(ordered []GroupXLog) *Violation {
	type node struct {
		tid  uint64
		succ []uint64
	}
	nodes := make(map[uint64]*node)
	tids := []uint64{}
	get := func(tid uint64) *node {
		n, ok := nodes[tid]
		if !ok {
			n = &node{tid: tid}
			nodes[tid] = n
			tids = append(tids, tid)
		}
		return n
	}
	// edge origin, for naming the offending group pair in the verdict.
	edgeGroup := make(map[[2]uint64]int)

	for _, g := range ordered {
		committed := make([]trace.XRecord, 0, len(g.Records))
		for _, r := range g.Records {
			if r.Commit {
				committed = append(committed, r)
			}
		}
		// Install order within the group: by assigned commit sequence, with
		// stream position breaking ties among write-free installs (Seq 0).
		sort.SliceStable(committed, func(i, j int) bool { return committed[i].Seq < committed[j].Seq })
		for i := range committed {
			a := &committed[i]
			for j := i + 1; j < len(committed); j++ {
				b := &committed[j]
				if !xConflict(a, b) {
					continue
				}
				n := get(a.TID)
				get(b.TID)
				n.succ = append(n.succ, b.TID)
				if _, ok := edgeGroup[[2]uint64{a.TID, b.TID}]; !ok {
					edgeGroup[[2]uint64{a.TID, b.TID}] = g.Group
				}
			}
		}
	}

	// Iterative three-color DFS over the sorted node list: a back edge is a
	// cycle. Deterministic because nodes and successor lists are visited in
	// insertion order derived from sorted group streams.
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int, len(tids))
	for _, root := range tids {
		if color[root] != white {
			continue
		}
		type frame struct {
			tid  uint64
			next int
		}
		stack := []frame{{tid: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			n := nodes[f.tid]
			if f.next >= len(n.succ) {
				color[f.tid] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := n.succ[f.next]
			f.next++
			switch color[next] {
			case white:
				color[next] = gray
				stack = append(stack, frame{tid: next})
			case gray:
				// Back edge next←…←f.tid plus edge f.tid→next closes the
				// cycle. A two-transaction cycle has both directed edges, so
				// the verdict names the two groups that installed the pair in
				// opposite orders. A longer cycle has no reverse edge for this
				// pair — the zero-value lookup would name a nonexistent group
				// 0 — so only the closing edge's group is named and the detail
				// is worded for the general case.
				g1 := edgeGroup[[2]uint64{f.tid, next}]
				g2, twoCycle := edgeGroup[[2]uint64{next, f.tid}]
				detail := fmt.Sprintf("tid=%x and tid=%x conflict and installed in opposite orders (cycle of conflicting cross-group commits)",
					f.tid, next)
				if !twoCycle {
					g2 = g1
					detail = fmt.Sprintf("tid=%x and tid=%x close a cycle of conflicting cross-group commits (no single serial order over the groups' install orders)",
						f.tid, next)
				}
				return &Violation{
					Kind: KindCrossCycle,
					Site: dbsm.SiteID(g1), Ref: dbsm.SiteID(g2),
					Group: g1, Pos: -1,
					Detail: detail,
				}
			}
		}
	}
	return nil
}

// xConflict reports whether two committed records' group-local sets conflict
// (write-write, write-read, or read-write).
func xConflict(a, b *trace.XRecord) bool {
	return a.WriteSet.Intersects(b.WriteSet) ||
		a.WriteSet.Intersects(b.ReadSet) ||
		a.ReadSet.Intersects(b.WriteSet)
}
