package check

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{KindDivergence, "divergence"},
		{KindReorder, "reorder"},
		{KindLengthMismatch, "length-mismatch"},
		{KindNonPrefix, "non-prefix"},
		{Kind(0), "unknown"},
		{Kind(99), "unknown"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.kind, got, c.want)
		}
	}
}

func TestViolationErrorFormat(t *testing.T) {
	v := &Violation{
		Kind:   KindDivergence,
		Site:   3,
		Ref:    1,
		Pos:    17,
		Detail: "committed (seq=18 tid=ff), reference committed (seq=18 tid=aa)",
	}
	got := v.Error()
	for _, want := range []string{"check:", "divergence", "site 3", "site 1", "position 17", "tid=ff"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
	var err error = v // Violation must satisfy error
	if err.Error() != got {
		t.Errorf("error interface renders differently: %q vs %q", err.Error(), got)
	}
}

func TestLengthMismatchUsesSentinelPosition(t *testing.T) {
	shared := []trace.CommitEntry{{Seq: 1, TID: 0xa}, {Seq: 2, TID: 0xb}}
	v := Logs([]SiteLog{
		{Site: 1, Operational: true, Entries: shared},
		{Site: 2, Operational: true, Entries: shared[:1]},
	})
	if v == nil || v.Kind != KindLengthMismatch {
		t.Fatalf("want length-mismatch, got %v", v)
	}
	if v.Pos != -1 {
		t.Errorf("length mismatch Pos = %d, want -1 sentinel", v.Pos)
	}
	if !strings.Contains(v.Error(), "position -1") {
		t.Errorf("Error() = %q, sentinel position not rendered", v.Error())
	}
}

func TestRecoveredSiteNamedInDetail(t *testing.T) {
	v := Logs([]SiteLog{
		{Site: 1, Operational: true, Entries: []trace.CommitEntry{{Seq: 1, TID: 0xa}}},
		{Site: 2, Operational: true, Recovered: true, Entries: []trace.CommitEntry{{Seq: 1, TID: 0xc}}},
	})
	if v == nil || v.Kind != KindDivergence {
		t.Fatalf("want divergence, got %v", v)
	}
	if !strings.HasPrefix(v.Detail, "recovered site ") {
		t.Errorf("Detail = %q, want recovered-site prefix", v.Detail)
	}

	v = Logs([]SiteLog{
		{Site: 1, Operational: true, Entries: []trace.CommitEntry{{Seq: 1, TID: 0xa}}},
		{Site: 2, Operational: true, Recovered: true, Entries: nil},
	})
	if v == nil || v.Kind != KindLengthMismatch {
		t.Fatalf("want length-mismatch, got %v", v)
	}
	if !strings.HasPrefix(v.Detail, "recovered site ") {
		t.Errorf("Detail = %q, want recovered-site prefix", v.Detail)
	}
}

func TestNonPrefixDetailNamesBothHistories(t *testing.T) {
	v := Logs([]SiteLog{
		{Site: 1, Operational: true, Entries: []trace.CommitEntry{{Seq: 1, TID: 0xa}}},
		{Site: 2, Operational: false, Entries: []trace.CommitEntry{{Seq: 1, TID: 0xa}, {Seq: 2, TID: 0xb}}},
	})
	if v == nil || v.Kind != KindNonPrefix {
		t.Fatalf("want non-prefix, got %v", v)
	}
	if v.Pos != 1 {
		t.Errorf("Pos = %d, want 1 (first position beyond the survivors)", v.Pos)
	}
	if !strings.Contains(v.Detail, "beyond the survivors") {
		t.Errorf("Detail = %q, want beyond-the-survivors wording", v.Detail)
	}
}
