package check

import (
	"strings"
	"testing"

	"repro/internal/dbsm"
	"repro/internal/trace"
)

// hist builds a commit history from (seq, tid) pairs.
func hist(entries ...[2]uint64) []trace.CommitEntry {
	out := make([]trace.CommitEntry, len(entries))
	for i, e := range entries {
		out[i] = trace.CommitEntry{Seq: e[0], TID: e[1]}
	}
	return out
}

func site(id dbsm.SiteID, op bool, entries ...[2]uint64) SiteLog {
	return SiteLog{Site: id, Operational: op, Entries: hist(entries...)}
}

func TestIdenticalLogsAreSafe(t *testing.T) {
	v := Logs([]SiteLog{
		site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
		site(2, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
		site(3, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
	})
	if v != nil {
		t.Fatalf("identical logs flagged: %v", v)
	}
}

func TestNoOperationalSitesVacuouslySafe(t *testing.T) {
	if v := Logs([]SiteLog{site(1, false, [2]uint64{1, 1})}); v != nil {
		t.Fatalf("no-operational case should pass vacuously: %v", v)
	}
	if v := Logs(nil); v != nil {
		t.Fatalf("empty input should pass vacuously: %v", v)
	}
}

// TestMutationsAreDetectedAndNamed is the checker's self-test: feed
// deliberately corrupted histories — divergent, reordered, length-mismatched
// and non-prefix — and assert each violation kind is detected, attributed to
// the right site, and named correctly.
func TestMutationsAreDetectedAndNamed(t *testing.T) {
	cases := []struct {
		name     string
		sites    []SiteLog
		kind     Kind
		site     dbsm.SiteID
		pos      int
		wantText string
	}{
		{
			name: "divergent entry",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
				site(2, true, [2]uint64{1, 10}, [2]uint64{2, 99}),
			},
			kind: KindDivergence, site: 2, pos: 1, wantText: "divergence",
		},
		{
			name: "divergent sequence numbers",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
				site(2, true, [2]uint64{1, 10}, [2]uint64{3, 20}),
			},
			// Same TIDs but disagreeing certification sequence numbers:
			// the multiset of (seq, tid) pairs differs positionally while
			// TIDs match, which sameTxnSet classifies as a reorder of the
			// same transactions.
			kind: KindReorder, site: 2, pos: 1, wantText: "reorder",
		},
		{
			name: "reordered history",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
				site(2, true, [2]uint64{1, 10}, [2]uint64{2, 30}, [2]uint64{3, 20}),
			},
			kind: KindReorder, site: 2, pos: 1, wantText: "reorder",
		},
		{
			name: "length mismatch between operational sites",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
				site(2, true, [2]uint64{1, 10}),
			},
			kind: KindLengthMismatch, site: 2, pos: -1, wantText: "length-mismatch",
		},
		{
			name: "stopped site diverges inside its prefix",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
				site(3, false, [2]uint64{1, 99}),
			},
			kind: KindNonPrefix, site: 3, pos: 0, wantText: "non-prefix",
		},
		{
			name: "stopped site committed beyond survivors",
			sites: []SiteLog{
				site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}),
				site(3, false, [2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
			},
			kind: KindNonPrefix, site: 3, pos: 2, wantText: "non-prefix",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Logs(tc.sites)
			if v == nil {
				t.Fatal("mutation not detected")
			}
			if v.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", v.Kind, tc.kind)
			}
			if v.Site != tc.site {
				t.Fatalf("offending site = %d, want %d", v.Site, tc.site)
			}
			if v.Pos != tc.pos {
				t.Fatalf("position = %d, want %d", v.Pos, tc.pos)
			}
			if !strings.Contains(v.Error(), tc.wantText) {
				t.Fatalf("error %q does not name kind %q", v.Error(), tc.wantText)
			}
		})
	}
}

func TestStoppedSitePrefixAllowed(t *testing.T) {
	v := Logs([]SiteLog{
		site(1, true, [2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
		site(2, true, [2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30}),
		site(3, false, [2]uint64{1, 10}), // crashed or partitioned early
	})
	if v != nil {
		t.Fatalf("prefix log of a stopped site flagged: %v", v)
	}
}

func TestReferenceIsLowestOperationalSite(t *testing.T) {
	// Site 1 is down; site 2 becomes the reference, so the violation is
	// attributed to site 3 against reference 2.
	v := Logs([]SiteLog{
		site(1, false),
		site(2, true, [2]uint64{1, 10}),
		site(3, true, [2]uint64{1, 77}),
	})
	if v == nil {
		t.Fatal("divergence not detected")
	}
	if v.Ref != 2 || v.Site != 3 {
		t.Fatalf("attribution site=%d ref=%d, want site=3 ref=2", v.Site, v.Ref)
	}
}

func TestFromCommitLogs(t *testing.T) {
	a, b := &trace.CommitLog{}, &trace.CommitLog{}
	a.Append(1, 10)
	b.Append(1, 10)
	b.Append(2, 20)
	logs := map[dbsm.SiteID]*trace.CommitLog{1: a, 2: b}
	sites := FromCommitLogs(logs, map[dbsm.SiteID]bool{1: false, 2: true})
	if v := Logs(sites); v != nil {
		t.Fatalf("prefix case flagged: %v", v)
	}
	sites = FromCommitLogs(logs, map[dbsm.SiteID]bool{1: true, 2: true})
	v := Logs(sites)
	if v == nil || v.Kind != KindLengthMismatch {
		t.Fatalf("operational length mismatch not flagged: %v", v)
	}
}
