package check

// Verdict-formatting and detection tests for the cross-group checker: the
// partial-replication violation kinds must render the group pair (not a
// site pair), group-scoped per-group violations must carry the group id,
// and the two cross-group conditions must fire on minimal counterexamples.

import (
	"strings"
	"testing"

	"repro/internal/dbsm"
	"repro/internal/trace"
)

func TestCrossKindStrings(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{KindDuplicate, "double-commit"},
		{KindAtomicity, "atomicity"},
		{KindCrossCycle, "cross-group-cycle"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.kind, got, c.want)
		}
	}
}

// TestGroupScopedViolationRendersGroup: a per-group 1SR violation found in
// group mode carries the group id and renders it ahead of the site pair.
func TestGroupScopedViolationRendersGroup(t *testing.T) {
	v := &Violation{
		Kind: KindDivergence, Group: 2, Site: 5, Ref: 4, Pos: 3,
		Detail: "committed (seq=4 tid=bb), reference committed (seq=4 tid=aa)",
	}
	got := v.Error()
	for _, want := range []string{"divergence", "group 2", "site 5", "site 4", "position 3"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}

// TestCrossGroupViolationRendersGroupPair: atomicity and cycle verdicts name
// two groups, not two sites.
func TestCrossGroupViolationRendersGroupPair(t *testing.T) {
	v := &Violation{
		Kind: KindAtomicity, Site: 1, Ref: 3, Group: 1, Pos: 7,
		Detail: "tid=2a committed in group 1 but aborted in group 3",
	}
	got := v.Error()
	for _, want := range []string{"atomicity", "group 1 vs group 3", "position 7", "tid=2a"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "site") {
		t.Errorf("Error() = %q, cross-group verdict must not render a site pair", got)
	}
}

func xrec(tid uint64, commit bool, seq uint64, rs, ws []dbsm.TupleID) trace.XRecord {
	return trace.XRecord{
		TID: tid, Commit: commit, Seq: seq,
		ReadSet: dbsm.NewItemSet(rs...), WriteSet: dbsm.NewItemSet(ws...),
	}
}

func TestCrossGroupAgreementIsSafe(t *testing.T) {
	a := dbsm.MakeTupleID(1, 10)
	b := dbsm.MakeTupleID(1, 20)
	groups := []GroupXLog{
		{Group: 1, Site: 1, Records: []trace.XRecord{
			xrec(0x10, true, 5, nil, []dbsm.TupleID{a}),
			xrec(0x20, false, 0, nil, nil),
		}},
		{Group: 2, Site: 4, Records: []trace.XRecord{
			xrec(0x10, true, 9, nil, []dbsm.TupleID{b}),
			// tid 0x30 is still in flight in group 1: missing there, not a
			// violation here.
			xrec(0x30, true, 10, nil, nil),
		}},
	}
	if v := CrossGroup(groups); v != nil {
		t.Fatalf("consistent streams flagged: %v", v)
	}
}

func TestAtomicityViolationDetected(t *testing.T) {
	groups := []GroupXLog{
		{Group: 1, Site: 1, Records: []trace.XRecord{xrec(0x2a, true, 5, nil, nil)}},
		{Group: 3, Site: 7, Records: []trace.XRecord{xrec(0x2a, false, 0, nil, nil)}},
	}
	v := CrossGroup(groups)
	if v == nil || v.Kind != KindAtomicity {
		t.Fatalf("want atomicity violation, got %v", v)
	}
	for _, want := range []string{"tid=2a", "committed in group 1", "aborted in group 3"} {
		if !strings.Contains(v.Detail, want) {
			t.Errorf("Detail = %q, missing %q", v.Detail, want)
		}
	}
	if !strings.Contains(v.Error(), "group 1 vs group 3") {
		t.Errorf("Error() = %q, missing group pair", v.Error())
	}
}

// TestCrossCycleDetected: two groups install the same conflicting pair in
// opposite orders — the minimal unserializable interleaving.
func TestCrossCycleDetected(t *testing.T) {
	x := dbsm.MakeTupleID(2, 7)
	groups := []GroupXLog{
		{Group: 1, Site: 1, Records: []trace.XRecord{
			xrec(0xa, true, 1, nil, []dbsm.TupleID{x}),
			xrec(0xb, true, 2, nil, []dbsm.TupleID{x}),
		}},
		{Group: 2, Site: 4, Records: []trace.XRecord{
			xrec(0xb, true, 1, nil, []dbsm.TupleID{x}),
			xrec(0xa, true, 2, nil, []dbsm.TupleID{x}),
		}},
	}
	v := CrossGroup(groups)
	if v == nil || v.Kind != KindCrossCycle {
		t.Fatalf("want cross-group cycle, got %v", v)
	}
	if !strings.Contains(v.Detail, "opposite orders") {
		t.Errorf("Detail = %q, missing opposite-orders wording", v.Detail)
	}
	for _, want := range []string{"tid=a", "tid=b"} {
		if !strings.Contains(v.Detail, want) {
			t.Errorf("Detail = %q, missing %q", v.Detail, want)
		}
	}
	if !strings.Contains(v.Error(), "cross-group-cycle") {
		t.Errorf("Error() = %q, missing kind", v.Error())
	}
}

// TestCrossCycleLongerThanTwoDetected: a three-transaction cycle spread over
// three groups has no reverse edge for the closing pair, so the verdict must
// name the closing edge's real group (never the nonexistent group 0) and word
// the detail for a general cycle rather than an opposite-order pair.
func TestCrossCycleLongerThanTwoDetected(t *testing.T) {
	x := dbsm.MakeTupleID(3, 1)
	y := dbsm.MakeTupleID(3, 2)
	z := dbsm.MakeTupleID(3, 3)
	groups := []GroupXLog{
		// a→b in group 1, b→c in group 2, c→a in group 3: a 3-cycle with no
		// two-transaction subcycle.
		{Group: 1, Site: 1, Records: []trace.XRecord{
			xrec(0xa, true, 1, nil, []dbsm.TupleID{x}),
			xrec(0xb, true, 2, nil, []dbsm.TupleID{x}),
		}},
		{Group: 2, Site: 4, Records: []trace.XRecord{
			xrec(0xb, true, 1, nil, []dbsm.TupleID{y}),
			xrec(0xc, true, 2, nil, []dbsm.TupleID{y}),
		}},
		{Group: 3, Site: 7, Records: []trace.XRecord{
			xrec(0xc, true, 1, nil, []dbsm.TupleID{z}),
			xrec(0xa, true, 2, nil, []dbsm.TupleID{z}),
		}},
	}
	v := CrossGroup(groups)
	if v == nil || v.Kind != KindCrossCycle {
		t.Fatalf("want cross-group cycle, got %v", v)
	}
	if v.Site == 0 || v.Ref == 0 || v.Group == 0 {
		t.Errorf("verdict names group 0: Site=%d Ref=%d Group=%d", v.Site, v.Ref, v.Group)
	}
	if strings.Contains(v.Detail, "opposite orders") {
		t.Errorf("Detail = %q, pair wording used for a longer cycle", v.Detail)
	}
	if !strings.Contains(v.Detail, "cycle of conflicting cross-group commits") {
		t.Errorf("Detail = %q, missing cycle wording", v.Detail)
	}
	if !strings.Contains(v.Error(), "cross-group-cycle") {
		t.Errorf("Error() = %q, missing kind", v.Error())
	}
}

func TestCrossGroupDuplicateCarriesGroup(t *testing.T) {
	groups := []GroupXLog{
		{Group: 2, Site: 4, Records: []trace.XRecord{
			xrec(0x5, true, 1, nil, nil),
			xrec(0x5, true, 2, nil, nil),
		}},
	}
	v := CrossGroup(groups)
	if v == nil || v.Kind != KindDuplicate {
		t.Fatalf("want duplicate, got %v", v)
	}
	if v.Group != 2 {
		t.Errorf("Group = %d, want 2", v.Group)
	}
	if !strings.Contains(v.Error(), "group 2") {
		t.Errorf("Error() = %q, group id not rendered", v.Error())
	}
}
