package check

import "errors"

// Triage is the serializable first-divergence annotation a saved repro
// carries: the violation's classification and its exact location, extracted
// from the checker's verdict. It is the machine-readable form of
// Violation.Error(), stable enough to embed in repro JSON files.
type Triage struct {
	// Kind is the violation kind's stable name (Kind.String()).
	Kind string `json:"kind"`
	// Site and Ref are the offending site and the reference site it was
	// compared against; for cross-group kinds they hold the two group ids.
	Site int `json:"site"`
	Ref  int `json:"ref"`
	// Group is the replication group the violation was detected in (0 under
	// full replication or for cross-group kinds).
	Group int `json:"group,omitempty"`
	// Pos is the first differing position, or -1 when only lengths differ.
	Pos int `json:"pos"`
	// Detail is the human-readable elaboration.
	Detail string `json:"detail"`
}

// TriageOf extracts the triage annotation from a run's safety verdict, or
// nil when the error carries no *Violation (or is nil).
func TriageOf(err error) *Triage {
	var v *Violation
	if !errors.As(err, &v) {
		return nil
	}
	return &Triage{
		Kind:   v.Kind.String(),
		Site:   int(v.Site),
		Ref:    int(v.Ref),
		Group:  v.Group,
		Pos:    v.Pos,
		Detail: v.Detail,
	}
}
