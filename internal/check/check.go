// Package check is the reusable one-copy-serializability checker behind the
// paper's off-line safety condition (Section 5.3): after a run, every
// operational site must have committed exactly the same sequence of
// transactions, and a site that stopped participating — because it crashed
// or ended up in a partitioned minority — must have committed a prefix of
// the survivors' sequence.
//
// Unlike an ad-hoc log comparison, the checker classifies what went wrong:
// a Violation names the offending site, the first bad position, and a Kind
// distinguishing divergent histories from reordered ones and from
// non-prefix logs, so randomized fault campaigns can aggregate verdicts per
// failure mode and a single failing schedule reads as a precise bug report.
package check

import (
	"fmt"
	"sort"

	"repro/internal/dbsm"
	"repro/internal/trace"
)

// Kind classifies a safety violation.
type Kind int

// Violation kinds.
const (
	// KindDivergence: two operational sites committed different
	// transactions at the same position (and the histories are not a mere
	// permutation of each other).
	KindDivergence Kind = iota + 1
	// KindReorder: two operational sites committed the same set of
	// transactions in different orders — the total-order property broke
	// while atomicity held.
	KindReorder
	// KindLengthMismatch: two operational sites agree on their common
	// prefix but committed different numbers of transactions.
	KindLengthMismatch
	// KindNonPrefix: a crashed or partitioned-minority site's log is not a
	// prefix of the survivors' — it either committed a transaction the
	// survivors ordered differently, or committed beyond them.
	KindNonPrefix
	// KindDuplicate: one site committed the same transaction identifier
	// twice — the idempotent-resubmission guarantee broke (a rejected
	// transaction that was retried must commit at most once).
	KindDuplicate
	// KindAtomicity: under partial replication, two groups resolved the same
	// cross-group transaction differently — one installed it as committed
	// while another recorded an abort. The atomic-commit round must never
	// let the per-group decisions diverge.
	KindAtomicity
	// KindCrossCycle: the per-group install orders of committed cross-group
	// transactions form a cycle in the conflict serialization graph — the
	// groups disagree on the relative order of conflicting transactions, so
	// no single serial history explains the run.
	KindCrossCycle
)

// String names the violation kind.
func (k Kind) String() string {
	switch k {
	case KindDivergence:
		return "divergence"
	case KindReorder:
		return "reorder"
	case KindLengthMismatch:
		return "length-mismatch"
	case KindNonPrefix:
		return "non-prefix"
	case KindDuplicate:
		return "double-commit"
	case KindAtomicity:
		return "atomicity"
	case KindCrossCycle:
		return "cross-group-cycle"
	default:
		return "unknown"
	}
}

// SiteLog is one site's committed sequence plus its liveness at the end of
// the run. Operational is false for sites that stopped participating
// (crashed, or isolated in a partitioned minority); their logs are held to
// the weaker prefix condition. Recovered marks a site that crashed and
// rejoined: an operational recovered site is held to full equality like any
// survivor — its snapshot-installed log must have re-converged — and the
// flag lets a violation name the rejoin as the likely culprit.
type SiteLog struct {
	Site        dbsm.SiteID
	Operational bool
	Recovered   bool
	Entries     []trace.CommitEntry
}

// Violation is one detected safety violation. It implements error so
// callers can carry it in error-typed fields.
type Violation struct {
	Kind Kind
	// Site is the offending site, Ref the reference (first operational)
	// site it was compared against.
	Site, Ref dbsm.SiteID
	// Group is the replication group the violation was detected in (0 when
	// the run used full replication or the violation spans groups; then Ref
	// carries the second group for cross-group kinds).
	Group int
	// Pos is the first differing position, or -1 when only the lengths
	// differ.
	Pos int
	// Detail is a human-readable elaboration.
	Detail string
}

// Error renders the violation.
func (v *Violation) Error() string {
	switch v.Kind {
	case KindAtomicity, KindCrossCycle:
		// Cross-group kinds compare groups, not sites: Site/Ref hold the
		// two canonical group ids whose records disagree.
		return fmt.Sprintf("check: %s: group %d vs group %d at position %d: %s",
			v.Kind, v.Site, v.Ref, v.Pos, v.Detail)
	}
	if v.Group != 0 {
		return fmt.Sprintf("check: %s: group %d: site %d vs site %d at position %d: %s",
			v.Kind, v.Group, v.Site, v.Ref, v.Pos, v.Detail)
	}
	return fmt.Sprintf("check: %s: site %d vs site %d at position %d: %s",
		v.Kind, v.Site, v.Ref, v.Pos, v.Detail)
}

// Logs verifies the safety condition over per-site commit logs and returns
// the first violation in site order, or nil when the run was safe. The
// reference is the lowest-numbered operational site; with no operational
// site the condition holds vacuously.
func Logs(sites []SiteLog) *Violation {
	ordered := make([]SiteLog, len(sites))
	copy(ordered, sites)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Site < ordered[j].Site })

	// Per-site duplicate scan first: a double commit poisons every other
	// comparison (the same TID at two positions can make two divergent logs
	// look like a permutation), so it is reported with its own kind.
	for i := range ordered {
		if v := findDuplicate(&ordered[i]); v != nil {
			return v
		}
	}

	var ref *SiteLog
	for i := range ordered {
		if ordered[i].Operational {
			ref = &ordered[i]
			break
		}
	}
	if ref == nil {
		return nil
	}
	for i := range ordered {
		s := &ordered[i]
		if s.Site == ref.Site {
			continue
		}
		if v := compare(s, ref); v != nil {
			return v
		}
	}
	return nil
}

// compare checks one site against the reference log.
func compare(s, ref *SiteLog) *Violation {
	n := len(s.Entries)
	if len(ref.Entries) < n {
		n = len(ref.Entries)
	}
	for i := 0; i < n; i++ {
		if s.Entries[i] != ref.Entries[i] {
			if !s.Operational {
				return &Violation{
					Kind: KindNonPrefix, Site: s.Site, Ref: ref.Site, Pos: i,
					Detail: fmt.Sprintf("stopped site committed (seq=%d tid=%x), survivors committed (seq=%d tid=%x)",
						s.Entries[i].Seq, s.Entries[i].TID, ref.Entries[i].Seq, ref.Entries[i].TID),
				}
			}
			kind := KindDivergence
			if sameTxnSet(s.Entries, ref.Entries) {
				kind = KindReorder
			}
			detail := fmt.Sprintf("committed (seq=%d tid=%x), reference committed (seq=%d tid=%x)",
				s.Entries[i].Seq, s.Entries[i].TID, ref.Entries[i].Seq, ref.Entries[i].TID)
			if s.Recovered {
				detail = "recovered site " + detail
			}
			return &Violation{Kind: kind, Site: s.Site, Ref: ref.Site, Pos: i, Detail: detail}
		}
	}
	switch {
	case s.Operational && len(s.Entries) != len(ref.Entries):
		detail := fmt.Sprintf("committed %d transactions, reference committed %d",
			len(s.Entries), len(ref.Entries))
		if s.Recovered {
			detail = "recovered site " + detail
		}
		return &Violation{Kind: KindLengthMismatch, Site: s.Site, Ref: ref.Site, Pos: -1, Detail: detail}
	case !s.Operational && len(s.Entries) > len(ref.Entries):
		return &Violation{
			Kind: KindNonPrefix, Site: s.Site, Ref: ref.Site, Pos: len(ref.Entries),
			Detail: fmt.Sprintf("stopped site committed %d transactions, beyond the survivors' %d",
				len(s.Entries), len(ref.Entries)),
		}
	}
	return nil
}

// findDuplicate scans one site's log for a transaction committed twice.
// Retried submissions make this reachable in principle: the client resubmits
// the same TID after a rejection, and both the original and the resubmission
// must never certify. The scan turns that bug into a first-class verdict.
func findDuplicate(s *SiteLog) *Violation {
	seen := make(map[uint64]int, len(s.Entries))
	for i, e := range s.Entries {
		if first, dup := seen[e.TID]; dup {
			return &Violation{
				Kind: KindDuplicate, Site: s.Site, Ref: s.Site, Pos: i,
				Detail: fmt.Sprintf("tid=%x committed at position %d and again at position %d",
					e.TID, first, i),
			}
		}
		seen[e.TID] = i
	}
	return nil
}

// sameTxnSet reports whether two histories commit the same multiset of
// transaction identifiers (in which case a mismatch is a reordering rather
// than outright divergence).
func sameTxnSet(a, b []trace.CommitEntry) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[uint64]int, len(a))
	for _, e := range a {
		counts[e.TID]++
	}
	for _, e := range b {
		counts[e.TID]--
		if counts[e.TID] < 0 {
			return false
		}
	}
	return true
}

// FromCommitLogs adapts per-site trace.CommitLogs plus an operational map
// (the shape core assembles after a run) into checker input.
func FromCommitLogs(logs map[dbsm.SiteID]*trace.CommitLog, operational map[dbsm.SiteID]bool) []SiteLog {
	out := make([]SiteLog, 0, len(logs))
	for id, l := range logs {
		out = append(out, SiteLog{Site: id, Operational: operational[id], Entries: l.Entries()})
	}
	return out
}
