package tpcc

import (
	"math"
	"testing"

	"repro/internal/csrt"
	"repro/internal/db"
	"repro/internal/sim"
)

func testGen(seed int64, warehouses int) *Generator {
	return NewGenerator(1, warehouses, DefaultCalibration(), sim.NewRNG(seed))
}

func TestMixProportions(t *testing.T) {
	g := testGen(1, 10)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		txn := g.Next(i % 10)
		counts[txn.Class]++
	}
	frac := func(classes ...string) float64 {
		tot := 0
		for _, c := range classes {
			tot += counts[c]
		}
		return float64(tot) / n
	}
	if f := frac(ClassNewOrder); math.Abs(f-0.44) > 0.02 {
		t.Fatalf("neworder fraction = %v", f)
	}
	if f := frac(ClassPaymentLong, ClassPaymentShort); math.Abs(f-0.44) > 0.02 {
		t.Fatalf("payment fraction = %v", f)
	}
	if f := frac(ClassOrderStatusLong, ClassOrderStatusShort); math.Abs(f-0.04) > 0.01 {
		t.Fatalf("orderstatus fraction = %v", f)
	}
	if f := frac(ClassDelivery); math.Abs(f-0.04) > 0.01 {
		t.Fatalf("delivery fraction = %v", f)
	}
	if f := frac(ClassStockLevel); math.Abs(f-0.04) > 0.01 {
		t.Fatalf("stocklevel fraction = %v", f)
	}
	// Long/short split of payment ~60/40.
	pl := float64(counts[ClassPaymentLong]) / float64(counts[ClassPaymentLong]+counts[ClassPaymentShort])
	if math.Abs(pl-0.6) > 0.03 {
		t.Fatalf("payment long fraction = %v", pl)
	}
}

func TestWriteSetsSubsetOfReadSets(t *testing.T) {
	g := testGen(2, 20)
	for i := 0; i < 5000; i++ {
		txn := g.Next(i % 200)
		for _, w := range txn.WriteSet {
			if !txn.ReadSet.Contains(w) {
				t.Fatalf("%s: write %x not in read set", txn.Class, uint64(w))
			}
		}
	}
}

func TestReadOnlyClassesHaveNoWrites(t *testing.T) {
	g := testGen(3, 10)
	seenRO := 0
	for i := 0; i < 5000; i++ {
		txn := g.Next(i % 100)
		switch txn.Class {
		case ClassOrderStatusLong, ClassOrderStatusShort, ClassStockLevel:
			seenRO++
			if !txn.ReadOnly || len(txn.WriteSet) != 0 || txn.WriteBytes != 0 {
				t.Fatalf("%s must be read-only", txn.Class)
			}
		default:
			if txn.ReadOnly {
				t.Fatalf("%s must not be read-only", txn.Class)
			}
			if len(txn.WriteSet) == 0 || txn.WriteBytes <= 0 {
				t.Fatalf("%s must write", txn.Class)
			}
		}
	}
	if seenRO == 0 {
		t.Fatal("no read-only transactions generated")
	}
}

func TestTIDsUniqueAcrossSitesAndInsertsDisjoint(t *testing.T) {
	g1 := NewGenerator(1, 10, DefaultCalibration(), sim.NewRNG(7))
	g2 := NewGenerator(2, 10, DefaultCalibration(), sim.NewRNG(7))
	tids := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		a, b := g1.Next(i%100), g2.Next(i%100)
		if tids[a.TID] || tids[b.TID] {
			t.Fatal("duplicate TID")
		}
		tids[a.TID] = true
		tids[b.TID] = true
		// Inserted rows from different sites must never collide.
		// (Order rows are excluded: delivery updates *existing* shared
		// orders, which may legitimately coincide.)
		for _, w := range a.WriteSet {
			if w.Table() == TableOrderLine || w.Table() == TableHistory {
				if b.WriteSet.Contains(w) {
					t.Fatal("insert identifier collision across sites")
				}
			}
		}
	}
}

func TestPaymentTargetsWarehouseRow(t *testing.T) {
	g := testGen(4, 10)
	found := 0
	for i := 0; i < 2000; i++ {
		txn := g.Next(3) // home warehouse 0 for client 3
		if txn.Class != ClassPaymentLong && txn.Class != ClassPaymentShort {
			continue
		}
		found++
		hasWH := false
		for _, w := range txn.WriteSet {
			if w.Table() == TableWarehouse {
				hasWH = true
			}
		}
		if !hasWH {
			t.Fatal("payment does not update a warehouse row")
		}
	}
	if found == 0 {
		t.Fatal("no payments generated")
	}
}

func TestNewOrderUserAbortFraction(t *testing.T) {
	g := testGen(5, 10)
	n, aborts := 0, 0
	for i := 0; i < 50000; i++ {
		txn := g.Next(i % 100)
		if txn.Class != ClassNewOrder {
			continue
		}
		n++
		if txn.UserAbort {
			aborts++
		}
	}
	f := float64(aborts) / float64(n)
	if math.Abs(f-0.01) > 0.005 {
		t.Fatalf("user abort fraction = %v, want ~0.01", f)
	}
}

func TestCPUDistributionsOrdering(t *testing.T) {
	cal := DefaultCalibration()
	mean := func(class string) float64 { return cal.CPU[class].Mean() }
	if !(mean(ClassDelivery) > mean(ClassNewOrder)) {
		t.Fatal("delivery must be the CPU-bound class")
	}
	if !(mean(ClassPaymentLong) > mean(ClassPaymentShort)) {
		t.Fatal("payment long must cost more than short")
	}
	if !(mean(ClassOrderStatusLong) > mean(ClassOrderStatusShort)) {
		t.Fatal("orderstatus long must cost more than short")
	}
	// Commit cost just under 2ms (Section 4.1).
	c := cal.CommitCPU.Mean() / float64(sim.Millisecond)
	if c < 1.2 || c > 2.2 {
		t.Fatalf("commit CPU mean = %vms", c)
	}
}

func TestOpsSlicedIntoQuanta(t *testing.T) {
	g := testGen(6, 10)
	for i := 0; i < 100; i++ {
		txn := g.Next(0)
		var cpu sim.Time
		for _, op := range txn.Ops {
			if op.Kind == db.OpProcess {
				if op.CPU > DefaultCalibration().Quantum {
					t.Fatalf("quantum exceeded: %v", op.CPU)
				}
				cpu += op.CPU
			}
		}
		if cpu <= 0 {
			t.Fatal("no processing time generated")
		}
	}
}

func TestWarehousesScale(t *testing.T) {
	if Warehouses(5) != 1 || Warehouses(100) != 10 || Warehouses(2000) != 200 {
		t.Fatal("warehouse scaling wrong")
	}
}

func TestClientLifecycle(t *testing.T) {
	k := sim.NewKernel()
	cpus := csrt.NewCPUSet(1, k, nil)
	storage := db.NewStorage(k, db.StorageConfig{}, sim.NewRNG(1))
	server := db.NewServer(k, 1, cpus, storage)
	gen := NewGenerator(1, 1, DefaultCalibration(), sim.NewRNG(2))
	var done int
	issuedLimit := 5
	cl := &Client{
		ID:     0,
		Server: server,
		Gen:    gen,
		Think:  100 * sim.Millisecond,
		OnDone: func(_ *Client, _ *db.Txn, _ db.Outcome) { done++ },
	}
	cl.Stop = func() bool { return cl.Issued() >= int64(issuedLimit) }
	cl.Start(k, sim.NewRNG(3))
	if err := k.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if cl.Issued() != int64(issuedLimit) {
		t.Fatalf("issued = %d, want %d", cl.Issued(), issuedLimit)
	}
	if done != issuedLimit {
		t.Fatalf("done = %d, want %d", done, issuedLimit)
	}
}

func TestProbitSanity(t *testing.T) {
	if math.Abs(probit(0.5)) > 1e-9 {
		t.Fatalf("probit(0.5) = %v", probit(0.5))
	}
	if v := probit(0.975); math.Abs(v-1.96) > 0.01 {
		t.Fatalf("probit(0.975) = %v", v)
	}
	if probit(0.001) >= 0 || probit(0.999) <= 0 {
		t.Fatal("tails have wrong sign")
	}
	if probit(0) != -8 || probit(1) != 8 {
		t.Fatal("bounds not clamped")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := testGen(9, 10), testGen(9, 10)
	for i := 0; i < 1000; i++ {
		ta, tb := a.Next(i%100), b.Next(i%100)
		if ta.TID != tb.TID || ta.Class != tb.Class || len(ta.ReadSet) != len(tb.ReadSet) {
			t.Fatal("generator not deterministic")
		}
	}
}
