// Package tpcc implements the traffic generator and client model of
// Section 3.2: a TPC-C derived OLTP workload (wholesale supplier with
// districts and warehouses) driving the replicated database model. Only the
// workload of the benchmark is used — throughput/screen/keying constraints
// do not apply — and the bimodal classes (payment, orderstatus) are split
// into explicit long/short sub-classes so each class is homogeneous, exactly
// as the paper does for its Tables 1 and 2.
package tpcc

import "repro/internal/dbsm"

// TPC-C table identifiers (the high bits of every tuple ID).
const (
	TableWarehouse uint16 = iota + 1
	TableDistrict
	TableCustomer
	TableHistory
	TableNewOrder
	TableOrder
	TableOrderLine
	TableItem
	TableStock
)

// Scale constants from the TPC-C specification.
const (
	// DistrictsPerWarehouse is fixed by the spec.
	DistrictsPerWarehouse = 10
	// CustomersPerDistrict is fixed by the spec.
	CustomersPerDistrict = 3000
	// ItemCount is the size of the shared item catalog.
	ItemCount = 100000
	// ClientsPerWarehouse scales the database with the client count: each
	// warehouse supports 10 emulated clients (Section 3.2).
	ClientsPerWarehouse = 10
)

// WarehouseRow returns the tuple ID of a warehouse row.
func WarehouseRow(wh int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableWarehouse, uint64(wh))
}

// DistrictRow returns the tuple ID of a district row.
func DistrictRow(wh, d int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableDistrict, uint64(wh*DistrictsPerWarehouse+d))
}

// CustomerRow returns the tuple ID of a customer row.
func CustomerRow(wh, d, c int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableCustomer,
		uint64((wh*DistrictsPerWarehouse+d)*CustomersPerDistrict+c))
}

// StockRow returns the tuple ID of a stock row.
func StockRow(wh, item int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableStock, uint64(wh)*uint64(ItemCount)+uint64(item))
}

// ItemRow returns the tuple ID of a catalog item row.
func ItemRow(item int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableItem, uint64(item))
}

// NewOrderQueueRow returns the tuple ID of the per-district new-order queue
// head, the row delivery transactions contend on.
func NewOrderQueueRow(wh, d int) dbsm.TupleID {
	return dbsm.MakeTupleID(TableNewOrder, uint64(wh*DistrictsPerWarehouse+d))
}

// insertRow builds a globally-unique tuple ID for an inserted row. The
// 48-bit row encodes: originating site (8 bits, so sites never fabricate
// colliding identifiers), home warehouse (16 bits, so partial replication
// can place the row), and a per-site counter (24 bits).
func insertRow(table uint16, site dbsm.SiteID, wh int, counter uint64) dbsm.TupleID {
	row := uint64(uint8(site))<<40 | uint64(uint16(wh))<<24 | counter&((1<<24)-1)
	return dbsm.MakeTupleID(table, row)
}

// existingOrderRow builds the identifier of an already-stored order of a
// warehouse (e.g. the one a delivery updates): warehouse in bits 24..39,
// like inserted rows, so partial replication places it correctly.
func existingOrderRow(wh int, n uint64) dbsm.TupleID {
	return dbsm.MakeTupleID(TableOrder, uint64(uint16(wh))<<24|n&((1<<24)-1))
}

// WarehouseOf extracts the warehouse that owns a tuple, for
// partial-replication placement. The second result is false for tuples not
// tied to a warehouse (the shared item catalog).
func WarehouseOf(id dbsm.TupleID) (int, bool) {
	row := id.Row()
	switch id.Table() {
	case TableWarehouse:
		return int(row), true
	case TableNewOrder:
		// Two row formats share the table: per-district queue heads
		// (small ids, warehouse*10+district) and inserted entries
		// (insertRow format, always >= 2^40 because the site bits are
		// nonzero).
		if row < 1<<24 {
			return int(row / DistrictsPerWarehouse), true
		}
		return int((row >> 24) & 0xFFFF), true
	case TableDistrict:
		return int(row / DistrictsPerWarehouse), true
	case TableCustomer:
		return int(row / (DistrictsPerWarehouse * CustomersPerDistrict)), true
	case TableStock:
		return int(row / ItemCount), true
	case TableHistory, TableOrder, TableOrderLine:
		// Inserted rows carry their warehouse in bits 24..39. Plain
		// (non-insert) order identifiers used by read-only queries
		// have no placement; report the encoded value regardless —
		// read placement does not affect correctness.
		return int((row >> 24) & 0xFFFF), true
	default:
		return 0, false
	}
}
