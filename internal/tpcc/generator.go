package tpcc

import (
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

// Generator produces transaction instances for one site. Every site owns a
// generator so transaction and inserted-row identifiers never collide across
// replicas.
type Generator struct {
	cal        *Calibration
	rng        *sim.RNG
	site       dbsm.SiteID
	warehouses int

	tidCounter    uint32
	insertCounter uint64
}

// NewGenerator builds a generator for a site over a database of the given
// scale.
func NewGenerator(site dbsm.SiteID, warehouses int, cal *Calibration, rng *sim.RNG) *Generator {
	if warehouses < 1 {
		warehouses = 1
	}
	return &Generator{cal: cal, rng: rng, site: site, warehouses: warehouses}
}

// Warehouses reports the configured database scale.
func (g *Generator) Warehouses() int { return g.warehouses }

// Next draws the next transaction for a client whose home warehouse is
// homeWH (0-based).
func (g *Generator) Next(homeWH int) *db.Txn {
	if homeWH >= g.warehouses {
		homeWH = homeWH % g.warehouses
	}
	r := g.rng.Float64()
	switch c := g.cal; {
	case r < c.MixNewOrder:
		return g.newOrder(homeWH)
	case r < c.MixNewOrder+c.MixPayment:
		return g.payment(homeWH)
	case r < c.MixNewOrder+c.MixPayment+c.MixOrderStatus:
		return g.orderStatus(homeWH)
	case r < c.MixNewOrder+c.MixPayment+c.MixOrderStatus+c.MixDelivery:
		return g.delivery(homeWH)
	default:
		return g.stockLevel(homeWH)
	}
}

// NextOfClass draws the next transaction of a fixed top-level class for a
// client homed at homeWH. The aggregate client tier uses this after its own
// per-class thinning of the arrival process; the long/short variant choice
// and every other keying decision still come from this generator's stream,
// exactly as under Next.
//
//hot:path
func (g *Generator) NextOfClass(class ArrivalClass, homeWH int) *db.Txn {
	if homeWH >= g.warehouses {
		homeWH = homeWH % g.warehouses
	}
	switch class {
	case ArrivalNewOrder:
		return g.newOrder(homeWH)
	case ArrivalPayment:
		return g.payment(homeWH)
	case ArrivalOrderStatus:
		return g.orderStatus(homeWH)
	case ArrivalDelivery:
		return g.delivery(homeWH)
	default:
		return g.stockLevel(homeWH)
	}
}

func (g *Generator) nextTID() uint64 {
	g.tidCounter++
	return dbsm.MakeTID(g.site, g.tidCounter)
}

func (g *Generator) nextInsert(table uint16, wh int) dbsm.TupleID {
	g.insertCounter++
	return insertRow(table, g.site, wh, g.insertCounter)
}

// build assembles a db.Txn: fetch operations for every read item, processing
// sliced into round-robin quanta, and the commit cost sample. fetchOnly
// items are fetched during execution but excluded from the certification
// read-set: they model reads of columns no transaction class ever writes
// (e.g. new-order reading W_TAX and D_TAX while payment updates W_YTD and
// D_YTD), where row-granularity certification would manufacture conflicts
// that do not exist semantically.
func (g *Generator) build(class string, readOnly bool, reads, writes, fetchOnly []dbsm.TupleID, writeBytes int, cpu sim.Time) *db.Txn {
	ops := make([]db.Op, 0, len(reads)+len(fetchOnly)+int(cpu/g.cal.Quantum)+2)
	for _, id := range fetchOnly {
		ops = append(ops, db.Op{Kind: db.OpFetch, Item: id})
	}
	for _, id := range reads {
		ops = append(ops, db.Op{Kind: db.OpFetch, Item: id})
	}
	for remaining := cpu; remaining > 0; remaining -= g.cal.Quantum {
		q := g.cal.Quantum
		if remaining < q {
			q = remaining
		}
		ops = append(ops, db.Op{Kind: db.OpProcess, CPU: q})
	}
	// The read-set always covers the write-set: a transaction reads what
	// it updates. Certification correctness of the preemption rule relies
	// on this (Section 3.1).
	rs := dbsm.NewItemSet(append(append([]dbsm.TupleID{}, reads...), writes...)...)
	return &db.Txn{
		TID:        g.nextTID(),
		Class:      class,
		ReadOnly:   readOnly,
		Ops:        ops,
		ReadSet:    rs,
		WriteSet:   dbsm.NewItemSet(writes...),
		WriteBytes: writeBytes,
		CommitCPU:  g.cal.CommitCPU.SampleDur(g.rng),
	}
}

// newOrder: reads warehouse, district, customer, items and stocks; updates
// the stocks and inserts order, new-order and order lines. 1% of instances
// are rolled back by the application (TPC-C 2.4.1.4); 1% of order lines
// come from a remote warehouse.
func (g *Generator) newOrder(wh int) *db.Txn {
	c := g.cal
	d := g.rng.Intn(DistrictsPerWarehouse)
	cust := g.rng.NURand(1023, 0, CustomersPerDistrict-1)
	olcnt := g.rng.IntRange(5, 15)

	// W_TAX and D_TAX are read but never written by any class: they are
	// fetched without entering the certification read-set.
	fetchOnly := []dbsm.TupleID{WarehouseRow(wh), DistrictRow(wh, d)}
	reads := []dbsm.TupleID{CustomerRow(wh, d, cust)}
	writes := make([]dbsm.TupleID, 0, 2*olcnt+3)
	bytes := c.RowOrder + c.RowNewOrder
	for i := 0; i < olcnt; i++ {
		item := g.rng.NURand(8191, 0, ItemCount-1)
		supplyWH := wh
		if g.warehouses > 1 && g.rng.Bool(0.01) {
			supplyWH = g.rng.Intn(g.warehouses)
		}
		reads = append(reads, ItemRow(item), StockRow(supplyWH, item))
		writes = append(writes, StockRow(supplyWH, item))
		writes = append(writes, g.nextInsert(TableOrderLine, wh))
		bytes += c.RowStock + c.RowOrderLine
	}
	writes = append(writes, g.nextInsert(TableOrder, wh), g.nextInsert(TableNewOrder, wh))

	t := g.build(ClassNewOrder, false, reads, writes, fetchOnly, bytes, c.CPU[ClassNewOrder].SampleDur(g.rng))
	t.UserAbort = g.rng.Bool(c.NewOrderUserAbortFraction)
	return t
}

// payment: updates the warehouse (the hot, W-row table driving write-write
// conflicts), district and customer rows and inserts a history record. 15%
// of payments go to a remote warehouse; 60% select the customer by last
// name (the long variant, more processing).
func (g *Generator) payment(homeWH int) *db.Txn {
	c := g.cal
	wh := homeWH
	if g.warehouses > 1 && g.rng.Bool(c.RemoteWarehouseFraction) {
		wh = g.rng.Intn(g.warehouses)
	}
	d := g.rng.Intn(DistrictsPerWarehouse)
	cust := g.rng.NURand(1023, 0, CustomersPerDistrict-1)
	long := g.rng.Bool(c.PaymentLongFraction)
	class := ClassPaymentShort
	if long {
		class = ClassPaymentLong
	}
	reads := []dbsm.TupleID{
		WarehouseRow(wh),
		DistrictRow(wh, d),
		CustomerRow(wh, d, cust),
	}
	writes := []dbsm.TupleID{
		WarehouseRow(wh),
		DistrictRow(wh, d),
		CustomerRow(wh, d, cust),
		g.nextInsert(TableHistory, wh),
	}
	bytes := c.RowWarehouse + c.RowDistrict + c.RowCustomer + c.RowHistory
	return g.build(class, false, reads, writes, nil, bytes, c.CPU[class].SampleDur(g.rng))
}

// orderStatus: read-only; reads a customer (by name 60% of the time — the
// long variant) plus their most recent order and its lines.
func (g *Generator) orderStatus(wh int) *db.Txn {
	c := g.cal
	d := g.rng.Intn(DistrictsPerWarehouse)
	cust := g.rng.NURand(1023, 0, CustomersPerDistrict-1)
	long := g.rng.Bool(c.OrderStatusLongFraction)
	class := ClassOrderStatusShort
	if long {
		class = ClassOrderStatusLong
	}
	reads := []dbsm.TupleID{CustomerRow(wh, d, cust)}
	// The last order and its lines: synthetic identifiers; reads never
	// conflict under the multi-version policy.
	order := g.rng.Int63n(1 << 32)
	reads = append(reads, dbsm.MakeTupleID(TableOrder, uint64(order)))
	for i := 0; i < 10; i++ {
		reads = append(reads, dbsm.MakeTupleID(TableOrderLine, uint64(order)*16+uint64(i)))
	}
	return g.build(class, true, reads, nil, nil, 0, c.CPU[class].SampleDur(g.rng))
}

// delivery: CPU-bound; processes each district's oldest new-order, updating
// the order and the customer's balance. The per-district new-order queue
// head is the contention point between concurrent deliveries; the carrier
// batch anchors on the district it starts from, so two deliveries conflict
// only when they start from the same district of the same warehouse.
func (g *Generator) delivery(wh int) *db.Txn {
	c := g.cal
	reads := make([]dbsm.TupleID, 0, 2*DistrictsPerWarehouse+1)
	writes := make([]dbsm.TupleID, 0, 2*DistrictsPerWarehouse+1)
	startDistrict := g.rng.Intn(DistrictsPerWarehouse)
	queue := NewOrderQueueRow(wh, startDistrict)
	reads = append(reads, queue)
	writes = append(writes, queue)
	bytes := c.RowNewOrder
	for d := 0; d < DistrictsPerWarehouse; d++ {
		order := existingOrderRow(wh, uint64(g.rng.Int63n(1<<24)))
		cust := CustomerRow(wh, d, g.rng.NURand(1023, 0, CustomersPerDistrict-1))
		reads = append(reads, order, cust)
		writes = append(writes, order, cust)
		bytes += c.RowOrder + 100 // balance delta, not the full row
	}
	return g.build(ClassDelivery, false, reads, writes, nil, bytes, c.CPU[ClassDelivery].SampleDur(g.rng))
}

// stockLevel: read-only; examines the district, recent order lines, and the
// stock of their items.
func (g *Generator) stockLevel(wh int) *db.Txn {
	c := g.cal
	d := g.rng.Intn(DistrictsPerWarehouse)
	reads := []dbsm.TupleID{DistrictRow(wh, d)}
	for i := 0; i < 20; i++ {
		ol := g.rng.Int63n(1 << 32)
		reads = append(reads, dbsm.MakeTupleID(TableOrderLine, uint64(ol)))
		reads = append(reads, StockRow(wh, g.rng.Intn(ItemCount)))
	}
	return g.build(ClassStockLevel, true, reads, nil, nil, 0, c.CPU[ClassStockLevel].SampleDur(g.rng))
}
