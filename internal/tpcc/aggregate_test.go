package tpcc

import (
	"math"
	"testing"

	"repro/internal/csrt"
	"repro/internal/db"
	"repro/internal/sim"
)

func newAggUnderTest(k *sim.Kernel, server *db.Server, pop int, retry RetryPolicy) *Aggregate {
	cal := DefaultCalibration()
	gen := NewGenerator(1, Warehouses(pop), cal, sim.NewRNG(7).Fork("gen"))
	return &Aggregate{
		Server:     server,
		Gen:        gen,
		Proc:       cal.ArrivalProcess(),
		Retry:      retry,
		Population: pop,
		HomeWH:     func(k int) int { return k / ClientsPerWarehouse },
	}
}

func newAggServer(k *sim.Kernel) *db.Server {
	cpus := csrt.NewCPUSet(1, k, nil)
	st := db.NewStorage(k, db.StorageConfig{}, sim.NewRNG(3))
	return db.NewServer(k, 1, cpus, st)
}

// TestAggregateWarmupDrains pins the de-synchronized start: every emulated
// user fires its first transaction within one think interval (uniformly,
// like an individual client's deferred first issue), so by t = Think the
// warmup pool is empty and at least Population transactions were submitted.
func TestAggregateWarmupDrains(t *testing.T) {
	k := sim.NewKernel()
	a := newAggUnderTest(k, newAggServer(k), 200, RetryPolicy{})
	a.Start(k, sim.NewRNG(11).Fork("agg"))
	if err := k.RunUntil(a.Proc.Think + 2*a.Window); err != nil {
		t.Fatal(err)
	}
	if a.unfired != 0 {
		t.Fatalf("warmup pool not drained after one think interval: %d unfired", a.unfired)
	}
	if a.Issued() < 200 {
		t.Fatalf("only %d submissions after warmup, want >= population 200", a.Issued())
	}
}

// TestAggregatePoolConservation checks the bookkeeping invariant: every
// user is always in exactly one of the pools — unfired, thinking, or in
// flight (submitted and not finally resolved) — at every point of the run.
func TestAggregatePoolConservation(t *testing.T) {
	k := sim.NewKernel()
	a := newAggUnderTest(k, newAggServer(k), 100, RetryPolicy{})
	var done int64
	a.OnDone = func(t *db.Txn, o db.Outcome) { done++ }
	a.Start(k, sim.NewRNG(13).Fork("agg"))
	for i := 0; i < 40; i++ {
		if err := k.RunUntil(sim.Time(i) * sim.Second); err != nil {
			t.Fatal(err)
		}
		inFlight := a.Issued() - done
		if got := int64(a.unfired+a.thinking) + inFlight; got != 100 {
			t.Fatalf("t=%ds: pools unbalanced: unfired=%d thinking=%d inflight=%d (sum %d, want 100)",
				i, a.unfired, a.thinking, inFlight, got)
		}
	}
}

// TestAggregateRetryAndGiveUp drives the aggregate against a server with a
// tiny admission cap: rejections must be retried with backoff through the
// same RetryPolicy contract a Client honors, exhausted budgets counted as
// give-ups, and OnDone fired exactly once per transaction.
func TestAggregateRetryAndGiveUp(t *testing.T) {
	k := sim.NewKernel()
	server := newAggServer(k)
	server.MaxActive = 1
	retry := RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * sim.Millisecond, MaxBackoff: 200 * sim.Millisecond}
	a := newAggUnderTest(k, server, 150, retry)
	var done int64
	budget := 300
	a.Stop = func() bool {
		if budget == 0 {
			return true
		}
		budget--
		return false
	}
	a.OnDone = func(t *db.Txn, o db.Outcome) { done++ }
	a.Start(k, sim.NewRNG(29).Fork("agg"))
	if err := k.RunUntil(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if a.RetryPending() {
		t.Fatal("retry still pending after a drained run")
	}
	if a.Retries() == 0 {
		t.Fatal("admission cap of 1 produced no retries")
	}
	if a.GiveUps() == 0 {
		t.Fatal("admission cap of 1 produced no give-ups")
	}
	if done != a.Issued() {
		t.Fatalf("OnDone fired %d times for %d issued transactions", done, a.Issued())
	}
	if a.Issued() != 300 {
		t.Fatalf("issued %d, want the full budget of 300", a.Issued())
	}
	sub, _, _, rej := server.Totals()
	if sub != a.Issued()+a.Retries() {
		t.Fatalf("server saw %d submissions, want issued %d + retries %d",
			sub, a.Issued(), a.Retries())
	}
	if rej == 0 {
		t.Fatal("no rejections recorded at the server")
	}
}

// TestAggregateClassMix pins the per-class thinning: issued counts per
// top-level class must match the calibrated mix weights.
func TestAggregateClassMix(t *testing.T) {
	k := sim.NewKernel()
	a := newAggUnderTest(k, newAggServer(k), 3000, RetryPolicy{})
	a.Start(k, sim.NewRNG(31).Fork("agg"))
	if err := k.RunUntil(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	total := a.Issued()
	if total < 10000 {
		t.Fatalf("only %d transactions issued, want a sample of >= 10000", total)
	}
	for c := ArrivalNewOrder; c < NumArrivalClasses; c++ {
		got := float64(a.IssuedOfClass(c)) / float64(total)
		want := a.Proc.Weights[c]
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("class %d share %.3f, want ~%.3f", c, got, want)
		}
	}
}

// TestAggregateDeterministic pins reproducibility: the same seed drives the
// identical arrival sequence.
func TestAggregateDeterministic(t *testing.T) {
	run := func() (int64, [NumArrivalClasses]int64, int64) {
		k := sim.NewKernel()
		a := newAggUnderTest(k, newAggServer(k), 500, RetryPolicy{})
		a.Start(k, sim.NewRNG(43).Fork("agg"))
		if err := k.RunUntil(time30s()); err != nil {
			t.Fatal(err)
		}
		return a.Issued(), a.issuedByClass, k.Executed()
	}
	i1, c1, e1 := run()
	i2, c2, e2 := run()
	if i1 != i2 || c1 != c2 || e1 != e2 {
		t.Fatalf("same seed diverged: issued %d/%d classes %v/%v events %d/%d", i1, i2, c1, c2, e1, e2)
	}
}

func time30s() sim.Time { return 30 * sim.Second }

// TestAggregateDrawPathZeroAlloc pins the zero-allocation property of the
// per-window draw path: the Poisson and Binomial samplers, the class
// thinning, and the home-warehouse closure must not allocate. The per
// transaction cost (building the db.Txn) is shared with individual mode
// and is out of scope here.
func TestAggregateDrawPathZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(5)
	a := &Aggregate{
		Proc:       DefaultCalibration().ArrivalProcess(),
		Population: 100000,
		HomeWH:     func(k int) int { return k / ClientsPerWarehouse },
		rng:        rng,
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = rng.Poisson(370)
		_ = rng.Binomial(100000, 0.001)
		_ = a.classOf()
		_ = a.HomeWH(rng.Intn(a.Population))
	}); n != 0 {
		t.Fatalf("draw path allocates %v times per window", n)
	}
}
