package tpcc

import (
	"math"

	"repro/internal/sim"
)

// Transaction class names. Payment and orderstatus are split into long and
// short variants — the conditional code paths that would otherwise produce
// bimodal distributions (Section 4.1).
const (
	ClassNewOrder         = "neworder"
	ClassPaymentLong      = "payment-long"
	ClassPaymentShort     = "payment-short"
	ClassOrderStatusLong  = "orderstatus-long"
	ClassOrderStatusShort = "orderstatus-short"
	ClassDelivery         = "delivery"
	ClassStockLevel       = "stocklevel"
)

// Calibration holds the simulated database server's cost model: empirical
// per-class CPU time distributions, row sizes, mix probabilities, and client
// pacing.
//
// SUBSTITUTION (documented in DESIGN.md): the paper obtains these by
// profiling PostgreSQL with virtualized CPU cycle counters on a PIII-1GHz
// and fitting empirical distributions per class (5000 transactions, initial
// 15 minutes discarded). Without that testbed we embed synthetic empirical
// distributions shaped by the paper's published facts: commit costs just
// under 2 ms for every class, delivery is CPU-bound, payment/orderstatus are
// bimodal and split into homogeneous halves, read-only commits perform no
// I/O, and the aggregate saturation points of Figures 5 and 6 (one CPU
// saturates near 500 clients at roughly 3000 tpm).
type Calibration struct {
	// CPU holds the empirical execution-time distribution per class.
	CPU map[string]*sim.Empirical
	// CommitCPU is the commit operation's processing cost distribution.
	CommitCPU *sim.Empirical
	// ThinkTime is the mean client think time between transactions.
	ThinkTime sim.Time
	// Quantum slices processing into round-robin CPU jobs.
	Quantum sim.Time
	// Mix is the class selection weights: neworder, payment, orderstatus,
	// delivery, stocklevel. Payment and neworder each account for 44% of
	// submitted transactions (Section 3.2).
	MixNewOrder    float64
	MixPayment     float64
	MixOrderStatus float64
	MixDelivery    float64
	// Long-variant probabilities (customer selected by last name).
	PaymentLongFraction     float64
	OrderStatusLongFraction float64
	// RemoteWarehouseFraction is the TPC-C 15% remote-warehouse rule for
	// payment.
	RemoteWarehouseFraction float64
	// NewOrderUserAbortFraction is the TPC-C 1% intentional rollback.
	NewOrderUserAbortFraction float64
	// Row value sizes in bytes (tuples range from 8 to 655 bytes).
	RowWarehouse, RowDistrict, RowCustomer, RowHistory int
	RowOrder, RowNewOrder, RowOrderLine, RowStock      int
}

// lognormSamples builds a deterministic 101-point empirical distribution
// from a log-normal with the given median (ms) and shape sigma, clamped to
// plausible bounds. Using fixed quantile points keeps runs reproducible.
func lognormSamples(medianMS, sigma float64) *sim.Empirical {
	mu := math.Log(medianMS)
	samples := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		q := (float64(i) + 0.5) / 101
		z := probit(q)
		v := math.Exp(mu + sigma*z)
		samples = append(samples, v*float64(sim.Millisecond))
	}
	return sim.NewEmpirical(samples)
}

// probit is the standard normal quantile function (Acklam's rational
// approximation; adequate for generating calibration tables).
func probit(p float64) float64 {
	const (
		a1 = -39.6968302866538
		a2 = 220.946098424521
		a3 = -275.928510446969
		a4 = 138.357751867269
		a5 = -30.6647980661472
		a6 = 2.50662827745924
		b1 = -54.4760987982241
		b2 = 161.585836858041
		b3 = -155.698979859887
		b4 = 66.8013118877197
		b5 = -13.2806815528857
		c1 = -0.00778489400243029
		c2 = -0.322396458041136
		c3 = -2.40075827716184
		c4 = -2.54973253934373
		c5 = 4.37466414146497
		c6 = 2.93816398269878
		d1 = 0.00778469570904146
		d2 = 0.32246712907004
		d3 = 2.445134137143
		d4 = 3.75440866190742
	)
	switch {
	case p <= 0:
		return -8
	case p >= 1:
		return 8
	case p < 0.02425:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-0.02425:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// DefaultCalibration returns the PIII-1GHz / PostgreSQL-shaped cost model.
func DefaultCalibration() *Calibration {
	return &Calibration{
		CPU: map[string]*sim.Empirical{
			ClassNewOrder:         lognormSamples(16, 0.35),
			ClassPaymentLong:      lognormSamples(11, 0.35),
			ClassPaymentShort:     lognormSamples(7, 0.30),
			ClassOrderStatusLong:  lognormSamples(8, 0.35),
			ClassOrderStatusShort: lognormSamples(5, 0.30),
			ClassDelivery:         lognormSamples(110, 0.30),
			ClassStockLevel:       lognormSamples(22, 0.35),
		},
		CommitCPU: lognormSamples(1.8, 0.10),
		ThinkTime: 9 * sim.Second,
		Quantum:   sim.Millisecond,

		MixNewOrder:    0.44,
		MixPayment:     0.44,
		MixOrderStatus: 0.04,
		MixDelivery:    0.04,
		// remainder (0.04) is stocklevel

		PaymentLongFraction:       0.60,
		OrderStatusLongFraction:   0.60,
		RemoteWarehouseFraction:   0.15,
		NewOrderUserAbortFraction: 0.01,

		RowWarehouse: 89,
		RowDistrict:  95,
		RowCustomer:  655,
		RowHistory:   46,
		RowOrder:     24,
		RowNewOrder:  8,
		RowOrderLine: 54,
		RowStock:     306,
	}
}

// ArrivalClass indexes the top-level transaction classes of the submission
// mix — the granularity at which clients choose what to run. The long/short
// variants of payment and orderstatus are picked inside the generator (they
// model conditional code paths, not client intent), so the arrival process
// works at this coarser level.
type ArrivalClass int

// The top-level mix classes, in submission-mix order.
const (
	ArrivalNewOrder ArrivalClass = iota
	ArrivalPayment
	ArrivalOrderStatus
	ArrivalDelivery
	ArrivalStockLevel
	NumArrivalClasses
)

// ArrivalProcess is the parameter set the aggregate client tier draws from:
// the per-class mix weights and the mean think time. It is extracted from a
// Calibration so the aggregate process and the individual clients answer to
// the same calibrated workload definition.
type ArrivalProcess struct {
	// Weights are the per-class submission probabilities; they sum to 1.
	Weights [NumArrivalClasses]float64
	// Think is the mean client think time.
	Think sim.Time
}

// ArrivalProcess extracts the compound arrival-process parameters from the
// calibration. The stocklevel weight is the mix remainder, exactly as
// Generator.Next computes it.
func (c *Calibration) ArrivalProcess() ArrivalProcess {
	p := ArrivalProcess{Think: c.ThinkTime}
	p.Weights[ArrivalNewOrder] = c.MixNewOrder
	p.Weights[ArrivalPayment] = c.MixPayment
	p.Weights[ArrivalOrderStatus] = c.MixOrderStatus
	p.Weights[ArrivalDelivery] = c.MixDelivery
	rest := 1 - c.MixNewOrder - c.MixPayment - c.MixOrderStatus - c.MixDelivery
	if rest < 0 {
		rest = 0
	}
	p.Weights[ArrivalStockLevel] = rest
	return p
}

// Warehouses returns the database scale for a client count.
func Warehouses(clients int) int {
	w := clients / ClientsPerWarehouse
	if w < 1 {
		w = 1
	}
	return w
}
