package tpcc

import "repro/internal/sim"

// RetryPolicy governs client resubmission after an explicit admission
// rejection (db.Rejected). Aborted transactions are still never resubmitted
// (Section 5.1) — a rejection is different: the transaction never executed,
// and the server explicitly invited a retry. The retried submission reuses
// the same transaction instance, so its TID survives and resubmission is
// idempotent end to end.
type RetryPolicy struct {
	// MaxAttempts is the total number of submissions tried, including the
	// first; 0 or 1 disables retry (a rejection is final).
	MaxAttempts int
	// BaseBackoff is the nominal delay before the first retry; attempt n
	// waits BaseBackoff·2^(n-1), capped at MaxBackoff. Defaults to 50ms.
	BaseBackoff sim.Time
	// MaxBackoff caps the exponential growth. Defaults to 2s.
	MaxBackoff sim.Time
}

// Enabled reports whether the policy allows any retry at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff computes the delay before retry number attempt (1 = first retry):
// exponential growth with a half-spread jitter drawn from the client's own
// RNG stream, so identical seeds produce identical retry schedules.
func (p RetryPolicy) Backoff(attempt int, rng *sim.RNG) sim.Time {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * sim.Millisecond
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 2 * sim.Second
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter over [d/2, d]: desynchronizes rejected clients so they do not
	// stampede back in lockstep.
	return d/2 + rng.UniformDur(0, d/2)
}
