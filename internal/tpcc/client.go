package tpcc

import (
	"repro/internal/db"
	"repro/internal/sim"
)

// Client is the single-threaded emulated user of Section 3.2: it issues a
// transaction, blocks until the server replies, pauses for a think time, and
// repeats. It logs submission time, termination time, outcome and identifier
// for every transaction through the OnDone hook.
type Client struct {
	// ID is the global client number; the home warehouse is ID/10.
	ID int
	// Server is the database site this client attaches to.
	Server *db.Server
	// Gen produces this client's transactions.
	Gen *Generator
	// Think is the mean think time.
	Think sim.Time
	// Stop, if set, is consulted before issuing: returning true ends the
	// client's stream (used to bound runs at N transactions).
	Stop func() bool
	// OnDone observes every completed transaction.
	OnDone func(c *Client, t *db.Txn, o db.Outcome)

	k       *sim.Kernel
	rng     *sim.RNG
	homeWH  int
	issued  int64
	stopped bool
}

// Start begins the client's request stream. The first transaction is
// deferred by a uniform fraction of the think time, de-synchronizing
// clients.
func (c *Client) Start(k *sim.Kernel, rng *sim.RNG) {
	c.k = k
	c.rng = rng
	c.homeWH = c.ID / ClientsPerWarehouse
	k.Schedule(rng.UniformDur(0, c.Think), c.issue)
}

// Issued reports how many transactions this client has submitted.
func (c *Client) Issued() int64 { return c.issued }

func (c *Client) issue() {
	if c.stopped || (c.Stop != nil && c.Stop()) {
		c.stopped = true
		return
	}
	t := c.Gen.Next(c.homeWH)
	t.Done = func(t *db.Txn, o db.Outcome) {
		if c.OnDone != nil {
			c.OnDone(c, t, o)
		}
		// Think, then issue the next request. Aborted transactions
		// are not resubmitted (Section 5.1).
		c.k.Schedule(c.rng.ExpDur(c.Think), c.issue)
	}
	c.issued++
	c.Server.Submit(t)
}
