package tpcc

import (
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Client is the single-threaded emulated user of Section 3.2: it issues a
// transaction, blocks until the server replies, pauses for a think time, and
// repeats. It logs submission time, termination time, outcome and identifier
// for every transaction through the OnDone hook.
type Client struct {
	// ID is the global client number; the home warehouse is ID/10.
	ID int
	// Server is the database site this client attaches to.
	Server *db.Server
	// Gen produces this client's transactions.
	Gen *Generator
	// Think is the mean think time.
	Think sim.Time
	// Retry governs resubmission after explicit admission rejections; the
	// zero value disables retry (a rejection is final, like an abort).
	Retry RetryPolicy
	// Stop, if set, is consulted before issuing: returning true ends the
	// client's stream (used to bound runs at N transactions).
	Stop func() bool
	// OnDone observes every finally-completed transaction — fired once per
	// transaction, after any retries have resolved, never between a
	// rejection and its resubmission.
	OnDone func(c *Client, t *db.Txn, o db.Outcome)

	k       *sim.Kernel
	rng     *sim.RNG
	homeWH  int
	issued  int64
	stopped bool

	// loadFactor > 1 compresses think times by that factor (sustained
	// saturation: the same closed population offers load as if it were
	// loadFactor times more eager).
	loadFactor float64

	retries  int64
	giveUps  int64
	retryLat metrics.Sample

	// retryPending marks a scheduled backoff whose resubmission has not
	// fired yet; quiescence detection must hold the run open for it.
	retryPending bool
}

// Start begins the client's request stream. The first transaction is
// deferred by a uniform fraction of the think time, de-synchronizing
// clients.
func (c *Client) Start(k *sim.Kernel, rng *sim.RNG) {
	c.k = k
	c.rng = rng
	c.homeWH = c.ID / ClientsPerWarehouse
	k.Schedule(rng.UniformDur(0, c.Think), c.issue)
}

// Issued reports how many transactions this client has submitted (retries of
// a rejected transaction do not count again).
func (c *Client) Issued() int64 { return c.issued }

// Retries reports resubmissions after rejections.
func (c *Client) Retries() int64 { return c.retries }

// GiveUps reports transactions abandoned after exhausting MaxAttempts.
func (c *Client) GiveUps() int64 { return c.giveUps }

// RetryLat exposes the first-submit-to-final-outcome latency sample (ms) of
// transactions that needed at least one retry.
func (c *Client) RetryLat() *metrics.Sample { return &c.retryLat }

// RetryPending reports whether a backoff timer holds an unsubmitted retry.
func (c *Client) RetryPending() bool { return c.retryPending }

// SetLoadFactor scales the offered load: think times divide by f (f <= 1
// restores nominal load). The think-time draw itself is unchanged, so the
// RNG stream — and with it every other random decision — is identical across
// load factors.
func (c *Client) SetLoadFactor(f float64) { c.loadFactor = f }

// thinkDur draws the next think pause, compressed under saturation.
func (c *Client) thinkDur() sim.Time {
	d := c.rng.ExpDur(c.Think)
	if c.loadFactor > 1 {
		d = sim.Time(float64(d) / c.loadFactor)
	}
	return d
}

func (c *Client) issue() {
	if c.stopped || (c.Stop != nil && c.Stop()) {
		c.stopped = true
		return
	}
	t := c.Gen.Next(c.homeWH)
	c.issued++
	c.submit(t, 1, c.k.Now())
}

// submit runs one attempt of a transaction. A rejection within the retry
// budget schedules a backoff and resubmits the same instance (same TID —
// idempotent resubmission); every other outcome is final.
func (c *Client) submit(t *db.Txn, attempt int, firstAt sim.Time) {
	t.Done = func(t *db.Txn, o db.Outcome) {
		if o == db.Rejected && attempt < c.Retry.MaxAttempts && !c.stopped {
			c.retries++
			c.retryPending = true
			c.k.Schedule(c.Retry.Backoff(attempt, c.rng), func() {
				c.retryPending = false
				if c.stopped {
					return
				}
				t.ResetForRetry()
				c.submit(t, attempt+1, firstAt)
			})
			return
		}
		if o == db.Rejected && c.Retry.Enabled() && attempt >= c.Retry.MaxAttempts {
			c.giveUps++
		}
		if attempt > 1 {
			c.retryLat.Add((c.k.Now() - firstAt).Millis())
		}
		if c.OnDone != nil {
			c.OnDone(c, t, o)
		}
		// Think, then issue the next request. Aborted transactions
		// are not resubmitted (Section 5.1); rejected ones were handled
		// above.
		c.k.Schedule(c.thinkDur(), c.issue)
	}
	c.Server.Submit(t)
}
