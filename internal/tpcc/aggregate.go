package tpcc

import (
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Aggregate replaces one site's population of individual Clients with a
// calibrated compound arrival process. A closed population of N emulated
// users, each thinking for an exponential time with the calibrated mean
// between transactions, submits — by the memorylessness of the exponential —
// as a state-dependent Poisson process with rate
//
//	thinking × loadFactor / Think
//
// where thinking is the number of users currently between transactions
// (N minus the transactions in flight, in backoff, or swallowed by a crashed
// server). The process is sampled in fixed tick windows: one simulation
// event per site per window draws the window's arrival count from the sim
// RNG (sim.RNG.Poisson), labels each arrival with a transaction class by the
// calibrated mix weights, and submits through the exact same path a Client
// uses — db.Server.Submit, admission rejection, RetryPolicy backoff,
// give-up accounting — so overload semantics are unchanged. Memory and
// startup cost are O(sites + in-flight), not O(population): no per-client
// object, RNG stream, or initial think-timer event exists.
//
// The equivalence is statistical, not per-seed: an aggregate run is a
// different (equally valid) realization of the same workload, validated at
// 500 clients against individual-client runs within CI95 (see
// core/aggregate_equivalence_test.go).
type Aggregate struct {
	// Server is the database site the population attaches to.
	Server *db.Server
	// Gen produces the transactions; keying decisions draw from its stream
	// exactly as under individual clients.
	Gen *Generator
	// Proc is the calibrated arrival process (mix weights + think time),
	// extracted by Calibration.ArrivalProcess.
	Proc ArrivalProcess
	// Retry governs resubmission after admission rejections; the zero
	// value makes every rejection final.
	Retry RetryPolicy
	// Population is the emulated user count this aggregate stands in for.
	Population int
	// HomeWH maps a dense population index in [0, Population) to the home
	// warehouse of that emulated user, encoding the site's client placement
	// (round-robin, group-homed, or primary-site) without materializing a
	// per-client table. Each arrival draws a uniform index.
	HomeWH func(k int) int
	// Stop, if set, is consulted before each arrival: returning true ends
	// the arrival stream (the global transaction budget).
	Stop func() bool
	// OnDone observes every finally-completed transaction, once per
	// transaction after retries resolve — the Client.OnDone contract.
	OnDone func(t *db.Txn, o db.Outcome)
	// Window is the tick-window length (default 10ms): one batched arrival
	// event per site per window.
	Window sim.Time

	k   *sim.Kernel
	rng *sim.RNG
	// unfired is the warmup pool: users who have not submitted their first
	// transaction yet. Individual clients de-synchronize by deferring their
	// first issue uniformly over one think interval, so this pool drains by
	// binomial thinning with the uniform hazard w/(Think−now) — NOT the
	// exponential hazard — and empties exactly at t = Think. Ignoring the
	// distinction would under-offer load by half a think time per user and
	// bias tpmC measurably low on paper-sized runs.
	unfired int
	// thinking counts users between transactions (exponential residual).
	thinking   int
	loadFactor float64
	stopped    bool

	issued        int64
	issuedByClass [NumArrivalClasses]int64
	retries       int64
	giveUps       int64
	retryPending  int
	retryLat      metrics.Sample
}

// Start begins the arrival process. The first tick is deferred by a uniform
// fraction of the window, de-synchronizing sites the way individual clients
// de-synchronize their first think time.
func (a *Aggregate) Start(k *sim.Kernel, rng *sim.RNG) {
	a.k = k
	a.rng = rng
	a.unfired = a.Population
	a.loadFactor = 1
	if a.Window <= 0 {
		a.Window = 10 * sim.Millisecond
	}
	k.Schedule(rng.UniformDur(0, a.Window), a.tick)
}

// Issued reports how many transactions this aggregate has submitted
// (retries of a rejected transaction do not count again).
func (a *Aggregate) Issued() int64 { return a.issued }

// IssuedOfClass reports submissions of one top-level mix class.
func (a *Aggregate) IssuedOfClass(c ArrivalClass) int64 { return a.issuedByClass[c] }

// Retries reports resubmissions after rejections.
func (a *Aggregate) Retries() int64 { return a.retries }

// GiveUps reports transactions abandoned after exhausting MaxAttempts.
func (a *Aggregate) GiveUps() int64 { return a.giveUps }

// RetryLat exposes the first-submit-to-final-outcome latency sample (ms) of
// transactions that needed at least one retry.
func (a *Aggregate) RetryLat() *metrics.Sample { return &a.retryLat }

// RetryPending reports whether any backoff timer holds an unsubmitted
// retry; quiescence detection must hold the run open for them.
func (a *Aggregate) RetryPending() bool { return a.retryPending > 0 }

// Thinking reports the users currently between transactions.
func (a *Aggregate) Thinking() int { return a.thinking }

// SetLoadFactor scales the offered load: the arrival rate multiplies by f
// (f <= 1 restores nominal load), mirroring Client.SetLoadFactor's think
// compression.
func (a *Aggregate) SetLoadFactor(f float64) { a.loadFactor = f }

// tick is the batched arrival event: one per site per window. The warmup
// pool drains by binomial thinning under the uniform first-fire hazard; the
// steady pool's count is drawn from the state-dependent Poisson rate frozen
// at the window start (a tau-leap step, exact in the window→0 limit and
// accurate while the window is far below the think time) and clamped to the
// pool. The drawn total then drains through the submission path.
//
//hot:path
func (a *Aggregate) tick() {
	if a.stopped {
		return
	}
	var n1 int
	if a.unfired > 0 {
		rem := a.Proc.Think - a.k.Now()
		if rem <= a.Window {
			n1 = a.unfired
		} else {
			n1 = a.rng.Binomial(a.unfired, float64(a.Window)/float64(rem))
		}
		a.unfired -= n1
	}
	lf := a.loadFactor
	if lf < 1 {
		lf = 1
	}
	mean := float64(a.thinking) * lf * float64(a.Window) / float64(a.Proc.Think)
	n2 := a.rng.Poisson(mean)
	if n2 > a.thinking {
		n2 = a.thinking
	}
	a.thinking -= n2
	for i := n1 + n2; i > 0; i-- {
		if a.Stop != nil && a.Stop() {
			a.stopped = true
			return
		}
		a.arrive()
	}
	a.k.Schedule(a.Window, a.tick)
}

// classOf labels one arrival with a top-level class by the calibrated mix
// weights — the same single uniform draw Generator.Next spends on its mix
// dispatch, so per-transaction draw cost matches individual mode.
//
//hot:path
func (a *Aggregate) classOf() ArrivalClass {
	r := a.rng.Float64()
	acc := 0.0
	for c := ArrivalNewOrder; c < NumArrivalClasses-1; c++ {
		acc += a.Proc.Weights[c]
		if r < acc {
			return c
		}
	}
	return NumArrivalClasses - 1
}

// arrive materializes one emulated user's submission: a uniform population
// index picks the home warehouse, the mix labels the class, and the
// generator builds the transaction. The user was already removed from its
// pool by tick; completion returns it to the thinking pool.
func (a *Aggregate) arrive() {
	a.issued++
	class := a.classOf()
	a.issuedByClass[class]++
	wh := a.HomeWH(a.rng.Intn(a.Population))
	t := a.Gen.NextOfClass(class, wh)
	a.submit(t, 1, a.k.Now())
}

// submit runs one attempt of a transaction — the Client.submit contract: a
// rejection within the retry budget schedules a backoff and resubmits the
// same instance; every other outcome is final, returning the emulated user
// to the thinking pool. Retries of an already-admitted transaction proceed
// even after the arrival stream stops, exactly as an individual client
// mid-transaction is not cut off by budget exhaustion.
func (a *Aggregate) submit(t *db.Txn, attempt int, firstAt sim.Time) {
	t.Done = func(t *db.Txn, o db.Outcome) {
		if o == db.Rejected && attempt < a.Retry.MaxAttempts {
			a.retries++
			a.retryPending++
			a.k.Schedule(a.Retry.Backoff(attempt, a.rng), func() {
				a.retryPending--
				t.ResetForRetry()
				a.submit(t, attempt+1, firstAt)
			})
			return
		}
		if o == db.Rejected && a.Retry.Enabled() && attempt >= a.Retry.MaxAttempts {
			a.giveUps++
		}
		if attempt > 1 {
			a.retryLat.Add((a.k.Now() - firstAt).Millis())
		}
		if a.OnDone != nil {
			a.OnDone(t, o)
		}
		a.thinking++
	}
	a.Server.Submit(t)
}
