package tpcc

import (
	"testing"

	"repro/internal/sim"
)

// TestRetryPolicyEnabled pins the disable semantics: one total attempt means
// a rejection is final.
func TestRetryPolicyEnabled(t *testing.T) {
	for _, tc := range []struct {
		attempts int
		want     bool
	}{{0, false}, {1, false}, {2, true}, {4, true}} {
		if got := (RetryPolicy{MaxAttempts: tc.attempts}).Enabled(); got != tc.want {
			t.Fatalf("MaxAttempts=%d: Enabled = %v, want %v", tc.attempts, got, tc.want)
		}
	}
}

// TestRetryBackoffBounds pins the exponential schedule: attempt n draws from
// [d/2, d] with d = Base·2^(n-1) capped at MaxBackoff, defaults applied when
// the policy leaves fields zero.
func TestRetryBackoffBounds(t *testing.T) {
	tests := []struct {
		name    string
		p       RetryPolicy
		attempt int
		wantD   sim.Time
	}{
		{"first retry", RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * sim.Millisecond, MaxBackoff: sim.Second}, 1, 100 * sim.Millisecond},
		{"second doubles", RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * sim.Millisecond, MaxBackoff: sim.Second}, 2, 200 * sim.Millisecond},
		{"cap binds", RetryPolicy{MaxAttempts: 8, BaseBackoff: 100 * sim.Millisecond, MaxBackoff: sim.Second}, 7, sim.Second},
		{"default base", RetryPolicy{MaxAttempts: 4}, 1, 50 * sim.Millisecond},
		{"default cap", RetryPolicy{MaxAttempts: 16, BaseBackoff: 50 * sim.Millisecond}, 12, 2 * sim.Second},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(7)
			for i := 0; i < 50; i++ {
				got := tc.p.Backoff(tc.attempt, rng)
				if got < tc.wantD/2 || got > tc.wantD {
					t.Fatalf("Backoff(%d) = %v, want in [%v, %v]", tc.attempt, got, tc.wantD/2, tc.wantD)
				}
			}
		})
	}
}

// TestRetryBackoffDeterministic pins seed determinism: two RNGs with the
// same seed produce the identical retry schedule — the property that keeps
// whole-run replay byte-identical when rejections occur.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 50 * sim.Millisecond, MaxBackoff: 2 * sim.Second}
	a, b := sim.NewRNG(99), sim.NewRNG(99)
	for attempt := 1; attempt < 8; attempt++ {
		da, db := p.Backoff(attempt, a), p.Backoff(attempt, b)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, da, db)
		}
	}
}

// FuzzRetryBackoff checks, for arbitrary policies and seeds, that the delay
// always respects the schedule bounds and that replay from an equal seed is
// exact.
func FuzzRetryBackoff(f *testing.F) {
	f.Add(int64(1), 1, int64(50*sim.Millisecond), int64(2*sim.Second))
	f.Add(int64(42), 5, int64(0), int64(0))
	f.Add(int64(-3), 9, int64(sim.Microsecond), int64(sim.Millisecond))
	f.Fuzz(func(t *testing.T, seed int64, attempt int, base, capNS int64) {
		attempt = attempt%12 + 1
		if attempt < 1 {
			attempt += 12
		}
		p := RetryPolicy{
			MaxAttempts: attempt + 1,
			BaseBackoff: sim.Time(base % int64(10*sim.Second)),
			MaxBackoff:  sim.Time(capNS % int64(10*sim.Second)),
		}
		got := p.Backoff(attempt, sim.NewRNG(seed))
		if again := p.Backoff(attempt, sim.NewRNG(seed)); again != got {
			t.Fatalf("same seed %d gave %v and %v", seed, got, again)
		}
		// Recompute the nominal delay the implementation documents.
		b := p.BaseBackoff
		if b <= 0 {
			b = 50 * sim.Millisecond
		}
		c := p.MaxBackoff
		if c <= 0 {
			c = 2 * sim.Second
		}
		d := b
		for i := 1; i < attempt && d < c; i++ {
			d *= 2
		}
		if d > c {
			d = c
		}
		if got < d/2 || got > d {
			t.Fatalf("Backoff(%d) = %v outside [%v, %v] (policy %+v)", attempt, got, d/2, d, p)
		}
	})
}
