package db

import (
	"testing"

	"repro/internal/csrt"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

func newTestServer(t *testing.T, ncpu int) (*sim.Kernel, *Server) {
	t.Helper()
	k := sim.NewKernel()
	cpus := csrt.NewCPUSet(ncpu, k, nil)
	st := NewStorage(k, StorageConfig{}, sim.NewRNG(1))
	return k, NewServer(k, 1, cpus, st)
}

func simpleTxn(tid uint64, class string, items []dbsm.TupleID, cpu sim.Time) *Txn {
	ws := dbsm.NewItemSet(items...)
	return &Txn{
		TID:        tid,
		Class:      class,
		Ops:        []Op{{Kind: OpProcess, CPU: cpu}},
		ReadSet:    ws.Clone(),
		WriteSet:   ws,
		WriteBytes: 100,
		CommitCPU:  2 * sim.Millisecond,
	}
}

func TestCentralizedCommitPath(t *testing.T) {
	k, s := newTestServer(t, 1)
	var outcome Outcome
	txn := simpleTxn(1, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 5*sim.Millisecond)
	txn.Done = func(_ *Txn, o Outcome) { outcome = o }
	s.Submit(txn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if outcome != Committed {
		t.Fatalf("outcome = %v", outcome)
	}
	// Latency = 5ms exec + 2ms commit + 1 sector write.
	want := 5*sim.Millisecond + 2*sim.Millisecond + StorageConfig{}.Latency()
	if txn.Latency() != want {
		t.Fatalf("latency = %v, want %v", txn.Latency(), want)
	}
	if s.Locks().HeldLocks() != 0 {
		t.Fatal("locks leaked")
	}
	if s.Class("w").Committed != 1 {
		t.Fatal("stats not recorded")
	}
}

func TestReadOnlySkipsDiskAndLocks(t *testing.T) {
	k, s := newTestServer(t, 1)
	txn := &Txn{
		TID: 1, Class: "ro", ReadOnly: true,
		Ops:       []Op{{Kind: OpFetch, Item: dbsm.MakeTupleID(1, 1)}, {Kind: OpProcess, CPU: 3 * sim.Millisecond}},
		ReadSet:   dbsm.NewItemSet(dbsm.MakeTupleID(1, 1)),
		CommitCPU: 2 * sim.Millisecond,
	}
	var outcome Outcome
	txn.Done = func(_ *Txn, o Outcome) { outcome = o }
	s.Submit(txn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if outcome != Committed {
		t.Fatalf("outcome = %v", outcome)
	}
	if s.Storage().Sectors() != 0 {
		t.Fatal("read-only transaction touched the disk")
	}
	if txn.Latency() != 5*sim.Millisecond {
		t.Fatalf("latency = %v, want 5ms (100%% cache hits)", txn.Latency())
	}
}

func TestCommitAbortsWaiters(t *testing.T) {
	k, s := newTestServer(t, 2)
	hot := []dbsm.TupleID{dbsm.MakeTupleID(1, 7)}
	t1 := simpleTxn(1, "w", hot, 10*sim.Millisecond)
	t2 := simpleTxn(2, "w", hot, 10*sim.Millisecond)
	var o1, o2 Outcome
	t1.Done = func(_ *Txn, o Outcome) { o1 = o }
	t2.Done = func(_ *Txn, o Outcome) { o2 = o }
	s.Submit(t1)
	k.Schedule(sim.Millisecond, func() { s.Submit(t2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if o1 != Committed {
		t.Fatalf("holder outcome = %v", o1)
	}
	if o2 != AbortLock {
		t.Fatalf("waiter outcome = %v, want AbortLock (write-write conflict)", o2)
	}
	if s.Locks().WaiterCount() != 0 || s.Locks().HeldLocks() != 0 {
		t.Fatal("lock state leaked")
	}
}

func TestAbortReleasesToNextWaiter(t *testing.T) {
	k, s := newTestServer(t, 2)
	hot := []dbsm.TupleID{dbsm.MakeTupleID(1, 7)}
	// t1 will be aborted by certification; t2 should then acquire and
	// commit.
	t1 := simpleTxn(1, "w", hot, 5*sim.Millisecond)
	t2 := simpleTxn(2, "w", hot, 5*sim.Millisecond)
	var o1, o2 Outcome
	t1.Done = func(_ *Txn, o Outcome) { o1 = o }
	t2.Done = func(_ *Txn, o Outcome) { o2 = o }
	s.SetTerminator(func(txn *Txn) {
		// Fail certification for t1, pass t2.
		commit := txn.TID != 1
		seq := uint64(0)
		if commit {
			seq = 1
		}
		k.Schedule(sim.Millisecond, func() { s.ResolveLocal(txn.TID, commit, seq) })
	})
	s.Submit(t1)
	k.Schedule(sim.Millisecond, func() { s.Submit(t2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if o1 != AbortCert {
		t.Fatalf("t1 outcome = %v, want AbortCert", o1)
	}
	if o2 != Committed {
		t.Fatalf("t2 outcome = %v, want Committed after lock handoff", o2)
	}
}

func TestRemotePreemptsLocalHolder(t *testing.T) {
	k, s := newTestServer(t, 1)
	hot := dbsm.MakeTupleID(1, 9)
	local := simpleTxn(1, "w", []dbsm.TupleID{hot}, 50*sim.Millisecond)
	var oLocal Outcome
	local.Done = func(_ *Txn, o Outcome) { oLocal = o }
	s.SetTerminator(func(*Txn) {}) // never resolves
	s.Submit(local)
	cert := &dbsm.TxnCert{
		TID: 99, Site: 2,
		WriteSet:   dbsm.NewItemSet(hot),
		WriteBytes: 200,
	}
	k.Schedule(10*sim.Millisecond, func() { s.ApplyRemote(cert, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if oLocal != AbortLock {
		t.Fatalf("local outcome = %v, want AbortLock (preempted)", oLocal)
	}
	if s.RemoteApplied() != 1 {
		t.Fatalf("remote applied = %d", s.RemoteApplied())
	}
	if s.LastApplied() != 1 {
		t.Fatalf("lastApplied = %d", s.LastApplied())
	}
	if s.Locks().HeldLocks() != 0 {
		t.Fatal("locks leaked after remote apply")
	}
}

func TestCertifiedRemoteWaitsForCertifiedHolder(t *testing.T) {
	k, s := newTestServer(t, 1)
	hot := dbsm.MakeTupleID(1, 9)
	c1 := &dbsm.TxnCert{TID: 1, Site: 2, WriteSet: dbsm.NewItemSet(hot), WriteBytes: 64 * 1024}
	c2 := &dbsm.TxnCert{TID: 2, Site: 3, WriteSet: dbsm.NewItemSet(hot), WriteBytes: 100}
	s.ApplyRemote(c1, 1)
	s.ApplyRemote(c2, 2) // must wait for c1's write-back, not abort it
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.RemoteApplied() != 2 {
		t.Fatalf("remote applied = %d, want 2", s.RemoteApplied())
	}
}

func TestDistributedCommitLatencyIncludesCertification(t *testing.T) {
	k, s := newTestServer(t, 1)
	txn := simpleTxn(1, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 5*sim.Millisecond)
	var outcome Outcome
	txn.Done = func(_ *Txn, o Outcome) { outcome = o }
	s.SetTerminator(func(tx *Txn) {
		k.Schedule(8*sim.Millisecond, func() { s.ResolveLocal(tx.TID, true, 1) })
	})
	s.Submit(txn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if outcome != Committed {
		t.Fatalf("outcome = %v", outcome)
	}
	want := 5*sim.Millisecond + 2*sim.Millisecond + 8*sim.Millisecond + StorageConfig{}.Latency()
	if txn.Latency() != want {
		t.Fatalf("latency = %v, want %v", txn.Latency(), want)
	}
	if s.CertLat.N() != 1 || s.CertLat.Mean() != 8 {
		t.Fatalf("cert latency sample: n=%d mean=%v", s.CertLat.N(), s.CertLat.Mean())
	}
}

func TestPreemptedTxnLaterCertAbortIsConsistent(t *testing.T) {
	k, s := newTestServer(t, 1)
	hot := dbsm.MakeTupleID(1, 5)
	local := simpleTxn(1, "w", []dbsm.TupleID{hot}, sim.Millisecond)
	var oLocal Outcome
	local.Done = func(_ *Txn, o Outcome) { oLocal = o }
	var captured *Txn
	s.SetTerminator(func(tx *Txn) { captured = tx })
	s.Submit(local)
	// Local txn reaches termination at ~3ms; a conflicting remote commits
	// at 5ms, preempting it; its own certification verdict (abort)
	// arrives at 10ms.
	k.Schedule(5*sim.Millisecond, func() {
		s.ApplyRemote(&dbsm.TxnCert{TID: 50, Site: 2, WriteSet: dbsm.NewItemSet(hot), WriteBytes: 10}, 1)
	})
	k.Schedule(10*sim.Millisecond, func() {
		if captured != nil {
			s.ResolveLocal(captured.TID, false, 0)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if oLocal != AbortLock {
		t.Fatalf("local outcome = %v, want AbortLock", oLocal)
	}
	if s.Inconsistencies() != 0 {
		t.Fatal("inconsistency counter moved")
	}
	// The class must count exactly one abort, not two.
	cs := s.Class("w")
	if cs.AbortLock != 1 || cs.AbortCert != 0 {
		t.Fatalf("class stats: %+v", cs)
	}
}

func TestCrashFreezesClients(t *testing.T) {
	k, s := newTestServer(t, 1)
	done := false
	txn := simpleTxn(1, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 20*sim.Millisecond)
	txn.Done = func(*Txn, Outcome) { done = true }
	s.Submit(txn)
	k.Schedule(5*sim.Millisecond, s.Crash)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("transaction completed on a crashed site")
	}
	// New submissions are silently dropped.
	txn2 := simpleTxn(2, "w", nil, sim.Millisecond)
	txn2.Done = func(*Txn, Outcome) { done = true }
	s.Submit(txn2)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("crashed site accepted work")
	}
}

func TestStorageQueueing(t *testing.T) {
	k := sim.NewKernel()
	st := NewStorage(k, StorageConfig{MaxConcurrent: 2, SectorSize: 4096, ThroughputBps: 8192.0 / 1}, sim.NewRNG(1))
	// Latency = 2*4096/8192 = 1s per sector.
	var doneAt []sim.Time
	for i := 0; i < 4; i++ {
		st.Write(1, func() { doneAt = append(doneAt, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(doneAt) != 4 {
		t.Fatalf("completions = %d", len(doneAt))
	}
	// 2 at 1s, 2 at 2s.
	if doneAt[1] != sim.Second || doneAt[3] != 2*sim.Second {
		t.Fatalf("completion times = %v", doneAt)
	}
	if st.MaxQueueLen() != 2 {
		t.Fatalf("max queue = %d, want 2", st.MaxQueueLen())
	}
	if st.Utilization(2*sim.Second) != 100 {
		t.Fatalf("utilization = %v, want 100", st.Utilization(2*sim.Second))
	}
}

func TestStorageCacheMisses(t *testing.T) {
	k := sim.NewKernel()
	st := NewStorage(k, StorageConfig{CacheHitRatio: 0.5}, sim.NewRNG(7))
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if st.Read(func() {}) {
			hits++
		}
	}
	ratio := float64(hits) / n
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("hit ratio = %v, want ~0.5", ratio)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Sectors() != int64(n-hits) {
		t.Fatal("misses must consume sectors")
	}
}

func TestMultiCPUParallelism(t *testing.T) {
	k, s := newTestServer(t, 3)
	finished := 0
	for i := 0; i < 3; i++ {
		txn := &Txn{
			TID: uint64(i), Class: "ro", ReadOnly: true,
			Ops:       []Op{{Kind: OpProcess, CPU: 10 * sim.Millisecond}},
			CommitCPU: 0,
		}
		txn.Done = func(*Txn, Outcome) { finished++ }
		s.Submit(txn)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
	if k.Now() != 10*sim.Millisecond {
		t.Fatalf("3 CPUs should run 3 txns in parallel; took %v", k.Now())
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{Committed, AbortLock, AbortCert, AbortCrash} {
		if o.String() == "unknown" {
			t.Fatalf("missing name for %d", o)
		}
	}
	if Outcome(0).String() != "unknown" {
		t.Fatal("zero outcome should be unknown")
	}
}

func TestClassStatsRates(t *testing.T) {
	cs := &ClassStats{Committed: 75, AbortLock: 20, AbortCert: 5}
	if cs.Aborted() != 25 {
		t.Fatalf("aborted = %d", cs.Aborted())
	}
	if cs.AbortRate() != 25 {
		t.Fatalf("rate = %v", cs.AbortRate())
	}
}
