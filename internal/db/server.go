package db

import (
	"sort"

	"repro/internal/csrt"
	"repro/internal/dbsm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ClassStats aggregates per-transaction-class results, feeding the paper's
// Tables 1 and 2 (abort rate breakdowns) and Figure 5.
type ClassStats struct {
	Submitted  int64
	Committed  int64
	AbortLock  int64
	AbortCert  int64
	AbortUser  int64
	AbortCrash int64
	// Rejected counts explicit admission-control refusals. A rejection is
	// not an abort: the transaction never conflicted with anything, the
	// server just declined to take it on — so it stays out of Aborted()
	// and the abort-rate figures.
	Rejected int64
	// Lat holds committed-transaction latencies in milliseconds.
	Lat metrics.Sample
}

// Aborted reports all aborts of the class.
func (c *ClassStats) Aborted() int64 {
	return c.AbortLock + c.AbortCert + c.AbortUser + c.AbortCrash
}

// AbortRate reports aborted/completed as a percentage.
func (c *ClassStats) AbortRate() float64 {
	done := c.Committed + c.Aborted()
	return metrics.Rate(c.Aborted(), done)
}

// Server is one database site (Section 3.1): CPUs, storage, locks, and the
// transaction execution pipeline. Replication (termination protocol) is
// plugged in via SetTerminator; without it the server runs as a classic
// centralized database, the paper's baseline configuration.
type Server struct {
	k       *sim.Kernel
	site    dbsm.SiteID
	cpus    *csrt.CPUSet
	storage *Storage
	lm      *LockManager

	// ReadSetThreshold upgrades large read-sets to table locks before
	// certification (0 disables).
	ReadSetThreshold int

	// MaxActive caps concurrently-active transactions: a Submit that would
	// exceed it is rejected outright (admission control). 0 disables the
	// cap. Bounding concurrency below the thrash point is what keeps
	// committed throughput up when the offered load passes saturation.
	MaxActive int
	// backpressured gates admission from below: the replica asserts it
	// while its termination backlog sits above the high watermark.
	backpressured bool

	// SectorFilter, if set, maps a committed write-set to the number of
	// sectors written locally. Partial replication installs a filter
	// counting only locally-replicated rows; nil writes every row.
	SectorFilter func(ws dbsm.ItemSet) int

	terminator  func(*Txn)
	pendingCert map[uint64]*Txn
	// active tracks every in-flight transaction from Submit to finish, so a
	// crash-and-restart can resolve them: their clients are blocked waiting
	// for an outcome that the dead incarnation will never produce.
	active      map[uint64]*Txn
	lastApplied uint64
	down        bool

	classes map[string]*ClassStats
	// CertLat samples the distributed termination latency in ms (commit
	// request to certification outcome) for Figure 7(b).
	CertLat metrics.Sample
	// CertDecideLat samples the certification-decision latency in ms:
	// commit request to the first certification verdict. Under the
	// conservative protocol the verdict arrives with the final delivery,
	// so this equals CertLat; under optimistic delivery the tentative
	// verdict lands one ordering round earlier — the latency the
	// optimistic variant trades risk of rollback for.
	CertDecideLat metrics.Sample
	// LatCommitted samples all committed-transaction latencies in ms.
	LatCommitted metrics.Sample
	// LatReadOnly and LatUpdate split latencies for the Figure 4
	// validation.
	LatReadOnly metrics.Sample
	LatUpdate   metrics.Sample

	remoteApplied   int64
	inconsistencies int64
	freeRemote      []*remoteApply

	// epoch counts restarts; continuations captured by a dead incarnation
	// (e.g. a remote-apply disk completion in flight at crash time) compare
	// it to fence themselves out after the site comes back.
	epoch int
	// blockedSubmits holds transactions swallowed by Submit while the site
	// was down: never executed, never counted, but their clients are blocked
	// and must be woken when the site restarts.
	blockedSubmits []*Txn
}

// NewServer builds a site over its CPU set and storage.
func NewServer(k *sim.Kernel, site dbsm.SiteID, cpus *csrt.CPUSet, storage *Storage) *Server {
	s := &Server{
		k:           k,
		site:        site,
		cpus:        cpus,
		storage:     storage,
		lm:          NewLockManager(),
		pendingCert: make(map[uint64]*Txn),
		active:      make(map[uint64]*Txn),
		classes:     make(map[string]*ClassStats),
	}
	s.wireLockHooks()
	return s
}

// wireLockHooks installs the preemption/abort callbacks on the current lock
// manager (also used by Restart, which builds a fresh one).
func (s *Server) wireLockHooks() {
	s.lm.OnPreempt = func(t *Txn) {
		t.aborted = true
		s.finish(t, AbortLock)
	}
	s.lm.OnWaiterAbort = func(t *Txn) {
		t.aborted = true
		s.finish(t, AbortLock)
	}
}

// Site reports this server's replica identifier.
func (s *Server) Site() dbsm.SiteID { return s.site }

// Storage exposes the disk model (resource usage reporting).
func (s *Server) Storage() *Storage { return s.storage }

// CPUs exposes the processor set.
func (s *Server) CPUs() *csrt.CPUSet { return s.cpus }

// Locks exposes the lock manager (tests, introspection).
func (s *Server) Locks() *LockManager { return s.lm }

// SetTerminator installs the distributed termination hook: it receives
// update transactions entering the committing stage (Section 3.3). Leaving
// it unset yields a centralized, non-replicated server.
func (s *Server) SetTerminator(fn func(*Txn)) { s.terminator = fn }

// LastApplied reports the certification sequence applied at this site.
func (s *Server) LastApplied() uint64 { return s.lastApplied }

// RemoteApplied reports how many remote transactions were installed.
func (s *Server) RemoteApplied() int64 { return s.remoteApplied }

// Inconsistencies counts safety violations observed (a transaction aborted
// locally but committed by certification); it must remain zero.
func (s *Server) Inconsistencies() int64 { return s.inconsistencies }

// Down reports whether the site has crashed.
func (s *Server) Down() bool { return s.down }

// Crash stops the site: in-flight transactions never complete and their
// clients stay blocked, as in the paper's crash fault model. A later Restart
// resolves them with AbortCrash.
func (s *Server) Crash() { s.down = true }

// Restart brings a crashed site back up with empty volatile state: the lock
// table is rebuilt from scratch, pending certifications are forgotten, and
// every transaction left in flight by the dead incarnation — including
// submissions swallowed while the site was down — is resolved with
// AbortCrash so its blocked client can resume. Durable state (the applied
// sequence horizon) is restored separately via RestoreApplied once the
// recovery snapshot installs.
func (s *Server) Restart() {
	if !s.down {
		return
	}
	s.down = false
	s.epoch++
	s.lm = NewLockManager()
	s.wireLockHooks()
	s.pendingCert = make(map[uint64]*Txn)
	// The backpressure assertion belonged to the dead incarnation's
	// replica; the rebuilt one starts with an empty backlog.
	s.backpressured = false
	// Resolve in-flight transactions in TID order so restart is
	// deterministic regardless of map iteration.
	tids := make([]uint64, 0, len(s.active))
	for tid := range s.active {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := s.active[tid]
		t.aborted = true
		s.finish(t, AbortCrash)
	}
	// Swallowed submissions were never executed or counted: wake their
	// clients without touching the class statistics.
	for _, t := range s.blockedSubmits {
		t.aborted = true
		t.finished = true
		t.EndAt = s.k.Now()
		if t.Done != nil {
			t.Done(t, AbortCrash)
		}
	}
	s.blockedSubmits = nil
}

// RestoreApplied resets the applied-sequence horizon from a recovery
// snapshot.
func (s *Server) RestoreApplied(seq uint64) { s.lastApplied = seq }

// Class returns (creating if needed) the stats bucket for a class.
func (s *Server) Class(name string) *ClassStats {
	cs := s.classes[name]
	if cs == nil {
		cs = &ClassStats{}
		s.classes[name] = cs
	}
	return cs
}

// EachClass iterates classes in sorted order.
func (s *Server) EachClass(fn func(name string, cs *ClassStats)) {
	names := make([]string, 0, len(s.classes))
	for n := range s.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, s.classes[n])
	}
}

// Totals sums class counters. Every submitted transaction resolves into
// exactly one of committed, aborted, or rejected.
func (s *Server) Totals() (submitted, committed, aborted, rejected int64) {
	for _, cs := range s.classes {
		submitted += cs.Submitted
		committed += cs.Committed
		aborted += cs.Aborted()
		rejected += cs.Rejected
	}
	return
}

// SetBackpressure gates admission from the replication layer: while set,
// every new submission is rejected. The replica toggles it as its
// termination backlog crosses the high/low watermarks.
func (s *Server) SetBackpressure(on bool) { s.backpressured = on }

// Backpressured reports the admission gate state (tests, introspection).
func (s *Server) Backpressured() bool { return s.backpressured }

// ActiveCount reports in-flight transactions (tests, introspection).
func (s *Server) ActiveCount() int { return len(s.active) }

// Submit starts a transaction: take the snapshot, acquire all write locks
// atomically, then execute.
func (s *Server) Submit(t *Txn) {
	if s.down {
		// The client blocks, as in the paper's crash model. The
		// transaction is remembered so a restart can wake the client with
		// AbortCrash; without a recovery event it stays blocked forever.
		t.server = s
		s.blockedSubmits = append(s.blockedSubmits, t)
		return
	}
	if _, dup := s.active[t.TID]; dup {
		// Duplicate resubmission race: the same TID is still in flight. The
		// original decides the transaction's fate; the duplicate is refused
		// so it can never execute (and commit) twice.
		t.server = s
		t.SubmitAt = s.k.Now()
		s.Class(t.Class).Submitted++
		s.finish(t, Rejected)
		return
	}
	if s.backpressured || (s.MaxActive > 0 && len(s.active) >= s.MaxActive) {
		// Admission control: explicit rejection instead of joining an
		// already-thrashing pipeline. The client backs off and retries.
		t.server = s
		t.SubmitAt = s.k.Now()
		s.Class(t.Class).Submitted++
		s.finish(t, Rejected)
		return
	}
	t.server = s
	s.active[t.TID] = t
	t.SubmitAt = s.k.Now()
	t.Snapshot = s.lastApplied
	s.Class(t.Class).Submitted++
	// One continuation closure serves every pipeline step of this
	// transaction: stale callbacks (after preemption or crash) are fenced
	// by the aborted/finished flags, which every abort path sets before
	// any further event can fire.
	t.stepFn = func() {
		if t.aborted || t.finished || s.down {
			return
		}
		s.step(t)
	}
	s.lm.AcquireAll(t, func() {
		t.LocksAt = s.k.Now()
		s.step(t)
	})
}

// step advances the operation pipeline.
func (s *Server) step(t *Txn) {
	if t.aborted || t.finished || s.down {
		return
	}
	if t.opIdx >= len(t.Ops) {
		s.commitPhase(t)
		return
	}
	op := t.Ops[t.opIdx]
	t.opIdx++
	switch op.Kind {
	case OpFetch:
		if s.storage.Read(t.stepFn) {
			t.stepFn() // cache hit: no storage resources consumed
		}
	case OpProcess:
		s.cpus.SubmitSim(op.CPU, t.stepFn)
	default:
		// OpWrite: write-back is deferred to commit (the value sizes are
		// already summed in WriteBytes); the step itself is free.
		t.stepFn()
	}
}

// commitPhase runs the commit operation's CPU cost, then finishes locally
// (read-only or centralized) or enters the distributed termination protocol.
func (s *Server) commitPhase(t *Txn) {
	s.cpus.SubmitSim(t.CommitCPU, func() {
		if t.aborted || t.finished || s.down {
			return
		}
		switch {
		case t.UserAbort:
			// Application rollback at the end of execution.
			s.lm.ReleaseAbort(t)
			s.finish(t, AbortUser)
		case t.ReadOnly:
			// Read-only transactions commit locally; no I/O is
			// performed at commit (Section 4.1).
			s.finish(t, Committed)
		case s.terminator == nil:
			// Centralized baseline: write back and release. One
			// sector per written row: updated tuples live on
			// distinct pages.
			s.storage.WriteSectors(len(t.WriteSet), func() {
				if s.down || t.finished {
					return
				}
				s.lm.ReleaseCommit(t)
				s.finish(t, Committed)
			})
		default:
			t.CommitReqAt = s.k.Now()
			s.pendingCert[t.TID] = t
			s.terminator(t)
		}
	})
}

// NoteCertDecision records the first certification verdict for a pending
// local transaction — the optimistic tentative decision, sampled one
// ordering round before the final outcome. Resolution still waits for
// ResolveLocal; only the decision-latency split is measured here.
func (s *Server) NoteCertDecision(tid uint64) {
	t, ok := s.pendingCert[tid]
	if !ok || s.down || t.decided {
		return
	}
	t.decided = true
	s.CertDecideLat.Add((s.k.Now() - t.CommitReqAt).Millis())
}

// ResolveLocal delivers the certification outcome for a local transaction,
// in total delivery order. On commit, the write-back happens while the locks
// are still held; on abort, locks release immediately. It reports whether the
// transaction was known: false means no pending certification entry exists —
// the submitting incarnation crashed — and the caller must install a
// committed write-set through the remote path instead, or the recovered
// site's storage would silently miss the group's commit.
func (s *Server) ResolveLocal(tid uint64, commit bool, seq uint64) bool {
	t, ok := s.pendingCert[tid]
	if !ok {
		return false
	}
	if s.down {
		return true
	}
	delete(s.pendingCert, tid)
	lat := (s.k.Now() - t.CommitReqAt).Millis()
	s.CertLat.Add(lat)
	if !t.decided {
		// Conservative protocol: decision and outcome coincide.
		t.decided = true
		s.CertDecideLat.Add(lat)
	}
	if t.finished {
		// Preempted by a certified transaction while awaiting its own
		// outcome. Certification must have aborted it everywhere;
		// anything else is a safety violation.
		if commit {
			s.inconsistencies++
		}
		return true
	}
	if !commit {
		s.lm.ReleaseAbort(t)
		s.finish(t, AbortCert)
		return true
	}
	t.certified = true
	if seq > s.lastApplied {
		s.lastApplied = seq
	}
	s.storage.WriteSectors(s.writeSectors(t.WriteSet), func() {
		if s.down || t.finished {
			return
		}
		s.lm.ReleaseCommit(t)
		s.finish(t, Committed)
	})
	return true
}

// RejectPending turns a pending-certification transaction back into an
// explicit rejection — the replica calls it when the replication stack's
// bounded transmit queue refused the termination multicast. The transaction
// never entered the group-wide certification stream, so dropping it is safe:
// locks release and the client sees Rejected, exactly as if admission had
// refused it up front.
func (s *Server) RejectPending(tid uint64) {
	t, ok := s.pendingCert[tid]
	if !ok || s.down {
		return
	}
	delete(s.pendingCert, tid)
	if t.finished {
		return
	}
	t.aborted = true
	s.lm.ReleaseAbort(t)
	s.finish(t, Rejected)
}

// NoteApplied advances the local snapshot horizon without installing
// anything — used by partial replication when a certified transaction wrote
// no locally-stored rows.
func (s *Server) NoteApplied(seq uint64) {
	if seq > s.lastApplied {
		s.lastApplied = seq
	}
}

// ApplyRemote installs a remotely-certified transaction: acquire its locks
// (preempting conflicting local transactions), write back, release.
func (s *Server) ApplyRemote(c *dbsm.TxnCert, seq uint64) {
	s.applyRemote(c, seq, s.writeSectors(c.WriteSet))
}

// ApplyRemotePrepared installs a remotely-certified transaction whose
// write-set was already written back speculatively at tentative delivery
// (PreApplyRemote): the install under locks flips the prepared version
// visible with a single commit-record sector instead of re-writing every
// row. The disk queue serializes it behind the speculative write, so a
// still-in-flight pre-apply is waited out naturally.
func (s *Server) ApplyRemotePrepared(c *dbsm.TxnCert, seq uint64) {
	s.applyRemote(c, seq, 1)
}

func (s *Server) applyRemote(c *dbsm.TxnCert, seq uint64, sectors int) {
	if s.down {
		return
	}
	if seq > s.lastApplied {
		s.lastApplied = seq
	}
	var ra *remoteApply
	if n := len(s.freeRemote); n > 0 {
		ra = s.freeRemote[n-1]
		s.freeRemote[n-1] = nil
		s.freeRemote = s.freeRemote[:n-1]
	} else {
		ra = &remoteApply{s: s}
		ra.granted = func() { ra.s.storage.WriteSectors(ra.sectors, ra.written) }
		ra.written = ra.finish
	}
	ra.epoch = s.epoch
	ra.t = Txn{
		TID:        c.TID,
		Class:      "(remote)",
		WriteSet:   c.WriteSet,
		WriteBytes: c.WriteBytes,
		certified:  true,
	}
	ra.sectors = sectors
	s.lm.AcquireAll(&ra.t, ra.granted)
}

// remoteApply is the pooled state of one remote write-set install: the
// surrogate transaction holding the locks plus the two continuations
// (lock-grant → write-back → release), bound once at allocation.
type remoteApply struct {
	s       *Server
	t       Txn
	sectors int
	epoch   int // incarnation that issued the install
	granted func()
	written func()
}

// finish releases the surrogate's locks and recycles it.
func (ra *remoteApply) finish() {
	s := ra.s
	if s.down || ra.epoch != s.epoch {
		// The issuing incarnation crashed; a restarted site must not let
		// the stale completion touch the rebuilt lock table.
		return
	}
	s.lm.ReleaseCommit(&ra.t)
	s.remoteApplied++
	ra.t = Txn{}
	s.freeRemote = append(s.freeRemote, ra)
}

// PreApplyRemote speculatively writes a tentatively-certified remote
// write-set to a scratch area, overlapping the disk I/O with the ordering
// round. No locks are taken — a wrong speculation must not abort local
// transactions — so the data only becomes visible when ApplyRemotePrepared
// installs it after the final delivery confirms the order.
func (s *Server) PreApplyRemote(ws dbsm.ItemSet) {
	if s.down {
		return
	}
	s.storage.WriteSectors(s.writeSectors(ws), func() {})
}

// writeSectors sizes a commit's local write-back.
func (s *Server) writeSectors(ws dbsm.ItemSet) int {
	if s.SectorFilter != nil {
		return s.SectorFilter(ws)
	}
	return len(ws)
}

// finish records the outcome exactly once and notifies the issuer.
func (s *Server) finish(t *Txn, outcome Outcome) {
	if t.finished {
		return
	}
	t.finished = true
	t.EndAt = s.k.Now()
	// Identity-checked removal: a rejected duplicate shares the TID of the
	// still-active original and must not evict its entry.
	if cur, ok := s.active[t.TID]; ok && cur == t {
		delete(s.active, t.TID)
	}
	cs := s.Class(t.Class)
	switch outcome {
	case Committed:
		cs.Committed++
		lat := t.Latency().Millis()
		cs.Lat.Add(lat)
		s.LatCommitted.Add(lat)
		if t.ReadOnly {
			s.LatReadOnly.Add(lat)
		} else {
			s.LatUpdate.Add(lat)
		}
	case AbortLock:
		cs.AbortLock++
	case AbortCert:
		cs.AbortCert++
	case AbortUser:
		cs.AbortUser++
	case AbortCrash:
		cs.AbortCrash++
	case Rejected:
		cs.Rejected++
	}
	if t.Done != nil {
		t.Done(t, outcome)
	}
}
