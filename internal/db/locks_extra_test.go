package db

import (
	"testing"

	"repro/internal/csrt"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

func TestLockManagerRemoveWaiter(t *testing.T) {
	lm := NewLockManager()
	hot := dbsm.NewItemSet(dbsm.MakeTupleID(1, 1))
	holder := &Txn{TID: 1, WriteSet: hot}
	granted := 0
	lm.AcquireAll(holder, func() { granted++ })
	waiter := &Txn{TID: 2, WriteSet: hot.Clone()}
	lm.AcquireAll(waiter, func() { granted++ })
	if granted != 1 || lm.WaiterCount() != 1 {
		t.Fatalf("granted=%d waiters=%d", granted, lm.WaiterCount())
	}
	lm.RemoveWaiter(waiter)
	if lm.WaiterCount() != 0 {
		t.Fatal("waiter not removed")
	}
	// Releasing now must not grant the removed waiter.
	lm.ReleaseAbort(holder)
	if granted != 1 {
		t.Fatal("removed waiter was granted")
	}
}

func TestLockManagerSkipsFinishedWaiters(t *testing.T) {
	lm := NewLockManager()
	hot := dbsm.NewItemSet(dbsm.MakeTupleID(1, 1))
	holder := &Txn{TID: 1, WriteSet: hot}
	lm.AcquireAll(holder, func() {})
	dead := &Txn{TID: 2, WriteSet: hot.Clone(), finished: true}
	liveGranted := false
	live := &Txn{TID: 3, WriteSet: hot.Clone()}
	lm.AcquireAll(dead, func() { t.Fatal("finished txn granted") })
	// Mark finished after enqueue (simulates external abort).
	dead.finished = true
	lm.AcquireAll(live, func() { liveGranted = true })
	lm.ReleaseAbort(holder)
	if !liveGranted {
		t.Fatal("live waiter skipped")
	}
}

func TestLockWaitsCounter(t *testing.T) {
	lm := NewLockManager()
	hot := dbsm.NewItemSet(dbsm.MakeTupleID(1, 1))
	a := &Txn{TID: 1, WriteSet: hot}
	b := &Txn{TID: 2, WriteSet: hot.Clone()}
	lm.AcquireAll(a, func() {})
	lm.AcquireAll(b, func() {})
	if lm.Waits() != 1 {
		t.Fatalf("waits = %d", lm.Waits())
	}
	if lm.HeldLocks() != 1 {
		t.Fatalf("held = %d", lm.HeldLocks())
	}
}

func TestUserAbortPath(t *testing.T) {
	k := sim.NewKernel()
	cpus := csrt.NewCPUSet(1, k, nil)
	st := NewStorage(k, StorageConfig{}, sim.NewRNG(1))
	s := NewServer(k, 1, cpus, st)
	ws := dbsm.NewItemSet(dbsm.MakeTupleID(1, 1))
	var outcome Outcome
	txn := &Txn{
		TID: 1, Class: "neworder", UserAbort: true,
		Ops:     []Op{{Kind: db0pProcess(), CPU: 2 * sim.Millisecond}},
		ReadSet: ws.Clone(), WriteSet: ws, WriteBytes: 100,
		CommitCPU: sim.Millisecond,
		Done:      nil,
	}
	txn.Done = func(_ *Txn, o Outcome) { outcome = o }
	s.Submit(txn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if outcome != AbortUser {
		t.Fatalf("outcome = %v, want AbortUser", outcome)
	}
	if st.Sectors() != 0 {
		t.Fatal("user abort must not write to disk")
	}
	if s.Locks().HeldLocks() != 0 {
		t.Fatal("locks leaked")
	}
	if s.Class("neworder").AbortUser != 1 {
		t.Fatal("stats missing user abort")
	}
}

func db0pProcess() OpKind { return OpProcess }

func TestSectorFilterApplied(t *testing.T) {
	k := sim.NewKernel()
	cpus := csrt.NewCPUSet(1, k, nil)
	st := NewStorage(k, StorageConfig{}, sim.NewRNG(1))
	s := NewServer(k, 1, cpus, st)
	s.SectorFilter = func(ws dbsm.ItemSet) int { return 1 } // partial: one row local
	ws := dbsm.NewItemSet(
		dbsm.MakeTupleID(1, 1), dbsm.MakeTupleID(1, 2),
		dbsm.MakeTupleID(1, 3), dbsm.MakeTupleID(1, 4),
	)
	s.ApplyRemote(&dbsm.TxnCert{TID: 9, Site: 2, WriteSet: ws, WriteBytes: 400}, 1)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Sectors() != 1 {
		t.Fatalf("sectors = %d, want 1 (filtered)", st.Sectors())
	}
	if s.RemoteApplied() != 1 {
		t.Fatal("remote apply lost")
	}
}

func TestNoteApplied(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, 1, csrt.NewCPUSet(1, k, nil), NewStorage(k, StorageConfig{}, sim.NewRNG(1)))
	s.NoteApplied(5)
	s.NoteApplied(3) // regressions ignored
	if s.LastApplied() != 5 {
		t.Fatalf("lastApplied = %d", s.LastApplied())
	}
}
