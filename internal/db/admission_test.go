package db

import (
	"testing"

	"repro/internal/dbsm"
	"repro/internal/sim"
)

// TestMaxActiveCapRejects pins the admission cap: with MaxActive 1, a second
// concurrent submission is refused with the Rejected outcome — immediately,
// without executing — while the first commits untouched.
func TestMaxActiveCapRejects(t *testing.T) {
	k, s := newTestServer(t, 1)
	s.MaxActive = 1
	t1 := simpleTxn(1, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 10*sim.Millisecond)
	t2 := simpleTxn(2, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 2)}, 10*sim.Millisecond)
	var o1, o2 Outcome
	var rejectedAt sim.Time
	t1.Done = func(_ *Txn, o Outcome) { o1 = o }
	t2.Done = func(_ *Txn, o Outcome) { o2 = o; rejectedAt = k.Now() }
	s.Submit(t1)
	k.Schedule(sim.Millisecond, func() { s.Submit(t2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if o1 != Committed {
		t.Fatalf("admitted transaction outcome = %v", o1)
	}
	if o2 != Rejected {
		t.Fatalf("over-cap transaction outcome = %v, want Rejected", o2)
	}
	if rejectedAt != sim.Millisecond {
		t.Fatalf("rejection at %v, want immediate (1ms)", rejectedAt)
	}
	// Rejections are counted on both sides of the ledger: Submitted and
	// Rejected, never Aborted — live accounting stays uniform.
	cs := s.Class("w")
	if cs.Submitted != 2 || cs.Rejected != 1 || cs.Committed != 1 {
		t.Fatalf("class stats: %+v", cs)
	}
	if s.ActiveCount() != 0 {
		t.Fatalf("active count = %d after drain", s.ActiveCount())
	}
}

// TestBackpressureGateRejects pins the replica-driven gate: while set, every
// submission is refused; once cleared, admission resumes; a restart clears a
// stale gate.
func TestBackpressureGateRejects(t *testing.T) {
	k, s := newTestServer(t, 1)
	s.SetBackpressure(true)
	t1 := simpleTxn(1, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 5*sim.Millisecond)
	t2 := simpleTxn(2, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 2)}, 5*sim.Millisecond)
	var o1, o2 Outcome
	t1.Done = func(_ *Txn, o Outcome) { o1 = o }
	t2.Done = func(_ *Txn, o Outcome) { o2 = o }
	s.Submit(t1)
	k.Schedule(sim.Millisecond, func() {
		s.SetBackpressure(false)
		s.Submit(t2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if o1 != Rejected {
		t.Fatalf("gated transaction outcome = %v, want Rejected", o1)
	}
	if o2 != Committed {
		t.Fatalf("post-release transaction outcome = %v, want Committed", o2)
	}
	s.SetBackpressure(true)
	s.Crash()
	s.Restart()
	if s.Backpressured() {
		t.Fatal("restart kept a stale backpressure gate")
	}
}

// TestDuplicateSubmitRefused pins idempotent resubmission at the server: a
// second instance of a TID still in flight is refused, so a retried
// transaction can never execute — let alone commit — twice.
func TestDuplicateSubmitRefused(t *testing.T) {
	k, s := newTestServer(t, 1)
	orig := simpleTxn(7, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 20*sim.Millisecond)
	dup := simpleTxn(7, "w", []dbsm.TupleID{dbsm.MakeTupleID(1, 1)}, 20*sim.Millisecond)
	var oOrig, oDup Outcome
	commits := 0
	orig.Done = func(_ *Txn, o Outcome) {
		oOrig = o
		if o == Committed {
			commits++
		}
	}
	dup.Done = func(_ *Txn, o Outcome) {
		oDup = o
		if o == Committed {
			commits++
		}
	}
	s.Submit(orig)
	k.Schedule(sim.Millisecond, func() { s.Submit(dup) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if oOrig != Committed {
		t.Fatalf("original outcome = %v", oOrig)
	}
	if oDup != Rejected {
		t.Fatalf("duplicate outcome = %v, want Rejected", oDup)
	}
	if commits != 1 {
		t.Fatalf("TID 7 committed %d times", commits)
	}
	// The duplicate's rejection must not have torn down the original's
	// active entry (the finish path deletes by identity, not by TID).
	if s.Class("w").Committed != 1 || s.Class("w").Rejected != 1 {
		t.Fatalf("class stats: %+v", s.Class("w"))
	}
}
