package db

import "repro/internal/dbsm"

// LockManager implements the concurrency control policy of Section 3.1,
// modeled on PostgreSQL's multi-version behaviour: fetched items are
// ignored; updated items are exclusively locked. All of a transaction's
// locks are acquired atomically (its items are known beforehand), so
// deadlock detection is unnecessary and waiting transactions hold nothing.
// When a holder commits, every transaction waiting on its locks aborts
// (write-write conflict); when it aborts, the next waiter acquires. Already
// certified transactions (remote or local) preempt and abort uncertified
// local holders — those would abort in certification anyway.
type LockManager struct {
	// OnPreempt is invoked when an uncertified holder is aborted by a
	// certified transaction; the server finalizes the abort.
	OnPreempt func(*Txn)
	// OnWaiterAbort is invoked when a waiter aborts because the holder
	// committed.
	OnWaiterAbort func(*Txn)

	locks map[dbsm.TupleID]*lockState
	dirty []dbsm.TupleID // released locks pending waiter processing
	busy  bool           // re-entrancy guard for processDirty

	waits int64 // transactions that had to wait at least once
}

type lockState struct {
	holder  *Txn
	waiters []*lockWaiter
}

type lockWaiter struct {
	t     *Txn
	grant func()
}

// NewLockManager builds an empty manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[dbsm.TupleID]*lockState)}
}

// Waits reports how many acquisitions had to block.
func (lm *LockManager) Waits() int64 { return lm.waits }

func (lm *LockManager) state(id dbsm.TupleID) *lockState {
	l := lm.locks[id]
	if l == nil {
		l = &lockState{}
		lm.locks[id] = l
	}
	return l
}

// AcquireAll atomically acquires every lock in t's write set, invoking grant
// when all are held. A read-only transaction is granted immediately. If a
// lock is busy the transaction waits (holding nothing). Certified
// transactions preempt uncertified holders.
func (lm *LockManager) AcquireAll(t *Txn, grant func()) {
	lm.tryAcquire(&lockWaiter{t: t, grant: grant})
	lm.processDirty()
}

func (lm *LockManager) tryAcquire(w *lockWaiter) {
	t := w.t
	if len(t.WriteSet) == 0 {
		w.grant()
		return
	}
	if t.certified {
		// Preempt uncertified holders: they would fail certification
		// against this already-certified transaction anyway.
		for _, id := range t.WriteSet {
			l := lm.state(id)
			if h := l.holder; h != nil && !h.certified && h != t {
				lm.releaseHolder(h)
				if lm.OnPreempt != nil {
					lm.OnPreempt(h)
				}
			}
		}
	}
	// Atomic check: all free or none taken.
	for _, id := range t.WriteSet {
		l := lm.state(id)
		if l.holder != nil && l.holder != t {
			l.waiters = append(l.waiters, w)
			lm.waits++
			return
		}
	}
	for _, id := range t.WriteSet {
		lm.state(id).holder = t
	}
	t.holding = true
	w.grant()
}

// releaseHolder removes t as holder of all its locks without processing
// waiters yet (the caller batches that via processDirty).
func (lm *LockManager) releaseHolder(t *Txn) {
	for _, id := range t.WriteSet {
		l := lm.state(id)
		if l.holder == t {
			l.holder = nil
			lm.dirty = append(lm.dirty, id)
		}
	}
	t.holding = false
}

// ReleaseCommit releases t's locks after commit: waiting uncertified
// transactions abort (write-write conflict with the committed holder);
// certified waiters proceed to acquisition.
func (lm *LockManager) ReleaseCommit(t *Txn) {
	if !t.holding {
		return
	}
	for _, id := range t.WriteSet {
		l := lm.state(id)
		if l.holder != t {
			continue
		}
		l.holder = nil
		kept := l.waiters[:0]
		for _, w := range l.waiters {
			if w.t.certified {
				kept = append(kept, w)
			} else if lm.OnWaiterAbort != nil {
				lm.OnWaiterAbort(w.t)
			}
		}
		l.waiters = kept
		lm.dirty = append(lm.dirty, id)
	}
	t.holding = false
	lm.processDirty()
}

// ReleaseAbort releases t's locks after an abort: the next waiters retry
// acquisition.
func (lm *LockManager) ReleaseAbort(t *Txn) {
	if !t.holding {
		return
	}
	lm.releaseHolder(t)
	lm.processDirty()
}

// RemoveWaiter drops a waiter (whose transaction aborted for another
// reason) from all wait lists.
func (lm *LockManager) RemoveWaiter(t *Txn) {
	for _, id := range t.WriteSet {
		l := lm.locks[id]
		if l == nil {
			continue
		}
		kept := l.waiters[:0]
		for _, w := range l.waiters {
			if w.t != t {
				kept = append(kept, w)
			}
		}
		l.waiters = kept
	}
}

// processDirty retries waiters of released locks, FIFO, until quiescent.
func (lm *LockManager) processDirty() {
	if lm.busy {
		return
	}
	lm.busy = true
	for len(lm.dirty) > 0 {
		id := lm.dirty[0]
		lm.dirty = lm.dirty[1:]
		l := lm.locks[id]
		if l == nil || l.holder != nil || len(l.waiters) == 0 {
			continue
		}
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		if w.t.finished || w.t.aborted {
			lm.dirty = append(lm.dirty, id) // try the next waiter
			continue
		}
		lm.tryAcquire(w)
	}
	lm.busy = false
}

// HeldLocks reports how many locks are currently held (for tests).
func (lm *LockManager) HeldLocks() int {
	n := 0
	for _, l := range lm.locks {
		if l.holder != nil {
			n++
		}
	}
	return n
}

// WaiterCount reports how many waiters are queued (for tests).
func (lm *LockManager) WaiterCount() int {
	n := 0
	for _, l := range lm.locks {
		n += len(l.waiters)
	}
	return n
}
