package db

import "repro/internal/dbsm"

// LockManager implements the concurrency control policy of Section 3.1,
// modeled on PostgreSQL's multi-version behaviour: fetched items are
// ignored; updated items are exclusively locked. All of a transaction's
// locks are acquired atomically (its items are known beforehand), so
// deadlock detection is unnecessary and waiting transactions hold nothing.
// When a holder commits, every transaction waiting on its locks aborts
// (write-write conflict); when it aborts, the next waiter acquires. Already
// certified transactions (remote or local) preempt and abort uncertified
// local holders — those would abort in certification anyway.
//
// Holders and waiters live in flat maps keyed by tuple, with entries removed
// on release: the uncontended acquire/release cycle allocates nothing, and
// the maps stay sized to the locks actually held rather than every tuple
// ever touched.
type LockManager struct {
	// OnPreempt is invoked when an uncertified holder is aborted by a
	// certified transaction; the server finalizes the abort.
	OnPreempt func(*Txn)
	// OnWaiterAbort is invoked when a waiter aborts because the holder
	// committed.
	OnWaiterAbort func(*Txn)

	holders map[dbsm.TupleID]*Txn
	waiters map[dbsm.TupleID][]*lockWaiter
	dirty   []dbsm.TupleID // released locks pending waiter processing
	busy    bool           // re-entrancy guard for processDirty

	waits int64 // transactions that had to wait at least once
}

type lockWaiter struct {
	t     *Txn
	grant func()
}

// NewLockManager builds an empty manager.
func NewLockManager() *LockManager {
	return &LockManager{
		holders: make(map[dbsm.TupleID]*Txn),
		waiters: make(map[dbsm.TupleID][]*lockWaiter),
	}
}

// Waits reports how many acquisitions had to block.
func (lm *LockManager) Waits() int64 { return lm.waits }

// AcquireAll atomically acquires every lock in t's write set, invoking grant
// when all are held. A read-only transaction is granted immediately. If a
// lock is busy the transaction waits (holding nothing). Certified
// transactions preempt uncertified holders.
func (lm *LockManager) AcquireAll(t *Txn, grant func()) {
	lm.tryAcquire(t, grant)
	lm.processDirty()
}

func (lm *LockManager) tryAcquire(t *Txn, grant func()) {
	if len(t.WriteSet) == 0 {
		grant()
		return
	}
	if t.certified {
		// Preempt uncertified holders: they would fail certification
		// against this already-certified transaction anyway.
		for _, id := range t.WriteSet {
			if h := lm.holders[id]; h != nil && !h.certified && h != t {
				lm.releaseHolder(h)
				if lm.OnPreempt != nil {
					lm.OnPreempt(h)
				}
			}
		}
	}
	// Atomic check: all free or none taken.
	for _, id := range t.WriteSet {
		if h := lm.holders[id]; h != nil && h != t {
			lm.waiters[id] = append(lm.waiters[id], &lockWaiter{t: t, grant: grant})
			lm.waits++
			return
		}
	}
	for _, id := range t.WriteSet {
		lm.holders[id] = t
	}
	t.holding = true
	grant()
}

// releaseHolder removes t as holder of all its locks without processing
// waiters yet (the caller batches that via processDirty).
func (lm *LockManager) releaseHolder(t *Txn) {
	for _, id := range t.WriteSet {
		if lm.holders[id] == t {
			delete(lm.holders, id)
			lm.dirty = append(lm.dirty, id)
		}
	}
	t.holding = false
}

// ReleaseCommit releases t's locks after commit: waiting uncertified
// transactions abort (write-write conflict with the committed holder);
// certified waiters proceed to acquisition.
func (lm *LockManager) ReleaseCommit(t *Txn) {
	if !t.holding {
		return
	}
	for _, id := range t.WriteSet {
		if lm.holders[id] != t {
			continue
		}
		delete(lm.holders, id)
		if ws, ok := lm.waiters[id]; ok {
			kept := ws[:0]
			for _, w := range ws {
				if w.t.certified {
					kept = append(kept, w)
				} else if lm.OnWaiterAbort != nil {
					lm.OnWaiterAbort(w.t)
				}
			}
			lm.setWaiters(id, kept)
		}
		lm.dirty = append(lm.dirty, id)
	}
	t.holding = false
	lm.processDirty()
}

// setWaiters stores a trimmed wait list, dropping the map entry when it
// empties so the table tracks only contended tuples.
func (lm *LockManager) setWaiters(id dbsm.TupleID, ws []*lockWaiter) {
	if len(ws) == 0 {
		delete(lm.waiters, id)
	} else {
		lm.waiters[id] = ws
	}
}

// ReleaseAbort releases t's locks after an abort: the next waiters retry
// acquisition.
func (lm *LockManager) ReleaseAbort(t *Txn) {
	if !t.holding {
		return
	}
	lm.releaseHolder(t)
	lm.processDirty()
}

// RemoveWaiter drops a waiter (whose transaction aborted for another
// reason) from all wait lists.
func (lm *LockManager) RemoveWaiter(t *Txn) {
	for _, id := range t.WriteSet {
		ws, ok := lm.waiters[id]
		if !ok {
			continue
		}
		kept := ws[:0]
		for _, w := range ws {
			if w.t != t {
				kept = append(kept, w)
			}
		}
		for i := len(kept); i < len(ws); i++ {
			ws[i] = nil
		}
		lm.setWaiters(id, kept)
	}
}

// processDirty retries waiters of released locks, FIFO, until quiescent.
func (lm *LockManager) processDirty() {
	if lm.busy {
		return
	}
	lm.busy = true
	// Index cursor, not head reslicing: the queue may grow while draining
	// (retrying the next waiter), and keeping the base pointer lets the
	// backing array be reused run-long instead of reallocated per append.
	for i := 0; i < len(lm.dirty); i++ {
		id := lm.dirty[i]
		if lm.holders[id] != nil {
			continue
		}
		ws, ok := lm.waiters[id]
		if !ok {
			continue
		}
		w := ws[0]
		lm.setWaiters(id, ws[1:])
		if w.t.finished || w.t.aborted {
			lm.dirty = append(lm.dirty, id) // try the next waiter
			continue
		}
		lm.tryAcquire(w.t, w.grant)
	}
	lm.dirty = lm.dirty[:0]
	lm.busy = false
}

// HeldLocks reports how many locks are currently held (for tests).
func (lm *LockManager) HeldLocks() int { return len(lm.holders) }

// WaiterCount reports how many waiters are queued (for tests).
func (lm *LockManager) WaiterCount() int {
	n := 0
	for _, ws := range lm.waiters {
		n += len(ws)
	}
	return n
}
