package db

import (
	"repro/internal/dbsm"
	"repro/internal/sim"
)

// OpKind classifies transaction operations (Section 3.1): fetch a data item,
// do some processing, or write back a data item.
type OpKind int

// Operation kinds.
const (
	OpFetch OpKind = iota + 1
	OpProcess
	OpWrite
)

// Op is one step of a transaction's execution.
type Op struct {
	Kind OpKind
	// Item is the tuple accessed by fetch/write operations.
	Item dbsm.TupleID
	// CPU is the processing time of an OpProcess step.
	CPU sim.Time
	// Size is the value size in bytes of an OpWrite step.
	Size int
}

// Outcome is a transaction's fate.
type Outcome int

// Transaction outcomes. AbortLock is a local write-write conflict (a lock
// holder committed while this transaction waited, or a certified transaction
// preempted it); AbortCert is a certification failure; AbortUser is an
// application rollback (TPC-C's 1% intentional new-order aborts); AbortCrash
// means the site died.
const (
	Committed Outcome = iota + 1
	AbortLock
	AbortCert
	AbortUser
	AbortCrash
	// Rejected is an explicit admission-control refusal: the server (or the
	// replication stack beneath it) was overloaded and declined the
	// transaction without executing it to completion. Unlike the aborts it
	// carries a retry invitation — the client may resubmit the same
	// transaction (same TID) after a backoff.
	Rejected
)

func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case AbortLock:
		return "abort-lock"
	case AbortCert:
		return "abort-cert"
	case AbortUser:
		return "abort-user"
	case AbortCrash:
		return "abort-crash"
	case Rejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Txn is one transaction instance flowing through a server.
type Txn struct {
	// TID is the global transaction identifier.
	TID uint64
	// Class labels the workload class (e.g. "payment-long") for the abort
	// rate breakdowns of Tables 1 and 2.
	Class string
	// ReadOnly transactions skip the distributed termination protocol;
	// their latency is unaffected by replication (Section 5.1).
	ReadOnly bool
	// Ops is the execution script.
	Ops []Op
	// ReadSet and WriteSet are known before execution starts, enabling
	// atomic lock acquisition without deadlock detection (Section 3.1).
	ReadSet  dbsm.ItemSet
	WriteSet dbsm.ItemSet
	// WriteBytes is the total size of written values.
	WriteBytes int
	// CommitCPU is the processing cost of the commit operation itself
	// (profiled at just under 2ms for all classes).
	CommitCPU sim.Time
	// UserAbort marks a transaction the application rolls back at the end
	// of execution (TPC-C's 1% new-order aborts).
	UserAbort bool

	// Done receives the final outcome exactly once.
	Done func(*Txn, Outcome)

	// Measurement timestamps, filled by the server.
	SubmitAt    sim.Time
	LocksAt     sim.Time // when locks were granted
	CommitReqAt sim.Time // when the commit request entered termination
	EndAt       sim.Time

	// Snapshot is the certification sequence applied locally when the
	// transaction started: the concurrency horizon for certification.
	Snapshot uint64

	// internal state
	opIdx     int
	aborted   bool
	certified bool
	decided   bool // first certification verdict already sampled
	finished  bool
	holding   bool // currently holds its write locks
	server    *Server
	stepFn    func() // single pipeline continuation, bound once at Submit
}

// CertInfo builds the certification message for this transaction.
func (t *Txn) CertInfo(site dbsm.SiteID, readSetThreshold int) *dbsm.TxnCert {
	rs := t.ReadSet
	if readSetThreshold > 0 {
		rs = rs.UpgradeToTableLocks(readSetThreshold)
	}
	return &dbsm.TxnCert{
		TID:           t.TID,
		Site:          site,
		LastCommitted: t.Snapshot,
		ReadSet:       rs,
		WriteSet:      t.WriteSet,
		WriteBytes:    t.WriteBytes,
	}
}

// Latency reports submit-to-outcome latency (valid after completion).
func (t *Txn) Latency() sim.Time { return t.EndAt - t.SubmitAt }

// ResetForRetry clears the per-attempt execution state so the same
// transaction instance — same TID, same operation script, same sets — can be
// resubmitted after a rejection. Identity surviving the retry is what makes
// resubmission idempotent: a duplicate of an already-active TID is refused at
// admission, and the off-line checker verifies no TID ever commits twice.
func (t *Txn) ResetForRetry() {
	t.opIdx = 0
	t.aborted = false
	t.certified = false
	t.decided = false
	t.finished = false
	t.holding = false
	t.server = nil
	t.stepFn = nil
	t.SubmitAt = 0
	t.LocksAt = 0
	t.CommitReqAt = 0
	t.EndAt = 0
	t.Snapshot = 0
}
