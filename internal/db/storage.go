// Package db implements the simulated database server of Section 3.1: a
// scheduler over a collection of resources (CPUs, storage) plus a
// concurrency control policy modeled on PostgreSQL's multi-version locking.
// Transactions are sequences of fetch/process/write operations whose costs
// come from profiling a real database engine (see internal/tpcc for the
// calibration data).
package db

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// StorageConfig describes the disk subsystem. The paper's test system is a
// RAID-5 fibre-channel box sustaining 9.486 MB/s of synchronous 4 KB writes
// (measured with IOzone), with a cache hit ratio above 98% configured as
// 100%.
type StorageConfig struct {
	// SectorSize is the unit of transfer (default 4096).
	SectorSize int
	// MaxConcurrent is the number of in-flight requests the device
	// sustains (default 8).
	MaxConcurrent int
	// ThroughputBps is the sustained bandwidth in bytes/s; the per-sector
	// latency is derived as MaxConcurrent*SectorSize/Throughput.
	// Default 9.486e6.
	ThroughputBps float64
	// CacheHitRatio is the probability a read is served from cache
	// without consuming storage resources (default 1.0).
	CacheHitRatio float64
}

func (c *StorageConfig) fill() {
	if c.SectorSize == 0 {
		c.SectorSize = 4096
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.ThroughputBps == 0 {
		c.ThroughputBps = 9.486e6
	}
	if c.CacheHitRatio == 0 {
		c.CacheHitRatio = 1.0
	}
}

// Latency reports the derived per-sector service time.
func (c StorageConfig) Latency() sim.Time {
	c.fill()
	return sim.FromSeconds(float64(c.SectorSize) * float64(c.MaxConcurrent) / c.ThroughputBps)
}

// Storage is the simulated disk: a fixed number of service slots with a
// per-sector latency; excess requests queue. A cache hit ratio short-cuts
// reads.
type Storage struct {
	k   *sim.Kernel
	cfg StorageConfig
	rng *sim.RNG

	inFlight int
	queue    []func() // pending sector operations' start functions
	maxQueue int

	busyNS  int64 // integrated slot-busy time
	bytes   metrics.ByteMeter
	sectors int64
}

// NewStorage builds the device.
func NewStorage(k *sim.Kernel, cfg StorageConfig, rng *sim.RNG) *Storage {
	cfg.fill()
	return &Storage{k: k, cfg: cfg, rng: rng}
}

// Read serves a single-item fetch: with probability CacheHitRatio it
// completes immediately (cache hit, reported by the return value true);
// otherwise one sector read is issued and done fires on completion.
func (s *Storage) Read(done func()) bool {
	if s.rng.Bool(s.cfg.CacheHitRatio) {
		return true
	}
	s.request(1, done)
	return false
}

// Write issues the synchronous write of n bytes (rounded up to whole
// sectors); done fires when the last sector completes.
func (s *Storage) Write(n int, done func()) {
	sectors := (n + s.cfg.SectorSize - 1) / s.cfg.SectorSize
	if sectors == 0 {
		sectors = 1
	}
	s.WriteSectors(sectors, done)
}

// WriteSectors issues n whole-sector synchronous writes. Transaction
// write-back uses one sector per written row: updated tuples live on
// distinct pages, so the ext3 synchronous 4 KB writes the paper measures
// with IOzone hit one page each.
func (s *Storage) WriteSectors(n int, done func()) {
	if n < 1 {
		n = 1
	}
	s.bytes.Add(n * s.cfg.SectorSize)
	s.request(n, done)
}

// request issues n sector operations and calls done when all finish.
func (s *Storage) request(n int, done func()) {
	remaining := n
	complete := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	for i := 0; i < n; i++ {
		s.enqueue(complete)
	}
}

func (s *Storage) enqueue(complete func()) {
	start := func() {
		s.inFlight++
		s.sectors++
		s.busyNS += int64(s.cfg.Latency())
		s.k.Schedule(s.cfg.Latency(), func() {
			s.inFlight--
			complete()
			s.dispatch()
		})
	}
	if s.inFlight < s.cfg.MaxConcurrent {
		start()
	} else {
		s.queue = append(s.queue, start)
		if len(s.queue) > s.maxQueue {
			s.maxQueue = len(s.queue)
		}
	}
}

func (s *Storage) dispatch() {
	for s.inFlight < s.cfg.MaxConcurrent && len(s.queue) > 0 {
		start := s.queue[0]
		s.queue = s.queue[1:]
		start()
	}
}

// QueueLen reports currently queued sector operations.
func (s *Storage) QueueLen() int { return len(s.queue) }

// MaxQueueLen reports the high-water queue length.
func (s *Storage) MaxQueueLen() int { return s.maxQueue }

// Sectors reports total sector operations served.
func (s *Storage) Sectors() int64 { return s.sectors }

// BytesWritten reports total bytes written.
func (s *Storage) BytesWritten() int64 { return s.bytes.Bytes() }

// Utilization reports the fraction of device capacity used over elapsed
// time, as a percentage — the paper's Figure 6(b) "disk bandwidth usage".
func (s *Storage) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(s.busyNS) / (float64(elapsed) * float64(s.cfg.MaxConcurrent))
}
