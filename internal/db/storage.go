// Package db implements the simulated database server of Section 3.1: a
// scheduler over a collection of resources (CPUs, storage) plus a
// concurrency control policy modeled on PostgreSQL's multi-version locking.
// Transactions are sequences of fetch/process/write operations whose costs
// come from profiling a real database engine (see internal/tpcc for the
// calibration data).
package db

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// StorageConfig describes the disk subsystem. The paper's test system is a
// RAID-5 fibre-channel box sustaining 9.486 MB/s of synchronous 4 KB writes
// (measured with IOzone), with a cache hit ratio above 98% configured as
// 100%.
type StorageConfig struct {
	// SectorSize is the unit of transfer (default 4096).
	SectorSize int
	// MaxConcurrent is the number of in-flight requests the device
	// sustains (default 8).
	MaxConcurrent int
	// ThroughputBps is the sustained bandwidth in bytes/s; the per-sector
	// latency is derived as MaxConcurrent*SectorSize/Throughput.
	// Default 9.486e6.
	ThroughputBps float64
	// CacheHitRatio is the probability a read is served from cache
	// without consuming storage resources (default 1.0).
	CacheHitRatio float64
}

func (c *StorageConfig) fill() {
	if c.SectorSize == 0 {
		c.SectorSize = 4096
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.ThroughputBps == 0 {
		c.ThroughputBps = 9.486e6
	}
	if c.CacheHitRatio == 0 {
		c.CacheHitRatio = 1.0
	}
}

// Latency reports the derived per-sector service time.
func (c StorageConfig) Latency() sim.Time {
	c.fill()
	return sim.FromSeconds(float64(c.SectorSize) * float64(c.MaxConcurrent) / c.ThroughputBps)
}

// Storage is the simulated disk: a fixed number of service slots with a
// per-sector latency; excess requests queue. A cache hit ratio short-cuts
// reads.
//
// Sector operations and their owning requests are pooled, and each pooled
// operation carries a completion closure bound once at creation — so the
// steady-state hot path allocates nothing per sector.
type Storage struct {
	k   *sim.Kernel
	cfg StorageConfig
	rng *sim.RNG
	lat sim.Time // cached per-sector latency

	inFlight int
	queue    []*sectorOp // sector operations awaiting a free slot
	qhead    int         // consumed prefix of queue (popped lazily, O(1))
	maxQueue int

	freeOps  []*sectorOp
	freeReqs []*ioReq

	busyNS  int64 // integrated slot-busy time
	bytes   metrics.ByteMeter
	sectors int64
}

// ioReq tracks one multi-sector request until its last sector completes.
type ioReq struct {
	remaining int
	done      func()
}

// sectorOp is one sector's occupancy of a device slot. fire is the
// completion event callback, bound once when the op is first allocated and
// reused across recycles.
type sectorOp struct {
	s    *Storage
	req  *ioReq
	fire func()
}

// NewStorage builds the device.
func NewStorage(k *sim.Kernel, cfg StorageConfig, rng *sim.RNG) *Storage {
	cfg.fill()
	return &Storage{k: k, cfg: cfg, rng: rng, lat: cfg.Latency()}
}

// Read serves a single-item fetch: with probability CacheHitRatio it
// completes immediately (cache hit, reported by the return value true);
// otherwise one sector read is issued and done fires on completion.
func (s *Storage) Read(done func()) bool {
	if s.rng.Bool(s.cfg.CacheHitRatio) {
		return true
	}
	s.request(1, done)
	return false
}

// Write issues the synchronous write of n bytes (rounded up to whole
// sectors); done fires when the last sector completes.
func (s *Storage) Write(n int, done func()) {
	sectors := (n + s.cfg.SectorSize - 1) / s.cfg.SectorSize
	if sectors == 0 {
		sectors = 1
	}
	s.WriteSectors(sectors, done)
}

// ReadSectors issues n whole-sector reads that bypass the cache model —
// used for bulk operations like exporting a recovery snapshot, where the
// pages are certainly not all cached; done fires when the last one completes.
func (s *Storage) ReadSectors(n int, done func()) {
	if n < 1 {
		n = 1
	}
	s.request(n, done)
}

// WriteSectors issues n whole-sector synchronous writes. Transaction
// write-back uses one sector per written row: updated tuples live on
// distinct pages, so the ext3 synchronous 4 KB writes the paper measures
// with IOzone hit one page each.
func (s *Storage) WriteSectors(n int, done func()) {
	if n < 1 {
		n = 1
	}
	s.bytes.Add(n * s.cfg.SectorSize)
	s.request(n, done)
}

// request issues n sector operations and calls done when all finish.
func (s *Storage) request(n int, done func()) {
	var req *ioReq
	if ln := len(s.freeReqs); ln > 0 {
		req = s.freeReqs[ln-1]
		s.freeReqs[ln-1] = nil
		s.freeReqs = s.freeReqs[:ln-1]
	} else {
		req = &ioReq{}
	}
	req.remaining = n
	req.done = done
	for i := 0; i < n; i++ {
		var op *sectorOp
		if ln := len(s.freeOps); ln > 0 {
			op = s.freeOps[ln-1]
			s.freeOps[ln-1] = nil
			s.freeOps = s.freeOps[:ln-1]
		} else {
			op = &sectorOp{s: s}
			op.fire = op.complete
		}
		op.req = req
		if s.inFlight < s.cfg.MaxConcurrent {
			op.start()
		} else {
			s.queue = append(s.queue, op)
			if q := len(s.queue) - s.qhead; q > s.maxQueue {
				s.maxQueue = q
			}
		}
	}
}

// start occupies a device slot for one sector service time.
func (op *sectorOp) start() {
	s := op.s
	s.inFlight++
	s.sectors++
	s.busyNS += int64(s.lat)
	s.k.Schedule(s.lat, op.fire)
}

// complete finishes one sector: the owning request resolves when its last
// sector lands, and the op (and, then, the request) return to the pool.
func (op *sectorOp) complete() {
	s := op.s
	req := op.req
	op.req = nil
	s.freeOps = append(s.freeOps, op)
	s.inFlight--
	req.remaining--
	if req.remaining == 0 {
		done := req.done
		req.done = nil
		s.freeReqs = append(s.freeReqs, req)
		if done != nil {
			done()
		}
	}
	s.dispatch()
}

// dispatch starts queued sectors while slots are free. The queue pops via a
// head cursor — O(1) per op — and the backing array resets for reuse
// whenever the queue fully drains.
func (s *Storage) dispatch() {
	for s.inFlight < s.cfg.MaxConcurrent && s.qhead < len(s.queue) {
		op := s.queue[s.qhead]
		s.queue[s.qhead] = nil
		s.qhead++
		op.start()
	}
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
}

// SetSlowdown scales the per-sector service time by factor (gray-failure
// degradation: the device still works, just slower). factor <= 1 restores
// the configured latency.
func (s *Storage) SetSlowdown(factor float64) {
	lat := s.cfg.Latency()
	if factor > 1 {
		lat = sim.Time(float64(lat) * factor)
	}
	s.lat = lat
}

// QueueLen reports currently queued sector operations.
func (s *Storage) QueueLen() int { return len(s.queue) - s.qhead }

// MaxQueueLen reports the high-water queue length.
func (s *Storage) MaxQueueLen() int { return s.maxQueue }

// Sectors reports total sector operations served.
func (s *Storage) Sectors() int64 { return s.sectors }

// BytesWritten reports total bytes written.
func (s *Storage) BytesWritten() int64 { return s.bytes.Bytes() }

// Utilization reports the fraction of device capacity used over elapsed
// time, as a percentage — the paper's Figure 6(b) "disk bandwidth usage".
func (s *Storage) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(s.busyNS) / (float64(elapsed) * float64(s.cfg.MaxConcurrent))
}
