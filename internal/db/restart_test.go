package db

import (
	"testing"

	"repro/internal/csrt"
	"repro/internal/dbsm"
	"repro/internal/sim"
)

func restartServer(t *testing.T) (*sim.Kernel, *Server) {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	storage := NewStorage(k, StorageConfig{}, rng.Fork("disk"))
	return k, NewServer(k, 1, csrt.NewCPUSet(1, k, nil), storage)
}

func restartTxn(tid uint64, done func(*Txn, Outcome)) *Txn {
	return &Txn{
		TID:      tid,
		Class:    "t",
		WriteSet: dbsm.NewItemSet(dbsm.MakeTupleID(0, tid)),
		Ops:      []Op{{Kind: OpProcess, CPU: 10 * sim.Millisecond}},
		Done:     done,
	}
}

// TestRestartAbortsInFlight: transactions in flight at crash time resolve
// with AbortCrash at restart, waking their blocked clients exactly once.
func TestRestartAbortsInFlight(t *testing.T) {
	k, s := restartServer(t)
	outcomes := map[uint64]Outcome{}
	for tid := uint64(1); tid <= 3; tid++ {
		tx := restartTxn(tid, func(tx *Txn, o Outcome) { outcomes[tx.TID] = o })
		s.Submit(tx)
	}
	k.Schedule(2*sim.Millisecond, func() { s.Crash() })
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 0 {
		t.Fatalf("outcomes before restart: %v", outcomes)
	}
	s.Restart()
	if err := k.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("woke %d clients, want 3", len(outcomes))
	}
	for tid, o := range outcomes {
		if o != AbortCrash {
			t.Fatalf("txn %d outcome %v, want abort-crash", tid, o)
		}
	}
	if got := s.Class("t").AbortCrash; got != 3 {
		t.Fatalf("AbortCrash counter %d, want 3", got)
	}
	if s.Locks().HeldLocks() != 0 {
		t.Fatalf("restarted server still holds %d locks", s.Locks().HeldLocks())
	}
}

// TestRestartWakesBlockedSubmits: a submission swallowed while the site was
// down is woken at restart without polluting the class statistics (it never
// executed).
func TestRestartWakesBlockedSubmits(t *testing.T) {
	k, s := restartServer(t)
	s.Crash()
	var woken Outcome
	s.Submit(restartTxn(9, func(tx *Txn, o Outcome) { woken = o }))
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if woken != 0 {
		t.Fatal("client woken while the site was still down")
	}
	s.Restart()
	if woken != AbortCrash {
		t.Fatalf("blocked submit outcome %v, want abort-crash", woken)
	}
	cs := s.Class("t")
	if cs.Submitted != 0 || cs.AbortCrash != 0 {
		t.Fatalf("swallowed submit leaked into stats: %+v", cs)
	}
}

// TestRestartFencesStaleRemoteApply: a remote-apply disk completion issued
// by the dead incarnation must not touch the rebuilt lock table after the
// restart (epoch fence).
func TestRestartFencesStaleRemoteApply(t *testing.T) {
	k, s := restartServer(t)
	c := &dbsm.TxnCert{TID: 77, Site: 2, WriteSet: dbsm.NewItemSet(dbsm.MakeTupleID(0, 5))}
	s.ApplyRemote(c, 1)
	// Crash and restart while the write-back is still queued on the disk.
	s.Crash()
	s.Restart()
	if err := k.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if s.RemoteApplied() != 0 {
		t.Fatal("stale remote apply completed across the restart")
	}
	if s.Locks().HeldLocks() != 0 {
		t.Fatalf("stale apply left %d locks", s.Locks().HeldLocks())
	}
	// A fresh install on the new incarnation still works.
	s.ApplyRemote(c, 2)
	if err := k.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if s.RemoteApplied() != 1 {
		t.Fatalf("post-restart remote apply did not complete: %d", s.RemoteApplied())
	}
}

// TestRestoreApplied seeds the snapshot horizon.
func TestRestoreApplied(t *testing.T) {
	_, s := restartServer(t)
	s.Crash()
	s.Restart()
	s.RestoreApplied(41)
	if s.LastApplied() != 41 {
		t.Fatalf("LastApplied %d, want 41", s.LastApplied())
	}
}
