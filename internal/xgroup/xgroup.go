// Package xgroup holds the deterministic building blocks of partial
// replication: warehouse→group placement, certification-message splitting
// into per-group parts, and the wire formats of the cross-group commit round
// (prepare / vote / decide / ack). The protocol itself — reservations,
// retransmissions, coordinator handover — lives in internal/replica; this
// package is pure functions so every site computes identical placements,
// splits, and encodings.
//
// Group topology: with G groups of S sites each, sites are numbered 1..G·S
// and group g (1-based) owns the contiguous range [(g-1)·S+1 .. g·S].
// Warehouse w (0-based) belongs to group w%G+1, striping the TPC-C load
// evenly, and its home site rotates within the group as (w/G)%S.
package xgroup

import (
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/dbsm"
	"repro/internal/runtimeapi"
)

// GroupOfSite reports the 1-based group owning a 1-based site id.
func GroupOfSite(site, sitesPerGroup int) int {
	return (site-1)/sitesPerGroup + 1
}

// GroupSites reports the inclusive site-id range [lo, hi] of a group.
func GroupSites(group, sitesPerGroup int) (lo, hi int) {
	lo = (group-1)*sitesPerGroup + 1
	return lo, lo + sitesPerGroup - 1
}

// WarehouseGroup reports the 1-based group owning a 0-based warehouse.
func WarehouseGroup(wh, groups int) int { return wh%groups + 1 }

// HomeSite reports the 1-based global site id hosting a warehouse's clients:
// the warehouse's group, with the site within the group rotating so every
// site carries an equal warehouse share.
func HomeSite(wh, groups, sitesPerGroup int) int {
	g := WarehouseGroup(wh, groups)
	return (g-1)*sitesPerGroup + (wh/groups)%sitesPerGroup + 1
}

// Part is one group's share of a split certification message.
type Part struct {
	Group int
	Cert  dbsm.TxnCert
}

// Split partitions a certification message by group: each tuple goes to the
// part of classify(tuple), with 0 — unpartitioned catalog data, replicated
// in every group — folded into the home part. TID, Site, and LastCommitted
// are copied into every part (LastCommitted is only meaningful to the home
// group's certifier; remote votes skip the staleness test). WriteBytes is
// distributed proportionally to each part's write count, remainder to the
// home part. Parts are returned sorted by group with freshly built item
// sets (sortedness carries over from t's, so the dbsm invariants hold).
func Split(t *dbsm.TxnCert, classify func(dbsm.TupleID) int, home int) []Part {
	parts := make([]Part, 0, 2)
	get := func(g int) *Part {
		if g == 0 {
			g = home
		}
		for i := range parts {
			if parts[i].Group == g {
				return &parts[i]
			}
		}
		parts = append(parts, Part{Group: g, Cert: dbsm.TxnCert{
			TID:           t.TID,
			Site:          t.Site,
			LastCommitted: t.LastCommitted,
		}})
		return &parts[len(parts)-1]
	}
	// The home part exists even when the transaction touches no home tuple:
	// the home group's ordered stream still carries the prepare and decide,
	// and the client's outcome resolves there.
	get(home)
	for _, r := range t.ReadSet {
		p := get(classify(r))
		p.Cert.ReadSet = append(p.Cert.ReadSet, r)
	}
	for _, w := range t.WriteSet {
		p := get(classify(w))
		p.Cert.WriteSet = append(p.Cert.WriteSet, w)
	}
	if nw := len(t.WriteSet); nw > 0 {
		assigned := 0
		for i := range parts {
			wb := t.WriteBytes * len(parts[i].Cert.WriteSet) / nw
			parts[i].Cert.WriteBytes = wb
			assigned += wb
		}
		parts[0].Cert.WriteBytes += t.WriteBytes - assigned
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Group < parts[j].Group })
	return parts
}

// Message discriminators: the first byte of every group-mode ordered-stream
// payload and of every relay payload.
const (
	MsgTxn      byte = iota + 1 // stream: single-group TxnCert bytes follow
	MsgPrepare                  // stream + relay: cross-group prepare
	MsgVote                     // relay: a participant's group vote
	MsgDecide                   // stream + relay: the coordinator's decision
	MsgAck                      // relay: a remote member acks the decision
	MsgPrepFrag                 // relay: one fragment of an oversized prepare
)

// Prepare is the first round of the cross-group commit: the full split of a
// multi-group transaction, multicast on the home group's ordered stream and
// relayed (restricted to the receiving group's part) to remote groups.
type Prepare struct {
	TID         uint64
	Coordinator runtimeapi.NodeID
	HomeGroup   int
	Parts       []Part
}

// errBadXMsg reports a malformed cross-group wire message.
var errBadXMsg = errors.New("xgroup: malformed cross-group message")

const prepareHeader = 8 + 4 + 1 + 1
const partHeader = 1 + 4 + 4

// AppendPrepare encodes lead plus the prepare body onto buf. Each part's
// certification message embeds value padding sized by its WriteBytes, so the
// wire message costs what shipping the written values would; when maxSize is
// positive the padding — and only the padding — is trimmed (newest part
// first) toward fitting relayed datagrams under the MTU. Only padding can be
// shed: if the headers and item sets alone exceed maxSize the result still
// exceeds it, and the caller must split it with FragmentPrepare (the relay
// path in internal/replica does). The true WriteBytes travels alongside and
// is restored at parse.
func AppendPrepare(buf []byte, lead byte, p *Prepare, maxSize int) []byte {
	total := 1 + prepareHeader
	for i := range p.Parts {
		total += partHeader + p.Parts[i].Cert.MarshaledSize()
	}
	excess := 0
	if maxSize > 0 && total > maxSize {
		excess = total - maxSize
	}
	pads := make([]int, len(p.Parts))
	for i := range p.Parts {
		pads[i] = p.Parts[i].Cert.WriteBytes
	}
	for i := len(pads) - 1; i >= 0 && excess > 0; i-- {
		cut := min(excess, pads[i])
		pads[i] -= cut
		excess -= cut
	}
	buf = append(buf, lead)
	buf = binary.BigEndian.AppendUint64(buf, p.TID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Coordinator))
	buf = append(buf, byte(p.HomeGroup), byte(len(p.Parts)))
	var scratch []byte
	for i := range p.Parts {
		pt := &p.Parts[i]
		c := pt.Cert // value copy; the sets are shared, only WriteBytes differs
		c.WriteBytes = pads[i]
		scratch = c.MarshalTo(scratch)
		buf = append(buf, byte(pt.Group))
		buf = binary.BigEndian.AppendUint32(buf, uint32(pt.Cert.WriteBytes))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(scratch)))
		buf = append(buf, scratch...)
	}
	return buf
}

// ParsePrepare decodes a prepare body (the lead byte already consumed). The
// parts' item sets are copied out of b; b may be reused afterwards.
func ParsePrepare(b []byte) (*Prepare, error) {
	if len(b) < prepareHeader {
		return nil, errBadXMsg
	}
	p := &Prepare{
		TID:         binary.BigEndian.Uint64(b[0:8]),
		Coordinator: runtimeapi.NodeID(binary.BigEndian.Uint32(b[8:12])),
		HomeGroup:   int(b[12]),
	}
	n := int(b[13])
	o := prepareHeader
	p.Parts = make([]Part, 0, n)
	for i := 0; i < n; i++ {
		if len(b)-o < partHeader {
			return nil, errBadXMsg
		}
		g := int(b[o])
		wb := int(binary.BigEndian.Uint32(b[o+1 : o+5]))
		clen := int(binary.BigEndian.Uint32(b[o+5 : o+9]))
		o += partHeader
		if wb < 0 || clen < 0 || clen > len(b)-o {
			return nil, errBadXMsg
		}
		c, err := dbsm.Unmarshal(b[o : o+clen])
		if err != nil {
			return nil, err
		}
		c.WriteBytes = wb
		o += clen
		p.Parts = append(p.Parts, Part{Group: g, Cert: *c})
	}
	return p, nil
}

// fragHeader is a fragment frame's fixed prefix: lead byte, TID, total
// fragment count, fragment index.
const fragHeader = 1 + 8 + 1 + 1

// MaxPrepFrags bounds the fragment count of one prepare; at a 1400-byte MTU
// that is ~88 KiB of item sets, far past any transaction this model runs.
const MaxPrepFrags = 64

// FragmentPrepare splits an encoded prepare that still exceeds maxSize after
// padding trimming (item sets alone overflow the datagram) into MsgPrepFrag
// frames of at most maxSize bytes each. enc is the AppendPrepare output —
// lead byte plus body; the lead is dropped and the body chunked, so
// reassembling the chunks in index order restores a MsgPrepare-shaped
// payload. Returns nil when enc already fits, or when maxSize is too small
// (or the body too large) to fragment — callers then fall back to sending
// enc whole, the pre-fragmentation behaviour.
func FragmentPrepare(enc []byte, tid uint64, maxSize int) [][]byte {
	if len(enc) <= maxSize || len(enc) < 1 {
		return nil
	}
	body := enc[1:]
	chunk := maxSize - fragHeader
	if chunk <= 0 {
		return nil
	}
	total := (len(body) + chunk - 1) / chunk
	if total > MaxPrepFrags {
		return nil
	}
	frames := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		part := body[i*chunk : min((i+1)*chunk, len(body))]
		f := make([]byte, 0, fragHeader+len(part))
		f = append(f, MsgPrepFrag)
		f = binary.BigEndian.AppendUint64(f, tid)
		f = append(f, byte(total), byte(i))
		frames = append(frames, append(f, part...))
	}
	return frames
}

// ParsePrepFrag decodes a fragment body (the lead byte already consumed).
// The chunk aliases b.
func ParsePrepFrag(b []byte) (tid uint64, total, index int, chunk []byte, err error) {
	if len(b) < fragHeader-1 {
		return 0, 0, 0, nil, errBadXMsg
	}
	tid = binary.BigEndian.Uint64(b[0:8])
	total, index = int(b[8]), int(b[9])
	if total < 1 || total > MaxPrepFrags || index >= total {
		return 0, 0, 0, nil, errBadXMsg
	}
	return tid, total, index, b[10:], nil
}

// PartFor returns the part addressed to a group, or nil.
func (p *Prepare) PartFor(group int) *Part {
	for i := range p.Parts {
		if p.Parts[i].Group == group {
			return &p.Parts[i]
		}
	}
	return nil
}

// Restrict returns a copy of the prepare containing only the parts a remote
// group needs: its own part. The home part and other groups' parts stay on
// the home stream.
func (p *Prepare) Restrict(group int) Prepare {
	r := *p
	if pt := p.PartFor(group); pt != nil {
		r.Parts = []Part{*pt}
	} else {
		r.Parts = nil
	}
	return r
}

// AppendVote encodes lead plus a vote body: the voting group and its verdict.
func AppendVote(buf []byte, lead byte, tid uint64, group int, commit bool) []byte {
	buf = append(buf, lead)
	buf = binary.BigEndian.AppendUint64(buf, tid)
	return append(buf, byte(group), boolByte(commit))
}

// ParseVote decodes a vote body.
func ParseVote(b []byte) (tid uint64, group int, commit bool, err error) {
	if len(b) < 10 {
		return 0, 0, false, errBadXMsg
	}
	return binary.BigEndian.Uint64(b[0:8]), int(b[8]), b[9] != 0, nil
}

// AppendDecision encodes lead plus a decision body.
func AppendDecision(buf []byte, lead byte, tid uint64, commit bool) []byte {
	buf = append(buf, lead)
	buf = binary.BigEndian.AppendUint64(buf, tid)
	return append(buf, boolByte(commit))
}

// ParseDecision decodes a decision body.
func ParseDecision(b []byte) (tid uint64, commit bool, err error) {
	if len(b) < 9 {
		return 0, false, errBadXMsg
	}
	return binary.BigEndian.Uint64(b[0:8]), b[8] != 0, nil
}

// AppendAck encodes lead plus an ack body: the acknowledging group.
func AppendAck(buf []byte, lead byte, tid uint64, group int) []byte {
	buf = append(buf, lead)
	buf = binary.BigEndian.AppendUint64(buf, tid)
	return append(buf, byte(group))
}

// ParseAck decodes an ack body.
func ParseAck(b []byte) (tid uint64, group int, err error) {
	if len(b) < 9 {
		return 0, 0, errBadXMsg
	}
	return binary.BigEndian.Uint64(b[0:8]), int(b[8]), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
