package xgroup

import (
	"bytes"
	"testing"

	"repro/internal/dbsm"
)

// bigPrepare builds a prepare whose item sets alone (they cannot be padded
// away, unlike WriteBytes) push the encoding past small MTUs.
func bigPrepare(items int) *Prepare {
	rs := make([]dbsm.TupleID, items)
	for i := range rs {
		rs[i] = dbsm.MakeTupleID(uint16(1+i%7), uint64(i))
	}
	cert := dbsm.TxnCert{
		TID: 77, Site: 1, LastCommitted: 9,
		ReadSet:    dbsm.NewItemSet(rs...),
		WriteSet:   dbsm.NewItemSet(rs[:items/2]...),
		WriteBytes: 4096,
	}
	return &Prepare{
		TID:         77,
		Coordinator: 1,
		HomeGroup:   1,
		Parts:       []Part{{Group: 1, Cert: cert}, {Group: 2, Cert: cert}},
	}
}

// TestFragmentPrepareBoundary is the regression test for the oversize
// prepare hole: AppendPrepare can only shrink value padding, so a prepare
// whose item sets alone exceed the MTU used to leave the relay path with an
// unsendable frame. Fragmentation must kick in exactly past the MTU, emit
// frames that each fit, and reassemble byte-exactly.
func TestFragmentPrepareBoundary(t *testing.T) {
	p := bigPrepare(200)
	enc := AppendPrepare(nil, MsgPrepare, p, 0) // unpadded true size
	if len(enc) < 1000 {
		t.Fatalf("test prepare too small to exercise fragmentation: %d bytes", len(enc))
	}

	// At the boundary: a frame that exactly fits must not fragment.
	if frames := FragmentPrepare(enc, p.TID, len(enc)); frames != nil {
		t.Fatalf("fragmented an exactly-fitting frame into %d parts", len(frames))
	}
	// One byte past it must.
	maxSize := len(enc) - 1
	frames := FragmentPrepare(enc, p.TID, maxSize)
	if frames == nil {
		t.Fatal("no fragmentation one byte past the MTU")
	}

	for _, maxSize := range []int{maxSize, 1400, 600} {
		frames := FragmentPrepare(enc, p.TID, maxSize)
		if frames == nil {
			t.Fatalf("maxSize %d: no frames for a %d-byte prepare", maxSize, len(enc))
		}
		var whole []byte
		whole = append(whole, MsgPrepare)
		for i, f := range frames {
			if len(f) > maxSize {
				t.Fatalf("maxSize %d: frame %d is %d bytes", maxSize, i, len(f))
			}
			if f[0] != MsgPrepFrag {
				t.Fatalf("maxSize %d: frame %d lead byte %d", maxSize, i, f[0])
			}
			tid, total, index, chunk, err := ParsePrepFrag(f[1:])
			if err != nil {
				t.Fatalf("maxSize %d: frame %d: %v", maxSize, i, err)
			}
			if tid != p.TID || total != len(frames) || index != i {
				t.Fatalf("maxSize %d: frame %d header tid=%d total=%d index=%d", maxSize, i, tid, total, index)
			}
			whole = append(whole, chunk...)
		}
		if !bytes.Equal(whole, enc) {
			t.Fatalf("maxSize %d: reassembly differs: %d vs %d bytes", maxSize, len(whole), len(enc))
		}
		// The reassembled frame must parse back to the original prepare.
		got, err := ParsePrepare(whole[1:])
		if err != nil {
			t.Fatalf("maxSize %d: reassembled prepare: %v", maxSize, err)
		}
		if got.TID != p.TID || len(got.Parts) != len(p.Parts) {
			t.Fatalf("maxSize %d: reassembled prepare drifted: %+v", maxSize, got)
		}
	}
}

// TestFragmentPrepareLimits pins the refusal cases: frames too large for the
// fragment budget (MaxPrepFrags) return nil rather than emitting a frame the
// network would drop, and hostile fragment headers are rejected.
func TestFragmentPrepareLimits(t *testing.T) {
	p := bigPrepare(2000)
	enc := AppendPrepare(nil, MsgPrepare, p, 0)
	// A max size so small the prepare needs more than MaxPrepFrags chunks.
	tiny := fragHeader + (len(enc)-1)/(MaxPrepFrags+1)
	if frames := FragmentPrepare(enc, p.TID, tiny); frames != nil {
		t.Fatalf("got %d frames, want nil past the %d-fragment budget", len(frames), MaxPrepFrags)
	}

	if _, _, _, _, err := ParsePrepFrag(nil); err == nil {
		t.Fatal("ParsePrepFrag(nil) accepted")
	}
	if _, _, _, _, err := ParsePrepFrag(make([]byte, fragHeader-2)); err == nil {
		t.Fatal("truncated fragment header accepted")
	}
	bad := FragmentPrepare(enc, p.TID, 1400)[0][1:]
	bad[9] = bad[8] // index == total
	if _, _, _, _, err := ParsePrepFrag(bad); err == nil {
		t.Fatal("fragment with index >= total accepted")
	}
}
