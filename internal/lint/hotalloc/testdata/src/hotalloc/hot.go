// Package hotalloc exercises the //hot:path allocation rules.
package hotalloc

import "errors"

var errTruncated = errors.New("truncated")

type ring struct {
	buf   []byte
	items []int
	cb    func()
}

func sink(v any)                      {}
func logf(fmtStr string, args ...any) { _ = fmtStr; _ = args }

// Not annotated: allocations are fine here.
func coldConstructor() *ring {
	return &ring{buf: make([]byte, 64)}
}

// marshalInto is the steady-state encode step.
//
//hot:path
func (r *ring) marshalInto(v byte) {
	r.buf = append(r.buf, v) // self-append is the sanctioned idiom
	r.buf = append(r.buf[:0], v)
}

// push exercises each forbidden construct.
//
//hot:path
func (r *ring) push(n int, s string) {
	r.cb = func() { r.items = nil } // want `closure in hot path escapes to the heap`
	b := make([]byte, n)            // want `make allocates in hot path`
	p := new(ring)                  // want `new allocates in hot path`
	q := &ring{}                    // want `heap composite literal in hot path`
	xs := []int{n}                  // want `slice literal allocates in hot path`
	m := map[int]int{}              // want `map literal allocates in hot path`
	other := append(r.items, n)     // want `append outside the self-append idiom`
	t := s + "!"                    // want `string concatenation allocates in hot path`
	u := string(r.buf)              // want `\[\]byte to string conversion copies in hot path`
	w := []byte(s)                  // want `string to \[\]byte conversion copies in hot path`
	sink(n)                         // want `argument boxes int into interface any in hot path`
	logf("at %d", n)                // want `argument boxes int into interface any in hot path`
	_, _, _, _, _, _, _, _, _ = b, p, q, xs, m, other, t, u, w
}

// decode's error branches are cold and may allocate.
//
//hot:path
func (r *ring) decode(b []byte) (int, error) {
	if len(b) < 4 {
		head := string(b)
		_ = head
		return 0, errTruncated
	}
	if b[0] == 0xff {
		bad := make([]byte, 8)
		_ = bad
		panic("poisoned frame")
	}
	return int(b[0]), nil
}

// run invokes its closure immediately, which stays on the stack.
//
//hot:path
func (r *ring) run() {
	func() { r.items = r.items[:0] }()
}

// waived allocation with a reason.
//
//hot:path
func (r *ring) grow() {
	//lint:hotalloc-ok amortised heap growth on pool miss
	r.buf = append(make([]byte, 0, 2*cap(r.buf)), r.buf...)
}
