// Package hotalloc keeps allocation out of the simulator's hot paths.
//
// Functions whose doc comment carries a //hot:path marker are the
// per-event and per-packet code the benchmarks measure; a stray closure
// or boxing conversion there turns into millions of heap objects per
// campaign. Inside a marked function the analyzer reports:
//
//   - closures that are not immediately invoked (they escape),
//   - make/new and heap composite literals (&T{...}, slice and map
//     literals),
//   - append that is not the amortised self-append idiom
//     x = append(x, ...) / x = append(x[:k], ...),
//   - string concatenation and string<->[]byte conversions,
//   - interface boxing at call sites (a concrete value passed to an
//     interface parameter, e.g. fmt.Sprintf("%d", n)).
//
// Error and panic branches are cold by definition and are skipped: a
// block whose final statement panics or returns a non-nil error may
// allocate freely.
//
// Waive a line with //lint:hotalloc-ok <reason>.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
	"repro/internal/lint/directive"
)

const name = "hotalloc"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid allocation-introducing constructs in //hot:path functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		sup := directive.ForRule(pass.Fset, file, name)
		for _, pos := range sup.Bare() {
			pass.Reportf(pos, "//lint:%s-ok directive requires a reason", name)
		}
		report := func(pos token.Pos, format string, args ...any) {
			if !sup.Suppressed(pos) {
				pass.Reportf(pos, format, args...)
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.IsHot(fd) {
				continue
			}
			checkHot(pass, report, fd)
		}
	}
	return nil
}

func checkHot(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	info := pass.TypesInfo
	sanctionedAppend := map[*ast.CallExpr]bool{}
	invokedLit := map[*ast.FuncLit]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if isColdBlock(info, n) {
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && astq.IsBuiltin(info, call, "append") && isSelfAppend(n.Lhs[len(n.Lhs)-1], call) {
					sanctionedAppend[call] = true
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				invokedLit[lit] = true
			}
			checkCall(info, report, n, sanctionedAppend)
		case *ast.FuncLit:
			if !invokedLit[n] {
				report(n.Pos(), "closure in hot path escapes to the heap")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "heap composite literal in hot path; take the value from a pool or free list")
					return false
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates in hot path")
			case *types.Map:
				report(n.Pos(), "map literal allocates in hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstExpr(info, n) {
				report(n.Pos(), "string concatenation allocates in hot path")
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, string conversions, and interface
// boxing at ordinary call sites.
func checkCall(info *types.Info, report func(token.Pos, string, ...any), call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool) {
	switch {
	case astq.IsBuiltin(info, call, "make"):
		report(call.Pos(), "make allocates in hot path; reuse a pooled buffer")
		return
	case astq.IsBuiltin(info, call, "new"):
		report(call.Pos(), "new allocates in hot path; reuse a pooled value")
		return
	case astq.IsBuiltin(info, call, "append"):
		if !sanctioned[call] {
			report(call.Pos(), "append outside the self-append idiom may allocate in hot path")
		}
		return
	}
	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src != nil {
			if isString(dst) && isByteSlice(src.Underlying()) {
				report(call.Pos(), "[]byte to string conversion copies in hot path")
				return
			}
			if isByteSlice(dst) && isString(src.Underlying()) && !isConstExpr(info, call.Args[0]) {
				report(call.Pos(), "string to []byte conversion copies in hot path")
				return
			}
		}
		return
	}
	// Interface boxing: a concrete argument passed to an interface
	// parameter forces a heap allocation for most values.
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // slice passed through
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		report(arg.Pos(), "argument boxes %s into interface %s in hot path", at, pt)
	}
}

// isColdBlock reports whether the block ends by panicking or by returning
// a non-nil error, i.e. it is an error path the allocation budget does
// not cover.
func isColdBlock(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		return ok && astq.CalleeName(call) == "panic"
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			t := info.TypeOf(res)
			if t == nil || !astq.IsErrorType(t) {
				continue
			}
			if tv, ok := info.Types[res]; ok && tv.IsNil() {
				continue
			}
			return true
		}
	}
	return false
}

// isSelfAppend reports whether dst and the append's first argument share
// the same root object: x = append(x, ...) or x = append(x[:k], ...).
func isSelfAppend(dst ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	src := ast.Unparen(call.Args[0])
	if sl, ok := src.(*ast.SliceExpr); ok {
		src = sl.X
	}
	d, s := astq.RootIdent(dst), astq.RootIdent(src)
	return d != nil && s != nil && d.Name == s.Name && exprPath(dst) == exprPath(src)
}

// exprPath renders a selector chain like "k.events" for comparison.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.SliceExpr:
		return exprPath(e.X)
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isString(t.Underlying())
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
