package hotalloc_test

import (
	"testing"

	"repro/internal/lint/hotalloc"
	"repro/internal/lint/linttest"
)

func TestHotPathAllocations(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotalloc")
}
