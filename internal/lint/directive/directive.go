// Package directive parses the comment directives understood by the
// invariant linter suite:
//
//	//lint:<rule>-ok <reason>   suppress the named rule on this line or the next
//	//hot:path                  mark a function as allocation-free hot path
//
// A suppression must carry a non-empty reason; the analyzers report bare
// directives as violations in their own right, so every waiver is
// self-documenting.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressions maps source lines to the reasons attached to one rule's
// //lint:<rule>-ok directives in one file.
type Suppressions struct {
	fset *token.FileSet
	// reason is keyed by the line the directive appears on. The empty
	// string marks a directive with a missing reason.
	reason map[int]string
	// bare holds positions of reason-less directives, to be reported.
	bare []token.Pos
}

// ForRule collects the suppressions for rule in file.
func ForRule(fset *token.FileSet, file *ast.File, rule string) *Suppressions {
	s := &Suppressions{fset: fset, reason: make(map[int]string)}
	prefix := "//lint:" + rule + "-ok"
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := c.Text[len(prefix):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:foo-okay — different token
			}
			line := fset.Position(c.Pos()).Line
			reason := strings.TrimSpace(rest)
			s.reason[line] = reason
			if reason == "" {
				s.bare = append(s.bare, c.Pos())
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is waived: a directive
// sits on the same line (trailing comment) or on the line immediately
// above (its own line).
func (s *Suppressions) Suppressed(pos token.Pos) bool {
	line := s.fset.Position(pos).Line
	if _, ok := s.reason[line]; ok {
		return true
	}
	_, ok := s.reason[line-1]
	return ok
}

// Bare returns the positions of directives missing a reason. Analyzers
// report these so a waiver can never be anonymous.
func (s *Suppressions) Bare() []token.Pos { return s.bare }

// hotMarker is the hot-path function annotation.
const hotMarker = "//hot:path"

// IsHot reports whether fn carries a //hot:path marker in its doc comment.
func IsHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotMarker || strings.HasPrefix(c.Text, hotMarker+" ") {
			return true
		}
	}
	return false
}
