// Package astq holds the small AST/type query helpers shared by the
// invariant analyzers.
package astq

import (
	"go/ast"
	"go/types"
)

// Callee resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions, and calls of function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleeName reports the bare name of the called function or method, or ""
// when the callee is not a named function (e.g. a func value or builtin).
// Unlike Callee it also covers calls that fail to resolve to a *types.Func.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// IsBuiltin reports whether the call invokes the named Go builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// RootIdent walks to the base identifier of a chain of selector, index,
// slice, star, and paren expressions: the x in x.f[i].g. It returns nil
// when the base is not a plain identifier (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Obj resolves an identifier to its object via Uses or Defs.
func Obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// RecvPkgName reports the base name of the package that declares the
// called method's receiver type (or the method itself for package
// functions); "" when unresolvable.
func RecvPkgName(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// Terminates reports whether the statement unconditionally leaves the
// enclosing block: return, branch (break/continue/goto), or a call to
// panic or os.Exit.
func Terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch name := CalleeName(call); name {
			case "panic", "Exit", "Fatal", "Fatalf":
				return true
			}
		}
	}
	return false
}
