package bufown_test

import (
	"testing"

	"repro/internal/lint/bufown"
	"repro/internal/lint/linttest"
)

func TestCallerOwnership(t *testing.T) {
	linttest.Run(t, bufown.Analyzer, "bufown")
}

func TestPacketRefcount(t *testing.T) {
	linttest.Run(t, bufown.Analyzer, "simnet")
}
