// Package bufown exercises the caller-side ownership rules.
package bufown

import "simnet"

func sendOnce(n *simnet.Network, dst simnet.NodeID) {
	buf := make([]byte, 0, 64)
	buf = append(buf, 1, 2, 3)
	n.Send(0, dst, buf, 0)
}

func writeAfterSend(n *simnet.Network, dst simnet.NodeID) {
	buf := make([]byte, 8)
	n.Send(0, dst, buf, 0)
	buf[0] = 1 // want `write into buffer "buf" after ownership passed`
}

func appendAfterSend(n *simnet.Network, dst simnet.NodeID) []byte {
	buf := make([]byte, 0, 8)
	n.Send(0, dst, buf, 0)
	return append(buf, 9) // want `append may write buffer "buf" after ownership passed`
}

func resliceAfterSend(n *simnet.Network, g simnet.Group) {
	buf := make([]byte, 16)
	n.Multicast(0, g, buf, 0)
	buf = buf[:0] // want `buffer "buf" resliced for reuse after ownership passed`
	_ = buf
}

func copyAfterSend(n *simnet.Network, dst simnet.NodeID, src []byte) {
	buf := make([]byte, 16)
	n.Send(0, dst, buf, 0)
	copy(buf, src) // want `copy may write buffer "buf" after ownership passed`
}

func resendElsewhere(n *simnet.Network, a, b simnet.NodeID) {
	buf := []byte{1}
	n.Send(0, a, buf, 0)
	n.Send(0, b, buf, 0) // want `buffer re-sent after ownership already passed`
}

func fanoutLoop(n *simnet.Network, dsts []simnet.NodeID) {
	buf := []byte{1}
	for _, d := range dsts {
		n.Send(0, d, buf, 0) // one call site fanning out: fine
	}
}

func freshAfterSend(n *simnet.Network, dst simnet.NodeID) {
	buf := make([]byte, 8)
	n.Send(0, dst, buf, 0)
	buf = make([]byte, 8) // fresh buffer: taint ends
	buf[0] = 1
	n.Send(0, dst, buf, 0)
}

func waived(n *simnet.Network, dst simnet.NodeID) {
	buf := make([]byte, 8)
	n.Send(0, dst, buf, 0)
	//lint:bufown-ok single-host loopback test helper, nothing retains the bytes
	buf[0] = 1
}
