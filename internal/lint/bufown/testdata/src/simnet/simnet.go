// Package simnet is a miniature of the real network substrate, enough to
// exercise the ownership and refcount rules.
package simnet

type NodeID int
type Group int

type Packet struct {
	Data []byte
	refs int32
}

type Network struct {
	free []*Packet
}

func (n *Network) Send(src, dst NodeID, data []byte, delay int64) error { return nil }
func (n *Network) Multicast(src NodeID, g Group, data []byte, delay int64) error {
	return nil
}

func (n *Network) scheduleArrival(at int64, pkt *Packet) {}

func (n *Network) release(pkt *Packet) {
	pkt.refs-- // decrement inside release: fine
	if pkt.refs <= 0 {
		*pkt = Packet{}
		n.free = append(n.free, pkt)
	}
}

func (n *Network) fanout(members []NodeID, pkt *Packet) {
	for range members {
		pkt.refs++ // followed by a hand-off below: fine
		n.scheduleArrival(0, pkt)
	}
	n.release(pkt)
}

func (n *Network) leakRef(pkt *Packet) {
	pkt.refs++ // want `refs raised without a subsequent hand-off`
}

func (n *Network) stealRef(pkt *Packet) {
	pkt.refs-- // want `refs decremented outside the pool's release method`
}
