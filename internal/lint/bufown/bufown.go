// Package bufown enforces the zero-copy wire-buffer ownership contract:
// a []byte handed to the network via Send or Multicast (simnet.Network,
// runtimeapi.Runtime) is owned by the network from that point on — every
// receiver of a multicast and the sender's retransmission buffer may alias
// the very same backing array. Reads are part of the contract (the
// reliable layer re-reads retained chunks for retransmission); what the
// contract forbids is mutation, so the analyzer flags, after the hand-off
// in the same function:
//
//   - writes into the buffer (buf[i] = x, copy(buf, ...)),
//   - growth that may write the shared backing array (append(buf, ...)),
//   - reslicing the buffer back into a scratch role (buf = buf[:0]),
//   - handing the same buffer to the network again from a second call
//     site (a loop fanning one buffer out through one call site is fine
//     — nobody mutated it in between).
//
// Reassigning the variable to a fresh buffer ends the taint.
//
// The analyzer also guards the pooled Packet refcount protocol inside
// simnet: Packet.refs may only be decremented by the pool's release
// method, and raising a reference must be followed by handing the packet
// off, or the count can never drain back to the pool.
//
// Waive a line with //lint:bufown-ok <reason>.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
	"repro/internal/lint/directive"
)

const name = "bufown"

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "enforce zero-copy buffer ownership across Send/Multicast and the pooled Packet refcount protocol",
	Run:  run,
}

// netPkgs are the packages whose Send/Multicast take buffer ownership.
var netPkgs = map[string]bool{"simnet": true, "runtimeapi": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		sup := directive.ForRule(pass.Fset, file, name)
		for _, pos := range sup.Bare() {
			pass.Reportf(pos, "//lint:%s-ok directive requires a reason", name)
		}
		report := func(pos token.Pos, format string, args ...any) {
			if !sup.Suppressed(pos) {
				pass.Reportf(pos, format, args...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, report, fd)
			return true
		})
	}
	return nil
}

// send is one hand-off of a buffer variable to the network.
type send struct {
	pos  token.Pos
	call *ast.CallExpr
}

func checkFunc(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: collect hand-offs and fresh reassignments per buffer object.
	sends := make(map[types.Object][]send)
	clears := make(map[types.Object][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := sentBuffer(info, n); obj != nil {
				sends[obj] = append(sends[obj], send{pos: n.Pos(), call: n})
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := astq.Obj(info, id)
				if obj == nil || !isByteSlice(obj.Type()) {
					continue
				}
				if i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs) && !mentions(info, n.Rhs[i], obj) {
					clears[obj] = append(clears[obj], n.Pos())
				}
			}
		}
		return true
	})

	// tainted reports whether obj was handed off before pos with no fresh
	// reassignment in between, returning the hand-off.
	tainted := func(obj types.Object, pos token.Pos) (send, bool) {
		for _, s := range sends[obj] {
			if s.pos >= pos {
				continue
			}
			cleared := false
			for _, c := range clears[obj] {
				if c > s.pos && c < pos {
					cleared = true
					break
				}
			}
			if !cleared {
				return s, true
			}
		}
		return send{}, false
	}

	// Pass 2: find mutations and re-sends of tainted buffers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok {
					obj := astq.Obj(info, id)
					if obj == nil || !isByteSlice(obj.Type()) {
						continue
					}
					if i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs) && mentions(info, n.Rhs[i], obj) {
						if _, bad := tainted(obj, n.Pos()); bad {
							report(n.Pos(), "buffer %q resliced for reuse after ownership passed to the network", id.Name)
						}
					}
					continue
				}
				// Writes through the buffer: buf[i] = x.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if root := astq.RootIdent(ix.X); root != nil {
						obj := astq.Obj(info, root)
						if obj != nil && isByteSlice(obj.Type()) {
							if _, bad := tainted(obj, n.Pos()); bad {
								report(n.Pos(), "write into buffer %q after ownership passed to the network", root.Name)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if astq.IsBuiltin(info, n, "append") || astq.IsBuiltin(info, n, "copy") {
				if len(n.Args) == 0 {
					return true
				}
				if root := astq.RootIdent(n.Args[0]); root != nil {
					obj := astq.Obj(info, root)
					if obj != nil && isByteSlice(obj.Type()) {
						if _, bad := tainted(obj, n.Pos()); bad {
							report(n.Pos(), "%s may write buffer %q after ownership passed to the network", astq.CalleeName(n), root.Name)
						}
					}
				}
				return true
			}
			if obj := sentBuffer(info, n); obj != nil {
				if s, bad := tainted(obj, n.Pos()); bad && s.call != n {
					report(n.Pos(), "buffer re-sent after ownership already passed to the network at an earlier call")
				}
			}
		}
		return true
	})

	checkPacketRefs(pass, report, fd)
}

// sentBuffer reports the local buffer object a network hand-off consumes,
// or nil when the call is not a Send/Multicast taking ownership.
func sentBuffer(info *types.Info, call *ast.CallExpr) types.Object {
	fn := astq.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || !netPkgs[fn.Pkg().Name()] {
		return nil
	}
	if fn.Name() != "Send" && fn.Name() != "Multicast" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !isByteSlice(sig.Params().At(i).Type()) {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := astq.Obj(info, id); obj != nil && isByteSlice(obj.Type()) {
				return obj
			}
		}
		return nil
	}
	return nil
}

// checkPacketRefs guards the pooled Packet refcount protocol.
func checkPacketRefs(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	info := pass.TypesInfo
	type bump struct {
		pos token.Pos
		obj types.Object
		id  string
	}
	var bumps []bump
	flagDec := func(pos token.Pos) {
		if fd.Name.Name != "release" {
			report(pos, "Packet.refs decremented outside the pool's release method: the struct can never return to the pool")
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			sel, base := packetRefsField(info, n.X)
			if sel == nil {
				return true
			}
			if n.Tok == token.DEC {
				flagDec(n.Pos())
			} else if base != nil {
				bumps = append(bumps, bump{pos: n.Pos(), obj: base, id: selString(sel)})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, base := packetRefsField(info, lhs)
				if sel == nil {
					continue
				}
				switch n.Tok {
				case token.SUB_ASSIGN:
					flagDec(n.Pos())
				case token.ADD_ASSIGN:
					if base != nil {
						bumps = append(bumps, bump{pos: n.Pos(), obj: base, id: selString(sel)})
					}
				}
			}
		}
		return true
	})
	for _, b := range bumps {
		handed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() <= b.pos {
				return true
			}
			for _, arg := range call.Args {
				if root := astq.RootIdent(arg); root != nil && astq.Obj(info, root) == b.obj {
					handed = true
					return false
				}
			}
			return true
		})
		if !handed {
			report(b.pos, "%s raised without a subsequent hand-off of the packet: the reference can never drain", b.id)
		}
	}
}

// packetRefsField matches a selector expression p.refs on a simnet Packet,
// returning the selector and the root object holding the packet.
func packetRefsField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, types.Object) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "refs" {
		return nil, nil
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Packet" {
		return nil, nil
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Name() != "simnet" {
		return nil, nil
	}
	var base types.Object
	if root := astq.RootIdent(sel.X); root != nil {
		base = astq.Obj(info, root)
	}
	return sel, base
}

func selString(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + ".refs"
	}
	return "Packet.refs"
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// mentions reports whether expr references obj.
func mentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && astq.Obj(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
