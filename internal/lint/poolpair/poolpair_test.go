package poolpair_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/poolpair"
)

func TestGetPutPairing(t *testing.T) {
	linttest.Run(t, poolpair.Analyzer, "poolpair")
}

func TestFreeListHygiene(t *testing.T) {
	linttest.Run(t, poolpair.Analyzer, "freelist")
}
