// Package poolpair enforces pooled-object lifecycles. The repository
// recycles hot-path objects through two idioms, and both have a hygiene
// contract the type system cannot see:
//
// Named get/put pairs — sync.Pool Get/Put, the reliable layer's
// newMsg/recycleMsg (pooled dataMsg structs), and simnet's
// newPacket/release (refcounted packets). A value obtained from the pool
// must, on every path out of the function, either be handed back with the
// matching put, be handed off to another function (scheduling it, storing
// it into a receive buffer — the owner recycles later), or be returned to
// the caller. A return path that does none of these strands the object:
// the pool drains and the "pooled" allocation quietly becomes a real one.
//
// Free-list slices — fields named free* popped with the
// x.free = x.free[:n-1] idiom. Two rules: the popped slot must be cleared
// (x.free[n-1] = nil) before the shrink when the element type holds
// pointers, or the truncated tail pins the object for the garbage
// collector; and a package that pops from a free list must somewhere push
// back onto it (an append to the same field), or recycling was dropped in
// a refactor and the list only drains.
//
// Storing a pooled value into a package-level variable is flagged
// unconditionally: the pool's lifetime discipline cannot follow a global.
//
// Waive a line with //lint:poolpair-ok <reason>.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
	"repro/internal/lint/directive"
)

const name = "poolpair"

// Analyzer is the poolpair pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "enforce pooled-object get/put pairing and free-list hygiene",
	Run:  run,
}

// pairs maps a pool-get method name to its matching put method names. An
// empty put list means only hand-off or return discharges the obligation.
var pairs = map[string][]string{
	"Get":       {"Put"},
	"newMsg":    {"recycleMsg"},
	"newPacket": {"release"},
	"newJob":    {},
}

func run(pass *analysis.Pass) error {
	popped := make(map[types.Object][]token.Pos) // free-list field -> pop sites
	pushed := make(map[types.Object]bool)        // free-list field -> refilled
	reports := make(map[token.Pos]func(token.Pos, string, ...any))

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		sup := directive.ForRule(pass.Fset, file, name)
		for _, pos := range sup.Bare() {
			pass.Reportf(pos, "//lint:%s-ok directive requires a reason", name)
		}
		report := func(pos token.Pos, format string, args ...any) {
			if !sup.Suppressed(pos) {
				pass.Reportf(pos, format, args...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkGets(pass, report, fd)
			checkFreeLists(pass, report, fd, popped, pushed, reports)
			return true
		})
	}

	// Package-wide: every drained free list must be refilled somewhere.
	for field, sites := range popped {
		if pushed[field] {
			continue
		}
		for _, pos := range sites {
			reports[pos](pos, "free list %s is popped but never refilled in this package: recycling was dropped", field.Name())
		}
	}
	return nil
}

// getCall matches v := p.GET() (optionally through a type assertion) and
// returns the pooled object and the pool receiver expression.
func getCall(info *types.Info, st ast.Stmt) (obj types.Object, getName string, pos token.Pos) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, "", token.NoPos
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, "", token.NoPos
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, "", token.NoPos
	}
	fn := astq.Callee(info, call)
	if fn == nil {
		return nil, "", token.NoPos
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", token.NoPos
	}
	if _, isPair := pairs[fn.Name()]; !isPair {
		return nil, "", token.NoPos
	}
	if fn.Name() == "Get" && !isSyncPool(sig.Recv().Type()) {
		return nil, "", token.NoPos
	}
	return astq.Obj(info, id), fn.Name(), as.Pos()
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// checkGets applies the get/put pairing rule to one function.
func checkGets(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	info := pass.TypesInfo
	parents := buildParents(fd.Body)

	var gets []struct {
		obj  types.Object
		name string
		pos  token.Pos
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if obj, gname, pos := getCall(info, st); obj != nil {
			gets = append(gets, struct {
				obj  types.Object
				name string
				pos  token.Pos
			}{obj, gname, pos})
		}
		return true
	})

	for _, g := range gets {
		puts := pairs[g.name]

		// A deferred put or hand-off discharges every path at once.
		deferred := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok && resolves(info, d.Call, g.obj, puts) {
				deferred = true
			}
			return true
		})
		if deferred {
			continue
		}

		// Stores into package-level state are flagged outright.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) != len(as.Lhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); !ok || astq.Obj(info, id) != g.obj {
					continue
				}
				if root := astq.RootIdent(as.Lhs[i]); root != nil {
					if o := astq.Obj(info, root); o != nil && isPackageLevel(o) {
						report(as.Pos(), "pooled value from %s stored into package-level %q: the pool cannot reclaim it", g.name, root.Name)
					}
				}
			}
			return true
		})

		// Every return path after the get must be discharged.
		var returns []*ast.ReturnStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > g.pos {
				returns = append(returns, r)
			}
			return true
		})
		for _, r := range returns {
			if returnDischarges(info, r, g.obj) {
				continue
			}
			if !pathHasResolution(info, parents, fd.Body, r, g.pos, g.obj, puts) {
				report(r.Pos(), "return without releasing pooled value from %s (no %s, hand-off, or return of it on this path)",
					g.name, putLabel(puts))
			}
		}
		// Fall-through off the end of the function body.
		if len(fd.Body.List) > 0 && !astq.Terminates(fd.Body.List[len(fd.Body.List)-1]) {
			if !anyResolutionAfter(info, fd.Body, g.pos, g.obj, puts) {
				report(fd.Body.Rbrace, "function ends without releasing pooled value from %s", g.name)
			}
		}
	}
}

func putLabel(puts []string) string {
	if len(puts) == 0 {
		return "recycle"
	}
	return strings.Join(puts, "/")
}

// resolves reports whether the call discharges the pooled obj: a matching
// put with obj as argument, or any call taking obj (hand-off).
func resolves(info *types.Info, call *ast.CallExpr, obj types.Object, puts []string) bool {
	for _, arg := range call.Args {
		if root := astq.RootIdent(arg); root != nil && astq.Obj(info, root) == obj {
			return true
		}
	}
	return false
}

// nodeResolves searches a subtree for any discharge of obj: a call passing
// it, a store of it through a selector/index (hand-off to a live
// structure), or a return of it.
func nodeResolves(info *types.Info, n ast.Node, obj types.Object, puts []string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if resolves(info, n, obj, puts) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && astq.Obj(info, id) == obj {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			if returnDischarges(info, n, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func returnDischarges(info *types.Info, r *ast.ReturnStmt, obj types.Object) bool {
	for _, res := range r.Results {
		ok := false
		ast.Inspect(res, func(n ast.Node) bool {
			if id, okk := n.(*ast.Ident); okk && astq.Obj(info, id) == obj {
				ok = true
				return false
			}
			return true
		})
		if ok {
			return true
		}
	}
	return false
}

// pathHasResolution walks the dominator chain of stmt — the statements
// that textually precede it in its own block and in every enclosing block
// up to the function body — looking for a discharge of obj after the get.
func pathHasResolution(info *types.Info, parents map[ast.Node]ast.Node, body *ast.BlockStmt, stmt ast.Stmt, getPos token.Pos, obj types.Object, puts []string) bool {
	var cur ast.Node = stmt
	for cur != nil && cur != body {
		parent := parents[cur]
		if list := stmtList(parent); list != nil {
			for _, s := range list {
				if s == cur {
					break
				}
				if s.End() <= getPos {
					continue
				}
				if nodeResolves(info, s, obj, puts) {
					return true
				}
			}
		}
		cur = parent
	}
	return false
}

// anyResolutionAfter searches the whole body for a discharge after pos.
func anyResolutionAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object, puts []string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if st, ok := n.(ast.Stmt); ok && st.Pos() > pos && nodeResolves(info, st, obj, puts) {
			found = true
			return false
		}
		return true
	})
	return found
}

// stmtList returns the child statement list of a block-bearing node.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// buildParents maps every node to its parent within the subtree.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isPackageLevel(o types.Object) bool {
	return o.Parent() == o.Pkg().Scope()
}

// checkFreeLists applies the free-list pop hygiene rules to one function
// and records pop/push sites for the package-wide refill rule.
func checkFreeLists(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl,
	popped map[types.Object][]token.Pos, pushed map[types.Object]bool,
	reports map[token.Pos]func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			field := freeListField(info, as.Lhs[0])
			if field == nil {
				continue
			}
			// Push: x.free = append(x.free, v)
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && astq.IsBuiltin(info, call, "append") {
				if len(call.Args) >= 2 && sameField(info, call.Args[0], field) {
					pushed[field] = true
				}
				continue
			}
			// Pop: x.free = x.free[:n-1]
			sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
			if !ok || !sameField(info, sl.X, field) {
				continue
			}
			popped[field] = append(popped[field], as.Pos())
			reports[as.Pos()] = report
			if !elemHoldsPointers(field.Type()) {
				continue
			}
			// The popped slot must have been cleared just before.
			cleared := false
			for j := 0; j < i; j++ {
				prev, ok := block.List[j].(*ast.AssignStmt)
				if !ok || len(prev.Lhs) != 1 || len(prev.Rhs) != 1 {
					continue
				}
				ix, ok := ast.Unparen(prev.Lhs[0]).(*ast.IndexExpr)
				if !ok || !sameField(info, ix.X, field) {
					continue
				}
				if id, ok := ast.Unparen(prev.Rhs[0]).(*ast.Ident); ok && id.Name == "nil" {
					cleared = true
				}
			}
			if !cleared {
				report(as.Pos(), "free-list pop without clearing the vacated slot (%s[n-1] = nil): the truncated tail pins the object", field.Name())
			}
		}
		return true
	})
}

// freeListField matches a selector x.freeY of slice type and returns the
// field object.
func freeListField(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	lower := strings.ToLower(sel.Sel.Name)
	if !strings.HasPrefix(lower, "free") {
		return nil
	}
	obj := astq.Obj(info, sel.Sel)
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok || !obj.(*types.Var).IsField() {
		return nil
	}
	return obj
}

// sameField reports whether e is a selector resolving to field.
func sameField(info *types.Info, e ast.Expr, field types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && astq.Obj(info, sel.Sel) == field
}

// elemHoldsPointers reports whether the slice element type can pin memory.
func elemHoldsPointers(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	switch e := s.Elem().Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < e.NumFields(); i++ {
			if elemHolds(e.Field(i).Type()) {
				return true
			}
		}
	case *types.Basic:
		return e.Kind() == types.String
	}
	return false
}

func elemHolds(t types.Type) bool {
	switch e := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < e.NumFields(); i++ {
			if elemHolds(e.Field(i).Type()) {
				return true
			}
		}
	case *types.Basic:
		return e.Kind() == types.String
	}
	return false
}
