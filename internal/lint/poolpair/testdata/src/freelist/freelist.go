// Package freelist exercises the free-list pop/push hygiene rules.
package freelist

type job struct{ fn func() }

type sched struct {
	freeJobs  []*job  // popped with clear, pushed back: clean
	freeDirty []*job  // popped without clearing the slot
	freeDrain []*job  // popped but never refilled
	freeIDs   []int32 // value elements need no clearing
}

func (s *sched) take() *job {
	if n := len(s.freeJobs); n > 0 {
		j := s.freeJobs[n-1]
		s.freeJobs[n-1] = nil
		s.freeJobs = s.freeJobs[:n-1]
		return j
	}
	return &job{}
}

func (s *sched) give(j *job) {
	s.freeJobs = append(s.freeJobs, j)
}

func (s *sched) takeDirty() *job {
	if n := len(s.freeDirty); n > 0 {
		j := s.freeDirty[n-1]
		s.freeDirty = s.freeDirty[:n-1] // want `free-list pop without clearing the vacated slot`
		return j
	}
	return &job{}
}

func (s *sched) giveDirty(j *job) {
	s.freeDirty = append(s.freeDirty, j)
}

func (s *sched) takeDrain() *job {
	if n := len(s.freeDrain); n > 0 {
		j := s.freeDrain[n-1]
		s.freeDrain[n-1] = nil
		s.freeDrain = s.freeDrain[:n-1] // want `free list freeDrain is popped but never refilled`
		return j
	}
	return &job{}
}

func (s *sched) takeID() int32 {
	if n := len(s.freeIDs); n > 0 {
		id := s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
		return id
	}
	return 0
}

func (s *sched) giveID(id int32) {
	s.freeIDs = append(s.freeIDs, id)
}
