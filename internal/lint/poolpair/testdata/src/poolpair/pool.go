// Package poolpair exercises get/put pairing and free-list hygiene.
package poolpair

import "sync"

type msg struct{ data []byte }

type msgPool struct {
	free []*msg
}

func (p *msgPool) newMsg() *msg      { return &msg{} }
func (p *msgPool) recycleMsg(m *msg) {}

type sink struct{ held *msg }

func (s *sink) consume(m *msg) {}

var global *msg

// Balanced: the error path recycles, the success path hands off.
func balanced(p *msgPool, s *sink, bad bool) {
	m := p.newMsg()
	if bad {
		p.recycleMsg(m)
		return
	}
	s.consume(m)
}

// The error path strands the message.
func leakyReturn(p *msgPool, s *sink, bad bool) {
	m := p.newMsg()
	if bad {
		return // want `return without releasing pooled value from newMsg`
	}
	s.consume(m)
}

// Falling off the end without any discharge.
func leakyEnd(p *msgPool) {
	m := p.newMsg()
	_ = m.data
} // want `function ends without releasing pooled value from newMsg`

// Returning the pooled value passes ownership to the caller.
func escapes(p *msgPool) *msg {
	m := p.newMsg()
	return m
}

// A deferred recycle discharges every path.
func deferred(p *msgPool, bad bool) {
	m := p.newMsg()
	defer p.recycleMsg(m)
	if bad {
		return
	}
	_ = m.data
}

// Storing into a package-level variable defeats the pool.
func globals(p *msgPool) {
	m := p.newMsg()
	global = m // want `pooled value from newMsg stored into package-level "global"`
}

// sync.Pool Get/Put through a type assertion.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func syncPoolLeak(bad bool) {
	b := bufPool.Get().(*[]byte)
	if bad {
		return // want `return without releasing pooled value from Get`
	}
	bufPool.Put(b)
}

// Get on a non-sync.Pool type is not a pool get.
type registry struct{}

func (r *registry) Get() *msg { return nil }

func notAPool(r *registry) {
	m := r.Get()
	_ = m
}

// Waived with a reason.
func waived(p *msgPool, bad bool) {
	m := p.newMsg()
	if bad {
		//lint:poolpair-ok shutdown path, the whole pool is dropped next
		return
	}
	p.recycleMsg(m)
}
