// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface used by this repository's
// invariant linters. The module is built offline (no external
// dependencies), so the framework is reimplemented here: an Analyzer is a
// named check, a Pass hands it one type-checked package, and diagnostics
// flow back through Pass.Report. Analyzers in this tree are package-local
// (no cross-package facts), which keeps the driver protocol trivial.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //lint:<name>-ok suppression directive.
	Name string
	// Doc is the analyzer's help text. The first line is a one-sentence
	// summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Validate checks the analyzer set for driver use: non-empty unique names.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %s has no Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// RunAll applies every analyzer to the package described by the template
// pass (Report in the template is ignored) and returns the diagnostics
// sorted by position. It is the single entry point shared by the test
// harness and both driver modes.
func RunAll(analyzers []*Analyzer, tmpl Pass) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := tmpl
		pass.Analyzer = a
		pass.Report = func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			diags = append(diags, d)
		}
		if err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// IsTestFile reports whether pos lies in a _test.go file. The invariant
// suite targets production code; test files may freely use wall clocks,
// goroutines, and unsorted iteration.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
