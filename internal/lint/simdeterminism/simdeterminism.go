// Package simdeterminism enforces the repository's reproducibility
// invariant: inside the deterministic simulation packages, every run of a
// seed must be byte-identical, so wall-clock time, the global math/rand
// source, real sleeping, raw goroutines, and order-sensitive iteration
// over maps are forbidden.
//
// The rule applies to the packages that execute under the simulation
// kernel: sim, simnet, gcs, dbsm, core, campaign, faults, csrt, db,
// replica, and xgroup. Code with a vetted reason opts out per line with
//
//	//lint:simdeterminism-ok <reason>
//
// Map iteration is flagged only when the loop body is order-sensitive.
// Order-independent bodies are allowed without a waiver:
//
//   - collecting keys/values into a slice with x = append(x, ...) (the
//     canonical collect-then-sort idiom),
//   - integer accumulation (n++, sum += v, bits |= v, and the other
//     commutative compound assignments),
//   - writes keyed by the loop key (dst[k] = ..., delete(m, k)),
//   - writes to variables declared inside the loop body.
//
// Everything else — channel sends, go/defer statements, event scheduling
// and network sends, float accumulation, plain assignment to outer state —
// depends on iteration order and is reported.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
	"repro/internal/lint/directive"
)

// Analyzer is the simdeterminism pass.
const name = "simdeterminism"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid wall-clock time, global rand, sleeps, raw goroutines, and order-sensitive map iteration in the deterministic simulation packages",
	Run:  run,
}

// deterministicPkgs are the packages executing under the simulation
// kernel, matched by the final element of the import path.
var deterministicPkgs = map[string]bool{
	"sim": true, "simnet": true, "gcs": true, "dbsm": true, "core": true,
	"campaign": true, "faults": true, "csrt": true, "db": true, "replica": true,
	"xgroup": true,
}

// bannedTime are time-package functions that read or wait on the wall
// clock. Duration arithmetic and formatting remain available.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "AfterFunc": true, "Since": true, "Until": true,
}

// randConstructors are math/rand functions that build an explicitly seeded
// generator; every other package-level rand function draws from the global
// source and is banned.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !deterministicPkgs[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		sup := directive.ForRule(pass.Fset, file, name)
		for _, pos := range sup.Bare() {
			pass.Reportf(pos, "//lint:%s-ok directive requires a reason", name)
		}
		report := func(pos token.Pos, format string, args ...any) {
			if !sup.Suppressed(pos) {
				pass.Reportf(pos, format, args...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "raw goroutine in deterministic package: schedule work on the simulation kernel instead")
			case *ast.CallExpr:
				checkCall(pass, report, n)
			case *ast.RangeStmt:
				checkMapRange(pass, report, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	fn := astq.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods on *rand.Rand or time.Timer
	// values are explicitly seeded/simulated and fine.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			report(call.Pos(), "time.%s in deterministic package: use the simulation clock (sim.Kernel)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			report(call.Pos(), "global math/rand source (rand.%s) in deterministic package: use a seeded *sim.RNG", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive statements inside a range over a map.
func checkMapRange(pass *analysis.Pass, report func(token.Pos, string, ...any), rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(pass.TypesInfo, rng.Key)
	local := localObjects(pass.TypesInfo, rng.Body)
	if keyObj != nil {
		local[keyObj] = true // the key itself is per-iteration
	}
	if vo := rangeVarObj(pass.TypesInfo, rng.Value); vo != nil {
		local[vo] = true
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				// Nested ranges are checked by their own visit.
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						return false
					}
				}
			}
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside range over map: iteration order is nondeterministic")
		case *ast.GoStmt, *ast.DeferStmt:
			report(n.Pos(), "deferred/spawned work inside range over map: iteration order is nondeterministic")
		case *ast.CallExpr:
			checkRangeCall(pass, report, n, keyObj)
		case *ast.IncDecStmt:
			checkRangeWrite(pass, report, n.X, token.INC, nil, local, keyObj, n.Pos())
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkRangeWrite(pass, report, lhs, n.Tok, rhs, local, keyObj, n.Pos())
			}
		}
		return true
	})
}

// schedulingCalls are method names that publish ordered work: scheduling
// an event or transmitting a message from inside a map range bakes the
// iteration order into the event stream.
var schedulingCalls = map[string]bool{
	"Schedule": true, "ScheduleAt": true, "SchedulePri": true, "SchedulePriAt": true,
	"StartJob": true, "Send": true, "Multicast": true,
}

func checkRangeCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr, keyObj types.Object) {
	if astq.IsBuiltin(pass.TypesInfo, call, "delete") {
		// delete(m, k) keyed by the loop key is order-independent.
		if len(call.Args) == 2 {
			if id, ok := call.Args[1].(*ast.Ident); ok && keyObj != nil && astq.Obj(pass.TypesInfo, id) == keyObj {
				return
			}
		}
		report(call.Pos(), "delete with a non-loop key inside range over map: iteration order is nondeterministic")
		return
	}
	name := astq.CalleeName(call)
	if schedulingCalls[name] && astq.Callee(pass.TypesInfo, call) != nil {
		if sig, ok := astq.Callee(pass.TypesInfo, call).Type().(*types.Signature); ok && sig.Recv() != nil {
			report(call.Pos(), "%s call inside range over map: events are published in nondeterministic iteration order", name)
		}
	}
}

// commutativeTok are compound assignments that are order-independent on
// integer operands.
var commutativeTok = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.MUL_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.INC: true, token.DEC: true,
}

func checkRangeWrite(pass *analysis.Pass, report func(token.Pos, string, ...any), lhs ast.Expr, tok token.Token, rhs ast.Expr, local map[types.Object]bool, keyObj types.Object, pos token.Pos) {
	if tok == token.DEFINE {
		return
	}
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := astq.Obj(pass.TypesInfo, id)
		if obj == nil || local[obj] {
			return
		}
		// x = append(x, ...): the collect-then-sort idiom.
		if tok == token.ASSIGN && isSelfAppend(pass.TypesInfo, id, rhs) {
			return
		}
		if commutativeTok[tok] && isIntegral(obj.Type()) {
			return
		}
		report(pos, "order-sensitive write to %q declared outside range over map: iteration order is nondeterministic", id.Name)
		return
	}
	// Writes through memory: x.f = v, s[i] = v, *p = v.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		// dst[k] = v keyed by the loop key hits distinct cells; order-free.
		if id, ok := ix.Index.(*ast.Ident); ok && keyObj != nil && astq.Obj(pass.TypesInfo, id) == keyObj {
			return
		}
	}
	if root := astq.RootIdent(lhs); root != nil {
		if obj := astq.Obj(pass.TypesInfo, root); obj != nil && local[obj] {
			return
		}
	}
	if commutativeTok[tok] && isIntegral(pass.TypesInfo.TypeOf(lhs)) {
		return
	}
	report(pos, "order-sensitive write through outer state inside range over map: iteration order is nondeterministic")
}

// isSelfAppend reports whether rhs is append(<same object>, ...).
func isSelfAppend(info *types.Info, lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !astq.IsBuiltin(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	root := astq.RootIdent(call.Args[0])
	return root != nil && astq.Obj(info, root) == astq.Obj(info, lhs)
}

func isIntegral(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rangeVarObj resolves a range variable expression to its object.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return astq.Obj(info, id)
}

// localObjects collects every object declared within the subtree.
func localObjects(info *types.Info, n ast.Node) map[types.Object]bool {
	local := make(map[types.Object]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}
