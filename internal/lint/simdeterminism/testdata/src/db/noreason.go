// Package db exercises the bare-directive rule: a suppression without a
// reason is itself a violation (reported at the directive, so the
// expectation lives on the preceding line via the suppressed statement).
package db

import "time"

func bare() {
	time.Sleep(1) //lint:simdeterminism-ok
}
