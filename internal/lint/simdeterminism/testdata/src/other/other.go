// Package other is outside the deterministic set: nothing is reported.
package other

import "time"

func wallclock(m map[int]int) int64 {
	var last int
	for _, v := range m {
		last = v
	}
	go func() {}()
	return time.Now().UnixNano() + int64(last)
}
