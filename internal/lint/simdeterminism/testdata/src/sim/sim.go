package sim

import (
	"math/rand"
	"time"
)

type kernel struct{ now int64 }

func (k *kernel) Schedule(d int64, fn func()) {}

func clocks() time.Duration {
	t := time.Now()              // want `time.Now in deterministic package`
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package`
	_ = time.Since(t)            // want `time.Since in deterministic package`
	d := 5 * time.Millisecond    // duration arithmetic is fine
	//lint:simdeterminism-ok startup banner timestamp never feeds the simulation
	_ = time.Now()
	return d
}

func randoms(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit seeding is fine
	n := r.Intn(10)                     // method on seeded generator is fine
	n += rand.Intn(10)                  // want `global math/rand source \(rand.Intn\)`
	rand.Shuffle(3, func(i, j int) {})  // want `global math/rand source \(rand.Shuffle\)`
	return n
}

func spawn() {
	go func() {}() // want `raw goroutine in deterministic package`
}

func mapRanges(k *kernel, m map[int]int, ch chan int) ([]int, int) {
	var keys []int
	sum := 0
	for key := range m {
		keys = append(keys, key) // collect idiom: fine
		sum += m[key]            // integer accumulation: fine
	}
	out := make(map[int]int, len(m))
	for key, v := range m {
		out[key] = v * 2 // keyed by loop key: fine
	}
	for key, v := range m {
		local := v * 2
		_ = local
		out[v] = key // want `order-sensitive write through outer state`
	}
	var last int
	for _, v := range m {
		last = v // want `order-sensitive write to "last"`
	}
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
	for key := range m {
		k.Schedule(int64(key), func() {}) // want `Schedule call inside range over map`
	}
	for key := range m {
		delete(m, key) // delete by loop key: fine
	}
	for key := range m {
		delete(out, key+1) // want `delete with a non-loop key`
	}
	var total float64
	for _, v := range m {
		total += float64(v) // want `order-sensitive write to "total"`
	}
	for _, v := range m { //lint:simdeterminism-ok single-element map by construction
		last = v
	}
	_ = total
	_ = last
	return keys, sum
}
