// Package xgroup mirrors the cross-group commit helpers: it carries
// per-round vote maps, so the order-sensitive map-iteration rules matter
// here — a decision assembled in iteration order would diverge between
// replays.
package xgroup

import "time"

type round struct {
	votes map[int]bool
}

// decide counts voters (integer accumulation, allowed) but folds the vote
// map and records the last vote by assignment — both leak iteration order,
// which is why the real decision code walks group ids in sorted order.
func (r *round) decide() (bool, int) {
	commit := true
	n := 0
	var last bool
	for _, v := range r.votes {
		commit = commit && v // want `order-sensitive write to "commit"`
		n++
		last = v // want `order-sensitive write to "last"`
	}
	_ = last
	return commit, n
}

func timestamps() time.Duration {
	t := time.Now() // want `time.Now in deterministic package`
	_ = t
	return 2 * time.Millisecond // duration arithmetic is fine
}

// voters collects then sorts: the canonical order-free idiom.
func (r *round) voters() []int {
	var ids []int
	for g := range r.votes {
		ids = append(ids, g) // collect idiom: fine
	}
	return ids
}
