package simdeterminism_test

import (
	"strings"
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/simdeterminism"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, simdeterminism.Analyzer, "sim")
}

func TestExemptPackage(t *testing.T) {
	linttest.Run(t, simdeterminism.Analyzer, "other")
}

func TestXGroupPackage(t *testing.T) {
	linttest.Run(t, simdeterminism.Analyzer, "xgroup")
}

func TestBareDirective(t *testing.T) {
	diags := linttest.Diagnostics(t, simdeterminism.Analyzer, "db")
	if len(diags) != 1 || !strings.Contains(diags[0], "requires a reason") {
		t.Fatalf("want exactly the bare-directive diagnostic, got %q", diags)
	}
}
