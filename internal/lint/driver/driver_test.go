package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/driver"
)

// seedModule writes a tiny module with two planted violations: a
// time.Sleep in a deterministic package (simdeterminism) and a parse
// error dropped without counting (statcount).
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seedmod\n\ngo 1.24\n")
	write("sim/sim.go", `package sim

import (
	"errors"
	"time"
)

var errShort = errors.New("short")

func parseFrame(b []byte) (int, error) {
	if len(b) < 2 {
		return 0, errShort
	}
	return int(b[0]), nil
}

func Tick() {
	time.Sleep(time.Millisecond)
}

func Recv(b []byte) {
	n, err := parseFrame(b)
	if err != nil {
		return
	}
	_ = n
}
`)
	return dir
}

func TestAnalyzeSeededModule(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	dir := seedModule(t)
	diags, err := driver.Analyze(dir, "./...")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d:\n%s", len(diags), joined)
	}
	if !strings.Contains(joined, "[simdeterminism]") || !strings.Contains(joined, "time.Sleep") {
		t.Errorf("missing simdeterminism finding:\n%s", joined)
	}
	if !strings.Contains(joined, "[statcount]") || !strings.Contains(joined, "parseFrame") {
		t.Errorf("missing statcount finding:\n%s", joined)
	}
}

func TestAnalyzeCleanTreeHelperPackage(t *testing.T) {
	// The analyzers' own package must be clean under the standalone
	// driver; this also exercises loading a package of the real module.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Analyze(wd, "repro/internal/lint/...")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(diags) != 0 {
		var got []string
		for _, d := range diags {
			got = append(got, d.String())
		}
		t.Fatalf("lint tree not clean:\n%s", strings.Join(got, "\n"))
	}
}

// TestVettoolSeededModule builds cmd/analyze and runs it the way CI
// does — `go vet -vettool=...` — against the seeded module, asserting
// the planted violations fail the build.
func TestVettoolSeededModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "analyze")
	build := exec.Command("go", "build", "-o", tool, "repro/cmd/analyze")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/analyze: %v\n%s", err, out)
	}

	dir := seedModule(t)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a module with planted violations:\n%s", out)
	}
	for _, want := range []string{"time.Sleep", "[simdeterminism]", "parseFrame", "[statcount]"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}
