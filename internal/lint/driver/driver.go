// Package driver loads Go packages and runs the repository's analyzers
// over them, without depending on golang.org/x/tools.
//
// Two loading modes share the analysis core:
//
//   - Standalone: Analyze shells out to `go list -export -json -deps`,
//     type-checks every non-dependency package from source against the
//     export data the go command produced, and runs every analyzer.
//     This is what `analyze ./...` does.
//
//   - Unitchecker: RunConfig consumes the JSON .cfg file that `go vet
//     -vettool` hands the tool for a single package, using the
//     ImportMap/PackageFile tables from the config instead of invoking
//     the go command. This is what makes `go vet -vettool=analyze`
//     work.
//
// Both modes resolve imports with the stdlib gc importer fed by a
// lookup over compiled export files, so no network or source checkout
// of dependencies is needed.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/bufown"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/poolpair"
	"repro/internal/lint/simdeterminism"
	"repro/internal/lint/statcount"
)

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufown.Analyzer,
		hotalloc.Analyzer,
		poolpair.Analyzer,
		simdeterminism.Analyzer,
		statcount.Analyzer,
	}
}

// Diagnostic is a finding tagged with its analyzer and rendered position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// Analyze loads the packages matching patterns (relative to dir) and
// runs the suite, returning diagnostics sorted by position.
func Analyze(dir string, patterns ...string) ([]Diagnostic, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	imp := newExportImporter(func(path string) string { return exports[path] })
	var diags []Diagnostic
	for _, p := range targets {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		ds, err := checkAndRun(imp, p.ImportPath, files, Analyzers())
		if err != nil {
			return diags, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		diags = append(diags, ds...)
	}
	sortDiags(diags)
	return diags, nil
}

// Config mirrors the JSON configuration cmd/go writes for vet tools.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunConfig executes the suite for one vet unit described by cfgFile.
// It always writes the VetxOutput facts file (empty; the suite exports
// no facts) so cmd/go's caching contract holds.
func RunConfig(cfgFile string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return nil, nil
	}
	imp := newExportImporter(func(path string) string {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		return cfg.PackageFile[path]
	})
	diags, err := checkAndRun(imp, cfg.ImportPath, cfg.GoFiles, Analyzers())
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return nil, nil
	}
	sortDiags(diags)
	return diags, err
}

// checkAndRun parses and type-checks one package, then runs the suite.
func checkAndRun(imp types.Importer, importPath string, files []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect everything; Check returns the first
	}
	pkg, typeErr := conf.Check(importPath, fset, parsed, info)
	if pkg == nil {
		return nil, typeErr
	}

	found, err := analysis.RunAll(analyzers, analysis.Pass{
		Fset:      fset,
		Files:     parsed,
		Pkg:       pkg,
		TypesInfo: info,
	})
	if err != nil {
		return nil, err
	}
	diags := make([]Diagnostic, len(found))
	for i, d := range found {
		diags[i] = Diagnostic{
			Analyzer: d.Category,
			Position: fset.Position(d.Pos),
			Message:  d.Message,
		}
	}
	return diags, typeErr
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Offset != b.Position.Offset {
			return a.Position.Offset < b.Position.Offset
		}
		return a.Analyzer < b.Analyzer
	})
}

// exportImporter resolves imports through compiled export data files,
// as produced by `go list -export` or recorded in a vet config.
type exportImporter struct {
	gc   types.ImporterFrom
	find func(path string) string
}

func newExportImporter(find func(path string) string) *exportImporter {
	ei := &exportImporter{find: find}
	fset := token.NewFileSet()
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := find(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return ei.gc.ImportFrom(path, dir, mode)
}
