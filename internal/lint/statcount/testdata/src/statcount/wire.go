// Package statcount exercises the silent-drop accounting rule.
package statcount

import (
	"errors"
	"sync/atomic"
)

var errTruncated = errors.New("truncated")

type stats struct {
	ParseErrors int
	dropped     int64
}

type endpoint struct {
	stats stats
	last  []byte
}

func parseHeader(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, errTruncated
	}
	return int(b[0]), nil
}

func (e *endpoint) Unmarshal(b []byte) error {
	if len(b) == 0 {
		return errTruncated
	}
	e.last = b
	return nil
}

// PeekTID mimics the tentative-stage probe.
func PeekTID(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, errTruncated
	}
	return uint64(b[0]), nil
}

// helper is not decode-shaped: name does not match.
func helper(b []byte) error {
	if len(b) == 0 {
		return errTruncated
	}
	return nil
}

// Counting the drop satisfies the rule.
func (e *endpoint) recvCounted(b []byte) {
	n, err := parseHeader(b)
	if err != nil {
		e.stats.ParseErrors++
		return
	}
	_ = n
}

// Propagating the error satisfies the rule.
func (e *endpoint) recvPropagate(b []byte) error {
	if err := e.Unmarshal(b); err != nil {
		return err
	}
	return nil
}

// Wrapped propagation still mentions err.
func (e *endpoint) recvWrapped(b []byte) error {
	_, err := PeekTID(b)
	if err != nil {
		return errors.Join(errTruncated, err)
	}
	return nil
}

// Atomic counters count too.
func (e *endpoint) recvAtomic(b []byte) {
	if err := e.Unmarshal(b); err != nil {
		atomic.AddInt64(&e.stats.dropped, 1)
		return
	}
}

// Compound-assign counters count too.
func (e *endpoint) recvCompound(b []byte) {
	if _, err := parseHeader(b); err != nil {
		e.stats.ParseErrors += 1
		return
	}
}

// A silent early return on the error path is the bug this rule exists for.
func (e *endpoint) recvSilent(b []byte) {
	n, err := parseHeader(b) // want `error path of parseHeader drops the message silently`
	if err != nil {
		return
	}
	_ = n
}

// Discarding the error into _ is just as silent.
func (e *endpoint) recvBlank(b []byte) {
	_, _ = parseHeader(b) // want `decode error of parseHeader discarded into _`
}

// Dropping the whole result list.
func (e *endpoint) recvDropped(b []byte) {
	e.Unmarshal(b) // want `decode result of Unmarshal discarded`
}

// Binding err but never looking at it.
func (e *endpoint) recvUnchecked(b []byte) int {
	n, err := parseHeader(b) // want `decode error of parseHeader is never checked`
	_ = err
	return n
}

// if err == nil with no else: the error evaporates.
func (e *endpoint) recvHappyOnly(b []byte) {
	n, err := parseHeader(b) // want `decode error of parseHeader has no error branch`
	if err == nil {
		_ = n
	}
}

// if err == nil with an else that counts is fine.
func (e *endpoint) recvInverted(b []byte) {
	n, err := parseHeader(b)
	if err == nil {
		_ = n
	} else {
		e.stats.ParseErrors++
	}
}

// panic on the error path is loud enough.
func (e *endpoint) recvPanic(b []byte) {
	if err := e.Unmarshal(b); err != nil {
		panic(err)
	}
}

// Non-decode callees are out of scope even when the error is dropped.
func (e *endpoint) recvHelper(b []byte) {
	_ = helper(b)
}

// Waived with a reason: the tentative stage already counted this drop.
func (e *endpoint) recvWaived(b []byte) {
	//lint:statcount-ok tentative stage already counted this drop
	_, err := PeekTID(b)
	if err != nil {
		return
	}
}
