// Package statcount enforces the silent-drop accounting rule: when a wire
// decode fails, somebody must either account for the drop or pass the
// error on — a malformed datagram that simply vanishes is indistinguishable
// from a lost one, and the campaign reports depend on the distinction
// (Stats.ParseErrors, Replica CertDrops).
//
// The analyzer inspects every call to a decode-shaped function — an
// unexported parse* helper or an exported Unmarshal*/Peek* function — that
// returns an error, and requires the caller's error path to do one of:
//
//   - propagate: return (or wrap and return) the error,
//   - account: increment a counter (s.stats.ParseErrors++, r.drops++,
//     x.n += 1, atomic.AddInt64),
//   - abort loudly: panic or log.Fatal.
//
// Discarding the error into _, dropping the whole result list, or an
// error branch that returns without any of the above is reported.
//
// Waive a line with //lint:statcount-ok <reason>.
package statcount

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
	"repro/internal/lint/directive"
)

const name = "statcount"

// Analyzer is the statcount pass.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "require error paths of wire Unmarshal/parse calls to count the drop or propagate the error",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		sup := directive.ForRule(pass.Fset, file, name)
		for _, pos := range sup.Bare() {
			pass.Reportf(pos, "//lint:%s-ok directive requires a reason", name)
		}
		report := func(pos token.Pos, format string, args ...any) {
			if !sup.Suppressed(pos) {
				pass.Reportf(pos, format, args...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, report, fd)
			return true
		})
	}
	return nil
}

// isDecodeCall reports whether the call is decode-shaped with an error as
// its final result.
func isDecodeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := astq.Callee(info, call)
	if fn == nil {
		return false
	}
	n := fn.Name()
	if !strings.HasPrefix(n, "parse") && !strings.HasPrefix(n, "Unmarshal") && !strings.HasPrefix(n, "Peek") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return astq.IsErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

func checkFunc(pass *analysis.Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Walk statements block by block so the guard following a call is
	// visible.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		list := stmtList(n)
		if list == nil {
			return true
		}
		for i, st := range list {
			switch st := st.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && isDecodeCall(info, call) {
					report(call.Pos(), "decode result of %s discarded: count the drop or handle the error", astq.CalleeName(call))
				}
			case *ast.AssignStmt:
				checkAssign(info, report, fd, st, list, i)
			case *ast.IfStmt:
				// if err := parse(b); err != nil { ... }
				if init, ok := st.Init.(*ast.AssignStmt); ok {
					checkAssignInIf(info, report, fd, init, st)
				}
			}
		}
		return true
	})
}

// errObjOfAssign returns the error object a decode call's result is bound
// to, or a marker that it was blanked.
func errObjOfAssign(info *types.Info, as *ast.AssignStmt) (types.Object, *ast.CallExpr, bool) {
	if len(as.Rhs) != 1 {
		return nil, nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isDecodeCall(info, call) {
		return nil, nil, false
	}
	last := as.Lhs[len(as.Lhs)-1]
	id, ok := last.(*ast.Ident)
	if !ok {
		return nil, call, false
	}
	if id.Name == "_" {
		return nil, call, true // blanked
	}
	return astq.Obj(info, id), call, false
}

func checkAssign(info *types.Info, report func(token.Pos, string, ...any), fd *ast.FuncDecl, as *ast.AssignStmt, list []ast.Stmt, idx int) {
	errObj, call, blanked := errObjOfAssign(info, as)
	if call == nil {
		return
	}
	if blanked {
		report(call.Pos(), "decode error of %s discarded into _: count the drop or handle the error", astq.CalleeName(call))
		return
	}
	if errObj == nil {
		return
	}
	// Find the guard: the next statement mentioning the error object.
	for j := idx + 1; j < len(list); j++ {
		st := list[j]
		ifst, ok := st.(*ast.IfStmt)
		if ok && mentionsObj(info, ifst.Cond, errObj) {
			checkGuard(info, report, call, ifst, errObj)
			return
		}
		if isBlankAssign(st) {
			continue // _ = err silences the compiler, not this analyzer
		}
		if mentionsStmt(info, st, errObj) {
			return // handled some other way; assume good
		}
	}
	report(call.Pos(), "decode error of %s is never checked: count the drop or handle the error", astq.CalleeName(call))
}

func checkAssignInIf(info *types.Info, report func(token.Pos, string, ...any), fd *ast.FuncDecl, as *ast.AssignStmt, ifst *ast.IfStmt) {
	errObj, call, blanked := errObjOfAssign(info, as)
	if call == nil {
		return
	}
	if blanked {
		report(call.Pos(), "decode error of %s discarded into _: count the drop or handle the error", astq.CalleeName(call))
		return
	}
	if errObj == nil || !mentionsObj(info, ifst.Cond, errObj) {
		return
	}
	checkGuard(info, report, call, ifst, errObj)
}

// checkGuard inspects the error branch of an if guard.
func checkGuard(info *types.Info, report func(token.Pos, string, ...any), call *ast.CallExpr, ifst *ast.IfStmt, errObj types.Object) {
	var branch ast.Node
	switch guardKind(ifst.Cond, info, errObj) {
	case "!=":
		branch = ifst.Body
	case "==":
		branch = ifst.Else // may be nil
	default:
		return // unusual guard; give the benefit of the doubt
	}
	if branch == nil {
		// if err == nil { happy } with no else: the error evaporates.
		report(call.Pos(), "decode error of %s has no error branch: count the drop or handle the error", astq.CalleeName(call))
		return
	}
	if branchAccounts(info, branch, errObj) {
		return
	}
	report(call.Pos(), "error path of %s drops the message silently: increment a Stats counter or propagate the error", astq.CalleeName(call))
}

// guardKind classifies the condition as err != nil or err == nil.
func guardKind(cond ast.Expr, info *types.Info, errObj types.Object) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return ""
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && astq.Obj(info, id) == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isErr(be.X) && isNil(be.Y)) || (isErr(be.Y) && isNil(be.X)) {
		switch be.Op {
		case token.NEQ:
			return "!="
		case token.EQL:
			return "=="
		}
	}
	return ""
}

// branchAccounts reports whether the error branch propagates, counts, or
// aborts loudly.
func branchAccounts(info *types.Info, branch ast.Node, errObj types.Object) bool {
	ok := false
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObj(info, res, errObj) {
					ok = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if n.Tok == token.INC {
				if _, isSel := ast.Unparen(n.X).(*ast.SelectorExpr); isSel {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if _, isSel := ast.Unparen(n.Lhs[0]).(*ast.SelectorExpr); isSel {
					ok = true
					return false
				}
			}
		case *ast.CallExpr:
			switch nm := astq.CalleeName(n); {
			case nm == "panic", nm == "Fatal", nm == "Fatalf":
				ok = true
				return false
			case strings.HasPrefix(nm, "Add"): // atomic.AddInt64 and kin
				if fn := astq.Callee(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && astq.Obj(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func mentionsStmt(info *types.Info, st ast.Stmt, obj types.Object) bool {
	return mentionsObj(info, st, obj)
}

// isBlankAssign matches `_ = x` style statements.
func isBlankAssign(st ast.Stmt) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		return false
	}
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}
