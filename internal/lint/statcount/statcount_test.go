package statcount_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/statcount"
)

func TestSilentDropAccounting(t *testing.T) {
	linttest.Run(t, statcount.Analyzer, "statcount")
}
