// Package linttest runs an analyzer over a fixture tree and checks its
// diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract (which is not
// available offline).
//
// Fixtures live under testdata/src/<importpath>/ relative to the calling
// test. Imports inside a fixture resolve against the fixture tree first
// (so a fixture can ship a miniature "simnet" or "runtimeapi" package) and
// fall back to the standard library, type-checked from GOROOT source.
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp"
//	code() // want "regexp1" "regexp2"
//
// Each quoted string is a regular expression that must match the message
// of one diagnostic reported on that line; diagnostics without a matching
// want, and wants without a matching diagnostic, fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads the fixture package at testdata/src/<pkgpath> and applies the
// analyzer, comparing diagnostics against // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root)
	pkg, err := l.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunAll([]*analysis.Analyzer{a}, analysis.Pass{
		Fset:      l.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
	})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	check(t, l.fset, pkg.files, diags)
}

// Diagnostics loads the fixture package and returns the analyzer's raw
// findings without // want matching — for expectations that cannot share a
// line with a directive under test (e.g. the bare-directive rule).
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgpath string) []string {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root)
	pkg, err := l.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunAll([]*analysis.Analyzer{a}, analysis.Pass{
		Fset:      l.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
	})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s", l.fset.Position(d.Pos), d.Message)
	}
	return out
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, memoized, with stdlib fallback.
type loader struct {
	root   string
	fset   *token.FileSet
	pkgs   map[string]*fixturePkg
	std    types.Importer
	active map[string]bool // cycle guard
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   root,
		fset:   fset,
		pkgs:   make(map[string]*fixturePkg),
		std:    importer.ForCompiler(fset, "source", nil),
		active: make(map[string]bool),
	}
}

// Import implements types.Importer over the fixture tree + stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// want is one expectation: a compiled regexp at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from the fixture's comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of "..." or `...` strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want list at %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want string %q", pos, s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// check matches diagnostics against wants.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
