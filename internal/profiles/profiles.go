// Package profiles wires the standard -cpuprofile/-memprofile flags into
// the experiment drivers, so future performance work on the simulator
// starts from a pprof profile instead of a guess.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap snapshot to memPath (when
// non-empty). Call the stop function before the process exits — including
// error exit paths, since os.Exit skips deferred calls.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
