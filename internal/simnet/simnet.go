// Package simnet is the network simulator substrate, standing in for SSFNet
// in the paper's architecture. It models hosts attached to shared-medium
// LANs (bandwidth, propagation delay, MTU, frame overhead), point-to-point
// WAN links between LANs, unreliable UDP-like datagram delivery, IP
// multicast on LANs, receiver-side loss injection, and tcpdump-style packet
// tracing.
package simnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// NodeID and Group alias the runtime abstraction's identifiers so adapters
// need no conversions.
type (
	// NodeID identifies a host.
	NodeID = runtimeapi.NodeID
	// Group identifies a multicast group.
	Group = runtimeapi.Group
)

// Packet is one datagram in flight. Packet structs are pooled: a packet
// handed to a DeliverFunc is valid only for the duration of the upcall, and
// its Data must not be modified (it may be shared by every receiver of a
// multicast and by the sender's retransmission buffer).
type Packet struct {
	Seq       int64 // global trace sequence number
	Src       NodeID
	Dst       NodeID // unicast destination; unset for multicast
	Group     Group  // multicast group; meaningful when Multicast
	Multicast bool
	Data      []byte

	refs int32 // outstanding deliveries before the struct returns to the pool
}

// DeliverFunc receives packets that survived the trip. The *Packet is pooled
// and only valid during the call; retain Data (which the callee must treat
// as read-only), not the struct.
type DeliverFunc func(pkt *Packet)

// LANConfig configures a shared-medium segment. Defaults model the paper's
// test network: switched Ethernet 100 Mbit/s, 1500-byte MTU.
type LANConfig struct {
	// Name labels the LAN in traces.
	Name string
	// BandwidthBps is the medium capacity in bits per second (default 100e6).
	BandwidthBps int64
	// Propagation is the fixed propagation delay (default 30us, covering
	// switch latency on a small LAN).
	Propagation sim.Time
	// MTU is the maximum frame payload (default 1500).
	MTU int
	// FrameOverhead is per-frame header bytes: Ethernet + IP + UDP
	// (default 46).
	FrameOverhead int
	// FragmentOversize controls oversize datagrams. When true, payloads
	// larger than MTU are fragmented into MTU-sized frames, as a real IP
	// stack does. When false a single oversized frame is transmitted —
	// reproducing SSFNet's behaviour of not enforcing the Ethernet MTU
	// for UDP/IP traffic, which the paper calls out in Figure 3(c).
	FragmentOversize bool
}

func (c *LANConfig) fill() {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 100e6
	}
	if c.MTU == 0 {
		c.MTU = 1500
	}
}

// DefaultLANConfig returns the paper's test network: switched Ethernet
// 100 Mbit/s, 1500-byte MTU, 46 bytes of Ethernet+IP+UDP framing, and 30 µs
// of propagation and switching latency.
func DefaultLANConfig(name string) LANConfig {
	return LANConfig{
		Name:          name,
		BandwidthBps:  100e6,
		Propagation:   30 * sim.Microsecond,
		MTU:           1500,
		FrameOverhead: 46,
	}
}

// LAN is one shared-medium segment.
type LAN struct {
	cfg       LANConfig
	net       *Network
	hosts     []*Host
	busyUntil sim.Time
	bytes     metrics.ByteMeter
}

// Bytes exposes the traffic meter counting all bytes transmitted on this
// segment (Figure 6c reports this as KB/s).
func (l *LAN) Bytes() *metrics.ByteMeter { return &l.bytes }

// Name reports the LAN label.
func (l *LAN) Name() string { return l.cfg.Name }

// wireSize computes on-the-wire bytes for a payload, honouring the
// fragmentation policy.
func (l *LAN) wireSize(payload int) int {
	if payload <= l.cfg.MTU || !l.cfg.FragmentOversize {
		return payload + l.cfg.FrameOverhead
	}
	frames := (payload + l.cfg.MTU - 1) / l.cfg.MTU
	return payload + frames*l.cfg.FrameOverhead
}

// txTime is the serialization time of wire bytes at the LAN's bandwidth.
func (l *LAN) txTime(wire int) sim.Time {
	return sim.Time(float64(wire) * 8 * 1e9 / float64(l.cfg.BandwidthBps))
}

// LinkConfig configures a point-to-point WAN link between two LANs.
type LinkConfig struct {
	BandwidthBps int64    // default 10e6
	Delay        sim.Time // one-way propagation (default 20ms)
}

func (c *LinkConfig) fill() {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 10e6
	}
	if c.Delay == 0 {
		c.Delay = 20 * sim.Millisecond
	}
}

type link struct {
	cfg       LinkConfig
	busyUntil [2]sim.Time // per direction
	bytes     metrics.ByteMeter
}

func (l *link) txTime(wire int) sim.Time {
	return sim.Time(float64(wire) * 8 * 1e9 / float64(l.cfg.BandwidthBps))
}

// Host is one endpoint.
type Host struct {
	id      NodeID
	lan     *LAN
	deliver DeliverFunc
	loss    LossModel
	dup     *Injector
	reorder *Injector
	rng     *sim.RNG
	down    bool
	// extraDelay is added to every inbound packet's arrival instant —
	// gray-failure link degradation: the host is reachable, just slow.
	extraDelay sim.Time

	sent     metrics.ByteMeter
	received metrics.ByteMeter
	dropped  int64
}

// ID reports the host identifier.
func (h *Host) ID() NodeID { return h.id }

// SetDeliver installs the reception upcall.
func (h *Host) SetDeliver(fn DeliverFunc) { h.deliver = fn }

// SetLoss installs a receiver-side loss model ("each message is discarded
// upon reception with the specified probability", Section 5.3).
func (h *Host) SetLoss(m LossModel) { h.loss = m }

// SetDuplicate installs receiver-side datagram duplication (nil disables):
// each firing delivers a second copy of the datagram shortly after the
// first, as a flapping route or a retransmitting middlebox would. Ordered
// streams dedupe by sequence number; the raw-datagram relay traffic is what
// this really stresses.
func (h *Host) SetDuplicate(in *Injector) { h.dup = in }

// SetReorder installs receiver-side datagram reordering (nil disables):
// each firing holds the datagram back long enough for traffic sent later to
// overtake it.
func (h *Host) SetReorder(in *Injector) { h.reorder = in }

// SetDown marks the host crashed (true) or operational (false). A down host
// silently drops all traffic.
func (h *Host) SetDown(down bool) { h.down = down }

// SetExtraDelay adds d to every subsequent inbound packet's arrival instant
// (gray-failure link degradation; 0 restores normal timing). Unlike loss or
// a partition the traffic still arrives, so failure detectors stay quiet.
func (h *Host) SetExtraDelay(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.extraDelay = d
}

// Down reports crash status.
func (h *Host) Down() bool { return h.down }

// Sent and Received expose per-host traffic meters; Dropped counts packets
// discarded by the loss model.
func (h *Host) Sent() *metrics.ByteMeter { return &h.sent }

// Received exposes the bytes successfully delivered to this host.
func (h *Host) Received() *metrics.ByteMeter { return &h.received }

// Dropped reports packets discarded by loss injection at this host.
func (h *Host) Dropped() int64 { return h.dropped }

// TraceEvent classifies trace records.
type TraceEvent byte

// Trace event kinds.
const (
	TraceSend TraceEvent = iota + 1
	TraceRecv
	TraceDrop
	// TraceCut records a packet discarded at a network partition.
	TraceCut
)

func (e TraceEvent) String() string {
	switch e {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	case TraceDrop:
		return "drop"
	case TraceCut:
		return "cut"
	default:
		return "?"
	}
}

// TraceRecord is one tcpdump-like log entry.
type TraceRecord struct {
	At    sim.Time
	Event TraceEvent
	Seq   int64
	Src   NodeID
	Dst   NodeID // receiver for recv/drop records
	Multi bool
	Size  int // payload bytes
}

// String formats the record in a tcpdump-ish single line.
func (r TraceRecord) String() string {
	kind := "udp"
	if r.Multi {
		kind = "mcast"
	}
	return fmt.Sprintf("%12.6f %s #%d %d > %d %s len %d",
		r.At.Seconds(), r.Event, r.Seq, r.Src, r.Dst, kind, r.Size)
}

// Network is the topology container.
type Network struct {
	k       *sim.Kernel
	rng     *sim.RNG
	hosts   map[NodeID]*Host
	lans    []*LAN
	links   map[[2]int]*link // indexed by LAN indices (lo, hi)
	groups  map[Group][]NodeID
	tracer  func(TraceRecord)
	seq     int64
	free    []*Packet       // recycled Packet structs
	freeArr []*arrival      // recycled arrival thunks
	freeTx  []*transmission // recycled injection thunks

	// isolated holds the hosts on the cut-off side of the active network
	// partition (nil when fully connected); partitionDrops counts packets
	// discarded at the cut.
	isolated       map[NodeID]bool
	partitionDrops int64
}

// NewNetwork creates an empty topology on the kernel.
func NewNetwork(k *sim.Kernel, rng *sim.RNG) *Network {
	return &Network{
		k:      k,
		rng:    rng,
		hosts:  make(map[NodeID]*Host),
		links:  make(map[[2]int]*link),
		groups: make(map[Group][]NodeID),
	}
}

// SetTracer installs a packet trace sink (nil disables tracing).
func (n *Network) SetTracer(fn func(TraceRecord)) { n.tracer = fn }

// NewLAN adds a segment.
func (n *Network) NewLAN(cfg LANConfig) *LAN {
	cfg.fill()
	l := &LAN{cfg: cfg, net: n}
	n.lans = append(n.lans, l)
	return l
}

// NewHost attaches a host to a LAN. Host IDs must be unique.
func (n *Network) NewHost(id NodeID, lan *LAN) (*Host, error) {
	if _, dup := n.hosts[id]; dup {
		return nil, fmt.Errorf("simnet: duplicate host %d", id)
	}
	h := &Host{id: id, lan: lan, rng: n.rng.Fork(fmt.Sprintf("host-%d", id))}
	n.hosts[id] = h
	lan.hosts = append(lan.hosts, h)
	return h, nil
}

// Host looks up a host by ID.
func (n *Network) Host(id NodeID) *Host { return n.hosts[id] }

// Connect adds a bidirectional WAN link between two LANs.
func (n *Network) Connect(a, b *LAN, cfg LinkConfig) {
	cfg.fill()
	ia, ib := n.lanIndex(a), n.lanIndex(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	n.links[[2]int{ia, ib}] = &link{cfg: cfg}
}

func (n *Network) lanIndex(l *LAN) int {
	for i, x := range n.lans {
		if x == l {
			return i
		}
	}
	return -1
}

// SetGroup registers multicast group membership.
func (n *Network) SetGroup(g Group, members []NodeID) {
	m := make([]NodeID, len(members))
	copy(m, members)
	n.groups[g] = m
}

// Group reports the members of g.
func (n *Network) Group(g Group) []NodeID { return n.groups[g] }

// TotalBytes sums wire bytes over all LANs and links (Figure 6c).
func (n *Network) TotalBytes() int64 {
	var t int64
	for _, l := range n.lans {
		t += l.bytes.Bytes()
	}
	for _, lk := range n.links {
		t += lk.bytes.Bytes()
	}
	return t
}

// arrival is one pooled pending reception: the closure scheduled for the
// arrival instant is bound once at allocation and reused, so scheduling a
// reception allocates nothing in steady state.
type arrival struct {
	n    *Network
	dst  *Host
	pkt  *Packet
	fire func()
}

// scheduleArrival schedules pkt's reception at dst at the given instant,
// applying the receiver's chaos injectors first: a reordered datagram's
// arrival is pushed back so traffic sent later overtakes it, and a
// duplicated datagram gets a second, later arrival holding its own packet
// reference. Both decisions are made once, here, so the copies themselves
// are not re-duplicated.
//
//hot:path
func (n *Network) scheduleArrival(at sim.Time, dst *Host, pkt *Packet) {
	if in := dst.reorder; in != nil && in.fires(at, dst.rng) {
		at += in.drawDelay(dst.rng)
	}
	if in := dst.dup; in != nil && in.fires(at, dst.rng) {
		pkt.refs++ //lint:bufown-ok the extra reference is handed to the copy's own scheduled arrival and released in arrive
		n.enqueueArrival(at+in.drawDelay(dst.rng), dst, pkt)
	}
	n.enqueueArrival(at, dst, pkt)
}

// enqueueArrival binds a pooled arrival thunk and schedules it.
//
//hot:path
func (n *Network) enqueueArrival(at sim.Time, dst *Host, pkt *Packet) {
	var a *arrival
	if ln := len(n.freeArr); ln > 0 {
		a = n.freeArr[ln-1]
		n.freeArr[ln-1] = nil
		n.freeArr = n.freeArr[:ln-1]
	} else {
		//lint:hotalloc-ok pool miss; the thunk joins the free list after it fires
		a = &arrival{n: n}
		a.fire = a.run
	}
	a.dst, a.pkt = dst, pkt
	n.k.ScheduleAt(at+dst.extraDelay, a.fire)
}

func (a *arrival) run() {
	dst, pkt := a.dst, a.pkt
	a.dst, a.pkt = nil, nil
	a.n.freeArr = append(a.n.freeArr, a)
	a.n.arrive(dst, pkt)
}

// transmission is one pooled pending injection: the datagram waits out the
// sender's CPU-elapsed delay, then hits the wire. members non-nil selects
// the multicast path.
type transmission struct {
	n       *Network
	src     *Host
	dst     *Host
	members []NodeID
	pkt     *Packet
	fire    func()
}

// scheduleTransmission queues pkt's injection after delay.
//
//hot:path
func (n *Network) scheduleTransmission(delay sim.Time, src, dst *Host, members []NodeID, pkt *Packet) {
	var tx *transmission
	if ln := len(n.freeTx); ln > 0 {
		tx = n.freeTx[ln-1]
		n.freeTx[ln-1] = nil
		n.freeTx = n.freeTx[:ln-1]
	} else {
		//lint:hotalloc-ok pool miss; the thunk joins the free list after it fires
		tx = &transmission{n: n}
		tx.fire = tx.run
	}
	tx.src, tx.dst, tx.members, tx.pkt = src, dst, members, pkt
	n.k.Schedule(delay, tx.fire)
}

func (tx *transmission) run() {
	n, src, dst, members, pkt := tx.n, tx.src, tx.dst, tx.members, tx.pkt
	tx.src, tx.dst, tx.members, tx.pkt = nil, nil, nil, nil
	n.freeTx = append(n.freeTx, tx)
	if members != nil {
		n.transmitMulticast(src, members, pkt)
	} else {
		n.transmit(src, dst, pkt)
	}
}

// newPacket takes a Packet from the free list (or allocates one) with a
// single reference held by the in-flight transmission.
//
//hot:path
func (n *Network) newPacket() *Packet {
	if ln := len(n.free); ln > 0 {
		pkt := n.free[ln-1]
		n.free[ln-1] = nil
		n.free = n.free[:ln-1]
		return pkt
	}
	//lint:hotalloc-ok pool miss; the struct joins the free list on release
	return &Packet{}
}

// release drops one reference; the last reference returns the struct (not
// its Data, which receivers may retain) to the pool.
//
//hot:path
func (n *Network) release(pkt *Packet) {
	pkt.refs--
	if pkt.refs <= 0 {
		*pkt = Packet{}
		n.free = append(n.free, pkt)
	}
}

// Send injects a unicast datagram from src after delay (the sender's CPU
// elapsed time; see csrt.Port). Ownership of data passes to the network: the
// caller must not modify the buffer after the call (the paper's zero-copy
// wire path — receivers parse, and may retain, the very bytes the sender
// built).
//
//hot:path
func (n *Network) Send(src, dst NodeID, data []byte, delay sim.Time) error {
	hs, ok := n.hosts[src]
	if !ok {
		return fmt.Errorf("simnet: unknown source %d", src)
	}
	hd, ok := n.hosts[dst]
	if !ok {
		return fmt.Errorf("simnet: unknown destination %d", dst)
	}
	n.seq++
	pkt := n.newPacket()
	pkt.Seq, pkt.Src, pkt.Dst, pkt.Data, pkt.refs = n.seq, src, dst, data, 1
	n.scheduleTransmission(delay, hs, hd, nil, pkt)
	return nil
}

// Multicast injects a LAN multicast from src to every member of g on the
// same segment, excluding the sender. Members on other segments are not
// reached: wide-area dissemination falls back to unicast at the protocol
// layer, as in the paper's prototype. As with Send, data is handed off and
// must not be modified by the caller afterwards; all receivers share it.
//
//hot:path
func (n *Network) Multicast(src NodeID, g Group, data []byte, delay sim.Time) error {
	hs, ok := n.hosts[src]
	if !ok {
		return fmt.Errorf("simnet: unknown source %d", src)
	}
	members, ok := n.groups[g]
	if !ok {
		return fmt.Errorf("simnet: unknown group %d", g)
	}
	n.seq++
	pkt := n.newPacket()
	pkt.Seq, pkt.Src, pkt.Group, pkt.Multicast, pkt.Data, pkt.refs = n.seq, src, g, true, data, 1
	n.scheduleTransmission(delay, hs, nil, members, pkt)
	return nil
}

// transmit performs the wire transmission of a unicast packet.
func (n *Network) transmit(src, dst *Host, pkt *Packet) {
	if src.down {
		n.release(pkt)
		return
	}
	if n.tracer != nil {
		n.tracer(TraceRecord{At: n.k.Now(), Event: TraceSend, Seq: pkt.Seq, Src: pkt.Src, Dst: pkt.Dst, Size: len(pkt.Data)})
	}
	src.sent.Add(len(pkt.Data))
	if src.lan == dst.lan {
		wire := src.lan.wireSize(len(pkt.Data))
		n.scheduleArrival(n.lanTransmit(src.lan, wire), dst, pkt)
		return
	}
	// Cross-LAN: source segment, WAN link, destination segment —
	// store-and-forward. Each hop contends for the next medium only when
	// the packet physically reaches it; reserving a future slot at
	// injection time would stall unrelated local traffic behind phantom
	// reservations.
	ia, ib := n.lanIndex(src.lan), n.lanIndex(dst.lan)
	key := [2]int{min(ia, ib), max(ia, ib)}
	lk, ok := n.links[key]
	if !ok {
		n.release(pkt)
		return // no route: silently dropped, like a misconfigured WAN
	}
	dir := 0
	if ia > ib {
		dir = 1
	}
	wireSrc := src.lan.wireSize(len(pkt.Data))
	t1 := n.lanTransmit(src.lan, wireSrc)
	n.k.ScheduleAt(t1, func() {
		// At the gateway: serialize on the link, per direction.
		start := max(n.k.Now(), lk.busyUntil[dir])
		t2 := start + lk.txTime(wireSrc) + lk.cfg.Delay
		lk.busyUntil[dir] = start + lk.txTime(wireSrc)
		lk.bytes.Add(wireSrc)
		n.k.ScheduleAt(t2, func() {
			// At the remote gateway: final-hop transmission.
			wireDst := dst.lan.wireSize(len(pkt.Data))
			n.scheduleArrival(n.lanTransmit(dst.lan, wireDst), dst, pkt)
		})
	})
}

// transmitMulticast performs one wire transmission reaching all same-LAN
// group members. Every receiver holds a reference on the shared packet; the
// injection reference is dropped once the arrivals are scheduled.
//
//hot:path
func (n *Network) transmitMulticast(src *Host, members []NodeID, pkt *Packet) {
	if src.down {
		n.release(pkt)
		return
	}
	if n.tracer != nil {
		n.tracer(TraceRecord{At: n.k.Now(), Event: TraceSend, Seq: pkt.Seq, Src: pkt.Src, Multi: true, Size: len(pkt.Data)})
	}
	src.sent.Add(len(pkt.Data))
	wire := src.lan.wireSize(len(pkt.Data))
	arrive := n.lanTransmit(src.lan, wire)
	for _, id := range members {
		dst := n.hosts[id]
		if dst == nil || dst == src || dst.lan != src.lan {
			continue
		}
		pkt.refs++
		n.scheduleArrival(arrive, dst, pkt)
	}
	n.release(pkt)
}

// lanTransmit serializes a frame burst on the shared medium and returns the
// arrival instant at same-segment receivers.
//
//hot:path
func (n *Network) lanTransmit(l *LAN, wire int) sim.Time {
	start := max(n.k.Now(), l.busyUntil)
	end := start + l.txTime(wire)
	l.busyUntil = end
	l.bytes.Add(wire)
	return end + l.cfg.Propagation
}

// arrive applies the partition cut, receiver-side loss, and crash state,
// then delivers. Whatever the fate, the receiver's packet reference is
// dropped on the way out. Drop, cut, and receive accounting is identical
// with and without a tracer attached — only the trace records themselves
// are conditional.
//
//hot:path
func (n *Network) arrive(dst *Host, pkt *Packet) {
	defer n.release(pkt)
	if dst.down {
		return
	}
	if !n.reachable(pkt.Src, dst.id) {
		n.partitionDrops++
		if n.tracer != nil {
			n.tracer(TraceRecord{At: n.k.Now(), Event: TraceCut, Seq: pkt.Seq, Src: pkt.Src, Dst: dst.id, Multi: pkt.Multicast, Size: len(pkt.Data)})
		}
		return
	}
	if dst.loss != nil && dst.loss.Drop(dst.rng, n.k.Now()) {
		dst.dropped++
		if n.tracer != nil {
			n.tracer(TraceRecord{At: n.k.Now(), Event: TraceDrop, Seq: pkt.Seq, Src: pkt.Src, Dst: dst.id, Multi: pkt.Multicast, Size: len(pkt.Data)})
		}
		return
	}
	dst.received.Add(len(pkt.Data))
	if n.tracer != nil {
		n.tracer(TraceRecord{At: n.k.Now(), Event: TraceRecv, Seq: pkt.Seq, Src: pkt.Src, Dst: dst.id, Multi: pkt.Multicast, Size: len(pkt.Data)})
	}
	if dst.deliver != nil {
		dst.deliver(pkt)
	}
}
