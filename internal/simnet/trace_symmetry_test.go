package simnet

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// netStats snapshots every externally observable counter of one scenario
// run: per-host traffic and drops, partition drops, segment bytes, delivery
// count, and final simulated time.
type netStats struct{ summary string }

// runTraceScenario drives a fixed seeded scenario — multicast and unicast
// traffic under receiver loss, with a partition cut and heal in the middle —
// and returns the observable accounting. withTracer attaches a sink first.
func runTraceScenario(t *testing.T, withTracer bool) (netStats, int) {
	t.Helper()
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(7))
	lan := n.NewLAN(DefaultLANConfig("lan"))
	hosts := make([]*Host, 3)
	delivered := 0
	for i := range hosts {
		h, err := n.NewHost(NodeID(i+1), lan)
		if err != nil {
			t.Fatal(err)
		}
		h.SetDeliver(func(pkt *Packet) { delivered++ })
		hosts[i] = h
	}
	hosts[1].SetLoss(&RandomLoss{P: 0.3})
	n.SetGroup(1, []NodeID{1, 2, 3})
	traced := 0
	if withTracer {
		n.SetTracer(func(TraceRecord) { traced++ })
	}
	for i := 0; i < 40; i++ {
		at := sim.Time(i+1) * sim.Millisecond
		k.ScheduleAt(at, func() {
			_ = n.Multicast(1, 1, []byte{1, 2, 3, 4}, 0)
			_ = n.Send(2, 3, []byte{5, 6}, 0)
		})
	}
	k.ScheduleAt(15*sim.Millisecond, func() { n.Partition([]NodeID{3}) })
	k.ScheduleAt(30*sim.Millisecond, func() { n.Heal() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s := fmt.Sprintf("delivered=%d cut=%d total=%d now=%v", delivered, n.PartitionDrops(), n.TotalBytes(), k.Now())
	for _, h := range hosts {
		s += fmt.Sprintf(" h%d[sent=%d recv=%d drop=%d]", h.ID(), h.Sent().Bytes(), h.Received().Bytes(), h.Dropped())
	}
	return netStats{summary: s}, traced
}

// TestTraceAccountingSymmetry pins the invariant that attaching a tracer
// changes nothing but the trace itself: drop, cut, and receive accounting —
// and the loss model's random draws — are byte-identical between a traced
// and an untraced run of the same seed.
func TestTraceAccountingSymmetry(t *testing.T) {
	plain, tracedCount := runTraceScenario(t, false)
	if tracedCount != 0 {
		t.Fatal("untraced run produced trace records")
	}
	traced, count := runTraceScenario(t, true)
	if count == 0 {
		t.Fatal("traced run recorded nothing; the scenario is vacuous")
	}
	if plain.summary != traced.summary {
		t.Fatalf("accounting diverged with tracer attached:\nuntraced: %s\ntraced:   %s",
			plain.summary, traced.summary)
	}
}
