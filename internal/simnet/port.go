package simnet

import "repro/internal/sim"

// HostPort adapts one host as a datagram injection point. It structurally
// satisfies csrt.Port, letting the centralized simulation runtime inject
// packets without this package importing it.
type HostPort struct {
	net  *Network
	self NodeID
	mtu  int
}

// Port returns the injection adapter for host id. mtu bounds datagram
// payloads (0 means the host LAN's MTU).
func (n *Network) Port(id NodeID, mtu int) *HostPort {
	if mtu == 0 {
		if h := n.hosts[id]; h != nil {
			mtu = h.lan.cfg.MTU
		} else {
			mtu = 1500
		}
	}
	return &HostPort{net: n, self: id, mtu: mtu}
}

// Send injects a unicast datagram after delay.
func (p *HostPort) Send(dst NodeID, data []byte, delay sim.Time) error {
	return p.net.Send(p.self, dst, data, delay)
}

// Multicast injects a group datagram after delay.
func (p *HostPort) Multicast(g Group, data []byte, delay sim.Time) error {
	return p.net.Multicast(p.self, g, data, delay)
}

// MTU reports the maximum payload size.
func (p *HostPort) MTU() int { return p.mtu }
