package simnet

import "repro/internal/sim"

// Injector is a receiver-side datagram chaos model: within its window every
// inbound datagram independently fires with probability Rate. What a firing
// does is up to the hook point — today it either re-delivers the datagram a
// second time (duplication) or holds it back so traffic sent later overtakes
// it (reordering). Injectors are stateless, so one value may be shared by
// every host; the per-host RNG keeps draws independent and deterministic.
type Injector struct {
	// Rate is the per-datagram firing probability; values <= 0 never fire.
	Rate float64
	// Delay bounds the extra delay drawn per firing, uniform in (0, Delay];
	// zero or negative selects the 2ms default — comfortably past a LAN
	// round trip, so a held-back datagram really is overtaken.
	Delay sim.Time
	// From and Until bound the active window; Until zero means the injector
	// stays active for the rest of the run.
	From  sim.Time
	Until sim.Time
}

const defaultChaosDelay = 2 * sim.Millisecond

// fires reports whether the injector acts on a datagram arriving at the
// given instant. The RNG is consulted only inside the window, so a schedule
// whose window is moved or removed leaves every draw outside it untouched —
// shrunk fault schedules stay comparable to their parents.
func (in *Injector) fires(at sim.Time, g *sim.RNG) bool {
	if at < in.From || (in.Until > 0 && at >= in.Until) {
		return false
	}
	return g.Float64() < in.Rate
}

// drawDelay draws the extra delay of one firing.
func (in *Injector) drawDelay(g *sim.RNG) sim.Time {
	d := in.Delay
	if d <= 0 {
		d = defaultChaosDelay
	}
	return 1 + sim.Time(g.Int63n(int64(d)))
}
