package simnet

// Network partitioning: a partition splits hosts into two components and
// silently discards every packet that would cross the cut, modeling a
// failed switch uplink or WAN circuit. The cut is applied at reception
// time, so packets in flight when the partition starts are lost too —
// exactly what a link going dark does to frames already serialized onto it.

// Partition isolates the listed hosts from every other host: traffic
// between the isolated component and the rest is discarded until Heal. A
// subsequent Partition call replaces the current cut. Hosts not listed
// remain mutually connected, as do the isolated hosts among themselves.
func (n *Network) Partition(isolated []NodeID) {
	n.isolated = make(map[NodeID]bool, len(isolated))
	for _, id := range isolated {
		n.isolated[id] = true
	}
}

// Heal removes the current partition; all hosts can communicate again.
func (n *Network) Heal() { n.isolated = nil }

// PartitionActive reports whether a cut is currently in place.
func (n *Network) PartitionActive() bool { return len(n.isolated) > 0 }

// PartitionDrops counts packets discarded at the cut.
func (n *Network) PartitionDrops() int64 { return n.partitionDrops }

// reachable reports whether traffic from a to b crosses the current cut.
func (n *Network) reachable(a, b NodeID) bool {
	if len(n.isolated) == 0 {
		return true
	}
	return n.isolated[a] == n.isolated[b]
}
