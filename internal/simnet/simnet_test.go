package simnet

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func newLANPair(t *testing.T, cfg LANConfig) (*sim.Kernel, *Network, *Host, *Host) {
	t.Helper()
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	lan := n.NewLAN(cfg)
	h1, err := n.NewHost(1, lan)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := n.NewHost(2, lan)
	if err != nil {
		t.Fatal(err)
	}
	return k, n, h1, h2
}

func TestUnicastLatencyMatchesBandwidthAndPropagation(t *testing.T) {
	k, n, _, h2 := newLANPair(t, LANConfig{
		BandwidthBps:  100e6,
		Propagation:   30 * sim.Microsecond,
		FrameOverhead: 46,
	})
	var arrived sim.Time
	h2.SetDeliver(func(pkt *Packet) { arrived = k.Now() })
	if err := n.Send(1, 2, make([]byte, 954), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// wire = 954+46 = 1000B = 8000 bits at 100Mbps = 80us, + 30us prop.
	want := 80*sim.Microsecond + 30*sim.Microsecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestSharedMediumSerializesTransmissions(t *testing.T) {
	k, n, _, h2 := newLANPair(t, LANConfig{BandwidthBps: 100e6, Propagation: 0, FrameOverhead: 0})
	var arrivals []sim.Time
	h2.SetDeliver(func(pkt *Packet) { arrivals = append(arrivals, k.Now()) })
	// Two back-to-back 1250-byte packets: each takes 100us on the wire.
	if err := n.Send(1, 2, make([]byte, 1250), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, make([]byte, 1250), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0] != 100*sim.Microsecond || arrivals[1] != 200*sim.Microsecond {
		t.Fatalf("arrivals = %v, want [100us 200us]", arrivals)
	}
}

func TestMulticastReachesAllLANMembersExceptSender(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	lan := n.NewLAN(DefaultLANConfig("lan"))
	got := map[NodeID]int{}
	for id := NodeID(1); id <= 3; id++ {
		h, err := n.NewHost(id, lan)
		if err != nil {
			t.Fatal(err)
		}
		hid := id
		h.SetDeliver(func(pkt *Packet) { got[hid]++ })
	}
	n.SetGroup(1, []NodeID{1, 2, 3})
	if err := n.Multicast(1, 1, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("deliveries = %v, want host1:0 host2:1 host3:1", got)
	}
	// One wire transmission regardless of group size.
	wantWire := int64(5 + 46)
	if lan.Bytes().Bytes() != wantWire {
		t.Fatalf("wire bytes = %d, want %d", lan.Bytes().Bytes(), wantWire)
	}
}

func TestFragmentationAddsPerFrameOverhead(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	frag := n.NewLAN(LANConfig{MTU: 1500, FrameOverhead: 46, FragmentOversize: true})
	if got := frag.wireSize(4000); got != 4000+3*46 {
		t.Fatalf("fragmented wire size = %d, want %d", got, 4000+3*46)
	}
	ssfnet := n.NewLAN(LANConfig{MTU: 1500, FrameOverhead: 46, FragmentOversize: false})
	if got := ssfnet.wireSize(4000); got != 4000+46 {
		t.Fatalf("unfragmented wire size = %d, want %d", got, 4000+46)
	}
	_ = k
}

func TestCrashedHostsSendAndReceiveNothing(t *testing.T) {
	k, n, h1, h2 := newLANPair(t, LANConfig{})
	delivered := 0
	h2.SetDeliver(func(pkt *Packet) { delivered++ })
	h2.SetDown(true)
	if err := n.Send(1, 2, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("down host received a packet")
	}
	h2.SetDown(false)
	h1.SetDown(true)
	if err := n.Send(1, 2, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("down host transmitted a packet")
	}
}

func TestRandomLossRate(t *testing.T) {
	k, n, _, h2 := newLANPair(t, LANConfig{})
	h2.SetLoss(&RandomLoss{P: 0.05})
	delivered := 0
	h2.SetDeliver(func(pkt *Packet) { delivered++ })
	const total = 20000
	for i := 0; i < total; i++ {
		if err := n.Send(1, 2, []byte{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(delivered)/total
	if math.Abs(rate-0.05) > 0.01 {
		t.Fatalf("loss rate = %v, want ~0.05", rate)
	}
	if h2.Dropped() != int64(total-delivered) {
		t.Fatal("Dropped() inconsistent with deliveries")
	}
}

func TestBurstyLossRateAndBurstiness(t *testing.T) {
	g := sim.NewRNG(7)
	// Bursts average 50ms; with one arrival every 10ms that is ~5
	// consecutive messages per burst.
	l := &BurstyLoss{Rate: 0.05, MeanBurst: 50 * sim.Millisecond}
	const total = 200000
	lost := 0
	bursts := 0
	prev := false
	for i := 0; i < total; i++ {
		d := l.Drop(g, sim.Time(i)*10*sim.Millisecond)
		if d {
			lost++
			if !prev {
				bursts++
			}
		}
		prev = d
	}
	rate := float64(lost) / total
	if math.Abs(rate-0.05) > 0.01 {
		t.Fatalf("bursty loss rate = %v, want ~0.05", rate)
	}
	meanBurst := float64(lost) / float64(bursts)
	if meanBurst < 3.0 || meanBurst > 7.0 {
		t.Fatalf("mean burst length = %v messages, want ~5", meanBurst)
	}
}

func TestWANRouting(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	a := n.NewLAN(LANConfig{Name: "a", Propagation: 10 * sim.Microsecond, FrameOverhead: 0})
	b := n.NewLAN(LANConfig{Name: "b", Propagation: 10 * sim.Microsecond, FrameOverhead: 0})
	if _, err := n.NewHost(1, a); err != nil {
		t.Fatal(err)
	}
	h2, err := n.NewHost(2, b)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(a, b, LinkConfig{BandwidthBps: 10e6, Delay: 20 * sim.Millisecond})
	var arrived sim.Time
	h2.SetDeliver(func(pkt *Packet) { arrived = k.Now() })
	if err := n.Send(1, 2, make([]byte, 1250), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// LAN a: 1250B at 100Mbps = 100us + 10us prop... (arrival instant at
	// the gateway is implicit); link: 1250B at 10Mbps = 1ms + 20ms; LAN b:
	// 100us + 10us.
	want := 100*sim.Microsecond + 10*sim.Microsecond +
		1*sim.Millisecond + 20*sim.Millisecond +
		100*sim.Microsecond + 10*sim.Microsecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestMulticastDoesNotCrossLANs(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	a := n.NewLAN(LANConfig{})
	b := n.NewLAN(LANConfig{})
	if _, err := n.NewHost(1, a); err != nil {
		t.Fatal(err)
	}
	h2, err := n.NewHost(2, a)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := n.NewHost(3, b)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(a, b, LinkConfig{})
	n.SetGroup(1, []NodeID{1, 2, 3})
	got := map[NodeID]int{}
	h2.SetDeliver(func(pkt *Packet) { got[2]++ })
	h3.SetDeliver(func(pkt *Packet) { got[3]++ })
	if err := n.Multicast(1, 1, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 || got[3] != 0 {
		t.Fatalf("deliveries = %v; multicast must stay on the LAN", got)
	}
}

func TestTraceRecords(t *testing.T) {
	k, n, _, h2 := newLANPair(t, LANConfig{})
	var recs []TraceRecord
	n.SetTracer(func(r TraceRecord) { recs = append(recs, r) })
	h2.SetDeliver(func(pkt *Packet) {})
	if err := n.Send(1, 2, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("trace records = %d, want send+recv", len(recs))
	}
	if recs[0].Event != TraceSend || recs[1].Event != TraceRecv {
		t.Fatalf("events = %v %v", recs[0].Event, recs[1].Event)
	}
	if recs[1].Size != 3 || recs[1].Dst != 2 {
		t.Fatalf("recv record = %+v", recs[1])
	}
	if recs[0].String() == "" || TraceDrop.String() != "drop" {
		t.Fatal("formatting broken")
	}
}

func TestDeliveredDataIsHandedOff(t *testing.T) {
	// The wire path is zero-copy: Send transfers ownership of the buffer,
	// and every receiver sees the very bytes the sender built. This test
	// pins the handoff contract (and that nothing in between clones).
	k, n, _, h2 := newLANPair(t, LANConfig{})
	payload := []byte{1, 2, 3}
	var got []byte
	h2.SetDeliver(func(pkt *Packet) { got = pkt.Data })
	if err := n.Send(1, 2, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if &got[0] != &payload[0] || got[0] != 1 {
		t.Fatal("network should hand the sender's buffer to the receiver unchanged")
	}
}

func TestPacketStructsArePooled(t *testing.T) {
	k, n, _, h2 := newLANPair(t, LANConfig{})
	delivered := 0
	h2.SetDeliver(func(pkt *Packet) { delivered++ })
	for i := 0; i < 4; i++ {
		if err := n.Send(1, 2, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if delivered != 4 {
		t.Fatalf("delivered = %d", delivered)
	}
	if len(n.free) == 0 {
		t.Fatal("expected released packets in the pool")
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	lan := n.NewLAN(LANConfig{})
	if _, err := n.NewHost(1, lan); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewHost(1, lan); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestUnknownEndpointsError(t *testing.T) {
	k, n, _, _ := newLANPair(t, LANConfig{})
	if err := n.Send(9, 2, []byte{1}, 0); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := n.Send(1, 9, []byte{1}, 0); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := n.Multicast(1, 99, []byte{1}, 0); err == nil {
		t.Fatal("unknown group accepted")
	}
	_ = k
}
