package simnet

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// Statistical validation of the Section 5.3 loss models: the long-run loss
// fraction must converge to the configured rate, and bursty losses must come
// in bursts of the configured mean length. The RNG is seeded, so these are
// exact regressions, with tolerances wide enough to survive resampling.

// driveLoss feeds n arrivals at a fixed interval through a loss model and
// returns the drop fraction and the mean length of consecutive-drop runs.
func driveLoss(m LossModel, rng *sim.RNG, n int, interval sim.Time) (frac float64, meanBurst float64) {
	drops, bursts, cur := 0, 0, 0
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now += interval
		if m.Drop(rng, now) {
			drops++
			cur++
		} else if cur > 0 {
			bursts++
			cur = 0
		}
	}
	if cur > 0 {
		bursts++
	}
	frac = float64(drops) / float64(n)
	if bursts > 0 {
		meanBurst = float64(drops) / float64(bursts)
	}
	return frac, meanBurst
}

func TestRandomLossLongRunFractionConvergesToRate(t *testing.T) {
	const n = 100000
	for _, rate := range []float64{0.05, 0.10} {
		rng := sim.NewRNG(1).Fork("random-loss")
		frac, _ := driveLoss(&RandomLoss{P: rate}, rng, n, 10*sim.Millisecond)
		if math.Abs(frac-rate) > 0.01 {
			t.Fatalf("random loss rate %.2f: observed fraction %.4f over %d deliveries", rate, frac, n)
		}
	}
}

func TestBurstyLossLongRunFractionConvergesToRate(t *testing.T) {
	const n = 100000
	for _, rate := range []float64{0.05, 0.10} {
		rng := sim.NewRNG(2).Fork("bursty-loss")
		m := &BurstyLoss{Rate: rate, MeanBurst: 50 * sim.Millisecond}
		frac, _ := driveLoss(m, rng, n, 10*sim.Millisecond)
		if math.Abs(frac-rate) > 0.01 {
			t.Fatalf("bursty loss rate %.2f: observed fraction %.4f over %d deliveries", rate, frac, n)
		}
	}
}

func TestBurstyLossMeanBurstLengthMatchesConfiguration(t *testing.T) {
	// A 50ms mean discard period sampled every 10ms corresponds to bursts
	// averaging about 5 messages. Observed runs are conditioned on being
	// non-empty (a discard period shorter than one arrival gap drops
	// nothing), which biases the observed mean slightly above 5, so accept
	// a ±30% band around the nominal length.
	const n, interval = 100000, 10 * sim.Millisecond
	rng := sim.NewRNG(3).Fork("bursty-burst")
	m := &BurstyLoss{Rate: 0.05, MeanBurst: 50 * sim.Millisecond}
	_, meanBurst := driveLoss(m, rng, n, interval)
	want := float64(m.MeanBurst) / float64(interval)
	if meanBurst < want*0.7 || meanBurst > want*1.3 {
		t.Fatalf("mean burst length %.2f messages, want within 30%% of %.0f", meanBurst, want)
	}
}

func TestBurstyLossesAreCorrelated(t *testing.T) {
	// Bursty loss at the same long-run rate must produce far fewer, longer
	// runs than independent random loss.
	const n, interval = 100000, 10 * sim.Millisecond
	rngA := sim.NewRNG(4).Fork("corr-random")
	_, randomRun := driveLoss(&RandomLoss{P: 0.05}, rngA, n, interval)
	rngB := sim.NewRNG(4).Fork("corr-bursty")
	_, burstyRun := driveLoss(&BurstyLoss{Rate: 0.05, MeanBurst: 50 * sim.Millisecond}, rngB, n, interval)
	if burstyRun < 2*randomRun {
		t.Fatalf("bursty mean run %.2f not clearly longer than random mean run %.2f", burstyRun, randomRun)
	}
}
