package simnet

import (
	"testing"

	"repro/internal/sim"
)

// partitionNet builds three hosts on one LAN with per-host delivery counters.
func partitionNet(t *testing.T) (*sim.Kernel, *Network, map[NodeID]*int) {
	t.Helper()
	k := sim.NewKernel()
	n := NewNetwork(k, sim.NewRNG(1))
	lan := n.NewLAN(DefaultLANConfig("lan0"))
	got := map[NodeID]*int{}
	for id := NodeID(1); id <= 3; id++ {
		h, err := n.NewHost(id, lan)
		if err != nil {
			t.Fatal(err)
		}
		c := new(int)
		got[id] = c
		h.SetDeliver(func(pkt *Packet) { *c++ })
	}
	n.SetGroup(7, []NodeID{1, 2, 3})
	return k, n, got
}

func TestPartitionCutsCrossTrafficBothWays(t *testing.T) {
	k, n, got := partitionNet(t)
	n.Partition([]NodeID{3})
	if !n.PartitionActive() {
		t.Fatal("partition not active")
	}
	send := func(src, dst NodeID) {
		if err := n.Send(src, dst, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	send(1, 3) // majority -> minority: cut
	send(3, 1) // minority -> majority: cut
	send(1, 2) // within majority: delivered
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if *got[3] != 0 || *got[1] != 0 {
		t.Fatalf("cross-cut traffic delivered: to3=%d to1=%d", *got[3], *got[1])
	}
	if *got[2] != 1 {
		t.Fatalf("same-side traffic lost: to2=%d", *got[2])
	}
	if n.PartitionDrops() != 2 {
		t.Fatalf("partition drops = %d, want 2", n.PartitionDrops())
	}
}

func TestPartitionCutsMulticastOnlyAcrossTheCut(t *testing.T) {
	k, n, got := partitionNet(t)
	n.Partition([]NodeID{3})
	if err := n.Multicast(1, 7, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if *got[2] != 1 {
		t.Fatalf("same-side member missed multicast: got %d", *got[2])
	}
	if *got[3] != 0 {
		t.Fatalf("cut-off member received multicast: got %d", *got[3])
	}
}

func TestPartitionInFlightPacketsAreLostAndHealRestores(t *testing.T) {
	k, n, got := partitionNet(t)
	// Send before the cut; the packet is still in flight when the
	// partition starts, so it dies at the cut.
	if err := n.Send(1, 3, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	n.Partition([]NodeID{3})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if *got[3] != 0 {
		t.Fatal("in-flight packet survived the cut")
	}
	n.Heal()
	if n.PartitionActive() {
		t.Fatal("partition still active after heal")
	}
	if err := n.Send(1, 3, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if *got[3] != 1 {
		t.Fatalf("post-heal delivery count = %d, want 1", *got[3])
	}
}

func TestPartitionTraceRecordsCutEvents(t *testing.T) {
	k, n, _ := partitionNet(t)
	var cuts int
	n.SetTracer(func(r TraceRecord) {
		if r.Event == TraceCut {
			cuts++
		}
	})
	n.Partition([]NodeID{2})
	if err := n.Send(1, 2, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cuts != 1 {
		t.Fatalf("cut trace events = %d, want 1", cuts)
	}
	if TraceCut.String() != "cut" {
		t.Fatalf("TraceCut renders as %q", TraceCut.String())
	}
}
