package simnet

import "repro/internal/sim"

// LossModel decides, per received message, whether to discard it. Models are
// stateful and must not be shared between hosts. These implement the
// fault types of Section 5.3.
type LossModel interface {
	// Drop reports whether the message arriving at now is discarded.
	Drop(g *sim.RNG, now sim.Time) bool
}

// RandomLoss discards each message independently with probability P,
// modeling transmission errors.
type RandomLoss struct {
	// P is the drop probability in [0, 1].
	P float64
}

var _ LossModel = (*RandomLoss)(nil)

// Drop implements LossModel.
func (l *RandomLoss) Drop(g *sim.RNG, _ sim.Time) bool { return g.Bool(l.P) }

// BurstyLoss alternates periods with randomly generated durations in which
// messages are received or discarded, modeling network congestion
// (Section 5.3). Periods are time intervals: every message arriving during a
// discard period is lost, so consecutive losses are correlated. Durations
// are uniformly distributed around their means, and good-period means are
// sized so the long-run fraction of time (hence, for roughly uniform
// arrivals, of messages) lost equals Rate.
type BurstyLoss struct {
	// Rate is the long-run fraction of messages lost (e.g. 0.05).
	Rate float64
	// MeanBurst is the mean discard-period duration. At the paper's
	// per-host message rates the default (50ms) corresponds to bursts
	// with an average length of about 5 messages.
	MeanBurst sim.Time

	inBurst bool
	until   sim.Time
	primed  bool
}

var _ LossModel = (*BurstyLoss)(nil)

// Drop implements LossModel.
func (l *BurstyLoss) Drop(g *sim.RNG, now sim.Time) bool {
	if l.Rate <= 0 {
		return false
	}
	if l.MeanBurst <= 0 {
		l.MeanBurst = 50 * sim.Millisecond
	}
	if !l.primed {
		l.primed = true
		l.inBurst = false
		l.until = now + l.drawPeriod(g, l.goodMean())
	}
	for now >= l.until {
		l.inBurst = !l.inBurst
		mean := l.goodMean()
		if l.inBurst {
			mean = l.MeanBurst
		}
		l.until += l.drawPeriod(g, mean)
	}
	return l.inBurst
}

func (l *BurstyLoss) goodMean() sim.Time {
	return sim.Time(float64(l.MeanBurst) * (1 - l.Rate) / l.Rate)
}

// drawPeriod draws a duration uniformly in (0, 2*mean], preserving the mean.
func (l *BurstyLoss) drawPeriod(g *sim.RNG, mean sim.Time) sim.Time {
	d := g.UniformDur(1, 2*mean)
	if d < 1 {
		d = 1
	}
	return d
}
