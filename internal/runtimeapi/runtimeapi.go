// Package runtimeapi defines the abstraction layer that the replication
// prototypes (group communication and certification, the "real code" under
// test) are written against.
//
// Mirroring Section 2.3 of the paper, the layer provides job scheduling,
// clock access, and a simplified datagram network interface in a
// single-threaded environment, and is implemented twice:
//
//   - internal/csrt bridges it onto the simulation kernel and simulated
//     network, profiling the real code and folding its CPU cost into the
//     simulated time line;
//   - the native implementation in this package bridges it onto the Go
//     runtime (time.Timer, net.UDPConn), so the same protocol code can be
//     deployed on a real network unchanged.
package runtimeapi

import (
	"errors"

	"repro/internal/sim"
)

// NodeID identifies a process (one replica's protocol stack endpoint).
type NodeID int32

// Group identifies a multicast group.
type Group int32

// Receiver is the upcall invoked when a datagram arrives. Implementations
// must treat it as real code: it runs single-threaded and its execution cost
// is accounted to the node's CPU.
type Receiver func(src NodeID, data []byte)

// Timer is a cancellable pending callback.
type Timer interface {
	// Cancel stops the timer, reporting whether it was still pending.
	Cancel() bool
}

// Errors returned by Runtime network operations.
var (
	// ErrTooBig indicates the payload exceeds the maximum packet size.
	ErrTooBig = errors.New("runtimeapi: payload exceeds MTU")
	// ErrDown indicates the local node has been stopped or crashed.
	ErrDown = errors.New("runtimeapi: node is down")
)

// Runtime is the single-threaded execution environment for protocol code.
//
// All methods must be called from the runtime's own dispatch context (i.e.
// from within a Receiver or Timer callback, or before the run starts); the
// environment never invokes two callbacks concurrently.
type Runtime interface {
	// Self reports the local node identifier.
	Self() NodeID

	// Now reports the node-local clock. Under simulation this is virtual
	// time including the measured cost of the current job so far; under
	// the native bridge it is monotonic wall time since start.
	Now() sim.Time

	// Schedule runs fn after d. fn is real code: it is profiled and its
	// cost occupies the node's CPU.
	Schedule(d sim.Time, fn func()) Timer

	// StartJob runs fn after d like Schedule but fire-and-forget: no
	// cancellation handle is returned, which lets the runtime recycle
	// its timer bookkeeping. Prefer it for one-shot jobs on hot paths.
	StartJob(d sim.Time, fn func())

	// Charge accounts explicit model cost for the current job. Under a
	// wall-clock profiler this is a no-op; under the deterministic cost
	// model it is how real code declares its CPU consumption.
	Charge(cost sim.Time)

	// Rand returns the node's deterministic random stream.
	Rand() *sim.RNG

	// Send transmits a unicast datagram (unreliable, unordered).
	// Ownership of data passes to the runtime: the caller must not
	// modify the buffer after the call. The simulated transport is
	// zero-copy — receivers parse, and may retain, the sender's bytes.
	Send(dst NodeID, data []byte) error

	// Multicast transmits a datagram to every member of g, excluding the
	// sender (unreliable). On LAN topologies this maps to one wire
	// transmission (IP multicast); elsewhere the protocol layer falls
	// back to unicast. As with Send, data is handed off and must not be
	// modified by the caller afterwards.
	Multicast(g Group, data []byte) error

	// SetReceiver installs the datagram upcall. It must be set before
	// traffic arrives.
	SetReceiver(r Receiver)

	// MTU reports the maximum payload size accepted by Send/Multicast.
	MTU() int
}
