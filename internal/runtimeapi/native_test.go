package runtimeapi_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/runtimeapi"
	"repro/internal/sim"
)

// newPair builds two native runtimes that know each other's loopback
// addresses (bind to learn ports, rebind with full peer tables).
func newPair(t *testing.T) (*runtimeapi.Native, *runtimeapi.Native) {
	t.Helper()
	pa, err := runtimeapi.NewNative(runtimeapi.NativeConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrA := pa.LocalAddr()
	pa.Close()
	pb, err := runtimeapi.NewNative(runtimeapi.NativeConfig{Self: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrB := pb.LocalAddr()
	pb.Close()

	a, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
		Self: 1, Listen: addrA, Seed: 1,
		Peers:  map[runtimeapi.NodeID]string{1: addrA, 2: addrB},
		Groups: map[runtimeapi.Group][]runtimeapi.NodeID{1: {1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runtimeapi.NewNative(runtimeapi.NativeConfig{
		Self: 2, Listen: addrB, Seed: 2,
		Peers:  map[runtimeapi.NodeID]string{1: addrA, 2: addrB},
		Groups: map[runtimeapi.Group][]runtimeapi.NodeID{1: {1, 2}},
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestNativeSendReceive(t *testing.T) {
	a, b := newPair(t)
	got := make(chan string, 1)
	b.SetReceiver(func(src runtimeapi.NodeID, data []byte) {
		got <- fmt.Sprintf("%d:%s", src, data)
	})
	if err := a.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "1:hello" {
			t.Fatalf("got %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived")
	}
}

func TestNativeMulticastExcludesSender(t *testing.T) {
	a, b := newPair(t)
	gotB := make(chan struct{}, 10)
	gotA := make(chan struct{}, 10)
	a.SetReceiver(func(runtimeapi.NodeID, []byte) { gotA <- struct{}{} })
	b.SetReceiver(func(runtimeapi.NodeID, []byte) { gotB <- struct{}{} })
	if err := a.Multicast(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotB:
	case <-time.After(5 * time.Second):
		t.Fatal("multicast never reached member")
	}
	select {
	case <-gotA:
		t.Fatal("sender received its own multicast at transport level")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestNativeScheduleAndCancel(t *testing.T) {
	a, _ := newPair(t)
	fired := make(chan struct{})
	a.Schedule(20*sim.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	var mu sync.Mutex
	ran := false
	tm := a.Schedule(50*sim.Millisecond, func() {
		mu.Lock()
		ran = true
		mu.Unlock()
	})
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if ran {
		t.Fatal("cancelled timer fired")
	}
}

func TestNativeNowMonotonic(t *testing.T) {
	a, _ := newPair(t)
	t1 := a.Now()
	time.Sleep(10 * time.Millisecond)
	t2 := a.Now()
	if t2 <= t1 {
		t.Fatalf("clock not monotonic: %v then %v", t1, t2)
	}
}

func TestNativeErrors(t *testing.T) {
	a, _ := newPair(t)
	if err := a.Send(2, make([]byte, 2000)); err != runtimeapi.ErrTooBig {
		t.Fatalf("oversize: %v", err)
	}
	if err := a.Send(99, []byte("x")); err == nil {
		t.Fatal("unknown peer accepted")
	}
	if err := a.Multicast(99, []byte("x")); err == nil {
		t.Fatal("unknown group accepted")
	}
	if a.MTU() != 1400 {
		t.Fatalf("default MTU = %d", a.MTU())
	}
	if a.Self() != 1 {
		t.Fatal("self wrong")
	}
	if a.Rand() == nil {
		t.Fatal("nil RNG")
	}
	a.Close()
	if err := a.Send(2, []byte("x")); err != runtimeapi.ErrDown {
		t.Fatalf("send after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
