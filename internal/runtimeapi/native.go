package runtimeapi

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// NativeConfig configures a Native runtime: the real-network bridge of the
// abstraction layer (java.util.Timer / java.net.DatagramSocket in the
// paper's prototype; time.Timer / net.UDPConn here).
type NativeConfig struct {
	// Self is the local node ID.
	Self NodeID
	// Listen is the local UDP address to bind, e.g. "127.0.0.1:7001".
	Listen string
	// Peers maps every node ID (including Self) to its UDP address.
	Peers map[NodeID]string
	// Groups maps multicast groups to member node IDs. The native bridge
	// implements group sends as iterated unicast.
	Groups map[Group][]NodeID
	// MTU bounds payload sizes; defaults to 1400 if zero.
	MTU int
	// Seed seeds the node's random stream.
	Seed int64
}

// Native runs protocol code on the real Go runtime and network. All
// callbacks (receive upcalls and timers) are serialized onto one internal
// goroutine, preserving the single-threaded contract of Runtime.
type Native struct {
	cfg   NativeConfig
	conn  *net.UDPConn
	peers map[NodeID]*net.UDPAddr

	start time.Time
	rng   *sim.RNG

	mu     sync.Mutex
	recv   Receiver
	closed bool

	loopCh chan func()
	done   chan struct{}
	wg     sync.WaitGroup
}

var _ Runtime = (*Native)(nil)

const nativeHeader = 4 // leading src NodeID

// NewNative binds the local socket and starts the dispatch loop. The caller
// must Close the runtime when finished.
func NewNative(cfg NativeConfig) (*Native, error) {
	if cfg.MTU == 0 {
		cfg.MTU = 1400
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("runtimeapi: resolve listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("runtimeapi: listen: %w", err)
	}
	n := &Native{
		cfg:    cfg,
		conn:   conn,
		peers:  make(map[NodeID]*net.UDPAddr, len(cfg.Peers)),
		start:  time.Now(),
		rng:    sim.NewRNG(cfg.Seed),
		loopCh: make(chan func(), 1024),
		done:   make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("runtimeapi: resolve peer %d: %w", id, err)
		}
		n.peers[id] = ua
	}
	n.wg.Add(2)
	go n.readLoop()
	go n.dispatchLoop()
	return n, nil
}

// LocalAddr reports the bound UDP address (useful when Listen used port 0).
func (n *Native) LocalAddr() string { return n.conn.LocalAddr().String() }

// Close stops the runtime. Pending callbacks are discarded.
func (n *Native) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	err := n.conn.Close()
	n.wg.Wait()
	return err
}

func (n *Native) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *Native) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 65536)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if sz < nativeHeader {
			continue
		}
		src := NodeID(binary.BigEndian.Uint32(buf[:4]))
		data := make([]byte, sz-nativeHeader)
		copy(data, buf[nativeHeader:sz])
		n.post(func() {
			n.mu.Lock()
			r := n.recv
			n.mu.Unlock()
			if r != nil {
				r(src, data)
			}
		})
	}
}

func (n *Native) dispatchLoop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.loopCh:
			fn()
		case <-n.done:
			return
		}
	}
}

func (n *Native) post(fn func()) {
	select {
	case n.loopCh <- fn:
	case <-n.done:
	}
}

// Self implements Runtime.
func (n *Native) Self() NodeID { return n.cfg.Self }

// Now implements Runtime: monotonic nanoseconds since the runtime started.
func (n *Native) Now() sim.Time { return sim.FromDuration(time.Since(n.start)) }

// Charge implements Runtime; real executions are measured by the OS, so the
// model cost declaration is a no-op here.
func (n *Native) Charge(sim.Time) {}

// Rand implements Runtime.
func (n *Native) Rand() *sim.RNG { return n.rng }

// MTU implements Runtime.
func (n *Native) MTU() int { return n.cfg.MTU }

// SetReceiver implements Runtime.
func (n *Native) SetReceiver(r Receiver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recv = r
}

type nativeTimer struct {
	t       *time.Timer
	stopped bool
	mu      sync.Mutex
}

func (t *nativeTimer) Cancel() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return t.t.Stop()
}

// Schedule implements Runtime. The callback is serialized onto the dispatch
// loop.
func (n *Native) Schedule(d sim.Time, fn func()) Timer {
	nt := &nativeTimer{}
	nt.t = time.AfterFunc(d.Duration(), func() {
		n.post(func() {
			nt.mu.Lock()
			stopped := nt.stopped
			nt.stopped = true
			nt.mu.Unlock()
			if !stopped {
				fn()
			}
		})
	})
	return nt
}

// StartJob implements Runtime: a fire-and-forget Schedule. The native
// bridge has no bookkeeping worth recycling, so it simply drops the handle.
func (n *Native) StartJob(d sim.Time, fn func()) {
	time.AfterFunc(d.Duration(), func() { n.post(fn) })
}

// Send implements Runtime.
func (n *Native) Send(dst NodeID, data []byte) error {
	if n.isClosed() {
		return ErrDown
	}
	if len(data) > n.cfg.MTU {
		return ErrTooBig
	}
	addr, ok := n.peers[dst]
	if !ok {
		return fmt.Errorf("runtimeapi: unknown peer %d", dst)
	}
	buf := make([]byte, nativeHeader+len(data))
	binary.BigEndian.PutUint32(buf[:4], uint32(n.cfg.Self))
	copy(buf[nativeHeader:], data)
	if _, err := n.conn.WriteToUDP(buf, addr); err != nil {
		return fmt.Errorf("runtimeapi: send to %d: %w", dst, err)
	}
	return nil
}

// Multicast implements Runtime by iterated unicast, as the paper's prototype
// does outside IP-multicast-capable LANs.
func (n *Native) Multicast(g Group, data []byte) error {
	members, ok := n.cfg.Groups[g]
	if !ok {
		return fmt.Errorf("runtimeapi: unknown group %d", g)
	}
	for _, m := range members {
		if m == n.cfg.Self {
			continue
		}
		if err := n.Send(m, data); err != nil {
			return err
		}
	}
	return nil
}
