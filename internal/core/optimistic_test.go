package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/gcs"
	"repro/internal/sim"
)

// tightBuffers reproduces the paper's constrained buffer pool, amplifying
// retransmission-driven reordering under loss.
func tightBuffers(c *gcs.Config) { c.BufferBytes = 96 * 1024 }

// TestOptimisticFaultFreeLowerDecisionLatency is the protocol-comparison
// acceptance check: on a fault-free LAN the optimistic variant must decide
// certification strictly earlier than the conservative one — the tentative
// verdict lands one ordering round before the sequencer's assignment — at
// equal throughput (the same transactions commit, in the same order).
func TestOptimisticFaultFreeLowerDecisionLatency(t *testing.T) {
	run := func(p Protocol) (*Model, *Results) {
		return runModel(t, Config{
			Sites:      3,
			Clients:    90,
			TotalTxns:  500,
			Seed:       31,
			Protocol:   p,
			MaxSimTime: 10 * sim.Minute,
		})
	}
	mc, rc := run(ProtocolConservative)
	mo, ro := run(ProtocolOptimistic)

	if rc.SafetyErr != nil || ro.SafetyErr != nil {
		t.Fatalf("safety: conservative=%v optimistic=%v", rc.SafetyErr, ro.SafetyErr)
	}
	if rc.CertDrops != 0 || ro.CertDrops != 0 {
		t.Fatalf("drops: conservative=%d optimistic=%d", rc.CertDrops, ro.CertDrops)
	}
	// Equal throughput: the protocols decide identically, so the same
	// transactions commit — position by position.
	if rc.Committed != ro.Committed {
		t.Fatalf("committed: conservative=%d optimistic=%d", rc.Committed, ro.Committed)
	}
	consLog := mc.Sites()[0].Replica.CommitLog().Entries()
	optLog := mo.Sites()[0].Replica.CommitLog().Entries()
	if len(consLog) != len(optLog) {
		t.Fatalf("commit logs: conservative=%d optimistic=%d", len(consLog), len(optLog))
	}
	for i := range consLog {
		if consLog[i] != optLog[i] {
			t.Fatalf("position %d: conservative %+v, optimistic %+v", i, consLog[i], optLog[i])
		}
	}
	// The headline claim: strictly lower mean certification-decision
	// latency, while the final outcome latency stays in the same regime.
	if ro.MeanCertDecideMS >= rc.MeanCertDecideMS {
		t.Fatalf("optimistic decide latency %.3fms not below conservative %.3fms",
			ro.MeanCertDecideMS, rc.MeanCertDecideMS)
	}
	// Under the conservative protocol decision and outcome coincide.
	if rc.MeanCertDecideMS != rc.CertLat.Mean() {
		t.Fatalf("conservative decide %.3fms != outcome %.3fms",
			rc.MeanCertDecideMS, rc.CertLat.Mean())
	}
	// The pipeline actually ran: followers speculated and pre-applied.
	if ro.Tentative == 0 || ro.PreApplied == 0 {
		t.Fatalf("optimistic run never speculated: tentative=%d preapplied=%d",
			ro.Tentative, ro.PreApplied)
	}
	// Even fault-free, concurrent casts can spontaneously reorder (a
	// sender sees its own message instantly, the sequencer may order a
	// competing one first) — but mismatches must be rare, not the norm.
	if ro.Rollbacks*20 > ro.Tentative {
		t.Fatalf("fault-free optimistic run rolled back %d of %d speculations",
			ro.Rollbacks, ro.Tentative)
	}
}

// TestOptimisticRollbackPathUnderBurstyLossAndDrift drives the rollback
// machinery for real: bursty loss plus clock drift reorder the spontaneous
// delivery against the final order, forcing tentative/final mismatches. The
// run must exercise rollbacks and still commit the identical sequence at
// every operational site.
func TestOptimisticRollbackPathUnderBurstyLossAndDrift(t *testing.T) {
	m, r := runModel(t, Config{
		Sites:      3,
		Clients:    120,
		TotalTxns:  600,
		Seed:       35,
		Protocol:   ProtocolOptimistic,
		MaxSimTime: 10 * sim.Minute,
		Faults: faults.Config{
			ClockDriftRate: 0.05,
			Loss:           faults.Loss{Kind: faults.LossBursty, Rate: 0.08, MeanBurst: 5},
		},
		GCSTweak: tightBuffers,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under bursty loss + drift: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("%d local/global inconsistencies", r.Inconsistencies)
	}
	if r.GCS.Mispredicted == 0 {
		t.Fatal("no stack-level order mispredictions: the schedule exercised nothing")
	}
	if r.Rollbacks == 0 {
		t.Fatal("no replica-level rollbacks: the undo path went untested")
	}
	if r.Recertified == 0 {
		t.Fatal("no re-certifications after rollback")
	}
	// Identical commit sequences at all operational sites, re-checked
	// explicitly against the internal/check verdict surface.
	if v := check.Logs(siteLogs(m)); v != nil {
		t.Fatalf("checker flagged the run: %v", v)
	}
	ref := m.Sites()[0].Replica.CommitLog().Entries()
	if len(ref) == 0 {
		t.Fatal("nothing committed under faults")
	}
	for _, s := range m.Sites()[1:] {
		log := s.Replica.CommitLog().Entries()
		if len(log) != len(ref) {
			t.Fatalf("site %d committed %d, site 1 committed %d", s.ID, len(log), len(ref))
		}
		for i := range ref {
			if log[i] != ref[i] {
				t.Fatalf("site %d diverges at %d: %+v vs %+v", s.ID, i, log[i], ref[i])
			}
		}
	}
}
