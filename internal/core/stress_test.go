package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// The kitchen sink: five replicas under simultaneous clock drift, scheduling
// latency, random loss, and a mid-run crash — every fault type of
// Section 5.3 at once. The safety property must still hold.
func TestCombinedFaultStress(t *testing.T) {
	for _, seed := range []int64{101, 202} {
		r := run(t, Config{
			Sites:     5,
			Clients:   250,
			TotalTxns: 1200,
			Seed:      seed,
			Faults: faults.Config{
				ClockDriftRate:    0.03,
				ClockDriftSites:   []int32{2, 4},
				SchedLatencyMean:  2 * sim.Millisecond,
				SchedLatencySites: []int32{3},
				Loss:              faults.Loss{Kind: faults.LossRandom, Rate: 0.03},
				Crashes:           []faults.Crash{{Site: 5, At: 15 * sim.Second}},
			},
			MaxSimTime: 20 * sim.Minute,
		})
		if r.SafetyErr != nil {
			t.Fatalf("seed %d: safety: %v", seed, r.SafetyErr)
		}
		if r.Inconsistencies != 0 {
			t.Fatalf("seed %d: inconsistencies %d", seed, r.Inconsistencies)
		}
		if r.GCS.ViewChanges == 0 {
			t.Fatalf("seed %d: crash produced no view change", seed)
		}
		live := 0
		for _, s := range r.Sites {
			if !s.Crashed && s.Committed > 0 {
				live++
			}
		}
		if live != 4 {
			t.Fatalf("seed %d: %d live committing sites, want 4", seed, live)
		}
	}
}
