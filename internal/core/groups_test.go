package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/gcs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func runGroups(t *testing.T, cfg Config) *Results {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func groupCfg(protocol Protocol, seed int64) Config {
	return Config{
		Groups:    3,
		Sites:     2,
		Protocol:  protocol,
		Clients:   60,
		TotalTxns: 1500,
		Seed:      seed,
	}
}

// TestGroupsEndToEnd drives the full partial-replication model: three groups
// of two sites, both protocol variants. The run must commit work, resolve
// multi-group transactions through the cross-group commit round, and pass
// the per-group and cross-group safety checks.
func TestGroupsEndToEnd(t *testing.T) {
	for _, p := range Protocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			r := runGroups(t, groupCfg(p, 7))
			if r.SafetyErr != nil {
				t.Fatalf("safety: %v", r.SafetyErr)
			}
			if r.Inconsistencies != 0 {
				t.Fatalf("inconsistencies: %d", r.Inconsistencies)
			}
			if r.CertDrops != 0 || r.GCS.ParseErrors != 0 {
				t.Fatalf("drops: cert=%d parse=%d", r.CertDrops, r.GCS.ParseErrors)
			}
			if r.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if r.MultiGroupTxns == 0 {
				t.Fatal("no cross-group transaction was ever initiated")
			}
			if r.MultiGroupCommitted == 0 {
				t.Fatal("no cross-group transaction committed")
			}
			if r.Groups != 3 {
				t.Fatalf("Groups = %d, want 3", r.Groups)
			}
			for _, sr := range r.Sites {
				if sr.Group < 1 || sr.Group > 3 {
					t.Fatalf("site %d reports group %d", sr.Site, sr.Group)
				}
			}
			if !strings.Contains(r.Summary(), "multigroup=") {
				t.Fatalf("summary misses group detail: %s", r.Summary())
			}
		})
	}
}

// TestGroupsDeterminism replays the same seed and demands identical results.
func TestGroupsDeterminism(t *testing.T) {
	a := runGroups(t, groupCfg(ProtocolConservative, 11))
	b := runGroups(t, groupCfg(ProtocolConservative, 11))
	if a.Summary() != b.Summary() {
		t.Fatalf("replay diverged:\n  a: %s\n  b: %s", a.Summary(), b.Summary())
	}
	if a.Events != b.Events {
		t.Fatalf("event counts diverged: %d vs %d", a.Events, b.Events)
	}
	if a.MultiGroupCommitted != b.MultiGroupCommitted || a.MultiGroupAborted != b.MultiGroupAborted {
		t.Fatalf("cross-group outcomes diverged: %d/%d vs %d/%d",
			a.MultiGroupCommitted, a.MultiGroupAborted, b.MultiGroupCommitted, b.MultiGroupAborted)
	}
}

// TestGroupsCoordinatorCrash crashes a site mid-run — cross-group rounds it
// coordinated must be taken over by a surviving home-group member, and the
// run must still end safe.
func TestGroupsCoordinatorCrash(t *testing.T) {
	cfg := groupCfg(ProtocolConservative, 13)
	cfg.Sites = 3 // keep the crashed site's group at a working majority
	cfg.Clients = 90
	cfg.Faults.Crashes = []faults.Crash{{Site: 1, At: 2 * sim.Second}}
	r := runGroups(t, cfg)
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("inconsistencies: %d", r.Inconsistencies)
	}
	if r.MultiGroupCommitted == 0 {
		t.Fatal("no cross-group transaction committed")
	}
}

// TestGroupsValidation exercises the config combinations group mode rejects.
func TestGroupsValidation(t *testing.T) {
	base := func() Config { return groupCfg(ProtocolConservative, 1) }
	cases := map[string]func(*Config){
		"one site per group":   func(c *Config) { c.Sites = 1 },
		"dedicated sequencer":  func(c *Config) { c.DedicatedSequencer = true },
		"replication degree":   func(c *Config) { c.ReplicationDegree = 1 },
		"table-lock upgrade":   func(c *Config) { c.ReadSetThreshold = 10 },
		"crash recovery":       func(c *Config) { c.Faults.Recovers = []faults.Recover{{Site: 1, At: sim.Second}} },
		"too many total sites": func(c *Config) { c.Groups = 12; c.Sites = 3 },
	}
	for name, mutate := range cases {
		cfg := base()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted, want error", name)
		}
	}
}

// TestGroupsSmallMTUFragmentsPrepares squeezes the MTU until prepares
// no longer fit a single datagram even with their value padding stripped:
// the relay path must fragment them (MsgPrepFrag), remote members must
// reassemble and answer, and every safety check must still pass. This is the
// regression test for the oversize-prepare hole, which used to hand the
// network an unsendable frame.
func TestGroupsSmallMTUFragmentsPrepares(t *testing.T) {
	for _, p := range Protocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := groupCfg(p, 11)
			// The relay MTU is the LAN's; keep the stream's chunk bound
			// (MaxPacket) at the same value so ordered-stream datagrams
			// still fit their port.
			cfg.LAN = simnet.LANConfig{MTU: 96}
			cfg.GCSTweak = func(g *gcs.Config) { g.MaxPacket = 96 }
			r := runGroups(t, cfg)
			if r.SafetyErr != nil {
				t.Fatalf("safety: %v", r.SafetyErr)
			}
			if r.Inconsistencies != 0 || r.CertDrops != 0 {
				t.Fatalf("inconsistencies=%d certdrops=%d", r.Inconsistencies, r.CertDrops)
			}
			if r.MultiGroupCommitted == 0 {
				t.Fatal("no cross-group transaction committed")
			}
			if r.XPrepFrags == 0 {
				t.Fatal("no prepare was ever fragmented at a 96-byte MTU")
			}
		})
	}
}
