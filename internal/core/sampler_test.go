package core

import (
	"testing"

	"repro/internal/dbsm"
	"repro/internal/sim"
)

func TestResourceSampler(t *testing.T) {
	m, err := New(Config{Sites: 3, Clients: 200, TotalTxns: 600, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	log := m.StartResourceSampler(200 * sim.Millisecond)
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if len(log.Samples()) == 0 {
		t.Fatal("no samples recorded")
	}
	// Series per site exist and timestamps are monotone.
	for site := 1; site <= 3; site++ {
		series := log.SiteSeries(dbsm.SiteID(site))
		if len(series) < 10 {
			t.Fatalf("site %d has %d samples", site, len(series))
		}
		for i := 1; i < len(series); i++ {
			if series[i].At < series[i-1].At {
				t.Fatal("non-monotone sample times")
			}
		}
	}
	// Under load, some sample must show a busy CPU and a nonzero queue
	// somewhere (200 clients on one CPU per site is far beyond saturation).
	busySeen, queueSeen := false, false
	for _, s := range log.Samples() {
		if s.CPUBusy > 0 {
			busySeen = true
		}
		if s.CPUQueue > 0 || s.DiskQueue > 0 {
			queueSeen = true
		}
	}
	if !busySeen || !queueSeen {
		t.Fatalf("sampler saw no activity: busy=%v queue=%v", busySeen, queueSeen)
	}
	if log.MaxCPUQueue(1) == 0 && log.MaxCPUQueue(2) == 0 && log.MaxCPUQueue(3) == 0 {
		t.Fatal("no CPU queueing observed at a saturating load")
	}
}
