package core

import (
	"testing"

	"repro/internal/dbsm"
	"repro/internal/sim"
	"repro/internal/tpcc"
)

func TestReplicatesAtPlacement(t *testing.T) {
	// 6 sites, degree 2: warehouse 0 at sites 0,1; warehouse 5 at 5,0.
	if !replicatesAt(0, 0, 6, 2) || !replicatesAt(0, 1, 6, 2) || replicatesAt(0, 2, 6, 2) {
		t.Fatal("warehouse 0 placement wrong")
	}
	if !replicatesAt(5, 5, 6, 2) || !replicatesAt(5, 0, 6, 2) || replicatesAt(5, 3, 6, 2) {
		t.Fatal("wrap-around placement wrong")
	}
	// Degree >= sites: everywhere.
	for idx := 0; idx < 3; idx++ {
		if !replicatesAt(7, idx, 3, 3) || !replicatesAt(7, idx, 3, 0) {
			t.Fatal("full replication must place everywhere")
		}
	}
	// Every warehouse gets exactly `degree` replicas.
	for wh := 0; wh < 30; wh++ {
		n := 0
		for idx := 0; idx < 6; idx++ {
			if replicatesAt(wh, idx, 6, 2) {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("warehouse %d has %d replicas, want 2", wh, n)
		}
	}
}

func TestReplicatesFuncCatalogEverywhere(t *testing.T) {
	f := replicatesFunc(2, 6, 2)
	if f == nil {
		t.Fatal("expected a predicate for partial replication")
	}
	if !f(dbsm.MakeTupleID(8 /* item */, 42)) {
		t.Fatal("item catalog must be everywhere")
	}
	if replicatesFunc(0, 3, 0) != nil || replicatesFunc(0, 3, 3) != nil {
		t.Fatal("full replication must return nil")
	}
}

func TestWarehouseOfInserts(t *testing.T) {
	g := tpcc.NewGenerator(3, 20, tpcc.DefaultCalibration(), newTestRNG())
	for i := 0; i < 500; i++ {
		txn := g.Next(i % 200)
		home := (i % 200) / tpcc.ClientsPerWarehouse
		for _, w := range txn.WriteSet {
			wh, ok := tpcc.WarehouseOf(w)
			if !ok {
				t.Fatalf("write without warehouse: table %d", w.Table())
			}
			// Payment may hit a remote warehouse; all writes must
			// still resolve to SOME valid warehouse.
			if wh < 0 || wh >= 20 {
				t.Fatalf("warehouse out of range: %d (home %d)", wh, home)
			}
		}
	}
}

// Partial replication: disk load per site drops with the replication degree
// while the safety property is untouched.
func TestPartialReplicationReducesDiskLoad(t *testing.T) {
	full := run(t, Config{Sites: 6, Clients: 300, TotalTxns: 1500, Seed: 51})
	partial := run(t, Config{Sites: 6, Clients: 300, TotalTxns: 1500, Seed: 51, ReplicationDegree: 2})
	if full.SafetyErr != nil || partial.SafetyErr != nil {
		t.Fatalf("safety: %v / %v", full.SafetyErr, partial.SafetyErr)
	}
	if partial.Committed < full.Committed*9/10 {
		t.Fatalf("partial replication lost throughput: %d vs %d",
			partial.Committed, full.Committed)
	}
	// Under full replication every site writes every row: per-site disk
	// usage should drop to roughly degree/sites (2/6 = 1/3) plus the
	// commit records. Allow a generous band.
	ratio := partial.DiskUtilPct / full.DiskUtilPct
	if ratio > 0.6 {
		t.Fatalf("disk usage ratio = %.2f, want ~1/3 (partial %0.1f%%, full %0.1f%%)",
			ratio, partial.DiskUtilPct, full.DiskUtilPct)
	}
	if ratio < 0.15 {
		t.Fatalf("disk usage ratio = %.2f suspiciously low", ratio)
	}
}

// All sites must still agree on the committed sequence even though most
// apply only fragments of each write-set.
func TestPartialReplicationSafetyUnderLoad(t *testing.T) {
	r := run(t, Config{Sites: 3, Clients: 120, TotalTxns: 800, Seed: 52, ReplicationDegree: 1})
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("inconsistencies: %d", r.Inconsistencies)
	}
}

func newTestRNG() *sim.RNG { return sim.NewRNG(7) }
