package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runModel runs a config and returns both the model (for commit-log access)
// and its results — the shape the promoted safety regressions need.
func runModel(t *testing.T, cfg Config) (*Model, *Results) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

// siteLogs assembles checker input from a finished model.
func siteLogs(m *Model) []check.SiteLog {
	out := make([]check.SiteLog, 0, len(m.Sites()))
	for _, s := range m.Sites() {
		out = append(out, check.SiteLog{
			Site:        s.ID,
			Operational: s.operational(),
			Entries:     s.Replica.CommitLog().Entries(),
		})
	}
	return out
}

// TestCrashedSiteLogIsPrefixOfSurvivors promotes cmd/faultsim's inline
// crashed-site check into a CI regression: after a mid-run crash, the
// internal/check safety condition must hold, and the crashed site's log must
// be a strict, non-empty prefix of the survivors' common sequence.
func TestCrashedSiteLogIsPrefixOfSurvivors(t *testing.T) {
	m, r := runModel(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 400,
		Seed:      21,
		Faults: faults.Config{
			Crashes: []faults.Crash{{Site: 3, At: 15 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under crash: %v", r.SafetyErr)
	}
	logs := siteLogs(m)
	if v := check.Logs(logs); v != nil {
		t.Fatalf("checker flagged a safe run: %v", v)
	}
	var crashed, survivor []check.SiteLog
	for _, l := range logs {
		if l.Operational {
			survivor = append(survivor, l)
		} else {
			crashed = append(crashed, l)
		}
	}
	if len(crashed) != 1 || len(survivor) != 2 {
		t.Fatalf("crashed=%d survivors=%d", len(crashed), len(survivor))
	}
	if n := len(crashed[0].Entries); n == 0 {
		t.Fatal("crashed site committed nothing before the crash")
	} else if n >= len(survivor[0].Entries) {
		t.Fatalf("crashed site's %d commits not a strict prefix of the survivors' %d", n, len(survivor[0].Entries))
	}
	for i, e := range crashed[0].Entries {
		if e != survivor[0].Entries[i] {
			t.Fatalf("prefix mismatch at %d: %+v vs %+v", i, e, survivor[0].Entries[i])
		}
	}
	// The mutation side of the regression: corrupting the crashed site's
	// last entry must flip the verdict to non-prefix.
	mutated := crashed[0]
	mutated.Entries = append([]trace.CommitEntry{}, mutated.Entries...)
	mutated.Entries[len(mutated.Entries)-1].TID ^= 0xdead
	v := check.Logs([]check.SiteLog{survivor[0], survivor[1], mutated})
	if v == nil || v.Kind != check.KindNonPrefix {
		t.Fatalf("corrupted crashed log not flagged as non-prefix: %v", v)
	}
}

// TestPartitionMinorityPrefixAndMajorityProgress: a partition-and-heal
// schedule must leave the majority committing (after a view change excludes
// the minority) and the minority's log a prefix of the survivors'.
func TestPartitionMinorityPrefixAndMajorityProgress(t *testing.T) {
	m, r := runModel(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 400,
		Seed:      22,
		Faults: faults.Config{
			Partitions: []faults.Partition{{Sites: []int32{3}, At: 10 * sim.Second, Heal: 25 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under partition: %v", r.SafetyErr)
	}
	if r.GCS.ViewChanges == 0 {
		t.Fatal("majority never installed a view excluding the minority")
	}
	var minority, majority *Site
	for _, s := range m.Sites() {
		if s.partitioned {
			minority = s
		} else if majority == nil {
			majority = s
		}
	}
	if minority == nil || minority.ID != 3 {
		t.Fatal("site 3 not marked partitioned")
	}
	if !minority.Stack.Stopped() {
		t.Fatal("minority member did not wedge on quorum loss")
	}
	majLog := majority.Replica.CommitLog().Entries()
	minLog := minority.Replica.CommitLog().Entries()
	if len(minLog) == 0 {
		t.Fatal("minority committed nothing before the cut")
	}
	if len(minLog) >= len(majLog) {
		t.Fatalf("minority log (%d) not a strict prefix of the majority's (%d)", len(minLog), len(majLog))
	}
	for _, sr := range r.Sites {
		if sr.Site == 3 {
			if !sr.Partitioned {
				t.Fatal("results do not report site 3 as partitioned")
			}
		} else if sr.Committed == 0 {
			t.Fatalf("majority site %d committed nothing", sr.Site)
		}
	}
}

// TestPartitionValidation rejects non-minority, ill-ordered, overlapping,
// and quorum-breaking fault combinations — and accepts sequential cuts.
func TestPartitionValidation(t *testing.T) {
	bad := []faults.Config{
		{Partitions: []faults.Partition{{Sites: []int32{1, 2}, At: sim.Second}}},                    // majority isolated
		{Partitions: []faults.Partition{{Sites: nil, At: sim.Second}}},                              // empty
		{Partitions: []faults.Partition{{Sites: []int32{9}, At: sim.Second}}},                       // unknown site
		{Partitions: []faults.Partition{{Sites: []int32{3}, At: 2 * sim.Second, Heal: sim.Second}}}, // heals before cut
		{Partitions: []faults.Partition{ // overlapping cuts
			{Sites: []int32{3}, At: sim.Second, Heal: 10 * sim.Second},
			{Sites: []int32{2}, At: 5 * sim.Second, Heal: 15 * sim.Second},
		}},
		{Partitions: []faults.Partition{ // a never-healing cut followed by another
			{Sites: []int32{3}, At: sim.Second},
			{Sites: []int32{2}, At: 5 * sim.Second, Heal: 15 * sim.Second},
		}},
		{ // crash + partition disable 2 of 3 sites: no strict majority left
			Crashes:    []faults.Crash{{Site: 2, At: sim.Second}},
			Partitions: []faults.Partition{{Sites: []int32{3}, At: 5 * sim.Second}},
		},
	}
	for i, f := range bad {
		if _, err := New(Config{Sites: 3, Faults: f}); err == nil {
			t.Fatalf("case %d: invalid fault combination accepted", i)
		}
	}
	// Sequential, non-overlapping cuts of the same minority are fine.
	ok := faults.Config{Partitions: []faults.Partition{
		{Sites: []int32{3}, At: sim.Second, Heal: 2 * sim.Second},
		{Sites: []int32{3}, At: 5 * sim.Second, Heal: 6 * sim.Second},
	}}
	if _, err := New(Config{Sites: 3, Faults: ok}); err != nil {
		t.Fatalf("sequential partitions rejected: %v", err)
	}
}

// TestShortPartitionHealsBeforeDetection: a cut shorter than the failure
// detector's timeout must be absorbed by retransmission — no view change,
// no wedge, and full agreement (the minority log is held to the prefix rule
// but in fact catches back up).
func TestShortPartitionHealsBeforeDetection(t *testing.T) {
	m, r := runModel(t, Config{
		Sites:     3,
		Clients:   45,
		TotalTxns: 250,
		Seed:      23,
		Faults: faults.Config{
			Partitions: []faults.Partition{{Sites: []int32{2}, At: 8 * sim.Second, Heal: 8*sim.Second + 400*sim.Millisecond}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under short partition: %v", r.SafetyErr)
	}
	if r.GCS.QuorumLosses != 0 {
		t.Fatalf("quorum losses = %d for a sub-timeout cut", r.GCS.QuorumLosses)
	}
	for _, s := range m.Sites() {
		if s.Stack.Stopped() {
			t.Fatalf("site %d wedged under a sub-timeout cut", s.ID)
		}
	}
}
