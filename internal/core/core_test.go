package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

func run(t *testing.T, cfg Config) *Results {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCentralizedBaseline(t *testing.T) {
	r := run(t, Config{
		Sites:     1,
		Clients:   50,
		TotalTxns: 300,
		Seed:      1,
	})
	if r.Issued != 300 {
		t.Fatalf("issued = %d", r.Issued)
	}
	if r.Committed+r.Aborted != r.Submitted {
		t.Fatalf("accounting: submitted=%d committed=%d aborted=%d",
			r.Submitted, r.Committed, r.Aborted)
	}
	if r.Committed < 250 {
		t.Fatalf("committed = %d, too many aborts for a light load", r.Committed)
	}
	if r.TPM <= 0 || r.MeanLatencyMS <= 0 {
		t.Fatalf("metrics empty: %s", r.Summary())
	}
	if r.NetKBps != 0 {
		t.Fatalf("centralized run produced network traffic: %v KB/s", r.NetKBps)
	}
	if len(r.Classes) == 0 {
		t.Fatal("no class breakdown")
	}
}

func TestReplicatedThreeSites(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 400,
		Seed:      2,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("inconsistencies = %d", r.Inconsistencies)
	}
	if r.Committed < 300 {
		t.Fatalf("committed = %d", r.Committed)
	}
	if r.NetKBps <= 0 {
		t.Fatal("no network traffic in a replicated run")
	}
	if r.GCS.Delivered == 0 {
		t.Fatal("no total-order deliveries")
	}
	if r.CertLat.N() == 0 {
		t.Fatal("no certification latency samples")
	}
	// Update transactions must replicate: every site applies remote
	// write-sets.
	for _, sr := range r.Sites {
		if sr.RemoteApplied == 0 {
			t.Fatalf("site %d applied no remote transactions", sr.Site)
		}
	}
}

func TestReplicatedRunIsDeterministic(t *testing.T) {
	cfg := Config{Sites: 3, Clients: 30, TotalTxns: 200, Seed: 77}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Committed != b.Committed || a.Aborted != b.Aborted ||
		a.TPM != b.TPM || a.Events != b.Events {
		t.Fatalf("replay diverged:\n a=%s (events %d)\n b=%s (events %d)",
			a.Summary(), a.Events, b.Summary(), b.Events)
	}
}

func TestSeedChangesRun(t *testing.T) {
	a := run(t, Config{Sites: 1, Clients: 30, TotalTxns: 200, Seed: 1})
	b := run(t, Config{Sites: 1, Clients: 30, TotalTxns: 200, Seed: 2})
	if a.Events == b.Events && a.MeanLatencyMS == b.MeanLatencyMS {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRandomLossKeepsSafety(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 300,
		Seed:      3,
		Faults: faults.Config{
			Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
		},
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under random loss: %v", r.SafetyErr)
	}
	if r.GCS.Retransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
	if r.Committed < 200 {
		t.Fatalf("committed = %d", r.Committed)
	}
}

func TestBurstyLossKeepsSafety(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 300,
		Seed:      4,
		Faults: faults.Config{
			Loss: faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5},
		},
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under bursty loss: %v", r.SafetyErr)
	}
}

func TestCrashKeepsSafetyAndSurvivorsContinue(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 400,
		Seed:      5,
		Faults: faults.Config{
			Crashes: []faults.Crash{{Site: 3, At: 20 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under crash: %v", r.SafetyErr)
	}
	var crashed, live int
	for _, sr := range r.Sites {
		if sr.Crashed {
			crashed++
		} else {
			live++
			if sr.Committed == 0 {
				t.Fatalf("live site %d committed nothing", sr.Site)
			}
		}
	}
	if crashed != 1 || live != 2 {
		t.Fatalf("crashed=%d live=%d", crashed, live)
	}
	if r.GCS.ViewChanges == 0 {
		t.Fatal("survivors never installed a new view")
	}
}

func TestClockDriftAndSchedLatencyKeepSafety(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   45,
		TotalTxns: 250,
		Seed:      6,
		Faults: faults.Config{
			ClockDriftRate:    0.05,
			ClockDriftSites:   []int32{2},
			SchedLatencyMean:  2 * sim.Millisecond,
			SchedLatencySites: []int32{3},
		},
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under drift+latency: %v", r.SafetyErr)
	}
	if r.Committed < 150 {
		t.Fatalf("committed = %d", r.Committed)
	}
}

func TestMultiCPUHigherThroughputThanSingle(t *testing.T) {
	// At a load that saturates one CPU, three CPUs must commit the same
	// transactions in less time.
	one := run(t, Config{Sites: 1, CPUsPerSite: 1, Clients: 600, TotalTxns: 800, Seed: 7})
	three := run(t, Config{Sites: 1, CPUsPerSite: 3, Clients: 600, TotalTxns: 800, Seed: 7})
	if three.TPM <= one.TPM {
		t.Fatalf("3-CPU tpm %.0f <= 1-CPU tpm %.0f", three.TPM, one.TPM)
	}
	if three.MeanLatencyMS >= one.MeanLatencyMS {
		t.Fatalf("3-CPU latency %.1f >= 1-CPU latency %.1f",
			three.MeanLatencyMS, one.MeanLatencyMS)
	}
}

func TestReadOnlyLatencyUnaffectedByReplication(t *testing.T) {
	// Section 5.1: the latency of read-only transactions is not affected
	// by replication (local concurrency control, no termination
	// protocol).
	// Equal CPU capacity on both sides (the paper's comparison): one
	// 3-CPU site versus three 1-CPU sites.
	central := run(t, Config{Sites: 1, CPUsPerSite: 3, Clients: 30, TotalTxns: 400, Seed: 8})
	repl := run(t, Config{Sites: 3, CPUsPerSite: 1, Clients: 30, TotalTxns: 400, Seed: 8})
	if central.LatReadOnly.N() == 0 || repl.LatReadOnly.N() == 0 {
		t.Fatal("no read-only samples")
	}
	ratio := repl.LatReadOnly.Mean() / central.LatReadOnly.Mean()
	if ratio > 1.3 {
		t.Fatalf("read-only latency grew %.2fx under replication", ratio)
	}
	// Update transactions pay the termination protocol: every update must
	// have a positive certification latency, and none exist centralized.
	if repl.CertLat.N() == 0 || repl.CertLat.Mean() <= 0 {
		t.Fatalf("no certification cost in replicated run: n=%d mean=%v",
			repl.CertLat.N(), repl.CertLat.Mean())
	}
	if central.CertLat.N() != 0 {
		t.Fatal("centralized run produced certification samples")
	}
}

func TestTxnLogCollection(t *testing.T) {
	r := run(t, Config{Sites: 1, Clients: 20, TotalTxns: 100, Seed: 9, CollectTxnLog: true})
	if r.TxnLog.Len() == 0 {
		t.Fatal("transaction log empty")
	}
	for _, rec := range r.TxnLog.Records() {
		if rec.End < rec.Submit {
			t.Fatal("negative latency record")
		}
		if rec.Class == "" {
			t.Fatal("missing class in record")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sites: -1}); err == nil {
		t.Fatal("negative sites accepted")
	}
	if _, err := New(Config{Sites: 100}); err == nil {
		t.Fatal("absurd site count accepted")
	}
	if _, err := New(Config{Sites: 2, Faults: faults.Config{Crashes: []faults.Crash{{Site: 9, At: sim.Second}}}}); err == nil {
		t.Fatal("crash on unknown site accepted")
	}
}
