package core

import (
	"repro/internal/dbsm"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// ResourceSample is one observation of the queues and occupancy of a site's
// resources. The paper logs "the usage and length of queues for each
// resource ... to examine in detail the status of the server" (Section 3.1);
// this sampler provides that detail as a time series.
type ResourceSample struct {
	At   sim.Time
	Site dbsm.SiteID
	// CPUQueue is the number of queued (not running) jobs across the
	// site's processors.
	CPUQueue int
	// CPUBusy counts processors currently busy.
	CPUBusy int
	// DiskQueue is the number of queued sector operations.
	DiskQueue int
	// SendQueue and UnstableMsgs describe the protocol stack's sender
	// state (zero for centralized configurations).
	SendQueue    int
	UnstableMsgs int
	// Blocked reports whether the stack is currently flow-blocked.
	Blocked bool
}

// ResourceLog accumulates samples for all sites.
type ResourceLog struct {
	samples []ResourceSample
}

// Samples returns the recorded series.
func (l *ResourceLog) Samples() []ResourceSample { return l.samples }

// SiteSeries filters samples of one site.
func (l *ResourceLog) SiteSeries(site dbsm.SiteID) []ResourceSample {
	out := make([]ResourceSample, 0, len(l.samples)/4)
	for _, s := range l.samples {
		if s.Site == site {
			out = append(out, s)
		}
	}
	return out
}

// MaxCPUQueue reports the high-water CPU queue across all samples of a site.
func (l *ResourceLog) MaxCPUQueue(site dbsm.SiteID) int {
	m := 0
	for _, s := range l.samples {
		if s.Site == site && s.CPUQueue > m {
			m = s.CPUQueue
		}
	}
	return m
}

// StartResourceSampler begins periodic resource sampling into the returned
// log. Call before Run; period defaults to 500ms when zero.
func (m *Model) StartResourceSampler(period sim.Time) *ResourceLog {
	if period <= 0 {
		period = 500 * sim.Millisecond
	}
	log := &ResourceLog{}
	var tick func()
	tick = func() {
		for _, s := range m.sites {
			if s.Life.State() != recovery.StateUp {
				continue
			}
			sample := ResourceSample{At: m.k.Now(), Site: s.ID}
			for i := 0; i < s.CPUs.N(); i++ {
				cpu := s.CPUs.CPU(i)
				sample.CPUQueue += cpu.QueueLen()
				if cpu.Busy() {
					sample.CPUBusy++
				}
			}
			if s.Server != nil {
				sample.DiskQueue = s.Server.Storage().QueueLen()
			}
			if s.Stack != nil {
				q, u, _, _ := s.Stack.FlowState()
				sample.SendQueue = q
				sample.UnstableMsgs = u
				sample.Blocked = s.Stack.BlockedNow()
			}
			log.samples = append(log.samples, sample)
		}
		m.k.Schedule(period, tick)
	}
	m.k.Schedule(period, tick)
	return log
}
