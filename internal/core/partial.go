package core

import (
	"repro/internal/dbsm"
	"repro/internal/runtimeapi"
	"repro/internal/tpcc"
	"repro/internal/xgroup"
)

// Partitioning for partial replication (Section 5.2's mitigation of the
// read-one/write-all disk bottleneck; evaluated as ongoing work in
// Section 7). Placement is warehouse-granular: warehouse w is stored at
// ReplicationDegree consecutive sites starting at its primary, and a
// client's transactions are routed to its home warehouse's primary site.
// Certification and total order remain global, so the safety property is
// exactly that of full replication; only the write-back fan-out shrinks.

// primarySiteIndex maps a warehouse to the index (0-based) of its primary
// site.
func primarySiteIndex(wh, sites int) int { return wh % sites }

// replicatesAt reports whether the site at index idx stores warehouse wh
// under the given replication degree.
func replicatesAt(wh, idx, sites, degree int) bool {
	if degree <= 0 || degree >= sites {
		return true
	}
	p := primarySiteIndex(wh, sites)
	for k := 0; k < degree; k++ {
		if (p+k)%sites == idx {
			return true
		}
	}
	return false
}

// replicatesFunc builds the per-site placement predicate. Tuples without a
// warehouse (the shared item catalog) live everywhere.
func replicatesFunc(idx, sites, degree int) func(dbsm.TupleID) bool {
	if degree <= 0 || degree >= sites {
		return nil // full replication
	}
	return func(id dbsm.TupleID) bool {
		wh, ok := tpcc.WarehouseOf(id)
		if !ok {
			return true
		}
		return replicatesAt(wh, idx, sites, degree)
	}
}

// Group-mode partitioning (the tentpole generalization of the above): the
// replicas split into independent replication groups, each owning a stripe
// of warehouses, and internal/xgroup fixes the placement so every site
// derives identical group topology.

// siteGroup maps a 1-based global site id to its 1-based group (1 when the
// model runs single-group).
func (m *Model) siteGroup(sid int32) int {
	if m.groups <= 1 {
		return 1
	}
	return xgroup.GroupOfSite(int(sid), m.perGroup)
}

// groupMembers lists a group's node ids in ascending order.
func (m *Model) groupMembers(g int) []runtimeapi.NodeID {
	lo, hi := xgroup.GroupSites(g, m.perGroup)
	out := make([]runtimeapi.NodeID, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		out = append(out, runtimeapi.NodeID(id))
	}
	return out
}

// warehouseClassifier builds the tuple→group classifier the replicas split
// certification messages with. The item catalog (no warehouse) classifies to
// 0: replicated in every group, folded into a transaction's home part.
func warehouseClassifier(groups int) func(dbsm.TupleID) int {
	return func(id dbsm.TupleID) int {
		wh, ok := tpcc.WarehouseOf(id)
		if !ok {
			return 0
		}
		return xgroup.WarehouseGroup(wh, groups)
	}
}
