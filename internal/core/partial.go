package core

import (
	"repro/internal/dbsm"
	"repro/internal/tpcc"
)

// Partitioning for partial replication (Section 5.2's mitigation of the
// read-one/write-all disk bottleneck; evaluated as ongoing work in
// Section 7). Placement is warehouse-granular: warehouse w is stored at
// ReplicationDegree consecutive sites starting at its primary, and a
// client's transactions are routed to its home warehouse's primary site.
// Certification and total order remain global, so the safety property is
// exactly that of full replication; only the write-back fan-out shrinks.

// primarySiteIndex maps a warehouse to the index (0-based) of its primary
// site.
func primarySiteIndex(wh, sites int) int { return wh % sites }

// replicatesAt reports whether the site at index idx stores warehouse wh
// under the given replication degree.
func replicatesAt(wh, idx, sites, degree int) bool {
	if degree <= 0 || degree >= sites {
		return true
	}
	p := primarySiteIndex(wh, sites)
	for k := 0; k < degree; k++ {
		if (p+k)%sites == idx {
			return true
		}
	}
	return false
}

// replicatesFunc builds the per-site placement predicate. Tuples without a
// warehouse (the shared item catalog) live everywhere.
func replicatesFunc(idx, sites, degree int) func(dbsm.TupleID) bool {
	if degree <= 0 || degree >= sites {
		return nil // full replication
	}
	return func(id dbsm.TupleID) bool {
		wh, ok := tpcc.WarehouseOf(id)
		if !ok {
			return true
		}
		return replicatesAt(wh, idx, sites, degree)
	}
}
