package core

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/tpcc"
	"repro/internal/xgroup"
)

// forEach fans fn(0..n-1) over GOMAXPROCS goroutines. The equivalence test
// below runs dozens of independent models; each is single-threaded and
// deterministic, so parallel execution changes nothing but wall clock.
// (internal/expr has the same helper, but core tests cannot import it.)
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
}

// TestAggregateEquivalenceCI95 is the tentpole acceptance criterion: at 500
// clients the aggregate arrival-process tier must reproduce the
// individual-client workload within CI95 on every headline metric — tpmC,
// abort rate, mean and p95 latency — for both protocol variants. The two
// modes are different realizations of the same stochastic workload, so the
// pin is CI overlap over replicated runs, not per-seed equality:
//
//	|mean_individual − mean_aggregate| ≤ CI95_individual + CI95_aggregate
//
// which a systematic bias (like the warmup-pool bias the unfired pool
// exists to remove) reliably trips at these sample sizes.
func TestAggregateEquivalenceCI95(t *testing.T) {
	if testing.Short() {
		t.Skip("32 replicated 5000-txn runs; skipped in -short")
	}
	const (
		reps    = 8
		clients = 500
		txns    = 5000
	)
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			runs := make([]*Results, 2*reps) // [0,reps) individual, [reps,2reps) aggregate
			errs := make([]error, 2*reps)
			forEach(2*reps, func(i int) {
				cfg := Config{
					Sites:     3,
					Clients:   clients,
					TotalTxns: txns,
					Protocol:  proto,
					Seed:      4200 + int64(i%reps)*77,
				}
				if i >= reps {
					cfg.AggregateClients = 1
				}
				m, err := New(cfg)
				if err != nil {
					errs[i] = err
					return
				}
				runs[i], errs[i] = m.Run()
			})
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			ind := AggregateRuns(runs[:reps])
			agg := AggregateRuns(runs[reps:])
			for _, c := range []struct {
				name string
				a, b Stat
			}{
				{"tpmC", ind.TPM, agg.TPM},
				{"abort rate %", ind.AbortRatePct, agg.AbortRatePct},
				{"mean latency ms", ind.MeanLatencyMS, agg.MeanLatencyMS},
				{"p95 latency ms", ind.P95LatencyMS, agg.P95LatencyMS},
			} {
				diff := c.a.Mean - c.b.Mean
				if diff < 0 {
					diff = -diff
				}
				if tol := c.a.CI95 + c.b.CI95; diff > tol {
					t.Errorf("%s: individual %s vs aggregate %s — means %.2f apart, CI95 overlap allows %.2f",
						c.name, c.a, c.b, diff, tol)
				} else {
					t.Logf("%-16s individual %-14s aggregate %-14s |Δ| %.2f ≤ %.2f",
						c.name, c.a, c.b, diff, tol)
				}
			}
			// The aggregate runs must have carried the full budget through the
			// identical submission path, not a truncated or duplicated one.
			for i := reps; i < 2*reps; i++ {
				if runs[i].Issued != txns {
					t.Errorf("aggregate rep %d issued %d txns, want %d", i-reps, runs[i].Issued, txns)
				}
			}
		})
	}
}

// TestAggregateSameSeedSameResults extends the determinism guard to the
// aggregate tier across every client-placement mode — round-robin, partial
// replication (primary-site placement), and replication groups — since each
// mode uses a different dense-index→warehouse closure and RNG wiring.
func TestAggregateSameSeedSameResults(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"round-robin", Config{Sites: 3, Clients: 120, TotalTxns: 300, Seed: 7, AggregateClients: 1}},
		{"partial", Config{Sites: 3, Clients: 120, TotalTxns: 300, Seed: 7, AggregateClients: 1, ReplicationDegree: 2}},
		{"grouped", Config{Groups: 3, Sites: 2, Clients: 120, TotalTxns: 300, Seed: 7, AggregateClients: 1}},
		{"admission", Config{Sites: 3, Clients: 120, TotalTxns: 300, Seed: 7, AggregateClients: 1,
			Admission: DefaultAdmissionConfig()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Results {
				m, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(m.aggs) == 0 {
					t.Fatal("aggregate threshold not honored: no aggregate tier built")
				}
				if len(m.clients) != 0 {
					t.Fatal("aggregate mode still built individual clients")
				}
				r, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			a, b := run(), run()
			if a.Issued != b.Issued || a.Committed != b.Committed || a.Aborted != b.Aborted {
				t.Fatalf("counts diverge: %d/%d/%d vs %d/%d/%d",
					a.Issued, a.Committed, a.Aborted, b.Issued, b.Committed, b.Aborted)
			}
			if a.Duration != b.Duration || a.Events != b.Events {
				t.Fatalf("run shape diverges: duration %v/%v events %d/%d",
					a.Duration, b.Duration, a.Events, b.Events)
			}
			if a.TPM != b.TPM || a.AbortRatePct != b.AbortRatePct {
				t.Fatalf("headline metrics diverge: tpm %v/%v abort %v/%v",
					a.TPM, b.TPM, a.AbortRatePct, b.AbortRatePct)
			}
			if a.LatCommitted.N() != b.LatCommitted.N() || a.LatCommitted.Mean() != b.LatCommitted.Mean() {
				t.Fatalf("latency sample diverges: n=%d/%d mean=%v/%v",
					a.LatCommitted.N(), b.LatCommitted.N(), a.LatCommitted.Mean(), b.LatCommitted.Mean())
			}
			if !reflect.DeepEqual(a.Classes, b.Classes) {
				t.Fatalf("class breakdown diverges:\n%+v\nvs\n%+v", a.Classes, b.Classes)
			}
			if a.SafetyErr != nil {
				t.Fatalf("safety: %v", a.SafetyErr)
			}
		})
	}
}

// TestAggregatePlacement pins the dense-index→home-warehouse closures
// against the individual tier's placement rules: the per-site populations
// must partition the client count exactly, and the multiset of home
// warehouses reached by a site's dense indices must equal the multiset of
// home warehouses of the individual clients placed at that site — including
// the partial trailing warehouse block.
func TestAggregatePlacement(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		// siteOf replicates the individual tier's placement: client i → site index.
		siteOf func(cfg Config, i int) int
	}{
		{"round-robin", Config{Sites: 3, Clients: 127, AggregateClients: 1},
			func(cfg Config, i int) int { return i % cfg.Sites }},
		{"partial", Config{Sites: 3, Clients: 127, AggregateClients: 1, ReplicationDegree: 2},
			func(cfg Config, i int) int {
				return primarySiteIndex(i/tpcc.ClientsPerWarehouse, cfg.Sites)
			}},
		{"grouped", Config{Groups: 3, Sites: 2, Clients: 127, AggregateClients: 1},
			func(cfg Config, i int) int {
				return xgroup.HomeSite(i/tpcc.ClientsPerWarehouse, cfg.Groups, cfg.Sites) - 1
			}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Per-site home-warehouse multisets under the individual rule.
			want := make([]map[int]int, len(m.sites))
			pops := make([]int, len(m.sites))
			for i := 0; i < tc.cfg.Clients; i++ {
				s := tc.siteOf(tc.cfg, i)
				if want[s] == nil {
					want[s] = make(map[int]int)
				}
				want[s][i/tpcc.ClientsPerWarehouse]++
				pops[s]++
			}
			total := 0
			for _, a := range m.aggs {
				total += a.Population
				siteIdx := -1
				for idx, s := range m.sites {
					if s.Server == a.Server {
						siteIdx = idx
						break
					}
				}
				if siteIdx < 0 {
					t.Fatal("aggregate attached to an unknown server")
				}
				if a.Population != pops[siteIdx] {
					t.Errorf("site %d population %d, individual placement puts %d clients there",
						siteIdx+1, a.Population, pops[siteIdx])
				}
				got := make(map[int]int)
				for k := 0; k < a.Population; k++ {
					got[a.HomeWH(k)]++
				}
				if !reflect.DeepEqual(got, want[siteIdx]) {
					t.Errorf("site %d home-warehouse multiset diverges from individual placement:\n got %v\nwant %v",
						siteIdx+1, got, want[siteIdx])
				}
			}
			if total != tc.cfg.Clients {
				t.Errorf("aggregate populations sum to %d, want %d", total, tc.cfg.Clients)
			}
		})
	}
}

// TestAggregateThresholdGate pins the Config.AggregateClients contract:
// below the threshold the model builds individual clients, at or above it
// the aggregate tier, and zero disables aggregation entirely.
func TestAggregateThresholdGate(t *testing.T) {
	mk := func(clients, threshold int) *Model {
		m, err := New(Config{Sites: 3, Clients: clients, AggregateClients: threshold})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := mk(90, 0); len(m.aggs) != 0 || len(m.clients) != 90 {
		t.Fatalf("threshold 0 must disable aggregation: aggs=%d clients=%d", len(m.aggs), len(m.clients))
	}
	if m := mk(90, 91); len(m.aggs) != 0 || len(m.clients) != 90 {
		t.Fatalf("below threshold must use individual clients: aggs=%d clients=%d", len(m.aggs), len(m.clients))
	}
	if m := mk(90, 90); len(m.aggs) != 3 || len(m.clients) != 0 {
		t.Fatalf("at threshold must use the aggregate tier: aggs=%d clients=%d", len(m.aggs), len(m.clients))
	}
}
