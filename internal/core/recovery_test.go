package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// rejoinConfig is a 3-site run with a crash-and-rejoin of one site and
// enough transaction budget that traffic continues well past the rejoin.
func rejoinConfig(protocol Protocol, site int32, seed int64) Config {
	return Config{
		Sites:     3,
		Protocol:  protocol,
		Clients:   90,
		TotalTxns: 2500,
		Seed:      seed,
		Faults: faults.Config{
			Crashes:  []faults.Crash{{Site: site, At: 10 * sim.Second}},
			Recovers: []faults.Recover{{Site: site, At: 25 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	}
}

func runRejoin(t *testing.T, cfg Config) *Results {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func checkRejoinResults(t *testing.T, r *Results, site int32) {
	t.Helper()
	if r.SafetyErr != nil {
		t.Fatalf("safety violation: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("%d local/global inconsistencies", r.Inconsistencies)
	}
	if r.RejoinViolations != 0 {
		t.Fatalf("%d rejoin prefix violations", r.RejoinViolations)
	}
	if r.CertDrops != 0 {
		t.Fatalf("%d certification payloads dropped", r.CertDrops)
	}
	if r.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", r.Recoveries)
	}
	if r.TransferBytes <= 0 {
		t.Fatal("no snapshot bytes transferred")
	}
	if r.MeanRecoveryMS <= 0 || r.MeanDowntimeMS <= 0 {
		t.Fatalf("recovery=%.2fms downtime=%.2fms, want both positive",
			r.MeanRecoveryMS, r.MeanDowntimeMS)
	}
	if r.MeanDowntimeMS < r.MeanRecoveryMS {
		t.Fatalf("downtime %.2fms below recovery time %.2fms", r.MeanDowntimeMS, r.MeanRecoveryMS)
	}
	var sr *SiteResult
	for i := range r.Sites {
		if int32(r.Sites[i].Site) == site {
			sr = &r.Sites[i]
		}
	}
	if sr == nil {
		t.Fatalf("no result row for site %d", site)
	}
	if !sr.Recovered || sr.State != "up" {
		t.Fatalf("site %d: recovered=%v state=%q, want a completed rejoin", site, sr.Recovered, sr.State)
	}
	if sr.TransferKB <= 0 {
		t.Fatalf("site %d transferred %.1fKB", site, sr.TransferKB)
	}
	// The recovered site must serve traffic again after the rejoin: its
	// clients were woken with AbortCrash and resubmitted.
	if sr.Committed == 0 {
		t.Fatalf("site %d committed nothing", site)
	}
	if r.GCS.Joins != 1 {
		t.Fatalf("GCS Joins = %d, want 1", r.GCS.Joins)
	}
}

func TestCrashAndRejoinConservative(t *testing.T) {
	r := runRejoin(t, rejoinConfig(ProtocolConservative, 3, 7))
	checkRejoinResults(t, r, 3)
}

func TestCrashAndRejoinOptimistic(t *testing.T) {
	r := runRejoin(t, rejoinConfig(ProtocolOptimistic, 3, 7))
	checkRejoinResults(t, r, 3)
}

func TestCrashAndRejoinSequencer(t *testing.T) {
	// Site 1 is the sequencer; its rejoin exercises sequencer replacement
	// plus the joiner-returns-as-follower path.
	r := runRejoin(t, rejoinConfig(ProtocolConservative, 1, 11))
	checkRejoinResults(t, r, 1)
}

func TestRejoinUnderLossAndDrift(t *testing.T) {
	cfg := rejoinConfig(ProtocolConservative, 2, 13)
	cfg.Faults.Loss = faults.Loss{Kind: faults.LossRandom, Rate: 0.03}
	cfg.Faults.ClockDriftRate = 0.02
	r := runRejoin(t, cfg)
	checkRejoinResults(t, r, 2)
}

// TestRejoinDeterministicReplay: the same seed must reproduce the identical
// run, recovery included.
func TestRejoinDeterministicReplay(t *testing.T) {
	a := runRejoin(t, rejoinConfig(ProtocolConservative, 3, 21))
	b := runRejoin(t, rejoinConfig(ProtocolConservative, 3, 21))
	if a.Summary() != b.Summary() {
		t.Fatalf("replay diverged:\n  %s\n  %s", a.Summary(), b.Summary())
	}
	if a.Committed != b.Committed || a.TransferBytes != b.TransferBytes ||
		a.MeanRecoveryMS != b.MeanRecoveryMS || a.DeltaApplied != b.DeltaApplied {
		t.Fatalf("recovery metrics diverged: %+v vs %+v",
			[4]any{a.Committed, a.TransferBytes, a.MeanRecoveryMS, a.DeltaApplied},
			[4]any{b.Committed, b.TransferBytes, b.MeanRecoveryMS, b.DeltaApplied})
	}
}

// TestRunWaitsForPendingRecovery: a recovery scheduled long after the
// transaction budget drains must still be exercised — the run may not
// quiesce while a crashed site's rejoin is pending, or crash-and-rejoin
// schedules would silently skip the recovery under test.
func TestRunWaitsForPendingRecovery(t *testing.T) {
	cfg := Config{
		Sites:     3,
		Clients:   30,
		TotalTxns: 60, // drains within a few simulated seconds
		Seed:      5,
		Faults: faults.Config{
			Crashes:  []faults.Crash{{Site: 3, At: 5 * sim.Second}},
			Recovers: []faults.Recover{{Site: 3, At: 150 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	}
	r := runRejoin(t, cfg)
	if r.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1 (run quiesced before the scheduled rejoin)", r.Recoveries)
	}
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
}

// TestRecoverValidation rejects malformed crash-and-rejoin schedules.
func TestRecoverValidation(t *testing.T) {
	bad := []faults.Config{
		{Recovers: []faults.Recover{{Site: 2, At: 20 * sim.Second}}}, // no crash
		{Crashes: []faults.Crash{{Site: 2, At: 20 * sim.Second}},
			Recovers: []faults.Recover{{Site: 2, At: 10 * sim.Second}}}, // before crash
		{Crashes: []faults.Crash{{Site: 2, At: 5 * sim.Second}},
			Recovers: []faults.Recover{{Site: 2, At: 10 * sim.Second}, {Site: 2, At: 20 * sim.Second}}}, // twice
		{Recovers: []faults.Recover{{Site: 9, At: 20 * sim.Second}}}, // unknown site
	}
	for i, f := range bad {
		_, err := New(Config{Sites: 3, Clients: 30, TotalTxns: 100, Faults: f})
		if err == nil {
			t.Fatalf("bad schedule %d accepted", i)
		}
	}
}

// TestLifecycleStateMachine pins the transition rules.
func TestLifecycleStateMachine(t *testing.T) {
	l := recovery.NewLifecycle(1)
	if l.State() != recovery.StateUp {
		t.Fatal("new lifecycle not Up")
	}
	if err := l.BeginRecovery(0); err == nil {
		t.Fatal("recovery from Up accepted")
	}
	if err := l.Crash(10, 5, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(11, 5, nil); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := l.Complete(12, 0, 0); err == nil {
		t.Fatal("complete from Crashed accepted")
	}
	if err := l.BeginRecovery(20); err != nil {
		t.Fatal(err)
	}
	if err := l.Complete(30, 1024, 2); err != nil {
		t.Fatal(err)
	}
	if l.State() != recovery.StateUp || l.Recoveries() != 1 {
		t.Fatalf("state=%v recoveries=%d", l.State(), l.Recoveries())
	}
	if l.Downtime(99) != 20 || l.RecoveryTime(99) != 10 {
		t.Fatalf("downtime=%d recovery=%d, want 20/10", l.Downtime(99), l.RecoveryTime(99))
	}
}
