package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/tpcc"
)

// overloadCalibration compresses the think time so the closed-loop workload
// actually outruns a small admission cap: with the paper's 9s think time the
// per-site active count stays far below any sane cap and rejections never
// fire at test scale.
func overloadCalibration() *tpcc.Calibration {
	cal := tpcc.DefaultCalibration()
	cal.ThinkTime = 200 * sim.Millisecond
	return cal
}

// tightAdmission is an admission tuning small enough for rejections and
// retries to occur at unit-test scale.
func tightAdmission() *AdmissionConfig {
	return &AdmissionConfig{
		MaxActivePerSite: 4,
		BacklogHigh:      96,
		BacklogLow:       32,
		Retry: tpcc.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 20 * sim.Millisecond,
			MaxBackoff:  500 * sim.Millisecond,
		},
	}
}

// TestAdmissionRejectsAndRetriesStaySafe drives a replicated cluster hard
// enough that the admission cap fires, and pins the whole retry loop:
// rejections surface, clients resubmit, accounting stays uniform
// (submitted = committed + aborted + rejected), and the safety checker —
// which scans every site log for double commits — finds nothing. A retried
// transaction keeps its TID, so a single duplicate certification would fail
// the run.
func TestAdmissionRejectsAndRetriesStaySafe(t *testing.T) {
	r := run(t, Config{
		Sites:       3,
		Clients:     120,
		TotalTxns:   400,
		Seed:        11,
		Calibration: overloadCalibration(),
		Admission:   tightAdmission(),
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under admission pressure: %v", r.SafetyErr)
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("inconsistencies = %d", r.Inconsistencies)
	}
	if r.Rejected == 0 {
		t.Fatal("a 4-per-site cap under 40 clients/site never rejected — admission control inert")
	}
	if r.Retries == 0 {
		t.Fatal("rejections occurred but no client ever retried")
	}
	if r.Committed+r.Aborted+r.Rejected != r.Submitted {
		t.Fatalf("accounting: submitted=%d committed=%d aborted=%d rejected=%d",
			r.Submitted, r.Committed, r.Aborted, r.Rejected)
	}
	// Every issued transaction ends in exactly one terminal state: committed,
	// aborted (final, never resubmitted), or abandoned after exhausting its
	// retry budget. A retried TID landing in two states would break this.
	if r.Committed+r.Aborted+r.GiveUps != int64(r.Issued) {
		t.Fatalf("ledger: issued=%d committed=%d aborted=%d giveups=%d",
			r.Issued, r.Committed, r.Aborted, r.GiveUps)
	}
	if r.Committed == 0 {
		t.Fatal("nothing committed under admission pressure")
	}
	if r.RetryLat.N() == 0 {
		t.Fatal("no retry-latency samples despite retries")
	}
}

// TestSaturationBoundedQueues holds a 2x saturation for the whole run and
// pins the flow-control bound end to end: the transmit queue's high-water
// mark never exceeds its 1 MiB default bound, and safety holds.
func TestSaturationBoundedQueues(t *testing.T) {
	for _, p := range Protocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			r := run(t, Config{
				Sites:       3,
				Clients:     120,
				TotalTxns:   400,
				Seed:        12,
				Protocol:    p,
				Calibration: overloadCalibration(),
				Admission:   tightAdmission(),
				Faults: faults.Config{
					Saturation: faults.Saturation{Factor: 2, At: 2 * sim.Second},
				},
			})
			if r.SafetyErr != nil {
				t.Fatalf("safety under saturation: %v", r.SafetyErr)
			}
			if r.GCS.QueuePeakBytes > 1<<20 {
				t.Fatalf("transmit queue peaked at %d bytes, past the 1 MiB bound", r.GCS.QueuePeakBytes)
			}
			if r.Committed == 0 {
				t.Fatal("nothing committed under saturation")
			}
		})
	}
}

// TestGrayFailureNeverSuspected degrades one site's CPU, disk, and link by
// 10x while its protocol heartbeats stay timely — the canonical gray
// failure. The failure detector must not fire (zero view changes), the slow
// site must keep committing, and the run must stay safe.
func TestGrayFailureNeverSuspected(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 300,
		Seed:      13,
		Faults: faults.Config{
			SlowNodes: []faults.SlowNode{{Site: 3, Factor: 10, At: 5 * sim.Second}},
		},
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety under gray failure: %v", r.SafetyErr)
	}
	if r.GCS.ViewChanges != 0 {
		t.Fatalf("gray-failed site was suspected: %d view changes", r.GCS.ViewChanges)
	}
	for _, sr := range r.Sites {
		if sr.Crashed {
			t.Fatalf("site %d marked crashed under a slow-node fault", sr.Site)
		}
		if sr.Committed == 0 {
			t.Fatalf("site %d committed nothing", sr.Site)
		}
	}
}

// TestGrayFailureRecovers lifts the degradation mid-run and checks the slow
// site returns to full speed without ever being suspected.
func TestGrayFailureRecovers(t *testing.T) {
	r := run(t, Config{
		Sites:     3,
		Clients:   60,
		TotalTxns: 300,
		Seed:      14,
		Faults: faults.Config{
			SlowNodes: []faults.SlowNode{{Site: 2, Factor: 10, At: 5 * sim.Second, Until: 15 * sim.Second}},
		},
	})
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if r.GCS.ViewChanges != 0 {
		t.Fatalf("view changes = %d", r.GCS.ViewChanges)
	}
	if r.Committed < 250 {
		t.Fatalf("committed = %d after degradation lifted", r.Committed)
	}
}

// TestOverloadReplayDeterministic replays the full overload faultload —
// saturation, gray failure, admission, retries — from the same seed and
// requires byte-identical results. Retry backoff draws from the client's
// own RNG stream, so a single nondeterministic draw would diverge the
// summaries.
func TestOverloadReplayDeterministic(t *testing.T) {
	cfg := Config{
		Sites:       3,
		Clients:     90,
		TotalTxns:   300,
		Seed:        15,
		Calibration: overloadCalibration(),
		Admission:   tightAdmission(),
		Faults: faults.Config{
			Saturation: faults.Saturation{Factor: 2, At: 2 * sim.Second},
			SlowNodes:  []faults.SlowNode{{Site: 3, Factor: 10, At: 3 * sim.Second}},
		},
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Summary() != b.Summary() {
		t.Fatalf("replay diverged:\n a=%s\n b=%s", a.Summary(), b.Summary())
	}
	if a.Events != b.Events || a.Rejected != b.Rejected || a.Retries != b.Retries {
		t.Fatalf("replay diverged: events %d/%d rejected %d/%d retries %d/%d",
			a.Events, b.Events, a.Rejected, b.Rejected, a.Retries, b.Retries)
	}
}

// TestSaturationRaisesThroughputWithoutAdmission is the control run that
// shows saturation actually injects load: with no admission configured and
// the default 9s think time, compressing think time by 2x must raise the
// commit rate, not trip any overload machinery.
func TestSaturationRaisesThroughputWithoutAdmission(t *testing.T) {
	base := run(t, Config{Sites: 3, Clients: 60, TotalTxns: 300, Seed: 16})
	sat := run(t, Config{
		Sites: 3, Clients: 60, TotalTxns: 300, Seed: 16,
		Faults: faults.Config{Saturation: faults.Saturation{Factor: 2, At: sim.Second}},
	})
	if sat.TPM <= base.TPM {
		t.Fatalf("saturated tpm %.0f <= baseline %.0f — saturation inert", sat.TPM, base.TPM)
	}
	if sat.Rejected != 0 || sat.Retries != 0 {
		t.Fatalf("no admission configured, yet rejected=%d retries=%d", sat.Rejected, sat.Retries)
	}
}
