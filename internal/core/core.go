// Package core assembles the complete testing tool of the paper: real
// implementations of the replication protocols (internal/gcs,
// internal/dbsm) running under the centralized simulation runtime
// (internal/csrt) against simulated network (internal/simnet), database
// engine (internal/db) and TPC-C traffic generator (internal/tpcc)
// components, with fault injection (internal/faults) and global observation.
//
// A Model is configured, run, and produces Results containing every metric
// the paper reports: throughput (tpm), latency distributions, abort-rate
// breakdowns per transaction class, per-resource utilization, network
// traffic, certification latency, and the off-line safety verdict.
package core

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/csrt"
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/faults"
	"repro/internal/gcs"
	"repro/internal/recovery"
	"repro/internal/replica"
	"repro/internal/runtimeapi"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tpcc"
	"repro/internal/trace"
	"repro/internal/xgroup"
)

// Protocol selects the replication termination variant.
type Protocol string

// The two DBSM protocol variants the tool evaluates.
const (
	// ProtocolConservative certifies on final (total-order) delivery
	// only — the paper's baseline protocol.
	ProtocolConservative Protocol = "conservative"
	// ProtocolOptimistic certifies on tentative (spontaneous-order)
	// delivery, one ordering round early, and pre-applies remote
	// write-sets; final delivery confirms the speculation or rolls it
	// back — the optimistic atomic broadcast variant the paper lists as
	// ongoing work (Section 7, [25]).
	ProtocolOptimistic Protocol = "optimistic"
)

// Protocols lists the selectable variants in report order.
func Protocols() []Protocol { return []Protocol{ProtocolConservative, ProtocolOptimistic} }

// Config describes one experiment run.
type Config struct {
	// Sites is the number of replicas; 1 runs the centralized baseline
	// without any replication protocol. When Groups > 1, Sites is the
	// number of replicas per group and the model runs Groups×Sites sites
	// in total.
	Sites int
	// Groups partitions the replicas into this many independent
	// replication groups (partial replication). Each group runs its own
	// group-communication stack and certifies only its own warehouses'
	// transactions; a transaction spanning groups runs the cross-group
	// atomic-commit round (internal/replica, xcommit.go). 0 or 1 runs the
	// classic single-group model. Incompatible with DedicatedSequencer,
	// ReplicationDegree, ReadSetThreshold, and crash recovery
	// (Faults.Recovers); requires Sites >= 2 per group.
	Groups int
	// Protocol selects the termination variant (default conservative).
	// Ignored when Sites == 1 (no replication protocol runs at all).
	Protocol Protocol
	// CPUsPerSite configures each site's processor count.
	CPUsPerSite int
	// Clients is the total emulated user count, split equally between
	// sites in contiguous blocks (preserving warehouse locality).
	Clients int
	// TotalTxns bounds the run: clients stop issuing after this many
	// submissions (the paper uses 10000).
	TotalTxns int
	// AggregateClients is the population threshold at or above which the
	// per-client objects are replaced by the aggregate client tier
	// (internal/tpcc): one calibrated per-site, per-class arrival process
	// submitting through the identical admission/retry/backpressure path.
	// Memory and startup cost become O(sites + in-flight) instead of
	// O(population), making 10^6+ client runs cheap. 0 disables (always
	// individual clients). Aggregate runs are statistically — not
	// per-seed — equivalent to individual-client runs; equivalence is
	// pinned within CI95 at 500 clients by the core tests.
	AggregateClients int
	// Seed drives every random stream; same seed, same run.
	Seed int64
	// Warehouses overrides the database scale (0 derives clients/10).
	Warehouses int
	// Calibration is the workload cost model (nil for default).
	Calibration *tpcc.Calibration
	// Storage configures each site's disk.
	Storage db.StorageConfig
	// LAN configures the network segment (zero value for the paper's
	// Ethernet-100).
	LAN simnet.LANConfig
	// Costs are the CSRT's four message-overhead parameters (zero for
	// calibrated defaults).
	Costs csrt.CostParams
	// GCSTweak adjusts the group communication configuration (buffer
	// pool, windows, timeouts) before stacks are built.
	GCSTweak func(*gcs.Config)
	// Faults is the fault load.
	Faults faults.Config
	// Hooks are test-only protocol switches (see Hooks); the zero value —
	// every hook off — is the only production configuration.
	Hooks Hooks
	// ReadSetThreshold upgrades large read-sets to table locks.
	ReadSetThreshold int
	// Admission enables the overload-protection machinery: a per-site
	// active-transaction cap, replica backlog watermarks that gate
	// admission, and client retry with exponential backoff after explicit
	// rejections. Nil runs without admission control (rejections never
	// happen and overload degrades the old way, by thrashing).
	Admission *AdmissionConfig
	// ScanCertifier runs certification with the reference history-scan
	// procedure instead of the default inverted last-writer index (same
	// verdicts, O(concurrent-history × read-set) cost per transaction).
	ScanCertifier bool
	// DedicatedSequencer adds a group member (node 0) that orders
	// messages but hosts no database and originates no application
	// traffic — the paper's Section 5.3 mitigation for sequencer
	// buffer-share exhaustion. Only meaningful when Sites > 1.
	DedicatedSequencer bool
	// ReplicationDegree stores each warehouse at this many sites instead
	// of all of them (partial replication, Section 5.2's disk-bottleneck
	// mitigation). 0 or >= Sites means full replication. Clients are
	// then routed to their home warehouse's primary site.
	ReplicationDegree int
	// UseWallProfiler measures real protocol code with the wall clock
	// instead of the deterministic cost model (non-reproducible runs).
	UseWallProfiler bool
	// MaxSimTime bounds simulated time (default 2h).
	MaxSimTime sim.Time
	// DrainTime runs the model beyond the last completion so protocol
	// activity quiesces before the safety check (default 2s).
	DrainTime sim.Time
	// CollectTxnLog records every transaction in Results.TxnLog.
	CollectTxnLog bool
}

// Hooks re-open fixed protocol holes for the adversarial explorer's
// self-tests and saved repros: a repro of a historical bug keeps reproducing
// its violation on a healthy tree by naming the hook that resurrects it.
// Hooks are serializable (unlike GCSTweak) so repro JSON can carry them.
// Never set any hook outside tests and saved repros.
type Hooks struct {
	// NonUniformSequencer reverts the uniform sequencer delivery fix: the
	// sequencer delivers its self-assigned messages without waiting for a
	// majority to hold the assignment, resurrecting the lost-announcement
	// safety hole (see internal/gcs/totalorder.go).
	NonUniformSequencer bool `json:"nonUniformSequencer,omitempty"`
}

// Any reports whether any hook is set.
func (h Hooks) Any() bool { return h.NonUniformSequencer }

// AdmissionConfig tunes the overload-protection machinery.
type AdmissionConfig struct {
	// MaxActivePerSite caps concurrently-active transactions per server; a
	// Submit that would exceed it is rejected outright. 0 disables the cap.
	MaxActivePerSite int
	// BacklogHigh and BacklogLow are the replica termination-backlog
	// watermarks: admission closes when the backlog reaches BacklogHigh and
	// reopens when it drains to BacklogLow (hysteresis — the gate never
	// oscillates under constant load). BacklogHigh 0 disables the gate.
	BacklogHigh int
	BacklogLow  int
	// Retry governs client resubmission after rejections; the zero value
	// makes every rejection final.
	Retry tpcc.RetryPolicy
}

// DefaultAdmissionConfig returns the tuning the fault campaigns run with:
// 64 active transactions per site, backlog watermarks 96/32, and up to 4
// attempts with 50ms-to-2s exponential backoff.
func DefaultAdmissionConfig() *AdmissionConfig {
	return &AdmissionConfig{
		MaxActivePerSite: 64,
		BacklogHigh:      96,
		BacklogLow:       32,
		Retry: tpcc.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 50 * sim.Millisecond,
			MaxBackoff:  2 * sim.Second,
		},
	}
}

func (c *Config) fill() {
	if c.Sites == 0 {
		c.Sites = 1
	}
	if c.Protocol == "" {
		c.Protocol = ProtocolConservative
	}
	if c.CPUsPerSite == 0 {
		c.CPUsPerSite = 1
	}
	if c.Clients == 0 {
		c.Clients = 100
	}
	if c.TotalTxns == 0 {
		c.TotalTxns = 10000
	}
	if c.Calibration == nil {
		c.Calibration = tpcc.DefaultCalibration()
	}
	if c.LAN.BandwidthBps == 0 && c.LAN.MTU == 0 {
		c.LAN = simnet.DefaultLANConfig("lan0")
	}
	if c.Costs == (csrt.CostParams{}) {
		c.Costs = csrt.DefaultCostParams()
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 2 * sim.Hour
	}
	if c.DrainTime == 0 {
		c.DrainTime = 2 * sim.Second
	}
}

// Site is one replica's assembled components. Across a crash-and-rejoin the
// Site persists while Stack and Replica are rebuilt (a crash destroys all
// volatile protocol state); Life tracks the lifecycle — Up → Crashed →
// Recovering → Up — and the availability metrics of each transition.
type Site struct {
	ID      dbsm.SiteID
	RT      *csrt.Runtime
	CPUs    *csrt.CPUSet
	Server  *db.Server
	Stack   *gcs.Stack       // nil when Sites == 1
	Replica *replica.Replica // nil when Sites == 1
	Host    *simnet.Host
	Gen     *tpcc.Generator
	Life    *recovery.Lifecycle

	partitioned bool // isolated in a partition minority at some point

	// Counters of dead incarnations, folded into the site totals when the
	// current Stack/Replica are replaced at recovery.
	deadGCS     gcs.Stats
	deadReplica replica.Stats
}

// Lifecycle exposes the site's state machine.
func (s *Site) Lifecycle() *recovery.Lifecycle { return s.Life }

// operational reports whether the site participates in the protocol right
// now: lifecycle Up, never isolated in a partition minority, and its stack
// not wedged (a stack halts on exclusion from the view or on quorum loss
// under the primary-component rule — e.g. a loss-induced false suspicion).
// Non-operational sites are held to the prefix safety condition and
// excluded from quiescence accounting; a recovered site is operational
// again and held to full equality.
func (s *Site) operational() bool {
	if s.Life.State() != recovery.StateUp || s.partitioned {
		return false
	}
	return s.Stack == nil || !s.Stack.Stopped()
}

// Model is a configured instance of the testing tool.
type Model struct {
	cfg     Config
	k       *sim.Kernel
	rng     *sim.RNG
	net     *simnet.Network
	lan     *simnet.LAN
	members []runtimeapi.NodeID // full group universe (rebuilt stacks need it)

	// Group-mode shape: groups is 1 for the classic model; perGroup is the
	// per-group site count (== cfg.Sites in either mode).
	groups   int
	perGroup int

	sites     []*Site
	dedicated *Site // dedicated sequencer member, when configured
	clients   []*tpcc.Client
	// aggs replaces clients above the AggregateClients threshold: one
	// compound arrival process per site with a nonzero population.
	aggs []*tpcc.Aggregate

	issued   int
	finished int64
	lastDone sim.Time
	txnLog   trace.TxnLog

	// pendingRecover marks crashed sites whose scheduled recovery has not
	// fired yet: the run must not quiesce before it does, or a
	// crash-and-rejoin schedule would silently skip the rejoin under test.
	pendingRecover map[*Site]bool

	// rejoinViolations counts install-time prefix-check failures: a dead
	// incarnation's commit log that was not a prefix of its donor's.
	rejoinViolations int64
	rejoinViolation  error
}

// New builds a model from a config.
func New(cfg Config) (*Model, error) {
	cfg.fill()
	groups := cfg.Groups
	if groups < 1 {
		groups = 1
	}
	total := cfg.Sites * groups
	if cfg.Sites < 1 || total > 32 {
		return nil, fmt.Errorf("core: unsupported site count %d (%d groups of %d)", total, groups, cfg.Sites)
	}
	if cfg.Protocol != ProtocolConservative && cfg.Protocol != ProtocolOptimistic {
		return nil, fmt.Errorf("core: unknown protocol %q", cfg.Protocol)
	}
	if groups > 1 {
		// The cross-group commit path composes with the plain per-group
		// protocol only; the orthogonal single-group features stay out of
		// scope and are rejected rather than silently ignored.
		switch {
		case cfg.Sites < 2:
			return nil, fmt.Errorf("core: groups need at least 2 sites each, got %d", cfg.Sites)
		case cfg.DedicatedSequencer:
			return nil, fmt.Errorf("core: dedicated sequencer is incompatible with %d groups", groups)
		case cfg.ReplicationDegree > 0:
			return nil, fmt.Errorf("core: replication degree is incompatible with %d groups", groups)
		case cfg.ReadSetThreshold > 0:
			return nil, fmt.Errorf("core: table-lock upgrade is incompatible with %d groups", groups)
		case len(cfg.Faults.Recovers) > 0:
			return nil, fmt.Errorf("core: crash recovery is incompatible with %d groups", groups)
		}
	}
	m := &Model{cfg: cfg, k: sim.NewKernel(), rng: sim.NewRNG(cfg.Seed),
		groups: groups, perGroup: cfg.Sites}
	m.net = simnet.NewNetwork(m.k, m.rng.Fork("net"))
	m.lan = m.net.NewLAN(cfg.LAN)

	members := make([]runtimeapi.NodeID, total)
	for i := range members {
		members[i] = runtimeapi.NodeID(i + 1)
	}
	if cfg.DedicatedSequencer && total > 1 && groups == 1 {
		// Node 0 sorts first in the view, making it the sequencer.
		members = append([]runtimeapi.NodeID{0}, members...)
	}
	m.members = members
	if groups == 1 {
		m.net.SetGroup(1, members)
	} else {
		for g := 1; g <= groups; g++ {
			m.net.SetGroup(runtimeapi.Group(g), m.groupMembers(g))
		}
	}

	warehouses := cfg.Warehouses
	if warehouses == 0 {
		warehouses = tpcc.Warehouses(cfg.Clients)
	}

	for _, id := range members {
		host, err := m.net.NewHost(id, m.lan)
		if err != nil {
			return nil, fmt.Errorf("core: site %d: %w", id, err)
		}
		var prof csrt.Profiler = &csrt.ModelProfiler{}
		if cfg.UseWallProfiler {
			prof = &csrt.WallProfiler{}
		}
		rt := csrt.NewRuntime(m.k, id, prof, m.net.Port(id, 0), cfg.Costs,
			m.rng.Fork(fmt.Sprintf("rt-%d", id)))
		ncpu := cfg.CPUsPerSite
		if id == 0 {
			ncpu = 1 // the dedicated sequencer only runs protocol code
		}
		cpus := csrt.NewCPUSet(ncpu, m.k, nil)
		rt.Bind(cpus)
		host.SetDeliver(func(pkt *simnet.Packet) { rt.Deliver(pkt.Src, pkt.Data) })

		site := &Site{ID: dbsm.SiteID(id), RT: rt, CPUs: cpus, Host: host,
			Life: recovery.NewLifecycle(dbsm.SiteID(id))}

		if len(members) > 1 {
			if err := m.buildStack(site, false); err != nil {
				return nil, err
			}
		}

		if id != 0 {
			storage := db.NewStorage(m.k, cfg.Storage, m.rng.Fork(fmt.Sprintf("disk-%d", id)))
			server := db.NewServer(m.k, dbsm.SiteID(id), cpus, storage)
			server.ReadSetThreshold = cfg.ReadSetThreshold
			if cfg.Admission != nil {
				server.MaxActive = cfg.Admission.MaxActivePerSite
			}
			site.Server = server
			site.Gen = tpcc.NewGenerator(dbsm.SiteID(id), warehouses, cfg.Calibration,
				m.rng.Fork(fmt.Sprintf("gen-%d", id)))
			if site.Stack != nil {
				m.buildReplica(site, false)
			}
		}
		if site.Stack != nil {
			site.Stack.Start()
			if site.Replica != nil {
				site.Replica.Start()
			}
		}

		// Fault wiring.
		if cfg.Faults.DriftsSite(int32(id)) {
			rt.SetClockDrift(cfg.Faults.ClockDriftRate)
		}
		if cfg.Faults.DelaysSite(int32(id)) {
			rt.SetSchedulingLatency(cfg.Faults.SchedLatencyGen(),
				m.rng.Fork(fmt.Sprintf("lat-%d", id)))
		}
		if lm := cfg.Faults.Loss.NewModel(); lm != nil {
			host.SetLoss(lm)
		}
		if in := cfg.Faults.Duplicate.NewInjector(); in != nil {
			host.SetDuplicate(in)
		}
		if in := cfg.Faults.Reorder.NewInjector(); in != nil {
			host.SetReorder(in)
		}
		if id == 0 {
			m.dedicated = site
		} else {
			m.sites = append(m.sites, site)
		}
	}

	crashAt := map[int32]sim.Time{}
	for _, cr := range cfg.Faults.Crashes {
		idx := int(cr.Site) - 1
		if idx < 0 || idx >= len(m.sites) {
			return nil, fmt.Errorf("core: crash targets unknown site %d", cr.Site)
		}
		if _, dup := crashAt[cr.Site]; dup {
			return nil, fmt.Errorf("core: site %d crashes twice", cr.Site)
		}
		crashAt[cr.Site] = cr.At
		site := m.sites[idx]
		m.k.ScheduleAt(cr.At, func() { m.crash(site) })
	}
	seenRecover := map[int32]bool{}
	for _, rc := range cfg.Faults.Recovers {
		idx := int(rc.Site) - 1
		if idx < 0 || idx >= len(m.sites) {
			return nil, fmt.Errorf("core: recovery targets unknown site %d", rc.Site)
		}
		at, crashed := crashAt[rc.Site]
		if !crashed {
			return nil, fmt.Errorf("core: recovery of site %d without a crash", rc.Site)
		}
		if rc.At <= at {
			return nil, fmt.Errorf("core: site %d recovers at %v, not after its crash at %v", rc.Site, rc.At, at)
		}
		if seenRecover[rc.Site] {
			return nil, fmt.Errorf("core: site %d recovers twice", rc.Site)
		}
		seenRecover[rc.Site] = true
		site := m.sites[idx]
		if m.pendingRecover == nil {
			m.pendingRecover = make(map[*Site]bool)
		}
		m.pendingRecover[site] = true
		m.k.ScheduleAt(rc.At, func() {
			delete(m.pendingRecover, site)
			m.recover(site)
		})
	}

	// The network supports one active cut at a time, so partitions must
	// not overlap in time; and the combined structural faults (crashes
	// plus partitioned minorities) must leave a strict majority of the
	// group, or the primary-component rule would wedge every survivor.
	if len(cfg.Faults.Partitions) > 0 {
		parts := append([]faults.Partition(nil), cfg.Faults.Partitions...)
		sort.Slice(parts, func(i, j int) bool { return parts[i].At < parts[j].At })
		for i := 1; i < len(parts); i++ {
			prev := parts[i-1]
			if prev.Heal == 0 || prev.Heal > parts[i].At {
				return nil, fmt.Errorf("core: partitions overlap: cut at %v starts before the cut at %v heals",
					parts[i].At, prev.At)
			}
		}
		disabled := map[int32]bool{}
		perG := make([]int, m.groups+1)
		mark := func(sid int32) {
			if !disabled[sid] {
				disabled[sid] = true
				if g := m.siteGroup(sid); g >= 1 && g <= m.groups {
					perG[g]++
				}
			}
		}
		for _, cr := range cfg.Faults.Crashes {
			mark(cr.Site)
		}
		for _, pt := range parts {
			for _, sid := range pt.Sites {
				mark(sid)
			}
		}
		// The majority rule is per replication group: each group runs its
		// own view, so each one individually must keep a strict majority.
		for g := 1; g <= m.groups; g++ {
			if 2*perG[g] >= m.perGroup {
				if m.groups == 1 {
					return nil, fmt.Errorf("core: crashes and partitions disable %d of %d sites; a strict majority must survive",
						perG[g], m.perGroup)
				}
				return nil, fmt.Errorf("core: crashes and partitions disable %d of group %d's %d sites; a strict majority must survive in every group",
					perG[g], g, m.perGroup)
			}
		}
	}
	for _, pt := range cfg.Faults.Partitions {
		if len(pt.Sites) == 0 {
			return nil, fmt.Errorf("core: partition isolates no sites")
		}
		cnt := make([]int, m.groups+1)
		for _, sid := range pt.Sites {
			if idx := int(sid) - 1; idx < 0 || idx >= total {
				return nil, fmt.Errorf("core: partition targets unknown site %d", sid)
			}
			cnt[m.siteGroup(sid)]++
		}
		for g := 1; g <= m.groups; g++ {
			if 2*cnt[g] < m.perGroup {
				continue
			}
			if m.groups == 1 {
				return nil, fmt.Errorf("core: partition isolates %d of %d sites; the isolated side must be a strict minority",
					cnt[g], m.perGroup)
			}
			return nil, fmt.Errorf("core: partition isolates %d of group %d's %d sites; the isolated side must be a strict minority in every group",
				cnt[g], g, m.perGroup)
		}
		if pt.Heal != 0 && pt.Heal <= pt.At {
			return nil, fmt.Errorf("core: partition heals at %v, not after its start %v", pt.Heal, pt.At)
		}
		minority := make([]*Site, 0, len(pt.Sites))
		ids := make([]runtimeapi.NodeID, 0, len(pt.Sites))
		for _, sid := range pt.Sites {
			idx := int(sid) - 1
			if idx < 0 || idx >= len(m.sites) {
				return nil, fmt.Errorf("core: partition targets unknown site %d", sid)
			}
			minority = append(minority, m.sites[idx])
			ids = append(ids, runtimeapi.NodeID(sid))
		}
		m.k.ScheduleAt(pt.At, func() {
			for _, s := range minority {
				s.partitioned = true
			}
			m.net.Partition(ids)
		})
		if pt.Heal != 0 {
			m.k.ScheduleAt(pt.Heal, func() { m.net.Heal() })
		}
	}

	// Overload faults. Saturation compresses every client's think time (the
	// clients are built below; the closures fire only once the kernel runs).
	if sat := cfg.Faults.Saturation; sat.Active() {
		if sat.Until != 0 && sat.Until <= sat.At {
			return nil, fmt.Errorf("core: saturation ends at %v, not after its start %v", sat.Until, sat.At)
		}
		factor := sat.Factor
		m.k.ScheduleAt(sat.At, func() { m.setLoadFactor(factor) })
		if sat.Until != 0 {
			m.k.ScheduleAt(sat.Until, func() { m.setLoadFactor(1) })
		}
	}
	for _, sn := range cfg.Faults.SlowNodes {
		if sn.Factor <= 1 {
			continue
		}
		idx := int(sn.Site) - 1
		if idx < 0 || idx >= len(m.sites) {
			return nil, fmt.Errorf("core: slow-node targets unknown site %d", sn.Site)
		}
		if sn.Until != 0 && sn.Until <= sn.At {
			return nil, fmt.Errorf("core: slow-node ends at %v, not after its start %v", sn.Until, sn.At)
		}
		site := m.sites[idx]
		factor := sn.Factor
		m.k.ScheduleAt(sn.At, func() { m.setSlow(site, factor) })
		if sn.Until != 0 {
			m.k.ScheduleAt(sn.Until, func() { m.setSlow(site, 1) })
		}
	}

	// Clients are assigned round-robin: the ten clients of one warehouse
	// spread across sites, so hot-row conflicts that local locks would
	// serialize on a single site surface as certification conflicts
	// between sites — the replication effect of Table 1. Under partial
	// replication, clients are instead routed to the primary site of
	// their home warehouse, which stores their data.
	// Under group mode, clients live at their home warehouse's group — the
	// only sites storing their data; cross-group traffic then comes from
	// payment's remote warehouse and new-order's remote stock lines.
	partial := cfg.ReplicationDegree > 0 && cfg.ReplicationDegree < cfg.Sites
	if cfg.AggregateClients > 0 && cfg.Clients >= cfg.AggregateClients {
		m.buildAggregates(partial)
		return m, nil
	}
	for i := 0; i < cfg.Clients; i++ {
		var site *Site
		switch {
		case m.groups > 1:
			site = m.sites[xgroup.HomeSite(i/tpcc.ClientsPerWarehouse, m.groups, m.perGroup)-1]
		case partial:
			site = m.sites[primarySiteIndex(i/tpcc.ClientsPerWarehouse, cfg.Sites)]
		default:
			site = m.sites[i%len(m.sites)]
		}
		cl := &tpcc.Client{
			ID:     i,
			Server: site.Server,
			Gen:    site.Gen,
			Think:  cfg.Calibration.ThinkTime,
			Stop:   m.takeTxnSlot,
			OnDone: m.onDone,
		}
		if cfg.Admission != nil {
			cl.Retry = cfg.Admission.Retry
		}
		m.clients = append(m.clients, cl)
		cl.Start(m.k, m.rng.Fork(fmt.Sprintf("client-%d", i)))
	}
	return m, nil
}

// buildAggregates assembles the aggregate client tier: one compound arrival
// process per site, standing in for the site's share of the population under
// the exact client-placement rule the individual tier uses. Each placement
// mode admits an O(1) dense-index → home-warehouse closure, so no
// population-sized table is ever materialized:
//
//   - round-robin: the clients at site index s are i = s + k·nsites;
//   - primary-site (partial replication) and group-homed placements assign
//     whole warehouse blocks of ClientsPerWarehouse clients, and the
//     warehouses homed at one site form an arithmetic progression (stride
//     nsites resp. groups·perGroup). Only the globally-last warehouse block
//     can be partial, and it is the last block of its site's progression,
//     so dense indexing by k/ClientsPerWarehouse is exact.
func (m *Model) buildAggregates(partial bool) {
	cfg := m.cfg
	nsites := len(m.sites)
	proc := cfg.Calibration.ArrivalProcess()
	for idx, site := range m.sites {
		var pop int
		var homeWH func(k int) int
		blockPop := func(start, stride int) int {
			n := 0
			for wh := start; wh*tpcc.ClientsPerWarehouse < cfg.Clients; wh += stride {
				c := cfg.Clients - wh*tpcc.ClientsPerWarehouse
				if c > tpcc.ClientsPerWarehouse {
					c = tpcc.ClientsPerWarehouse
				}
				n += c
			}
			return n
		}
		switch {
		case m.groups > 1:
			// Invert xgroup.HomeSite: site idx+1 homes the warehouses
			// wh = groups·(r + j·perGroup) + g0 with g0 = idx/perGroup,
			// r = idx%perGroup.
			g0, r := idx/m.perGroup, idx%m.perGroup
			start, stride := m.groups*r+g0, m.groups*m.perGroup
			pop = blockPop(start, stride)
			homeWH = func(k int) int { return start + (k/tpcc.ClientsPerWarehouse)*stride }
		case partial:
			// Invert primarySiteIndex: wh ≡ idx (mod sites).
			start, stride := idx, cfg.Sites
			pop = blockPop(start, stride)
			homeWH = func(k int) int { return start + (k/tpcc.ClientsPerWarehouse)*stride }
		default:
			if idx < cfg.Clients {
				pop = (cfg.Clients-1-idx)/nsites + 1
			}
			s := idx
			homeWH = func(k int) int { return (s + k*nsites) / tpcc.ClientsPerWarehouse }
		}
		if pop == 0 {
			continue
		}
		a := &tpcc.Aggregate{
			Server:     site.Server,
			Gen:        site.Gen,
			Proc:       proc,
			Population: pop,
			HomeWH:     homeWH,
			Stop:       m.takeTxnSlot,
		}
		if cfg.Admission != nil {
			a.Retry = cfg.Admission.Retry
		}
		s := site
		a.OnDone = func(t *db.Txn, o db.Outcome) { m.onDoneAgg(s, t, o) }
		m.aggs = append(m.aggs, a)
		a.Start(m.k, m.rng.Fork(fmt.Sprintf("aggclients-%d", site.ID)))
	}
}

// Kernel exposes the simulation kernel (tests, custom drivers).
func (m *Model) Kernel() *sim.Kernel { return m.k }

// Sites exposes the assembled replicas.
func (m *Model) Sites() []*Site { return m.sites }

// Dedicated exposes the dedicated sequencer member, or nil.
func (m *Model) Dedicated() *Site { return m.dedicated }

// Network exposes the simulated network.
func (m *Model) Network() *simnet.Network { return m.net }

// setLoadFactor applies a saturation factor to every client (or, in
// aggregate mode, every site's arrival process).
func (m *Model) setLoadFactor(f float64) {
	for _, c := range m.clients {
		c.SetLoadFactor(f)
	}
	for _, a := range m.aggs {
		a.SetLoadFactor(f)
	}
}

// setSlow applies (factor > 1) or clears (factor <= 1) a gray-failure
// degradation on one site: simulated CPU work, disk service time, and the
// inbound link all slow down, while the protocol's real jobs — and with them
// heartbeats and gossip — stay timely, so the failure detector never fires.
func (m *Model) setSlow(s *Site, factor float64) {
	s.CPUs.SetSimSlowdown(factor)
	s.Server.Storage().SetSlowdown(factor)
	var extra sim.Time
	if factor > 1 {
		extra = sim.Time((factor - 1) * float64(100*sim.Microsecond))
	}
	s.Host.SetExtraDelay(extra)
}

// takeTxnSlot reserves one transaction from the global budget; it reports
// true (stop) when the budget is exhausted.
func (m *Model) takeTxnSlot() bool {
	if m.issued >= m.cfg.TotalTxns {
		return true
	}
	m.issued++
	return false
}

func (m *Model) siteOf(server *db.Server) *Site {
	for _, s := range m.sites {
		if s.Server == server {
			return s
		}
	}
	return nil
}

func (m *Model) onDone(c *tpcc.Client, t *db.Txn, o db.Outcome) {
	m.finished++
	m.lastDone = m.k.Now()
	if m.cfg.CollectTxnLog {
		site := m.siteOf(c.Server)
		m.txnLog.Add(trace.Record{
			TID:     t.TID,
			Class:   t.Class,
			Site:    site.ID,
			Client:  c.ID,
			Submit:  t.SubmitAt,
			End:     t.EndAt,
			Outcome: o,
		})
	}
}

// onDoneAgg is the aggregate tier's completion hook: identical accounting,
// but no individual client exists — the log records client -1.
func (m *Model) onDoneAgg(s *Site, t *db.Txn, o db.Outcome) {
	m.finished++
	m.lastDone = m.k.Now()
	if m.cfg.CollectTxnLog {
		m.txnLog.Add(trace.Record{
			TID:     t.TID,
			Class:   t.Class,
			Site:    s.ID,
			Client:  -1,
			Submit:  t.SubmitAt,
			End:     t.EndAt,
			Outcome: o,
		})
	}
}

// buildStack assembles a site's group communication stack — at model build
// time (joining false) or for a fresh incarnation rejoining after a crash
// (joining true).
func (m *Model) buildStack(s *Site, joining bool) error {
	group, members := 1, m.members
	if m.groups > 1 {
		group = m.siteGroup(int32(s.ID))
		members = m.groupMembers(group)
	}
	gcfg := gcs.Config{
		Self:         runtimeapi.NodeID(s.ID),
		Members:      members,
		Group:        runtimeapi.Group(group),
		UseMulticast: true,
		Joining:      joining,
		// Partitions need the primary-component rule: the minority side
		// must wedge rather than split-brain.
		PrimaryComponent: len(m.cfg.Faults.Partitions) > 0,

		NonUniformSequencer: m.cfg.Hooks.NonUniformSequencer,
	}
	if m.cfg.GCSTweak != nil {
		m.cfg.GCSTweak(&gcfg)
	}
	stack, err := gcs.New(s.RT, gcfg)
	if err != nil {
		return fmt.Errorf("core: site %d stack: %w", s.ID, err)
	}
	s.Stack = stack
	return nil
}

// buildReplica assembles a site's termination glue over the current stack.
func (m *Model) buildReplica(s *Site, recovering bool) {
	opts := replica.Options{
		Optimistic:       m.cfg.Protocol == ProtocolOptimistic,
		ReadSetThreshold: m.cfg.ReadSetThreshold,
		ScanCertifier:    m.cfg.ScanCertifier,
		Replicates:       replicatesFunc(int(s.ID)-1, m.cfg.Sites, m.cfg.ReplicationDegree),
		Recovering:       recovering,
	}
	if m.groups > 1 {
		opts.Group = m.siteGroup(int32(s.ID))
		opts.GroupCount = m.groups
		opts.SitesPerGroup = m.perGroup
		opts.GroupOf = warehouseClassifier(m.groups)
	}
	if ad := m.cfg.Admission; ad != nil {
		opts.BacklogHigh, opts.BacklogLow = ad.BacklogHigh, ad.BacklogLow
	}
	s.Replica = replica.New(s.RT, s.Stack, s.Server, opts)
}

// crash stops a site completely, capturing its crash horizon (applied
// sequence and commit log) so a later recovery can size the snapshot and
// verify the rejoin prefix condition.
func (m *Model) crash(s *Site) {
	var commits []trace.CommitEntry
	if s.Replica != nil {
		commits = s.Replica.CommitLog().Entries()
	}
	if err := s.Life.Crash(m.k.Now(), s.Server.LastApplied(), commits); err != nil {
		panic(err) // fault schedules are validated at model build
	}
	s.RT.Crash()
	s.Host.SetDown(true)
	s.Server.Crash()
	if s.Stack != nil {
		s.Stack.Stop()
	}
	if s.Replica != nil {
		s.Replica.Stop()
	}
}

// recover restarts a crashed site: the runtime and host come back, a fresh
// stack begins the join handshake, and a fresh replica buffers deliveries
// until the recovery manager finishes the state transfer. The server stays
// down (its clients blocked) until the snapshot installs.
func (m *Model) recover(s *Site) {
	if err := s.Life.BeginRecovery(m.k.Now()); err != nil {
		panic(err)
	}
	// Fold the dead incarnation's protocol counters into the site totals
	// before discarding it.
	if s.Stack != nil {
		accumulateGCS(&s.deadGCS, s.Stack.Stats())
	}
	if s.Replica != nil {
		accumulateReplica(&s.deadReplica, s.Replica.Stats())
	}
	s.RT.Restart()
	s.Host.SetDown(false)
	if err := m.buildStack(s, true); err != nil {
		panic(err) // the original stack built from the same inputs
	}
	m.buildReplica(s, true)
	mgr := recovery.NewManager(recovery.ManagerConfig{
		K:         m.k,
		Site:      s.ID,
		Life:      s.Life,
		PickDonor: func() recovery.Donor { return m.pickDonor(s) },
		Joiner:    s.Replica,
		WriteSectors: func(n int, done func()) {
			s.Server.Storage().WriteSectors(n, done)
		},
		OnViolation: func(v *check.Violation) {
			m.rejoinViolations++
			if m.rejoinViolation == nil {
				m.rejoinViolation = v
			}
		},
	})
	s.Stack.OnJoined(mgr.OnJoined)
	s.Stack.Start()
	s.Replica.Start()
}

// pickDonor selects the snapshot donor for a joiner: the lowest-numbered
// fully-operational replica. Deterministic, so a replayed seed transfers
// from the same site.
func (m *Model) pickDonor(joiner *Site) recovery.Donor {
	for _, s := range m.sites {
		if s == joiner || !s.operational() || s.Replica == nil || s.Replica.Recovering() {
			continue
		}
		return s.Replica
	}
	return nil
}

// Run executes the model to completion and assembles results.
func (m *Model) Run() (*Results, error) {
	cfg := m.cfg
	const chunk = 500 * sim.Millisecond
	var drainUntil sim.Time = -1
	for cursor := sim.Time(0); ; {
		cursor += chunk
		if cursor > cfg.MaxSimTime {
			cursor = cfg.MaxSimTime
		}
		if err := m.k.RunUntil(cursor); err != nil {
			return nil, fmt.Errorf("core: run: %w", err)
		}
		if m.k.Pending() == 0 {
			break
		}
		if cursor >= cfg.MaxSimTime {
			break
		}
		if m.quiesced() {
			if drainUntil < 0 {
				drainUntil = cursor + cfg.DrainTime
			}
			if cursor >= drainUntil {
				break
			}
		}
	}
	return m.results(), nil
}

// quiesced reports whether issuance stopped and no live site has work in
// flight. Sites isolated in a partition minority are excluded: their
// in-flight transactions can never resolve once the majority excludes them
// from the view. A site mid-recovery holds the run open — its rejoin always
// completes in bounded time, and ending before it would leave the recovery
// metrics (and the rejoin safety condition) unexercised.
func (m *Model) quiesced() bool {
	if m.issued < m.cfg.TotalTxns {
		return false
	}
	for _, c := range m.clients {
		// A backoff timer holds an unsubmitted retry: the run must stay
		// open for the resubmission, or the retried transaction would be
		// cut off mid-flight.
		if c.RetryPending() {
			return false
		}
	}
	for _, a := range m.aggs {
		if a.RetryPending() {
			return false
		}
	}
	live := int64(0)
	for _, s := range m.sites {
		if s.Life.State() == recovery.StateRecovering || m.pendingRecover[s] {
			return false
		}
		if s.operational() {
			sub, com, ab, rej := s.Server.Totals()
			live += sub - com - ab - rej
		}
	}
	return live == 0
}
